package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomInstance draws a structurally valid random instance directly (the
// workload package depends on core, so tests here roll their own
// generator). All prices are truthful (Price == TrueCost). The last bid is
// always the platform's reserve supplier: it guarantees feasibility, and —
// being the platform's own non-strategic fallback — it is EXCLUDED from
// strategic-deviation properties (a pivotal monopolist has no finite
// critical value, so no payment rule is truthful for it; see DESIGN.md).
func randomInstance(rng *rand.Rand, bidders, needy, bidsPer int) *Instance {
	ins := &Instance{Demand: make([]int, needy)}
	for k := range ins.Demand {
		ins.Demand[k] = 1 + rng.Intn(5)
	}
	for b := 1; b <= bidders; b++ {
		for j := 0; j < bidsPer; j++ {
			k := 1 + rng.Intn(needy)
			covers := rng.Perm(needy)[:k]
			sortInts(covers)
			price := 10 + 25*rng.Float64()
			ins.Bids = append(ins.Bids, Bid{
				Bidder: b, Alt: j, Price: price, TrueCost: price,
				Covers: covers, Units: 1 + rng.Intn(3),
			})
		}
	}
	// Reserve supplier guaranteeing feasibility (mirrors the workload
	// generator's design).
	total := ins.TotalDemand()
	maxD := 0
	all := make([]int, needy)
	for k, d := range ins.Demand {
		all[k] = k
		if d > maxD {
			maxD = d
		}
	}
	ins.Bids = append(ins.Bids, Bid{
		Bidder: bidders + 1, Price: 35 * float64(total), TrueCost: 35 * float64(total),
		Covers: all, Units: maxD,
	})
	return ins
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestPropertyFeasibilityAndIR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(10), 1+rng.Intn(4), 1+rng.Intn(3))
		if err := ins.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid instance: %v", trial, err)
		}
		out, err := SSAM(ins, Options{})
		if err != nil {
			t.Fatalf("trial %d: SSAM failed on reserve-backed instance: %v", trial, err)
		}
		if err := VerifyFeasible(ins, out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyIndividualRationality(ins, out, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyCertificate(ins, out, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyTruthfulnessSingleBid(t *testing.T) {
	// With one bid per bidder the mechanism is strictly truthful: no price
	// deviation of any bidder increases its utility.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		ins := randomInstance(rng, 3+rng.Intn(8), 1+rng.Intn(3), 1)
		truthful, err := SSAM(ins, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Deviate each strategic bid in turn (the final bid is the
		// platform's own reserve supplier).
		for target := 0; target < len(ins.Bids)-1; target++ {
			base := truthful.Utility(ins, target)
			for _, factor := range []float64{0.3, 0.7, 0.95, 1.05, 1.4, 2.5} {
				dev := ins.Clone()
				dev.Bids[target].Price = ins.Bids[target].TrueCost * factor
				out, err := SSAM(dev, Options{})
				if err != nil {
					t.Fatalf("trial %d target %d x%v: %v", trial, target, factor, err)
				}
				// Utility must be computed against the TRUE cost.
				utility := 0.0
				if out.Won(target) {
					utility = out.Payments[target] - ins.Bids[target].TrueCost
				}
				if utility > base+1e-6 {
					t.Fatalf("trial %d: bid %d profits from deviation x%v: %v > truthful %v",
						trial, target, factor, utility, base)
				}
			}
		}
	}
}

func TestPropertyPaymentIndependentOfWinningReport(t *testing.T) {
	// Myerson: while a bid keeps winning, its payment must not depend on
	// its own report — including multi-bid instances, as long as the same
	// alternative stays the winner.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		ins := randomInstance(rng, 3+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2))
		truthful, err := SSAM(ins, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range truthful.Winners {
			if w == len(ins.Bids)-1 {
				continue // the reserve supplier is not a strategic player
			}
			for _, factor := range []float64{0.5, 0.8, 1.2} {
				dev := ins.Clone()
				dev.Bids[w].Price = ins.Bids[w].Price * factor
				out, err := SSAM(dev, Options{})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !out.Won(w) {
					continue // switched winner or lost: not this property
				}
				if math.Abs(out.Payments[w]-truthful.Payments[w]) > 1e-6 {
					t.Fatalf("trial %d: winner %d payment moved with its own report: %v -> %v (x%v)",
						trial, w, truthful.Payments[w], out.Payments[w], factor)
				}
			}
		}
	}
}

func TestPropertyMonotoneAllocation(t *testing.T) {
	// Lemma 2: lowering a winning bid's price keeps it winning; raising a
	// losing bid's price keeps it losing.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 80; trial++ {
		ins := randomInstance(rng, 3+rng.Intn(8), 1+rng.Intn(3), 1)
		truthful, err := SSAM(ins, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range ins.Bids {
			won := truthful.Won(i)
			factor := 0.5 // lower a winner's price
			if !won {
				factor = 2 // raise a loser's price
			}
			dev := ins.Clone()
			dev.Bids[i].Price = ins.Bids[i].Price * factor
			out, err := SSAM(dev, Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if won && !out.Won(i) {
				t.Fatalf("trial %d: winner %d lost after LOWERING its price (monotonicity)", trial, i)
			}
			if !won && out.Won(i) {
				t.Fatalf("trial %d: loser %d won after RAISING its price (monotonicity)", trial, i)
			}
		}
	}
}

func TestPropertyCriticalValueIsThreshold(t *testing.T) {
	// Lemma 3: reporting just under the payment wins; just over loses —
	// checked for single-bid bidders where the threshold is exact.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		ins := randomInstance(rng, 3+rng.Intn(6), 1+rng.Intn(3), 1)
		truthful, err := SSAM(ins, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, w := range truthful.Winners {
			if w == len(ins.Bids)-1 {
				continue // the reserve supplier is pivotal: no finite threshold
			}
			pay := truthful.Payments[w]
			under := ins.Clone()
			under.Bids[w].Price = pay * 0.999
			outUnder, err := SSAM(under, Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !outUnder.Won(w) {
				t.Fatalf("trial %d: bid %d reporting 0.999x its critical value %v should win", trial, w, pay)
			}
			over := ins.Clone()
			over.Bids[w].Price = pay * 1.01
			outOver, err := SSAM(over, Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if outOver.Won(w) {
				t.Fatalf("trial %d: bid %d reporting 1.01x its critical value %v should lose", trial, w, pay)
			}
		}
	}
}

func TestPropertyNoEconomicLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		ins := randomInstance(rng, 2+rng.Intn(8), 1+rng.Intn(4), 1+rng.Intn(2))
		out, err := SSAM(ins, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		charges := BuyerCharges(ins, out, 0.05)
		if err := VerifyNoEconomicLoss(out, charges); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ins := randomInstance(rng, 10, 3, 2)
	a, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SSAM(ins.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Winners) != len(b.Winners) || a.SocialCost != b.SocialCost {
		t.Fatalf("non-deterministic outcomes: %+v vs %+v", a, b)
	}
	for i := range a.Winners {
		if a.Winners[i] != b.Winners[i] || a.Payments[a.Winners[i]] != b.Payments[b.Winners[i]] {
			t.Fatalf("winner %d differs between identical runs", i)
		}
	}
}

func TestQuickCoverageStateMarginalNeverNegative(t *testing.T) {
	// testing/quick: marginal utility is always in [0, Σ min(Units, X_k)].
	f := func(demandSeed, unitSeed uint8) bool {
		demand := []int{int(demandSeed%7) + 1, int(demandSeed%3) + 1}
		units := int(unitSeed%4) + 1
		cs := newRefCoverageState(demand)
		b := &Bid{Covers: []int{0, 1}, Units: units}
		for !cs.satisfied() {
			m := cs.marginal(b)
			maxGain := 0
			for _, k := range b.Covers {
				u := units
				if u > demand[k] {
					u = demand[k]
				}
				maxGain += u
			}
			if m <= 0 || m > maxGain {
				return false // must make progress until saturated
			}
			cs.apply(b)
		}
		return cs.marginal(b) == 0 // saturated state yields no marginal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHarmonicMonotone(t *testing.T) {
	f := func(n uint8) bool {
		a, b := harmonic(int(n)), harmonic(int(n)+1)
		return b >= a && a >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScaledPricesRespectIR(t *testing.T) {
	// In online rounds, IR must hold against the SCALED price too (the
	// payment covers the inflated cost, hence also the raw cost).
	rng := rand.New(rand.NewSource(8))
	m := NewMSOA(MSOAConfig{DefaultCapacity: 20, Alpha: 2})
	for t2 := 1; t2 <= 6; t2++ {
		ins := randomInstance(rng, 6, 2, 2)
		res := m.RunRound(Round{T: t2, Instance: ins})
		if res.Err != nil {
			continue
		}
		if err := VerifyIndividualRationality(ins, res.Outcome, res.Scaled); err != nil {
			t.Fatalf("round %d: %v", t2, err)
		}
		if err := VerifyFeasible(ins, res.Outcome); err != nil {
			t.Fatalf("round %d: %v", t2, err)
		}
	}
}

func TestPropertyCompetitiveRatioSmallInstances(t *testing.T) {
	// Theorem 7 on verifiable scales: MSOA's long-run cost stays within
	// αβ/(β−1) of the per-round optimal sum (which lower-bounds the true
	// offline optimum). α is the max certified per-round ratio.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		cfg := MSOAConfig{DefaultCapacity: 8}
		m := NewMSOA(cfg)
		var rounds []Round
		var totalCost float64
		alpha := 1.0
		for t2 := 1; t2 <= 5; t2++ {
			ins := randomInstance(rng, 5, 2, 1)
			r := Round{T: t2, Instance: ins}
			rounds = append(rounds, r)
			res := m.RunRound(r)
			if res.Err != nil {
				t.Fatalf("trial %d round %d: %v", trial, t2, res.Err)
			}
			totalCost += res.Outcome.SocialCost
			if res.Outcome.Dual != nil && res.Outcome.Dual.Ratio() > alpha {
				alpha = res.Outcome.Dual.Ratio()
			}
		}
		// Offline reference: per-round greedy WITHOUT capacity coupling
		// run on raw prices, lower-bounded by its own certificate.
		var offline float64
		for _, r := range rounds {
			out, err := SSAM(r.Instance, Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			offline += out.Dual.DualObjective // ≤ per-round OPT
		}
		bound := CompetitiveBound(alpha, cfg, rounds)
		if math.IsInf(bound, 1) {
			continue
		}
		if totalCost > offline*bound+1e-6 {
			t.Fatalf("trial %d: MSOA cost %v exceeds bound %v x offline %v",
				trial, totalCost, bound, offline)
		}
	}
}
