package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestIngestBufferMatchesHandBuiltInstance proves the batch-ingest path
// is order- and shard-insensitive: bids added in any order through any
// shard count assemble into the same canonical instance, and
// RunRoundIngest clears identically to RunRound over that instance.
func TestIngestBufferMatchesHandBuiltInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	demand := []int{3, 2, 4, 1}
	var bids []Bid
	for i := 1; i <= 9; i++ {
		for alt := 0; alt < 2; alt++ {
			covers := []int{rng.Intn(len(demand))}
			if rng.Intn(2) == 0 {
				covers = append(covers, (covers[0]+1)%len(demand))
			}
			bids = append(bids, Bid{
				Bidder: i, Alt: alt, Price: 1 + float64(rng.Intn(50)),
				Covers: covers, Units: 1 + rng.Intn(3),
			})
			bids[len(bids)-1].TrueCost = bids[len(bids)-1].Price
		}
	}
	want := &Instance{Demand: demand}
	for _, b := range bids {
		want.Bids = append(want.Bids, b.Clone())
	}
	sortBidsCanonical(want.Bids)
	wantRes := NewMSOA(MSOAConfig{}).RunRound(Round{T: 1, Instance: want})

	for _, shards := range []int{1, 2, 3, 8} {
		ib := NewIngestBuffer(shards)
		perm := rng.Perm(len(bids))
		ib.Reset(demand)
		for _, i := range perm {
			b := bids[i]
			ib.Add(b.Bidder, b.Alt, b.Price, b.Covers, b.Units)
		}
		if ib.Len() != len(bids) {
			t.Fatalf("shards=%d: Len=%d, want %d", shards, ib.Len(), len(bids))
		}
		got := ib.Build()
		if !reflect.DeepEqual(got.Demand, want.Demand) || !reflect.DeepEqual(got.Bids, want.Bids) {
			t.Fatalf("shards=%d: assembled instance differs\n got %+v\nwant %+v", shards, got.Bids, want.Bids)
		}
		res := NewMSOA(MSOAConfig{}).RunRound(Round{T: 1, Instance: got})
		if res.Err != nil || wantRes.Err != nil {
			t.Fatalf("shards=%d: err %v vs %v", shards, res.Err, wantRes.Err)
		}
		if !reflect.DeepEqual(res.Outcome.Winners, wantRes.Outcome.Winners) ||
			!reflect.DeepEqual(res.Outcome.Payments, wantRes.Outcome.Payments) {
			t.Fatalf("shards=%d: outcome differs: %+v vs %+v", shards, res.Outcome, wantRes.Outcome)
		}
	}
}

func sortBidsCanonical(bids []Bid) {
	for i := 1; i < len(bids); i++ {
		for j := i; j > 0; j-- {
			a, b := bids[j-1], bids[j]
			if a.Bidder < b.Bidder || (a.Bidder == b.Bidder && a.Alt <= b.Alt) {
				break
			}
			bids[j-1], bids[j] = b, a
		}
	}
}

// TestIngestBufferReusesStorage asserts the satellite pooling claim: once
// a round shape has been seen, subsequent Reset/Add/Build cycles of the
// same shape perform zero allocations.
func TestIngestBufferReusesStorage(t *testing.T) {
	ib := NewIngestBuffer(4)
	demand := []int{2, 2, 2}
	covers := []int{0, 1}
	fill := func() {
		ib.Reset(demand)
		for id := 1; id <= 32; id++ {
			ib.Add(id, 0, float64(id), covers, 1)
		}
		_ = ib.Build()
	}
	fill() // reach the high-water mark
	if allocs := testing.AllocsPerRun(50, fill); allocs > 0 {
		t.Fatalf("steady-state ingest cycle allocates %.1f times per round, want 0", allocs)
	}
}

// TestIngestBufferRunRoundIngest exercises the MSOA entry point against
// the plain path across several rounds (ψ state must advance equally).
func TestIngestBufferRunRoundIngest(t *testing.T) {
	cfgA := MSOAConfig{Capacity: map[int]int{1: 3, 2: 3}}
	cfgB := MSOAConfig{Capacity: map[int]int{1: 3, 2: 3}}
	plain := NewMSOA(cfgA)
	batch := NewMSOA(cfgB)
	ib := NewIngestBuffer(2)
	for round := 1; round <= 4; round++ {
		demand := []int{round % 3, 1 + round%2}
		ins := &Instance{Demand: demand}
		ib.Reset(demand)
		for id := 2; id >= 1; id-- { // reverse order on purpose
			price := float64(5*id + round)
			ins.Bids = append(ins.Bids, Bid{Bidder: id, Alt: 0, Price: price, TrueCost: price, Covers: []int{0, 1}, Units: 2})
			ib.Add(id, 0, price, []int{0, 1}, 2)
		}
		sortBidsCanonical(ins.Bids)
		a := plain.RunRound(Round{T: round, Instance: ins})
		b := batch.RunRoundIngest(round, ib)
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("round %d: err %v vs %v", round, a.Err, b.Err)
		}
		if a.Err == nil && !reflect.DeepEqual(a.Outcome.Payments, b.Outcome.Payments) {
			t.Fatalf("round %d: payments %v vs %v", round, a.Outcome.Payments, b.Outcome.Payments)
		}
	}
	if plain.Snapshot().Hash() != batch.Snapshot().Hash() {
		t.Fatal("state hashes diverge between plain and batch-ingest paths")
	}
}
