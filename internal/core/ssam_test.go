package core

import (
	"errors"
	"math"
	"testing"
)

// twoBidderInstance: needy 0 needs 2 units; bidder 1 covers it cheap,
// bidder 2 covers it expensive. Both needed to reach demand 2 with Units=1.
func twoBidderInstance() *Instance {
	return &Instance{
		Demand: []int{2},
		Bids: []Bid{
			{Bidder: 1, Alt: 0, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
			{Bidder: 2, Alt: 0, Price: 20, TrueCost: 20, Covers: []int{0}, Units: 1},
		},
	}
}

func TestSSAMSelectsAllWhenAllNeeded(t *testing.T) {
	ins := twoBidderInstance()
	out, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatalf("SSAM failed: %v", err)
	}
	if len(out.Winners) != 2 {
		t.Fatalf("want 2 winners, got %v", out.Winners)
	}
	if out.SocialCost != 30 {
		t.Fatalf("want social cost 30, got %v", out.SocialCost)
	}
	if err := VerifyFeasible(ins, out); err != nil {
		t.Fatal(err)
	}
	if err := VerifyIndividualRationality(ins, out, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSSAMPrefersCheaperPerCoverage(t *testing.T) {
	// Needy 0 and 1 each need 1 unit. Bidder 1 covers both for 12 (6/unit);
	// bidders 2 and 3 cover one each for 7 (7/unit). Greedy takes bidder 1.
	ins := &Instance{
		Demand: []int{1, 1},
		Bids: []Bid{
			{Bidder: 1, Price: 12, TrueCost: 12, Covers: []int{0, 1}, Units: 1},
			{Bidder: 2, Price: 7, TrueCost: 7, Covers: []int{0}, Units: 1},
			{Bidder: 3, Price: 7, TrueCost: 7, Covers: []int{1}, Units: 1},
		},
	}
	out, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatalf("SSAM failed: %v", err)
	}
	if len(out.Winners) != 1 || out.Winners[0] != 0 {
		t.Fatalf("want winner [0], got %v", out.Winners)
	}
	// Critical payment: runner-up per-coverage price is 7; winner marginal
	// is 2 => payment 14.
	if pay := out.Payments[0]; math.Abs(pay-14) > 1e-9 {
		t.Fatalf("want payment 14, got %v", pay)
	}
}

func TestSSAMOneBidPerBidder(t *testing.T) {
	// Bidder 1 submits two alternatives; only one may win even though both
	// are cheaper than bidder 2's bid.
	ins := &Instance{
		Demand: []int{2},
		Bids: []Bid{
			{Bidder: 1, Alt: 0, Price: 1, TrueCost: 1, Covers: []int{0}, Units: 1},
			{Bidder: 1, Alt: 1, Price: 2, TrueCost: 2, Covers: []int{0}, Units: 1},
			{Bidder: 2, Alt: 0, Price: 50, TrueCost: 50, Covers: []int{0}, Units: 1},
		},
	}
	out, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatalf("SSAM failed: %v", err)
	}
	if err := VerifyFeasible(ins, out); err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 2 {
		t.Fatalf("want 2 winners, got %v", out.Winners)
	}
	for _, w := range out.Winners {
		if w == 1 {
			t.Fatalf("bidder 1's second alternative should never win alongside the first")
		}
	}
}

func TestSSAMInfeasible(t *testing.T) {
	ins := &Instance{
		Demand: []int{3},
		Bids: []Bid{
			{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
			{Bidder: 2, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
		},
	}
	_, err := SSAM(ins, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSSAMUnitsCapAtDemand(t *testing.T) {
	// A bid with Units=5 against demand 2 contributes only 2 marginal units.
	ins := &Instance{
		Demand: []int{2},
		Bids: []Bid{
			{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 5},
			{Bidder: 2, Price: 4, TrueCost: 4, Covers: []int{0}, Units: 1},
		},
	}
	out, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatalf("SSAM failed: %v", err)
	}
	// Scores: bid0 = 10/2 = 5, bid1 = 4/1 = 4 -> bid1 first, then bid0
	// (marginal 1, score 10). Winners: both.
	if len(out.Winners) != 2 {
		t.Fatalf("want 2 winners, got %v", out.Winners)
	}
	if err := VerifyFeasible(ins, out); err != nil {
		t.Fatal(err)
	}
}

func TestSSAMEmptyDemandSelectsNothing(t *testing.T) {
	ins := &Instance{Demand: []int{0, 0}, Bids: []Bid{
		{Bidder: 1, Price: 3, TrueCost: 3, Covers: []int{0}, Units: 1},
	}}
	out, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatalf("SSAM failed: %v", err)
	}
	if len(out.Winners) != 0 || out.SocialCost != 0 {
		t.Fatalf("want empty outcome, got %+v", out)
	}
}

func TestSSAMCertificate(t *testing.T) {
	ins := &Instance{
		Demand: []int{2, 1, 3},
		Bids: []Bid{
			{Bidder: 1, Price: 12, TrueCost: 12, Covers: []int{0, 1}, Units: 1},
			{Bidder: 2, Price: 7, TrueCost: 7, Covers: []int{0}, Units: 2},
			{Bidder: 3, Price: 9, TrueCost: 9, Covers: []int{1, 2}, Units: 1},
			{Bidder: 4, Price: 15, TrueCost: 15, Covers: []int{2}, Units: 3},
			{Bidder: 5, Price: 6, TrueCost: 6, Covers: []int{2}, Units: 1},
			{Bidder: 6, Price: 11, TrueCost: 11, Covers: []int{0, 2}, Units: 1},
		},
	}
	out, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatalf("SSAM failed: %v", err)
	}
	if err := VerifyFeasible(ins, out); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCertificate(ins, out, nil); err != nil {
		t.Fatal(err)
	}
	if r := out.Dual.Ratio(); r < 1 {
		t.Fatalf("certificate ratio %v < 1", r)
	}
}

func TestSSAMFirstPriceAblation(t *testing.T) {
	ins := twoBidderInstance()
	out, err := SSAM(ins, Options{Payment: FirstPrice})
	if err != nil {
		t.Fatalf("SSAM failed: %v", err)
	}
	for _, w := range out.Winners {
		if out.Payments[w] != ins.Bids[w].Price {
			t.Fatalf("first-price payment mismatch: bid %d paid %v, price %v",
				w, out.Payments[w], ins.Bids[w].Price)
		}
	}
}

func TestSSAMLowestPriceMetricCanBeWorse(t *testing.T) {
	// LowestPrice picks the 3-unit coverage last; PricePerCoverage exploits
	// the bulk bid. Construct: demand 3; bulk bid price 9 covers 3 units
	// (3/unit), three singles at price 4 each (4/unit but lowest absolute).
	ins := &Instance{
		Demand: []int{3},
		Bids: []Bid{
			{Bidder: 1, Price: 9, TrueCost: 9, Covers: []int{0}, Units: 3},
			{Bidder: 2, Price: 4, TrueCost: 4, Covers: []int{0}, Units: 1},
			{Bidder: 3, Price: 4, TrueCost: 4, Covers: []int{0}, Units: 1},
			{Bidder: 4, Price: 4, TrueCost: 4, Covers: []int{0}, Units: 1},
		},
	}
	perCov, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lowest, err := SSAM(ins, Options{Metric: LowestPrice})
	if err != nil {
		t.Fatal(err)
	}
	if perCov.SocialCost > lowest.SocialCost {
		t.Fatalf("per-coverage greedy (%v) should not cost more than lowest-price greedy (%v)",
			perCov.SocialCost, lowest.SocialCost)
	}
	if perCov.SocialCost != 9 {
		t.Fatalf("per-coverage greedy should take the bulk bid (cost 9), got %v", perCov.SocialCost)
	}
}

func TestPaymentReserveWhenNoRunnerUp(t *testing.T) {
	ins := &Instance{
		Demand: []int{1},
		Bids: []Bid{
			{Bidder: 1, Price: 5, TrueCost: 5, Covers: []int{0}, Units: 1},
		},
	}
	out, err := SSAM(ins, Options{Reserve: 35})
	if err != nil {
		t.Fatal(err)
	}
	if pay := out.Payments[0]; pay != 35 {
		t.Fatalf("want reserve payment 35, got %v", pay)
	}
	// Without an explicit reserve and no other bidders, the winner gets its
	// own price.
	out2, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pay := out2.Payments[0]; pay != 5 {
		t.Fatalf("want own-price payment 5, got %v", pay)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		ins  Instance
	}{
		{"negative demand", Instance{Demand: []int{-1}}},
		{"zero units", Instance{Demand: []int{1}, Bids: []Bid{{Bidder: 1, Price: 1, Covers: []int{0}, Units: 0}}}},
		{"empty covers", Instance{Demand: []int{1}, Bids: []Bid{{Bidder: 1, Price: 1, Units: 1}}}},
		{"out of range cover", Instance{Demand: []int{1}, Bids: []Bid{{Bidder: 1, Price: 1, Covers: []int{3}, Units: 1}}}},
		{"duplicate cover", Instance{Demand: []int{1}, Bids: []Bid{{Bidder: 1, Price: 1, Covers: []int{0, 0}, Units: 1}}}},
		{"negative price", Instance{Demand: []int{1}, Bids: []Bid{{Bidder: 1, Price: -2, Covers: []int{0}, Units: 1}}}},
		{"nan price", Instance{Demand: []int{1}, Bids: []Bid{{Bidder: 1, Price: math.NaN(), Covers: []int{0}, Units: 1}}}},
		{"duplicate alt", Instance{Demand: []int{1}, Bids: []Bid{
			{Bidder: 1, Alt: 0, Price: 1, Covers: []int{0}, Units: 1},
			{Bidder: 1, Alt: 0, Price: 2, Covers: []int{0}, Units: 1},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.ins.Validate(); err == nil {
				t.Fatalf("want validation error")
			}
		})
	}
}

func TestInstanceHelpers(t *testing.T) {
	ins := twoBidderInstance()
	if got := ins.NumNeedy(); got != 1 {
		t.Fatalf("NumNeedy = %d, want 1", got)
	}
	if got := ins.TotalDemand(); got != 2 {
		t.Fatalf("TotalDemand = %d, want 2", got)
	}
	if got := ins.MaxPrice(); got != 20 {
		t.Fatalf("MaxPrice = %v, want 20", got)
	}
	clone := ins.Clone()
	clone.Bids[0].Price = 999
	clone.Bids[0].Covers[0] = 0
	if ins.Bids[0].Price == 999 {
		t.Fatal("Clone shares bid storage with original")
	}
	if !ins.Coverable() {
		t.Fatal("instance should be coverable")
	}
}

func TestUtilityAndWon(t *testing.T) {
	ins := twoBidderInstance()
	out, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins.Bids {
		u := out.Utility(ins, i)
		if out.Won(i) && u < 0 {
			t.Fatalf("winner %d has negative utility %v under truthful bidding", i, u)
		}
		if !out.Won(i) && u != 0 {
			t.Fatalf("loser %d has nonzero utility %v", i, u)
		}
	}
}

// TestReserveSetExplicitZero pins the Reserve==0 sentinel semantics: the
// zero value auto-derives the pivotal-winner reserve from the competition,
// while ReserveSet makes an explicit zero binding (the pivotal winner is
// paid only its own report).
func TestReserveSetExplicitZero(t *testing.T) {
	ins := &Instance{
		Demand: []int{2},
		Bids: []Bid{
			{Bidder: 1, Price: 5, Units: 2, Covers: []int{0}},
			{Bidder: 2, Price: 40, Units: 1, Covers: []int{0}},
		},
	}

	// Unset: bidder 1 wins alone (covers the full demand) and is pivotal;
	// the auto-derived reserve is the best competing scaled price, 40.
	out, err := SSAM(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 1 || ins.Bids[out.Winners[0]].Bidder != 1 {
		t.Fatalf("winners = %v, want only bidder 1's bid", out.Winners)
	}
	if got := out.Payments[out.Winners[0]]; got != 40 {
		t.Fatalf("auto-derived pivotal payment = %v, want competitor price 40", got)
	}

	// Explicit zero reserve: the pivotal winner gets exactly its own report.
	out, err = SSAM(ins, Options{Reserve: 0, ReserveSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Payments[out.Winners[0]]; got != 5 {
		t.Fatalf("explicit-zero-reserve pivotal payment = %v, want own price 5", got)
	}
}

// TestSelectBestExactTieLowestIndex locks the tie-break: with three bids at
// EXACTLY equal price-per-coverage score, the lowest bid index must win —
// on the optimized kernel (whose swap-delete candidate list is scanned in
// permuted order and needs an explicit tie-break) and on the reference
// (whose ascending strict-improvement scan IS the tie-break).
func TestSelectBestExactTieLowestIndex(t *testing.T) {
	ins := &Instance{
		Demand: []int{2},
		Bids: []Bid{
			{Bidder: 1, Price: 20, Covers: []int{0}, Units: 2}, // score 20/2 = 10
			{Bidder: 2, Price: 10, Covers: []int{0}, Units: 1}, // score 10/1 = 10
			{Bidder: 3, Price: 10, Covers: []int{0}, Units: 1}, // score 10/1 = 10
		},
	}
	for name, run := range map[string]func(*Instance, Options) (*Outcome, error){
		"kernel":    SSAM,
		"reference": referenceSSAM,
	} {
		out, err := run(ins, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Bid 0 covers the whole demand in one iteration; the exact tie with
		// bids 1 and 2 must resolve to the lowest index.
		if len(out.Winners) != 1 || out.Winners[0] != 0 {
			t.Fatalf("%s: winners = %v, want [0] (lowest-index tie-break)", name, out.Winners)
		}
	}

	// Ties within one iteration AND across successive iterations: four unit
	// bids at the same price must win in ascending index order.
	flat := &Instance{
		Demand: []int{2, 2},
		Bids: []Bid{
			{Bidder: 1, Price: 7, Covers: []int{0, 1}, Units: 1},
			{Bidder: 2, Price: 7, Covers: []int{0, 1}, Units: 1},
			{Bidder: 3, Price: 7, Covers: []int{0, 1}, Units: 1},
			{Bidder: 4, Price: 7, Covers: []int{0, 1}, Units: 1},
		},
	}
	out, err := SSAM(flat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1} // two iterations cover demand 2+2; ties resolve upward
	if len(out.Winners) != len(want) {
		t.Fatalf("winners = %v, want %v", out.Winners, want)
	}
	for i := range want {
		if out.Winners[i] != want[i] {
			t.Fatalf("winners = %v, want %v (ascending tie-break order)", out.Winners, want)
		}
	}
}

// TestReservePaymentScaledDomain pins the pivotal-winner reserve semantics
// in MSOA's ψ-scaled price domain: the auto-derived reserve must come from
// the competitors' SCALED prices, an explicit ReserveSet zero stays binding
// (floored at the winner's own SCALED report), and an explicit reserve
// below the winner's own scaled report is raised to that report.
func TestReservePaymentScaledDomain(t *testing.T) {
	// Bidder 1 is the only bidder able to cover needy 1, so it is pivotal
	// in every counterfactual. Bidder 2 competes only on needy 0.
	ins := &Instance{
		Demand: []int{1, 1},
		Bids: []Bid{
			{Bidder: 1, Price: 5, Covers: []int{0, 1}, Units: 1},
			{Bidder: 2, Price: 30, Covers: []int{0}, Units: 1},
		},
	}
	const psi = 2.0
	scaled := []float64{5 * psi, 30 * psi}

	// Auto-derive: the reserve is the best competing SCALED price (60), not
	// the raw competitor price (30).
	out, err := ssamScaled(ins, scaled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 1 || out.Winners[0] != 0 {
		t.Fatalf("winners = %v, want [0]", out.Winners)
	}
	if got := out.Payments[0]; got != 60 {
		t.Fatalf("auto-derived scaled-domain reserve payment = %v, want 60", got)
	}

	// Explicit zero reserve: binding, so the pivotal winner is paid its own
	// SCALED report (10), not its raw price (5).
	out, err = ssamScaled(ins, scaled, Options{ReserveSet: true, Reserve: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Payments[0]; got != 10 {
		t.Fatalf("explicit-zero scaled-domain reserve payment = %v, want own scaled report 10", got)
	}

	// Explicit reserve below the winner's own scaled report: individual
	// rationality floors the payment at the scaled report.
	out, err = ssamScaled(ins, scaled, Options{Reserve: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Payments[0]; got != 10 {
		t.Fatalf("below-report reserve payment = %v, want own scaled report 10", got)
	}
}

// TestReservePaymentSingleBidder pins the degenerate single-bidder auction:
// no competitors exist to derive a reserve from, so the pivotal winner is
// paid its own (scaled) report under every reserve configuration except an
// explicit higher reserve.
func TestReservePaymentSingleBidder(t *testing.T) {
	ins := &Instance{
		Demand: []int{2},
		Bids: []Bid{
			{Bidder: 1, Price: 8, Covers: []int{0}, Units: 2},
		},
	}
	cases := []struct {
		name string
		opts Options
		want float64
	}{
		{"auto-derive finds no competitor", Options{}, 8},
		{"explicit zero reserve", Options{ReserveSet: true, Reserve: 0}, 8},
		{"reserve below own report", Options{Reserve: 2}, 8},
		{"reserve above own report", Options{Reserve: 50}, 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := SSAM(ins, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := out.Payments[0]; got != tc.want {
				t.Fatalf("payment = %v, want %v", got, tc.want)
			}
		})
	}
}
