package core

import (
	"math/rand"
	"strings"
	"testing"
)

// TestSpotCheckPassesOnHonestOutcomes replays random and tie-prone
// instances (raw and ψ-scaled domains, all reserve configurations) and
// spot-checks every winner of every honest run: no property may trip.
func TestSpotCheckPassesOnHonestOutcomes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reserves := []Options{{}, {ReserveSet: true, Reserve: 0}, {Reserve: 40}}
	for trial := 0; trial < 12; trial++ {
		var ins *Instance
		if trial%2 == 0 {
			ins = randomInstance(rng, 3+rng.Intn(6), 2+rng.Intn(3), 1+rng.Intn(3))
		} else {
			ins = tieProneInstance(rng, 3+rng.Intn(6), 2+rng.Intn(3), 1+rng.Intn(3))
		}
		raw := make([]float64, len(ins.Bids))
		psi := make([]float64, len(ins.Bids))
		factor := 1 + rng.Float64()
		for i, b := range ins.Bids {
			raw[i] = b.Price
			psi[i] = b.Price * factor
		}
		for _, scaled := range [][]float64{raw, psi} {
			for ri, res := range reserves {
				opts := Options{Reserve: res.Reserve, ReserveSet: res.ReserveSet, SkipCertificate: true}
				out, err := ssamScaled(ins, scaled, opts)
				if err != nil {
					t.Fatalf("trial %d reserve %d: %v", trial, ri, err)
				}
				for _, w := range out.Winners {
					if err := SpotCheckCriticalValue(ins, scaled, opts, w, out.Payments[w]); err != nil {
						t.Fatalf("trial %d reserve %d winner %d: %v", trial, ri, w, err)
					}
				}
			}
		}
	}
}

// TestSpotCheckCatchesCorruptPayment perturbs an honest payment and
// expects the consistency check to reject it.
func TestSpotCheckCatchesCorruptPayment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ins := randomInstance(rng, 6, 3, 2)
	scaled := make([]float64, len(ins.Bids))
	for i, b := range ins.Bids {
		scaled[i] = b.Price
	}
	out, err := ssamScaled(ins, scaled, Options{SkipCertificate: true})
	if err != nil {
		t.Fatal(err)
	}
	w := out.Winners[0]
	err = SpotCheckCriticalValue(ins, scaled, Options{}, w, out.Payments[w]*0.75)
	if err == nil || !strings.Contains(err.Error(), "platform claims") {
		t.Fatalf("corrupt payment not caught: %v", err)
	}
}

// TestSpotCheckPivotalWinner builds a round with a single possible
// supplier: the reserve rule must set its payment, and a misreported
// payment must be rejected.
func TestSpotCheckPivotalWinner(t *testing.T) {
	ins := &Instance{
		Demand: []int{2},
		Bids: []Bid{
			{Bidder: 1, Alt: 0, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 2},
			{Bidder: 2, Alt: 0, Price: 25, TrueCost: 25, Covers: []int{0}, Units: 1},
		},
	}
	scaled := []float64{10, 25}
	opts := Options{SkipCertificate: true}
	out, err := ssamScaled(ins, scaled, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 1 || out.Winners[0] != 0 {
		t.Fatalf("winners = %v, want bid 0 alone", out.Winners)
	}
	// Bidder 1 is pivotal (bidder 2 alone covers 1 of 2 units); the
	// auto-derived reserve is bidder 2's scaled price.
	if out.Payments[0] != 25 {
		t.Fatalf("pivotal payment = %v, want reserve 25", out.Payments[0])
	}
	if err := SpotCheckCriticalValue(ins, scaled, opts, 0, out.Payments[0]); err != nil {
		t.Fatal(err)
	}
	if err := SpotCheckCriticalValue(ins, scaled, opts, 0, 26); err == nil {
		t.Fatal("misreported pivotal payment not caught")
	}
}

// TestSpotCheckRejectsBadInputs covers the guard paths: non-winner
// index, out-of-range index, wrong payment rule, bad scaled length.
func TestSpotCheckRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ins := randomInstance(rng, 5, 2, 1)
	scaled := make([]float64, len(ins.Bids))
	for i, b := range ins.Bids {
		scaled[i] = b.Price
	}
	out, err := ssamScaled(ins, scaled, Options{SkipCertificate: true})
	if err != nil {
		t.Fatal(err)
	}
	loser := -1
	for i := range ins.Bids {
		if !out.Won(i) {
			loser = i
			break
		}
	}
	if loser >= 0 {
		if err := SpotCheckCriticalValue(ins, scaled, Options{}, loser, 5); err == nil {
			t.Fatal("non-winner accepted")
		}
	}
	if err := SpotCheckCriticalValue(ins, scaled, Options{}, len(ins.Bids), 5); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := SpotCheckCriticalValue(ins, scaled, Options{Payment: FirstPrice}, out.Winners[0], 5); err == nil {
		t.Fatal("first-price rule accepted")
	}
	if err := SpotCheckCriticalValue(ins, scaled[:1], Options{}, 0, 5); err == nil {
		t.Fatal("short scaled vector accepted")
	}
}
