package core

import (
	"errors"
	"fmt"
)

// SpotCheckCriticalValue independently re-derives the critical-value
// properties of one winning bid and returns a non-nil error on the first
// violated property. It is the auditor-side counterpart of the payment
// phase: given the instance a round actually ran on, its scaled price
// vector, the mechanism options, a winner index w, and the payment the
// platform claims to have granted, it replays the auction from scratch
// (serial, certificates off, untraced — the knobs that can't change
// outcomes are forced to their cheapest setting) and machine-checks:
//
//  1. Consistency: the truthful replay selects w and pays exactly the
//     claimed payment (bit-equal — the mechanism is deterministic).
//  2. Pivotality: if removing w's entire bidder makes the round
//     infeasible, the payment must equal the reserve rule's value;
//     otherwise the payment must be at least w's scaled report (IR).
//  3. Report independence: halving w's own scaled report must leave w
//     winning with a bit-identical payment — the critical value excludes
//     the whole bidder, so w's report must never move its own price.
//  4. Threshold (single-bid bidders only, non-pivotal): reporting just
//     above the payment must make w lose, and reporting just below it
//     must keep w winning at the same payment. For bidders with several
//     alternative bids the critical value is not an exact unilateral
//     threshold, so these two probes are skipped.
//
// The checks only apply under the CriticalValue payment rule; any other
// rule returns an error immediately. Each call costs a handful of full
// auction runs, so auditors sample winners rather than checking all.
func SpotCheckCriticalValue(ins *Instance, scaled []float64, opts Options, w int, payment float64) error {
	if opts.Payment != 0 && opts.Payment != CriticalValue {
		return fmt.Errorf("core: spot-check requires the critical-value payment rule, got %v", opts.Payment)
	}
	if w < 0 || w >= len(ins.Bids) {
		return fmt.Errorf("core: spot-check winner index %d out of range [0,%d)", w, len(ins.Bids))
	}
	if len(scaled) != len(ins.Bids) {
		return fmt.Errorf("core: spot-check scaled vector has %d entries for %d bids", len(scaled), len(ins.Bids))
	}
	opts.SkipCertificate = true
	opts.Parallelism = 1
	opts.Tracer = nil
	const eps = 1e-9
	bidder := ins.Bids[w].Bidder

	// 1. Truthful replay.
	truth, err := ssamScaled(ins, scaled, opts)
	if err != nil {
		return fmt.Errorf("core: spot-check truthful replay: %w", err)
	}
	if !truth.Won(w) {
		return fmt.Errorf("core: spot-check: bid %d (bidder %d) does not win the truthful replay", w, bidder)
	}
	if got := truth.Payments[w]; got != payment {
		return fmt.Errorf("core: spot-check: truthful replay pays bid %d exactly %v, platform claims %v", w, got, payment)
	}

	// 2. Counterfactual without w's entire bidder.
	sub := &Instance{Demand: ins.Demand}
	var subScaled []float64
	for i, b := range ins.Bids {
		if b.Bidder != bidder {
			sub.Bids = append(sub.Bids, b)
			subScaled = append(subScaled, scaled[i])
		}
	}
	pivotal := false
	if _, err := ssamScaled(sub, subScaled, opts); err != nil {
		if !errors.Is(err, ErrInfeasible) {
			return fmt.Errorf("core: spot-check counterfactual replay: %w", err)
		}
		pivotal = true
	}
	if pivotal {
		if want := reservePayment(ins, scaled, w, opts); payment != want {
			return fmt.Errorf("core: spot-check: pivotal bid %d paid %v, reserve rule demands %v", w, payment, want)
		}
		// The reserve is clamped at the winner's own scaled report, so the
		// report-independence and threshold probes do not apply.
		return nil
	}
	if payment < scaled[w]-eps {
		return fmt.Errorf("core: spot-check: bid %d paid %v below its scaled report %v (IR violation)", w, payment, scaled[w])
	}

	// 3. Report independence: halve w's own scaled report.
	if scaled[w] > 0 {
		low := append([]float64(nil), scaled...)
		low[w] = scaled[w] * 0.5
		out, err := ssamScaled(ins, low, opts)
		if err != nil {
			return fmt.Errorf("core: spot-check lower-report replay: %w", err)
		}
		if !out.Won(w) {
			return fmt.Errorf("core: spot-check: bid %d stops winning when it lowers its report (monotonicity violation)", w)
		}
		if got := out.Payments[w]; got != payment {
			return fmt.Errorf("core: spot-check: lowering bid %d's report moved its payment %v -> %v (report dependence)", w, payment, got)
		}
	}

	// 4. Exact-threshold probes, valid only for single-bid bidders.
	single := true
	for i, b := range ins.Bids {
		if i != w && b.Bidder == bidder {
			single = false
			break
		}
	}
	if !single || payment <= 0 {
		return nil
	}
	high := append([]float64(nil), scaled...)
	high[w] = payment * 1.01
	out, err := ssamScaled(ins, high, opts)
	if err != nil && !errors.Is(err, ErrInfeasible) {
		return fmt.Errorf("core: spot-check raised-report replay: %w", err)
	}
	if err == nil && out.Won(w) {
		return fmt.Errorf("core: spot-check: bid %d still wins reporting %v, above its critical value %v", w, high[w], payment)
	}
	if near := payment * 0.999; near > scaled[w] {
		high[w] = near
		out, err := ssamScaled(ins, high, opts)
		if err != nil {
			return fmt.Errorf("core: spot-check near-threshold replay: %w", err)
		}
		if !out.Won(w) {
			return fmt.Errorf("core: spot-check: bid %d loses reporting %v, below its critical value %v", w, near, payment)
		}
		if got := out.Payments[w]; got != payment {
			return fmt.Errorf("core: spot-check: near-threshold report moved bid %d's payment %v -> %v", w, payment, got)
		}
	}
	return nil
}
