package core

import "sort"

// IngestBuffer accumulates a round's bids shard-by-shard in the flat
// layout the SSAM kernel consumes, so the platform's gather phase can
// append bids as they arrive off the wire instead of growing one []Bid
// and re-allocating every cover slice per round.
//
// Sharding rule: a bid lands in the shard of the first needy
// microservice it covers (firstCover mod shards). Cover sets in the
// edge-cloud workloads are localized — a microservice bids on the needy
// services in its own neighborhood — so the rule keeps each shard's
// cover arena contiguous for the needy partition it serves, which is
// exactly the layout kernel.build's CSR pass walks. The shard choice
// never affects the mechanism: Build re-emits every bid in the global
// canonical (Bidder, Alt) order, so the assembled Instance — and hence
// winners, payments, WAL bytes, and state hash — is byte-identical no
// matter how bids were routed or in what order they arrived.
//
// All append storage (per-shard bid headers, cover arenas, the
// assembled Instance.Bids and the merge scratch) is retained across
// Reset calls, so a server running rounds back to back performs no
// per-round bookkeeping allocations once the high-water mark is
// reached.
//
// An IngestBuffer is not safe for concurrent use; the platform
// serializes Add calls under its gather lock.
type IngestBuffer struct {
	shards []ingestShard
	demand []int

	// assembled instance storage, reused across rounds.
	bids   []Bid
	sorter canonicalBids
	inst   Instance
}

// canonicalBids sorts a bid slice into the canonical (Bidder, Alt)
// order. It lives as a field so sort.Sort sees an already-boxed pointer
// and the Build path stays allocation-free.
type canonicalBids struct{ bids []Bid }

func (c *canonicalBids) Len() int      { return len(c.bids) }
func (c *canonicalBids) Swap(i, j int) { c.bids[i], c.bids[j] = c.bids[j], c.bids[i] }
func (c *canonicalBids) Less(i, j int) bool {
	if c.bids[i].Bidder != c.bids[j].Bidder {
		return c.bids[i].Bidder < c.bids[j].Bidder
	}
	return c.bids[i].Alt < c.bids[j].Alt
}

// ingestShard is one needy-partition append buffer: fixed-size bid
// headers plus a flat cover arena indexed by [start, start+n).
type ingestShard struct {
	heads []ingestHead
	arena []int
}

// ingestHead is one bid without its cover slice materialized; covers
// live in the shard arena so arena growth cannot invalidate them.
type ingestHead struct {
	bidder, alt int
	price       float64
	coverStart  int
	coverLen    int
	units       int
}

// NewIngestBuffer returns a buffer with the given shard count (values
// below 1 are treated as 1).
func NewIngestBuffer(shards int) *IngestBuffer {
	if shards < 1 {
		shards = 1
	}
	return &IngestBuffer{shards: make([]ingestShard, shards)}
}

// Shards returns the shard count.
func (ib *IngestBuffer) Shards() int { return len(ib.shards) }

// Reset opens the buffer for a new round with the given residual
// demand. The demand slice is referenced, not copied; callers must not
// mutate it until after Build's Instance is consumed.
func (ib *IngestBuffer) Reset(demand []int) {
	ib.demand = demand
	for i := range ib.shards {
		ib.shards[i].heads = ib.shards[i].heads[:0]
		ib.shards[i].arena = ib.shards[i].arena[:0]
	}
	ib.bids = ib.bids[:0]
}

// shardOf routes a bid by its needy partition: the first covered needy
// microservice selects the shard.
func (ib *IngestBuffer) shardOf(covers []int) int {
	if len(covers) == 0 || len(ib.shards) == 1 {
		return 0
	}
	k := covers[0]
	if k < 0 {
		k = -k
	}
	return k % len(ib.shards)
}

// Add appends one bid. Covers is copied into the shard's flat arena, so
// the caller may reuse its slice (e.g. a decoded wire message) freely.
func (ib *IngestBuffer) Add(bidder, alt int, price float64, covers []int, units int) {
	sh := &ib.shards[ib.shardOf(covers)]
	start := len(sh.arena)
	sh.arena = append(sh.arena, covers...)
	sh.heads = append(sh.heads, ingestHead{
		bidder: bidder, alt: alt, price: price,
		coverStart: start, coverLen: len(covers), units: units,
	})
}

// Len returns the number of bids added since the last Reset.
func (ib *IngestBuffer) Len() int {
	n := 0
	for i := range ib.shards {
		n += len(ib.shards[i].heads)
	}
	return n
}

// Build assembles the round instance in canonical (Bidder, Alt) order.
// Each bid's Covers aliases its shard's arena — zero per-bid slice
// allocations — so the returned Instance is valid only until the next
// Reset. The sort is deterministic regardless of arrival order or shard
// routing, which is what makes the pipelined gather byte-identical to
// the serial one.
func (ib *IngestBuffer) Build() *Instance {
	total := ib.Len()
	if cap(ib.bids) < total {
		ib.bids = make([]Bid, 0, total)
	}
	ib.bids = ib.bids[:0]
	for s := range ib.shards {
		sh := &ib.shards[s]
		for h := range sh.heads {
			hd := &sh.heads[h]
			ib.bids = append(ib.bids, Bid{
				Bidder:   hd.bidder,
				Alt:      hd.alt,
				Price:    hd.price,
				TrueCost: hd.price,
				Covers:   sh.arena[hd.coverStart : hd.coverStart+hd.coverLen : hd.coverStart+hd.coverLen],
				Units:    hd.units,
			})
		}
	}
	ib.sorter.bids = ib.bids
	sort.Sort(&ib.sorter)
	ib.inst = Instance{Demand: ib.demand, Bids: ib.bids}
	return &ib.inst
}

// RunRoundIngest is the batch-ingest entry point: it assembles the
// buffered bids into the canonical instance and clears round t through
// the online mechanism, equivalent to RunRound over a hand-built
// Instance with the same bids in any order.
func (m *MSOA) RunRoundIngest(t int, ib *IngestBuffer) *RoundResult {
	return m.RunRound(Round{T: t, Instance: ib.Build()})
}
