package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// --- registry and spec parsing ---

func TestMechanismRegistryBuiltins(t *testing.T) {
	names := MechanismNames()
	for _, want := range []string{NameSSAM, NameBudgetedSSAM, NamePostedPrice, NameDoubleAuction} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin %q missing from registry (have %v)", want, names)
		}
	}

	mech, err := NewMechanism(MechanismSpec{})
	if err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	if mech.Name() != NameSSAM {
		t.Fatalf("zero spec resolved to %q, want ssam", mech.Name())
	}
	if _, ok := mech.(ScaledMechanism); !ok {
		t.Fatal("ssam mechanism must implement ScaledMechanism")
	}

	if _, err := NewMechanism(MechanismSpec{Name: "no-such-mechanism"}); err == nil {
		t.Fatal("unknown mechanism name must error")
	}
	if _, err := NewMechanism(MechanismSpec{Name: NameBudgetedSSAM}); err == nil {
		t.Fatal("budgeted-ssam without a budget must error")
	}
	if _, err := NewMechanism(MechanismSpec{Name: NameBudgetedSSAM, Budget: 100}); err != nil {
		t.Fatalf("budgeted-ssam with budget: %v", err)
	}

	da, err := NewMechanism(MechanismSpec{Name: NameDoubleAuction})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := da.(Stateful); !ok {
		t.Fatal("double auction must implement Stateful")
	}
	if _, ok := da.(SettlementReporter); !ok {
		t.Fatal("double auction must implement SettlementReporter")
	}
}

func TestRegisterMechanismDuplicatePanics(t *testing.T) {
	RegisterMechanism("test-dup-probe", func(MechanismSpec) (Mechanism, error) {
		return ssamMechanism{}, nil
	})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	RegisterMechanism("test-dup-probe", func(MechanismSpec) (Mechanism, error) {
		return ssamMechanism{}, nil
	})
}

func TestParseMechanismSpec(t *testing.T) {
	cases := []struct {
		in   string
		want MechanismSpec
	}{
		{"", MechanismSpec{}},
		{"ssam", MechanismSpec{Name: NameSSAM}},
		{"budgeted-ssam:budget=500", MechanismSpec{Name: NameBudgetedSSAM, Budget: 500}},
		{"posted-price", MechanismSpec{Name: NamePostedPrice}},
		{"posted-price:epsilon=0.05,lo=12,hi=30,safety=2", MechanismSpec{
			Name:        NamePostedPrice,
			PostedPrice: &PostedPriceConfig{Epsilon: 0.05, PriceLo: 12, PriceHi: 30, Safety: 2},
		}},
		{"posted-price:eps=0.05,price_lo=12,price_hi=30", MechanismSpec{
			Name:        NamePostedPrice,
			PostedPrice: &PostedPriceConfig{Epsilon: 0.05, PriceLo: 12, PriceHi: 30},
		}},
		{"double-auction:discount=0.8,overbook=1.5,penalty=0.25", MechanismSpec{
			Name:          NameDoubleAuction,
			DoubleAuction: &DoubleAuctionConfig{Discount: 0.8, Overbook: 1.5, PenaltyRate: 0.25},
		}},
		{"double-auction:penalty_rate=0.25", MechanismSpec{
			Name:          NameDoubleAuction,
			DoubleAuction: &DoubleAuctionConfig{PenaltyRate: 0.25},
		}},
	}
	for _, tc := range cases {
		got, err := ParseMechanismSpec(tc.in)
		if err != nil {
			t.Errorf("parse %q: %v", tc.in, err)
			continue
		}
		if got.Name != tc.want.Name || got.Budget != tc.want.Budget {
			t.Errorf("parse %q = %+v, want %+v", tc.in, got, tc.want)
		}
		if (got.PostedPrice == nil) != (tc.want.PostedPrice == nil) ||
			(got.PostedPrice != nil && *got.PostedPrice != *tc.want.PostedPrice) {
			t.Errorf("parse %q posted-price = %+v, want %+v", tc.in, got.PostedPrice, tc.want.PostedPrice)
		}
		if (got.DoubleAuction == nil) != (tc.want.DoubleAuction == nil) ||
			(got.DoubleAuction != nil && *got.DoubleAuction != *tc.want.DoubleAuction) {
			t.Errorf("parse %q double-auction = %+v, want %+v", tc.in, got.DoubleAuction, tc.want.DoubleAuction)
		}
	}

	for _, bad := range []string{
		"no-such-mechanism",          // unregistered name
		"posted-price:bogus=1",       // unknown parameter
		"posted-price:epsilon",       // not key=val
		"double-auction:overbook=x",  // not a number
		"no-such-mechanism:param=1",  // unknown name takes no params
		"budgeted-ssam:epsilon=0.05", // parameter of another mechanism
	} {
		if _, err := ParseMechanismSpec(bad); err == nil {
			t.Errorf("parse %q: want error, got none", bad)
		}
	}
}

func TestMechanismSpecStringRoundTrip(t *testing.T) {
	specs := []MechanismSpec{
		{},
		{Name: NameBudgetedSSAM, Budget: 750},
		{Name: NamePostedPrice, PostedPrice: &PostedPriceConfig{Epsilon: 0.05, PriceHi: 40}},
		{Name: NameDoubleAuction, DoubleAuction: &DoubleAuctionConfig{Overbook: 1.5}},
	}
	for _, spec := range specs {
		s := spec.String()
		back, err := ParseMechanismSpec(s)
		if err != nil {
			t.Errorf("reparse %q: %v", s, err)
			continue
		}
		if back.String() != s {
			t.Errorf("round trip %q -> %q", s, back.String())
		}
	}
	if s := (MechanismSpec{}).String(); s != NameSSAM {
		t.Errorf("zero spec renders %q, want %q", s, NameSSAM)
	}
}

// --- dispatch ---

// TestRunMechanismZeroSpecMatchesSSAM: the one-shot API with the zero
// spec must be bit-identical to calling SSAM directly.
func TestRunMechanismZeroSpecMatchesSSAM(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	opts := Options{SkipCertificate: true}
	for trial := 0; trial < 25; trial++ {
		ins := randomInstance(rng, 4+rng.Intn(8), 2+rng.Intn(3), 1+rng.Intn(3))
		want, err1 := SSAM(ins, opts)
		got, err2 := RunMechanism(MechanismSpec{}, ins, opts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error mismatch %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !want.Equal(got) {
			t.Fatalf("trial %d: RunMechanism(zero) diverged from SSAM", trial)
		}
	}
}

// TestMSOAExplicitSSAMSpecBitIdentical: naming "ssam" explicitly must run
// the exact historical code path (MSOA keeps mech == nil for SSAM specs).
func TestMSOAExplicitSSAMSpecBitIdentical(t *testing.T) {
	runAll := func(cfg MSOAConfig) []*RoundResult {
		m := NewMSOA(cfg)
		for r := 1; r <= 4; r++ {
			m.RunRound(simpleRound(r, 2, 10, 14, 20, 30))
		}
		return m.Results()
	}
	base := runAll(MSOAConfig{DefaultCapacity: 3})
	named := runAll(MSOAConfig{DefaultCapacity: 3, Mechanism: MechanismSpec{Name: NameSSAM}})
	if len(base) != len(named) {
		t.Fatalf("round counts differ: %d vs %d", len(base), len(named))
	}
	for i := range base {
		if (base[i].Err == nil) != (named[i].Err == nil) {
			t.Fatalf("round %d: error mismatch", i+1)
		}
		if base[i].Err == nil && !base[i].Outcome.Equal(named[i].Outcome) {
			t.Fatalf("round %d: outcomes diverged under explicit ssam spec", i+1)
		}
	}
}

// TestMSOABadMechanismSurfacesPerRound: a spec that fails to resolve must
// not panic at construction; every round reports the resolution error.
func TestMSOABadMechanismSurfacesPerRound(t *testing.T) {
	m := NewMSOA(MSOAConfig{Mechanism: MechanismSpec{Name: NameBudgetedSSAM}}) // budget missing
	res := m.RunRound(simpleRound(1, 1, 10, 20))
	if res.Err == nil {
		t.Fatal("unresolvable mechanism spec must surface as a round error")
	}
	if !strings.Contains(res.Err.Error(), "budget") {
		t.Fatalf("round error should carry the factory error, got: %v", res.Err)
	}
}

// TestMSOANonScaledMechanismSkipsPsi: a plain Mechanism (no ClearScaled)
// must leave MSOA's ψ duals untouched — the Lemma-4 update is defined on
// scaled prices only.
func TestMSOANonScaledMechanismSkipsPsi(t *testing.T) {
	m := NewMSOA(MSOAConfig{
		DefaultCapacity: 2,
		Mechanism:       MechanismSpec{Name: NameDoubleAuction},
	})
	for r := 1; r <= 3; r++ {
		m.RunRound(simpleRound(r, 1, 10, 20, 30))
	}
	for bidder := 1; bidder <= 3; bidder++ {
		if psi := m.Psi(bidder); psi != 0 {
			t.Fatalf("bidder %d ψ = %v under a non-scaled mechanism, want 0", bidder, psi)
		}
	}
	if m.Mechanism() == nil || m.Mechanism().Name() != NameDoubleAuction {
		t.Fatal("MSOA should expose the resolved mechanism")
	}
}

// --- posted price ---

// TestPostedPriceTruthfulBestResponse is the property test behind the
// arena's regret column: on single-bid (J=1) instances no unilateral
// price misreport may increase a bidder's utility. Infeasible clears are
// zero-utility outcomes.
func TestPostedPriceTruthfulBestResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	opts := Options{SkipCertificate: true}
	spec := MechanismSpec{Name: NamePostedPrice}
	factors := []float64{0.3, 0.5, 0.8, 0.95, 1.05, 1.3, 1.8, 3}
	probes := 0
	for trial := 0; trial < 40; trial++ {
		ins := randomInstance(rng, 4+rng.Intn(8), 2+rng.Intn(3), 1)
		truthful, err := RunMechanism(spec, ins, opts)
		if err != nil && !errors.Is(err, ErrInfeasible) {
			t.Fatal(err)
		}
		for target := range ins.Bids {
			base := probeOutcomeUtility(truthful, ins, target)
			for _, f := range factors {
				dev := ins.Clone()
				dev.Bids[target].Price = ins.Bids[target].TrueCost * f
				out, err := RunMechanism(spec, dev, opts)
				if err != nil && !errors.Is(err, ErrInfeasible) {
					t.Fatal(err)
				}
				probes++
				if gain := probeOutcomeUtility(out, ins, target) - base; gain > 1e-9 {
					t.Fatalf("trial %d bidder %d factor %.2f: misreport gains %.9f — posted price must be truthful for J=1",
						trial, ins.Bids[target].Bidder, f, gain)
				}
			}
		}
	}
	if probes < 1000 {
		t.Fatalf("only %d probes ran — generator drifted?", probes)
	}
}

// probeOutcomeUtility is the target's utility with TrueCost taken from
// the original instance (misreports change only the report).
func probeOutcomeUtility(out *Outcome, ins *Instance, idx int) float64 {
	if out == nil || !out.Won(idx) {
		return 0
	}
	return out.Payments[idx] - ins.Bids[idx].TrueCost
}

// TestPostedPriceLevelIgnoresReports: the posted level may depend on the
// demand and cover structure but never on reported prices.
func TestPostedPriceLevelIgnoresReports(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := NewPostedPrice(PostedPriceConfig{})
	for trial := 0; trial < 20; trial++ {
		ins := randomInstance(rng, 5+rng.Intn(6), 2+rng.Intn(3), 1+rng.Intn(2))
		level := p.PostedLevel(ins)
		scaled := ins.Clone()
		for i := range scaled.Bids {
			scaled.Bids[i].Price *= 0.1 + 5*rng.Float64()
		}
		if got := p.PostedLevel(scaled); got != level {
			t.Fatalf("trial %d: level moved %v -> %v when only reports changed", trial, level, got)
		}
	}
}

// TestPostedPricePaysPostedLevel: every winner is paid exactly π and π
// covers its report (IR).
func TestPostedPricePaysPostedLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := NewPostedPrice(PostedPriceConfig{})
	cleared := 0
	for trial := 0; trial < 40; trial++ {
		ins := randomInstance(rng, 6+rng.Intn(6), 2+rng.Intn(3), 1)
		out, err := p.Clear(ins, Options{})
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		cleared++
		level := p.PostedLevel(ins)
		for _, w := range out.Winners {
			if out.Payments[w] != level {
				t.Fatalf("winner %d paid %v, want posted level %v", w, out.Payments[w], level)
			}
			if ins.Bids[w].Price > level {
				t.Fatalf("winner %d reported %v above the level %v — IR broken", w, ins.Bids[w].Price, level)
			}
		}
		if err := VerifyFeasible(ins, out); err != nil {
			t.Fatalf("posted-price outcome infeasible: %v", err)
		}
	}
	if cleared == 0 {
		t.Fatal("no instance cleared — defaults too strict for the generator?")
	}
}

// --- double auction ---

// daRounds generates a deterministic multi-round workload with churn:
// bidders drop in and out so the futures book sees no-shows.
func daRounds(seed int64, rounds int) []Round {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Round, 0, rounds)
	for r := 1; r <= rounds; r++ {
		ins := randomInstance(rng, 4+rng.Intn(6), 2+rng.Intn(2), 1+rng.Intn(2))
		if rng.Intn(2) == 0 && len(ins.Bids) > 2 {
			// Drop a random non-reserve bidder's bids: booked reservations
			// from the previous round turn into no-shows.
			drop := 1 + rng.Intn(3)
			kept := ins.Bids[:0]
			for _, b := range ins.Bids {
				if b.Bidder != drop {
					kept = append(kept, b)
				}
			}
			ins.Bids = kept
		}
		out = append(out, Round{T: r, Instance: ins})
	}
	return out
}

// TestDoubleAuctionSettlementConservesBudget: on every feasible round the
// outcome's total payment must equal FuturesPaid + SpotPaid exactly, the
// penalty bound must verify, and every payment must cover the winning
// report (IR).
func TestDoubleAuctionSettlementConservesBudget(t *testing.T) {
	d := NewDoubleAuction(DoubleAuctionConfig{})
	var penalties float64
	feasible := 0
	for _, r := range daRounds(81, 40) {
		out, err := d.Clear(r.Instance, Options{})
		st := d.LastSettlement()
		if st == nil {
			t.Fatal("settlement missing after Clear")
		}
		if verr := VerifyPenaltyBound(st, d.SettlementConfig()); verr != nil {
			t.Fatalf("round %d: %v", r.T, verr)
		}
		penalties += st.Penalties
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		feasible++
		if settled, paid := st.FuturesPaid+st.SpotPaid, out.TotalPayment(); math.Abs(settled-paid) > 1e-6 {
			t.Fatalf("round %d: settlement %v != total payment %v", r.T, settled, paid)
		}
		for _, w := range out.Winners {
			if out.Payments[w] < r.Instance.Bids[w].Price-1e-9 {
				t.Fatalf("round %d winner %d paid %v below report %v — IR broken",
					r.T, w, out.Payments[w], r.Instance.Bids[w].Price)
			}
		}
		if err := VerifyFeasible(r.Instance, out); err != nil {
			t.Fatalf("round %d: %v", r.T, err)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible rounds — workload too harsh")
	}
	if math.Abs(penalties-d.TotalPenalties()) > 1e-9 {
		t.Fatalf("per-round penalties sum %v != TotalPenalties %v", penalties, d.TotalPenalties())
	}
}

// TestDoubleAuctionDeterministicReplay: two fresh books fed the same
// round sequence must produce bit-identical outcomes and settlements —
// the property WAL replay and the chaos shadow depend on.
func TestDoubleAuctionDeterministicReplay(t *testing.T) {
	run := func() ([]*Outcome, []Settlement) {
		d := NewDoubleAuction(DoubleAuctionConfig{})
		var outs []*Outcome
		var sts []Settlement
		for _, r := range daRounds(83, 25) {
			out, _ := d.Clear(r.Instance, Options{})
			outs = append(outs, out)
			sts = append(sts, *d.LastSettlement())
		}
		return outs, sts
	}
	o1, s1 := run()
	o2, s2 := run()
	for i := range o1 {
		if (o1[i] == nil) != (o2[i] == nil) {
			t.Fatalf("round %d: feasibility diverged", i+1)
		}
		if o1[i] != nil && !o1[i].Equal(o2[i]) {
			t.Fatalf("round %d: outcomes diverged", i+1)
		}
		if s1[i] != s2[i] {
			t.Fatalf("round %d: settlements diverged: %+v vs %+v", i+1, s1[i], s2[i])
		}
	}
}

// TestDoubleAuctionNoShowPenalty: a booked bidder that vanishes next
// round is charged exactly PenaltyRate × its committed futures price.
// Discount is 1 so the bidders that stay re-report exactly their
// commitment and execute (with δ<1 a constant-price bidder re-reports
// ABOVE its discounted commitment and settles as a seller deviation).
func TestDoubleAuctionNoShowPenalty(t *testing.T) {
	cfg := DoubleAuctionConfig{Discount: 1, Overbook: 10, PenaltyRate: 0.5}
	d := NewDoubleAuction(cfg)
	r1 := simpleRound(1, 1, 10, 20, 30)
	if _, err := d.Clear(r1.Instance, Options{}); err != nil {
		t.Fatal(err)
	}
	if d.BookSize() == 0 {
		t.Fatal("nothing booked after round 1")
	}
	// Round 2 without bidder 1 (the cheapest, certainly booked at 0.9×10).
	r2 := Round{T: 2, Instance: &Instance{
		Demand: []int{1},
		Bids: []Bid{
			{Bidder: 2, Price: 20, TrueCost: 20, Covers: []int{0}, Units: 1},
			{Bidder: 3, Price: 30, TrueCost: 30, Covers: []int{0}, Units: 1},
		},
	}}
	if _, err := d.Clear(r2.Instance, Options{}); err != nil {
		t.Fatal(err)
	}
	st := d.LastSettlement()
	if st.NoShows != 1 {
		t.Fatalf("no-shows = %d, want 1 (settlement %+v)", st.NoShows, st)
	}
	if st.Executed != 2 {
		t.Fatalf("executed = %d, want 2 (settlement %+v)", st.Executed, st)
	}
	wantPenalty := cfg.PenaltyRate * cfg.Discount * 10
	if math.Abs(st.Penalties-wantPenalty) > 1e-9 {
		t.Fatalf("penalty %v, want %v", st.Penalties, wantPenalty)
	}
	if err := VerifyPenaltyBound(st, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleAuctionReset: Reset must void the book and the penalty tally.
func TestDoubleAuctionReset(t *testing.T) {
	d := NewDoubleAuction(DoubleAuctionConfig{})
	r := simpleRound(1, 1, 10, 20)
	if _, err := d.Clear(r.Instance, Options{}); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	if d.BookSize() != 0 || d.LastSettlement() != nil || d.TotalPenalties() != 0 {
		t.Fatal("Reset left state behind")
	}
}

// TestVerifyPenaltyBoundRejectsRiggedSettlements: every invariant of the
// penalty bound must trip on a violating settlement.
func TestVerifyPenaltyBoundRejectsRiggedSettlements(t *testing.T) {
	cfg := DoubleAuctionConfig{PenaltyRate: 0.5}
	cases := []struct {
		name string
		st   Settlement
	}{
		{"negative penalties", Settlement{Penalties: -1}},
		{"penalties above rate bound", Settlement{BookedValue: 100, NoShowValue: 10, Penalties: 20}},
		{"futures paid above booked", Settlement{BookedValue: 10, FuturesPaid: 15}},
		{"defaulted above booked", Settlement{BookedValue: 10, NoShowValue: 15, Penalties: 0}},
	}
	for _, tc := range cases {
		if err := VerifyPenaltyBound(&tc.st, cfg); err == nil {
			t.Errorf("%s: want violation, got none", tc.name)
		}
	}
	if err := VerifyPenaltyBound(nil, cfg); err == nil {
		t.Error("nil settlement: want error")
	}
	ok := Settlement{BookedValue: 100, FuturesPaid: 60, NoShowValue: 40, Penalties: 20}
	if err := VerifyPenaltyBound(&ok, cfg); err != nil {
		t.Errorf("clean settlement rejected: %v", err)
	}
}
