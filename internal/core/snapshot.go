package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"
)

// MSOAState is a serializable snapshot of the online mechanism's
// cross-round state: the per-bidder dual variables ψ_i, the consumed
// capacity slots χ_i, and the aggregate summary accumulated so far. It is
// everything MSOA carries between rounds — a mechanism restored from a
// state produced by Snapshot selects, pays, and updates ψ exactly like
// the original would have, which is what makes the platform's
// write-ahead-log recovery (internal/platform.Recover) exact.
//
// The encoding is canonical: bidder entries are sorted by id and floats
// round-trip bit-exactly through encoding/json's shortest representation,
// so two identical states marshal to identical bytes and Hash is a stable
// fingerprint.
type MSOAState struct {
	// Bidders holds one entry per bidder with non-zero dual state, sorted
	// ascending by id.
	Bidders []PsiEntry `json:"bidders,omitempty"`
	// Summary is the aggregate outcome of every round folded into this
	// state (social cost, payments, round and winner counts).
	Summary OnlineSummary `json:"summary"`
}

// PsiEntry is one bidder's dual state inside an MSOAState.
type PsiEntry struct {
	// Bidder is the bidder id.
	Bidder int `json:"bidder"`
	// Psi is the dual variable ψ_i (0 if the bidder never won a
	// capacity-limited round).
	Psi float64 `json:"psi"`
	// Chi is χ_i, the lifetime coverage slots consumed so far.
	Chi int `json:"chi"`
}

// Snapshot captures the mechanism's current cross-round state. The result
// is independent of the MSOA (deep copy) and deterministic: entries are
// sorted by bidder id.
func (m *MSOA) Snapshot() *MSOAState {
	ids := make(map[int]bool, len(m.psi)+len(m.chi))
	for id, v := range m.psi {
		if v != 0 {
			ids[id] = true
		}
	}
	for id, v := range m.chi {
		if v != 0 {
			ids[id] = true
		}
	}
	st := &MSOAState{Summary: *m.Summary()}
	if len(ids) > 0 {
		st.Bidders = make([]PsiEntry, 0, len(ids))
		for id := range ids {
			st.Bidders = append(st.Bidders, PsiEntry{Bidder: id, Psi: m.psi[id], Chi: m.chi[id]})
		}
		sort.Slice(st.Bidders, func(i, j int) bool { return st.Bidders[i].Bidder < st.Bidders[j].Bidder })
	}
	return st
}

// RestoreMSOA builds an online auction whose dual state and aggregate
// summary continue from a snapshot. The config plays the same role as in
// NewMSOA — in particular Capacity/Windows maps may be live maps that keep
// learning registrations. A nil state is equivalent to NewMSOA.
func RestoreMSOA(cfg MSOAConfig, st *MSOAState) *MSOA {
	m := NewMSOA(cfg)
	if st == nil {
		return m
	}
	for _, e := range st.Bidders {
		if e.Psi != 0 {
			m.psi[e.Bidder] = e.Psi
		}
		if e.Chi != 0 {
			m.chi[e.Bidder] = e.Chi
		}
	}
	m.base = st.Summary
	return m
}

// Hash returns a stable hex fingerprint of the state: SHA-256 over the
// canonical JSON encoding. Two mechanisms that processed the same rounds
// hash identically; any ψ/χ/summary divergence changes the hash. The WAL
// recovery path compares this against the hash logged per round.
func (st *MSOAState) Hash() string {
	data, err := json.Marshal(st)
	if err != nil {
		// MSOAState contains only ints, floats, and slices; Marshal cannot
		// fail on it. Keep the signature ergonomic.
		panic("core: marshal MSOAState: " + err.Error())
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Equal reports whether two states are exactly identical (bit-exact ψ,
// identical χ and summaries).
func (st *MSOAState) Equal(other *MSOAState) bool {
	if st == nil || other == nil {
		return st == other
	}
	if len(st.Bidders) != len(other.Bidders) || st.Summary != other.Summary {
		return false
	}
	for i, e := range st.Bidders {
		if other.Bidders[i] != e {
			return false
		}
	}
	return true
}
