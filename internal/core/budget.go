package core

import (
	"fmt"
	"math"

	"edgeauction/internal/obs"
)

// This file implements the budgeted variant of the single-stage auction
// described in §IV of the paper: "This process continues until either the
// total budget W is depleted or the last microservice has been processed."
// The platform has a hard payment budget per round; the mechanism must
// remain truthful and individually rational while never paying out more
// than the budget, at the price of possibly leaving demand uncovered.
//
// Design: winners are selected greedily as in SSAM; after each tentative
// selection the critical-value payment is computed, and if the cumulative
// payment would exceed the budget the bid is rejected and its bidder
// excluded. The mechanism is individually rational and never overspends,
// and whenever the budget does NOT bind it coincides exactly with SSAM
// (hence truthful).
//
// LIMITATION (documented honestly): when the budget binds mid-run,
// dominant-strategy truthfulness can fail — a bidder's report shifts the
// selection order and therefore which payments have consumed the budget by
// the time its turn comes. This is inherent to naive budget stopping rules;
// provably truthful budget-feasible procurement needs Singer-style
// proportional-share mechanisms that sacrifice a constant factor of
// coverage. The paper's own remark ("until the total budget W is depleted",
// §IV) carries the same gap; the TruthfulnessSweep experiment quantifies
// it empirically.

// BudgetedOutcome extends Outcome with budget accounting.
type BudgetedOutcome struct {
	Outcome
	// Budget is the payment budget W the auction ran with.
	Budget float64
	// BudgetSpent is the total payment committed (≤ Budget).
	BudgetSpent float64
	// UncoveredDemand is the total coverage left unprocured when the
	// budget ran out (0 when the demand was fully covered).
	UncoveredDemand int
	// RejectedByBudget lists bid indices that won on price but were
	// rejected because their payment did not fit the remaining budget.
	RejectedByBudget []int
}

// BudgetedSSAM runs the single-stage auction under a hard payment budget.
// It returns an outcome even when the demand cannot be fully covered —
// callers inspect UncoveredDemand. A non-positive budget buys nothing.
func BudgetedSSAM(ins *Instance, budget float64, opts Options) (*BudgetedOutcome, error) {
	if math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("core: invalid budget %v", budget)
	}
	scaled := make([]float64, len(ins.Bids))
	for i, b := range ins.Bids {
		scaled[i] = b.Price
	}

	kn := kernelPool.Get().(*kernel)
	defer kn.release()
	if err := kn.build(ins, scaled, opts); err != nil {
		return nil, err
	}
	out := &BudgetedOutcome{
		Outcome: Outcome{Payments: make(map[int]float64)},
		Budget:  budget,
	}
	rs := replayScratchPool.Get().(*replayScratch)
	defer replayScratchPool.Put(rs)

	for kn.deficit > 0 {
		best, score, marginal := kn.popBest()
		if best < 0 {
			break // market exhausted; remaining demand stays uncovered
		}
		winner := &ins.Bids[best]

		// The critical value must be computed against the full candidate
		// set semantics of SSAM (counterfactual without the bidder), not
		// against the budget-filtered set: filtering by budget depends on
		// other payments, which depend on reports, and folding that into
		// the threshold would break report-independence. The budgeted
		// selection path diverges from plain SSAM once the budget binds,
		// so the replay runs from scratch rather than from a checkpoint.
		pay := kn.fullCounterfactual(ins, best, opts, rs)
		if out.BudgetSpent+pay > budget {
			// Cannot afford this winner: reject the bidder entirely.
			out.RejectedByBudget = append(out.RejectedByBudget, int(best))
			kn.removeGroupIn(&kn.cand, kn.groupOf[best])
			continue
		}

		if kn.tracer != nil {
			kn.tracer.Emit(obs.GreedyPick{
				Iteration: len(out.Winners), Bid: int(best),
				Bidder: winner.Bidder, Alt: winner.Alt,
				Score: score, Marginal: marginal, ScaledPrice: scaled[best],
			})
		}
		kn.removeGroupIn(&kn.cand, kn.groupOf[best])
		kn.applyDirty(best)
		out.Winners = append(out.Winners, int(best))
		out.Payments[int(best)] = pay
		out.BudgetSpent += pay
		out.SocialCost += winner.Price
		out.ScaledCost += winner.Price
	}

	out.UncoveredDemand = kn.deficit
	return out, nil
}

// CoverageFraction returns the share of total demand procured, 1 for a
// fully covered round (and for rounds with zero demand).
func (o *BudgetedOutcome) CoverageFraction(ins *Instance) float64 {
	total := ins.TotalDemand()
	if total == 0 {
		return 1
	}
	return float64(total-o.UncoveredDemand) / float64(total)
}
