package core

import (
	"fmt"
)

// This file implements executable checks for the economic properties the
// paper proves (Definitions 2-5, Theorems 4-5). Tests and the experiment
// harness run them on every produced outcome; a non-nil error means the
// mechanism implementation violated a proved property and is a bug.

// VerifyFeasible checks primal feasibility of an outcome against its
// instance (Theorem 2): every needy microservice's demand is covered, each
// bidder wins at most one bid, winners are valid distinct bid indices, and
// only winners receive payments.
func VerifyFeasible(ins *Instance, out *Outcome) error {
	theta := make([]int, len(ins.Demand))
	seenBid := make(map[int]struct{}, len(out.Winners))
	seenBidder := make(map[int]struct{}, len(out.Winners))
	for _, w := range out.Winners {
		if w < 0 || w >= len(ins.Bids) {
			return fmt.Errorf("core: winner index %d out of range [0,%d)", w, len(ins.Bids))
		}
		if _, dup := seenBid[w]; dup {
			return fmt.Errorf("core: bid %d selected twice", w)
		}
		seenBid[w] = struct{}{}
		b := &ins.Bids[w]
		if _, dup := seenBidder[b.Bidder]; dup {
			return fmt.Errorf("core: bidder %d wins more than one bid (constraint 9)", b.Bidder)
		}
		seenBidder[b.Bidder] = struct{}{}
		for _, k := range b.Covers {
			theta[k] += b.Units
		}
	}
	for k, d := range ins.Demand {
		if theta[k] < d {
			return fmt.Errorf("core: needy microservice %d covered %d < demand %d (constraint 10)", k, theta[k], d)
		}
	}
	for idx := range out.Payments {
		if _, ok := seenBid[idx]; !ok {
			return fmt.Errorf("core: losing bid %d received a payment", idx)
		}
	}
	return nil
}

// VerifyIndividualRationality checks Definition 2 / Theorem 5: every
// winner's payment covers the price of its winning bid, so a truthful
// bidder's utility is non-negative. scaled may be nil, in which case raw
// prices are used (the standalone SSAM setting).
func VerifyIndividualRationality(ins *Instance, out *Outcome, scaled []float64) error {
	const eps = 1e-9
	for _, w := range out.Winners {
		price := ins.Bids[w].Price
		if scaled != nil {
			price = scaled[w]
		}
		if pay := out.Payments[w]; pay < price-eps {
			return fmt.Errorf("core: winner bid %d paid %.6f < price %.6f", w, pay, price)
		}
	}
	return nil
}

// VerifyCapacity checks constraint (11) across an online run: no bidder's
// cumulative coverage (Σ |S_ij| over its winning bids) exceeds Θ_i.
func VerifyCapacity(cfg MSOAConfig, rounds []Round, results []*RoundResult) error {
	used := make(map[int]int)
	for ri, res := range results {
		if res.Err != nil {
			continue
		}
		ins := rounds[ri].Instance
		for _, w := range res.Outcome.Winners {
			b := &ins.Bids[w]
			used[b.Bidder] += len(b.Covers)
			theta, limited := cfg.capacityOf(b.Bidder)
			if limited && used[b.Bidder] > theta {
				return fmt.Errorf("core: bidder %d used %d coverage slots > capacity %d after round %d (constraint 11)",
					b.Bidder, used[b.Bidder], theta, res.T)
			}
		}
	}
	return nil
}

// VerifyWindows checks that no bid outside its bidder's participation
// window [t⁻, t⁺] ever won.
func VerifyWindows(cfg MSOAConfig, rounds []Round, results []*RoundResult) error {
	for ri, res := range results {
		if res.Err != nil {
			continue
		}
		ins := rounds[ri].Instance
		for _, w := range res.Outcome.Winners {
			b := &ins.Bids[w]
			if win, ok := cfg.Windows[b.Bidder]; ok && !win.Contains(res.T) {
				return fmt.Errorf("core: bidder %d won in round %d outside window [%d,%d]",
					b.Bidder, res.T, win.Arrive, win.Depart)
			}
		}
	}
	return nil
}

// BuyerCharges distributes the platform's payment outlay over the needy
// microservices in proportion to their covered demand, marked up by
// margin ≥ 0 (the platform's cut). By construction the total charge is
// (1+margin) × total payment, so Definition 5 (no economic loss) holds;
// VerifyNoEconomicLoss re-checks it numerically.
func BuyerCharges(ins *Instance, out *Outcome, margin float64) map[int]float64 {
	total := out.TotalPayment() * (1 + margin)
	demand := ins.TotalDemand()
	charges := make(map[int]float64, len(ins.Demand))
	if demand == 0 {
		return charges
	}
	perUnit := total / float64(demand)
	for k, d := range ins.Demand {
		if d > 0 {
			charges[k] = perUnit * float64(d)
		}
	}
	return charges
}

// VerifyNoEconomicLoss checks Definition 5: the buyers' charges cover the
// sellers' payments.
func VerifyNoEconomicLoss(out *Outcome, charges map[int]float64) error {
	const eps = 1e-6
	var charged float64
	for _, c := range charges {
		charged += c
	}
	if paid := out.TotalPayment(); charged < paid-eps {
		return fmt.Errorf("core: buyers charged %.6f < sellers paid %.6f (economic loss)", charged, paid)
	}
	return nil
}

// VerifyCertificate checks the primal-dual certificate: Primal equals the
// outcome's scaled cost, DualObjective·W·Ξ equals Primal, and the fitted
// dual respects every bid's constraint (Lemma 1).
func VerifyCertificate(ins *Instance, out *Outcome, scaled []float64) error {
	const eps = 1e-6
	cert := out.Dual
	if cert == nil {
		return fmt.Errorf("core: outcome carries no dual certificate")
	}
	if diff := cert.Primal - out.ScaledCost; diff > eps || diff < -eps {
		return fmt.Errorf("core: certificate primal %.6f != scaled cost %.6f", cert.Primal, out.ScaledCost)
	}
	if cert.DualObjective > cert.Primal+eps {
		return fmt.Errorf("core: dual objective %.6f exceeds primal %.6f (weak duality broken)",
			cert.DualObjective, cert.Primal)
	}
	if scaled == nil {
		scaled = make([]float64, len(ins.Bids))
		for i, b := range ins.Bids {
			scaled[i] = b.Price
		}
	}
	if idx, violation := cert.CheckFeasible(ins, scaled); idx >= 0 {
		return fmt.Errorf("core: dual constraint violated at bid %d by %.6f (Lemma 1)", idx, violation)
	}
	return nil
}
