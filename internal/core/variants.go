package core

// Variant identifies the MSOA flavours compared in §V-B / Figure 5.
type Variant int

const (
	// VariantBase is plain MSOA driven by the (noisy) online demand
	// estimate of §III.
	VariantBase Variant = iota + 1
	// VariantDA is MSOA-DA: MSOA with the optimal demand estimation
	// scheme, i.e. the mechanism procures exactly the true residual
	// demand instead of a noisy estimate.
	VariantDA
	// VariantRC is MSOA-RC: MSOA with higher resource capacity values —
	// every bidder's Θ_i is relaxed by CapacityFactor, loosening the
	// online protection constraint.
	VariantRC
	// VariantOA is MSOA-OA: both the demand estimate and the capacity
	// constraints are optimized (oracle demand + relaxed capacity).
	VariantOA
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantBase:
		return "MSOA"
	case VariantDA:
		return "MSOA-DA"
	case VariantRC:
		return "MSOA-RC"
	case VariantOA:
		return "MSOA-OA"
	default:
		return "MSOA-?"
	}
}

// VariantParams controls how variants transform a base scenario.
type VariantParams struct {
	// CapacityFactor multiplies every Θ_i for the RC and OA variants.
	// Zero means 2.
	CapacityFactor float64
}

func (p VariantParams) capacityFactor() float64 {
	if p.CapacityFactor == 0 {
		return 2
	}
	return p.CapacityFactor
}

// BuildVariant derives the round sequence and configuration a variant runs
// with, from the true-demand rounds, the estimated-demand rounds (same
// shape, demands replaced by the §III estimator's output), and the base
// configuration. The returned rounds share bid slices with the inputs; do
// not mutate them.
func BuildVariant(v Variant, params VariantParams, trueRounds, estimatedRounds []Round, cfg MSOAConfig) ([]Round, MSOAConfig) {
	rounds := estimatedRounds
	if v == VariantDA || v == VariantOA {
		rounds = trueRounds
	}
	if v == VariantRC || v == VariantOA {
		factor := params.capacityFactor()
		// Copy the config wholesale and override only the capacity fields:
		// a field-by-field literal silently drops any setting it does not
		// name (this previously lost DefaultCapacitySet and
		// CapacityExemptFrom, turning an explicit zero default capacity
		// into "unlimited" and capacity-limiting the platform's exempt
		// fallback supply under RC/OA).
		scaled := cfg
		scaled.DefaultCapacity = int(float64(cfg.DefaultCapacity) * factor)
		if cfg.Capacity != nil {
			scaled.Capacity = make(map[int]int, len(cfg.Capacity))
			for bidder, theta := range cfg.Capacity {
				scaled.Capacity[bidder] = int(float64(theta) * factor)
			}
		}
		cfg = scaled
	}
	return rounds, cfg
}

// RunVariant executes the variant end to end and returns its summary.
func RunVariant(v Variant, params VariantParams, trueRounds, estimatedRounds []Round, cfg MSOAConfig) *OnlineSummary {
	rounds, vcfg := BuildVariant(v, params, trueRounds, estimatedRounds, cfg)
	return NewMSOA(vcfg).Run(rounds)
}
