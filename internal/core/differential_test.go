package core

import (
	"fmt"
	"math/rand"
	"testing"
)

func dualString(d *DualCertificate) string {
	if d == nil {
		return "<nil>"
	}
	return fmt.Sprintf("{W=%v Xi=%v Primal=%v Obj=%v Y=%v Z=%v}",
		d.W, d.Xi, d.Primal, d.DualObjective, d.Y, d.Z)
}

// This file is the standing differential gate between the optimized kernel
// (kernel.go: CSR covers, compact swap-delete candidates, checkpointed
// payment replays) and the straightforward seed implementation preserved in
// reference_test.go. Every comparison is EXACT — Outcome.Equal applies no
// epsilon — because the kernel's optimizations are designed to preserve the
// float64 operation sequence bit for bit.

// diffOptionGrid enumerates every option combination the differential tests
// sweep: both greedy metrics, both payment rules, the three reserve
// configurations (auto-derive, explicit zero, explicit non-zero), both
// certificate modes, and parallelism 1 and 4.
func diffOptionGrid() []Options {
	var grid []Options
	for _, metric := range []GreedyMetric{PricePerCoverage, LowestPrice} {
		for _, payment := range []PaymentRule{CriticalValue, FirstPrice} {
			for _, reserve := range []Options{
				{},
				{ReserveSet: true, Reserve: 0},
				{Reserve: 40},
			} {
				for _, skipCert := range []bool{false, true} {
					for _, par := range []int{1, 4} {
						grid = append(grid, Options{
							Metric:          metric,
							Payment:         payment,
							Reserve:         reserve.Reserve,
							ReserveSet:      reserve.ReserveSet,
							SkipCertificate: skipCert,
							Parallelism:     par,
						})
					}
				}
			}
		}
	}
	return grid
}

// tieProneInstance generates instances whose scores collide exactly: prices
// from a small discrete grid and units in {1, 2} make equal
// price-per-coverage ratios common, exercising the lowest-index tie-break
// on both paths.
func tieProneInstance(rng *rand.Rand, bidders, needy, bidsPer int) *Instance {
	prices := []float64{8, 10, 12, 16, 24}
	ins := &Instance{Demand: make([]int, needy)}
	for k := range ins.Demand {
		ins.Demand[k] = 1 + rng.Intn(4)
	}
	for b := 1; b <= bidders; b++ {
		for j := 0; j < bidsPer; j++ {
			n := 1 + rng.Intn(needy)
			covers := rng.Perm(needy)[:n]
			sortInts(covers)
			p := prices[rng.Intn(len(prices))]
			ins.Bids = append(ins.Bids, Bid{
				Bidder: b, Alt: j, Price: p, TrueCost: p,
				Covers: covers, Units: 1 + rng.Intn(2),
			})
		}
	}
	// Feasibility reserve supplier (mirrors randomInstance).
	maxD := 0
	all := make([]int, needy)
	for k, d := range ins.Demand {
		all[k] = k
		if d > maxD {
			maxD = d
		}
	}
	ins.Bids = append(ins.Bids, Bid{
		Bidder: bidders + 1, Price: 30 * float64(ins.TotalDemand()),
		TrueCost: 30 * float64(ins.TotalDemand()),
		Covers:   all, Units: maxD,
	})
	return ins
}

// saturationHeavyInstance stresses the lazy-rescore kernel where it is most
// at risk: prefix-nested cover sets over a tiny-demand needy set saturate θ
// within a few iterations, so most bids go dead mid-run and persist only as
// lazily-undiscovered heap entries and retained checkpoint candidates, while
// prices proportional to cover size make almost every live bid carry the
// IDENTICAL price-per-coverage score — every pop is an exact tie resolved
// purely by the lowest-bid-index rule.
func saturationHeavyInstance(rng *rand.Rand, bidders, needy, bidsPer int) *Instance {
	ins := &Instance{Demand: make([]int, needy)}
	for k := range ins.Demand {
		ins.Demand[k] = 1 + rng.Intn(2)
	}
	for b := 1; b <= bidders; b++ {
		for j := 0; j < bidsPer; j++ {
			n := 1 + rng.Intn(needy)
			covers := make([]int, n)
			for i := range covers {
				covers[i] = i // prefix covers: heavy overlap on low needy indices
			}
			price := 10 * float64(n) // unit bids all score exactly 10
			if rng.Intn(4) == 0 {
				price = 20 * float64(n) // a second colliding score class
			}
			units := 1
			if rng.Intn(3) == 0 {
				units = 2
			}
			ins.Bids = append(ins.Bids, Bid{
				Bidder: b, Alt: j, Price: price, TrueCost: price,
				Covers: covers, Units: units,
			})
		}
	}
	// Feasibility reserve supplier (mirrors randomInstance).
	maxD := 0
	all := make([]int, needy)
	for k, d := range ins.Demand {
		all[k] = k
		if d > maxD {
			maxD = d
		}
	}
	ins.Bids = append(ins.Bids, Bid{
		Bidder: bidders + 1, Price: 30 * float64(ins.TotalDemand()),
		TrueCost: 30 * float64(ins.TotalDemand()),
		Covers:   all, Units: maxD,
	})
	return ins
}

// assertDifferential runs both paths on (ins, scaled, opts) and fails the
// test unless errors and outcomes agree exactly.
func assertDifferential(t *testing.T, ins *Instance, scaled []float64, opts Options, label string) {
	t.Helper()
	want, wantErr := referenceSSAMScaled(ins, scaled, opts)
	got, gotErr := ssamScaled(ins, scaled, opts)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error divergence: reference=%v kernel=%v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text divergence: reference=%q kernel=%q", label, wantErr, gotErr)
		}
		return
	}
	if !want.Equal(got) {
		t.Fatalf("%s: outcome divergence:\nreference: winners=%v social=%v scaled=%v payments=%v dual=%s\nkernel:    winners=%v social=%v scaled=%v payments=%v dual=%s",
			label,
			want.Winners, want.SocialCost, want.ScaledCost, want.Payments, dualString(want.Dual),
			got.Winners, got.SocialCost, got.ScaledCost, got.Payments, dualString(got.Dual))
	}
}

// TestDifferentialSSAM sweeps random and tie-prone instances across the full
// option grid, in both the raw price domain and a ψ-scaled price domain
// (distinct scaled vector, as MSOA rounds produce), asserting bit-identical
// outcomes between the reference and optimized paths.
func TestDifferentialSSAM(t *testing.T) {
	grid := diffOptionGrid()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		var ins *Instance
		if trial%2 == 0 {
			ins = randomInstance(rng, 4+rng.Intn(8), 2+rng.Intn(4), 1+rng.Intn(3))
		} else {
			ins = tieProneInstance(rng, 4+rng.Intn(8), 2+rng.Intn(4), 1+rng.Intn(3))
		}
		raw := make([]float64, len(ins.Bids))
		psi := make([]float64, len(ins.Bids))
		factor := 1 + rng.Float64()
		for i, b := range ins.Bids {
			raw[i] = b.Price
			psi[i] = b.Price * factor
		}
		for oi, opts := range grid {
			assertDifferential(t, ins, raw, opts, labelFor(trial, oi, "raw"))
			assertDifferential(t, ins, psi, opts, labelFor(trial, oi, "psi"))
		}
	}
}

// TestDifferentialSaturationHeavy sweeps the saturation-heavy generator —
// mass mid-run deaths plus wall-to-wall exact score ties — across the full
// option grid in both price domains. This is the deterministic companion of
// the optBits&128 fuzz dimension.
func TestDifferentialSaturationHeavy(t *testing.T) {
	grid := diffOptionGrid()
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 6; trial++ {
		ins := saturationHeavyInstance(rng, 4+rng.Intn(12), 2+rng.Intn(5), 1+rng.Intn(3))
		raw := make([]float64, len(ins.Bids))
		psi := make([]float64, len(ins.Bids))
		factor := 1 + rng.Float64()
		for i, b := range ins.Bids {
			raw[i] = b.Price
			psi[i] = b.Price * factor
		}
		for oi, opts := range grid {
			assertDifferential(t, ins, raw, opts, labelFor(trial, oi, "sat-raw"))
			assertDifferential(t, ins, psi, opts, labelFor(trial, oi, "sat-psi"))
		}
	}
}

func labelFor(trial, opt int, domain string) string {
	return "trial=" + itoa(trial) + " opt=" + itoa(opt) + " domain=" + domain
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestDifferentialSSAMInfeasible locks the error path: both implementations
// must reject an uncoverable instance with the same wrapped ErrInfeasible.
func TestDifferentialSSAMInfeasible(t *testing.T) {
	ins := &Instance{
		Demand: []int{3, 2},
		Bids: []Bid{
			{Bidder: 1, Price: 5, Covers: []int{0}, Units: 1},
			{Bidder: 2, Price: 7, Covers: []int{0}, Units: 1},
		},
	}
	scaled := []float64{5, 7}
	assertDifferential(t, ins, scaled, Options{}, "infeasible")
}

// TestDifferentialBudgetedSSAM holds BudgetedSSAM (now kernel-backed) to
// the seed behavior across budgets that never bind, bind mid-run, and
// afford nothing.
func TestDifferentialBudgetedSSAM(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		ins := tieProneInstance(rng, 4+rng.Intn(6), 2+rng.Intn(3), 1+rng.Intn(2))
		full, err := referenceSSAM(ins, Options{})
		if err != nil {
			t.Fatalf("trial %d: reference full run: %v", trial, err)
		}
		total := full.TotalPayment()
		for _, frac := range []float64{0, 0.3, 0.7, 1, 2} {
			budget := total * frac
			for _, opts := range []Options{
				{},
				{Metric: LowestPrice},
				{Payment: FirstPrice},
				{ReserveSet: true, Reserve: 0},
			} {
				want, wantErr := referenceBudgetedSSAM(ins, budget, opts)
				got, gotErr := BudgetedSSAM(ins, budget, opts)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("trial %d budget %v: error divergence: reference=%v kernel=%v", trial, budget, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !want.Outcome.Equal(&got.Outcome) {
					t.Fatalf("trial %d budget %v: outcome divergence:\nreference: %+v\nkernel:    %+v", trial, budget, want.Outcome, got.Outcome)
				}
				if want.BudgetSpent != got.BudgetSpent || want.UncoveredDemand != got.UncoveredDemand {
					t.Fatalf("trial %d budget %v: accounting divergence: reference spent=%v uncovered=%d, kernel spent=%v uncovered=%d",
						trial, budget, want.BudgetSpent, want.UncoveredDemand, got.BudgetSpent, got.UncoveredDemand)
				}
				if len(want.RejectedByBudget) != len(got.RejectedByBudget) {
					t.Fatalf("trial %d budget %v: rejected divergence: %v vs %v", trial, budget, want.RejectedByBudget, got.RejectedByBudget)
				}
				for i := range want.RejectedByBudget {
					if want.RejectedByBudget[i] != got.RejectedByBudget[i] {
						t.Fatalf("trial %d budget %v: rejected divergence: %v vs %v", trial, budget, want.RejectedByBudget, got.RejectedByBudget)
					}
				}
			}
		}
	}
}

// FuzzSSAMDifferential fuzzes the reference/kernel equivalence over
// generator seeds and packed option bits. The seed corpus (f.Add) runs as
// ordinary bounded test cases on every `go test`, so the equivalence is a
// standing gate even without -fuzz.
func FuzzSSAMDifferential(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(3), uint8(2), uint8(0))
	f.Add(int64(2), uint8(12), uint8(5), uint8(3), uint8(0xFF))
	f.Add(int64(3), uint8(1), uint8(1), uint8(1), uint8(0x2A))
	f.Add(int64(4), uint8(20), uint8(2), uint8(1), uint8(0x15))
	f.Add(int64(5), uint8(8), uint8(6), uint8(2), uint8(0x63))
	// Saturation-heavy seeds (optBits&128): mass mid-run deaths and exact
	// score collisions, the shapes that stress lazy rescoring hardest.
	f.Add(int64(6), uint8(16), uint8(3), uint8(2), uint8(0x80))
	f.Add(int64(7), uint8(23), uint8(2), uint8(3), uint8(0xA4))
	f.Add(int64(8), uint8(10), uint8(7), uint8(1), uint8(0xD1))
	f.Fuzz(func(t *testing.T, seed int64, bidders, needy, bidsPer, optBits uint8) {
		nb := int(bidders)%24 + 1
		nk := int(needy)%8 + 1
		bp := int(bidsPer)%3 + 1
		rng := rand.New(rand.NewSource(seed))
		var ins *Instance
		switch {
		case optBits&128 != 0:
			ins = saturationHeavyInstance(rng, nb, nk, bp)
		case seed%2 == 0:
			ins = randomInstance(rng, nb, nk, bp)
		default:
			ins = tieProneInstance(rng, nb, nk, bp)
		}
		opts := Options{
			SkipCertificate: optBits&1 != 0,
			ReserveSet:      optBits&2 != 0,
		}
		if optBits&4 != 0 {
			opts.Metric = LowestPrice
		}
		if optBits&8 != 0 {
			opts.Payment = FirstPrice
		}
		if optBits&16 != 0 {
			opts.Reserve = 40
		}
		if optBits&32 != 0 {
			opts.Parallelism = 4
		} else {
			opts.Parallelism = 1
		}
		scaled := make([]float64, len(ins.Bids))
		factor := 1.0
		if optBits&64 != 0 {
			factor = 1 + rng.Float64() // ψ-scaled domain
		}
		for i, b := range ins.Bids {
			scaled[i] = b.Price * factor
		}
		assertDifferential(t, ins, scaled, opts, "fuzz")
	})
}
