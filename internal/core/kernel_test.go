package core

import (
	"math/rand"
	"testing"
)

// TestBetterScore pins the shared greedy comparison (the ONE tie-break rule
// every selection path routes through): strictly lower score wins, and an
// exact float64 score tie falls to the lower bid index — in both argument
// orders, so the rule is a strict weak ordering.
func TestBetterScore(t *testing.T) {
	cases := []struct {
		s1   float64
		b1   int32
		s2   float64
		b2   int32
		want bool
	}{
		{1, 5, 2, 1, true},            // lower score wins regardless of index
		{2, 1, 1, 5, false},           // higher score loses regardless of index
		{3, 2, 3, 7, true},            // exact tie: lower index wins
		{3, 7, 3, 2, false},           // exact tie: higher index loses
		{3, 4, 3, 4, false},           // identical pair: not "better" (strictness)
		{0.1 + 0.2, 9, 0.3, 1, false}, // 0.30000000000000004 > 0.3: no tie
	}
	for _, c := range cases {
		if got := betterScore(c.s1, c.b1, c.s2, c.b2); got != c.want {
			t.Errorf("betterScore(%v,%d,%v,%d) = %v, want %v", c.s1, c.b1, c.s2, c.b2, got, c.want)
		}
	}
}

// TestExactTiePermutedList is the regression test for the permuted-list
// tie-break case: the kernel's candidate list and heap permute entries as
// the run progresses (swap-deletes, sift-downs), so the lowest-bid-index
// rule must be applied explicitly rather than inherited from scan order.
// The instance makes the rule fully observable from the outside: every bid
// covers exactly one unit-demand needy service at the same price, so EVERY
// live bid carries the identical score at every iteration, the greedy
// winner is always the lowest-index live bid, and a bid dies exactly when
// its needy service is covered. A transparent mini-oracle computes the
// unique correct winner sequence under that rule, and the assignment of
// needy targets to bid indices is re-permuted every trial.
func TestExactTiePermutedList(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const needy, perNeedy = 4, 3
	for trial := 0; trial < 25; trial++ {
		// target[i] is the single needy service bid i covers: perNeedy
		// duplicate bids per needy, scattered over bid indices.
		target := make([]int, 0, needy*perNeedy)
		for k := 0; k < needy; k++ {
			for j := 0; j < perNeedy; j++ {
				target = append(target, k)
			}
		}
		rng.Shuffle(len(target), func(i, j int) { target[i], target[j] = target[j], target[i] })

		ins := &Instance{Demand: make([]int, needy)}
		for k := range ins.Demand {
			ins.Demand[k] = 1
		}
		for i, k := range target {
			ins.Bids = append(ins.Bids, Bid{
				Bidder: i + 1, Price: 10, TrueCost: 10,
				Covers: []int{k}, Units: 1,
			})
		}

		// Mini-oracle: repeatedly select the lowest-index bid whose needy
		// service is still uncovered.
		covered := make([]bool, needy)
		var want []int
		for len(want) < needy {
			for i, k := range target {
				if !covered[k] {
					covered[k] = true
					want = append(want, i)
					break
				}
			}
		}

		for _, opts := range []Options{
			{},
			{Metric: LowestPrice},
			{Payment: FirstPrice, SkipCertificate: true},
			{Parallelism: 4},
		} {
			out, err := SSAM(ins, opts)
			if err != nil {
				t.Fatalf("trial %d: SSAM: %v", trial, err)
			}
			if len(out.Winners) != len(want) {
				t.Fatalf("trial %d opts %+v: got %d winners %v, want %v", trial, opts, len(out.Winners), out.Winners, want)
			}
			for i := range want {
				if out.Winners[i] != want[i] {
					t.Fatalf("trial %d opts %+v: winner sequence %v violates the lowest-index tie-break, want %v (targets %v)",
						trial, opts, out.Winners, want, target)
				}
			}
		}
	}
}

// TestKernelPoolReuseAcrossShapes drives the pooled kernel and replay
// scratches through back-to-back instances of sharply different sizes and
// generator families, holding every run to the reference oracle. A pooled
// buffer that survives a resize, a stale epoch or heap entry, or any other
// state leaking across builds would surface as a differential divergence
// here. Parallelism rotates so replay scratches also cross shapes.
func TestKernelPoolReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ bidders, needy, bidsPer int }{
		{40, 6, 3}, {2, 1, 1}, {25, 8, 2}, {3, 2, 1}, {50, 4, 3},
	}
	for round := 0; round < 3; round++ {
		for si, sh := range shapes {
			var ins *Instance
			switch si % 3 {
			case 0:
				ins = randomInstance(rng, sh.bidders, sh.needy, sh.bidsPer)
			case 1:
				ins = tieProneInstance(rng, sh.bidders, sh.needy, sh.bidsPer)
			default:
				ins = saturationHeavyInstance(rng, sh.bidders, sh.needy, sh.bidsPer)
			}
			scaled := make([]float64, len(ins.Bids))
			for i, b := range ins.Bids {
				scaled[i] = b.Price
			}
			opts := Options{Parallelism: 1 + (round+si)%4}
			assertDifferential(t, ins, scaled, opts,
				"pool-reuse round="+itoa(round)+" shape="+itoa(si))

			// Budgeted path: exercises from-scratch replay scratch reuse.
			full, err := referenceSSAM(ins, opts)
			if err != nil {
				t.Fatalf("round %d shape %d: reference: %v", round, si, err)
			}
			budget := full.TotalPayment() * 0.6
			want, wantErr := referenceBudgetedSSAM(ins, budget, opts)
			got, gotErr := BudgetedSSAM(ins, budget, opts)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d shape %d: budgeted error divergence: %v vs %v", round, si, wantErr, gotErr)
			}
			if wantErr == nil && !want.Outcome.Equal(&got.Outcome) {
				t.Fatalf("round %d shape %d: budgeted divergence:\nreference: %+v\nkernel:    %+v", round, si, want.Outcome, got.Outcome)
			}
		}
	}
}
