package core

import (
	"math"
	"testing"
)

// simpleRound builds a round where every bidder offers to cover needy 0.
func simpleRound(t int, demand int, prices ...float64) Round {
	ins := &Instance{Demand: []int{demand}}
	for i, p := range prices {
		ins.Bids = append(ins.Bids, Bid{
			Bidder: i + 1, Price: p, TrueCost: p, Covers: []int{0}, Units: demand,
		})
	}
	return Round{T: t, Instance: ins}
}

func TestMSOASingleRoundMatchesSSAM(t *testing.T) {
	r := simpleRound(1, 2, 10, 20, 30)
	m := NewMSOA(MSOAConfig{})
	res := m.RunRound(r)
	if res.Err != nil {
		t.Fatalf("round failed: %v", res.Err)
	}
	direct, err := SSAM(r.Instance, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.SocialCost != direct.SocialCost {
		t.Fatalf("MSOA first round cost %v != SSAM %v", res.Outcome.SocialCost, direct.SocialCost)
	}
}

func TestMSOAScaledPriceGrowsAfterWins(t *testing.T) {
	m := NewMSOA(MSOAConfig{DefaultCapacity: 10, Alpha: 1})
	r1 := simpleRound(1, 1, 10, 20)
	res1 := m.RunRound(r1)
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	winner := r1.Instance.Bids[res1.Outcome.Winners[0]].Bidder
	if psi := m.Psi(winner); psi <= 0 {
		t.Fatalf("winner's ψ should be positive after winning, got %v", psi)
	}
	loser := 3 - winner
	if psi := m.Psi(loser); psi != 0 {
		t.Fatalf("loser's ψ should stay 0, got %v", psi)
	}
	// In the next round the previous winner's scaled price exceeds its raw
	// price.
	r2 := simpleRound(2, 1, 10, 20)
	res2 := m.RunRound(r2)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	idx := winner - 1 // bids are ordered by bidder in simpleRound
	if res2.Scaled[idx] <= r2.Instance.Bids[idx].Price {
		t.Fatalf("scaled price %v should exceed raw price %v for prior winner",
			res2.Scaled[idx], r2.Instance.Bids[idx].Price)
	}
}

func TestMSOACapacityExcludesBids(t *testing.T) {
	// Bidder 1 has capacity 1 (one coverage slot). After one win its bids
	// must be excluded.
	cfg := MSOAConfig{Capacity: map[int]int{1: 1}, DefaultCapacity: 0}
	m := NewMSOA(cfg)
	r1 := simpleRound(1, 1, 5, 50)
	res1 := m.RunRound(r1)
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	if got := r1.Instance.Bids[res1.Outcome.Winners[0]].Bidder; got != 1 {
		t.Fatalf("round 1 winner = bidder %d, want 1", got)
	}
	if m.UsedCapacity(1) != 1 {
		t.Fatalf("χ_1 = %d, want 1", m.UsedCapacity(1))
	}
	r2 := simpleRound(2, 1, 5, 50)
	res2 := m.RunRound(r2)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if len(res2.Excluded) != 1 || res2.Excluded[0] != 0 {
		t.Fatalf("round 2 should exclude bidder 1's bid, got excluded=%v", res2.Excluded)
	}
	if got := r2.Instance.Bids[res2.Outcome.Winners[0]].Bidder; got != 2 {
		t.Fatalf("round 2 winner = bidder %d, want 2", got)
	}
	if err := VerifyCapacity(cfg, []Round{r1, r2}, m.Results()); err != nil {
		t.Fatal(err)
	}
}

func TestMSOAWindowsExcludeBids(t *testing.T) {
	cfg := MSOAConfig{Windows: map[int]BidderWindow{1: {Arrive: 2, Depart: 2}}}
	m := NewMSOA(cfg)
	r1 := simpleRound(1, 1, 5, 50)
	res1 := m.RunRound(r1)
	if res1.Err != nil {
		t.Fatal(res1.Err)
	}
	if got := r1.Instance.Bids[res1.Outcome.Winners[0]].Bidder; got != 2 {
		t.Fatalf("round 1 winner = bidder %d, want 2 (bidder 1 absent)", got)
	}
	r2 := simpleRound(2, 1, 5, 50)
	res2 := m.RunRound(r2)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if got := r2.Instance.Bids[res2.Outcome.Winners[0]].Bidder; got != 1 {
		t.Fatalf("round 2 winner = bidder %d, want 1 (now arrived)", got)
	}
	if err := VerifyWindows(cfg, []Round{r1, r2}, m.Results()); err != nil {
		t.Fatal(err)
	}
}

func TestMSOAInfeasibleRoundContinues(t *testing.T) {
	m := NewMSOA(MSOAConfig{})
	bad := Round{T: 1, Instance: &Instance{Demand: []int{5}}} // no bids
	good := simpleRound(2, 1, 5)
	sum := m.Run([]Round{bad, good})
	if sum.InfeasibleRounds != 1 {
		t.Fatalf("infeasible rounds = %d, want 1", sum.InfeasibleRounds)
	}
	if sum.Rounds != 2 || sum.WinningBids != 1 {
		t.Fatalf("unexpected summary %+v", sum)
	}
}

func TestMSOASummaryAggregation(t *testing.T) {
	m := NewMSOA(MSOAConfig{DefaultCapacity: 100})
	rounds := []Round{
		simpleRound(1, 1, 10, 20),
		simpleRound(2, 1, 15, 25),
	}
	sum := m.Run(rounds)
	if sum.SocialCost != 25 { // 10 + 15: cheapest wins each round
		t.Fatalf("social cost %v, want 25", sum.SocialCost)
	}
	if sum.TotalPayment < sum.SocialCost {
		t.Fatalf("payment %v below social cost %v", sum.TotalPayment, sum.SocialCost)
	}
	if sum.MaxCertRatio < 1 {
		t.Fatalf("certified ratio %v < 1", sum.MaxCertRatio)
	}
}

func TestMSOAScaledCostAccountsRawSocialCost(t *testing.T) {
	// After bidder 1 wins round 1, round 2's SocialCost must use raw
	// prices even though selection used scaled ones.
	m := NewMSOA(MSOAConfig{DefaultCapacity: 2, Alpha: 1})
	r1 := simpleRound(1, 1, 10, 12)
	if res := m.RunRound(r1); res.Err != nil {
		t.Fatal(res.Err)
	}
	r2 := simpleRound(2, 1, 10, 12)
	res2 := m.RunRound(r2)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	w := res2.Outcome.Winners[0]
	if res2.Outcome.SocialCost != r2.Instance.Bids[w].Price {
		t.Fatalf("round social cost %v != winner raw price %v",
			res2.Outcome.SocialCost, r2.Instance.Bids[w].Price)
	}
	if res2.Outcome.ScaledCost < res2.Outcome.SocialCost {
		t.Fatalf("scaled cost %v below raw cost %v", res2.Outcome.ScaledCost, res2.Outcome.SocialCost)
	}
}

func TestMSOADisableScaledPriceAblation(t *testing.T) {
	m := NewMSOA(MSOAConfig{DefaultCapacity: 5, DisableScaledPrice: true})
	r1 := simpleRound(1, 1, 10, 20)
	if res := m.RunRound(r1); res.Err != nil {
		t.Fatal(res.Err)
	}
	r2 := simpleRound(2, 1, 10, 20)
	res2 := m.RunRound(r2)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	for i, s := range res2.Scaled {
		if s != r2.Instance.Bids[i].Price {
			t.Fatalf("scaled price %v != raw %v with scaling disabled", s, r2.Instance.Bids[i].Price)
		}
	}
}

func TestCompetitiveBound(t *testing.T) {
	rounds := []Round{simpleRound(1, 1, 10, 20)}
	// Unconstrained: bound = alpha.
	if got := CompetitiveBound(2, MSOAConfig{}, rounds); got != 2 {
		t.Fatalf("unconstrained bound %v, want 2", got)
	}
	// β = Θ/|S| = 3/1 = 3: bound = α·β/(β−1) = 2·1.5 = 3.
	cfg := MSOAConfig{DefaultCapacity: 3}
	if got := CompetitiveBound(2, cfg, rounds); math.Abs(got-3) > 1e-9 {
		t.Fatalf("bound %v, want 3", got)
	}
	// β ≤ 1: bound is infinite.
	cfg = MSOAConfig{DefaultCapacity: 1}
	if got := CompetitiveBound(2, cfg, rounds); !math.IsInf(got, 1) {
		t.Fatalf("bound %v, want +Inf", got)
	}
}

func TestBidderWindowContains(t *testing.T) {
	var zero BidderWindow
	if !zero.Contains(1) || !zero.Contains(99) {
		t.Fatal("zero window must always contain")
	}
	w := BidderWindow{Arrive: 2, Depart: 4}
	for _, tc := range []struct {
		t    int
		want bool
	}{{1, false}, {2, true}, {3, true}, {4, true}, {5, false}} {
		if got := w.Contains(tc.t); got != tc.want {
			t.Fatalf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestVariantsBuild(t *testing.T) {
	trueRounds := []Round{simpleRound(1, 2, 10, 20)}
	estRounds := []Round{simpleRound(1, 1, 10, 20)} // under-estimate
	cfg := MSOAConfig{DefaultCapacity: 4, Capacity: map[int]int{1: 2}}

	rounds, vcfg := BuildVariant(VariantBase, VariantParams{}, trueRounds, estRounds, cfg)
	if &rounds[0] != &estRounds[0] || vcfg.DefaultCapacity != 4 {
		t.Fatal("base variant must keep estimated rounds and config")
	}
	rounds, vcfg = BuildVariant(VariantDA, VariantParams{}, trueRounds, estRounds, cfg)
	if rounds[0].Instance.Demand[0] != 2 {
		t.Fatal("DA variant must use true demand")
	}
	if vcfg.DefaultCapacity != 4 {
		t.Fatal("DA variant must keep capacities")
	}
	rounds, vcfg = BuildVariant(VariantRC, VariantParams{}, trueRounds, estRounds, cfg)
	if rounds[0].Instance.Demand[0] != 1 {
		t.Fatal("RC variant must keep estimated demand")
	}
	if vcfg.DefaultCapacity != 8 || vcfg.Capacity[1] != 4 {
		t.Fatalf("RC variant must double capacities, got default=%d cap[1]=%d",
			vcfg.DefaultCapacity, vcfg.Capacity[1])
	}
	rounds, vcfg = BuildVariant(VariantOA, VariantParams{CapacityFactor: 3}, trueRounds, estRounds, cfg)
	if rounds[0].Instance.Demand[0] != 2 || vcfg.DefaultCapacity != 12 {
		t.Fatal("OA variant must use true demand AND relaxed capacities")
	}
}

// TestVariantsPreserveConfigFields is a regression test for the RC/OA
// config derivation: it built a fresh MSOAConfig naming fields one by one
// and silently dropped DefaultCapacitySet (turning an explicit zero default
// capacity into "unlimited") and CapacityExemptFrom (capacity-limiting the
// platform's exempt fallback supply). Every non-capacity field must survive
// the variant transform verbatim.
func TestVariantsPreserveConfigFields(t *testing.T) {
	cfg := MSOAConfig{
		DefaultCapacity:    0,
		DefaultCapacitySet: true,
		CapacityExemptFrom: 1000,
		Capacity:           map[int]int{1: 2},
		Windows:            map[int]BidderWindow{1: {Arrive: 1, Depart: 3}},
		Alpha:              1.5,
		DisableScaledPrice: true,
		Options:            Options{SkipCertificate: true, Parallelism: 2},
	}
	trueRounds := []Round{simpleRound(1, 2, 10, 20)}
	estRounds := []Round{simpleRound(1, 1, 10, 20)}
	for _, v := range []Variant{VariantRC, VariantOA} {
		_, vcfg := BuildVariant(v, VariantParams{}, trueRounds, estRounds, cfg)
		if !vcfg.DefaultCapacitySet {
			t.Fatalf("%v: DefaultCapacitySet dropped — explicit zero default capacity became unlimited", v)
		}
		if vcfg.CapacityExemptFrom != 1000 {
			t.Fatalf("%v: CapacityExemptFrom = %d, want 1000", v, vcfg.CapacityExemptFrom)
		}
		if vcfg.Alpha != 1.5 || !vcfg.DisableScaledPrice || !vcfg.Options.SkipCertificate || vcfg.Options.Parallelism != 2 {
			t.Fatalf("%v: non-capacity fields not preserved: %+v", v, vcfg)
		}
		if vcfg.Windows[1] != cfg.Windows[1] {
			t.Fatalf("%v: windows not preserved", v)
		}
		if vcfg.Capacity[1] != 4 {
			t.Fatalf("%v: capacity not scaled, got %d want 4", v, vcfg.Capacity[1])
		}
		if vcfg.DefaultCapacity != 0 {
			t.Fatalf("%v: explicit zero default capacity must stay zero, got %d", v, vcfg.DefaultCapacity)
		}
	}
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		VariantBase: "MSOA", VariantDA: "MSOA-DA", VariantRC: "MSOA-RC",
		VariantOA: "MSOA-OA", Variant(99): "MSOA-?",
	} {
		if got := v.String(); got != want {
			t.Fatalf("Variant(%d).String() = %q, want %q", v, got, want)
		}
	}
}

func TestReservePaymentUsesScaledPrices(t *testing.T) {
	// Regression for the scaled-price reserve bug: the pivotal-winner
	// reserve was derived from competitors' RAW prices J_ij while every
	// other payment in the round lives in the scaled domain ∇_ij, so a
	// pivotal winner was underpaid whenever its competitors carried a
	// positive dual ψ.
	//
	// Round 1 gives bidder 2 a positive ψ: it wins at price 8 with
	// capacity Θ=2 and α=1, so ψ_2 = 8·1/(1·2·2) = 2. In round 2 bidder
	// 2's bid is priced 20 raw but 22 scaled; bidder 1 is pivotal for
	// needy 0, so its auto-derived reserve must be the competitor's
	// SCALED price 22, not the raw 20.
	m := NewMSOA(MSOAConfig{DefaultCapacity: 2, Alpha: 1})
	r1 := m.RunRound(Round{T: 1, Instance: &Instance{
		Demand: []int{1},
		Bids: []Bid{
			{Bidder: 1, Alt: 0, Price: 50, TrueCost: 50, Covers: []int{0}, Units: 1},
			{Bidder: 2, Alt: 0, Price: 8, TrueCost: 8, Covers: []int{0}, Units: 1},
		},
	}})
	if r1.Err != nil {
		t.Fatalf("round 1: %v", r1.Err)
	}
	if len(r1.Outcome.Winners) != 1 || r1.Outcome.Winners[0] != 1 {
		t.Fatalf("round 1: want bidder 2's bid to win, got %v", r1.Outcome.Winners)
	}
	if psi := m.Psi(2); math.Abs(psi-2) > 1e-12 {
		t.Fatalf("psi_2 = %v, want 2", psi)
	}

	r2 := m.RunRound(Round{T: 2, Instance: &Instance{
		Demand: []int{1, 1},
		Bids: []Bid{
			{Bidder: 1, Alt: 0, Price: 5, TrueCost: 5, Covers: []int{0}, Units: 1},
			{Bidder: 2, Alt: 0, Price: 20, TrueCost: 20, Covers: []int{1}, Units: 1},
		},
	}})
	if r2.Err != nil {
		t.Fatalf("round 2: %v", r2.Err)
	}
	if math.Abs(r2.Scaled[1]-22) > 1e-12 {
		t.Fatalf("round 2 scaled price of bidder 2 = %v, want 22", r2.Scaled[1])
	}
	if len(r2.Outcome.Winners) != 2 {
		t.Fatalf("round 2: want both bids to win, got %v", r2.Outcome.Winners)
	}
	if pay := r2.Outcome.Payments[0]; math.Abs(pay-22) > 1e-12 {
		t.Fatalf("pivotal winner payment = %v, want the competitor's scaled price 22", pay)
	}
}

func TestDefaultCapacitySetZeroExcludesUnlistedBidders(t *testing.T) {
	// DefaultCapacitySet distinguishes "unset, unlimited" from an explicit
	// zero default: with the sentinel, bidders without a Capacity entry
	// may not share at all.
	m := NewMSOA(MSOAConfig{DefaultCapacitySet: true, DefaultCapacity: 0, Capacity: map[int]int{1: 5}})
	res := m.RunRound(Round{T: 1, Instance: &Instance{
		Demand: []int{1},
		Bids: []Bid{
			{Bidder: 2, Alt: 0, Price: 1, TrueCost: 1, Covers: []int{0}, Units: 1},
			{Bidder: 1, Alt: 0, Price: 9, TrueCost: 9, Covers: []int{0}, Units: 1},
		},
	}})
	if res.Err != nil {
		t.Fatalf("round failed: %v", res.Err)
	}
	if len(res.Excluded) != 1 || res.Excluded[0] != 0 {
		t.Fatalf("want unlisted bidder 2's bid excluded, got excluded=%v", res.Excluded)
	}
	if len(res.Outcome.Winners) != 1 || res.Outcome.Winners[0] != 1 {
		t.Fatalf("want listed bidder 1 to win, got %v", res.Outcome.Winners)
	}

	// Without the sentinel, DefaultCapacity zero keeps meaning unlimited
	// and the cheap unlisted bidder wins.
	m2 := NewMSOA(MSOAConfig{Capacity: map[int]int{1: 5}})
	res2 := m2.RunRound(Round{T: 1, Instance: &Instance{
		Demand: []int{1},
		Bids: []Bid{
			{Bidder: 2, Alt: 0, Price: 1, TrueCost: 1, Covers: []int{0}, Units: 1},
			{Bidder: 1, Alt: 0, Price: 9, TrueCost: 9, Covers: []int{0}, Units: 1},
		},
	}})
	if res2.Err != nil {
		t.Fatalf("round failed: %v", res2.Err)
	}
	if len(res2.Outcome.Winners) != 1 || res2.Outcome.Winners[0] != 0 {
		t.Fatalf("unset default must stay unlimited; want bidder 2 to win, got %v", res2.Outcome.Winners)
	}
}

// TestTotalPaymentDeterministic guards the summation order of
// Outcome.TotalPayment. Payments live in a map; summing them in Go's
// randomized iteration order made the total differ in the last ULP
// between identical runs, which flipped the hashed platform state the
// WAL and chaos harnesses compare byte-for-byte. The fix sums in
// ascending bid-index order, so repeated calls must be bit-identical.
func TestTotalPaymentDeterministic(t *testing.T) {
	out := &Outcome{Payments: map[int]float64{}}
	for i := 0; i < 64; i++ {
		out.Payments[i] = 0.1 * float64(i+1) // 0.1 is inexact in binary: order matters
	}
	want := out.TotalPayment()
	for i := 0; i < 200; i++ {
		if got := out.TotalPayment(); got != want {
			t.Fatalf("call %d: TotalPayment %v, want %v (summation order leaked)", i, got, want)
		}
	}
}
