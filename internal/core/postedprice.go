package core

// This file implements a (1−ε)-optimal posted-price mechanism in the
// spirit of Zhang et al. (arXiv 1611.07619): the platform posts a single
// take-it-or-leave-it price π drawn from an (1+ε)-geometric grid over the
// cost prior's support, bidders whose reported cost is at most π accept,
// and accepted supply is allocated to the demand by a price-independent
// greedy. Every winner is paid the posted price.
//
// Truthfulness. The posted level is computed ONLY from the prior
// (PriceLo, PriceHi), the demand vector and the bids' cover structure —
// never from any reported price — and the allocation among accepters
// orders bids by marginal coverage with index tie-breaks, again ignoring
// prices. A bidder's report therefore influences nothing but its own
// acceptance: reporting at most π yields the same posted price, the same
// candidate order and the same payment π, while reporting above π yields
// utility zero. Truthful reporting (Price = TrueCost) is a best response
// for single-bid bidders; the property test in mechanism_test.go checks
// this across seeded instances. (Bidders with several alternative bids
// can in principle steer which of their own alternatives wins — the same
// J≥2 caveat SSAM's Theorem 4 scope carries.)
//
// (1−ε)-optimality. The grid's geometric spacing means some grid level
// is within a (1+ε) factor of any target price in [PriceLo, PriceHi], so
// the expected-revenue loss against the best fixed posted price is a
// factor ε — the classic posted-price guarantee under a known prior.
// There is deliberately NO escalation on infeasibility: re-posting a
// higher level after observing rejections would make the level depend on
// reports and reopen a pivotal-manipulation channel, so an uncovered
// instance returns ErrInfeasible instead.

// PostedPriceConfig parameterizes the posted-price mechanism. The zero
// value selects the defaults matching internal/workload's cost prior.
type PostedPriceConfig struct {
	// Epsilon is the geometric grid factor (levels lo, lo(1+ε), …, hi).
	// Defaults to 0.1.
	Epsilon float64 `json:"epsilon,omitempty"`
	// PriceLo and PriceHi bound the support of the cost prior the level
	// is chosen from. Defaults 10 and 35 (the workload generator's cost
	// range including the reserve ladder).
	PriceLo float64 `json:"price_lo,omitempty"`
	PriceHi float64 `json:"price_hi,omitempty"`
	// Safety scales the expected-supply requirement when picking the
	// level: the mechanism posts the lowest grid level whose expected
	// accepting supply covers Safety × total demand. Defaults to 1.5;
	// higher values post higher prices and fail less often.
	Safety float64 `json:"safety,omitempty"`
}

// withDefaults fills zero fields.
func (c PostedPriceConfig) withDefaults() PostedPriceConfig {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.PriceLo <= 0 {
		c.PriceLo = 10
	}
	if c.PriceHi <= c.PriceLo {
		c.PriceHi = c.PriceLo + 25
	}
	if c.Safety <= 0 {
		c.Safety = 1.5
	}
	return c
}

// PostedPrice is the posted-price mechanism. It is stateless: each Clear
// call computes its level from the instance at hand.
type PostedPrice struct {
	cfg PostedPriceConfig
}

// NewPostedPrice returns a posted-price mechanism with defaults applied.
func NewPostedPrice(cfg PostedPriceConfig) *PostedPrice {
	return &PostedPrice{cfg: cfg.withDefaults()}
}

// Config returns the effective (default-filled) configuration.
func (p *PostedPrice) Config() PostedPriceConfig { return p.cfg }

// Name implements Mechanism.
func (p *PostedPrice) Name() string { return NamePostedPrice }

// PostedLevel computes the price π posted for an instance. It reads the
// demand vector and the bids' cover structure (counts, units, cover
// sets) but never a reported price, which is what keeps the mechanism
// truthful: no report can move the level.
func (p *PostedPrice) PostedLevel(ins *Instance) float64 {
	demand := float64(ins.TotalDemand())
	if demand == 0 {
		return p.cfg.PriceLo
	}
	// Potential supply if every bidder accepted: each bidder contributes
	// its best single bid's useful coverage (units capped at demand).
	perBidder := make(map[int]float64, len(ins.Bids))
	for i := range ins.Bids {
		b := &ins.Bids[i]
		var useful float64
		for _, k := range b.Covers {
			u := b.Units
			if d := ins.Demand[k]; u > d {
				u = d
			}
			useful += float64(u)
		}
		if useful > perBidder[b.Bidder] {
			perBidder[b.Bidder] = useful
		}
	}
	var supply float64
	for _, s := range perBidder {
		supply += s
	}
	// Walk the geometric grid lo, lo(1+ε), … and post the first level
	// whose expected accepting supply under the uniform prior
	// F(π) = (π−lo)/(hi−lo) covers Safety × demand. The top level is
	// PriceHi, where F = 1 and everything accepts.
	need := p.cfg.Safety * demand
	span := p.cfg.PriceHi - p.cfg.PriceLo
	for level := p.cfg.PriceLo; level < p.cfg.PriceHi; level *= 1 + p.cfg.Epsilon {
		accept := (level - p.cfg.PriceLo) / span
		if accept*supply >= need {
			return level
		}
	}
	return p.cfg.PriceHi
}

// Clear implements Mechanism: post the level, let bids at or below it
// accept, and cover the demand with a price-independent greedy (marginal
// coverage descending, bid index ascending, one bid per bidder). Winners
// are paid the posted price. Returns ErrInfeasible when the accepting
// supply cannot cover the demand — by design there is no escalation.
func (p *PostedPrice) Clear(ins *Instance, opts Options) (*Outcome, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	level := p.PostedLevel(ins)

	accepting := make([]int, 0, len(ins.Bids))
	for i := range ins.Bids {
		if ins.Bids[i].Price <= level {
			accepting = append(accepting, i)
		}
	}

	residual := append([]int(nil), ins.Demand...)
	deficit := 0
	for _, d := range residual {
		deficit += d
	}
	out := &Outcome{Payments: make(map[int]float64)}
	wonBidder := make(map[int]struct{})
	for deficit > 0 {
		best, bestMarginal := -1, 0
		for _, i := range accepting {
			b := &ins.Bids[i]
			if _, dup := wonBidder[b.Bidder]; dup {
				continue
			}
			marginal := 0
			for _, k := range b.Covers {
				u := b.Units
				if r := residual[k]; u > r {
					u = r
				}
				marginal += u
			}
			if marginal > bestMarginal {
				best, bestMarginal = i, marginal
			}
		}
		if best < 0 {
			return nil, ErrInfeasible
		}
		b := &ins.Bids[best]
		wonBidder[b.Bidder] = struct{}{}
		out.Winners = append(out.Winners, best)
		out.Payments[best] = level
		out.SocialCost += b.Price
		for _, k := range b.Covers {
			u := b.Units
			if r := residual[k]; u > r {
				u = r
			}
			residual[k] -= u
			deficit -= u
		}
	}
	out.ScaledCost = out.SocialCost
	return out, nil
}
