package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"edgeauction/internal/obs"
)

// GreedyMetric selects the bid-ranking rule used by the greedy winner
// selection loop. The paper's rule is PricePerCoverage; LowestPrice exists
// for the ablation benchmarks.
type GreedyMetric int

const (
	// PricePerCoverage ranks bids by scaled price divided by marginal
	// coverage utility (Algorithm 1, line 4). This is the paper's rule and
	// carries the H_n-style approximation guarantee.
	PricePerCoverage GreedyMetric = iota + 1
	// LowestPrice ranks bids by scaled price alone, ignoring how much
	// coverage they contribute. Used only by ablation experiments.
	LowestPrice
)

// PaymentRule selects how winners are remunerated. The paper's rule is
// CriticalValue; FirstPrice exists for the ablation benchmarks.
type PaymentRule int

const (
	// CriticalValue pays each winner the threshold price at which it would
	// stop winning (Algorithm 1, lines 6-7; Myerson payments). Truthful.
	CriticalValue PaymentRule = iota + 1
	// FirstPrice pays each winner exactly its (scaled) bid price. Not
	// truthful; used only by ablation experiments.
	FirstPrice
)

// Options configures a single-stage auction run. The zero value selects the
// paper's mechanism with an automatic reserve.
type Options struct {
	// Reserve is the payment granted to a winner that faces no competing
	// runner-up bid (its critical value is unbounded). When Reserve is zero
	// AND ReserveSet is false the reserve is auto-derived: the maximum
	// SCALED price among OTHER bidders' bids is used; if the winner is the
	// only bidder, its own (scaled) price is used. Set ReserveSet to make
	// any Reserve value — including an explicit zero — binding.
	Reserve float64
	// ReserveSet marks Reserve as explicitly configured. It exists because
	// Reserve == 0 alone cannot distinguish "unset, auto-derive from the
	// competition" from "the platform grants no reserve premium": with
	// ReserveSet true and Reserve 0, a pivotal winner is paid exactly its
	// own scaled report.
	ReserveSet bool
	// Metric is the greedy ranking rule; zero means PricePerCoverage.
	Metric GreedyMetric
	// Payment is the remuneration rule; zero means CriticalValue.
	Payment PaymentRule
	// SkipCertificate disables dual-certificate bookkeeping. The experiment
	// sweeps that only need costs and payments set this to avoid the extra
	// allocations in hot benchmark loops.
	SkipCertificate bool
	// Parallelism bounds the number of worker goroutines used for the
	// critical-value payment phase, the mechanism's asymptotic hot path
	// (one counterfactual greedy replay per winner, resumed from the
	// winner's checkpoint in the truthful run — see kernel.go). Each
	// replay is independent of the others, so payments fan out across a
	// bounded pool with bit-identical results at every level. Zero means
	// runtime.GOMAXPROCS(0); 1 forces the serial path.
	Parallelism int
	// Tracer receives the auction's observability events: one GreedyPick
	// per winning iteration, one PaymentReplay per critical-value
	// counterfactual, and one Certificate per run (when certificates are
	// on). Nil disables tracing — every hook site guards with a nil check,
	// so the disabled path costs one predictable branch and never
	// allocates. Implementations must be safe for concurrent use: the
	// parallel payment phase emits from its worker goroutines. Tracing
	// never changes outcomes.
	Tracer obs.Tracer
}

func (o Options) metric() GreedyMetric {
	if o.Metric == 0 {
		return PricePerCoverage
	}
	return o.Metric
}

func (o Options) payment() PaymentRule {
	if o.Payment == 0 {
		return CriticalValue
	}
	return o.Payment
}

func (o Options) parallelism() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// SSAM runs the single-stage auction mechanism (Algorithm 1) on ins using
// the bids' own prices as the scaled prices, i.e. the standalone offline
// setting of §IV-C. It returns ErrInfeasible if the bids cannot cover the
// residual demand.
func SSAM(ins *Instance, opts Options) (*Outcome, error) {
	scaled := make([]float64, len(ins.Bids))
	for i, b := range ins.Bids {
		scaled[i] = b.Price
	}
	return ssamScaled(ins, scaled, opts)
}

// ssamScaled is the shared implementation behind SSAM and each MSOA round:
// winner selection and payments operate on the scaled prices ∇_ij, while
// Outcome.SocialCost is accounted with the raw prices J_ij (Lemma 4).
//
// It runs on the pooled flat kernel (kernel.go): a CSR cover view with a
// compact swap-delete candidate list for selection, per-iteration
// checkpoints feeding the critical-value payment phase, and a bounded
// worker pool fanning the per-winner replays out. The straightforward
// implementation it is bit-identical to lives in reference_test.go and is
// exercised against this path by the differential property/fuzz tests.
func ssamScaled(ins *Instance, scaled []float64, opts Options) (*Outcome, error) {
	if len(scaled) != len(ins.Bids) {
		return nil, fmt.Errorf("core: scaled price vector has %d entries for %d bids", len(scaled), len(ins.Bids))
	}
	var cert *certBuilder
	if !opts.SkipCertificate {
		cert = newCertBuilder(ins, scaled)
	}
	kn := kernelPool.Get().(*kernel)
	defer kn.release()
	if err := kn.build(ins, scaled, opts); err != nil {
		return nil, err
	}
	out := &Outcome{}
	if err := kn.selectWinners(ins, opts, out, cert); err != nil {
		return nil, err
	}
	out.Payments = make(map[int]float64, len(out.Winners))

	// Payments are computed after selection: each winner's critical value
	// requires a counterfactual greedy run without its bidder, replayed
	// from the winner's own checkpoint. The replays are mutually
	// independent, so they fan out across Options.Parallelism workers.
	kn.computePayments(ins, opts, out.Payments)

	if cert != nil {
		out.Dual = cert.finish(out)
		if opts.Tracer != nil {
			opts.Tracer.Emit(obs.Certificate{
				Ratio:            out.Dual.Ratio(),
				TheoreticalRatio: out.Dual.TheoreticalRatio(),
				Primal:           out.Dual.Primal,
				DualObjective:    out.Dual.DualObjective,
			})
		}
	}
	return out, nil
}

// reservePayment is the payment to a pivotal winner (no competing coverage
// exists): the configured reserve, the best competing scaled price, or the
// winner's own report — whichever is largest. The payment phase operates
// entirely in the scaled price domain ∇_ij, so the competitor scan must
// too: under MSOA's ψ augmentation a competitor's raw J_ij understates its
// effective price, and deriving the reserve from raw prices under- or
// over-pays pivotal winners relative to every other payment in the round.
// An explicitly configured reserve (ReserveSet, or any non-zero Reserve)
// is used verbatim; only the unset case auto-derives from the competition.
func reservePayment(ins *Instance, scaled []float64, w int, opts Options) float64 {
	reserve := opts.Reserve
	if reserve == 0 && !opts.ReserveSet {
		for i := range ins.Bids {
			if ins.Bids[i].Bidder != ins.Bids[w].Bidder && scaled[i] > reserve {
				reserve = scaled[i]
			}
		}
	}
	if reserve < scaled[w] {
		reserve = scaled[w]
	}
	return reserve
}

// certBuilder accumulates the primal–dual bookkeeping of Algorithm 1
// (lines 13-18) while the greedy loop runs.
type certBuilder struct {
	ins    *Instance
	scaled []float64
	// unitPrices[k] holds f(k, Ŝ): the per-unit price ρ of the iteration
	// that supplied each unit of needy k's coverage, in supply order.
	unitPrices [][]float64
	// unitTimes[k] holds the iteration number at which each unit of k was
	// supplied (for the dual-feasibility ordering argument).
	unitTimes [][]int
	iteration int
	// iterPrice[t] is ρ of iteration t (monotonically non-decreasing in t
	// for the PricePerCoverage metric).
	iterPrice []float64
}

func newCertBuilder(ins *Instance, scaled []float64) *certBuilder {
	return &certBuilder{
		ins:        ins,
		scaled:     scaled,
		unitPrices: make([][]float64, len(ins.Demand)),
		unitTimes:  make([][]int, len(ins.Demand)),
	}
}

func (cb *certBuilder) record(_ int, b *Bid, gains []int, price float64, marginal int) {
	rho := price / float64(marginal)
	cb.iterPrice = append(cb.iterPrice, rho)
	for i, k := range b.Covers {
		for g := 0; g < gains[i]; g++ {
			cb.unitPrices[k] = append(cb.unitPrices[k], rho)
			cb.unitTimes[k] = append(cb.unitTimes[k], cb.iteration)
		}
	}
	cb.iteration++
}

func (cb *certBuilder) finish(out *Outcome) *DualCertificate {
	ins := cb.ins
	cert := &DualCertificate{
		UnitPrices: cb.unitPrices,
		UnitTimes:  cb.unitTimes,
		W:          harmonic(maxCoverCapacity(ins)),
		Xi:         bidderPriceSpread(ins, cb.scaled),
	}
	cert.Primal = out.ScaledCost

	// Dual fitting against the LP dual of (12):
	//   max Σ_k X_k·y_k − Σ_i z_i
	//   s.t. Σ_{k ∈ S_ij} a_ij·y_k − z_i ≤ ∇_ij  for every bid (i,j)
	//        y, z ≥ 0.
	// Base direction: y_k proportional to the mean greedy unit price of
	// k's coverage (Lemma 1's dual fitting). Two feasible candidates are
	// compared and the better kept — either way the certificate is
	// feasible BY CONSTRUCTION and weak duality yields an unconditional
	// bound: OPT ≥ DualObjective.
	//
	//  (a) the largest uniform scale s with z ≡ 0: s = min_i ∇_i/L_i
	//      where L_i = Σ_{k∈S_i} a_i·rawY_k — usually much tighter than
	//      the worst-case analysis;
	//  (b) the analysis scale 1/(W·Ξ) with z absorbing per-bidder excess
	//      (the literal Lemma 1 fitting).
	rawY := make([]float64, len(ins.Demand))
	for k, prices := range cb.unitPrices {
		if len(prices) == 0 {
			continue
		}
		var sum float64
		for _, rho := range prices {
			sum += rho
		}
		rawY[k] = sum / float64(len(prices))
	}
	lhs := make([]float64, len(ins.Bids))
	for i := range ins.Bids {
		b := &ins.Bids[i]
		for _, k := range b.Covers {
			lhs[i] += float64(b.Units) * rawY[k]
		}
	}
	var demandDotY float64 // Σ_k X_k·rawY_k
	for k, d := range ins.Demand {
		demandDotY += float64(d) * rawY[k]
	}

	// Candidate (a): uniform scaling, no bidder slack.
	scaleA := math.Inf(1)
	for i := range ins.Bids {
		if lhs[i] > 0 {
			if s := cb.scaled[i] / lhs[i]; s < scaleA {
				scaleA = s
			}
		}
	}
	if math.IsInf(scaleA, 1) {
		scaleA = 0
	}
	objA := scaleA * demandDotY

	// Candidate (b): analysis scaling with per-bidder slack.
	scaleB := 1 / (cert.W * cert.Xi)
	zB := make(map[int]float64)
	for i := range ins.Bids {
		b := &ins.Bids[i]
		if excess := lhs[i]*scaleB - cb.scaled[i]; excess > zB[b.Bidder] {
			zB[b.Bidder] = excess
		}
	}
	// Subtract the bidder slack in sorted-key order: float64 addition is not
	// associative, and map iteration order is randomized per run, so summing
	// in map order would make DualObjective differ in its last bits between
	// two runs on the same instance. The certificate must be deterministic
	// (the differential tests compare it bit for bit).
	objB := scaleB * demandDotY
	bidders := make([]int, 0, len(zB))
	for b := range zB {
		bidders = append(bidders, b)
	}
	sort.Ints(bidders)
	for _, b := range bidders {
		objB -= zB[b]
	}

	scale, z, obj := scaleA, map[int]float64{}, objA
	if objB > objA {
		scale, z, obj = scaleB, zB, objB
	}
	cert.Y = make([]float64, len(rawY))
	for k := range rawY {
		cert.Y[k] = rawY[k] * scale
	}
	cert.Z = z
	cert.DualObjective = obj
	return cert
}

// harmonic returns H_n = Σ_{i=1..n} 1/i, with H_0 = 1 so that the
// certificate ratio is always at least 1.
func harmonic(n int) float64 {
	if n < 1 {
		return 1
	}
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// maxCoverCapacity returns the largest total coverage any single bid can
// supply: max over bids of Σ_{k∈Covers} min(Units, X_k). This is the "n" of
// the H_n set-multicover bound.
func maxCoverCapacity(ins *Instance) int {
	maxCap := 0
	for _, b := range ins.Bids {
		c := 0
		for _, k := range b.Covers {
			if k < 0 || k >= len(ins.Demand) {
				continue // defensive: structurally invalid cover entry
			}
			u := b.Units
			if u > ins.Demand[k] {
				u = ins.Demand[k]
			}
			c += u
		}
		if c > maxCap {
			maxCap = c
		}
	}
	return maxCap
}

// bidderPriceSpread returns Ξ: the maximum over bidders of the ratio of its
// most to least expensive alternative bid (scaled prices). With one bid per
// bidder Ξ = 1 and the certificate collapses to the plain H_n bound, as the
// paper notes after Theorem 3.
func bidderPriceSpread(ins *Instance, scaled []float64) float64 {
	type span struct{ lo, hi float64 }
	spans := make(map[int]*span)
	for i := range ins.Bids {
		p := scaled[i]
		s := spans[ins.Bids[i].Bidder]
		if s == nil {
			spans[ins.Bids[i].Bidder] = &span{lo: p, hi: p}
			continue
		}
		if p < s.lo {
			s.lo = p
		}
		if p > s.hi {
			s.hi = p
		}
	}
	xi := 1.0
	for _, s := range spans {
		if s.lo > 0 && s.hi/s.lo > xi {
			xi = s.hi / s.lo
		}
	}
	return xi
}

// DualCertificate is the primal–dual approximation certificate produced by
// SSAM (Theorem 3 / Lemma 1). It carries an explicit feasible solution
// (Y, Z) of the LP dual of (12), so by weak duality the offline optimum is
// at least DualObjective, and Primal/DualObjective is an instance-specific
// CERTIFIED approximation ratio — no trust in the analysis required.
type DualCertificate struct {
	// UnitPrices[k] lists f(k,·): the per-unit greedy price of each
	// coverage unit supplied to needy microservice k, in supply order.
	UnitPrices [][]float64
	// UnitTimes[k] lists the greedy iteration index of each unit.
	UnitTimes [][]int
	// W is the harmonic number H_c of the maximum per-bid coverage
	// capacity — the W_i of Theorem 3.
	W float64
	// Xi is the maximum per-bidder price spread (Ξ of Theorem 3); 1 when
	// every bidder submits a single bid.
	Xi float64
	// Y holds the fitted dual variable y_k per needy microservice
	// (coverage constraint (13)).
	Y []float64
	// Z holds the fitted dual variable z_i per bidder (one-bid constraint
	// (14)), absorbing any per-bid constraint excess.
	Z map[int]float64
	// Primal is the scaled-price objective value achieved by the greedy.
	Primal float64
	// DualObjective is Σ_k X_k·y_k − Σ_i z_i, a lower bound on OPT.
	DualObjective float64
}

// Ratio returns the certified approximation ratio Primal/DualObjective, or
// the theoretical W·Ξ when the dual objective is non-positive (degenerate
// instances with near-zero prices).
func (c *DualCertificate) Ratio() float64 {
	if c.DualObjective <= 0 {
		return c.TheoreticalRatio()
	}
	r := c.Primal / c.DualObjective
	if r < 1 {
		return 1
	}
	return r
}

// TheoreticalRatio returns the paper's closed-form bound W·Ξ.
func (c *DualCertificate) TheoreticalRatio() float64 { return c.W * c.Xi }

// CheckFeasible verifies that (Y, Z) satisfies every dual constraint
// Σ_{k∈S_ij} a_ij·y_k − z_i ≤ ∇_ij and y, z ≥ 0. It returns the first
// violated bid index and the violation amount, or (-1, 0) when feasible.
// Because finish constructs Z to absorb violations, a non-negative result
// here always indicates an implementation bug.
func (c *DualCertificate) CheckFeasible(ins *Instance, scaled []float64) (int, float64) {
	const eps = 1e-9
	for k, y := range c.Y {
		if y < -eps {
			return k, -y
		}
	}
	for _, z := range c.Z {
		if z < -eps {
			return -2, -z
		}
	}
	for i := range ins.Bids {
		b := &ins.Bids[i]
		var lhs float64
		for _, k := range b.Covers {
			lhs += float64(b.Units) * c.Y[k]
		}
		lhs -= c.Z[b.Bidder]
		if lhs > scaled[i]+eps {
			return i, lhs - scaled[i]
		}
	}
	return -1, 0
}
