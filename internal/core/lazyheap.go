package core

// lazyHeap is the incremental priority structure behind every greedy
// selection loop in the kernel: the truthful main run, the budgeted
// selection, and each counterfactual payment replay. It replaces the
// per-iteration O(candidates) arg-min scan with a binary min-heap over
// (score, bid index) under LAZY RESCORING, exploiting two monotonicity
// facts of the set-multicover greedy:
//
//   - θ only grows, so a bid's marginal coverage is non-increasing and its
//     greedy score (scaled price / marginal) is NON-DECREASING over time.
//     A cached key is therefore always a LOWER BOUND on the bid's true
//     score, and an entry whose cache is known fresh carries its exact
//     score.
//   - A bid whose marginal hits 0 is dead FOREVER and leaves the structure
//     permanently.
//
// Freshness is tracked with coverage epochs: bidEpoch[b] advances in a flat
// batch pass over the inverse cover incidence whenever a needy service's θ
// changes (kernel.dirtyCovering), and scoreEpoch[b] records the epoch at
// which (key, marg) were cached. Stale entries are rescored only when they
// surface at the heap root — a key can only rise, so one sift-down restores
// the heap invariant. Deletions (bidder-group bans) are lazy as well: pops
// consult the companion candSet and discard entries whose pos is -1.
//
// Exactness (DESIGN.md §11): a root that is alive and epoch-current is the
// exact lexicographic minimum of (true score, bid index) over all live
// bids, because the heap orders by cached keys, every cached key
// lower-bounds its true score, and ties compare by bid index — so the pop
// sequence reproduces the reference implementation's ascending-scan
// lowest-index tie-break bit for bit. The choice of a flat binary heap
// over a pairing heap or bucket queue is benchmarked in
// BenchmarkPriorityStructures (lazyheap_test.go): the slice-backed heap
// wins on this workload (no per-node allocations, cache-contiguous
// sifts), and a bucket queue would need float64 key quantization that
// cannot preserve exact score ties.
type lazyHeap struct {
	heap       []int32   // bid indices, min-ordered by (key, index)
	key        []float64 // cached score per bid (lower bound of true score)
	marg       []int32   // cached marginal per bid (exact when epoch-fresh)
	bidEpoch   []int32   // coverage epoch per bid (bumped by dirtyCovering)
	scoreEpoch []int32   // bidEpoch value at which key/marg were cached
}

// seed fills lh with the exact initial (score, marginal) of every candidate
// in cs at state theta, pruning bids whose marginal is already 0 from cs —
// they can never be selected (marginals only shrink), exactly as the
// reference's first scan would skip them. All per-bid arrays are pooled
// with their owner (kernel or replayScratch); steady state allocates
// nothing.
func (lh *lazyHeap) seed(kn *kernel, theta []int32, cs *candSet) {
	nb := kn.nb
	lh.key = resizeFloat64(lh.key, nb)
	lh.marg = resizeInt32(lh.marg, nb)
	lh.bidEpoch = resizeInt32(lh.bidEpoch, nb)
	lh.scoreEpoch = resizeInt32(lh.scoreEpoch, nb)
	if cap(lh.heap) < nb {
		lh.heap = make([]int32, 0, nb)
	}
	lh.heap = lh.heap[:0]
	for i := 0; i < len(cs.list); {
		b := cs.list[i]
		m := kn.marginalOf(b, theta)
		if m <= 0 {
			cs.removeAt(i)
			continue
		}
		lh.bidEpoch[b] = 0
		lh.scoreEpoch[b] = 0
		lh.marg[b] = int32(m)
		lh.key[b] = kn.scoreOf(b, m)
		lh.heap = append(lh.heap, b)
		i++
	}
	for i := len(lh.heap)/2 - 1; i >= 0; i-- {
		lh.siftDown(i)
	}
}

// less orders heap slots by the shared greedy comparison over cached keys
// (lowest score first, lowest bid index on exact ties).
func (lh *lazyHeap) less(i, j int) bool {
	a, b := lh.heap[i], lh.heap[j]
	return betterScore(lh.key[a], a, lh.key[b], b)
}

func (lh *lazyHeap) siftDown(i int) {
	n := len(lh.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && lh.less(r, l) {
			least = r
		}
		if !lh.less(least, i) {
			return
		}
		lh.heap[i], lh.heap[least] = lh.heap[least], lh.heap[i]
		i = least
	}
}

func (lh *lazyHeap) pop() {
	last := len(lh.heap) - 1
	lh.heap[0] = lh.heap[last]
	lh.heap = lh.heap[:last]
	if last > 0 {
		lh.siftDown(0)
	}
}

// popBest surfaces the true greedy arg-min at state theta: it examines the
// heap root, lazily discarding bids removed from cs by a bidder-group ban,
// rescoring stale roots in place (keys only rise, so one sift-down
// restores the heap), and permanently dropping bids whose rescored
// marginal hit 0. The returned winner is NOT popped — its subsequent group
// ban lets the lazy-delete path discard it. Returns best = -1 when no live
// candidate remains.
func (lh *lazyHeap) popBest(kn *kernel, theta []int32, cs *candSet) (best int32, bestScore float64, bestMarginal int) {
	for len(lh.heap) > 0 {
		b := lh.heap[0]
		if cs.pos[b] < 0 { // banned bidder group: lazy delete
			lh.pop()
			continue
		}
		if lh.scoreEpoch[b] != lh.bidEpoch[b] { // stale: lazy rescore
			lh.scoreEpoch[b] = lh.bidEpoch[b]
			m := kn.marginalOf(b, theta)
			if m <= 0 { // dead forever: θ only grows
				cs.remove(b)
				lh.pop()
				continue
			}
			lh.marg[b] = int32(m)
			lh.key[b] = kn.scoreOf(b, m)
			lh.siftDown(0)
			continue
		}
		return b, lh.key[b], int(lh.marg[b])
	}
	return -1, 0, 0
}
