package core

import (
	"fmt"
	"sort"
)

// This file implements a two-stage futures+spot double auction with
// overbooking, following the design of arXiv 2501.04507: at the end of
// each round the platform books reservations from the cheapest bidders
// at a discounted futures price, deliberately overbooking against
// no-shows; at the start of the next round the booked reservations are
// settled — present bidders execute at their committed futures price,
// absent (or price-deviating) bidders pay a penalty proportional to
// their booked value — and a spot stage covers whatever demand the
// executed futures left open.
//
// The mechanism is Stateful (the futures book crosses rounds) and a
// SettlementReporter (the chaos auditor checks VerifyPenaltyBound on
// every round's settlement). Determinism: the book is rebuilt by a
// price-then-index sort and settled in book order, so replaying the same
// round sequence from Reset reproduces the same trajectory bit-for-bit.
//
// Individual rationality: an executed reservation pays the committed
// futures price only when it still covers the bidder's current report
// (a bidder now asking more than its commitment is treated as a seller
// deviation and penalized instead of underpaid), and the spot stage pays
// first-price, so every winner's payment is at least its reported price.

// DoubleAuctionConfig parameterizes the futures+spot double auction. The
// zero value selects the defaults.
type DoubleAuctionConfig struct {
	// Discount is the futures price factor δ ∈ (0,1]: a bid booked at
	// reported price J commits to deliver next round for δ·J. Defaults
	// to 0.9.
	Discount float64 `json:"discount,omitempty"`
	// Overbook is the booked-coverage target as a multiple of demand:
	// the platform books reservations until their useful coverage
	// reaches Overbook × the current round's total demand. Defaults to
	// 1.25 (25% overbooking against no-shows).
	Overbook float64 `json:"overbook,omitempty"`
	// PenaltyRate is the no-show penalty as a fraction of the booked
	// futures price. Defaults to 0.5.
	PenaltyRate float64 `json:"penalty_rate,omitempty"`
}

// withDefaults fills zero fields.
func (c DoubleAuctionConfig) withDefaults() DoubleAuctionConfig {
	if c.Discount <= 0 || c.Discount > 1 {
		c.Discount = 0.9
	}
	if c.Overbook <= 0 {
		c.Overbook = 1.25
	}
	if c.PenaltyRate <= 0 {
		c.PenaltyRate = 0.5
	}
	return c
}

// Settlement reports how one round settled the futures book carried in
// from the previous round, plus the round's spot outlay. The platform's
// net outlay for the round is FuturesPaid + SpotPaid − Penalties.
type Settlement struct {
	// Booked is the number of reservations entering the round.
	Booked int `json:"booked"`
	// Executed counts reservations delivered at their futures price.
	Executed int `json:"executed"`
	// NoShows counts booked bidders absent from the round's bids.
	NoShows int `json:"no_shows"`
	// SellerDeviations counts booked bidders present but reporting a
	// price above their futures commitment; they settle as no-shows.
	SellerDeviations int `json:"seller_deviations"`
	// BookedValue is the sum of committed futures prices entering the
	// round; ExecutedValue (= futures paid) and NoShowValue partition
	// the portion that executed and the portion that defaulted.
	BookedValue float64 `json:"booked_value"`
	FuturesPaid float64 `json:"futures_paid"`
	NoShowValue float64 `json:"no_show_value"`
	// Penalties is the platform's penalty income this round:
	// PenaltyRate × the booked value of every defaulted reservation.
	Penalties float64 `json:"penalties"`
	// SpotPaid is the first-price outlay of the spot stage.
	SpotPaid float64 `json:"spot_paid"`
}

// VerifyPenaltyBound checks the overbooking invariants the chaos auditor
// enforces per round: penalties are non-negative, never exceed
// PenaltyRate × the defaulted booked value, futures payments never
// exceed the booked value, and the defaulted value is part of the booked
// value. A violation means the settlement accounting is broken.
func VerifyPenaltyBound(st *Settlement, cfg DoubleAuctionConfig) error {
	const eps = 1e-6
	cfg = cfg.withDefaults()
	if st == nil {
		return fmt.Errorf("core: nil settlement")
	}
	if st.Penalties < -eps {
		return fmt.Errorf("core: negative penalty income %.6f", st.Penalties)
	}
	if bound := cfg.PenaltyRate * st.NoShowValue; st.Penalties > bound+eps {
		return fmt.Errorf("core: penalties %.6f exceed bound %.6f (rate %.2f × defaulted value %.6f)",
			st.Penalties, bound, cfg.PenaltyRate, st.NoShowValue)
	}
	if st.FuturesPaid > st.BookedValue+eps {
		return fmt.Errorf("core: futures payments %.6f exceed booked value %.6f",
			st.FuturesPaid, st.BookedValue)
	}
	if st.NoShowValue > st.BookedValue+eps {
		return fmt.Errorf("core: defaulted value %.6f exceeds booked value %.6f",
			st.NoShowValue, st.BookedValue)
	}
	return nil
}

// reservation is one futures-book entry: a bidder committed to deliver
// next round at the discounted price. Cover sets are not carried — needy
// indices are round-local, so execution delivers the bidder's current
// bid coverage at the committed price.
type reservation struct {
	Bidder int
	Price  float64
}

// DoubleAuction is the futures+spot double auction with overbooking.
type DoubleAuction struct {
	cfg            DoubleAuctionConfig
	book           []reservation
	last           *Settlement
	totalPenalties float64
}

// NewDoubleAuction returns a double auction with an empty futures book
// and defaults applied.
func NewDoubleAuction(cfg DoubleAuctionConfig) *DoubleAuction {
	return &DoubleAuction{cfg: cfg.withDefaults()}
}

// Name implements Mechanism.
func (d *DoubleAuction) Name() string { return NameDoubleAuction }

// Reset implements Stateful: it voids the futures book and all
// settlement history.
func (d *DoubleAuction) Reset() {
	d.book = nil
	d.last = nil
	d.totalPenalties = 0
}

// LastSettlement implements SettlementReporter.
func (d *DoubleAuction) LastSettlement() *Settlement { return d.last }

// SettlementConfig implements SettlementReporter.
func (d *DoubleAuction) SettlementConfig() DoubleAuctionConfig { return d.cfg }

// TotalPenalties returns the cumulative penalty income across rounds.
func (d *DoubleAuction) TotalPenalties() float64 { return d.totalPenalties }

// BookSize returns the number of reservations currently booked.
func (d *DoubleAuction) BookSize() int { return len(d.book) }

// usefulCover returns a bid's coverage capped at the residual demand.
func usefulCover(b *Bid, residual []int) int {
	useful := 0
	for _, k := range b.Covers {
		u := b.Units
		if r := residual[k]; u > r {
			u = r
		}
		useful += u
	}
	return useful
}

// Clear implements Mechanism: settle the futures book against this
// round's bids, cover the residual demand in a first-price spot stage,
// then rebook the cheapest bidders for the next round. The futures book
// advances even when the round is infeasible.
func (d *DoubleAuction) Clear(ins *Instance, opts Options) (*Outcome, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}

	// Index each bidder's cheapest bid (price asc, index asc) — the bid
	// a reservation executes against and the bid the rebooking stage
	// books.
	bestBid := make(map[int]int, len(ins.Bids))
	for i := range ins.Bids {
		b := &ins.Bids[i]
		if j, ok := bestBid[b.Bidder]; !ok || b.Price < ins.Bids[j].Price {
			bestBid[b.Bidder] = i
		}
	}

	residual := append([]int(nil), ins.Demand...)
	deficit := 0
	for _, r := range residual {
		deficit += r
	}
	out := &Outcome{Payments: make(map[int]float64)}
	st := &Settlement{Booked: len(d.book)}
	wonBidder := make(map[int]struct{}, len(d.book))

	// Stage 1: settle reservations in book order (already price-sorted
	// and deterministic from last round's rebooking).
	for _, r := range d.book {
		st.BookedValue += r.Price
		i, present := bestBid[r.Bidder]
		if !present {
			st.NoShows++
			st.NoShowValue += r.Price
			st.Penalties += d.cfg.PenaltyRate * r.Price
			continue
		}
		b := &ins.Bids[i]
		if b.Price > r.Price {
			// The seller walked back its commitment; settle as a
			// deviation rather than underpay it (preserves IR).
			st.SellerDeviations++
			st.NoShowValue += r.Price
			st.Penalties += d.cfg.PenaltyRate * r.Price
			continue
		}
		st.Executed++
		st.FuturesPaid += r.Price
		wonBidder[b.Bidder] = struct{}{}
		out.Winners = append(out.Winners, i)
		out.Payments[i] = r.Price
		out.SocialCost += b.Price
		for _, k := range b.Covers {
			u := b.Units
			if rr := residual[k]; u > rr {
				u = rr
			}
			residual[k] -= u
			deficit -= u
		}
	}

	// Stage 2: first-price spot over the remaining bidders, cheapest
	// useful coverage first (price per marginal unit, index tie-break).
	for deficit > 0 {
		best, bestScore := -1, 0.0
		for i := range ins.Bids {
			b := &ins.Bids[i]
			if _, dup := wonBidder[b.Bidder]; dup {
				continue
			}
			marginal := usefulCover(b, residual)
			if marginal == 0 {
				continue
			}
			score := b.Price / float64(marginal)
			if best < 0 || score < bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			break
		}
		b := &ins.Bids[best]
		wonBidder[b.Bidder] = struct{}{}
		out.Winners = append(out.Winners, best)
		out.Payments[best] = b.Price
		out.SocialCost += b.Price
		st.SpotPaid += b.Price
		for _, k := range b.Covers {
			u := b.Units
			if rr := residual[k]; u > rr {
				u = rr
			}
			residual[k] -= u
			deficit -= u
		}
	}

	// Stage 3: rebook for the next round — each bidder's cheapest bid,
	// cheapest first, at the discounted futures price, until the booked
	// useful coverage reaches Overbook × this round's demand.
	d.rebook(ins, bestBid)

	d.last = st
	d.totalPenalties += st.Penalties
	if deficit > 0 {
		return nil, fmt.Errorf("%w (double auction: %d units uncovered)", ErrInfeasible, deficit)
	}
	out.ScaledCost = out.SocialCost
	return out, nil
}

// rebook rebuilds the futures book from this round's bids.
func (d *DoubleAuction) rebook(ins *Instance, bestBid map[int]int) {
	candidates := make([]int, 0, len(bestBid))
	for _, i := range bestBid {
		candidates = append(candidates, i)
	}
	// Sort by price asc, bid index asc for a deterministic book.
	sort.Slice(candidates, func(a, b int) bool {
		x, y := candidates[a], candidates[b]
		if ins.Bids[x].Price != ins.Bids[y].Price {
			return ins.Bids[x].Price < ins.Bids[y].Price
		}
		return x < y
	})
	target := d.cfg.Overbook * float64(ins.TotalDemand())
	fresh := make([]int, len(ins.Demand))
	copy(fresh, ins.Demand)
	d.book = d.book[:0]
	booked := 0.0
	for _, i := range candidates {
		if booked >= target {
			break
		}
		b := &ins.Bids[i]
		useful := usefulCover(b, fresh)
		if useful == 0 {
			continue
		}
		d.book = append(d.book, reservation{Bidder: b.Bidder, Price: d.cfg.Discount * b.Price})
		booked += float64(useful)
	}
}
