package core

import (
	"fmt"
	"math"
	"time"

	"edgeauction/internal/obs"
)

// Round is the input to one stage of the online auction: the needy demands
// and bids that materialize at round t. Bids carry RAW prices J_ij; MSOA
// derives the scaled prices ∇_ij internally.
type Round struct {
	// T is the 1-based round index.
	T int
	// Instance holds this round's demands and bids.
	Instance *Instance
}

// BidderWindow bounds a bidder's participation to rounds [Arrive, Depart]
// (the paper's t_i⁻ and t_i⁺). Bids submitted outside the window are
// excluded from the candidate set.
type BidderWindow struct {
	Arrive int
	Depart int
}

// Contains reports whether round t falls in the window. A zero-value window
// (Arrive=Depart=0) means "always present".
func (w BidderWindow) Contains(t int) bool {
	if w.Arrive == 0 && w.Depart == 0 {
		return true
	}
	return t >= w.Arrive && t <= w.Depart
}

// MSOAConfig configures the multi-stage online auction (Algorithm 2).
type MSOAConfig struct {
	// Capacity maps bidder id -> Θ_i, the lifetime number of coverage
	// slots (Σ over winning bids of |S_ij|) the bidder is willing to
	// share. Bidders absent from the map are treated as having
	// DefaultCapacity. A non-positive map entry means that bidder is
	// unlimited.
	Capacity map[int]int
	// DefaultCapacity applies to bidders without an explicit Capacity
	// entry. When DefaultCapacitySet is false, zero keeps the historical
	// meaning "unlimited"; when DefaultCapacitySet is true the value is
	// taken verbatim, so an explicit zero means bidders without an entry
	// have NO sharing capacity and are excluded from every round.
	DefaultCapacity int
	// DefaultCapacitySet marks DefaultCapacity as explicitly configured.
	// It exists because DefaultCapacity == 0 alone cannot distinguish
	// "unset, bidders are unlimited" from "bidders without an entry may
	// not share at all".
	DefaultCapacitySet bool
	// CapacityExemptFrom, when positive, exempts every bidder with id >=
	// this value from capacity constraints. Platforms reserve a high id
	// space for their own fallback supply (e.g. the reserve ladder of
	// internal/sim and internal/workload), which is never
	// capacity-limited.
	CapacityExemptFrom int
	// Windows maps bidder id -> participation window. Absent bidders are
	// always present.
	Windows map[int]BidderWindow
	// Alpha is the single-stage approximation ratio α used in the ψ update
	// (Lemma 4 uses the SSAM ratio). When zero, each round's certified
	// ratio W·Ξ is used; if certificates are skipped, 1 is used.
	Alpha float64
	// DisableScaledPrice turns off the ψ augmentation (∇ = J always).
	// Exists for the ablation benchmarks; the competitive-ratio guarantee
	// does not hold with it set.
	DisableScaledPrice bool
	// Mechanism selects the single-stage mechanism each round clears
	// through. The zero value (and NameSSAM) runs the paper's SSAM on the
	// historical call path, byte-identical to configs predating this
	// field. Non-scaled mechanisms clear on raw prices and never update ψ
	// (χ capacity accounting still applies to their winners).
	Mechanism MechanismSpec
	// Options configures each embedded single-stage auction.
	Options Options
}

// capacityOf resolves a bidder's lifetime capacity Θ_i. limited reports
// whether the bidder is capacity-constrained at all; when it is true, theta
// is the (non-negative) constraint — including an explicit zero, which
// excludes the bidder from every round.
func (c MSOAConfig) capacityOf(bidder int) (theta int, limited bool) {
	if c.CapacityExemptFrom > 0 && bidder >= c.CapacityExemptFrom {
		return 0, false // platform fallback supply: unlimited
	}
	if c.Capacity != nil {
		if theta, ok := c.Capacity[bidder]; ok {
			if theta <= 0 {
				return 0, false // explicit map zero keeps meaning unlimited
			}
			return theta, true
		}
	}
	if c.DefaultCapacity > 0 {
		return c.DefaultCapacity, true
	}
	if c.DefaultCapacitySet {
		return 0, true // explicit zero default: no capacity at all
	}
	return 0, false
}

// RoundResult couples a round's outcome with the scaled prices it was
// computed under and per-winner accounting.
type RoundResult struct {
	T       int
	Outcome *Outcome
	// Scaled holds the scaled prices ∇_ij used this round, aligned with
	// the round's Instance.Bids. Excluded bids keep their raw price.
	Scaled []float64
	// Excluded lists bid indices dropped from the candidate set by the
	// capacity constraint or the participation window (Algorithm 2,
	// lines 5-6).
	Excluded []int
	// Err is non-nil when the round was infeasible; the auction continues
	// with subsequent rounds (demand goes unmet this round, as it would on
	// a real platform).
	Err error
}

// MSOA runs the multi-stage online auction over a sequence of rounds and
// retains the per-bidder dual state ψ_i and used capacity χ_i between
// rounds. Construct with NewMSOA, feed rounds in order with RunRound, or
// process a whole trace with Run.
type MSOA struct {
	cfg MSOAConfig
	// mech is the resolved non-default mechanism, nil when the config
	// selects SSAM (the nil fast path is the pre-Mechanism call chain,
	// kept byte-identical for the soak and bench gates).
	mech Mechanism
	// mechErr records a spec that failed to resolve; every round then
	// fails with it instead of silently falling back to SSAM.
	mechErr error
	psi     map[int]float64 // ψ_i
	chi     map[int]int     // χ_i: coverage slots consumed so far
	// results accumulates every processed round for reporting.
	results []*RoundResult
	// base is the summary carried over from a restored snapshot
	// (RestoreMSOA); Summary folds it in so a recovered mechanism reports
	// the whole run, not just the rounds since restart. Zero for NewMSOA.
	base OnlineSummary
}

// NewMSOA returns an online auction with zeroed dual state. A
// non-default cfg.Mechanism is resolved here, once, so Stateful
// mechanisms (futures books) live exactly as long as the MSOA's ψ/χ
// state; an unresolvable spec is reported by every RunRound rather than
// falling back to SSAM.
func NewMSOA(cfg MSOAConfig) *MSOA {
	m := &MSOA{
		cfg: cfg,
		psi: make(map[int]float64),
		chi: make(map[int]int),
	}
	if !cfg.Mechanism.IsSSAM() {
		m.mech, m.mechErr = NewMechanism(cfg.Mechanism)
	}
	return m
}

// Mechanism returns the resolved non-default mechanism, or nil when the
// online auction runs SSAM. The chaos auditor uses it to reach
// per-mechanism state (e.g. the double auction's settlement reports).
func (m *MSOA) Mechanism() Mechanism { return m.mech }

// Psi returns the current dual variable ψ_i for a bidder (0 if never won).
func (m *MSOA) Psi(bidder int) float64 { return m.psi[bidder] }

// UsedCapacity returns χ_i, the coverage slots bidder has supplied so far.
func (m *MSOA) UsedCapacity(bidder int) int { return m.chi[bidder] }

// Results returns the per-round results processed so far.
func (m *MSOA) Results() []*RoundResult { return m.results }

// RunRound executes one stage: derive scaled prices, filter the candidate
// set by windows and remaining capacity, run SSAM on the scaled prices, pay
// winners, and update ψ and χ for the winning bidders.
func (m *MSOA) RunRound(r Round) *RoundResult {
	ins := r.Instance
	res := &RoundResult{T: r.T, Scaled: make([]float64, len(ins.Bids))}
	if m.mechErr != nil {
		res.Err = fmt.Errorf("core: round %d: %w", r.T, m.mechErr)
		m.results = append(m.results, res)
		return res
	}
	tr := m.cfg.Options.Tracer
	var started time.Time
	if tr != nil {
		started = time.Now()
	}

	// Build the candidate set and scaled prices (Algorithm 2, lines 4-8).
	filtered := &Instance{
		Demand: ins.Demand,
		Bids:   make([]Bid, 0, len(ins.Bids)),
	}
	mapping := make([]int, 0, len(ins.Bids)) // filtered idx -> original idx
	for i := range ins.Bids {
		b := &ins.Bids[i]
		res.Scaled[i] = b.Price
		if w, ok := m.cfg.Windows[b.Bidder]; ok && !w.Contains(r.T) {
			res.Excluded = append(res.Excluded, i)
			continue
		}
		theta, limited := m.cfg.capacityOf(b.Bidder)
		if limited && m.chi[b.Bidder]+len(b.Covers) > theta {
			res.Excluded = append(res.Excluded, i)
			continue
		}
		if !m.cfg.DisableScaledPrice {
			res.Scaled[i] = b.Price + float64(len(b.Covers))*m.psi[b.Bidder]
		}
		filtered.Bids = append(filtered.Bids, *b)
		mapping = append(mapping, i)
	}

	scaledFiltered := make([]float64, len(filtered.Bids))
	for fi, oi := range mapping {
		scaledFiltered[fi] = res.Scaled[oi]
	}
	if tr != nil {
		tr.Emit(obs.RoundOpen{
			Scope: obs.ScopeMSOA, T: r.T,
			Needy: ins.NumNeedy(), TotalDemand: ins.TotalDemand(),
			Bids: len(filtered.Bids), Excluded: len(res.Excluded),
		})
	}

	// Dispatch the single-stage clear. The nil-mechanism branch is the
	// historical SSAM call and must stay byte-identical — the soak gates
	// compare its WAL bytes and state hashes across binaries.
	var out *Outcome
	var err error
	sm, scaledOK := m.mech.(ScaledMechanism)
	switch {
	case m.mech == nil:
		out, err = ssamScaled(filtered, scaledFiltered, m.cfg.Options)
	case scaledOK:
		out, err = sm.ClearScaled(filtered, scaledFiltered, m.cfg.Options)
	default:
		out, err = m.mech.Clear(filtered, m.cfg.Options)
	}
	if err != nil {
		res.Err = fmt.Errorf("core: round %d: %w", r.T, err)
		m.results = append(m.results, res)
		if tr != nil {
			tr.Emit(obs.RoundClose{
				Scope: obs.ScopeMSOA, T: r.T, Bids: len(filtered.Bids),
				Infeasible:     true,
				DurationMicros: time.Since(started).Microseconds(),
			})
		}
		return res
	}

	// Re-index the outcome to the original bid indices.
	remapped := &Outcome{
		Winners:    make([]int, 0, len(out.Winners)),
		Payments:   make(map[int]float64, len(out.Payments)),
		SocialCost: out.SocialCost,
		ScaledCost: out.ScaledCost,
		Dual:       out.Dual,
	}
	for _, w := range out.Winners {
		orig := mapping[w]
		remapped.Winners = append(remapped.Winners, orig)
		remapped.Payments[orig] = out.Payments[w]
	}
	res.Outcome = remapped

	alpha := m.cfg.Alpha
	if alpha == 0 {
		if out.Dual != nil {
			alpha = out.Dual.Ratio()
		} else {
			alpha = 1
		}
	}

	// Update ψ and χ for winners (Algorithm 2, lines 10-12):
	//   ψ_i^t = ψ_i^{t-1}(1 + |S_ij|/(α·Θ_i)) + J_ij·|S_ij|/(α·Θ_i²)
	// The ψ update belongs to the SSAM family's Lemma-4 argument, so it
	// only runs for scaled mechanisms; χ capacity accounting applies to
	// every mechanism's winners.
	updatePsi := m.mech == nil || scaledOK
	for _, orig := range remapped.Winners {
		b := &ins.Bids[orig]
		theta, limited := m.cfg.capacityOf(b.Bidder)
		if updatePsi && limited && theta > 0 {
			s := float64(len(b.Covers))
			th := float64(theta)
			m.psi[b.Bidder] = m.psi[b.Bidder]*(1+s/(alpha*th)) + b.Price*s/(alpha*th*th)
			if tr != nil {
				tr.Emit(obs.PsiUpdate{
					T: r.T, Bidder: b.Bidder,
					Psi: m.psi[b.Bidder], Chi: m.chi[b.Bidder] + len(b.Covers),
				})
			}
		}
		m.chi[b.Bidder] += len(b.Covers)
	}

	m.results = append(m.results, res)
	if tr != nil {
		tr.Emit(obs.RoundClose{
			Scope: obs.ScopeMSOA, T: r.T, Bids: len(filtered.Bids),
			Winners:    len(remapped.Winners),
			SocialCost: remapped.SocialCost, TotalPayment: remapped.TotalPayment(),
			DurationMicros: time.Since(started).Microseconds(),
		})
	}
	return res
}

// Run processes all rounds in order and returns the aggregate summary.
func (m *MSOA) Run(rounds []Round) *OnlineSummary {
	for _, r := range rounds {
		m.RunRound(r)
	}
	return m.Summary()
}

// OnlineSummary aggregates an online run.
type OnlineSummary struct {
	// Rounds is the number of processed rounds.
	Rounds int
	// SocialCost is Σ_t Σ winning J_ij: the paper's long-run objective.
	SocialCost float64
	// ScaledCost is the same sum under scaled prices.
	ScaledCost float64
	// TotalPayment is the platform's total remuneration outlay.
	TotalPayment float64
	// InfeasibleRounds counts rounds whose demand could not be covered.
	InfeasibleRounds int
	// WinningBids counts selected bids across all rounds.
	WinningBids int
	// MaxCertRatio is the largest per-round certified ratio W·Ξ (α).
	MaxCertRatio float64
}

// Summary aggregates the rounds processed so far, including any rounds
// folded in from a restored snapshot.
func (m *MSOA) Summary() *OnlineSummary {
	s := m.base
	s.Rounds += len(m.results)
	for _, r := range m.results {
		if r.Err != nil {
			s.InfeasibleRounds++
			continue
		}
		s.SocialCost += r.Outcome.SocialCost
		s.ScaledCost += r.Outcome.ScaledCost
		s.TotalPayment += r.Outcome.TotalPayment()
		s.WinningBids += len(r.Outcome.Winners)
		if r.Outcome.Dual != nil && r.Outcome.Dual.Ratio() > s.MaxCertRatio {
			s.MaxCertRatio = r.Outcome.Dual.Ratio()
		}
	}
	return &s
}

// CompetitiveBound returns the certified competitive ratio αβ/(β−1) of
// Theorem 7 for the given configuration and rounds, where
// β = min_{i,j,t} Θ_i/|S_ij^t| over capacity-constrained bidders. It
// returns +Inf when β ≤ 1 (a bid as large as its bidder's whole capacity
// defeats the online protection argument) and α alone when no bidder is
// capacity constrained (β = ∞).
func CompetitiveBound(alpha float64, cfg MSOAConfig, rounds []Round) float64 {
	beta := math.Inf(1)
	for _, r := range rounds {
		for i := range r.Instance.Bids {
			b := &r.Instance.Bids[i]
			theta, limited := cfg.capacityOf(b.Bidder)
			if !limited || theta <= 0 || len(b.Covers) == 0 {
				continue
			}
			ratio := float64(theta) / float64(len(b.Covers))
			if ratio < beta {
				beta = ratio
			}
		}
	}
	if math.IsInf(beta, 1) {
		return alpha
	}
	if beta <= 1 {
		return math.Inf(1)
	}
	return alpha * beta / (beta - 1)
}
