package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"edgeauction/internal/obs"
)

// This file is the optimized SSAM selection/payment engine. It produces
// BIT-IDENTICAL outcomes (winner sequence, costs, every payment, the dual
// certificate) to the straightforward implementation preserved as the
// differential oracle in reference_test.go, via three exact optimizations:
//
//  1. CSR cover layout. Bid.Covers is flattened once per run into shared
//     arrays (coverStart offsets + coverKey needy indices + coverCap
//     precomputed min(Units, Demand[k]) per edge), so the inner marginal
//     loop is branch-light and cache-contiguous instead of chasing
//     per-bid slices.
//
//  2. Compact candidate list. Marginal coverage is monotone non-increasing
//     (θ only grows), so a bid whose marginal hits 0 is dead FOREVER; it is
//     dropped via swap-delete and never revisited, instead of re-walking a
//     full []bool mask every iteration.
//
//  2b. Lazy-rescore priority selection (lazyheap.go). Every greedy
//     selection loop — main run, budgeted run, and each counterfactual
//     replay — draws its arg-min from a binary min-heap over
//     (score, bid index) with epoch-tracked lazy rescoring and batch
//     dirtying over the inverse cover incidence, instead of a full
//     candidate scan per iteration. Exact by the monotone-marginal lower
//     bound argument written up in DESIGN.md §11.
//
//  3. Checkpointed counterfactual payment replays. The critical-value
//     replay that excludes winner w's bidder is provably identical to the
//     truthful run up to the iteration s where w was selected: before s,
//     no bid of w's bidder was ever the greedy arg-min — a strictly better
//     bid would have been selected, and under lowest-index tie-breaking an
//     equal-score bid of w's bidder with a lower index would also have been
//     selected, so removing the bidder changes neither the selections nor
//     the scores. The main run snapshots (θ, deficit, compact candidate
//     list, selected score) at every winning iteration; each winner's
//     replay then reduces to a cheap prefix max over stored scores
//     (O(s·|Covers_w|), no candidate scans) plus a live replay of only the
//     SUFFIX from its own checkpoint. The per-iteration max is
//     order-independent, so prefix-max + suffix-max equals the full
//     replay's max bit for bit. Pivotal winners (counterfactual arg-min
//     exhausted) can only surface in the suffix — the prefix replays
//     selections that actually happened.
//
// The kernel operates on int32 state for cache density; build rejects the
// (unrealistic) instances whose demands overflow that domain instead of
// silently truncating.

// betterScore is THE greedy ordering, shared by every selection path (the
// lazy-rescore heap behind selection and budgeted selection, and the
// candidate scans behind the counterfactual suffix replays): (s1, b1) beats
// (s2, b2) when its score is strictly lower, or on an exact score tie when
// its bid index is lower. Centralizing the comparison keeps the tie-break
// bit-identical across all paths — the reference's ascending scan realizes
// the same order implicitly, and the differential fuzz gate holds every
// path to it.
func betterScore(s1 float64, b1 int32, s2 float64, b2 int32) bool {
	return s1 < s2 || (s1 == s2 && b1 < b2)
}

// candSet is a compact candidate list with O(1) swap-delete membership:
// list holds the live bid indices in arbitrary order, pos maps a bid index
// to its position in list (-1 once removed). Scans must apply an explicit
// lowest-bid-index tie-break, because swap-deletes permute list order.
type candSet struct {
	list []int32
	pos  []int32
}

func (cs *candSet) reset(nb int) {
	if cap(cs.list) < nb {
		cs.list = make([]int32, nb)
		cs.pos = make([]int32, nb)
	}
	cs.list = cs.list[:nb]
	cs.pos = cs.pos[:nb]
	for i := range cs.list {
		cs.list[i] = int32(i)
		cs.pos[i] = int32(i)
	}
}

func (cs *candSet) removeAt(i int) {
	b := cs.list[i]
	last := len(cs.list) - 1
	moved := cs.list[last]
	cs.list[i] = moved
	cs.pos[moved] = int32(i)
	cs.list = cs.list[:last]
	cs.pos[b] = -1 // after pos[moved]: correct even when b == moved
}

func (cs *candSet) remove(b int32) {
	if p := cs.pos[b]; p >= 0 {
		cs.removeAt(int(p))
	}
}

// kernel is the flat view of one ssamScaled (or BudgetedSSAM) run plus all
// mutable greedy state and the payment checkpoints. Kernels are pooled; the
// flat view is immutable once built and is shared read-only by the parallel
// payment replays.
type kernel struct {
	nb     int // number of bids
	nk     int // number of needy microservices
	metric GreedyMetric

	demand []int32
	scaled []float64 // caller's scaled prices ∇ (borrowed, read-only)

	// CSR cover view: bid b's edges are [coverStart[b], coverStart[b+1]).
	coverStart []int32
	coverKey   []int32 // needy index per edge
	coverCap   []int32 // min(Units, Demand[key]) per edge

	// Bidder grouping ("remove ALL bids of the winning bidder"): groupOf
	// maps a bid to a dense bidder id, groupStart/groupBids list each
	// group's bids CSR-style. bidderGroup is the build-time dense
	// re-indexing map, retained (and cleared) across pooled reuse.
	groupOf     []int32
	groupStart  []int32
	groupBids   []int32
	cursor      []int32
	bidderGroup map[int]int32

	// Inverse cover incidence (CSR): the bids covering needy k are
	// incBid[incStart[k]:incStart[k+1]]. The batch dirtying pass walks one
	// row per needy whose θ changed, bumping the covering bids' epochs.
	incStart []int32
	incBid   []int32

	// Main-run lazy-rescore priority structure over (score, bid index);
	// see lazyheap.go for the staleness/exactness invariants. Each payment
	// replay seeds its own lazyHeap in its replayScratch from the same
	// immutable flat view.
	lh lazyHeap

	// Main-run mutable state.
	theta       []int32 // θ_k, capped at demand[k]
	deficit     int
	totalDemand int
	cand        candSet
	winners     []int

	// Per-winning-iteration checkpoints (CriticalValue payments only):
	// state BEFORE the iteration's winner was applied or its bidder
	// removed. ckTheta is iterations × nk flattened; ckCand holds the
	// concatenated candidate lists with ckCandStart offsets (one more
	// entry than iterations); ckScore is the iteration's selected score.
	ckTheta     []int32
	ckDeficit   []int
	ckScore     []float64
	ckCand      []int32
	ckCandStart []int

	gains []int // certificate per-winner gains scratch (aligned with Covers)

	// tracer is Options.Tracer for the duration of one run (nil when
	// tracing is disabled); cleared on release so a pooled kernel never
	// leaks a sink into the next run.
	tracer obs.Tracer
}

var kernelPool = sync.Pool{New: func() any { return new(kernel) }}

func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// build flattens ins and scaled into the kernel and resets all run state.
func (kn *kernel) build(ins *Instance, scaled []float64, opts Options) error {
	nb, nk := len(ins.Bids), len(ins.Demand)
	kn.nb, kn.nk = nb, nk
	kn.scaled = scaled
	kn.metric = opts.metric()
	kn.tracer = opts.Tracer

	kn.demand = resizeInt32(kn.demand, nk)
	kn.totalDemand = 0
	for k, d := range ins.Demand {
		if d > math.MaxInt32 {
			return fmt.Errorf("core: demand %d of needy microservice %d exceeds the kernel's int32 domain", d, k)
		}
		// The raw (possibly negative) demand counts toward the deficit —
		// the reference sums demands verbatim — but the gain math clamps
		// at 0 so a negative demand can never be covered, exactly like the
		// reference's `before >= demand` skip.
		kn.totalDemand += d
		if d < 0 {
			d = 0
		}
		kn.demand[k] = int32(d)
	}
	kn.deficit = kn.totalDemand
	kn.theta = resizeInt32(kn.theta, nk)
	for k := range kn.theta {
		kn.theta[k] = 0
	}

	edges := 0
	for i := range ins.Bids {
		edges += len(ins.Bids[i].Covers)
	}
	kn.coverStart = resizeInt32(kn.coverStart, nb+1)
	kn.coverKey = resizeInt32(kn.coverKey, edges)
	kn.coverCap = resizeInt32(kn.coverCap, edges)
	e := int32(0)
	for i := range ins.Bids {
		b := &ins.Bids[i]
		if b.Units < 1 {
			return fmt.Errorf("core: bid %d has non-positive units %d", i, b.Units)
		}
		kn.coverStart[i] = e
		for _, k := range b.Covers {
			u := b.Units // clamp in int before narrowing: demand ≤ MaxInt32
			if d := int(kn.demand[k]); u > d {
				u = d
			}
			kn.coverKey[e] = int32(k)
			kn.coverCap[e] = int32(u)
			e++
		}
	}
	kn.coverStart[nb] = e

	if kn.bidderGroup == nil {
		kn.bidderGroup = make(map[int]int32, nb)
	}
	clear(kn.bidderGroup)
	kn.groupOf = resizeInt32(kn.groupOf, nb)
	for i := range ins.Bids {
		g, ok := kn.bidderGroup[ins.Bids[i].Bidder]
		if !ok {
			g = int32(len(kn.bidderGroup))
			kn.bidderGroup[ins.Bids[i].Bidder] = g
		}
		kn.groupOf[i] = g
	}
	groups := len(kn.bidderGroup)
	kn.groupStart = resizeInt32(kn.groupStart, groups+1)
	for g := range kn.groupStart {
		kn.groupStart[g] = 0
	}
	for i := 0; i < nb; i++ {
		kn.groupStart[kn.groupOf[i]+1]++
	}
	for g := 0; g < groups; g++ {
		kn.groupStart[g+1] += kn.groupStart[g]
	}
	kn.groupBids = resizeInt32(kn.groupBids, nb)
	kn.cursor = append(kn.cursor[:0], kn.groupStart[:groups]...)
	for i := 0; i < nb; i++ {
		g := kn.groupOf[i]
		kn.groupBids[kn.cursor[g]] = int32(i)
		kn.cursor[g]++
	}

	// Inverse incidence rows (counting sort over the CSR edges).
	kn.incStart = resizeInt32(kn.incStart, nk+1)
	for k := range kn.incStart {
		kn.incStart[k] = 0
	}
	for _, k := range kn.coverKey[:e] {
		kn.incStart[k+1]++
	}
	for k := 0; k < nk; k++ {
		kn.incStart[k+1] += kn.incStart[k]
	}
	kn.incBid = resizeInt32(kn.incBid, int(e))
	kn.cursor = append(kn.cursor[:0], kn.incStart[:nk]...)
	for b := int32(0); b < int32(nb); b++ {
		for ee := kn.coverStart[b]; ee < kn.coverStart[b+1]; ee++ {
			k := kn.coverKey[ee]
			kn.incBid[kn.cursor[k]] = b
			kn.cursor[k]++
		}
	}

	kn.cand.reset(nb)
	kn.winners = kn.winners[:0]
	kn.ckTheta = kn.ckTheta[:0]
	kn.ckDeficit = kn.ckDeficit[:0]
	kn.ckScore = kn.ckScore[:0]
	kn.ckCand = kn.ckCand[:0]
	kn.ckCandStart = append(kn.ckCandStart[:0], 0)
	kn.lh.seed(kn, kn.theta, &kn.cand)
	return nil
}

// scoreOf is the greedy metric evaluated exactly as the reference does:
// scaled price over marginal for PricePerCoverage, scaled price alone for
// LowestPrice. All paths must compute scores through this one function so
// the float64 operation sequence stays bit-identical.
func (kn *kernel) scoreOf(b int32, m int) float64 {
	if kn.metric == LowestPrice {
		return kn.scaled[b]
	}
	return kn.scaled[b] / float64(m)
}

// popBest surfaces the main run's true greedy arg-min (see
// lazyHeap.popBest for the mechanics and exactness argument).
func (kn *kernel) popBest() (best int32, bestScore float64, bestMarginal int) {
	return kn.lh.popBest(kn, kn.theta, &kn.cand)
}

// dirtyCovering bumps — in lh — the coverage epoch of every bid covering
// needy k: the flat SoA batch pass that invalidates cached scores after
// θ[k] moved. Banned and dead bids are bumped too; that is cheaper than
// filtering and harmless (their heap entries are discarded on pop
// regardless).
func (kn *kernel) dirtyCovering(lh *lazyHeap, k int32) {
	for _, b := range kn.incBid[kn.incStart[k]:kn.incStart[k+1]] {
		lh.bidEpoch[b]++
	}
}

// applyDirtyState commits bid b to (theta, deficit) and batch-invalidates —
// in lh — the cached scores of every bid whose marginal the commit may have
// changed (exactly the bids covering a needy whose θ moved). Serves both
// the main run (kn.theta/kn.lh via applyDirty) and the payment replays
// (rs.theta/rs.lh).
func (kn *kernel) applyDirtyState(lh *lazyHeap, theta []int32, deficit *int, b int32) {
	for e := kn.coverStart[b]; e < kn.coverStart[b+1]; e++ {
		k := kn.coverKey[e]
		r := kn.demand[k] - theta[k]
		g := kn.coverCap[e]
		if g > r {
			g = r
		}
		if g > 0 {
			theta[k] += g
			*deficit -= int(g)
			kn.dirtyCovering(lh, k)
		}
	}
}

// applyDirty is applyDirtyState on the main-run state.
func (kn *kernel) applyDirty(b int32) {
	kn.applyDirtyState(&kn.lh, kn.theta, &kn.deficit, b)
}

// release drops the borrowed scaled-price slice and returns the kernel to
// the pool. All payment workers must have been joined by the caller.
func (kn *kernel) release() {
	kn.scaled = nil
	kn.tracer = nil
	kernelPool.Put(kn)
}

// marginalOf returns U_w(E): the marginal coverage of bid b at state theta
// (Eq. 19). theta may be the main-run state, a replay state, or a stored
// checkpoint row. With theta capped at demand, every residual r is ≥ 0 and
// each edge contributes min(coverCap, r) — branch-light by construction.
func (kn *kernel) marginalOf(b int32, theta []int32) int {
	gain := 0
	for e := kn.coverStart[b]; e < kn.coverStart[b+1]; e++ {
		k := kn.coverKey[e]
		r := kn.demand[k] - theta[k]
		g := kn.coverCap[e]
		if g > r {
			g = r
		}
		gain += int(g)
	}
	return gain
}

// applyTo commits bid b to (theta, deficit). theta stays capped at demand,
// so the per-edge gain formula matches marginalOf exactly.
func (kn *kernel) applyTo(theta []int32, deficit *int, b int32) {
	for e := kn.coverStart[b]; e < kn.coverStart[b+1]; e++ {
		k := kn.coverKey[e]
		r := kn.demand[k] - theta[k]
		g := kn.coverCap[e]
		if g > r {
			g = r
		}
		theta[k] += g
		*deficit -= int(g)
	}
}

// applyGains is applyTo on the main-run state, additionally materializing
// the per-cover gains (aligned with Bid.Covers) into the pooled kn.gains
// scratch for the certificate builder — the only consumer. SkipCertificate
// runs never call it and allocate nothing per iteration.
func (kn *kernel) applyGains(b int32) []int {
	n := int(kn.coverStart[b+1] - kn.coverStart[b])
	if cap(kn.gains) < n {
		kn.gains = make([]int, n)
	}
	kn.gains = kn.gains[:n]
	for i, e := 0, kn.coverStart[b]; e < kn.coverStart[b+1]; i, e = i+1, e+1 {
		k := kn.coverKey[e]
		r := kn.demand[k] - kn.theta[k]
		g := kn.coverCap[e]
		if g > r {
			g = r
		}
		kn.theta[k] += g
		kn.deficit -= int(g)
		kn.gains[i] = int(g)
	}
	return kn.gains
}

// selectBestIn returns the candidate bid minimizing the greedy metric at
// theta via a full O(candidates) scan, removing dead candidates (marginal
// 0 — permanent, since θ only grows) from cs as it scans. It returns
// best = -1 when no live candidate remains. The swap-delete list is
// scanned in permuted order, so the lowest-bid-index tie-break is applied
// explicitly; this reproduces the reference's ascending-scan tie-break
// exactly. No production path uses it anymore — every selection loop runs
// on the lazy-rescore heap — but it stays as the scan baseline that
// BenchmarkPriorityStructures (lazyheap_test.go) and the structure-choice
// writeup in DESIGN.md §11 measure the heap against.
func (kn *kernel) selectBestIn(cs *candSet, theta []int32) (best int32, bestScore float64, bestMarginal int) {
	best, bestScore = -1, math.Inf(1)
	for i := 0; i < len(cs.list); {
		b := cs.list[i]
		m := kn.marginalOf(b, theta)
		if m <= 0 {
			cs.removeAt(i)
			continue
		}
		score := kn.scoreOf(b, m)
		if betterScore(score, b, bestScore, best) {
			best, bestScore, bestMarginal = b, score, m
		}
		i++
	}
	return best, bestScore, bestMarginal
}

// removeGroupIn removes every bid of bidder group g from cs.
func (kn *kernel) removeGroupIn(cs *candSet, g int32) {
	for _, b := range kn.groupBids[kn.groupStart[g]:kn.groupStart[g+1]] {
		cs.remove(b)
	}
}

// checkpoint snapshots the pre-apply state of the current winning
// iteration: θ, deficit, the compact candidate list (post dead-bid
// removal, pre winner-group removal — dead bids are dead in every
// counterfactual too, and the replay filters the excluded bidder itself),
// and the iteration's selected score for the prefix max.
func (kn *kernel) checkpoint(score float64) {
	kn.ckTheta = append(kn.ckTheta, kn.theta...)
	kn.ckDeficit = append(kn.ckDeficit, kn.deficit)
	kn.ckScore = append(kn.ckScore, score)
	kn.ckCand = append(kn.ckCand, kn.cand.list...)
	kn.ckCandStart = append(kn.ckCandStart, len(kn.ckCand))
}

// dirtyGains is the batch epoch pass for the certificate path (main run
// only): applyGains has already committed bid b, so the per-cover gains
// tell exactly which needy services' θ moved.
func (kn *kernel) dirtyGains(b int32, gains []int) {
	for i, e := 0, kn.coverStart[b]; e < kn.coverStart[b+1]; i, e = i+1, e+1 {
		if gains[i] > 0 {
			kn.dirtyCovering(&kn.lh, kn.coverKey[e])
		}
	}
}

// selectWinners runs the greedy selection loop (Algorithm 1, lines 3-12)
// on the built kernel, filling out's winner list and cost accounting and
// feeding the certificate builder when present. The per-iteration arg-min
// comes from the lazy-rescore heap (popBest) instead of a full candidate
// scan, and each committed winner batch-invalidates only the bids whose
// marginals it touched. Checkpoints are recorded only when the payment
// phase will consume them; with lazy dead-bid discovery the checkpointed
// candidate lists may retain bids whose marginal already hit 0 — harmless,
// because deadness depends only on θ and the replay scans prune them before
// any score is computed (DESIGN.md §11).
func (kn *kernel) selectWinners(ins *Instance, opts Options, out *Outcome, cert *certBuilder) error {
	checkpoints := opts.payment() == CriticalValue
	for kn.deficit > 0 {
		best, score, marginal := kn.popBest()
		if best < 0 {
			return fmt.Errorf("%w: uncovered demand %d remains", ErrInfeasible, kn.deficit)
		}
		if checkpoints {
			kn.checkpoint(score)
		}
		if kn.tracer != nil {
			kn.tracer.Emit(obs.GreedyPick{
				Iteration: len(kn.winners), Bid: int(best),
				Bidder: ins.Bids[best].Bidder, Alt: ins.Bids[best].Alt,
				Score: score, Marginal: marginal, ScaledPrice: kn.scaled[best],
			})
		}
		kn.removeGroupIn(&kn.cand, kn.groupOf[best])
		if cert != nil {
			gains := kn.applyGains(best)
			kn.dirtyGains(best, gains)
			cert.record(int(best), &ins.Bids[best], gains, kn.scaled[best], marginal)
		} else {
			kn.applyDirty(best)
		}
		kn.winners = append(kn.winners, int(best))
		out.SocialCost += ins.Bids[best].Price
		out.ScaledCost += kn.scaled[best]
	}
	out.Winners = append([]int(nil), kn.winners...)
	return nil
}

// replayScratch is the reusable per-replay mutable state of one
// counterfactual payment run: θ/deficit/candidate set plus the replay's own
// lazy-rescore heap, seeded from the loaded checkpoint — a counterfactual
// replay is just another greedy run whose θ only grows, so the same
// lazy-greedy exactness argument applies from its starting state. Pooled so
// neither the serial nor the parallel payment path allocates per winner.
type replayScratch struct {
	theta   []int32
	deficit int
	cand    candSet
	lh      lazyHeap
}

var replayScratchPool = sync.Pool{New: func() any { return new(replayScratch) }}

// loadCheckpoint initializes rs from main-run checkpoint s with bidder
// group ban excluded from the candidate set, then seeds the replay's heap
// with exact scores at the checkpoint θ. The checkpointed list may retain
// bids that went dead before s but were never surfaced by the main run's
// lazy discovery; the seed pass prunes them here, exactly where the old
// full-scan replay pruned them on its first iteration (DESIGN.md §11).
func (rs *replayScratch) loadCheckpoint(kn *kernel, s int, ban int32) {
	rs.theta = append(rs.theta[:0], kn.ckTheta[s*kn.nk:(s+1)*kn.nk]...)
	rs.deficit = kn.ckDeficit[s]
	rs.loadCands(kn, kn.ckCand[kn.ckCandStart[s]:kn.ckCandStart[s+1]], ban)
	rs.lh.seed(kn, rs.theta, &rs.cand)
}

// loadInitial initializes rs to the blank pre-auction state (θ ≡ 0, all
// bids live) with bidder group ban excluded — the from-scratch replay used
// by BudgetedSSAM, whose selection path diverges from plain SSAM once the
// budget binds and therefore cannot reuse the truthful run's checkpoints.
func (rs *replayScratch) loadInitial(kn *kernel, ban int32) {
	rs.theta = resizeInt32(rs.theta, kn.nk)
	for k := range rs.theta {
		rs.theta[k] = 0
	}
	rs.deficit = kn.totalDemand
	if cap(rs.cand.list) < kn.nb {
		rs.cand.list = make([]int32, 0, kn.nb)
	}
	rs.cand.list = rs.cand.list[:0]
	rs.cand.pos = resizeInt32(rs.cand.pos, kn.nb)
	for b := int32(0); b < int32(kn.nb); b++ {
		if kn.groupOf[b] == ban {
			rs.cand.pos[b] = -1
			continue
		}
		rs.cand.pos[b] = int32(len(rs.cand.list))
		rs.cand.list = append(rs.cand.list, b)
	}
	rs.lh.seed(kn, rs.theta, &rs.cand)
}

func (rs *replayScratch) loadCands(kn *kernel, cands []int32, ban int32) {
	rs.cand.pos = resizeInt32(rs.cand.pos, kn.nb)
	for b := range rs.cand.pos {
		rs.cand.pos[b] = -1
	}
	if cap(rs.cand.list) < len(cands) {
		rs.cand.list = make([]int32, 0, len(cands))
	}
	rs.cand.list = rs.cand.list[:0]
	for _, b := range cands {
		if kn.groupOf[b] == ban {
			continue
		}
		rs.cand.pos[b] = int32(len(rs.cand.list))
		rs.cand.list = append(rs.cand.list, b)
	}
}

// replayFrom runs the counterfactual greedy from rs's loaded state,
// accumulating max over iterations of U_w(E_s)·θ_s — what bid w's report
// could be while still preempting the iteration — until w can no longer
// contribute or the demand is covered. The per-iteration arg-min comes
// from the replay's own lazy-rescore heap (seeded by loadCheckpoint /
// loadInitial), so a replay of a long suffix costs heap pops plus batch
// dirtying instead of one full candidate scan per iteration. pivotal
// reports that the remaining demand was uncoverable while w still had
// positive marginal (the reserve applies; any accumulated value is
// discarded, as in the reference).
func (kn *kernel) replayFrom(rs *replayScratch, w int32, prior float64) (best float64, pivotal bool) {
	best = prior
	for rs.deficit > 0 {
		m := kn.marginalOf(w, rs.theta)
		if m <= 0 {
			break
		}
		idx, score, _ := rs.lh.popBest(kn, rs.theta, &rs.cand)
		if idx < 0 {
			return 0, true
		}
		if v := float64(m) * score; v > best {
			best = v
		}
		kn.removeGroupIn(&rs.cand, kn.groupOf[idx])
		kn.applyDirtyState(&rs.lh, rs.theta, &rs.deficit, idx)
	}
	return best, false
}

// criticalValue computes winner w's Myerson threshold (Lemma 3's
// counterfactual without w's bidder, see paymentFor in reference_test.go
// for the from-scratch formulation). s is w's position in the winner
// sequence. The prefix t < s replays nothing: the counterfactual coincides
// with the truthful run there, so the iteration values are
// marginalOf(w, checkpoint-θ_t) · stored score_t. The suffix runs live
// from checkpoint s. Pivotality cannot occur in the prefix (those
// iterations selected real bids), and w's marginal is strictly positive
// throughout it (marginals are non-increasing and w's was still positive
// at s), so no prefix iteration can break out early either.
func (kn *kernel) criticalValue(ins *Instance, w int32, s int, opts Options, rs *replayScratch) float64 {
	best := 0.0
	for t := 0; t < s; t++ {
		m := kn.marginalOf(w, kn.ckTheta[t*kn.nk:(t+1)*kn.nk])
		if v := float64(m) * kn.ckScore[t]; v > best {
			best = v
		}
	}
	rs.loadCheckpoint(kn, s, kn.groupOf[w])
	best, pivotal := kn.replayFrom(rs, w, best)
	switch {
	case pivotal:
		best = reservePayment(ins, kn.scaled, int(w), opts)
	case best < kn.scaled[w]:
		// Numeric guard: the winner beat the truthful-run competition, so
		// its critical value is at least its own report.
		best = kn.scaled[w]
	}
	if kn.tracer != nil {
		kn.tracer.Emit(obs.PaymentReplay{
			Winner: int(w), Bidder: ins.Bids[w].Bidder, Payment: best,
			Checkpoint: s, CheckpointHit: true, Pivotal: pivotal,
		})
	}
	return best
}

// fullCounterfactual computes the critical value of bid w via a
// from-scratch replay against the full candidate set. BudgetedSSAM uses it
// because its budget-filtered selection state must not leak into the
// threshold (report-independence).
func (kn *kernel) fullCounterfactual(ins *Instance, w int32, opts Options, rs *replayScratch) float64 {
	if opts.payment() == FirstPrice {
		return kn.scaled[w]
	}
	rs.loadInitial(kn, kn.groupOf[w])
	best, pivotal := kn.replayFrom(rs, w, 0)
	switch {
	case pivotal:
		best = reservePayment(ins, kn.scaled, int(w), opts)
	case best < kn.scaled[w]:
		best = kn.scaled[w]
	}
	if kn.tracer != nil {
		// Checkpoint miss by design: the budgeted selection path diverges
		// from the truthful run, so this replay started from scratch.
		kn.tracer.Emit(obs.PaymentReplay{
			Winner: int(w), Bidder: ins.Bids[w].Bidder, Payment: best,
			CheckpointHit: false, Pivotal: pivotal,
		})
	}
	return best
}

// computePayments fills payments[w] for every winner of the completed
// selection run. Each winner's replay depends only on the immutable flat
// view, its checkpoint, and its winner position, so replays fan out across
// a bounded worker pool with bit-identical results at every Parallelism
// level (each replay performs the same float64 operation sequence
// regardless of scheduling; results are assembled serially).
func (kn *kernel) computePayments(ins *Instance, opts Options, payments map[int]float64) {
	winners := kn.winners
	if len(winners) == 0 {
		return
	}
	if opts.payment() == FirstPrice {
		for _, w := range winners {
			payments[w] = kn.scaled[w]
		}
		return
	}
	workers := opts.parallelism()
	if workers > len(winners) {
		workers = len(winners)
	}
	if workers <= 1 {
		rs := replayScratchPool.Get().(*replayScratch)
		for s, w := range winners {
			payments[w] = kn.criticalValue(ins, int32(w), s, opts, rs)
		}
		replayScratchPool.Put(rs)
		return
	}
	results := make([]float64, len(winners))
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := replayScratchPool.Get().(*replayScratch)
			defer replayScratchPool.Put(rs)
			for {
				s := int(next.Add(1)) - 1
				if s >= len(winners) {
					return
				}
				results[s] = kn.criticalValue(ins, int32(winners[s]), s, opts, rs)
			}
		}()
	}
	wg.Wait()
	for s, w := range winners {
		payments[w] = results[s]
	}
}
