package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file defines the pluggable Mechanism API: a first-class interface
// for single-stage winner selection, a process-wide registry keyed by
// name, and a serializable MechanismSpec that travels through MSOAConfig,
// platform.ServerConfig and chaos scenarios so every driver selects its
// mechanism the same way. SSAM and BudgetedSSAM are the first
// registrants; postedprice.go and doubleauction.go add the competitors.
//
// Contract (see DESIGN.md §13): Clear must be a deterministic function of
// (mechanism state, instance, options) — no wall clock, no global RNG —
// because the WAL replayer and the chaos shadow auditor re-execute rounds
// and compare outcomes bit-for-bit. Stateful mechanisms additionally
// promise that replaying the same round sequence from Reset reproduces
// the same state trajectory.

// Mechanism is a single-stage winner-selection mechanism over the
// kernel's instance types. Implementations must be deterministic: the
// same instance and options (and, for Stateful mechanisms, the same
// prior round sequence) must produce bit-identical outcomes.
type Mechanism interface {
	// Name returns the registry name of the mechanism.
	Name() string
	// Clear selects winners and payments for one instance. Prices are
	// taken raw from the bids. A mechanism that cannot cover the demand
	// returns ErrInfeasible (possibly wrapped).
	Clear(ins *Instance, opts Options) (*Outcome, error)
}

// ScaledMechanism is implemented by mechanisms of the SSAM family that
// understand MSOA's scaled prices ∇_ij. MSOA calls ClearScaled with the
// ψ-augmented prices and applies the Lemma-4 ψ update to winners; for
// plain Mechanisms it calls Clear with raw prices and leaves ψ untouched.
type ScaledMechanism interface {
	Mechanism
	// ClearScaled runs the mechanism on scaled prices aligned with
	// ins.Bids. SocialCost is still accounted with raw prices.
	ClearScaled(ins *Instance, scaled []float64, opts Options) (*Outcome, error)
}

// Stateful is implemented by mechanisms that carry state across rounds
// (e.g. the double auction's futures book). Reset returns the mechanism
// to its initial state; MSOA-owned mechanisms are reset only by
// constructing a fresh MSOA, so WAL replay from the start of the log
// reproduces the book (snapshot+suffix recovery remains SSAM-only — see
// DESIGN.md §13).
type Stateful interface {
	Mechanism
	// Reset discards all cross-round state.
	Reset()
}

// SettlementReporter is implemented by mechanisms that settle futures
// reservations (the double auction). The chaos auditor uses it to check
// the per-round penalty-bound invariant.
type SettlementReporter interface {
	Mechanism
	// LastSettlement returns the settlement report of the most recent
	// Clear call, or nil before the first round.
	LastSettlement() *Settlement
	// SettlementConfig returns the configuration the penalty bound is
	// checked against.
	SettlementConfig() DoubleAuctionConfig
}

// Mechanism registry names. The empty spec resolves to NameSSAM.
const (
	NameSSAM          = "ssam"
	NameBudgetedSSAM  = "budgeted-ssam"
	NamePostedPrice   = "posted-price"
	NameDoubleAuction = "double-auction"
)

// MechanismSpec selects a mechanism by name plus its parameters. The
// zero value means SSAM; MSOA treats it as "no dispatch" and runs the
// historical ssamScaled path byte-for-byte. The struct is JSON-friendly
// so it can ride in chaos scenarios and server configs.
type MechanismSpec struct {
	// Name is the registry name; empty selects SSAM.
	Name string `json:"name,omitempty"`
	// Budget parameterizes NameBudgetedSSAM (the per-round payment
	// budget W).
	Budget float64 `json:"budget,omitempty"`
	// PostedPrice parameterizes NamePostedPrice; nil uses defaults.
	PostedPrice *PostedPriceConfig `json:"posted_price,omitempty"`
	// DoubleAuction parameterizes NameDoubleAuction; nil uses defaults.
	DoubleAuction *DoubleAuctionConfig `json:"double_auction,omitempty"`
}

// IsSSAM reports whether the spec resolves to the paper's SSAM (the
// default mechanism). SSAM-only auditor invariants (critical-value spot
// checks, certificates, ψ trajectories) are gated on this.
func (s MechanismSpec) IsSSAM() bool { return s.Name == "" || s.Name == NameSSAM }

// IsZero reports whether the spec is the zero value.
func (s MechanismSpec) IsZero() bool {
	return s.Name == "" && s.Budget == 0 && s.PostedPrice == nil && s.DoubleAuction == nil
}

// String renders the spec in the "name:key=val,key=val" form accepted by
// ParseMechanismSpec.
func (s MechanismSpec) String() string {
	name := s.Name
	if name == "" {
		name = NameSSAM
	}
	var params []string
	if s.Budget != 0 {
		params = append(params, "budget="+strconv.FormatFloat(s.Budget, 'g', -1, 64))
	}
	if p := s.PostedPrice; p != nil {
		for _, kv := range []struct {
			k string
			v float64
		}{{"epsilon", p.Epsilon}, {"lo", p.PriceLo}, {"hi", p.PriceHi}, {"safety", p.Safety}} {
			if kv.v != 0 {
				params = append(params, kv.k+"="+strconv.FormatFloat(kv.v, 'g', -1, 64))
			}
		}
	}
	if d := s.DoubleAuction; d != nil {
		for _, kv := range []struct {
			k string
			v float64
		}{{"discount", d.Discount}, {"overbook", d.Overbook}, {"penalty", d.PenaltyRate}} {
			if kv.v != 0 {
				params = append(params, kv.k+"="+strconv.FormatFloat(kv.v, 'g', -1, 64))
			}
		}
	}
	if len(params) == 0 {
		return name
	}
	return name + ":" + strings.Join(params, ",")
}

// ParseMechanismSpec parses the "-mechanism" flag syntax shared by
// platformd, edgesim, repro and chaos: a registry name optionally
// followed by ":key=val,key=val" parameters. The empty string yields the
// zero spec (SSAM). Examples:
//
//	ssam
//	budgeted-ssam:budget=500
//	posted-price:epsilon=0.05,lo=10,hi=35
//	double-auction:discount=0.9,overbook=1.25,penalty=0.5
func ParseMechanismSpec(s string) (MechanismSpec, error) {
	var spec MechanismSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	name, rest, hasParams := strings.Cut(s, ":")
	spec.Name = strings.TrimSpace(name)
	if !hasParams {
		return spec, spec.validateName()
	}
	params := make(map[string]float64)
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("core: mechanism spec %q: parameter %q is not key=val", s, kv)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return spec, fmt.Errorf("core: mechanism spec %q: parameter %q: %v", s, kv, err)
		}
		params[strings.TrimSpace(k)] = f
	}
	take := func(keys ...string) (float64, bool) {
		for _, k := range keys {
			if v, ok := params[k]; ok {
				delete(params, k)
				return v, true
			}
		}
		return 0, false
	}
	switch spec.Name {
	case NameSSAM, "":
	case NameBudgetedSSAM:
		if v, ok := take("budget"); ok {
			spec.Budget = v
		}
	case NamePostedPrice:
		cfg := &PostedPriceConfig{}
		if v, ok := take("epsilon", "eps"); ok {
			cfg.Epsilon = v
		}
		if v, ok := take("lo", "price_lo"); ok {
			cfg.PriceLo = v
		}
		if v, ok := take("hi", "price_hi"); ok {
			cfg.PriceHi = v
		}
		if v, ok := take("safety"); ok {
			cfg.Safety = v
		}
		spec.PostedPrice = cfg
	case NameDoubleAuction:
		cfg := &DoubleAuctionConfig{}
		if v, ok := take("discount"); ok {
			cfg.Discount = v
		}
		if v, ok := take("overbook"); ok {
			cfg.Overbook = v
		}
		if v, ok := take("penalty", "penalty_rate"); ok {
			cfg.PenaltyRate = v
		}
		spec.DoubleAuction = cfg
	default:
		// Unknown names may still be registered (e.g. test mechanisms);
		// leave their parameters unparsed but reject them so typos fail
		// loudly at the flag instead of at round time.
		if len(params) > 0 {
			return spec, fmt.Errorf("core: mechanism spec %q: unknown mechanism takes no parameters", s)
		}
	}
	if len(params) > 0 {
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return spec, fmt.Errorf("core: mechanism spec %q: unknown parameter(s) %s", s, strings.Join(keys, ", "))
	}
	return spec, spec.validateName()
}

// validateName rejects spec names that are neither built-in nor
// registered at parse time.
func (s MechanismSpec) validateName() error {
	if s.Name == "" {
		return nil
	}
	if _, ok := lookupFactory(s.Name); !ok {
		return fmt.Errorf("core: unknown mechanism %q (have %s)", s.Name, strings.Join(MechanismNames(), ", "))
	}
	return nil
}

// MechanismFactory builds a mechanism from a spec. Factories must return
// a fresh instance on every call: Stateful mechanisms hold per-run books.
type MechanismFactory func(spec MechanismSpec) (Mechanism, error)

var mechanisms = struct {
	sync.RWMutex
	byName map[string]MechanismFactory
}{byName: make(map[string]MechanismFactory)}

// RegisterMechanism adds a factory under name. Registering a duplicate
// name panics: the registry is process-global and silent replacement
// would make mechanism selection order-dependent.
func RegisterMechanism(name string, f MechanismFactory) {
	if name == "" || f == nil {
		panic("core: RegisterMechanism requires a name and a factory")
	}
	mechanisms.Lock()
	defer mechanisms.Unlock()
	if _, dup := mechanisms.byName[name]; dup {
		panic(fmt.Sprintf("core: mechanism %q registered twice", name))
	}
	mechanisms.byName[name] = f
}

func lookupFactory(name string) (MechanismFactory, bool) {
	mechanisms.RLock()
	defer mechanisms.RUnlock()
	f, ok := mechanisms.byName[name]
	return f, ok
}

// MechanismNames returns the registered names in sorted order.
func MechanismNames() []string {
	mechanisms.RLock()
	defer mechanisms.RUnlock()
	names := make([]string, 0, len(mechanisms.byName))
	for n := range mechanisms.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewMechanism resolves a spec to a fresh mechanism instance. The zero
// spec yields SSAM.
func NewMechanism(spec MechanismSpec) (Mechanism, error) {
	name := spec.Name
	if name == "" {
		name = NameSSAM
	}
	f, ok := lookupFactory(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown mechanism %q (have %s)", name, strings.Join(MechanismNames(), ", "))
	}
	return f(spec)
}

// RunMechanism is the one-shot entry point: resolve the spec, clear the
// instance, discard the mechanism. For the zero spec this is exactly
// SSAM. Stateful mechanisms start from a fresh book every call; use
// NewMechanism (or MSOA with MSOAConfig.Mechanism) to carry state across
// rounds.
func RunMechanism(spec MechanismSpec, ins *Instance, opts Options) (*Outcome, error) {
	mech, err := NewMechanism(spec)
	if err != nil {
		return nil, err
	}
	return mech.Clear(ins, opts)
}

// ssamMechanism adapts SSAM (Algorithm 1) to the Mechanism API.
type ssamMechanism struct{}

func (ssamMechanism) Name() string { return NameSSAM }

func (ssamMechanism) Clear(ins *Instance, opts Options) (*Outcome, error) {
	return SSAM(ins, opts)
}

func (ssamMechanism) ClearScaled(ins *Instance, scaled []float64, opts Options) (*Outcome, error) {
	return ssamScaled(ins, scaled, opts)
}

// budgetedSSAMMechanism adapts BudgetedSSAM. It is not a
// ScaledMechanism: the budget semantics are defined over raw payments.
type budgetedSSAMMechanism struct{ budget float64 }

func (budgetedSSAMMechanism) Name() string { return NameBudgetedSSAM }

func (m budgetedSSAMMechanism) Clear(ins *Instance, opts Options) (*Outcome, error) {
	bo, err := BudgetedSSAM(ins, m.budget, opts)
	if err != nil {
		return nil, err
	}
	return &bo.Outcome, nil
}

func init() {
	RegisterMechanism(NameSSAM, func(MechanismSpec) (Mechanism, error) {
		return ssamMechanism{}, nil
	})
	RegisterMechanism(NameBudgetedSSAM, func(spec MechanismSpec) (Mechanism, error) {
		if spec.Budget <= 0 {
			return nil, fmt.Errorf("core: %s requires a positive budget (got %v)", NameBudgetedSSAM, spec.Budget)
		}
		return budgetedSSAMMechanism{budget: spec.Budget}, nil
	})
	RegisterMechanism(NamePostedPrice, func(spec MechanismSpec) (Mechanism, error) {
		var cfg PostedPriceConfig
		if spec.PostedPrice != nil {
			cfg = *spec.PostedPrice
		}
		return NewPostedPrice(cfg), nil
	})
	RegisterMechanism(NameDoubleAuction, func(spec MechanismSpec) (Mechanism, error) {
		var cfg DoubleAuctionConfig
		if spec.DoubleAuction != nil {
			cfg = *spec.DoubleAuction
		}
		return NewDoubleAuction(cfg), nil
	})
}
