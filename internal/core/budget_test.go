package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestBudgetedSSAMUnlimitedBudgetMatchesSSAM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		ins := randomInstance(rng, 3+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2))
		plain, err := SSAM(ins, Options{SkipCertificate: true})
		if err != nil {
			t.Fatal(err)
		}
		budgeted, err := BudgetedSSAM(ins, math.MaxFloat64/2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if budgeted.UncoveredDemand != 0 {
			t.Fatalf("trial %d: unlimited budget left %d uncovered", trial, budgeted.UncoveredDemand)
		}
		if math.Abs(budgeted.SocialCost-plain.SocialCost) > 1e-9 {
			t.Fatalf("trial %d: budgeted cost %v != plain %v", trial, budgeted.SocialCost, plain.SocialCost)
		}
		if len(budgeted.Winners) != len(plain.Winners) {
			t.Fatalf("trial %d: winner sets differ", trial)
		}
	}
}

func TestBudgetedSSAMNeverOverspends(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		ins := randomInstance(rng, 4+rng.Intn(8), 1+rng.Intn(3), 1)
		budget := 20 + 200*rng.Float64()
		out, err := BudgetedSSAM(ins, budget, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out.BudgetSpent > budget+1e-9 {
			t.Fatalf("trial %d: spent %v over budget %v", trial, out.BudgetSpent, budget)
		}
		var sum float64
		for _, p := range out.Payments {
			sum += p
		}
		if math.Abs(sum-out.BudgetSpent) > 1e-9 {
			t.Fatalf("trial %d: payment accounting off: %v vs %v", trial, sum, out.BudgetSpent)
		}
		if err := VerifyIndividualRationality(ins, &out.Outcome, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Partial coverage is allowed, but accounting must be consistent.
		if frac := out.CoverageFraction(ins); frac < 0 || frac > 1 {
			t.Fatalf("trial %d: coverage fraction %v", trial, frac)
		}
	}
}

func TestBudgetedSSAMZeroBudgetBuysNothing(t *testing.T) {
	ins := twoBidderInstance()
	out, err := BudgetedSSAM(ins, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 0 || out.BudgetSpent != 0 {
		t.Fatalf("zero budget bought %d winners", len(out.Winners))
	}
	if out.UncoveredDemand != ins.TotalDemand() {
		t.Fatalf("uncovered = %d, want all %d", out.UncoveredDemand, ins.TotalDemand())
	}
	if out.CoverageFraction(ins) != 0 {
		t.Fatalf("coverage = %v, want 0", out.CoverageFraction(ins))
	}
}

func TestBudgetedSSAMInvalidBudget(t *testing.T) {
	ins := twoBidderInstance()
	if _, err := BudgetedSSAM(ins, math.NaN(), Options{}); err == nil {
		t.Fatal("NaN budget must be rejected")
	}
	if _, err := BudgetedSSAM(ins, math.Inf(1), Options{}); err == nil {
		t.Fatal("infinite budget must be rejected")
	}
}

func TestBudgetedSSAMCoverageMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		ins := randomInstance(rng, 6, 2, 1)
		prev := -1.0
		for _, budget := range []float64{0, 50, 150, 400, 2000, 1e7} {
			out, err := BudgetedSSAM(ins, budget, Options{})
			if err != nil {
				t.Fatal(err)
			}
			frac := out.CoverageFraction(ins)
			if frac < prev-1e-9 {
				t.Fatalf("trial %d: coverage dropped from %v to %v as budget rose to %v",
					trial, prev, frac, budget)
			}
			prev = frac
		}
		if prev < 1 {
			t.Fatalf("trial %d: huge budget still left demand uncovered", trial)
		}
	}
}

func TestBudgetedSSAMTruthfulWhenBudgetSlack(t *testing.T) {
	// When the budget never binds the mechanism coincides with SSAM and
	// inherits its truthfulness: no deviation profits. (When the budget
	// binds, truthfulness can fail — see the documented limitation in
	// budget.go; that regime is quantified, not asserted.)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		ins := randomInstance(rng, 4+rng.Intn(6), 1+rng.Intn(2), 1)
		const budget = 1e9 // slack for every deviation scenario
		truthful, err := BudgetedSSAM(ins, budget, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(truthful.RejectedByBudget) != 0 {
			t.Fatalf("trial %d: slack budget still rejected bids", trial)
		}
		for target := 0; target < len(ins.Bids)-1; target++ { // skip reserve
			base := 0.0
			if truthful.Won(target) {
				base = truthful.Payments[target] - ins.Bids[target].TrueCost
			}
			for _, f := range []float64{0.5, 0.9, 1.3, 2} {
				dev := ins.Clone()
				dev.Bids[target].Price = ins.Bids[target].TrueCost * f
				out, err := BudgetedSSAM(dev, budget, Options{})
				if err != nil {
					t.Fatal(err)
				}
				utility := 0.0
				if out.Won(target) {
					utility = out.Payments[target] - ins.Bids[target].TrueCost
				}
				if utility > base+1e-6 {
					t.Fatalf("trial %d: budgeted deviation x%v profits: %v > %v",
						trial, f, utility, base)
				}
			}
		}
	}
}

func TestBudgetedSSAMRejectionRecorded(t *testing.T) {
	// Budget fits the cheap bidder's payment but not the expensive one's.
	ins := &Instance{
		Demand: []int{2},
		Bids: []Bid{
			{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
			{Bidder: 2, Price: 12, TrueCost: 12, Covers: []int{0}, Units: 1},
			{Bidder: 3, Price: 100, TrueCost: 100, Covers: []int{0}, Units: 1},
		},
	}
	// This is a 2-of-3 reverse auction: each winner's Myerson threshold is
	// the third (losing) bid's price, so both winners are paid 100.
	out, err := BudgetedSSAM(ins, 250, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.UncoveredDemand != 0 {
		t.Fatalf("uncovered %d, want 0", out.UncoveredDemand)
	}
	if math.Abs(out.BudgetSpent-200) > 1e-9 {
		t.Fatalf("spent %v, want 200 (two winners at the 3rd price)", out.BudgetSpent)
	}
	// Budget fits one threshold payment but not two.
	out, err = BudgetedSSAM(ins, 150, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.UncoveredDemand != 1 {
		t.Fatalf("uncovered %d, want 1", out.UncoveredDemand)
	}
	if len(out.RejectedByBudget) == 0 {
		t.Fatal("rejections must be recorded")
	}
	// Budget below any threshold buys nothing.
	out, err = BudgetedSSAM(ins, 30, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 0 || out.UncoveredDemand != 2 {
		t.Fatalf("budget 30 should buy nothing: %+v", out)
	}
}
