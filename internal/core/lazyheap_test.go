package core

import (
	"math/rand"
	"testing"
)

// This file settles the "pick the priority structure by benchmark" question
// behind lazyheap.go. A test-only pairing heap implements the identical
// lazy-rescore contract (stale roots rescored and reinserted, banned and
// dead bids discarded lazily, betterScore ordering), and
// BenchmarkPriorityStructures races it against the production binary heap
// and the retained full-scan baseline (selectBestIn) on the selection
// loop. TestPriorityStructuresAgree holds all three to the same winner
// sequence first, so the benchmark compares equivalent implementations. A
// monotone bucket queue was ruled out analytically instead: bucketing
// float64 scores requires quantization, which cannot preserve the exact
// score ties the lowest-index tie-break is defined over.

// pairingHeap is a min pairing heap over bid indices keyed by cached
// (score, bid index), with the same lazy rescoring protocol as lazyHeap.
// It reads coverage epochs from the kernel's main-run heap (kn.lh), which
// kn.applyDirty keeps current.
type pairingHeap struct {
	root       int32
	child      []int32
	sibling    []int32
	key        []float64
	marg       []int32
	scoreEpoch []int32
}

func (ph *pairingHeap) meld(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if betterScore(ph.key[b], b, ph.key[a], a) {
		a, b = b, a
	}
	ph.sibling[b] = ph.child[a]
	ph.child[a] = b
	return a
}

func (ph *pairingHeap) mergePairs(c int32) int32 {
	if c < 0 {
		return -1
	}
	b := ph.sibling[c]
	if b < 0 {
		return c
	}
	rest := ph.sibling[b]
	ph.sibling[c], ph.sibling[b] = -1, -1
	return ph.meld(ph.meld(c, b), ph.mergePairs(rest))
}

func (ph *pairingHeap) deleteMin() {
	ph.root = ph.mergePairs(ph.child[ph.root])
}

// seed mirrors lazyHeap.seed on an already-built kernel: exact initial
// keys for every live candidate (build's lh.seed has pruned dead bids).
func (ph *pairingHeap) seed(kn *kernel) {
	nb := kn.nb
	ph.child = resizeInt32(ph.child, nb)
	ph.sibling = resizeInt32(ph.sibling, nb)
	ph.key = resizeFloat64(ph.key, nb)
	ph.marg = resizeInt32(ph.marg, nb)
	ph.scoreEpoch = resizeInt32(ph.scoreEpoch, nb)
	ph.root = -1
	for _, b := range kn.cand.list {
		m := kn.marginalOf(b, kn.theta)
		ph.key[b] = kn.scoreOf(b, m)
		ph.marg[b] = int32(m)
		ph.scoreEpoch[b] = kn.lh.bidEpoch[b]
		ph.child[b], ph.sibling[b] = -1, -1
		ph.root = ph.meld(ph.root, b)
	}
}

func (ph *pairingHeap) popBest(kn *kernel) (best int32, bestScore float64, bestMarginal int) {
	for ph.root >= 0 {
		b := ph.root
		if kn.cand.pos[b] < 0 { // banned bidder group: lazy delete
			ph.deleteMin()
			continue
		}
		if ph.scoreEpoch[b] != kn.lh.bidEpoch[b] { // stale: rescore + reinsert
			ph.scoreEpoch[b] = kn.lh.bidEpoch[b]
			m := kn.marginalOf(b, kn.theta)
			if m <= 0 { // dead forever
				kn.cand.remove(b)
				ph.deleteMin()
				continue
			}
			ph.marg[b] = int32(m)
			ph.key[b] = kn.scoreOf(b, m)
			ph.deleteMin()
			ph.child[b], ph.sibling[b] = -1, -1
			ph.root = ph.meld(ph.root, b)
			continue
		}
		return b, ph.key[b], int(ph.marg[b])
	}
	return -1, 0, 0
}

// runSelectionLoop drives the greedy winner loop on a fresh kernel build
// with the supplied arg-min, returning the winner sequence. pop must
// leave the winner in place (it is removed by the group ban, as in the
// production loop).
func runSelectionLoop(tb testing.TB, ins *Instance, pop func(kn *kernel) (int32, float64, int)) []int {
	tb.Helper()
	scaled := make([]float64, len(ins.Bids))
	for i, b := range ins.Bids {
		scaled[i] = b.Price
	}
	kn := kernelPool.Get().(*kernel)
	defer kn.release()
	if err := kn.build(ins, scaled, Options{SkipCertificate: true, Payment: FirstPrice}); err != nil {
		tb.Fatalf("build: %v", err)
	}
	var winners []int
	for kn.deficit > 0 {
		best, _, _ := pop(kn)
		if best < 0 {
			break
		}
		kn.removeGroupIn(&kn.cand, kn.groupOf[best])
		kn.applyDirty(best)
		winners = append(winners, int(best))
	}
	return winners
}

func popViaScan(kn *kernel) (int32, float64, int)   { return kn.selectBestIn(&kn.cand, kn.theta) }
func popViaBinary(kn *kernel) (int32, float64, int) { return kn.popBest() }

func popViaPairing(ph *pairingHeap) func(kn *kernel) (int32, float64, int) {
	seeded := false
	return func(kn *kernel) (int32, float64, int) {
		if !seeded {
			ph.seed(kn)
			seeded = true
		}
		return ph.popBest(kn)
	}
}

// TestPriorityStructuresAgree holds the scan baseline, the production
// binary heap, and the test-only pairing heap to identical winner
// sequences across all three instance families.
func TestPriorityStructuresAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		var ins *Instance
		switch trial % 3 {
		case 0:
			ins = randomInstance(rng, 4+rng.Intn(20), 2+rng.Intn(6), 1+rng.Intn(3))
		case 1:
			ins = tieProneInstance(rng, 4+rng.Intn(20), 2+rng.Intn(6), 1+rng.Intn(3))
		default:
			ins = saturationHeavyInstance(rng, 4+rng.Intn(20), 2+rng.Intn(6), 1+rng.Intn(3))
		}
		scan := runSelectionLoop(t, ins, popViaScan)
		binary := runSelectionLoop(t, ins, popViaBinary)
		pairing := runSelectionLoop(t, ins, popViaPairing(new(pairingHeap)))
		if len(scan) != len(binary) || len(scan) != len(pairing) {
			t.Fatalf("trial %d: winner count divergence: scan=%v binary=%v pairing=%v", trial, scan, binary, pairing)
		}
		for i := range scan {
			if scan[i] != binary[i] || scan[i] != pairing[i] {
				t.Fatalf("trial %d: winner divergence at %d: scan=%v binary=%v pairing=%v", trial, i, scan, binary, pairing)
			}
		}
	}
}

// BenchmarkPriorityStructures races the three equivalent selection
// arg-mins on a 2000-bid instance. Every variant pays the same build cost
// (which seeds the binary heap); the pairing-heap variant additionally
// seeds its own structure on first pop, mirroring what adopting it would
// cost. Recorded result (1-CPU container, go1.24): the binary heap wins —
// no per-node pointer chasing, cache-contiguous sift-downs — which is why
// lazyheap.go ships the flat binary heap.
func BenchmarkPriorityStructures(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	ins := randomInstance(rng, 500, 50, 4)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSelectionLoop(b, ins, popViaScan)
		}
	})
	b.Run("binary-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runSelectionLoop(b, ins, popViaBinary)
		}
	})
	b.Run("pairing-heap", func(b *testing.B) {
		ph := new(pairingHeap)
		for i := 0; i < b.N; i++ {
			runSelectionLoop(b, ins, popViaPairing(ph))
		}
	})
}
