package core

import (
	"math/rand"
	"testing"
)

// Metamorphic properties of the SSAM mechanism: seeded transformations of
// an instance whose effect on the outcome is known a priori. They
// complement the reference/kernel differential tests — a bug that hits
// both implementations identically slips past a differential but not past
// a metamorphic relation.

// winnerKey identifies a winning bid independent of its index.
type winnerKey struct {
	bidder, alt int
}

func winnerSet(ins *Instance, out *Outcome) map[winnerKey]float64 {
	set := map[winnerKey]float64{}
	for _, w := range out.Winners {
		b := ins.Bids[w]
		set[winnerKey{b.Bidder, b.Alt}] = out.Payments[w]
	}
	return set
}

// TestMetamorphicRaisingLoserNeverWins raises a losing bid's price — a
// strictly worse offer — and requires it to keep losing, with the winner
// set unchanged. This is the bid-monotonicity direction truthfulness
// rests on (Theorem 1's critical-value structure).
func TestMetamorphicRaisingLoserNeverWins(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	opts := Options{SkipCertificate: true}
	trials := 0
	for trials < 40 {
		ins := randomInstance(rng, 4+rng.Intn(8), 2+rng.Intn(3), 1+rng.Intn(3))
		out, err := SSAM(ins, opts)
		if err != nil {
			continue
		}
		loser := -1
		for i := range ins.Bids {
			if !out.Won(i) {
				loser = i
				break
			}
		}
		if loser < 0 {
			continue
		}
		trials++
		raised := ins.Clone()
		factor := 1.1 + rng.Float64()*4
		raised.Bids[loser].Price *= factor
		raised.Bids[loser].TrueCost = raised.Bids[loser].Price
		out2, err := SSAM(raised, opts)
		if err != nil {
			t.Fatalf("trial %d: raising a losing bid broke feasibility: %v", trials, err)
		}
		if out2.Won(loser) {
			t.Fatalf("trial %d: bid %d wins after raising its price ×%.2f", trials, loser, factor)
		}
		before, after := winnerSet(ins, out), winnerSet(raised, out2)
		for k := range before {
			if _, ok := after[k]; !ok {
				t.Fatalf("trial %d: winner %v unseated by a loser raising its price", trials, k)
			}
		}
		if len(after) != len(before) {
			t.Fatalf("trial %d: winner count changed %d -> %d", trials, len(before), len(after))
		}
	}
}

// TestMetamorphicDeletingLoserKeepsWinners removes every bid of a bidder
// that won nothing and requires the winner identities, social cost, and
// scaled cost to be bit-identical. Payments are deliberately NOT required
// to be stable: losing bids define the winners' critical values, so
// deleting a losing bidder can (correctly) raise a payment — e.g. with
// demand [1] and prices {1, 5, 9}, the 5-bid sets the 1-bid's payment,
// and deleting it moves the payment to 9.
func TestMetamorphicDeletingLoserKeepsWinners(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	opts := Options{SkipCertificate: true}
	trials := 0
	for trials < 40 {
		ins := randomInstance(rng, 5+rng.Intn(8), 2+rng.Intn(3), 1+rng.Intn(3))
		out, err := SSAM(ins, opts)
		if err != nil {
			continue
		}
		winners := map[int]bool{}
		for _, w := range out.Winners {
			winners[ins.Bids[w].Bidder] = true
		}
		loserBidder := 0
		for _, b := range ins.Bids {
			if !winners[b.Bidder] {
				loserBidder = b.Bidder
				break
			}
		}
		if loserBidder == 0 {
			continue
		}
		trials++
		sub := &Instance{Demand: ins.Demand}
		for _, b := range ins.Bids {
			if b.Bidder != loserBidder {
				sub.Bids = append(sub.Bids, b)
			}
		}
		out2, err := SSAM(sub, opts)
		if err != nil {
			t.Fatalf("trial %d: deleting losing bidder %d broke feasibility: %v", trials, loserBidder, err)
		}
		before, after := winnerSet(ins, out), winnerSet(sub, out2)
		if len(before) != len(after) {
			t.Fatalf("trial %d: deleting losing bidder %d changed winner count %d -> %d",
				trials, loserBidder, len(before), len(after))
		}
		for k := range before {
			if _, ok := after[k]; !ok {
				t.Fatalf("trial %d: deleting losing bidder %d unseated winner %v", trials, loserBidder, k)
			}
		}
		if out2.SocialCost != out.SocialCost || out2.ScaledCost != out.ScaledCost {
			t.Fatalf("trial %d: deleting losing bidder %d moved costs %v/%v -> %v/%v",
				trials, loserBidder, out.SocialCost, out.ScaledCost, out2.SocialCost, out2.ScaledCost)
		}
	}
}

// TestMetamorphicPermutationInvariance shuffles the bid slice and
// requires the outcome to be identical modulo the index mapping: same
// winner identities, bit-equal per-winner payments, bit-equal costs. The
// mechanism must depend on what was bid, never on arrival order (the
// platform guarantees a canonical (bidder, alt) sort exactly so this
// holds end-to-end). Random instances draw continuous prices, so exact
// metric ties — where selection is legitimately order-dependent — do not
// occur.
func TestMetamorphicPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	opts := Options{SkipCertificate: true}
	for trial := 0; trial < 40; trial++ {
		ins := randomInstance(rng, 4+rng.Intn(8), 2+rng.Intn(3), 1+rng.Intn(3))
		out, err := SSAM(ins, opts)
		if err != nil {
			continue
		}
		perm := rng.Perm(len(ins.Bids))
		shuffled := &Instance{Demand: ins.Demand, Bids: make([]Bid, len(ins.Bids))}
		for i, p := range perm {
			shuffled.Bids[p] = ins.Bids[i]
		}
		out2, err := SSAM(shuffled, opts)
		if err != nil {
			t.Fatalf("trial %d: permuted instance infeasible: %v", trial, err)
		}
		if out2.SocialCost != out.SocialCost || out2.ScaledCost != out.ScaledCost {
			t.Fatalf("trial %d: permutation moved costs %v/%v -> %v/%v",
				trial, out.SocialCost, out.ScaledCost, out2.SocialCost, out2.ScaledCost)
		}
		before, after := winnerSet(ins, out), winnerSet(shuffled, out2)
		if len(before) != len(after) {
			t.Fatalf("trial %d: permutation changed winner count %d -> %d", trial, len(before), len(after))
		}
		for k, pay := range before {
			pay2, ok := after[k]
			if !ok {
				t.Fatalf("trial %d: permutation dropped winner %v", trial, k)
			}
			if pay2 != pay {
				t.Fatalf("trial %d: permutation moved winner %v payment %v -> %v", trial, k, pay, pay2)
			}
		}
	}
}
