package core

// This file preserves the pre-optimization SSAM implementation verbatim as
// the differential oracle: a straightforward []bool candidate mask, per-bid
// Covers slices, and from-scratch counterfactual payment replays. The
// optimized kernel (kernel.go) must produce BIT-IDENTICAL outcomes — winner
// sequence, costs, every payment, the dual certificate — and the property
// and fuzz tests in differential_test.go hold it to that.
//
// Nothing here ships: the file is test-only by suffix, and the production
// entry points (SSAM, ssamScaled, BudgetedSSAM) never call into it.

import (
	"fmt"
	"math"
)

// refCoverageState tracks θ_k, the units of coverage accumulated per needy
// microservice, plus the remaining total deficit.
type refCoverageState struct {
	theta   []int
	demand  []int
	deficit int
}

func newRefCoverageState(demand []int) *refCoverageState {
	cs := &refCoverageState{}
	cs.reset(demand)
	return cs
}

func (cs *refCoverageState) reset(demand []int) {
	if cap(cs.theta) < len(demand) {
		cs.theta = make([]int, len(demand))
	}
	cs.theta = cs.theta[:len(demand)]
	total := 0
	for i, d := range demand {
		cs.theta[i] = 0
		total += d
	}
	cs.demand = demand
	cs.deficit = total
}

// marginal returns U_ij(E): the increase in Σ_k min(θ_k, X_k) from
// selecting bid b at the current state (Eq. 19).
func (cs *refCoverageState) marginal(b *Bid) int {
	gain := 0
	for _, k := range b.Covers {
		before := cs.theta[k]
		if before >= cs.demand[k] {
			continue
		}
		after := before + b.Units
		if after > cs.demand[k] {
			after = cs.demand[k]
		}
		gain += after - before
	}
	return gain
}

// apply commits bid b to the state and returns, per covered needy k, the
// number of new units supplied (aligned with b.Covers).
func (cs *refCoverageState) apply(b *Bid) []int {
	gains := make([]int, len(b.Covers))
	for i, k := range b.Covers {
		before := cs.theta[k]
		after := before + b.Units
		capped := after
		if capped > cs.demand[k] {
			capped = cs.demand[k]
		}
		if capped > before {
			gains[i] = capped - before
			cs.deficit -= gains[i]
		}
		cs.theta[k] = after
	}
	return gains
}

// applyOnly commits bid b to the state without materializing the per-needy
// gains slice.
func (cs *refCoverageState) applyOnly(b *Bid) {
	for _, k := range b.Covers {
		before := cs.theta[k]
		after := before + b.Units
		capped := after
		if capped > cs.demand[k] {
			capped = cs.demand[k]
		}
		if capped > before {
			cs.deficit -= capped - before
		}
		cs.theta[k] = after
	}
}

func (cs *refCoverageState) satisfied() bool { return cs.deficit <= 0 }

// refSelectBest returns the active bid minimizing the greedy metric at the
// current coverage state. The scan visits bids in ascending index order and
// only replaces best on a STRICT improvement, so the ascending scan itself
// IS the lowest-index tie-break: an exact-score tie can never displace an
// earlier winner (i > best whenever best is set), and no separate
// `score == bestScore && i < best` branch is needed — that comparison is
// unsatisfiable here. (The optimized kernel scans a swap-delete permuted
// list and therefore DOES need the explicit tie-break; see selectBestIn.)
// It returns best = -1 when no active bid has positive marginal coverage.
func refSelectBest(ins *Instance, scaled []float64, active []bool, cs *refCoverageState, metric GreedyMetric) (best int, bestScore float64, bestMarginal int) {
	best, bestScore = -1, math.Inf(1)
	for i := range ins.Bids {
		if !active[i] {
			continue
		}
		m := cs.marginal(&ins.Bids[i])
		if m <= 0 {
			continue
		}
		score := scaled[i] / float64(m)
		if metric == LowestPrice {
			score = scaled[i]
		}
		if score < bestScore {
			best, bestScore, bestMarginal = i, score, m
		}
	}
	return best, bestScore, bestMarginal
}

// refPaymentScratch is the per-replay state of one counterfactual payment
// run in the reference implementation.
type refPaymentScratch struct {
	cs     refCoverageState
	active []bool
}

// refComputePayments fills payments[w] for every winning bid index using
// from-scratch counterfactual replays (the seed behavior).
func refComputePayments(ins *Instance, scaled []float64, winners []int, opts Options, payments map[int]float64) {
	if len(winners) == 0 {
		return
	}
	if opts.payment() == FirstPrice {
		for _, w := range winners {
			payments[w] = scaled[w]
		}
		return
	}
	scratch := &refPaymentScratch{}
	for _, w := range winners {
		payments[w] = refPaymentFor(ins, scaled, w, opts, scratch)
	}
}

// refPaymentFor computes the remuneration of winning bid w under the
// configured payment rule: the Myerson threshold via a full counterfactual
// greedy replay WITHOUT any bid from w's bidder, from scratch.
func refPaymentFor(ins *Instance, scaled []float64, w int, opts Options, scratch *refPaymentScratch) float64 {
	if opts.payment() == FirstPrice {
		return scaled[w]
	}
	winner := &ins.Bids[w]
	if cap(scratch.active) < len(ins.Bids) {
		scratch.active = make([]bool, len(ins.Bids))
	}
	active := scratch.active[:len(ins.Bids)]
	for i := range ins.Bids {
		active[i] = ins.Bids[i].Bidder != winner.Bidder
	}
	cs := &scratch.cs
	cs.reset(ins.Demand)
	metric := opts.metric()

	best := 0.0
	for !cs.satisfied() {
		if m := cs.marginal(winner); m > 0 {
			idx, score, _ := refSelectBest(ins, scaled, active, cs, metric)
			if idx < 0 {
				// Pivotal: without this bidder the remaining demand is
				// uncoverable, so any report up to the reserve wins.
				return reservePayment(ins, scaled, w, opts)
			}
			if v := float64(m) * score; v > best {
				best = v
			}
			for i := range ins.Bids {
				if ins.Bids[i].Bidder == ins.Bids[idx].Bidder {
					active[i] = false
				}
			}
			cs.applyOnly(&ins.Bids[idx])
			continue
		}
		break
	}
	if best < scaled[w] {
		best = scaled[w]
	}
	return best
}

// referenceSSAMScaled is the seed ssamScaled: []bool candidate mask, per-bid
// Covers slices, from-scratch payment replays, serial payment phase.
func referenceSSAMScaled(ins *Instance, scaled []float64, opts Options) (*Outcome, error) {
	if len(scaled) != len(ins.Bids) {
		return nil, fmt.Errorf("core: scaled price vector has %d entries for %d bids", len(scaled), len(ins.Bids))
	}
	cs := newRefCoverageState(ins.Demand)
	out := &Outcome{Payments: make(map[int]float64)}
	var cert *certBuilder
	if !opts.SkipCertificate {
		cert = newCertBuilder(ins, scaled)
	}

	active := make([]bool, len(ins.Bids))
	for i := range active {
		active[i] = true
	}
	metric := opts.metric()

	for !cs.satisfied() {
		best, _, bestMarginal := refSelectBest(ins, scaled, active, cs, metric)
		if best < 0 {
			return nil, fmt.Errorf("%w: uncovered demand %d remains", ErrInfeasible, cs.deficit)
		}

		winner := &ins.Bids[best]
		for i := range ins.Bids {
			if ins.Bids[i].Bidder == winner.Bidder {
				active[i] = false
			}
		}

		gains := cs.apply(winner)
		if cert != nil {
			cert.record(best, winner, gains, scaled[best], bestMarginal)
		}

		out.Winners = append(out.Winners, best)
		out.SocialCost += winner.Price
		out.ScaledCost += scaled[best]
	}

	refComputePayments(ins, scaled, out.Winners, opts, out.Payments)

	if cert != nil {
		out.Dual = cert.finish(out)
	}
	return out, nil
}

// referenceSSAM is the seed SSAM entry point over referenceSSAMScaled.
func referenceSSAM(ins *Instance, opts Options) (*Outcome, error) {
	scaled := make([]float64, len(ins.Bids))
	for i, b := range ins.Bids {
		scaled[i] = b.Price
	}
	return referenceSSAMScaled(ins, scaled, opts)
}

// referenceBudgetedSSAM is the seed BudgetedSSAM: greedy selection with
// per-winner from-scratch critical-value replays and a hard budget gate.
func referenceBudgetedSSAM(ins *Instance, budget float64, opts Options) (*BudgetedOutcome, error) {
	if math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("core: invalid budget %v", budget)
	}
	scaled := make([]float64, len(ins.Bids))
	for i, b := range ins.Bids {
		scaled[i] = b.Price
	}

	cs := newRefCoverageState(ins.Demand)
	out := &BudgetedOutcome{
		Outcome: Outcome{Payments: make(map[int]float64)},
		Budget:  budget,
	}
	active := make([]bool, len(ins.Bids))
	for i := range active {
		active[i] = true
	}
	metric := opts.metric()
	scratch := &refPaymentScratch{}

	for !cs.satisfied() {
		best, _, _ := refSelectBest(ins, scaled, active, cs, metric)
		if best < 0 {
			break // market exhausted; remaining demand stays uncovered
		}
		winner := &ins.Bids[best]

		pay := refPaymentFor(ins, scaled, best, opts, scratch)
		if out.BudgetSpent+pay > budget {
			out.RejectedByBudget = append(out.RejectedByBudget, best)
			for i := range ins.Bids {
				if ins.Bids[i].Bidder == winner.Bidder {
					active[i] = false
				}
			}
			continue
		}

		for i := range ins.Bids {
			if ins.Bids[i].Bidder == winner.Bidder {
				active[i] = false
			}
		}
		cs.apply(winner)
		out.Winners = append(out.Winners, best)
		out.Payments[best] = pay
		out.BudgetSpent += pay
		out.SocialCost += winner.Price
		out.ScaledCost += winner.Price
	}

	out.UncoveredDemand = cs.deficit
	return out, nil
}
