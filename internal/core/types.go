// Package core implements the paper's primary contribution: the single-stage
// reverse auction SSAM (Algorithm 1) and the multi-stage online auction MSOA
// (Algorithm 2) for incentivizing microservices to share resources in edge
// clouds, together with critical-value payments, primal–dual approximation
// certificates, and the MSOA variants evaluated in §V (MSOA-DA, MSOA-RC,
// MSOA-OA).
//
// Terminology used throughout the package:
//
//   - A "needy" microservice is one whose fair-share allocation does not
//     cover its residual demand X_k; it must be covered by winning bids.
//   - A "bidder" is a microservice willing to yield resources; it may submit
//     up to F alternative bids per round, each offering to cover a set of
//     needy microservices at a price.
//   - Winner selection is weighted set multicover: every needy microservice
//     k must be covered X_k times, at most one bid per bidder wins per
//     round, and the social cost (sum of winning bid prices) is minimized.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInfeasible reports that the submitted bids cannot cover the residual
// demand, e.g. when too few bidders participate in a round.
var ErrInfeasible = errors.New("core: bids cannot cover residual demand")

// Bid is one alternative bid (Ŝ, J_ij) submitted by a bidder microservice.
type Bid struct {
	// Bidder identifies the microservice submitting the bid (index i).
	Bidder int
	// Alt is the alternative-bid index j within the bidder (0-based,
	// strictly less than the per-round bid limit F).
	Alt int
	// Price is the bidding price J_ij the bidder asks for yielding the
	// resources. Under truthful bidding Price equals TrueCost.
	Price float64
	// TrueCost is the bidder's actual cost G_ij of yielding the resources.
	// The mechanism never reads it; it exists so tests and experiments can
	// quantify truthfulness and utility.
	TrueCost float64
	// Covers lists the needy microservices S_ij this bid contributes
	// coverage to, as indices into Instance.Demand. Entries must be unique.
	Covers []int
	// Units is the amount of coverage a_ij the bid contributes to each
	// needy microservice in Covers when selected. Must be >= 1.
	Units int
}

// CoverSize returns |S_ij|, the number of needy microservices the bid spans.
func (b Bid) CoverSize() int { return len(b.Covers) }

// Clone returns a deep copy of the bid.
func (b Bid) Clone() Bid {
	c := b
	c.Covers = append([]int(nil), b.Covers...)
	return c
}

// Instance is one single-stage winner selection problem: the residual
// demands of the needy microservices and the bids submitted this round.
type Instance struct {
	// Demand holds X_k for each needy microservice k: how many units of
	// coverage k requires. len(Demand) is the number of needy microservices.
	Demand []int
	// Bids are the submitted bids. Bidder identifiers need not be dense,
	// but every bid's Covers entries must index into Demand.
	Bids []Bid
}

// NumNeedy returns the number of needy microservices.
func (ins *Instance) NumNeedy() int { return len(ins.Demand) }

// TotalDemand returns the sum of coverage requirements across needy
// microservices.
func (ins *Instance) TotalDemand() int {
	total := 0
	for _, d := range ins.Demand {
		total += d
	}
	return total
}

// MaxPrice returns the maximum bid price, or 0 with no bids. It is used as
// the default reserve for critical payments when a winner has no runner-up.
func (ins *Instance) MaxPrice() float64 {
	maxP := 0.0
	for _, b := range ins.Bids {
		if b.Price > maxP {
			maxP = b.Price
		}
	}
	return maxP
}

// Clone returns a deep copy of the instance.
func (ins *Instance) Clone() *Instance {
	out := &Instance{
		Demand: append([]int(nil), ins.Demand...),
		Bids:   make([]Bid, len(ins.Bids)),
	}
	for i, b := range ins.Bids {
		out.Bids[i] = b.Clone()
	}
	return out
}

// Validate checks structural well-formedness: positive demands, positive
// prices and units, unique in-range cover entries, and per-bidder unique
// alternative indices. It returns a descriptive error on the first
// violation found.
func (ins *Instance) Validate() error {
	for k, d := range ins.Demand {
		if d < 0 {
			return fmt.Errorf("core: demand of needy microservice %d is negative (%d)", k, d)
		}
	}
	type altKey struct{ bidder, alt int }
	seenAlt := make(map[altKey]struct{}, len(ins.Bids))
	for idx, b := range ins.Bids {
		if b.Price < 0 || math.IsNaN(b.Price) || math.IsInf(b.Price, 0) {
			return fmt.Errorf("core: bid %d has invalid price %v", idx, b.Price)
		}
		if b.Units < 1 {
			return fmt.Errorf("core: bid %d has non-positive units %d", idx, b.Units)
		}
		if len(b.Covers) == 0 {
			return fmt.Errorf("core: bid %d covers no needy microservice", idx)
		}
		seen := make(map[int]struct{}, len(b.Covers))
		for _, k := range b.Covers {
			if k < 0 || k >= len(ins.Demand) {
				return fmt.Errorf("core: bid %d covers out-of-range needy microservice %d", idx, k)
			}
			if _, dup := seen[k]; dup {
				return fmt.Errorf("core: bid %d covers needy microservice %d twice", idx, k)
			}
			seen[k] = struct{}{}
		}
		key := altKey{b.Bidder, b.Alt}
		if _, dup := seenAlt[key]; dup {
			return fmt.Errorf("core: bidder %d submits duplicate alternative index %d", b.Bidder, b.Alt)
		}
		seenAlt[key] = struct{}{}
	}
	return nil
}

// Coverable reports whether the instance is feasible at all: whether
// selecting every bid (at most one per bidder, taking each bidder's best
// coverage) can satisfy all demands. It is a fast necessary-and-sufficient
// check given the one-bid-per-bidder constraint is relaxed to "any single
// bid per bidder" (selecting all bids of a bidder never helps more than the
// union, but our model counts coverage per selected bid, so we check the
// optimistic bound of one full-coverage bid per bidder).
func (ins *Instance) Coverable() bool {
	// Optimistic per-needy coverage: for each bidder take, per needy k, the
	// maximum units any of its bids contributes to k. This upper-bounds what
	// one bid per bidder can do, and the greedy/exact solvers confirm
	// exactly; we use it only to short-circuit clearly infeasible rounds.
	perBidder := make(map[int][]int) // bidder -> per-needy max units
	for _, b := range ins.Bids {
		cov := perBidder[b.Bidder]
		if cov == nil {
			cov = make([]int, len(ins.Demand))
			perBidder[b.Bidder] = cov
		}
		for _, k := range b.Covers {
			if b.Units > cov[k] {
				cov[k] = b.Units
			}
		}
	}
	got := make([]int, len(ins.Demand))
	for _, cov := range perBidder {
		for k, u := range cov {
			got[k] += u
		}
	}
	for k, d := range ins.Demand {
		if got[k] < d {
			return false
		}
	}
	return true
}

// Outcome is the result of running a winner selection mechanism on an
// Instance.
type Outcome struct {
	// Winners holds indices into Instance.Bids of the selected bids, in the
	// order they were selected.
	Winners []int
	// Payments maps a winning bid index to the remuneration p_i paid to its
	// bidder. Losing bids receive no payment and are absent.
	Payments map[int]float64
	// SocialCost is the sum of winning bid prices (the paper's objective,
	// Eq. 12). For MSOA rounds this is computed with the RAW prices J_ij,
	// not the scaled prices, matching Lemma 4's Δμ accounting.
	SocialCost float64
	// ScaledCost is the sum of winning scaled prices ∇_ij; for SSAM run
	// standalone it equals SocialCost.
	ScaledCost float64
	// Dual carries the primal–dual certificate produced by SSAM.
	Dual *DualCertificate
}

// Equal reports whether o and other are EXACTLY the same outcome: identical
// winner sequences, bit-identical costs and payments, and (when present)
// bit-identical dual certificates. No epsilon is applied anywhere — the
// optimized kernel is held to bit-identical float64 operation sequences
// against the reference implementation, and the differential tests compare
// through this method.
func (o *Outcome) Equal(other *Outcome) bool {
	if o == nil || other == nil {
		return o == other
	}
	if len(o.Winners) != len(other.Winners) {
		return false
	}
	for i := range o.Winners {
		if o.Winners[i] != other.Winners[i] {
			return false
		}
	}
	if o.SocialCost != other.SocialCost || o.ScaledCost != other.ScaledCost {
		return false
	}
	if len(o.Payments) != len(other.Payments) {
		return false
	}
	for w, p := range o.Payments {
		q, ok := other.Payments[w]
		if !ok || p != q {
			return false
		}
	}
	return o.Dual.equal(other.Dual)
}

// equal is the exact comparison over dual certificates backing Outcome.Equal.
func (c *DualCertificate) equal(other *DualCertificate) bool {
	if c == nil || other == nil {
		return c == other
	}
	if c.W != other.W || c.Xi != other.Xi ||
		c.Primal != other.Primal || c.DualObjective != other.DualObjective {
		return false
	}
	if len(c.UnitPrices) != len(other.UnitPrices) || len(c.UnitTimes) != len(other.UnitTimes) ||
		len(c.Y) != len(other.Y) || len(c.Z) != len(other.Z) {
		return false
	}
	for k := range c.UnitPrices {
		if len(c.UnitPrices[k]) != len(other.UnitPrices[k]) {
			return false
		}
		for u := range c.UnitPrices[k] {
			if c.UnitPrices[k][u] != other.UnitPrices[k][u] {
				return false
			}
		}
	}
	for k := range c.UnitTimes {
		if len(c.UnitTimes[k]) != len(other.UnitTimes[k]) {
			return false
		}
		for u := range c.UnitTimes[k] {
			if c.UnitTimes[k][u] != other.UnitTimes[k][u] {
				return false
			}
		}
	}
	for k := range c.Y {
		if c.Y[k] != other.Y[k] {
			return false
		}
	}
	for b, z := range c.Z {
		zo, ok := other.Z[b]
		if !ok || z != zo {
			return false
		}
	}
	return true
}

// TotalPayment sums the payments to all winners. The sum runs in
// ascending bid-index order: float addition is not associative, so
// summing in Go's randomized map order would make the total differ in
// the last ULP between otherwise identical runs — enough to flip the
// hashed platform state that the WAL and the chaos harnesses compare
// byte-for-byte.
func (o *Outcome) TotalPayment() float64 {
	idx := make([]int, 0, len(o.Payments))
	for w := range o.Payments {
		idx = append(idx, w)
	}
	sort.Ints(idx)
	var total float64
	for _, w := range idx {
		total += o.Payments[w]
	}
	return total
}

// Won reports whether bid index idx is a winner.
func (o *Outcome) Won(idx int) bool {
	for _, w := range o.Winners {
		if w == idx {
			return true
		}
	}
	return false
}

// Utility returns the utility (Eq. 3) of the bid at index idx in ins under
// this outcome: payment minus true cost if it won, zero otherwise.
func (o *Outcome) Utility(ins *Instance, idx int) float64 {
	if !o.Won(idx) {
		return 0
	}
	return o.Payments[idx] - ins.Bids[idx].TrueCost
}
