package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomRounds draws an online scenario for property tests: `rounds`
// rounds over a fixed bidder population with reserve-backed feasibility.
func randomRounds(rng *rand.Rand, rounds, bidders int) []Round {
	out := make([]Round, 0, rounds)
	for t := 1; t <= rounds; t++ {
		out = append(out, Round{T: t, Instance: randomInstance(rng, bidders, 1+rng.Intn(3), 1)})
	}
	return out
}

func TestPropertyMSOAPsiMonotone(t *testing.T) {
	// ψ_i never decreases over an online run, and only winners' ψ moves.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		m := NewMSOA(MSOAConfig{DefaultCapacity: 50, Alpha: 2})
		rounds := randomRounds(rng, 6, 6)
		prev := map[int]float64{}
		for _, r := range rounds {
			res := m.RunRound(r)
			if res.Err != nil {
				t.Fatalf("trial %d round %d: %v", trial, r.T, res.Err)
			}
			winners := map[int]bool{}
			for _, w := range res.Outcome.Winners {
				winners[r.Instance.Bids[w].Bidder] = true
			}
			for _, b := range r.Instance.Bids {
				psi := m.Psi(b.Bidder)
				if psi < prev[b.Bidder]-1e-12 {
					t.Fatalf("trial %d: ψ_%d decreased %v -> %v", trial, b.Bidder, prev[b.Bidder], psi)
				}
				if !winners[b.Bidder] && psi != prev[b.Bidder] {
					t.Fatalf("trial %d: non-winner %d ψ moved", trial, b.Bidder)
				}
				prev[b.Bidder] = psi
			}
		}
	}
}

func TestPropertyMSOAUsedCapacityAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := NewMSOA(MSOAConfig{DefaultCapacity: 100})
	expected := map[int]int{}
	for t2 := 1; t2 <= 8; t2++ {
		r := Round{T: t2, Instance: randomInstance(rng, 5, 2, 2)}
		res := m.RunRound(r)
		if res.Err != nil {
			continue
		}
		for _, w := range res.Outcome.Winners {
			b := r.Instance.Bids[w]
			expected[b.Bidder] += len(b.Covers)
		}
	}
	for bidder, want := range expected {
		if got := m.UsedCapacity(bidder); got != want {
			t.Fatalf("bidder %d used capacity %d, want %d", bidder, got, want)
		}
	}
}

func TestPropertyMSOAScaledAtLeastRaw(t *testing.T) {
	// ∇_ij = J_ij + |S|ψ ≥ J_ij always (ψ ≥ 0).
	rng := rand.New(rand.NewSource(23))
	m := NewMSOA(MSOAConfig{DefaultCapacity: 10})
	for t2 := 1; t2 <= 8; t2++ {
		r := Round{T: t2, Instance: randomInstance(rng, 6, 2, 1)}
		res := m.RunRound(r)
		for i, s := range res.Scaled {
			if s < r.Instance.Bids[i].Price-1e-12 {
				t.Fatalf("round %d bid %d: scaled %v below raw %v", t2, i, s, r.Instance.Bids[i].Price)
			}
		}
	}
}

func TestQuickBuyerChargesCoverPayments(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func(marginRaw uint8) bool {
		margin := float64(marginRaw%50) / 100
		ins := randomInstance(rng, 4+rng.Intn(5), 1+rng.Intn(3), 1)
		out, err := SSAM(ins, Options{SkipCertificate: true})
		if err != nil {
			return false
		}
		charges := BuyerCharges(ins, out, margin)
		var charged float64
		for _, c := range charges {
			charged += c
		}
		want := out.TotalPayment() * (1 + margin)
		return math.Abs(charged-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCertificateDualNeverExceedsOptimalCost(t *testing.T) {
	// The fitted dual is a lower bound on ANY feasible solution's cost; in
	// particular the greedy's own cost dominates it.
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 100; trial++ {
		ins := randomInstance(rng, 3+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2))
		out, err := SSAM(ins, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Dual.DualObjective > out.ScaledCost+1e-6 {
			t.Fatalf("trial %d: dual %v exceeds greedy cost %v", trial, out.Dual.DualObjective, out.ScaledCost)
		}
		if err := VerifyCertificate(ins, out, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPropertyOutcomeWinnersSortedSelectionOrder(t *testing.T) {
	// Winners are recorded in greedy selection order: their per-coverage
	// scores at selection time are non-decreasing. We verify a weaker
	// invariant robustly: no duplicate winners and payments present for
	// every winner.
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 100; trial++ {
		ins := randomInstance(rng, 3+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(2))
		out, err := SSAM(ins, Options{SkipCertificate: true})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, w := range out.Winners {
			if seen[w] {
				t.Fatalf("trial %d: duplicate winner %d", trial, w)
			}
			seen[w] = true
			if _, ok := out.Payments[w]; !ok {
				t.Fatalf("trial %d: winner %d missing payment", trial, w)
			}
		}
		if len(out.Payments) != len(out.Winners) {
			t.Fatalf("trial %d: %d payments for %d winners", trial, len(out.Payments), len(out.Winners))
		}
	}
}
