package loadgen

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"edgeauction/internal/obs"
	"edgeauction/internal/platform"
)

// RunConfig parameterizes a self-contained load benchmark: an
// in-process platform server driven by a multiplexed Fleet.
type RunConfig struct {
	// Agents is the fleet size (required, > 0).
	Agents int
	// Rounds is how many measured rounds to clear (required, > 0).
	Rounds int
	// Pipelined selects RunPipelined (gather t+1 overlapped with settle
	// t) instead of the serial RunRound loop.
	Pipelined bool
	// ThinkTime is the fleet's simulated per-session decision latency.
	ThinkTime time.Duration
	// AgentsPerConn is the session multiplexing factor (0 = default).
	AgentsPerConn int
	// Demand is the per-round residual demand vector; nil means a fixed
	// 4-service vector so runs are comparable.
	Demand []int
	// Warmup rounds run before measurement starts (default 1) so pools
	// and per-session buffers reach steady state.
	Warmup int
	// Admission is the server's admission-control config (zero = off).
	Admission platform.AdmissionConfig
	// BidDeadline bounds each gather; 0 means 30s (fleets always answer,
	// so rounds close at the last bid, far before the deadline).
	BidDeadline time.Duration
	// PipelineYield is the scheduling window RunPipelined grants the
	// ingest path after each announce (platform.ServerConfig.PipelineYield).
	// The fleet shares the server's runtime here, so the yield is what
	// lets agent read loops observe the announce before the solve occupies
	// the processor; 0 means 1ms. Serial rounds ignore it.
	PipelineYield time.Duration
}

// Result is one load-benchmark measurement.
type Result struct {
	Agents    int  `json:"agents"`
	Sessions  int  `json:"sessions"`
	Rounds    int  `json:"rounds"`
	Pipelined bool `json:"pipelined"`

	ElapsedMillis   float64 `json:"elapsed_ms"`
	RoundsPerSec    float64 `json:"rounds_per_sec"`
	P99BidRTTMicros float64 `json:"p99_bid_rtt_us"`

	// GatherMillis and SettleMillis are the mean per-round stage
	// durations (obs.StageLatency). Their ratio to ThinkTime is what
	// decides whether the pipeline has anything to hide: the overlap
	// gain per round is bounded by min(settle, think) — at saturation
	// (gather is pure decode CPU, think a sliver of the round) the two
	// engines honestly converge.
	GatherMillis float64 `json:"gather_ms"`
	SettleMillis float64 `json:"settle_ms"`

	// Bids is the total bids gathered into measured rounds.
	Bids int64 `json:"bids"`
	// Rejections counts admission-control sheds observed by the fleet.
	Rejections int64 `json:"rejections"`
	// AllocBytesPerAgentRound is the process-wide heap allocation per
	// agent-round during measurement (server + in-process fleet). The
	// pooled round engine keeps this flat as agent count grows.
	AllocBytesPerAgentRound float64 `json:"alloc_bytes_per_agent_round"`
}

// harness is a live server + registered fleet, reused across measurement
// passes so paired comparisons share one process state (pools warm, GC
// heap comparable, identical sockets).
type harness struct {
	cfg    RunConfig
	demand []int
	srv    *platform.Server
	fleet  *Fleet
	stages *stageMeans
}

// stageMeans accumulates obs.StageLatency durations per stage between
// take() calls, so each measured block reports its own means.
type stageMeans struct {
	mu  sync.Mutex
	sum map[string]int64
	n   map[string]int64
}

func newStageMeans() *stageMeans {
	return &stageMeans{sum: map[string]int64{}, n: map[string]int64{}}
}

func (m *stageMeans) Emit(ev obs.Event) {
	sl, ok := ev.(obs.StageLatency)
	if !ok {
		return
	}
	m.mu.Lock()
	m.sum[sl.Stage] += sl.DurationMicros
	m.n[sl.Stage]++
	m.mu.Unlock()
}

// take returns the mean duration of stage in milliseconds since the last
// take of that stage, then resets it.
func (m *stageMeans) take(stage string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.n[stage]
	if n == 0 {
		return 0
	}
	mean := float64(m.sum[stage]) / float64(n) / 1000
	delete(m.sum, stage)
	delete(m.n, stage)
	return mean
}

func (cfg RunConfig) normalized() RunConfig {
	if cfg.Demand == nil {
		cfg.Demand = []int{2, 1, 2, 1}
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 1
	}
	if cfg.BidDeadline == 0 {
		cfg.BidDeadline = 30 * time.Second
	}
	if cfg.PipelineYield == 0 {
		cfg.PipelineYield = time.Millisecond
	}
	return cfg
}

func newHarness(cfg RunConfig) (*harness, error) {
	if cfg.Agents <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("loadgen: need positive Agents and Rounds, got %d/%d", cfg.Agents, cfg.Rounds)
	}
	cfg = cfg.normalized()
	stages := newStageMeans()
	srv, err := platform.NewServer("127.0.0.1:0", platform.ServerConfig{
		BidDeadline:   cfg.BidDeadline,
		Admission:     cfg.Admission,
		PipelineYield: cfg.PipelineYield,
		Tracer:        stages,
	})
	if err != nil {
		return nil, err
	}
	fleet, err := Dial(srv.Addr(), Config{
		Agents:        cfg.Agents,
		AgentsPerConn: cfg.AgentsPerConn,
		ThinkTime:     cfg.ThinkTime,
	})
	if err != nil {
		_ = srv.Close()
		return nil, err
	}
	regDeadline := time.Now().Add(60 * time.Second)
	for srv.AgentCount() < cfg.Agents {
		if time.Now().After(regDeadline) {
			_ = fleet.Close()
			_ = srv.Close()
			return nil, fmt.Errorf("loadgen: only %d/%d agents registered after 60s", srv.AgentCount(), cfg.Agents)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return &harness{cfg: cfg, demand: cfg.Demand, srv: srv, fleet: fleet, stages: stages}, nil
}

func (h *harness) close() {
	_ = h.fleet.Close()
	_ = h.srv.Close()
}

func (h *harness) runRounds(pipelined bool, n int) (int64, error) {
	var bids int64
	if pipelined {
		err := h.srv.RunPipelined(context.Background(), n,
			func(int) ([]int, []int) { return h.demand, nil },
			func(out *platform.RoundOutcome) error {
				bids += int64(out.Bids)
				return nil
			})
		return bids, err
	}
	for i := 0; i < n; i++ {
		out, err := h.srv.RunRound(h.demand, nil)
		if err != nil {
			return bids, err
		}
		bids += int64(out.Bids)
	}
	return bids, nil
}

// measure times one block of n rounds in the given mode.
func (h *harness) measure(pipelined bool, n int) (*Result, error) {
	// Drop stage samples from warmup or the previous block.
	h.stages.take("gather")
	h.stages.take("settle")
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	bids, err := h.runRounds(pipelined, n)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, fmt.Errorf("loadgen: measured rounds: %w", err)
	}
	return &Result{
		Agents:          h.cfg.Agents,
		Sessions:        h.fleet.Sessions(),
		Rounds:          n,
		Pipelined:       pipelined,
		ElapsedMillis:   float64(elapsed.Microseconds()) / 1000,
		RoundsPerSec:    float64(n) / elapsed.Seconds(),
		GatherMillis:    h.stages.take("gather"),
		SettleMillis:    h.stages.take("settle"),
		P99BidRTTMicros: h.srv.Metrics().Histogram("platform_bid_rtt_us", 0, 1e6, 500).Quantile(0.99),
		Bids:            bids,
		Rejections:      h.fleet.Rejections(),
		AllocBytesPerAgentRound: float64(after.TotalAlloc-before.TotalAlloc) /
			float64(h.cfg.Agents*n),
	}, nil
}

// Run starts a server on a loopback port, connects the fleet, clears
// warmup + measured rounds, and reports throughput, tail latency, and
// allocation rate. The server and fleet are torn down before returning.
func Run(cfg RunConfig) (*Result, error) {
	h, err := newHarness(cfg)
	if err != nil {
		return nil, err
	}
	defer h.close()
	if _, err := h.runRounds(cfg.Pipelined, h.cfg.Warmup); err != nil {
		return nil, fmt.Errorf("loadgen: warmup: %w", err)
	}
	return h.measure(cfg.Pipelined, cfg.Rounds)
}

// PairedResult compares the serial and pipelined round engines over one
// shared server + fleet.
type PairedResult struct {
	// Serial and Pipelined are median-of-passes measurements (median
	// selected by rounds/sec; alloc and p99 fields come from the same
	// median pass).
	Serial    Result `json:"serial"`
	Pipelined Result `json:"pipelined"`
	// Passes is how many times each mode ran.
	Passes int `json:"passes"`
	// SpeedupPct is the pipelined median throughput gain over serial.
	SpeedupPct float64 `json:"speedup_pct"`
}

// RunPaired measures both modes back to back `passes` times, alternating
// serial and pipelined blocks inside one process so scheduler noise, GC
// pacing and cache state hit both equally, and reports the median pass
// per mode. cfg.Pipelined is ignored. This is the shape the committed
// load benchmark uses: on a noisy single-core box a single pass of each
// mode can swing ±20%, which would drown the overlap gain.
func RunPaired(cfg RunConfig, passes int) (*PairedResult, error) {
	if passes <= 0 {
		passes = 3
	}
	h, err := newHarness(cfg)
	if err != nil {
		return nil, err
	}
	defer h.close()
	// Warm both code paths before measuring.
	if _, err := h.runRounds(false, h.cfg.Warmup); err != nil {
		return nil, fmt.Errorf("loadgen: warmup: %w", err)
	}
	if _, err := h.runRounds(true, h.cfg.Warmup); err != nil {
		return nil, fmt.Errorf("loadgen: warmup: %w", err)
	}
	var serial, pipelined []*Result
	for p := 0; p < passes; p++ {
		for _, mode := range []bool{false, true} {
			res, err := h.measure(mode, cfg.Rounds)
			if err != nil {
				return nil, err
			}
			if mode {
				pipelined = append(pipelined, res)
			} else {
				serial = append(serial, res)
			}
		}
	}
	out := &PairedResult{
		Serial:    *medianByThroughput(serial),
		Pipelined: *medianByThroughput(pipelined),
		Passes:    passes,
	}
	out.SpeedupPct = (out.Pipelined.RoundsPerSec/out.Serial.RoundsPerSec - 1) * 100
	return out, nil
}

// medianByThroughput picks the pass with the median rounds/sec.
func medianByThroughput(rs []*Result) *Result {
	sorted := make([]*Result, len(rs))
	copy(sorted, rs)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].RoundsPerSec < sorted[j].RoundsPerSec
	})
	return sorted[len(sorted)/2]
}
