// Package loadgen drives edge-cloud-scale synthetic agent fleets
// against a platform server for load benchmarking. A Fleet multiplexes
// many agents over few TCP sessions (HelloMsg.Count registers a
// contiguous id range per connection; BidSubmitMsg.Multi batches the
// whole range's round answers into one write), so 100k concurrent
// agents fit comfortably under ordinary file-descriptor limits while
// still exercising the server's full decode/ingest path per agent.
//
// Fleet bidding is deterministic: every agent bids every round with a
// price that is a pure function of (agent id, round), so a serial and a
// pipelined server driven by identical fleets gather identical
// instances.
package loadgen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"edgeauction/internal/platform"
)

// Config parameterizes a Fleet.
type Config struct {
	// Agents is the total number of agents (required, > 0).
	Agents int
	// AgentsPerConn is how many agents share one multiplexed session;
	// 0 means DefaultAgentsPerConn.
	AgentsPerConn int
	// FirstID is the first agent id; 0 means 1.
	FirstID int
	// Capacity is each agent's lifetime sharing capacity (0 unlimited).
	Capacity int
	// ThinkTime is the simulated per-session decision latency between
	// receiving an announce and submitting the batch of bids. It models
	// the time real microservices spend computing bids, which is exactly
	// the window a pipelined server hides its settle phase in.
	ThinkTime time.Duration
	// AltBids is the number of alternative bids per agent per round;
	// 0 means 1.
	AltBids int
	// DynamicBids makes every agent's bid a function of the round number
	// as well as its id, forcing a fresh JSON encode per session per
	// round. The default (false) varies bids per agent but keeps them
	// stable across rounds, so each session encodes its batch once and
	// re-sends the bytes with only the round tag patched — the fleet then
	// costs the benchmark core almost nothing, like a real remote fleet
	// would.
	DynamicBids bool
	// DialTimeout bounds each session's connection attempt (0 = 5s).
	DialTimeout time.Duration
	// WriteTimeout bounds each session's sends (0 = 5s).
	WriteTimeout time.Duration
}

// DefaultAgentsPerConn is the session multiplexing factor when
// Config.AgentsPerConn is zero: 100k agents ≈ 500 sockets.
const DefaultAgentsPerConn = 200

func (c Config) agentsPerConn() int {
	if c.AgentsPerConn <= 0 {
		return DefaultAgentsPerConn
	}
	return c.AgentsPerConn
}

func (c Config) firstID() int {
	if c.FirstID <= 0 {
		return 1
	}
	return c.FirstID
}

func (c Config) altBids() int {
	if c.AltBids <= 0 {
		return 1
	}
	return c.AltBids
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout == 0 {
		return 5 * time.Second
	}
	return c.DialTimeout
}

func (c Config) writeTimeout() time.Duration {
	if c.WriteTimeout == 0 {
		return 5 * time.Second
	}
	return c.WriteTimeout
}

// Fleet is a set of multiplexed load-generator sessions.
type Fleet struct {
	cfg      Config
	sessions []*fleetSession

	bidsSent   atomic.Int64
	awards     atomic.Int64
	rejections atomic.Int64
	rounds     atomic.Int64
	errs       atomic.Int64

	wg sync.WaitGroup
}

// Dial connects a fleet to the platform at addr: it opens
// ceil(Agents/AgentsPerConn) sessions, registers each id range, and
// starts the per-session bid loops. Close the fleet to disconnect.
func Dial(addr string, cfg Config) (*Fleet, error) {
	if cfg.Agents <= 0 {
		return nil, fmt.Errorf("loadgen: Agents must be positive, got %d", cfg.Agents)
	}
	f := &Fleet{cfg: cfg}
	per := cfg.agentsPerConn()
	for first := cfg.firstID(); first < cfg.firstID()+cfg.Agents; first += per {
		count := per
		if rem := cfg.firstID() + cfg.Agents - first; rem < count {
			count = rem
		}
		fs, err := f.dialSession(addr, first, count)
		if err != nil {
			_ = f.Close()
			return nil, err
		}
		f.sessions = append(f.sessions, fs)
	}
	for _, fs := range f.sessions {
		f.wg.Add(1)
		go func(fs *fleetSession) {
			defer f.wg.Done()
			fs.loop()
		}(fs)
	}
	return f, nil
}

// Sessions returns the number of TCP connections carrying the fleet.
func (f *Fleet) Sessions() int { return len(f.sessions) }

// BidsSent returns the total bid messages submitted.
func (f *Fleet) BidsSent() int64 { return f.bidsSent.Load() }

// Awards returns the total awards observed across all agents.
func (f *Fleet) Awards() int64 { return f.awards.Load() }

// Rejections returns the admission-control sheds observed.
func (f *Fleet) Rejections() int64 { return f.rejections.Load() }

// RoundsSeen returns the total announces observed (summed per session).
func (f *Fleet) RoundsSeen() int64 { return f.rounds.Load() }

// Errs returns the number of session errors observed.
func (f *Fleet) Errs() int64 { return f.errs.Load() }

// Close disconnects every session and waits for their loops to exit.
func (f *Fleet) Close() error {
	for _, fs := range f.sessions {
		_ = fs.raw.Close()
	}
	f.wg.Wait()
	return nil
}

// fleetSession is one multiplexed connection carrying agents
// first..first+count-1. It speaks the platform's JSON-line protocol
// directly so the hot path can reuse one encoder buffer per session.
type fleetSession struct {
	f     *Fleet
	raw   net.Conn
	r     *bufio.Reader
	enc   []byte // reusable encode buffer for submissions
	first int
	count int

	// The reusable batch: one entry per agent, bids backed by one flat
	// slice so steady-state rounds allocate (almost) nothing.
	multi []platform.AgentBids
	bids  []platform.WireBid

	// Static-bid fast path: the session's batch pre-encoded once, split
	// around the round tag so each round is a byte splice, not a marshal.
	staticHead []byte
	staticTail []byte
	staticD    int // demand length the static batch was built for
}

// send writes env as one JSON line, bounded by the fleet write timeout.
func (fs *fleetSession) send(env *platform.Envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("loadgen: marshal %s: %w", env.Type, err)
	}
	fs.enc = append(append(fs.enc[:0], data...), '\n')
	if err := fs.raw.SetWriteDeadline(time.Now().Add(fs.f.cfg.writeTimeout())); err != nil {
		return err
	}
	_, err = fs.raw.Write(fs.enc)
	return err
}

// recv reads one envelope; timeout 0 means no deadline.
func (fs *fleetSession) recv(timeout time.Duration) (*platform.Envelope, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := fs.raw.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	line, err := fs.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var env platform.Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("loadgen: bad JSON from platform: %w", err)
	}
	return &env, nil
}

func (f *Fleet) dialSession(addr string, first, count int) (*fleetSession, error) {
	raw, err := net.DialTimeout("tcp", addr, f.cfg.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("loadgen: dial %s: %w", addr, err)
	}
	fs := &fleetSession{f: f, raw: raw, r: bufio.NewReader(raw), first: first, count: count}
	hello := &platform.Envelope{Type: platform.TypeHello, Hello: &platform.HelloMsg{
		AgentID: first, Capacity: f.cfg.Capacity, Count: count,
	}}
	if err := fs.send(hello); err != nil {
		_ = raw.Close()
		return nil, err
	}
	env, err := fs.recv(f.cfg.dialTimeout())
	if err != nil {
		_ = raw.Close()
		return nil, fmt.Errorf("loadgen: session %d registration: %w", first, err)
	}
	switch env.Type {
	case platform.TypeWelcome:
	case platform.TypeReject:
		_ = raw.Close()
		code := ""
		if env.Reject != nil {
			code = env.Reject.Code
		}
		return nil, fmt.Errorf("loadgen: session %d rejected: %s", first, code)
	default:
		_ = raw.Close()
		return nil, fmt.Errorf("loadgen: session %d: expected welcome, got %q", first, env.Type)
	}
	return fs, nil
}

func (fs *fleetSession) loop() {
	for {
		env, err := fs.recv(0)
		if err != nil {
			return // connection closed (fleet Close or server gone)
		}
		switch env.Type {
		case platform.TypeAnnounce:
			fs.onAnnounce(env.Announce)
		case platform.TypeResult:
			if env.Result != nil {
				for _, aw := range env.Result.Awards {
					if aw.Bidder >= fs.first && aw.Bidder < fs.first+fs.count {
						fs.f.awards.Add(1)
					}
				}
			}
		case platform.TypeReject:
			fs.f.rejections.Add(1)
		case platform.TypeShutdown:
			return
		case platform.TypeError:
			fs.f.errs.Add(1)
			return
		}
	}
}

// onAnnounce builds and submits the whole session's round answer as one
// Multi batch after the configured think time.
func (fs *fleetSession) onAnnounce(msg *platform.AnnounceMsg) {
	if msg == nil || len(msg.Demand) == 0 {
		return
	}
	fs.f.rounds.Add(1)
	if fs.f.cfg.ThinkTime > 0 {
		time.Sleep(fs.f.cfg.ThinkTime)
	}
	if !fs.f.cfg.DynamicBids {
		if err := fs.sendStatic(msg); err != nil {
			fs.f.errs.Add(1)
			return
		}
		fs.f.bidsSent.Add(int64(fs.count))
		return
	}
	fs.buildBatch(msg.T, len(msg.Demand))
	env := &platform.Envelope{Type: platform.TypeBid, Bid: &platform.BidSubmitMsg{T: msg.T, Multi: fs.multi}}
	if err := fs.send(env); err != nil {
		fs.f.errs.Add(1)
		return
	}
	fs.f.bidsSent.Add(int64(len(fs.multi)))
}

// buildBatch fills fs.multi with one deterministic bid set per agent:
// price, covers and units are pure functions of (id, round, alt), so
// identically-driven serial and pipelined servers gather identical
// instances. Round variation is suppressed (t forced to 0) on the
// static path.
func (fs *fleetSession) buildBatch(t, d int) {
	alts := fs.f.cfg.altBids()
	need := fs.count * alts
	if cap(fs.bids) < need {
		fs.bids = make([]platform.WireBid, 0, need)
		fs.multi = make([]platform.AgentBids, 0, fs.count)
	}
	fs.bids = fs.bids[:0]
	fs.multi = fs.multi[:0]
	for i := 0; i < fs.count; i++ {
		id := fs.first + i
		start := len(fs.bids)
		for alt := 0; alt < alts; alt++ {
			k := (id + alt) % d
			covers := []int{k}
			if d > 1 && (id+t)%3 == 0 {
				covers = append(covers, (k+1)%d)
			}
			fs.bids = append(fs.bids, platform.WireBid{
				Alt:    alt,
				Price:  float64(5 + (id*7+t*13+alt*29)%60),
				Covers: covers,
				Units:  1 + (id+t)%3,
			})
		}
		fs.multi = append(fs.multi, platform.AgentBids{Agent: id, Bids: fs.bids[start:len(fs.bids):len(fs.bids)]})
	}
}

// sendStatic submits the pre-encoded batch with only the round tag
// spliced in, re-encoding only when the demand shape changes.
func (fs *fleetSession) sendStatic(msg *platform.AnnounceMsg) error {
	d := len(msg.Demand)
	if fs.staticHead == nil || fs.staticD != d {
		fs.buildBatch(0, d)
		body, err := json.Marshal(&platform.BidSubmitMsg{T: 0, Multi: fs.multi})
		if err != nil {
			return fmt.Errorf("loadgen: marshal static batch: %w", err)
		}
		const tPrefix = `{"t":0`
		if string(body[:len(tPrefix)]) != tPrefix {
			return fmt.Errorf("loadgen: unexpected static batch layout %q", body[:len(tPrefix)])
		}
		fs.staticHead = []byte(`{"type":"bid","bid":{"t":`)
		fs.staticTail = append(body[len(tPrefix):], '}', '\n')
		fs.staticD = d
	}
	fs.enc = append(fs.enc[:0], fs.staticHead...)
	fs.enc = strconv.AppendInt(fs.enc, int64(msg.T), 10)
	fs.enc = append(fs.enc, fs.staticTail...)
	if err := fs.raw.SetWriteDeadline(time.Now().Add(fs.f.cfg.writeTimeout())); err != nil {
		return err
	}
	_, err := fs.raw.Write(fs.enc)
	return err
}
