package loadgen

import (
	"context"
	"testing"
	"time"

	"edgeauction/internal/platform"
)

func startServer(t *testing.T, cfg platform.ServerConfig) *platform.Server {
	t.Helper()
	if cfg.BidDeadline == 0 {
		cfg.BidDeadline = 2 * time.Second
	}
	srv, err := platform.NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetMultiplexedRegistration: a 30-agent fleet at 8 agents/conn
// registers all 30 agents over ceil(30/8)=4 sockets, every agent bids
// every round, and all bids land in the cleared instance.
func TestFleetMultiplexedRegistration(t *testing.T) {
	srv := startServer(t, platform.ServerConfig{})
	fleet, err := Dial(srv.Addr(), Config{Agents: 30, AgentsPerConn: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fleet.Close() }()

	if got := fleet.Sessions(); got != 4 {
		t.Fatalf("sessions = %d, want 4", got)
	}
	waitFor(t, "registration", func() bool { return srv.AgentCount() == 30 })

	const rounds = 3
	for i := 0; i < rounds; i++ {
		out, err := srv.RunRound([]int{2, 1}, nil)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if out.Bids != 30 {
			t.Fatalf("round %d gathered %d bids, want 30", i, out.Bids)
		}
		if len(out.Awards) == 0 {
			t.Fatalf("round %d produced no awards", i)
		}
	}
	if got := fleet.BidsSent(); got != 30*rounds {
		t.Fatalf("fleet sent %d bids, want %d", got, 30*rounds)
	}
	waitFor(t, "award delivery", func() bool { return fleet.Awards() > 0 })
	if fleet.Errs() != 0 {
		t.Fatalf("fleet saw %d session errors", fleet.Errs())
	}
}

// TestFleetDrivesPipelinedRounds: the same fleet drives RunPipelined
// end to end — overlapped rounds all clear with full participation.
func TestFleetDrivesPipelinedRounds(t *testing.T) {
	srv := startServer(t, platform.ServerConfig{})
	fleet, err := Dial(srv.Addr(), Config{Agents: 24, AgentsPerConn: 6, ThinkTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fleet.Close() }()
	waitFor(t, "registration", func() bool { return srv.AgentCount() == 24 })

	var outcomes []*platform.RoundOutcome
	err = srv.RunPipelined(context.Background(), 5,
		func(t int) ([]int, []int) { return []int{2, 1, 1}, nil },
		func(out *platform.RoundOutcome) error {
			outcomes = append(outcomes, out)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 5 {
		t.Fatalf("got %d outcomes, want 5", len(outcomes))
	}
	for i, out := range outcomes {
		if out.Bids != 24 {
			t.Fatalf("pipelined round %d gathered %d bids, want 24", i, out.Bids)
		}
		if len(out.Awards) == 0 {
			t.Fatalf("pipelined round %d produced no awards", i)
		}
	}
}

// TestFleetRejectsBadConfig: a zero-agent fleet is a configuration
// error, not a silent no-op.
func TestFleetRejectsBadConfig(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Config{}); err == nil {
		t.Fatal("want config error for Agents=0")
	}
}
