package loadgen

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"edgeauction/internal/obs"
	"edgeauction/internal/platform"
)

type stageSink struct {
	mu   sync.Mutex
	durs map[string][]int64
}

func (s *stageSink) Emit(ev obs.Event) {
	if sl, ok := ev.(obs.StageLatency); ok {
		s.mu.Lock()
		s.durs[sl.Stage] = append(s.durs[sl.Stage], sl.DurationMicros)
		s.mu.Unlock()
	}
}

// TestStageProbe is a manual instrument (run with -run StageProbe -v and
// LOADGEN_PROBE=1) that prints per-stage latency for a given shape.
func TestStageProbe(t *testing.T) {
	if os.Getenv("LOADGEN_PROBE") == "" {
		t.Skip("probe disabled; set LOADGEN_PROBE=1")
	}
	sink := &stageSink{durs: map[string][]int64{}}
	srv, err := platform.NewServer("127.0.0.1:0", platform.ServerConfig{
		BidDeadline:   30 * time.Second,
		Tracer:        sink,
		PipelineYield: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	agents := 10000
	if v := os.Getenv("LOADGEN_AGENTS"); v != "" {
		fmt.Sscanf(v, "%d", &agents)
	}
	think := 5 * time.Millisecond
	if v := os.Getenv("LOADGEN_THINK"); v != "" {
		think, _ = time.ParseDuration(v)
	}
	needy := 4
	if v := os.Getenv("LOADGEN_NEEDY"); v != "" {
		fmt.Sscanf(v, "%d", &needy)
	}
	fleet, err := Dial(srv.Addr(), Config{Agents: agents, ThinkTime: think})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	for srv.AgentCount() < agents {
		time.Sleep(2 * time.Millisecond)
	}
	demand := make([]int, needy)
	for i := range demand {
		demand[i] = 1 + i%2
	}
	rounds := 20
	if v := os.Getenv("LOADGEN_ROUNDS"); v != "" {
		fmt.Sscanf(v, "%d", &rounds)
	}
	serial := func() error {
		for i := 0; i < rounds; i++ {
			if _, err := srv.RunRound(demand, nil); err != nil {
				return err
			}
		}
		return nil
	}
	pipelined := func() error {
		return srv.RunPipelined(context.Background(), rounds,
			func(int) ([]int, []int) { return demand, nil },
			func(*platform.RoundOutcome) error { return nil })
	}
	// Warmup, then alternate modes in one process so environment noise
	// and GC behavior hit both equally.
	if err := serial(); err != nil {
		t.Fatal(err)
	}
	var mem runtime.MemStats
	for pass := 0; pass < 2; pass++ {
		for mode, fn := range map[string]func() error{"serial": serial, "pipelined": pipelined} {
			runtime.ReadMemStats(&mem)
			gc0 := mem.NumGC
			start := time.Now()
			if err := fn(); err != nil {
				t.Fatal(err)
			}
			el := time.Since(start)
			runtime.ReadMemStats(&mem)
			fmt.Printf("pass %d %-9s wall %.1fms (%.2f rounds/sec), %d GCs",
				pass, mode, float64(el.Microseconds())/1000,
				float64(rounds)/el.Seconds(), mem.NumGC-gc0)
			sink.mu.Lock()
			for _, stage := range []string{"gather", "settle"} {
				ds := sink.durs[stage]
				var sum int64
				for _, d := range ds {
					sum += d
				}
				if len(ds) > 0 {
					fmt.Printf("  %s=%.1fms", stage, float64(sum)/float64(len(ds))/1000)
				}
				delete(sink.durs, stage)
			}
			sink.mu.Unlock()
			fmt.Println()
		}
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for stage, ds := range sink.durs {
		var sum int64
		for _, d := range ds {
			sum += d
		}
		fmt.Printf("stage %s: n=%d mean=%.1fms\n", stage, len(ds), float64(sum)/float64(len(ds))/1000)
	}
}
