package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"edgeauction/internal/workload"
)

// TestFiguresByteIdenticalAcrossTrialParallelism is the determinism
// contract of the sweep runner: every figure driver renders byte-identical
// output at TrialParallelism 1 (serial) and 8 (fan-out), because each cell
// samples from an RNG stream derived purely from its grid coordinate and
// reduces run in deterministic order. Fig4b is excluded by design: it
// measures physical wall-clock time, which no scheduling discipline can
// make bit-reproducible.
func TestFiguresByteIdenticalAcrossTrialParallelism(t *testing.T) {
	type renderable interface{ Render() string }
	drivers := []struct {
		name string
		run  func(Config) (renderable, error)
	}{
		{"fig3a", func(c Config) (renderable, error) { return Fig3a(c) }},
		{"fig3b", func(c Config) (renderable, error) { return Fig3b(c) }},
		{"fig4a", func(c Config) (renderable, error) { return Fig4a(c) }},
		{"fig5a", func(c Config) (renderable, error) { return Fig5a(c) }},
		{"fig5b", func(c Config) (renderable, error) { return Fig5b(c) }},
		{"fig6a", func(c Config) (renderable, error) { return Fig6a(c) }},
		{"fig6b", func(c Config) (renderable, error) { return Fig6b(c) }},
		{"winstats", func(c Config) (renderable, error) { return WinningStats(c) }},
		{"ablation-scaledprice", func(c Config) (renderable, error) { return AblationScaledPrice(c) }},
		{"ablation-payments", func(c Config) (renderable, error) { return AblationPayments(c) }},
		{"ablation-greedy", func(c Config) (renderable, error) { return AblationGreedyMetric(c) }},
		{"ablation-fixedprice", func(c Config) (renderable, error) { return AblationFixedPrice(c) }},
		{"ablation-capacity", func(c Config) (renderable, error) { return AblationCapacity(c) }},
		{"truthfulness", func(c Config) (renderable, error) { return TruthfulnessSweep(c) }},
		{"federation", func(c Config) (renderable, error) { return Federation(c) }},
		{"demand-ablation", func(c Config) (renderable, error) { return DemandAblation(c) }},
		{"workload-overload", func(c Config) (renderable, error) { return WorkloadOverload(c) }},
		{"workload-spikes", func(c Config) (renderable, error) { return WorkloadSpikes(c) }},
		{"workload-frontier", func(c Config) (renderable, error) { return WorkloadFrontier(c) }},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			var got [2]string
			for i, par := range []int{1, 8} {
				// The exact-solver budget must never bind: a solve that
				// times out falls back to the LP bound, which would make the
				// render depend on machine load (e.g. the -race slowdown).
				// Quick instances solve in milliseconds, so an hour-scale
				// limit keeps every cell a pure function of its seed.
				res, err := d.run(Config{Seed: 7, Quick: true, TrialParallelism: par,
					OptTimeLimit: time.Hour})
				if err != nil {
					t.Fatalf("TrialParallelism=%d: %v", par, err)
				}
				got[i] = res.Render()
			}
			if got[0] != got[1] {
				t.Fatalf("render differs between TrialParallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					got[0], got[1])
			}
		})
	}
}

// TestRunSweepMatchesSerial checks the grid values themselves (not just a
// rendering) are identical at every parallelism level, including the
// derived RNG stream handed to each cell.
func TestRunSweepMatchesSerial(t *testing.T) {
	body := func(rng *workload.Rand, point, trial int) (float64, error) {
		return float64(point*1000+trial) + rng.Uniform(0, 1), nil
	}
	base := Config{Seed: 3, Trials: 7, TrialParallelism: 1}
	want, err := runSweep(base, "sweep-test", 5, body)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 3, 8, 0} {
		c := base
		c.TrialParallelism = par
		got, err := runSweep(c, "sweep-test", 5, body)
		if err != nil {
			t.Fatalf("TrialParallelism=%d: %v", par, err)
		}
		for p := range want {
			for tr := range want[p] {
				if got[p][tr] != want[p][tr] {
					t.Fatalf("TrialParallelism=%d: cell[%d][%d] = %v, serial %v",
						par, p, tr, got[p][tr], want[p][tr])
				}
			}
		}
	}
}

// TestRunSweepDeterministicFirstError hammers the runner with failing
// cells: whichever failure a worker observes first in wall-clock time, the
// error returned must always be the lowest-indexed failing cell's, at
// every parallelism level. Run under -race this also exercises the
// dispatch/collect synchronization.
func TestRunSweepDeterministicFirstError(t *testing.T) {
	failAt := map[int]bool{13: true, 14: true, 47: true, 90: true}
	body := func(_ *workload.Rand, point, trial int) (int, error) {
		i := point*10 + trial
		if failAt[i] {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	}
	for _, par := range []int{1, 2, 4, 8, 0} {
		c := Config{Seed: 1, Trials: 10, TrialParallelism: par}
		_, err := runSweep(c, "err-test", 10, body)
		if err == nil {
			t.Fatalf("TrialParallelism=%d: expected error", par)
		}
		if got, want := err.Error(), "cell 13 failed"; got != want {
			t.Fatalf("TrialParallelism=%d: error %q, want %q (lowest failing index)", par, got, want)
		}
	}
}

// TestRunSweepCancelsAfterFailure checks that a failure stops dispatch:
// with an early failing cell in a 1000-cell grid, only a small prefix
// executes instead of the whole grid. To keep the bound scheduling-proof,
// non-failing cells block until the failing cell has returned, so the
// cells that START before the failure can never exceed the worker pool
// size — no interleaving can let the other workers race through the grid
// first. Cells dispatched in the instant between the failure returning and
// the dispatcher observing it complete as fast no-ops; they are legitimate
// in-flight slack and only the total-grid assertion covers them.
func TestRunSweepCancelsAfterFailure(t *testing.T) {
	const workers = 8
	const points, trials = 10, 100
	var executed, preFailure atomic.Int64
	sentinel := errors.New("boom")
	release := make(chan struct{})
	body := func(_ *workload.Rand, point, trial int) (int, error) {
		executed.Add(1)
		if point == 0 && trial == 3 {
			preFailure.Add(1)
			defer close(release)
			return 0, sentinel
		}
		select {
		case <-release:
			// Post-failure slack: dispatched before the runner observed
			// the error.
		default:
			preFailure.Add(1)
			<-release
		}
		return 0, nil
	}
	c := Config{Seed: 1, Trials: trials, TrialParallelism: workers}
	_, err := runSweep(c, "cancel-test", points, body)
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want sentinel", err)
	}
	if n := preFailure.Load(); n > workers {
		t.Fatalf("%d cells started before the failure returned, want at most %d (worker pool size)", n, workers)
	}
	if n := executed.Load(); n >= points*trials {
		t.Fatalf("all %d cells executed despite early failure; dispatch was not cancelled", n)
	}
}

// TestRunTrialsSinglePoint checks the single-point wrapper derives its
// streams from point 0 and preserves trial order.
func TestRunTrialsSinglePoint(t *testing.T) {
	vals, err := runTrials(Config{Seed: 5, TrialParallelism: 4}, "trials-test", 6,
		func(rng *workload.Rand, trial int) (float64, error) {
			return float64(trial) + rng.Uniform(0, 1), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 6 {
		t.Fatalf("got %d trials, want 6", len(vals))
	}
	for tr, v := range vals {
		want := float64(tr) + workload.NewDerived(5, "trials-test", 0, tr).Uniform(0, 1)
		if v != want {
			t.Fatalf("trial %d = %v, want %v", tr, v, want)
		}
	}
}
