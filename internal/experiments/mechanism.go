package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// AblationCapacity studies Theorem 7's knob empirically: as bidder
// capacities Θ grow (β = min Θ_i/|S_ij| grows), the theoretical
// competitive bound αβ/(β−1) tightens toward α and the measured long-run
// cost of MSOA approaches the per-round offline optimum sum. Capacity
// factor 1 means the tightest generator default; larger factors multiply
// every Θ_i.
func AblationCapacity(cfg Config) (*AblationResult, error) {
	c := cfg.withDefaults()
	n := 25
	rounds := 12
	if c.Quick {
		n = 10
		rounds = 4
	}
	factors := []float64{1, 1.5, 2, 3, 5}
	type cell struct {
		cost, opt, alpha, beta float64
		exactOpt, totalOpt     int
	}
	cells, err := runSweep(c, "ablation-capacity", len(factors), func(rng *workload.Rand, p, _ int) (cell, error) {
		factor := factors[p]
		stage := stageConfig(n, 100, 2)
		scn := workload.Online(rng, workload.OnlineConfig{
			Rounds:     rounds,
			Stage:      stage,
			CapacityLo: stage.CoverHi + 1,
			CapacityHi: 2 * (stage.CoverHi + 1),
		})
		for b := range scn.Capacity {
			scn.Capacity[b] = int(float64(scn.Capacity[b]) * factor)
		}
		mcfg := scn.Config(c.auctionOptions(false))
		run, err := runOnline(scn.TrueRounds, mcfg, c.optOptions())
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation capacity factor %v: %w", factor, err)
		}
		v := cell{
			cost:     run.SocialCost + penalty(run),
			opt:      run.OptimalSum,
			exactOpt: run.ExactOpt,
			totalOpt: run.TotalOpt,
		}

		// Empirical α: the max per-round certified ratio of plain SSAM
		// on the same instances.
		v.alpha = 1.0
		for _, r := range scn.TrueRounds {
			out, err := core.SSAM(r.Instance, c.auctionOptions(false))
			if err != nil {
				continue
			}
			if rr := out.Dual.Ratio(); rr > v.alpha {
				v.alpha = rr
			}
		}
		v.beta = minBeta(mcfg, scn.TrueRounds)
		return v, nil
	})
	if err != nil {
		return nil, err
	}

	measured := metrics.NewSeries("measured ratio")
	bound := metrics.NewSeries("bound αβ/(β−1)")
	betaSeries := metrics.NewSeries("β")
	var tally exactTally
	for p, trials := range cells {
		var cost, opt, betaAcc, alphaAcc metrics.Running
		for _, v := range trials {
			tally.addCounts(v.exactOpt, v.totalOpt)
			cost.Add(v.cost)
			opt.Add(v.opt)
			alphaAcc.Add(v.alpha)
			betaAcc.Add(v.beta)
		}
		factor := factors[p]
		measured.Add(factor, meanRatio(&cost, &opt))
		beta := betaAcc.Mean()
		alpha := alphaAcc.Mean()
		if beta > 1 {
			bound.Add(factor, alpha*beta/(beta-1))
		}
		betaSeries.Add(factor, beta)
	}
	return &AblationResult{
		Title:  "Ablation: capacity slack β vs online performance (x = capacity factor)",
		XLabel: "capacity factor",
		Series: []*metrics.Series{measured, bound, betaSeries},
		Notes: []string{
			"Theorem 7: cost/OPT ≤ αβ/(β−1); the bound tightens as capacities relax",
			fmt.Sprintf("exact offline optima: %.0f%%", tally.fraction()*100),
		},
	}, nil
}

func minBeta(cfg core.MSOAConfig, rounds []core.Round) float64 {
	beta := 0.0
	first := true
	for _, r := range rounds {
		for i := range r.Instance.Bids {
			b := &r.Instance.Bids[i]
			theta, ok := cfg.Capacity[b.Bidder]
			if !ok || theta <= 0 || len(b.Covers) == 0 {
				continue
			}
			ratio := float64(theta) / float64(len(b.Covers))
			if first || ratio < beta {
				beta, first = ratio, false
			}
		}
	}
	if first {
		return 0
	}
	return beta
}

// TruthfulnessSweepResult is the empirical mechanism-validation sweep: for
// random instances and random unilateral price misreports, how often does
// a deviation beat truthful bidding, and by how much? The paper proves
// zero for SSAM (Theorem 4); this sweep checks the implementation and
// quantifies the multi-bid caveat discussed in DESIGN.md.
type TruthfulnessSweepResult struct {
	// Deviations is the number of (instance, bid, misreport) probes.
	Deviations int
	// ViolationsSingle counts profitable deviations with J=1 (must be 0).
	ViolationsSingle int
	// ViolationsMulti counts profitable deviations with J=2 caused by
	// cross-alternative switching (expected rare; reported honestly).
	ViolationsMulti int
	// MaxGainMulti is the largest observed profitable-deviation gain with
	// J=2, relative to the truthful utility baseline.
	MaxGainMulti float64
}

// TruthfulnessSweep probes truthfulness empirically. Each probed instance
// is one trial of the sweep runner, so the (instance × deviation) grid
// fans out across the trial pool.
func TruthfulnessSweep(cfg Config) (*TruthfulnessSweepResult, error) {
	c := cfg.withDefaults()
	instances := 30
	if c.Quick {
		instances = 8
	}
	factors := []float64{0.5, 0.8, 1.2, 1.6, 2.5}
	type cell struct {
		deviations, single, multi int
		maxGain                   float64
	}
	cells, err := runTrials(c, "truthfulness", instances, func(rng *workload.Rand, _ int) (cell, error) {
		var v cell
		for _, j := range []int{1, 2} {
			ins := workload.Instance(rng, workload.InstanceConfig{
				Bidders: 8 + rng.Intn(8), BidsPerBidder: j,
				DemandLo: 2, DemandHi: 8, UnitsLo: 1, UnitsHi: 3,
			})
			truthful, err := core.SSAM(ins, c.auctionOptions(true))
			if err != nil {
				return cell{}, fmt.Errorf("experiments: truthfulness sweep: %w", err)
			}
			reserveIdx := len(ins.Bids) - 1 // platform reserve: not strategic
			for target := 0; target < reserveIdx; target++ {
				base := truthful.Utility(ins, target)
				for _, f := range factors {
					dev := ins.Clone()
					dev.Bids[target].Price = ins.Bids[target].TrueCost * f
					out, err := core.SSAM(dev, c.auctionOptions(true))
					if err != nil {
						return cell{}, fmt.Errorf("experiments: truthfulness sweep deviation: %w", err)
					}
					v.deviations++
					utility := 0.0
					if out.Won(target) {
						utility = out.Payments[target] - ins.Bids[target].TrueCost
					}
					if utility > base+1e-6 {
						if j == 1 {
							v.single++
						} else {
							v.multi++
							if gain := utility - base; gain > v.maxGain {
								v.maxGain = gain
							}
						}
					}
				}
			}
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}

	res := &TruthfulnessSweepResult{}
	for _, v := range cells {
		res.Deviations += v.deviations
		res.ViolationsSingle += v.single
		res.ViolationsMulti += v.multi
		if v.maxGain > res.MaxGainMulti {
			res.MaxGainMulti = v.maxGain
		}
	}
	return res, nil
}

// Render formats the sweep result.
func (r *TruthfulnessSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("Mechanism validation: empirical truthfulness sweep\n")
	fmt.Fprintf(&b, "deviations probed:              %d\n", r.Deviations)
	fmt.Fprintf(&b, "profitable deviations (J=1):    %d (Theorem 4 requires 0)\n", r.ViolationsSingle)
	fmt.Fprintf(&b, "profitable deviations (J=2):    %d (cross-alternative switching; see DESIGN.md)\n", r.ViolationsMulti)
	if r.ViolationsMulti > 0 {
		fmt.Fprintf(&b, "max multi-bid deviation gain:   %.4f\n", r.MaxGainMulti)
	}
	return b.String()
}
