package experiments

import (
	"errors"
	"fmt"

	"edgeauction/internal/core"
	"edgeauction/internal/optimal"
)

// onlineRun is the shared online-experiment engine: it runs an MSOA
// configuration over a round sequence and accumulates the mechanism's
// social cost and payments, plus the offline denominator — the sum of
// per-round offline optima over the SAME candidate sets (bids outside a
// bidder's participation window are excluded for the offline solver too,
// since no clairvoyance puts an absent bidder in the room).
//
// The per-round-optimum sum relaxes the lifetime capacity constraint (11),
// so it LOWER-bounds the true offline multi-round optimum; ratios against
// it over-state (never under-state) MSOA's true competitive performance.
type onlineRun struct {
	SocialCost float64
	Payment    float64
	OptimalSum float64
	Infeasible int
	Rounds     int
	// Penalties is the platform's penalty income over the run, non-zero
	// only for mechanisms that settle futures defaults (the double
	// auction). The platform's net outlay is Payment − Penalties.
	Penalties float64
	// ExactOpt and TotalOpt count how many per-round denominators the
	// exact solver closed vs how many were computed at all, so drivers can
	// report the exact-optimum share instead of silently mixing optima
	// with lower bounds.
	ExactOpt, TotalOpt int
}

func runOnline(rounds []core.Round, cfg core.MSOAConfig, opt optimal.Options) (*onlineRun, error) {
	return runOnlineOpt(rounds, cfg, opt, true)
}

// runOnlineCostOnly runs the mechanism without computing the offline
// denominators — for experiments that only compare mechanism costs, where
// the exact solves would dominate the wall time for no benefit.
func runOnlineCostOnly(rounds []core.Round, cfg core.MSOAConfig) (*onlineRun, error) {
	return runOnlineOpt(rounds, cfg, optimal.Options{}, false)
}

func runOnlineOpt(rounds []core.Round, cfg core.MSOAConfig, opt optimal.Options, needDenominator bool) (*onlineRun, error) {
	m := core.NewMSOA(cfg)
	run := &onlineRun{}
	for _, r := range rounds {
		run.Rounds++
		res := m.RunRound(r)
		if res.Err != nil {
			run.Infeasible++
			continue
		}
		run.SocialCost += res.Outcome.SocialCost
		run.Payment += res.Outcome.TotalPayment()

		if !needDenominator {
			continue
		}
		den, isExact, err := roundOptimum(r, cfg, opt)
		if err != nil {
			if errors.Is(err, optimal.ErrInfeasible) {
				// Window filtering can make the stand-alone round
				// uncoverable even though MSOA covered it with bids the
				// windows admitted; in that case fall back to the
				// mechanism's own cost as a (weak) denominator.
				run.OptimalSum += res.Outcome.SocialCost
				run.TotalOpt++
				continue
			}
			return nil, err
		}
		run.OptimalSum += den
		run.TotalOpt++
		if isExact {
			run.ExactOpt++
		}
	}
	if tp, ok := m.Mechanism().(interface{ TotalPenalties() float64 }); ok {
		run.Penalties = tp.TotalPenalties()
	}
	return run, nil
}

// roundOptimum computes the offline denominator of one round, with the
// round's bids filtered by the bidders' participation windows. The bool
// reports whether the solver closed (true optimum) or fell back to the LP
// lower bound.
func roundOptimum(r core.Round, cfg core.MSOAConfig, opt optimal.Options) (float64, bool, error) {
	ins := r.Instance
	if len(cfg.Windows) > 0 {
		filtered := &core.Instance{Demand: ins.Demand}
		for _, b := range ins.Bids {
			if w, ok := cfg.Windows[b.Bidder]; ok && !w.Contains(r.T) {
				continue
			}
			filtered.Bids = append(filtered.Bids, b)
		}
		ins = filtered
	}
	res, err := optimal.Solve(ins, opt)
	if err != nil {
		return 0, false, fmt.Errorf("experiments: round %d optimum: %w", r.T, err)
	}
	if res.Exact {
		return res.Cost, true, nil
	}
	return res.LowerBound, false, nil
}

// ratio returns the run's performance ratio, 0 when undefined.
func (r *onlineRun) ratio() float64 {
	if r.OptimalSum <= 0 {
		return 0
	}
	return r.SocialCost / r.OptimalSum
}
