package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/baseline"
	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// AblationResult compares a design choice against its removal across a
// parameter sweep. Lower is better for cost columns.
type AblationResult struct {
	Title string
	// XLabel names the sweep axis; empty means "microservices".
	XLabel string
	Series []*metrics.Series
	Notes  []string
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString(r.Title)
	b.WriteByte('\n')
	xLabel := r.XLabel
	if xLabel == "" {
		xLabel = "microservices"
	}
	b.WriteString(metrics.Table(xLabel, r.Series...))
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// AblationScaledPrice quantifies the ψ price augmentation (Algorithm 2,
// line 8). The effect only materializes when capacity protection has
// something to protect AGAINST, so the scenario alternates supply regimes:
// in "abundant" rounds both a cheap capacity-limited bidder and mid-priced
// alternatives are present; in "scarce" rounds only the cheap bidder and
// an expensive fallback remain. A myopic mechanism (ψ disabled) burns the
// cheap bidder's capacity during abundant rounds and is forced onto the
// expensive fallback when scarcity hits; the ψ augmentation inflates the
// cheap bidder's scaled price after wins, steering abundant rounds to the
// alternatives and preserving the cheap capacity for the scarce rounds.
//
// The x axis is the number of scarce rounds in a 12-round horizon.
func AblationScaledPrice(cfg Config) (*AblationResult, error) {
	c := cfg.withDefaults()
	scarceCounts := []int{2, 4, 6, 8}
	if c.Quick {
		scarceCounts = []int{2, 4}
	}
	const horizon = 12
	type cell struct{ with, without float64 }
	cells, err := runSweep(c, "ablation-scaledprice", len(scarceCounts), func(rng *workload.Rand, p, _ int) (cell, error) {
		rounds := scarcityScenario(rng, horizon, scarceCounts[p])
		cfgOn := core.MSOAConfig{
			// The cheap bidder (id 1) can win only a few times; all
			// other bidders are unconstrained.
			Capacity: map[int]int{1: 3},
			Alpha:    1,
			Options:  c.auctionOptions(true),
		}
		runWith, err := runOnlineCostOnly(rounds, cfgOn)
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation scaled-price (on): %w", err)
		}
		cfgOff := cfgOn
		cfgOff.DisableScaledPrice = true
		runWithout, err := runOnlineCostOnly(rounds, cfgOff)
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation scaled-price (off): %w", err)
		}
		return cell{
			with:    runWith.SocialCost + penalty(runWith),
			without: runWithout.SocialCost + penalty(runWithout),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	with := metrics.NewSeries("cost with ψ-scaling")
	without := metrics.NewSeries("cost without ψ-scaling")
	for p, trials := range cells {
		var costWith, costWithout metrics.Running
		for _, v := range trials {
			costWith.Add(v.with)
			costWithout.Add(v.without)
		}
		with.Add(float64(scarceCounts[p]), costWith.Mean())
		without.Add(float64(scarceCounts[p]), costWithout.Mean())
	}
	return &AblationResult{
		Title:  "Ablation: ψ-scaled prices in MSOA (cost vs number of scarce rounds in a 12-round horizon)",
		XLabel: "scarce rounds",
		Series: []*metrics.Series{with, without},
		Notes:  []string{"scarce rounds offer only the capacity-limited cheap bidder and an expensive fallback"},
	}, nil
}

// scarcityScenario builds the alternating-regime rounds for the ψ
// ablation: `scarce` rounds, placed at the END of the horizon, offer only
// the cheap capacity-limited bidder 1 (price ~10) and an expensive
// fallback bidder (price ~34); abundant rounds also offer mid-priced
// (~16-22) unconstrained bidders. Every round demands one unit for one
// needy microservice.
func scarcityScenario(rng *workload.Rand, horizon, scarce int) []core.Round {
	rounds := make([]core.Round, 0, horizon)
	for t := 1; t <= horizon; t++ {
		ins := &core.Instance{Demand: []int{1}}
		// The ψ increment per win is J·|S|/(α·Θ²) ≈ 1.1 here, so the
		// cheap-vs-mid gap must be narrow (~2) for the augmentation to
		// redirect selections within the capacity budget — with a wide
		// gap ψ provides amortized accounting but no behavioural change,
		// which the ablation would (correctly but unhelpfully) report as
		// a tie.
		cheap := rng.Uniform(10, 10.5)
		dear := rng.Uniform(34, 35)
		ins.Bids = append(ins.Bids,
			core.Bid{Bidder: 1, Price: cheap, TrueCost: cheap, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 2, Price: dear, TrueCost: dear, Covers: []int{0}, Units: 1},
		)
		if t <= horizon-scarce {
			mid := rng.Uniform(11.8, 12.8)
			ins.Bids = append(ins.Bids,
				core.Bid{Bidder: 3, Price: mid, TrueCost: mid, Covers: []int{0}, Units: 1})
		}
		rounds = append(rounds, core.Round{T: t, Instance: ins})
	}
	return rounds
}

// penalty charges infeasible rounds at the scenario's observed mean round
// cost, so a variant cannot look cheap by failing to procure.
func penalty(run *onlineRun) float64 {
	served := run.Rounds - run.Infeasible
	if run.Infeasible == 0 || served <= 0 {
		return 0
	}
	meanRound := run.SocialCost / float64(served)
	return 2 * meanRound * float64(run.Infeasible)
}

// AblationPayments quantifies the cost of truthfulness: critical-value
// payments vs first-price payments on identical instances. First-price
// spends less per round but is manipulable; the overpayment ratio is the
// premium the platform pays for dominant-strategy truthfulness.
func AblationPayments(cfg Config) (*AblationResult, error) {
	c := cfg.withDefaults()
	sizes := c.sizes()
	type cell struct{ crit, first float64 }
	cells, err := runSweep(c, "ablation-payments", len(sizes), func(rng *workload.Rand, p, _ int) (cell, error) {
		n := sizes[p]
		ins := workload.Instance(rng, stageConfig(n, 100, 2))
		outCrit, err := core.SSAM(ins, c.auctionOptions(true))
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation payments n=%d: %w", n, err)
		}
		firstOpts := c.auctionOptions(true)
		firstOpts.Payment = core.FirstPrice
		outFirst, err := core.SSAM(ins, firstOpts)
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation payments n=%d: %w", n, err)
		}
		return cell{crit: outCrit.TotalPayment(), first: outFirst.TotalPayment()}, nil
	})
	if err != nil {
		return nil, err
	}

	critical := metrics.NewSeries("payment critical-value")
	first := metrics.NewSeries("payment first-price")
	premium := metrics.NewSeries("truthfulness premium")
	for p, trials := range cells {
		var payCrit, payFirst metrics.Running
		for _, v := range trials {
			payCrit.Add(v.crit)
			payFirst.Add(v.first)
		}
		critical.Add(float64(sizes[p]), payCrit.Mean())
		first.Add(float64(sizes[p]), payFirst.Mean())
		ratio := 0.0
		if payFirst.Mean() > 0 {
			ratio = payCrit.Mean() / payFirst.Mean()
		}
		premium.Add(float64(sizes[p]), ratio)
	}
	return &AblationResult{
		Title:  "Ablation: critical-value vs first-price payments (platform outlay)",
		Series: []*metrics.Series{critical, first, premium},
		Notes:  []string{"premium = critical/first; first-price is NOT truthful"},
	}, nil
}

// AblationGreedyMetric compares the paper's price-per-marginal-coverage
// greedy against a lowest-absolute-price greedy and against random
// selection.
func AblationGreedyMetric(cfg Config) (*AblationResult, error) {
	c := cfg.withDefaults()
	sizes := c.sizes()
	type cell struct{ perCov, lowest, random float64 }
	cells, err := runSweep(c, "ablation-greedy", len(sizes), func(rng *workload.Rand, p, _ int) (cell, error) {
		n := sizes[p]
		ins := workload.Instance(rng, stageConfig(n, 100, 2))
		outA, err := core.SSAM(ins, c.auctionOptions(true))
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation greedy n=%d: %w", n, err)
		}
		lowestOpts := c.auctionOptions(true)
		lowestOpts.Metric = core.LowestPrice
		outB, err := core.SSAM(ins, lowestOpts)
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation greedy n=%d: %w", n, err)
		}
		outR, err := baseline.Random(ins, rng)
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation greedy n=%d: %w", n, err)
		}
		return cell{perCov: outA.SocialCost, lowest: outB.SocialCost, random: outR.SocialCost}, nil
	})
	if err != nil {
		return nil, err
	}

	perCov := metrics.NewSeries("cost price/coverage greedy")
	lowest := metrics.NewSeries("cost lowest-price greedy")
	random := metrics.NewSeries("cost random selection")
	for p, trials := range cells {
		var a, b, r metrics.Running
		for _, v := range trials {
			a.Add(v.perCov)
			b.Add(v.lowest)
			r.Add(v.random)
		}
		perCov.Add(float64(sizes[p]), a.Mean())
		lowest.Add(float64(sizes[p]), b.Mean())
		random.Add(float64(sizes[p]), r.Mean())
	}
	return &AblationResult{
		Title:  "Ablation: greedy selection metric (single-stage social cost)",
		Series: []*metrics.Series{perCov, lowest, random},
	}, nil
}

// AblationFixedPrice pits the auction against the §I flat-pricing
// alternative. The posted price is a PER-UNIT price, so meaningful levels
// depend on the workload's unit-cost distribution (bid price over coverage
// capacity); the experiment calibrates three posted levels to the 5th,
// 50th, and 95th percentile of the market's unit costs. A posted price
// below most unit costs attracts too little supply (under-pricing:
// coverage < 1); a high posted price covers everything but pays every
// seller the top rate (over-pricing). The auction adapts per instance and
// pays competitive rates.
func AblationFixedPrice(cfg Config) (*AblationResult, error) {
	c := cfg.withDefaults()
	sizes := c.sizes()
	labels := []string{"p05", "p50", "p95"}
	quantiles := []float64{0.05, 0.50, 0.95}
	type cell struct {
		auction  float64
		coverage [3]float64
		payment  [3]float64
	}
	cells, err := runSweep(c, "ablation-fixedprice", len(sizes), func(rng *workload.Rand, p, _ int) (cell, error) {
		n := sizes[p]
		ins := workload.Instance(rng, stageConfig(n, 100, 2))
		out, err := core.SSAM(ins, c.auctionOptions(true))
		if err != nil {
			return cell{}, fmt.Errorf("experiments: ablation fixed-price n=%d: %w", n, err)
		}
		v := cell{auction: out.TotalPayment()}
		posted := unitCostQuantiles(ins, n, quantiles)
		for i := range labels {
			res, err := baseline.FixedPrice(ins, posted[i])
			if err != nil && res == nil {
				return cell{}, fmt.Errorf("experiments: ablation fixed-price n=%d posted=%v: %w", n, posted[i], err)
			}
			v.coverage[i] = res.CoveredFraction
			v.payment[i] = res.Outcome.TotalPayment()
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}

	auction := metrics.NewSeries("auction payment")
	coverage := make([]*metrics.Series, len(labels))
	payment := make([]*metrics.Series, len(labels))
	for i, l := range labels {
		coverage[i] = metrics.NewSeries("coverage posted=" + l)
		payment[i] = metrics.NewSeries("payment posted=" + l)
	}
	for p, trials := range cells {
		var auc metrics.Running
		var cov, pay [3]metrics.Running
		for _, v := range trials {
			auc.Add(v.auction)
			for i := range labels {
				cov[i].Add(v.coverage[i])
				pay[i].Add(v.payment[i])
			}
		}
		auction.Add(float64(sizes[p]), auc.Mean())
		for i := range labels {
			coverage[i].Add(float64(sizes[p]), cov[i].Mean())
			payment[i].Add(float64(sizes[p]), pay[i].Mean())
		}
	}
	series := []*metrics.Series{auction}
	for i := range labels {
		series = append(series, payment[i], coverage[i])
	}
	return &AblationResult{
		Title:  "Ablation: auction vs posted fixed prices (payment and demand coverage)",
		Series: series,
		Notes:  []string{"posted levels = {5th, 50th, 95th} percentile of market unit costs; coverage < 1 marks the under-pricing failure mode of §I"},
	}, nil
}

// unitCostQuantiles computes the requested quantiles of the market bids'
// per-coverage-unit true costs (reserve pool excluded).
func unitCostQuantiles(ins *core.Instance, marketBidders int, qs []float64) []float64 {
	sample := metrics.NewSample(len(ins.Bids))
	for _, b := range ins.Bids {
		if workload.IsReserveBid(b, marketBidders) {
			continue
		}
		capacity := 0
		for _, k := range b.Covers {
			u := b.Units
			if u > ins.Demand[k] {
				u = ins.Demand[k]
			}
			capacity += u
		}
		if capacity > 0 {
			sample.Add(b.TrueCost / float64(capacity))
		}
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = sample.Quantile(q)
	}
	return out
}
