package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/federation"
	"edgeauction/internal/metrics"
	"edgeauction/internal/topology"
	"edgeauction/internal/workload"
)

// FederationResult quantifies the multi-cloud extension (§II's backhaul
// substrate): how much demand goes uncovered without cross-cloud
// borrowing, and what the borrowing premium costs, as the backhaul latency
// premium grows.
type FederationResult struct {
	// CoveredLocal is the fraction of cloud-rounds cleared by local-only
	// markets (independent of premium; shown as a flat reference).
	CoveredLocal float64
	// Covered is the fraction of cloud-rounds cleared (locally or
	// federated) per premium level.
	Covered *metrics.Series
	// Cost is the mean social cost per cleared cloud-round per premium.
	Cost *metrics.Series
	// Borrowed is the mean borrowed coverage slots per round per premium.
	Borrowed *metrics.Series
}

// federationCell is one (premium, trial) multi-round federation run.
type federationCell struct {
	cleared, total, borrowed int
	costSum                  float64
	costN                    int
	localCleared, localTotal int
}

// Federation runs the borrowing sweep.
func Federation(cfg Config) (*FederationResult, error) {
	c := cfg.withDefaults()
	premiums := []float64{0.05, 0.25, 1, 4}
	rounds := 8
	clouds := 3
	if c.Quick {
		premiums = []float64{0.25, 4}
		rounds = 3
	}

	cells, err := runSweep(c, "federation", len(premiums), func(_ *workload.Rand, p, trial int) (federationCell, error) {
		// The topology is shared by every cell and the market draws are
		// keyed by trial alone (not by premium), so every premium level is
		// compared on identical substrates and identical market sequences —
		// a paired comparison, as in the serial driver.
		topo := topology.Generate(workload.NewDerived(c.Seed, "federation-topology", 0, 0),
			topology.Config{Clouds: clouds, Users: 30})
		rng := workload.NewDerived(c.Seed, "federation-markets", 0, trial)
		fed, err := federation.New(federation.Config{
			Topology:       topo,
			LatencyPremium: premiums[p],
			Auction:        core.MSOAConfig{DefaultCapacity: 10},
		})
		if err != nil {
			return federationCell{}, fmt.Errorf("experiments: federation: %w", err)
		}
		var v federationCell
		for t := 1; t <= rounds; t++ {
			markets := federationMarkets(rng, clouds)
			rr, err := fed.RunRound(t, markets)
			if err != nil {
				return federationCell{}, fmt.Errorf("experiments: federation round: %w", err)
			}
			for _, cr := range rr.Clouds {
				if cr.Outcome == nil && cr.Err == nil {
					continue // no demand
				}
				v.total++
				if cr.Err == nil {
					v.cleared++
					v.costSum += cr.Outcome.SocialCost
					v.costN++
				}
				// Local-only reference: a cloud round counts as locally
				// cleared iff it did not need federation.
				v.localTotal++
				if cr.Err == nil && !cr.Federated {
					v.localCleared++
				}
			}
			v.borrowed += rr.BorrowedSlots
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}

	res := &FederationResult{
		Covered:  metrics.NewSeries("covered fraction"),
		Cost:     metrics.NewSeries("cost per cleared round"),
		Borrowed: metrics.NewSeries("borrowed slots per round"),
	}
	var localCleared, localTotal int
	for p, trials := range cells {
		var cleared, total, borrowed, costN int
		var costSum float64
		for _, v := range trials {
			cleared += v.cleared
			total += v.total
			borrowed += v.borrowed
			costSum += v.costSum
			costN += v.costN
			// The local-only reference is premium-independent; tally it
			// from the first premium level only, like the serial driver
			// did.
			if p == 0 {
				localCleared += v.localCleared
				localTotal += v.localTotal
			}
		}
		frac := 0.0
		if total > 0 {
			frac = float64(cleared) / float64(total)
		}
		meanCost := 0.0
		if costN > 0 {
			meanCost = costSum / float64(costN)
		}
		res.Covered.Add(premiums[p], frac)
		res.Cost.Add(premiums[p], meanCost)
		res.Borrowed.Add(premiums[p], float64(borrowed)/float64(c.Trials*rounds))
	}
	if localTotal > 0 {
		res.CoveredLocal = float64(localCleared) / float64(localTotal)
	}
	return res, nil
}

// federationMarkets draws per-cloud markets with asymmetric supply: cloud
// 1 is balanced, cloud 2 supply-rich, cloud 3 demand-heavy, mirroring the
// motivating scenario of examples/federation.
func federationMarkets(rng *workload.Rand, clouds int) []federation.CloudMarket {
	markets := make([]federation.CloudMarket, 0, clouds)
	for cl := 1; cl <= clouds; cl++ {
		needy, suppliers := 2, 4
		switch cl % 3 {
		case 2: // supply-rich
			needy, suppliers = 1, 6
		case 0: // demand-heavy
			needy, suppliers = 3, 1
		}
		ins := &core.Instance{}
		slots := needy
		if slots < 3 {
			slots = 3
		}
		for k := 0; k < slots; k++ {
			d := 0
			if k < needy {
				d = rng.UniformInt(1, 2)
			}
			ins.Demand = append(ins.Demand, d)
		}
		for s := 0; s < suppliers; s++ {
			price := rng.Uniform(10, 35)
			ins.Bids = append(ins.Bids, core.Bid{
				Bidder:   cl*1000 + s,
				Price:    price,
				TrueCost: price,
				Covers:   rng.Subset(slots, 1+rng.Intn(slots)),
				Units:    rng.UniformInt(2, 4),
			})
		}
		markets = append(markets, federation.CloudMarket{Cloud: cl, Instance: ins})
	}
	return markets
}

// Render formats the sweep.
func (r *FederationResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: cross-cloud borrowing vs backhaul latency premium\n")
	b.WriteString(metrics.Table("latency premium", r.Covered, r.Cost, r.Borrowed))
	fmt.Fprintf(&b, "local-only coverage (no federation): %.2f\n", r.CoveredLocal)
	return b.String()
}
