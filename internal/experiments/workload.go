package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/sim"
	"edgeauction/internal/topology"
	"edgeauction/internal/workload"
)

// Workload sweeps: the topology-driven scenarios where the AHP demand
// indicators are computed by the discrete-event simulator from call-graph
// load (waiting, processing rate, utilization emerge from queueing) and
// auction outcomes feed back into the next round's fair shares via
// Simulator.ApplyTransfers — a closed loop, with nothing sampled i.i.d.
// on the demand path. All three drivers run head-to-head across
// mechanisms through Config.Mechanism, like every other sweep.

// transferUnitRate converts auctioned coverage units into simulator
// work-rate: one unit is 10 work units per time unit, mirroring the
// bridge's sizing of seller bids (one unit per 10 spare work-rate).
const transferUnitRate = 10

// workloadGraph resolves the topology a driver runs: Config.Graph when
// set (the -topology flag), else the named builtin.
func (c Config) workloadGraph(builtin string) (*workload.ServiceGraph, error) {
	if c.Graph != nil {
		if err := c.Graph.Validate(); err != nil {
			return nil, err
		}
		return c.Graph, nil
	}
	return workload.BuiltinGraph(builtin)
}

// workloadRun is one closed-loop simulation: sim -> bridge -> auction ->
// transfers -> sim.
type workloadRun struct {
	reports      []*sim.RoundReport
	auctioned    int
	infeasible   int
	needyPeak    int
	cost         float64
	payments     float64
	reserveUnits int
	totalUnits   int
	sla          int
}

// runWorkloadLoop drives the closed loop for one scenario cell. Winners
// adjust the next round's fair shares: each winning bid grants its
// covered needy microservices Units x transferUnitRate work-rate (split
// evenly across the cover) and drains the same amount from the selling
// microservice; reserve bids inject platform capacity without draining
// anyone.
func runWorkloadLoop(c Config, g *workload.ServiceGraph, topo *topology.Topology, rounds int, simSeed, bridgeSeed int64) (*workloadRun, error) {
	simulator, err := sim.New(sim.Config{Graph: g, Topology: topo, Rounds: rounds, Seed: simSeed})
	if err != nil {
		return nil, fmt.Errorf("experiments: workload simulator: %w", err)
	}
	// MaxUnits keeps saturated services (utilization pinned at 1 while
	// backlogged) from demanding unbounded coverage through the AHP rate
	// factor's utilization pole, and matches the sell side's granularity
	// (spare/10 units per bid). NeedyQueue 2 keeps services whose only
	// backlog is the round's in-flight tail request out of the demand side.
	bridge, err := sim.NewBridge(simulator, sim.BridgeConfig{Seed: bridgeSeed, MaxUnits: 10, NeedyQueue: 2})
	if err != nil {
		return nil, fmt.Errorf("experiments: workload bridge: %w", err)
	}
	auction := core.NewMSOA(core.MSOAConfig{
		// Sellers may participate every round of the sweep; lifetime
		// capacity is not the constraint under study here.
		DefaultCapacity:    4 * rounds,
		CapacityExemptFrom: sim.ReserveBidderID,
		Options:            c.auctionOptions(true),
		Mechanism:          c.Mechanism,
	})
	run := &workloadRun{}
	for r := 0; r < rounds; r++ {
		rep := simulator.RunRound()
		run.reports = append(run.reports, rep)
		for _, v := range rep.SLAViolations {
			run.sla += v
		}
		ar := bridge.Convert(rep)
		n := ar.Round.Instance.NumNeedy()
		if n == 0 {
			continue
		}
		if n > run.needyPeak {
			run.needyPeak = n
		}
		res := auction.RunRound(ar.Round)
		if res.Err != nil {
			run.infeasible++
			continue
		}
		run.auctioned++
		run.cost += res.Outcome.SocialCost
		run.payments += res.Outcome.TotalPayment()
		delta := make(map[int]float64)
		for _, w := range res.Outcome.Winners {
			bid := ar.Round.Instance.Bids[w]
			run.totalUnits += bid.Units
			grant := float64(bid.Units) * transferUnitRate / float64(len(bid.Covers))
			for _, k := range bid.Covers {
				delta[ar.NeedyIDs[k]] += grant
			}
			if bid.Bidder >= sim.ReserveBidderID {
				run.reserveUnits += bid.Units
			} else {
				delta[bid.Bidder] -= float64(bid.Units) * transferUnitRate
			}
		}
		simulator.ApplyTransfers(delta)
	}
	return run, nil
}

// meanOver averages f over all rounds of a run.
func (r *workloadRun) meanOver(f func(rep *sim.RoundReport) float64) float64 {
	if len(r.reports) == 0 {
		return 0
	}
	var acc metrics.Running
	for _, rep := range r.reports {
		acc.Add(f(rep))
	}
	return acc.Mean()
}

// hotServiceIndex picks the overload scenario's hot service: the one
// named "hot", else the highest-visit-rate service.
func hotServiceIndex(g *workload.ServiceGraph) int {
	if i := g.Index("hot"); i >= 0 {
		return i
	}
	best, bestRate := 0, -1.0
	for i, rate := range g.VisitRates(1) {
		if rate > bestRate {
			best, bestRate = i, rate
		}
	}
	return best
}

// callerIndices lists the services with a call edge into target.
func callerIndices(g *workload.ServiceGraph, target int) []int {
	name := g.Services[target].Name
	var out []int
	for i, s := range g.Services {
		for _, c := range s.Calls {
			if c.To == name {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// WorkloadOverloadResult is the cascading-overload sweep: one hot
// fan-in service's work is scaled up, and the starvation propagates —
// through the auction — into its colocated callers' fair shares.
type WorkloadOverloadResult struct {
	// HotBacklog is the hot service's mean end-of-round queue length.
	HotBacklog *metrics.Series
	// HotUtil is the hot service's mean utilization.
	HotUtil *metrics.Series
	// CallerAlloc is the callers' mean fair-share allocation — the
	// propagation signal: it falls as the hot service's demand rises.
	CallerAlloc *metrics.Series
	// CallerWait is the callers' mean request waiting time.
	CallerWait *metrics.Series
	// Cost is the mean per-scenario social cost of the auctioned rounds.
	Cost *metrics.Series
	// InfeasibleRounds counts skipped auction rounds across the sweep.
	InfeasibleRounds int
}

type overloadCell struct {
	hotBacklog, hotUtil, callerAlloc, callerWait, cost float64
	infeasible                                         int
}

// WorkloadOverload runs the cascading-overload sweep over the hot
// service's work multiplier.
func WorkloadOverload(cfg Config) (*WorkloadOverloadResult, error) {
	c := cfg.withDefaults()
	mults := []float64{1, 2, 3, 4}
	rounds := 40
	if c.Quick {
		mults = []float64{1, 3}
		rounds = 12
	}
	base, err := c.workloadGraph("overload")
	if err != nil {
		return nil, err
	}
	hot := hotServiceIndex(base)
	callers := callerIndices(base, hot)
	if len(callers) == 0 {
		return nil, fmt.Errorf("experiments: workload-overload: topology %q has no callers into %q", base.Name, base.Services[hot].Name)
	}
	hotID := hot + 1
	cells, err := runSweep(c, "workload-overload", len(mults), func(rng *workload.Rand, p, _ int) (overloadCell, error) {
		g := base.Clone()
		g.Services[hot].Work *= mults[p]
		run, err := runWorkloadLoop(c, g, nil, rounds, rng.Int63(), rng.Int63())
		if err != nil {
			return overloadCell{}, err
		}
		cell := overloadCell{cost: run.cost, infeasible: run.infeasible}
		cell.hotBacklog = run.meanOver(func(rep *sim.RoundReport) float64 {
			return float64(rep.QueueLengths[hotID])
		})
		cell.hotUtil = run.meanOver(func(rep *sim.RoundReport) float64 {
			return rep.Indicators[hotID].ExecutionRate
		})
		cell.callerAlloc = run.meanOver(func(rep *sim.RoundReport) float64 {
			var acc metrics.Running
			for _, ci := range callers {
				acc.Add(rep.Allocated[ci+1])
			}
			return acc.Mean()
		})
		cell.callerWait = run.meanOver(func(rep *sim.RoundReport) float64 {
			var acc metrics.Running
			for _, ci := range callers {
				acc.Add(rep.MeanWaiting[ci+1])
			}
			return acc.Mean()
		})
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &WorkloadOverloadResult{
		HotBacklog:  metrics.NewSeries("hot backlog"),
		HotUtil:     metrics.NewSeries("hot util"),
		CallerAlloc: metrics.NewSeries("caller alloc"),
		CallerWait:  metrics.NewSeries("caller wait"),
		Cost:        metrics.NewSeries("social cost"),
	}
	for p, trials := range cells {
		var backlog, util, alloc, wait, cost metrics.Running
		for _, cell := range trials {
			res.InfeasibleRounds += cell.infeasible
			backlog.Add(cell.hotBacklog)
			util.Add(cell.hotUtil)
			alloc.Add(cell.callerAlloc)
			wait.Add(cell.callerWait)
			cost.Add(cell.cost)
		}
		x := mults[p]
		res.HotBacklog.Add(x, backlog.Mean())
		res.HotUtil.Add(x, util.Mean())
		res.CallerAlloc.Add(x, alloc.Mean())
		res.CallerWait.Add(x, wait.Mean())
		res.Cost.Add(x, cost.Mean())
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *WorkloadOverloadResult) Render() string {
	var b strings.Builder
	b.WriteString("Workload: cascading overload — hot-service starvation propagating to callers' fair shares\n")
	b.WriteString(metrics.Table("hot work x",
		r.HotBacklog, r.HotUtil, r.CallerAlloc, r.CallerWait, r.Cost))
	fmt.Fprintf(&b, "infeasible rounds skipped: %d\n", r.InfeasibleRounds)
	return b.String()
}

// WorkloadSpikesResult is the correlated-demand-spike sweep: the flash
// crowd's height scales up, spiking several needy microservices in the
// same rounds.
type WorkloadSpikesResult struct {
	// NeedyPeak is the peak per-round needy count.
	NeedyPeak *metrics.Series
	// ReserveUnits counts units bought from the platform reserve — the
	// expensive fallback correlated spikes force.
	ReserveUnits *metrics.Series
	// Cost is the mean per-scenario social cost.
	Cost *metrics.Series
	// SLA is the mean per-scenario SLA-violation count.
	SLA *metrics.Series
	// InfeasibleRounds counts skipped auction rounds across the sweep.
	InfeasibleRounds int
}

type spikesCell struct {
	needyPeak, reserveUnits, cost, sla float64
	infeasible                         int
}

// WorkloadSpikes runs the correlated-spike sweep over the flash height.
func WorkloadSpikes(cfg Config) (*WorkloadSpikesResult, error) {
	c := cfg.withDefaults()
	heights := []float64{0, 2, 4, 8}
	rounds := 24
	if c.Quick {
		heights = []float64{0, 4}
		rounds = 12
	}
	base, err := c.workloadGraph("spikes")
	if err != nil {
		return nil, err
	}
	cells, err := runSweep(c, "workload-spikes", len(heights), func(rng *workload.Rand, p, _ int) (spikesCell, error) {
		g := base.Clone()
		for i := range g.Entries {
			if g.Entries[i].Arrivals.Process == workload.ArrivalFlash {
				g.Entries[i].Arrivals.Height = heights[p]
			}
		}
		for i := range g.Flows {
			if g.Flows[i].Arrivals.Process == workload.ArrivalFlash {
				g.Flows[i].Arrivals.Height = heights[p]
			}
		}
		run, err := runWorkloadLoop(c, g, nil, rounds, rng.Int63(), rng.Int63())
		if err != nil {
			return spikesCell{}, err
		}
		return spikesCell{
			needyPeak:    float64(run.needyPeak),
			reserveUnits: float64(run.reserveUnits),
			cost:         run.cost,
			sla:          float64(run.sla),
			infeasible:   run.infeasible,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &WorkloadSpikesResult{
		NeedyPeak:    metrics.NewSeries("peak needy"),
		ReserveUnits: metrics.NewSeries("reserve units"),
		Cost:         metrics.NewSeries("social cost"),
		SLA:          metrics.NewSeries("SLA misses"),
	}
	for p, trials := range cells {
		var peak, reserve, cost, sla metrics.Running
		for _, cell := range trials {
			res.InfeasibleRounds += cell.infeasible
			peak.Add(cell.needyPeak)
			reserve.Add(cell.reserveUnits)
			cost.Add(cell.cost)
			sla.Add(cell.sla)
		}
		x := heights[p]
		res.NeedyPeak.Add(x, peak.Mean())
		res.ReserveUnits.Add(x, reserve.Mean())
		res.Cost.Add(x, cost.Mean())
		res.SLA.Add(x, sla.Mean())
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *WorkloadSpikesResult) Render() string {
	var b strings.Builder
	b.WriteString("Workload: correlated demand spikes — flash-crowd height vs market stress\n")
	b.WriteString(metrics.Table("flash height",
		r.NeedyPeak, r.ReserveUnits, r.Cost, r.SLA))
	fmt.Fprintf(&b, "infeasible rounds skipped: %d\n", r.InfeasibleRounds)
	return b.String()
}

// WorkloadFrontierResult is the capacity-frontier stress sweep: per-cloud
// capacity shrinks until queueing and the reserve pool dominate.
type WorkloadFrontierResult struct {
	// SLA is the mean per-scenario SLA-violation count.
	SLA *metrics.Series
	// ReserveShare is the fraction of auctioned units bought from the
	// platform reserve.
	ReserveShare *metrics.Series
	// MeanWait is the mean request waiting time across services/rounds.
	MeanWait *metrics.Series
	// Cost is the mean per-scenario social cost.
	Cost *metrics.Series
	// InfeasibleRounds counts skipped auction rounds across the sweep.
	InfeasibleRounds int
}

type frontierCell struct {
	sla, reserveShare, wait, cost float64
	infeasible                    int
}

// WorkloadFrontier runs the capacity-frontier sweep over per-cloud
// capacity.
func WorkloadFrontier(cfg Config) (*WorkloadFrontierResult, error) {
	c := cfg.withDefaults()
	caps := []float64{120, 100, 80, 60, 40}
	rounds := 24
	if c.Quick {
		caps = []float64{100, 60}
		rounds = 12
	}
	base, err := c.workloadGraph("frontier")
	if err != nil {
		return nil, err
	}
	cells, err := runSweep(c, "workload-frontier", len(caps), func(rng *workload.Rand, p, _ int) (frontierCell, error) {
		topo := topology.Generate(rng.Fork(), topology.Config{CloudCapacity: caps[p]})
		run, err := runWorkloadLoop(c, base.Clone(), topo, rounds, rng.Int63(), rng.Int63())
		if err != nil {
			return frontierCell{}, err
		}
		cell := frontierCell{
			sla:        float64(run.sla),
			cost:       run.cost,
			infeasible: run.infeasible,
		}
		if run.totalUnits > 0 {
			cell.reserveShare = float64(run.reserveUnits) / float64(run.totalUnits)
		}
		cell.wait = run.meanOver(func(rep *sim.RoundReport) float64 {
			var acc metrics.Running
			// Graph-mode microservice ids are 1..N; iterate in id order so
			// the float accumulation is deterministic (map order is not).
			for id := 1; id <= len(rep.MeanWaiting); id++ {
				acc.Add(rep.MeanWaiting[id])
			}
			return acc.Mean()
		})
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &WorkloadFrontierResult{
		SLA:          metrics.NewSeries("SLA misses"),
		ReserveShare: metrics.NewSeries("reserve share"),
		MeanWait:     metrics.NewSeries("mean wait"),
		Cost:         metrics.NewSeries("social cost"),
	}
	for p, trials := range cells {
		var sla, share, wait, cost metrics.Running
		for _, cell := range trials {
			res.InfeasibleRounds += cell.infeasible
			sla.Add(cell.sla)
			share.Add(cell.reserveShare)
			wait.Add(cell.wait)
			cost.Add(cell.cost)
		}
		x := caps[p]
		res.SLA.Add(x, sla.Mean())
		res.ReserveShare.Add(x, share.Mean())
		res.MeanWait.Add(x, wait.Mean())
		res.Cost.Add(x, cost.Mean())
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *WorkloadFrontierResult) Render() string {
	var b strings.Builder
	b.WriteString("Workload: capacity frontier — per-cloud capacity vs queueing and reserve fallback\n")
	b.WriteString(metrics.Table("cloud capacity",
		r.SLA, r.ReserveShare, r.MeanWait, r.Cost))
	fmt.Fprintf(&b, "infeasible rounds skipped: %d\n", r.InfeasibleRounds)
	return b.String()
}
