package experiments

import (
	"strings"
	"testing"

	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// TestWorkloadOverloadPropagation is the acceptance demonstration of the
// topology-driven workload engine: scaling the hot fan-in service's work
// starves it (rising utilization and backlog), and — because the demand
// indicators are computed from the simulated load and auction outcomes
// feed back into fair shares — the starvation propagates to its
// colocated callers: they yield resources through winning bids, so their
// mean allocation falls while their waiting times rise.
func TestWorkloadOverloadPropagation(t *testing.T) {
	res, err := WorkloadOverload(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	first := func(s *metrics.Series) float64 { return s.Y[0] }
	last := func(s *metrics.Series) float64 { return s.Y[len(s.Y)-1] }
	if got := res.HotUtil.Len(); got != 4 {
		t.Fatalf("sweep points = %d, want 4", got)
	}
	if f, l := first(res.HotUtil), last(res.HotUtil); l <= f {
		t.Errorf("hot utilization did not rise with its work: %v -> %v", f, l)
	}
	if f, l := first(res.HotBacklog), last(res.HotBacklog); l <= f {
		t.Errorf("hot backlog did not grow with its work: %v -> %v", f, l)
	}
	if f, l := first(res.CallerWait), last(res.CallerWait); l <= f {
		t.Errorf("caller waiting did not grow with hot work: %v -> %v", f, l)
	}
	if f, l := first(res.Cost), last(res.Cost); l <= f {
		t.Errorf("social cost did not grow with hot work: %v -> %v", f, l)
	}
	// The propagation signal: the callers' mean fair share at the highest
	// multiplier sits measurably below the healthy baseline, because the
	// starved hot service keeps buying their spare capacity.
	f, l := first(res.CallerAlloc), last(res.CallerAlloc)
	if l >= f*0.99 {
		t.Errorf("caller allocation did not fall under hot starvation: %v -> %v", f, l)
	}
}

// TestWorkloadLoopAccounting runs the closed loop directly and checks the
// auction actually clears rounds and the unit accounting is coherent.
func TestWorkloadLoopAccounting(t *testing.T) {
	c := Config{Seed: 3}.withDefaults()
	g, err := workload.BuiltinGraph("overload")
	if err != nil {
		t.Fatal(err)
	}
	g.Services[g.Index("hot")].Work *= 3
	run, err := runWorkloadLoop(c, g, nil, 20, 11, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.reports) != 20 {
		t.Fatalf("reports = %d, want 20", len(run.reports))
	}
	if run.auctioned == 0 {
		t.Fatal("no rounds auctioned: the overloaded graph produced no needy microservices")
	}
	if run.cost <= 0 || run.payments <= 0 {
		t.Fatalf("cost %v / payments %v, want both positive", run.cost, run.payments)
	}
	if run.totalUnits <= 0 || run.reserveUnits > run.totalUnits {
		t.Fatalf("unit accounting: reserve %d of total %d", run.reserveUnits, run.totalUnits)
	}
	if run.needyPeak < 1 {
		t.Fatalf("needy peak = %d, want >= 1", run.needyPeak)
	}
}

// TestWorkloadGraphOverride checks Config.Graph replaces the builtin
// scenario topology, and the hot-service fallback (highest visit rate)
// plus caller discovery work on a graph without a service named "hot".
func TestWorkloadGraphOverride(t *testing.T) {
	g := &workload.ServiceGraph{
		Name: "custom",
		Services: []workload.ServiceSpec{
			{Name: "a", Class: workload.DelaySensitive, Cloud: 1, Work: 700,
				Calls: []workload.CallSpec{{To: "b", Prob: 1}}},
			{Name: "c", Class: workload.DelaySensitive, Cloud: 1, Work: 700,
				Calls: []workload.CallSpec{{To: "b", Prob: 1}}},
			{Name: "b", Class: workload.DelaySensitive, Cloud: 1, Work: 900},
		},
		Entries: []workload.EntrySpec{
			{Service: "a", Arrivals: workload.ArrivalSpec{Process: workload.ArrivalPoisson, Rate: 2}},
			{Service: "c", Arrivals: workload.ArrivalSpec{Process: workload.ArrivalPoisson, Rate: 4}},
		},
	}
	if hot := hotServiceIndex(g); g.Services[hot].Name != "b" {
		t.Fatalf("fallback hot service = %q, want the highest-visit-rate %q", g.Services[hot].Name, "b")
	}
	if callers := callerIndices(g, hotServiceIndex(g)); len(callers) != 2 {
		t.Fatalf("callers = %v, want both entry services", callers)
	}
	res, err := WorkloadOverload(Config{Seed: 5, Quick: true, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.HotUtil.Len(); got != 2 {
		t.Fatalf("quick sweep points = %d, want 2", got)
	}
	if !strings.Contains(res.Render(), "hot work x") {
		t.Fatal("render missing sweep axis label")
	}
	// An invalid override is rejected up front.
	bad := g.Clone()
	bad.Services[0].Calls[0].To = "nope"
	if _, err := WorkloadOverload(Config{Seed: 5, Quick: true, Graph: bad}); err == nil {
		t.Fatal("invalid Config.Graph accepted")
	}
}

// TestWorkloadSpikesResponds checks the flash-height knob reaches the
// market: the tallest spike must stress the market more than no spike on
// at least one axis (reserve purchases or social cost).
func TestWorkloadSpikesResponds(t *testing.T) {
	res, err := WorkloadSpikes(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ys := res.Cost.Y
	rs := res.ReserveUnits.Y
	if rs[len(rs)-1] <= rs[0] && ys[len(ys)-1] <= ys[0] {
		t.Fatalf("flash height 8 no more stressful than 0: reserve %v -> %v, cost %v -> %v",
			rs[0], rs[len(rs)-1], ys[0], ys[len(ys)-1])
	}
}

// TestWorkloadFrontierResponds checks shrinking per-cloud capacity
// degrades service: the tightest capacity must show more SLA misses and
// higher social cost than the loosest.
func TestWorkloadFrontierResponds(t *testing.T) {
	res, err := WorkloadFrontier(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Points keep insertion order: index 0 is the loosest capacity (120)
	// and the last index is the tightest (40).
	sla := res.SLA.Y
	cost := res.Cost.Y
	if sla[len(sla)-1] <= sla[0] {
		t.Errorf("SLA misses at capacity 40 (%v) not above capacity 120 (%v)", sla[len(sla)-1], sla[0])
	}
	if cost[len(cost)-1] <= cost[0] {
		t.Errorf("social cost at capacity 40 (%v) not above capacity 120 (%v)", cost[len(cost)-1], cost[0])
	}
}
