package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// Fig3aResult reproduces Figure 3(a): SSAM's performance ratio (greedy cost
// over offline optimum) as the number of microservices grows, for one and
// for two alternative bids per bidder.
type Fig3aResult struct {
	// RatioByJ maps bids-per-bidder J to a series of mean ratio vs |S|.
	RatioByJ map[int]*metrics.Series
	// CertifiedByJ carries the mean certified bound W·Ξ per sweep point.
	CertifiedByJ map[int]*metrics.Series
	// ExactFraction is the share of denominators solved to optimality.
	ExactFraction float64
}

// fig3aCell is one (J, |S|, trial) measurement.
type fig3aCell struct {
	cost, den, cert float64
	exact           bool
}

// Fig3a runs the Figure 3(a) sweep.
func Fig3a(cfg Config) (*Fig3aResult, error) {
	c := cfg.withDefaults()
	js := []int{1, 2}
	sizes := c.sizes()
	type point struct{ j, n int }
	points := make([]point, 0, len(js)*len(sizes))
	for _, j := range js {
		for _, n := range sizes {
			points = append(points, point{j, n})
		}
	}
	cells, err := runSweep(c, "fig3a", len(points), func(rng *workload.Rand, p, _ int) (fig3aCell, error) {
		j, n := points[p].j, points[p].n
		ins := workload.Instance(rng, stageConfig(n, 100, j))
		out, err := core.SSAM(ins, c.auctionOptions(false))
		if err != nil {
			return fig3aCell{}, fmt.Errorf("experiments: fig3a SSAM n=%d: %w", n, err)
		}
		d, isExact, err := denominator(ins, c.optOptions())
		if err != nil {
			return fig3aCell{}, err
		}
		return fig3aCell{cost: out.SocialCost, den: d, cert: out.Dual.TheoreticalRatio(), exact: isExact}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig3aResult{
		RatioByJ:     make(map[int]*metrics.Series),
		CertifiedByJ: make(map[int]*metrics.Series),
	}
	var tally exactTally
	for _, j := range js {
		res.RatioByJ[j] = metrics.NewSeries(fmt.Sprintf("ratio J=%d", j))
		res.CertifiedByJ[j] = metrics.NewSeries(fmt.Sprintf("bound J=%d", j))
	}
	for p, trials := range cells {
		j, n := points[p].j, points[p].n
		var num, den, certAcc metrics.Running
		for _, cell := range trials {
			tally.add(cell.exact)
			num.Add(cell.cost)
			den.Add(cell.den)
			certAcc.Add(cell.cert)
		}
		res.RatioByJ[j].Add(float64(n), meanRatio(&num, &den))
		res.CertifiedByJ[j].Add(float64(n), certAcc.Mean())
	}
	res.ExactFraction = tally.fraction()
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig3aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3(a): SSAM performance ratio vs number of microservices\n")
	b.WriteString(metrics.Table("microservices",
		r.RatioByJ[1], r.RatioByJ[2], r.CertifiedByJ[1], r.CertifiedByJ[2]))
	fmt.Fprintf(&b, "exact offline optima: %.0f%%\n", r.ExactFraction*100)
	return b.String()
}

// Fig3bResult reproduces Figure 3(b): SSAM's social cost, total payment,
// and the offline-optimal cost as the number of microservices grows, for
// 100 and 200 user requests.
type Fig3bResult struct {
	// ByRequests maps the request count (100, 200) to the three series.
	ByRequests map[int]*Fig3bSeries
	// ExactFraction is the share of denominators solved to optimality.
	ExactFraction float64
}

// Fig3bSeries groups Figure 3(b)'s three curves for one request level.
type Fig3bSeries struct {
	SocialCost *metrics.Series
	Payment    *metrics.Series
	Optimal    *metrics.Series
}

// fig3bCell is one (R, |S|, trial) measurement.
type fig3bCell struct {
	cost, pay, opt float64
	exact          bool
}

// Fig3b runs the Figure 3(b) sweep.
func Fig3b(cfg Config) (*Fig3bResult, error) {
	c := cfg.withDefaults()
	requests := []int{100, 200}
	sizes := c.sizes()
	type point struct{ reqs, n int }
	points := make([]point, 0, len(requests)*len(sizes))
	for _, reqs := range requests {
		for _, n := range sizes {
			points = append(points, point{reqs, n})
		}
	}
	cells, err := runSweep(c, "fig3b", len(points), func(rng *workload.Rand, p, _ int) (fig3bCell, error) {
		reqs, n := points[p].reqs, points[p].n
		ins := workload.Instance(rng, stageConfig(n, reqs, 2))
		out, err := core.SSAM(ins, c.auctionOptions(false))
		if err != nil {
			return fig3bCell{}, fmt.Errorf("experiments: fig3b SSAM n=%d R=%d: %w", n, reqs, err)
		}
		d, isExact, err := denominator(ins, c.optOptions())
		if err != nil {
			return fig3bCell{}, err
		}
		return fig3bCell{cost: out.SocialCost, pay: out.TotalPayment(), opt: d, exact: isExact}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig3bResult{ByRequests: make(map[int]*Fig3bSeries)}
	var tally exactTally
	for _, reqs := range requests {
		res.ByRequests[reqs] = &Fig3bSeries{
			SocialCost: metrics.NewSeries(fmt.Sprintf("social cost R=%d", reqs)),
			Payment:    metrics.NewSeries(fmt.Sprintf("payment R=%d", reqs)),
			Optimal:    metrics.NewSeries(fmt.Sprintf("optimal R=%d", reqs)),
		}
	}
	for p, trials := range cells {
		reqs, n := points[p].reqs, points[p].n
		var cost, pay, opt metrics.Running
		for _, cell := range trials {
			tally.add(cell.exact)
			cost.Add(cell.cost)
			pay.Add(cell.pay)
			opt.Add(cell.opt)
		}
		set := res.ByRequests[reqs]
		set.SocialCost.Add(float64(n), cost.Mean())
		set.Payment.Add(float64(n), pay.Mean())
		set.Optimal.Add(float64(n), opt.Mean())
	}
	res.ExactFraction = tally.fraction()
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig3bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3(b): SSAM social cost, payment, optimal vs number of microservices\n")
	s100, s200 := r.ByRequests[100], r.ByRequests[200]
	b.WriteString(metrics.Table("microservices",
		s100.SocialCost, s100.Payment, s100.Optimal,
		s200.SocialCost, s200.Payment, s200.Optimal))
	fmt.Fprintf(&b, "exact offline optima: %.0f%%\n", r.ExactFraction*100)
	return b.String()
}
