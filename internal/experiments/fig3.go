package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// Fig3aResult reproduces Figure 3(a): SSAM's performance ratio (greedy cost
// over offline optimum) as the number of microservices grows, for one and
// for two alternative bids per bidder.
type Fig3aResult struct {
	// RatioByJ maps bids-per-bidder J to a series of mean ratio vs |S|.
	RatioByJ map[int]*metrics.Series
	// CertifiedByJ carries the mean certified bound W·Ξ per sweep point.
	CertifiedByJ map[int]*metrics.Series
	// ExactFraction is the share of denominators solved to optimality.
	ExactFraction float64
}

// Fig3a runs the Figure 3(a) sweep.
func Fig3a(cfg Config) (*Fig3aResult, error) {
	c := cfg.withDefaults()
	rng := workload.NewRand(c.Seed)
	res := &Fig3aResult{
		RatioByJ:     make(map[int]*metrics.Series),
		CertifiedByJ: make(map[int]*metrics.Series),
	}
	exact, total := 0, 0
	for _, j := range []int{1, 2} {
		ratio := metrics.NewSeries(fmt.Sprintf("ratio J=%d", j))
		cert := metrics.NewSeries(fmt.Sprintf("bound J=%d", j))
		for _, n := range c.sizes() {
			var num, den, certAcc metrics.Running
			for trial := 0; trial < c.Trials; trial++ {
				ins := workload.Instance(rng, stageConfig(n, 100, j))
				out, err := core.SSAM(ins, c.auctionOptions(false))
				if err != nil {
					return nil, fmt.Errorf("experiments: fig3a SSAM n=%d: %w", n, err)
				}
				d, isExact, err := denominator(ins, c.optOptions())
				if err != nil {
					return nil, err
				}
				total++
				if isExact {
					exact++
				}
				num.Add(out.SocialCost)
				den.Add(d)
				certAcc.Add(out.Dual.TheoreticalRatio())
			}
			ratio.Add(float64(n), meanRatio(&num, &den))
			cert.Add(float64(n), certAcc.Mean())
		}
		res.RatioByJ[j] = ratio
		res.CertifiedByJ[j] = cert
	}
	if total > 0 {
		res.ExactFraction = float64(exact) / float64(total)
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig3aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3(a): SSAM performance ratio vs number of microservices\n")
	b.WriteString(metrics.Table("microservices",
		r.RatioByJ[1], r.RatioByJ[2], r.CertifiedByJ[1], r.CertifiedByJ[2]))
	fmt.Fprintf(&b, "exact offline optima: %.0f%%\n", r.ExactFraction*100)
	return b.String()
}

// Fig3bResult reproduces Figure 3(b): SSAM's social cost, total payment,
// and the offline-optimal cost as the number of microservices grows, for
// 100 and 200 user requests.
type Fig3bResult struct {
	// ByRequests maps the request count (100, 200) to the three series.
	ByRequests map[int]*Fig3bSeries
}

// Fig3bSeries groups Figure 3(b)'s three curves for one request level.
type Fig3bSeries struct {
	SocialCost *metrics.Series
	Payment    *metrics.Series
	Optimal    *metrics.Series
}

// Fig3b runs the Figure 3(b) sweep.
func Fig3b(cfg Config) (*Fig3bResult, error) {
	c := cfg.withDefaults()
	rng := workload.NewRand(c.Seed)
	res := &Fig3bResult{ByRequests: make(map[int]*Fig3bSeries)}
	for _, reqs := range []int{100, 200} {
		set := &Fig3bSeries{
			SocialCost: metrics.NewSeries(fmt.Sprintf("social cost R=%d", reqs)),
			Payment:    metrics.NewSeries(fmt.Sprintf("payment R=%d", reqs)),
			Optimal:    metrics.NewSeries(fmt.Sprintf("optimal R=%d", reqs)),
		}
		for _, n := range c.sizes() {
			var cost, pay, opt metrics.Running
			for trial := 0; trial < c.Trials; trial++ {
				ins := workload.Instance(rng, stageConfig(n, reqs, 2))
				out, err := core.SSAM(ins, c.auctionOptions(false))
				if err != nil {
					return nil, fmt.Errorf("experiments: fig3b SSAM n=%d R=%d: %w", n, reqs, err)
				}
				d, _, err := denominator(ins, c.optOptions())
				if err != nil {
					return nil, err
				}
				cost.Add(out.SocialCost)
				pay.Add(out.TotalPayment())
				opt.Add(d)
			}
			set.SocialCost.Add(float64(n), cost.Mean())
			set.Payment.Add(float64(n), pay.Mean())
			set.Optimal.Add(float64(n), opt.Mean())
		}
		res.ByRequests[reqs] = set
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig3bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3(b): SSAM social cost, payment, optimal vs number of microservices\n")
	s100, s200 := r.ByRequests[100], r.ByRequests[200]
	b.WriteString(metrics.Table("microservices",
		s100.SocialCost, s100.Payment, s100.Optimal,
		s200.SocialCost, s200.Payment, s200.Optimal))
	return b.String()
}
