package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"edgeauction/internal/obs"
	"edgeauction/internal/workload"
)

// This file is the shared sweep runner every experiment driver fans its
// trials out on. A sweep is a (points × trials) grid of independent cells;
// each cell samples its workload from an RNG stream derived purely from
// (Config.Seed, driver tag, point, trial), so the grid can execute in any
// order — serially, or across a bounded worker pool — and still produce
// byte-identical rendered results. Drivers call runSweep (or runTrials for
// a single-point sweep), then reduce the returned cell matrix in
// deterministic point-major order on the calling goroutine.

// runSweep executes body for every cell of a points × trials grid across
// c.trialWorkers() goroutines and returns the results as res[point][trial].
//
// Each invocation receives a fresh *workload.Rand derived from
// (c.Seed, tag, point, trial); body must draw all of the cell's randomness
// from it (deriving further streams with rng.Fork is fine) and must not
// touch shared mutable state — the reduce step after runSweep returns is
// the place for aggregation.
//
// On failure the runner stops dispatching new cells, waits for in-flight
// cells to finish, and returns the error of the lowest-indexed failing
// cell. Cells are dispatched in index order and each cell's outcome is a
// deterministic function of its seed, so that choice — and therefore the
// returned error — is identical at every parallelism level.
func runSweep[T any](c Config, tag string, points int, body func(rng *workload.Rand, point, trial int) (T, error)) ([][]T, error) {
	return runGrid(c, tag, points, c.Trials, body)
}

// runTrials is runSweep for drivers whose grid is a single sweep point
// with a custom trial count (e.g. the truthfulness probe's instance
// count): it returns the flat per-trial results.
func runTrials[T any](c Config, tag string, trials int, body func(rng *workload.Rand, trial int) (T, error)) ([]T, error) {
	grid, err := runGrid(c, tag, 1, trials, func(rng *workload.Rand, _, trial int) (T, error) {
		return body(rng, trial)
	})
	if err != nil {
		return nil, err
	}
	return grid[0], nil
}

func runGrid[T any](c Config, tag string, points, trials int, body func(rng *workload.Rand, point, trial int) (T, error)) ([][]T, error) {
	total := points * trials
	out := make([][]T, points)
	if total == 0 {
		return out, nil
	}
	var started time.Time
	if c.Tracer != nil {
		started = time.Now()
	}
	flat := make([]T, total)
	for p := range out {
		out[p] = flat[p*trials : (p+1)*trials]
	}
	cell := func(i int) (T, error) {
		p, tr := i/trials, i%trials
		return body(workload.NewDerived(c.Seed, tag, p, tr), p, tr)
	}

	workers := min(c.trialWorkers(), total)
	if workers > 1 {
		if err := fanOut(workers, total, flat, cell); err != nil {
			return nil, err
		}
	} else {
		for i := range flat {
			v, err := cell(i)
			if err != nil {
				return nil, err
			}
			flat[i] = v
		}
	}
	if c.Tracer != nil {
		c.Tracer.Emit(obs.Sweep{
			Tag: tag, Points: points, Trials: trials, Cells: total,
			DurationMicros: time.Since(started).Microseconds(), Workers: workers,
		})
	}
	return out, nil
}

// fanOut runs cell(0..total-1) on a pool of workers, writing results into
// flat. The dispatch loop feeds indices in order and stops at the first
// observed failure; already-dispatched cells run to completion, so every
// index below the lowest failing one is guaranteed to have been executed,
// which makes the "first error" below deterministic.
func fanOut[T any](workers, total int, flat []T, cell func(int) (T, error)) error {
	jobs := make(chan int)
	errs := make([]error, total)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				v, err := cell(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				flat[i] = v
			}
		}()
	}
	for i := 0; i < total && !failed.Load(); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// trialWorkers resolves TrialParallelism: 0 means one worker per
// available CPU, 1 forces serial execution.
func (c Config) trialWorkers() int {
	if c.TrialParallelism > 0 {
		return c.TrialParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// exactTally accumulates the share of ratio denominators that the exact
// solver closed (vs falling back to the LP lower bound), so every figure
// can report how much of its "optimal" baseline is proven optimum.
type exactTally struct{ exact, total int }

func (e *exactTally) add(isExact bool) {
	e.total++
	if isExact {
		e.exact++
	}
}

func (e *exactTally) addCounts(exact, total int) {
	e.exact += exact
	e.total += total
}

// fraction returns the exact share in [0,1]; 0 when nothing was solved.
func (e *exactTally) fraction() float64 {
	if e.total == 0 {
		return 0
	}
	return float64(e.exact) / float64(e.total)
}
