package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// WinningStatsResult covers the remaining §V metrics the paper lists but
// does not plot as standalone figures: the distribution of winning-bid
// prices and the percentage of submitted bids that win, as the market
// grows.
type WinningStatsResult struct {
	// WinPercent is the share of submitted bids that win vs |S|.
	WinPercent *metrics.Series
	// BidderWinPercent is the share of bidders with a winning bid vs |S|.
	BidderWinPercent *metrics.Series
	// PriceHistogram is the winning-price distribution pooled over the
	// sweep (bucketed over the §V-A price range [10, 35]).
	PriceHistogram *metrics.Histogram
	// WinningPrices retains the pooled winning prices for quantiles.
	WinningPrices *metrics.Sample
}

// WinningStats runs the §V supplementary sweep.
func WinningStats(cfg Config) (*WinningStatsResult, error) {
	c := cfg.withDefaults()
	rng := workload.NewRand(c.Seed)
	res := &WinningStatsResult{
		WinPercent:       metrics.NewSeries("winning bids %"),
		BidderWinPercent: metrics.NewSeries("winning bidders %"),
		PriceHistogram:   metrics.NewHistogram(10, 35, 10),
		WinningPrices:    metrics.NewSample(256),
	}
	for _, n := range c.sizes() {
		var winPct, bidderPct metrics.Running
		for trial := 0; trial < c.Trials; trial++ {
			ins := workload.Instance(rng, stageConfig(n, 100, 2))
			out, err := core.SSAM(ins, c.auctionOptions(true))
			if err != nil {
				return nil, fmt.Errorf("experiments: winning stats n=%d: %w", n, err)
			}
			// Exclude the platform reserve from market statistics.
			marketBids := 0
			bidders := map[int]struct{}{}
			for _, b := range ins.Bids {
				if workload.IsReserveBid(b, n) {
					continue
				}
				marketBids++
				bidders[b.Bidder] = struct{}{}
			}
			winners := 0
			winningBidders := map[int]struct{}{}
			for _, w := range out.Winners {
				b := ins.Bids[w]
				if workload.IsReserveBid(b, n) {
					continue
				}
				winners++
				winningBidders[b.Bidder] = struct{}{}
				res.PriceHistogram.Add(b.Price)
				res.WinningPrices.Add(b.Price)
			}
			if marketBids > 0 {
				winPct.Add(100 * float64(winners) / float64(marketBids))
			}
			if len(bidders) > 0 {
				bidderPct.Add(100 * float64(len(winningBidders)) / float64(len(bidders)))
			}
		}
		res.WinPercent.Add(float64(n), winPct.Mean())
		res.BidderWinPercent.Add(float64(n), bidderPct.Mean())
	}
	return res, nil
}

// Render formats the result.
func (r *WinningStatsResult) Render() string {
	var b strings.Builder
	b.WriteString("Supplementary (§V): winning-bid percentage and price distribution\n")
	b.WriteString(metrics.Table("microservices", r.WinPercent, r.BidderWinPercent))
	fmt.Fprintf(&b, "winning price quantiles: p25=%.2f median=%.2f p75=%.2f\n",
		r.WinningPrices.Quantile(0.25), r.WinningPrices.Median(), r.WinningPrices.Quantile(0.75))
	b.WriteString("winning price distribution:\n")
	b.WriteString(r.PriceHistogram.Render(32))
	return b.String()
}
