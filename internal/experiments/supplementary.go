package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// WinningStatsResult covers the remaining §V metrics the paper lists but
// does not plot as standalone figures: the distribution of winning-bid
// prices and the percentage of submitted bids that win, as the market
// grows.
type WinningStatsResult struct {
	// WinPercent is the share of submitted bids that win vs |S|.
	WinPercent *metrics.Series
	// BidderWinPercent is the share of bidders with a winning bid vs |S|.
	BidderWinPercent *metrics.Series
	// PriceHistogram is the winning-price distribution pooled over the
	// sweep (bucketed over the §V-A price range [10, 35]).
	PriceHistogram *metrics.Histogram
	// WinningPrices retains the pooled winning prices for quantiles.
	WinningPrices *metrics.Sample
}

// winningStatsCell is one (|S|, trial) auction's market statistics.
type winningStatsCell struct {
	winPct, bidderPct   float64
	hasBids, hasBidders bool
	prices              []float64
}

// WinningStats runs the §V supplementary sweep.
func WinningStats(cfg Config) (*WinningStatsResult, error) {
	c := cfg.withDefaults()
	sizes := c.sizes()
	cells, err := runSweep(c, "winstats", len(sizes), func(rng *workload.Rand, p, _ int) (winningStatsCell, error) {
		n := sizes[p]
		ins := workload.Instance(rng, stageConfig(n, 100, 2))
		out, err := core.SSAM(ins, c.auctionOptions(true))
		if err != nil {
			return winningStatsCell{}, fmt.Errorf("experiments: winning stats n=%d: %w", n, err)
		}
		// Exclude the platform reserve from market statistics.
		marketBids := 0
		bidders := map[int]struct{}{}
		for _, b := range ins.Bids {
			if workload.IsReserveBid(b, n) {
				continue
			}
			marketBids++
			bidders[b.Bidder] = struct{}{}
		}
		var v winningStatsCell
		winners := 0
		winningBidders := map[int]struct{}{}
		for _, w := range out.Winners {
			b := ins.Bids[w]
			if workload.IsReserveBid(b, n) {
				continue
			}
			winners++
			winningBidders[b.Bidder] = struct{}{}
			v.prices = append(v.prices, b.Price)
		}
		if marketBids > 0 {
			v.hasBids = true
			v.winPct = 100 * float64(winners) / float64(marketBids)
		}
		if len(bidders) > 0 {
			v.hasBidders = true
			v.bidderPct = 100 * float64(len(winningBidders)) / float64(len(bidders))
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}

	res := &WinningStatsResult{
		WinPercent:       metrics.NewSeries("winning bids %"),
		BidderWinPercent: metrics.NewSeries("winning bidders %"),
		PriceHistogram:   metrics.NewHistogram(10, 35, 10),
		WinningPrices:    metrics.NewSample(256),
	}
	for p, trials := range cells {
		var winPct, bidderPct metrics.Running
		for _, v := range trials {
			if v.hasBids {
				winPct.Add(v.winPct)
			}
			if v.hasBidders {
				bidderPct.Add(v.bidderPct)
			}
			// Pooled in deterministic (point, trial, winner) order so the
			// histogram and quantile sample render identically at every
			// parallelism level.
			for _, price := range v.prices {
				res.PriceHistogram.Add(price)
				res.WinningPrices.Add(price)
			}
		}
		res.WinPercent.Add(float64(sizes[p]), winPct.Mean())
		res.BidderWinPercent.Add(float64(sizes[p]), bidderPct.Mean())
	}
	return res, nil
}

// Render formats the result.
func (r *WinningStatsResult) Render() string {
	var b strings.Builder
	b.WriteString("Supplementary (§V): winning-bid percentage and price distribution\n")
	b.WriteString(metrics.Table("microservices", r.WinPercent, r.BidderWinPercent))
	fmt.Fprintf(&b, "winning price quantiles: p25=%.2f median=%.2f p75=%.2f\n",
		r.WinningPrices.Quantile(0.25), r.WinningPrices.Median(), r.WinningPrices.Quantile(0.75))
	b.WriteString("winning price distribution:\n")
	b.WriteString(r.PriceHistogram.Render(32))
	return b.String()
}
