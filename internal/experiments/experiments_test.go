package experiments

import (
	"strings"
	"testing"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
)

func quickCfg() Config { return Config{Seed: 11, Quick: true} }

func TestFig3aShape(t *testing.T) {
	res, err := Fig3a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range res.RatioByJ {
		if s.Len() == 0 {
			t.Fatalf("J=%d: empty series", j)
		}
		for i, y := range s.Y {
			if y < 1-1e-6 {
				t.Fatalf("J=%d point %d: ratio %v below 1 (greedy beating the optimum is impossible)", j, i, y)
			}
			bound, ok := res.CertifiedByJ[j].At(s.X[i])
			if !ok {
				t.Fatalf("J=%d: missing certified bound at %v", j, s.X[i])
			}
			if y > bound+1e-6 {
				t.Fatalf("J=%d point %d: ratio %v exceeds certified bound %v", j, i, y, bound)
			}
		}
	}
	if !strings.Contains(res.Render(), "Figure 3(a)") {
		t.Fatal("render missing title")
	}
}

func TestFig3bShape(t *testing.T) {
	res, err := Fig3b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for reqs, set := range res.ByRequests {
		for i := range set.SocialCost.X {
			cost := set.SocialCost.Y[i]
			pay, _ := set.Payment.At(set.SocialCost.X[i])
			opt, _ := set.Optimal.At(set.SocialCost.X[i])
			if pay < cost-1e-6 {
				t.Fatalf("R=%d: payment %v below social cost %v", reqs, pay, cost)
			}
			if opt > cost+1e-6 {
				t.Fatalf("R=%d: optimal %v above greedy cost %v", reqs, opt, cost)
			}
		}
	}
	// More requests => more residual demand => higher cost in aggregate
	// (pointwise comparisons are noisy at quick-mode trial counts).
	s100, s200 := res.ByRequests[100], res.ByRequests[200]
	var sum100, sum200 float64
	for i := range s100.SocialCost.Y {
		sum100 += s100.SocialCost.Y[i]
	}
	for i := range s200.SocialCost.Y {
		sum200 += s200.SocialCost.Y[i]
	}
	if sum200 < sum100*0.95 {
		t.Fatalf("aggregate cost with 200 requests (%v) clearly below 100-request cost (%v)", sum200, sum100)
	}
}

func TestFig4aNoViolations(t *testing.T) {
	res, err := Fig4a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d individual-rationality violations", res.Violations)
	}
	if res.Price.Len() == 0 {
		t.Fatal("no winners recorded")
	}
	for i := range res.Price.Y {
		if res.Payment.Y[i] < res.Price.Y[i]-1e-9 {
			t.Fatalf("winner %d paid %v below price %v", i, res.Payment.Y[i], res.Price.Y[i])
		}
	}
}

func TestFig4bTimings(t *testing.T) {
	res, err := Fig4b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for reqs, s := range res.MillisByRequests {
		for i, y := range s.Y {
			if y < 0 {
				t.Fatalf("R=%d point %d: negative time %v", reqs, i, y)
			}
			if y > 100 {
				t.Fatalf("R=%d point %d: SSAM took %vms, paper reports <100ms at this scale", reqs, i, y)
			}
		}
	}
}

func TestFig5aShape(t *testing.T) {
	res, err := Fig5a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for reqs, s := range res.RatioByRequests {
		if s.Len() == 0 {
			t.Fatalf("R=%d: empty series", reqs)
		}
		for i, y := range s.Y {
			if y < 1-1e-6 {
				t.Fatalf("R=%d point %d: online ratio %v below 1", reqs, i, y)
			}
			if y > 25 {
				t.Fatalf("R=%d point %d: online ratio %v implausibly large", reqs, i, y)
			}
		}
	}
}

func TestFig5bVariantOrdering(t *testing.T) {
	res, err := Fig5b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	da := res.RatioByVariant[core.VariantDA]
	base := res.RatioByVariant[core.VariantBase]
	if da.Len() == 0 || base.Len() == 0 {
		t.Fatal("missing variant series")
	}
	// DA (oracle demand) should not cost more than the noisy base on
	// aggregate: compare sweep means.
	var daMean, baseMean float64
	for i := range da.Y {
		daMean += da.Y[i]
	}
	daMean /= float64(da.Len())
	for i := range base.Y {
		baseMean += base.Y[i]
	}
	baseMean /= float64(base.Len())
	if daMean > baseMean*1.15 {
		t.Fatalf("MSOA-DA mean ratio %v clearly worse than base %v; oracle demand should help", daMean, baseMean)
	}
}

func TestFig6aShape(t *testing.T) {
	res, err := Fig6a(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range res.RatioByJ {
		if s.Len() == 0 {
			t.Fatalf("J=%d: empty series", j)
		}
		for i, y := range s.Y {
			if y < 1-1e-6 {
				t.Fatalf("J=%d point %d: ratio %v below 1", j, i, y)
			}
		}
	}
}

func TestFig6bShape(t *testing.T) {
	res, err := Fig6b(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for reqs, set := range res.ByRequests {
		for i := range set.SocialCost.X {
			pay, _ := set.Payment.At(set.SocialCost.X[i])
			if pay < set.SocialCost.Y[i]-1e-6 {
				t.Fatalf("R=%d: payment %v below cost %v", reqs, pay, set.SocialCost.Y[i])
			}
		}
	}
}

func TestAblationScaledPrice(t *testing.T) {
	res, err := AblationScaledPrice(Config{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 || res.Series[0].Len() == 0 {
		t.Fatalf("malformed ablation result: %+v", res)
	}
	with, without := res.Series[0], res.Series[1]
	for i := range with.Y {
		if with.Y[i] > without.Y[i]+1e-6 {
			t.Fatalf("point %d: ψ-scaling made MSOA MORE expensive: %v vs %v",
				i, with.Y[i], without.Y[i])
		}
	}
}

func TestAblationPaymentsPremiumAtLeastOne(t *testing.T) {
	res, err := AblationPayments(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	premium := res.Series[2]
	for i, y := range premium.Y {
		if y < 1-1e-6 {
			t.Fatalf("point %d: truthfulness premium %v below 1 (critical pays at least the bid)", i, y)
		}
	}
}

func TestAblationGreedyMetricOrdering(t *testing.T) {
	res, err := AblationGreedyMetric(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	perCov, lowest, random := res.Series[0], res.Series[1], res.Series[2]
	for i := range perCov.Y {
		if perCov.Y[i] > lowest.Y[i]*1.25+1e-6 {
			t.Fatalf("point %d: per-coverage greedy (%v) clearly worse than lowest-price greedy (%v)",
				i, perCov.Y[i], lowest.Y[i])
		}
		if perCov.Y[i] > random.Y[i]*1.25+1e-6 {
			t.Fatalf("point %d: per-coverage greedy (%v) clearly worse than random (%v)",
				i, perCov.Y[i], random.Y[i])
		}
	}
}

func TestAblationFixedPrice(t *testing.T) {
	res, err := AblationFixedPrice(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// A posted price at the 5th unit-cost percentile must undercover (only
	// ~5% of supply accepts); the 95th-percentile posting must cover (or
	// nearly cover) everything.
	var lowCov, highCov *metrics.Series
	for _, s := range res.Series {
		if strings.Contains(s.Name, "coverage posted=p05") {
			lowCov = s
		}
		if strings.Contains(s.Name, "coverage posted=p95") {
			highCov = s
		}
	}
	if lowCov == nil || highCov == nil {
		t.Fatal("missing coverage series")
	}
	for i := range lowCov.Y {
		if lowCov.Y[i] > highCov.Y[i]+1e-9 {
			t.Fatalf("point %d: p05 coverage %v exceeds p95 coverage %v", i, lowCov.Y[i], highCov.Y[i])
		}
		if lowCov.Y[i] > 0.99 {
			t.Fatalf("point %d: posting the 5th percentile should undercover, got %v", i, lowCov.Y[i])
		}
	}
}

func TestRenderersProduceTables(t *testing.T) {
	cfg := quickCfg()
	r3a, err := Fig3a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r4a, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"fig3a": r3a.Render(),
		"fig4a": r4a.Render(),
	} {
		if !strings.Contains(out, "---") {
			t.Fatalf("%s render lacks a table: %q", name, out)
		}
	}
}

func TestWinningStats(t *testing.T) {
	res, err := WinningStats(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.WinPercent.Len() == 0 {
		t.Fatal("empty win-percent series")
	}
	for i, y := range res.WinPercent.Y {
		if y < 0 || y > 100 {
			t.Fatalf("point %d: win percent %v outside [0,100]", i, y)
		}
	}
	for i, y := range res.BidderWinPercent.Y {
		if y < res.WinPercent.Y[i]-1e-9 {
			t.Fatalf("point %d: bidder win %% (%v) below bid win %% (%v); with J=2 per bidder it must be at least as large", i, y, res.WinPercent.Y[i])
		}
	}
	if res.PriceHistogram.Total() == 0 {
		t.Fatal("no winning prices recorded")
	}
	if !strings.Contains(res.Render(), "price distribution") {
		t.Fatal("render missing histogram")
	}
}

func TestAblationCapacity(t *testing.T) {
	res, err := AblationCapacity(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	measured, bound := res.Series[0], res.Series[1]
	if measured.Len() == 0 {
		t.Fatal("empty measured series")
	}
	for i, y := range measured.Y {
		if y < 1-1e-6 {
			t.Fatalf("point %d: measured ratio %v below 1", i, y)
		}
	}
	// The measured ratio over-states the true competitive ratio (the
	// denominator is a LOWER bound on the offline optimum), so dominance
	// by the Theorem 7 bound cannot be asserted; assert the structural
	// claims instead: the bound exists, exceeds 1, and tightens (weakly)
	// as capacities relax.
	if bound.Len() < 2 {
		t.Fatalf("bound series too short: %d", bound.Len())
	}
	for i, y := range bound.Y {
		if y <= 1 {
			t.Fatalf("bound point %d: %v must exceed 1", i, y)
		}
	}
	if last, first := bound.Y[bound.Len()-1], bound.Y[0]; last > first*1.05 {
		t.Fatalf("bound should tighten as capacity relaxes: first %v, last %v", first, last)
	}
}

func TestTruthfulnessSweepSingleBidClean(t *testing.T) {
	res, err := TruthfulnessSweep(Config{Seed: 5, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViolationsSingle != 0 {
		t.Fatalf("J=1 profitable deviations: %d (Theorem 4 requires 0)", res.ViolationsSingle)
	}
	if res.Deviations == 0 {
		t.Fatal("sweep probed nothing")
	}
	if !strings.Contains(res.Render(), "Theorem 4") {
		t.Fatal("render missing context")
	}
}

func TestFederationExperiment(t *testing.T) {
	res, err := Federation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered.Len() == 0 {
		t.Fatal("empty coverage series")
	}
	for i, y := range res.Covered.Y {
		if y < 0 || y > 1 {
			t.Fatalf("point %d: coverage %v outside [0,1]", i, y)
		}
		if y < res.CoveredLocal-1e-9 {
			t.Fatalf("point %d: federated coverage %v below local-only %v", i, y, res.CoveredLocal)
		}
	}
	if !strings.Contains(res.Render(), "borrowing") {
		t.Fatal("render missing context")
	}
}

func TestDemandAblationOrdering(t *testing.T) {
	res, err := DemandAblation(Config{Seed: 3, Trials: 3, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	byName := map[string]DemandAblationRow{}
	for _, row := range res.Rows {
		byName[row.Scheme] = row
	}
	oracle := byName["oracle (backlog)"]
	if oracle.MisprocureCost != 0 || oracle.Spearman < 0.999 {
		t.Fatalf("oracle must be perfect: %+v", oracle)
	}
	ahp, uni := byName["AHP weights"], byName["uniform weights"]
	if ahp.MisprocureCost > uni.MisprocureCost*1.25 {
		t.Fatalf("AHP (%v) clearly worse than uniform (%v)", ahp.MisprocureCost, uni.MisprocureCost)
	}
	if !strings.Contains(res.Render(), "spearman") {
		t.Fatal("render missing correlation column")
	}
}

func TestSpearmanBasics(t *testing.T) {
	rho, err := metrics.Spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	if err != nil || rho < 0.999 {
		t.Fatalf("perfect monotone: rho=%v err=%v", rho, err)
	}
	rho, err = metrics.Spearman([]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10})
	if err != nil || rho > -0.999 {
		t.Fatalf("perfect inverse: rho=%v err=%v", rho, err)
	}
	if _, err := metrics.Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	rho, err = metrics.Spearman([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil || rho != 0 {
		t.Fatalf("constant sample should give rho 0: %v, %v", rho, err)
	}
}
