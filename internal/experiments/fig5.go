package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// Fig5aResult reproduces Figure 5(a): MSOA's performance ratio vs the
// number of microservices, for 100 and 200 requests.
type Fig5aResult struct {
	RatioByRequests map[int]*metrics.Series
	// InfeasibleRounds counts skipped rounds across the sweep.
	InfeasibleRounds int
	// ExactFraction is the share of per-round denominators solved to
	// optimality.
	ExactFraction float64
}

// fig5aCell is one (R, |S|, trial) scenario run.
type fig5aCell struct {
	cost, opt          float64
	infeasible         int
	exactOpt, totalOpt int
}

// Fig5a runs the Figure 5(a) sweep: T=10 rounds per scenario, plain MSOA
// on true demand.
func Fig5a(cfg Config) (*Fig5aResult, error) {
	c := cfg.withDefaults()
	rounds := 10
	if c.Quick {
		rounds = 3
	}
	requests := []int{100, 200}
	sizes := c.sizes()
	type point struct{ reqs, n int }
	points := make([]point, 0, len(requests)*len(sizes))
	for _, reqs := range requests {
		for _, n := range sizes {
			points = append(points, point{reqs, n})
		}
	}
	cells, err := runSweep(c, "fig5a", len(points), func(rng *workload.Rand, p, _ int) (fig5aCell, error) {
		reqs, n := points[p].reqs, points[p].n
		scn := workload.Online(rng, onlineConfig(n, reqs, 2, rounds, false))
		run, err := runOnline(scn.TrueRounds, c.msoaConfig(scn, false), c.optOptions())
		if err != nil {
			return fig5aCell{}, fmt.Errorf("experiments: fig5a n=%d R=%d: %w", n, reqs, err)
		}
		return fig5aCell{
			cost: run.SocialCost, opt: run.OptimalSum, infeasible: run.Infeasible,
			exactOpt: run.ExactOpt, totalOpt: run.TotalOpt,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig5aResult{RatioByRequests: make(map[int]*metrics.Series)}
	var tally exactTally
	for _, reqs := range requests {
		res.RatioByRequests[reqs] = metrics.NewSeries(fmt.Sprintf("ratio R=%d", reqs))
	}
	for p, trials := range cells {
		var cost, opt metrics.Running
		for _, cell := range trials {
			res.InfeasibleRounds += cell.infeasible
			tally.addCounts(cell.exactOpt, cell.totalOpt)
			cost.Add(cell.cost)
			opt.Add(cell.opt)
		}
		res.RatioByRequests[points[p].reqs].Add(float64(points[p].n), meanRatio(&cost, &opt))
	}
	res.ExactFraction = tally.fraction()
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig5aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5(a): MSOA performance ratio vs number of microservices\n")
	b.WriteString(metrics.Table("microservices",
		r.RatioByRequests[100], r.RatioByRequests[200]))
	fmt.Fprintf(&b, "infeasible rounds skipped: %d\n", r.InfeasibleRounds)
	fmt.Fprintf(&b, "exact offline optima: %.0f%%\n", r.ExactFraction*100)
	return b.String()
}

// Fig5bResult reproduces Figure 5(b) (the paper's variant comparison in
// §V-B): the performance ratio of MSOA, MSOA-DA, MSOA-RC, and MSOA-OA vs
// the number of microservices. Variant costs are measured against a common
// denominator — the per-round offline optima of the TRUE-demand rounds —
// so demand-estimation error shows up as extra cost, exactly the effect
// the paper attributes to the variants.
type Fig5bResult struct {
	RatioByVariant map[core.Variant]*metrics.Series
	// ExactFraction is the share of per-round denominators solved to
	// optimality.
	ExactFraction float64
}

// fig5bCell is one (|S|, trial) scenario run across all variants.
type fig5bCell struct {
	opt                float64
	costByVariant      map[core.Variant]float64
	exactOpt, totalOpt int
}

// Fig5b runs the variant comparison sweep.
func Fig5b(cfg Config) (*Fig5bResult, error) {
	c := cfg.withDefaults()
	variants := []core.Variant{core.VariantBase, core.VariantDA, core.VariantRC, core.VariantOA}
	rounds := 10
	if c.Quick {
		rounds = 3
	}
	sizes := c.sizes()
	cells, err := runSweep(c, "fig5b", len(sizes), func(rng *workload.Rand, p, _ int) (fig5bCell, error) {
		n := sizes[p]
		ocfg := onlineConfig(n, 100, 2, rounds, false)
		ocfg.DemandNoise = 0.35
		scn := workload.Online(rng, ocfg)
		baseCfg := c.msoaConfig(scn, false)
		// Common denominator from the true rounds, unconstrained.
		ref, err := runOnline(scn.TrueRounds, baseCfg, c.optOptions())
		if err != nil {
			return fig5bCell{}, fmt.Errorf("experiments: fig5b reference n=%d: %w", n, err)
		}
		cell := fig5bCell{
			opt:           ref.OptimalSum,
			costByVariant: make(map[core.Variant]float64, len(variants)),
			exactOpt:      ref.ExactOpt,
			totalOpt:      ref.TotalOpt,
		}
		for _, v := range variants {
			vr, vcfg := core.BuildVariant(v, core.VariantParams{}, scn.TrueRounds, scn.EstimatedRounds, baseCfg)
			run, err := runOnlineCostOnly(vr, vcfg)
			if err != nil {
				return fig5bCell{}, fmt.Errorf("experiments: fig5b %s n=%d: %w", v, n, err)
			}
			cell.costByVariant[v] = run.SocialCost
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig5bResult{RatioByVariant: make(map[core.Variant]*metrics.Series)}
	var tally exactTally
	for _, v := range variants {
		res.RatioByVariant[v] = metrics.NewSeries(v.String())
	}
	for p, trials := range cells {
		acc := make(map[core.Variant]*metrics.Running, len(variants))
		for _, v := range variants {
			acc[v] = &metrics.Running{}
		}
		var opt metrics.Running
		for _, cell := range trials {
			tally.addCounts(cell.exactOpt, cell.totalOpt)
			opt.Add(cell.opt)
			for _, v := range variants {
				acc[v].Add(cell.costByVariant[v])
			}
		}
		for _, v := range variants {
			res.RatioByVariant[v].Add(float64(sizes[p]), meanRatio(acc[v], &opt))
		}
	}
	res.ExactFraction = tally.fraction()
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig5bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5(b): MSOA variant performance ratio vs number of microservices\n")
	b.WriteString(metrics.Table("microservices",
		r.RatioByVariant[core.VariantBase],
		r.RatioByVariant[core.VariantDA],
		r.RatioByVariant[core.VariantRC],
		r.RatioByVariant[core.VariantOA]))
	fmt.Fprintf(&b, "exact offline optima: %.0f%%\n", r.ExactFraction*100)
	return b.String()
}
