package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// Fig5aResult reproduces Figure 5(a): MSOA's performance ratio vs the
// number of microservices, for 100 and 200 requests.
type Fig5aResult struct {
	RatioByRequests map[int]*metrics.Series
	// InfeasibleRounds counts skipped rounds across the sweep.
	InfeasibleRounds int
}

// Fig5a runs the Figure 5(a) sweep: T=10 rounds per scenario, plain MSOA
// on true demand.
func Fig5a(cfg Config) (*Fig5aResult, error) {
	c := cfg.withDefaults()
	rng := workload.NewRand(c.Seed)
	res := &Fig5aResult{RatioByRequests: make(map[int]*metrics.Series)}
	rounds := 10
	if c.Quick {
		rounds = 3
	}
	for _, reqs := range []int{100, 200} {
		series := metrics.NewSeries(fmt.Sprintf("ratio R=%d", reqs))
		for _, n := range c.sizes() {
			var cost, opt metrics.Running
			for trial := 0; trial < c.Trials; trial++ {
				scn := workload.Online(rng, onlineConfig(n, reqs, 2, rounds, false))
				run, err := runOnline(scn.TrueRounds, scn.Config(c.auctionOptions(false)), c.optOptions())
				if err != nil {
					return nil, fmt.Errorf("experiments: fig5a n=%d R=%d: %w", n, reqs, err)
				}
				res.InfeasibleRounds += run.Infeasible
				cost.Add(run.SocialCost)
				opt.Add(run.OptimalSum)
			}
			series.Add(float64(n), meanRatio(&cost, &opt))
		}
		res.RatioByRequests[reqs] = series
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig5aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5(a): MSOA performance ratio vs number of microservices\n")
	b.WriteString(metrics.Table("microservices",
		r.RatioByRequests[100], r.RatioByRequests[200]))
	fmt.Fprintf(&b, "infeasible rounds skipped: %d\n", r.InfeasibleRounds)
	return b.String()
}

// Fig5bResult reproduces Figure 5(b) (the paper's variant comparison in
// §V-B): the performance ratio of MSOA, MSOA-DA, MSOA-RC, and MSOA-OA vs
// the number of microservices. Variant costs are measured against a common
// denominator — the per-round offline optima of the TRUE-demand rounds —
// so demand-estimation error shows up as extra cost, exactly the effect
// the paper attributes to the variants.
type Fig5bResult struct {
	RatioByVariant map[core.Variant]*metrics.Series
}

// Fig5b runs the variant comparison sweep.
func Fig5b(cfg Config) (*Fig5bResult, error) {
	c := cfg.withDefaults()
	rng := workload.NewRand(c.Seed)
	res := &Fig5bResult{RatioByVariant: make(map[core.Variant]*metrics.Series)}
	variants := []core.Variant{core.VariantBase, core.VariantDA, core.VariantRC, core.VariantOA}
	for _, v := range variants {
		res.RatioByVariant[v] = metrics.NewSeries(v.String())
	}
	rounds := 10
	if c.Quick {
		rounds = 3
	}
	for _, n := range c.sizes() {
		acc := make(map[core.Variant]*metrics.Running, len(variants))
		var opt metrics.Running
		for _, v := range variants {
			acc[v] = &metrics.Running{}
		}
		for trial := 0; trial < c.Trials; trial++ {
			ocfg := onlineConfig(n, 100, 2, rounds, false)
			ocfg.DemandNoise = 0.35
			scn := workload.Online(rng, ocfg)
			baseCfg := scn.Config(c.auctionOptions(false))
			// Common denominator from the true rounds, unconstrained.
			ref, err := runOnline(scn.TrueRounds, baseCfg, c.optOptions())
			if err != nil {
				return nil, fmt.Errorf("experiments: fig5b reference n=%d: %w", n, err)
			}
			opt.Add(ref.OptimalSum)
			for _, v := range variants {
				vr, vcfg := core.BuildVariant(v, core.VariantParams{}, scn.TrueRounds, scn.EstimatedRounds, baseCfg)
				run, err := runOnlineCostOnly(vr, vcfg)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig5b %s n=%d: %w", v, n, err)
				}
				acc[v].Add(run.SocialCost)
			}
		}
		for _, v := range variants {
			res.RatioByVariant[v].Add(float64(n), meanRatio(acc[v], &opt))
		}
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig5bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5(b): MSOA variant performance ratio vs number of microservices\n")
	b.WriteString(metrics.Table("microservices",
		r.RatioByVariant[core.VariantBase],
		r.RatioByVariant[core.VariantDA],
		r.RatioByVariant[core.VariantRC],
		r.RatioByVariant[core.VariantOA]))
	return b.String()
}
