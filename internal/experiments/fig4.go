package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// Fig4aResult reproduces Figure 4(a): each winning bid's payment plotted
// against its actual (bid) price — the individual-rationality picture. The
// paper's claim, "the payment is always greater than the price", is
// checked per winner.
type Fig4aResult struct {
	// Price and Payment share an x axis of winner rank (sorted by price).
	Price   *metrics.Series
	Payment *metrics.Series
	// Violations counts winners paid below their price (must be 0).
	Violations int
}

// Fig4a runs one representative auction (default parameters of §V-A) and
// collects the per-winner (price, payment) pairs.
func Fig4a(cfg Config) (*Fig4aResult, error) {
	c := cfg.withDefaults()
	rng := workload.NewDerived(c.Seed, "fig4a", 0, 0)
	n := 25
	if c.Quick {
		n = 10
	}
	ins := workload.Instance(rng, stageConfig(n, 100, 2))
	out, err := core.SSAM(ins, c.auctionOptions(false))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4a SSAM: %w", err)
	}
	type pair struct{ price, pay float64 }
	pairs := make([]pair, 0, len(out.Winners))
	for _, w := range out.Winners {
		pairs = append(pairs, pair{price: ins.Bids[w].Price, pay: out.Payments[w]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].price < pairs[j].price })

	res := &Fig4aResult{
		Price:   metrics.NewSeries("price"),
		Payment: metrics.NewSeries("payment"),
	}
	for i, p := range pairs {
		res.Price.Add(float64(i+1), p.price)
		res.Payment.Add(float64(i+1), p.pay)
		if p.pay < p.price-1e-9 {
			res.Violations++
		}
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig4aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4(a): payment vs actual price per winning bid\n")
	b.WriteString(metrics.Table("winner", r.Price, r.Payment))
	fmt.Fprintf(&b, "individual-rationality violations: %d\n", r.Violations)
	return b.String()
}

// Fig4bResult reproduces Figure 4(b): SSAM's running time as the instance
// grows, for 100 and 200 requests. The paper reports sub-100ms runs that
// grow linearly.
type Fig4bResult struct {
	// MillisByRequests maps request count to mean wall time (ms) vs |S|.
	MillisByRequests map[int]*metrics.Series
}

// Fig4b measures SSAM wall time per sweep point. The sampled instances are
// deterministic per (point, trial) cell like every other driver's, but the
// measured times are physical: they vary run to run, and with
// TrialParallelism > 1 concurrent trials contend for cores and inflate
// each other's wall clock. For paper-grade timings run this figure with
// TrialParallelism 1.
func Fig4b(cfg Config) (*Fig4bResult, error) {
	c := cfg.withDefaults()
	requests := []int{100, 200}
	sizes := c.sizes()
	type point struct{ reqs, n int }
	points := make([]point, 0, len(requests)*len(sizes))
	for _, reqs := range requests {
		for _, n := range sizes {
			points = append(points, point{reqs, n})
		}
	}
	cells, err := runSweep(c, "fig4b", len(points), func(rng *workload.Rand, p, _ int) (float64, error) {
		reqs, n := points[p].reqs, points[p].n
		ins := workload.Instance(rng, stageConfig(n, reqs, 2))
		start := time.Now()
		if _, err := core.SSAM(ins, c.auctionOptions(true)); err != nil {
			return 0, fmt.Errorf("experiments: fig4b SSAM n=%d: %w", n, err)
		}
		return float64(time.Since(start).Microseconds()) / 1000, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig4bResult{MillisByRequests: make(map[int]*metrics.Series)}
	for _, reqs := range requests {
		res.MillisByRequests[reqs] = metrics.NewSeries(fmt.Sprintf("ms R=%d", reqs))
	}
	for p, trials := range cells {
		var ms metrics.Running
		for _, v := range trials {
			ms.Add(v)
		}
		res.MillisByRequests[points[p].reqs].Add(float64(points[p].n), ms.Mean())
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig4bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4(b): SSAM running time (ms) vs number of microservices\n")
	b.WriteString(metrics.Table("microservices",
		r.MillisByRequests[100], r.MillisByRequests[200]))
	return b.String()
}
