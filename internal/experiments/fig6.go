package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// Fig6aResult reproduces Figure 6(a): MSOA's performance ratio vs the
// number of rounds T, for different numbers of alternative bids per bidder
// J. The paper observes that larger J and larger T both degrade the ratio.
type Fig6aResult struct {
	RatioByJ map[int]*metrics.Series
	// ExactFraction is the share of per-round denominators solved to
	// optimality.
	ExactFraction float64
}

// fig6aCell is one (J, T, trial) scenario run.
type fig6aCell struct {
	cost, opt          float64
	exactOpt, totalOpt int
}

// Fig6a runs the rounds/bids sweep with windowed bidder arrivals as in
// §V-A (t⁻, t⁺ drawn within [1, T]).
func Fig6a(cfg Config) (*Fig6aResult, error) {
	c := cfg.withDefaults()
	js := []int{1, 2, 4}
	ts := []int{1, 3, 5, 7, 9, 11, 13, 15}
	n := 25
	if c.Quick {
		ts = []int{1, 3}
		n = 10
	}
	type point struct{ j, t int }
	points := make([]point, 0, len(js)*len(ts))
	for _, j := range js {
		for _, t := range ts {
			points = append(points, point{j, t})
		}
	}
	cells, err := runSweep(c, "fig6a", len(points), func(rng *workload.Rand, p, _ int) (fig6aCell, error) {
		j, t := points[p].j, points[p].t
		scn := workload.Online(rng, onlineConfig(n, 100, j, t, true))
		run, err := runOnline(scn.TrueRounds, c.msoaConfig(scn, false), c.optOptions())
		if err != nil {
			return fig6aCell{}, fmt.Errorf("experiments: fig6a T=%d J=%d: %w", t, j, err)
		}
		return fig6aCell{cost: run.SocialCost, opt: run.OptimalSum, exactOpt: run.ExactOpt, totalOpt: run.TotalOpt}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig6aResult{RatioByJ: make(map[int]*metrics.Series)}
	var tally exactTally
	for _, j := range js {
		res.RatioByJ[j] = metrics.NewSeries(fmt.Sprintf("ratio J=%d", j))
	}
	for p, trials := range cells {
		var cost, opt metrics.Running
		for _, cell := range trials {
			tally.addCounts(cell.exactOpt, cell.totalOpt)
			cost.Add(cell.cost)
			opt.Add(cell.opt)
		}
		res.RatioByJ[points[p].j].Add(float64(points[p].t), meanRatio(&cost, &opt))
	}
	res.ExactFraction = tally.fraction()
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig6aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6(a): MSOA performance ratio vs rounds T, per bids-per-bidder J\n")
	b.WriteString(metrics.Table("rounds", r.RatioByJ[1], r.RatioByJ[2], r.RatioByJ[4]))
	fmt.Fprintf(&b, "exact offline optima: %.0f%%\n", r.ExactFraction*100)
	return b.String()
}

// Fig6bResult reproduces Figure 6(b): MSOA's long-run social cost, total
// payment, and the offline optimal cost vs the number of microservices,
// for 100 and 200 requests.
type Fig6bResult struct {
	ByRequests map[int]*Fig6bSeries
	// ExactFraction is the share of per-round denominators solved to
	// optimality.
	ExactFraction float64
}

// Fig6bSeries groups Figure 6(b)'s three curves for one request level.
type Fig6bSeries struct {
	SocialCost *metrics.Series
	Payment    *metrics.Series
	Optimal    *metrics.Series
}

// fig6bCell is one (R, |S|, trial) scenario run.
type fig6bCell struct {
	cost, pay, opt     float64
	exactOpt, totalOpt int
}

// Fig6b runs the online cost sweep (T=10 rounds).
func Fig6b(cfg Config) (*Fig6bResult, error) {
	c := cfg.withDefaults()
	rounds := 10
	if c.Quick {
		rounds = 3
	}
	requests := []int{100, 200}
	sizes := c.sizes()
	type point struct{ reqs, n int }
	points := make([]point, 0, len(requests)*len(sizes))
	for _, reqs := range requests {
		for _, n := range sizes {
			points = append(points, point{reqs, n})
		}
	}
	cells, err := runSweep(c, "fig6b", len(points), func(rng *workload.Rand, p, _ int) (fig6bCell, error) {
		reqs, n := points[p].reqs, points[p].n
		scn := workload.Online(rng, onlineConfig(n, reqs, 2, rounds, false))
		run, err := runOnline(scn.TrueRounds, c.msoaConfig(scn, false), c.optOptions())
		if err != nil {
			return fig6bCell{}, fmt.Errorf("experiments: fig6b n=%d R=%d: %w", n, reqs, err)
		}
		return fig6bCell{
			cost: run.SocialCost, pay: run.Payment, opt: run.OptimalSum,
			exactOpt: run.ExactOpt, totalOpt: run.TotalOpt,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig6bResult{ByRequests: make(map[int]*Fig6bSeries)}
	var tally exactTally
	for _, reqs := range requests {
		res.ByRequests[reqs] = &Fig6bSeries{
			SocialCost: metrics.NewSeries(fmt.Sprintf("social cost R=%d", reqs)),
			Payment:    metrics.NewSeries(fmt.Sprintf("payment R=%d", reqs)),
			Optimal:    metrics.NewSeries(fmt.Sprintf("optimal R=%d", reqs)),
		}
	}
	for p, trials := range cells {
		var cost, pay, opt metrics.Running
		for _, cell := range trials {
			tally.addCounts(cell.exactOpt, cell.totalOpt)
			cost.Add(cell.cost)
			pay.Add(cell.pay)
			opt.Add(cell.opt)
		}
		set := res.ByRequests[points[p].reqs]
		set.SocialCost.Add(float64(points[p].n), cost.Mean())
		set.Payment.Add(float64(points[p].n), pay.Mean())
		set.Optimal.Add(float64(points[p].n), opt.Mean())
	}
	res.ExactFraction = tally.fraction()
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig6bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6(b): MSOA social cost, payment, optimal vs number of microservices\n")
	s100, s200 := r.ByRequests[100], r.ByRequests[200]
	b.WriteString(metrics.Table("microservices",
		s100.SocialCost, s100.Payment, s100.Optimal,
		s200.SocialCost, s200.Payment, s200.Optimal))
	fmt.Fprintf(&b, "exact offline optima: %.0f%%\n", r.ExactFraction*100)
	return b.String()
}
