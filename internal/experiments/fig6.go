package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/metrics"
	"edgeauction/internal/workload"
)

// Fig6aResult reproduces Figure 6(a): MSOA's performance ratio vs the
// number of rounds T, for different numbers of alternative bids per bidder
// J. The paper observes that larger J and larger T both degrade the ratio.
type Fig6aResult struct {
	RatioByJ map[int]*metrics.Series
}

// Fig6a runs the rounds/bids sweep with windowed bidder arrivals as in
// §V-A (t⁻, t⁺ drawn within [1, T]).
func Fig6a(cfg Config) (*Fig6aResult, error) {
	c := cfg.withDefaults()
	rng := workload.NewRand(c.Seed)
	res := &Fig6aResult{RatioByJ: make(map[int]*metrics.Series)}
	ts := []int{1, 3, 5, 7, 9, 11, 13, 15}
	n := 25
	if c.Quick {
		ts = []int{1, 3}
		n = 10
	}
	for _, j := range []int{1, 2, 4} {
		series := metrics.NewSeries(fmt.Sprintf("ratio J=%d", j))
		for _, t := range ts {
			var cost, opt metrics.Running
			for trial := 0; trial < c.Trials; trial++ {
				scn := workload.Online(rng, onlineConfig(n, 100, j, t, true))
				run, err := runOnline(scn.TrueRounds, scn.Config(c.auctionOptions(false)), c.optOptions())
				if err != nil {
					return nil, fmt.Errorf("experiments: fig6a T=%d J=%d: %w", t, j, err)
				}
				cost.Add(run.SocialCost)
				opt.Add(run.OptimalSum)
			}
			series.Add(float64(t), meanRatio(&cost, &opt))
		}
		res.RatioByJ[j] = series
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig6aResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6(a): MSOA performance ratio vs rounds T, per bids-per-bidder J\n")
	b.WriteString(metrics.Table("rounds", r.RatioByJ[1], r.RatioByJ[2], r.RatioByJ[4]))
	return b.String()
}

// Fig6bResult reproduces Figure 6(b): MSOA's long-run social cost, total
// payment, and the offline optimal cost vs the number of microservices,
// for 100 and 200 requests.
type Fig6bResult struct {
	ByRequests map[int]*Fig6bSeries
}

// Fig6bSeries groups Figure 6(b)'s three curves for one request level.
type Fig6bSeries struct {
	SocialCost *metrics.Series
	Payment    *metrics.Series
	Optimal    *metrics.Series
}

// Fig6b runs the online cost sweep (T=10 rounds).
func Fig6b(cfg Config) (*Fig6bResult, error) {
	c := cfg.withDefaults()
	rng := workload.NewRand(c.Seed)
	res := &Fig6bResult{ByRequests: make(map[int]*Fig6bSeries)}
	rounds := 10
	if c.Quick {
		rounds = 3
	}
	for _, reqs := range []int{100, 200} {
		set := &Fig6bSeries{
			SocialCost: metrics.NewSeries(fmt.Sprintf("social cost R=%d", reqs)),
			Payment:    metrics.NewSeries(fmt.Sprintf("payment R=%d", reqs)),
			Optimal:    metrics.NewSeries(fmt.Sprintf("optimal R=%d", reqs)),
		}
		for _, n := range c.sizes() {
			var cost, pay, opt metrics.Running
			for trial := 0; trial < c.Trials; trial++ {
				scn := workload.Online(rng, onlineConfig(n, reqs, 2, rounds, false))
				run, err := runOnline(scn.TrueRounds, scn.Config(c.auctionOptions(false)), c.optOptions())
				if err != nil {
					return nil, fmt.Errorf("experiments: fig6b n=%d R=%d: %w", n, reqs, err)
				}
				cost.Add(run.SocialCost)
				pay.Add(run.Payment)
				opt.Add(run.OptimalSum)
			}
			set.SocialCost.Add(float64(n), cost.Mean())
			set.Payment.Add(float64(n), pay.Mean())
			set.Optimal.Add(float64(n), opt.Mean())
		}
		res.ByRequests[reqs] = set
	}
	return res, nil
}

// Render formats the result as an aligned table.
func (r *Fig6bResult) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6(b): MSOA social cost, payment, optimal vs number of microservices\n")
	s100, s200 := r.ByRequests[100], r.ByRequests[200]
	b.WriteString(metrics.Table("microservices",
		s100.SocialCost, s100.Payment, s100.Optimal,
		s200.SocialCost, s200.Payment, s200.Optimal))
	return b.String()
}
