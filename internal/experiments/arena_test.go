package experiments

import (
	"testing"
	"time"

	"edgeauction/internal/core"
)

func arenaConfig() Config {
	// A non-binding solver budget keeps renders load-independent (same
	// convention as the repro determinism tests).
	return Config{Seed: 5, Quick: true, OptTimeLimit: time.Minute}
}

// TestArenaDefaultRace: the three-way default race runs, every mechanism
// attempts the same rounds, SSAM clears them all, and the truthful
// mechanisms (SSAM, posted price) show zero regret on the probe grid.
func TestArenaDefaultRace(t *testing.T) {
	res, err := Arena(arenaConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mechanisms) != 3 {
		t.Fatalf("default race has %d mechanisms, want 3", len(res.Mechanisms))
	}
	byName := map[string]ArenaMechanism{}
	for _, m := range res.Mechanisms {
		byName[m.Name] = m
		if m.Rounds == 0 {
			t.Errorf("%s attempted no rounds", m.Spec)
		}
		if m.RegretProbes == 0 {
			t.Errorf("%s ran no regret probes", m.Spec)
		}
		if m.Rounds > m.InfeasibleRounds && m.SocialCost <= 0 {
			t.Errorf("%s cleared rounds but reports social cost %v", m.Spec, m.SocialCost)
		}
	}
	ssam := byName[core.NameSSAM]
	if ssam.InfeasibleRounds != 0 {
		t.Errorf("ssam dropped %d rounds on a coverable workload", ssam.InfeasibleRounds)
	}
	if ssam.CompetitiveRatio < 1 {
		t.Errorf("ssam competitive ratio %v below 1 — denominator broken", ssam.CompetitiveRatio)
	}
	for _, name := range []string{core.NameSSAM, core.NamePostedPrice} {
		if m := byName[name]; m.ProfitableDeviations != 0 || m.MaxRegret != 0 {
			t.Errorf("%s shows regret (%d deviations, max %v) — should be truthful on J=1 probes",
				name, m.ProfitableDeviations, m.MaxRegret)
		}
	}
}

// TestArenaDeterministic: identical configs must render identically —
// the arena rides the same seeded-trial machinery as every figure.
func TestArenaDeterministic(t *testing.T) {
	r1, err := Arena(arenaConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Arena(arenaConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Fatalf("arena renders diverged:\n%s\nvs\n%s", r1.Render(), r2.Render())
	}
	j1, err := r1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := r2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("arena JSON diverged between identical runs")
	}
}

// TestArenaRejectsBadSpec: unresolvable specs fail upfront, not per trial.
func TestArenaRejectsBadSpec(t *testing.T) {
	_, err := Arena(arenaConfig(), []core.MechanismSpec{{Name: "no-such-mechanism"}})
	if err == nil {
		t.Fatal("unknown mechanism spec must fail the arena upfront")
	}
}
