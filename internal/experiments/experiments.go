// Package experiments reproduces every figure of the paper's evaluation
// (§V, Figures 3-6): parameter sweeps over the number of microservices,
// requests, rounds, and bids per bidder, with the mechanisms' social cost
// and payments measured against offline optima. Each driver returns
// metrics series that cmd/repro renders as tables/CSV and bench_test.go
// wraps as benchmarks.
//
// Performance-ratio denominators use the exact branch-and-bound optimum
// when it closes within the configured time budget and the LP-relaxation
// lower bound otherwise; the latter can only OVER-state ratios, keeping
// reported results conservative.
package experiments

import (
	"fmt"
	"math"
	"time"

	"edgeauction/internal/core"
	"edgeauction/internal/metrics"
	"edgeauction/internal/obs"
	"edgeauction/internal/optimal"
	"edgeauction/internal/workload"
)

// Config is shared by all experiment drivers.
type Config struct {
	// Seed makes the sweep deterministic.
	Seed int64
	// Trials is how many instances are averaged per sweep point; zero
	// means 5.
	Trials int
	// OptTimeLimit bounds each exact solve; zero means 2s.
	OptTimeLimit time.Duration
	// OptMaxNodes bounds each exact solve's node count; zero means the
	// solver default.
	OptMaxNodes int
	// Quick trims sweeps for use inside testing.B loops: fewer sweep
	// points and trials, smaller instances.
	Quick bool
	// Parallelism is forwarded to core.Options.Parallelism for every
	// auction the drivers run: the worker count of the critical-value
	// payment phase. Zero means GOMAXPROCS, 1 forces serial. Results are
	// bit-identical at every level.
	Parallelism int
	// Mechanism selects the single-stage mechanism the online drivers
	// (Fig5, Fig6, the arena's per-mechanism runs aside) clear rounds
	// through, via core.MSOAConfig.Mechanism. The zero value is SSAM and
	// reproduces the paper's figures bit-identically.
	Mechanism core.MechanismSpec
	// TrialParallelism is the worker count of the sweep runner that fans
	// (sweep point, trial) cells out across goroutines. Zero means
	// GOMAXPROCS, 1 forces serial. Every trial samples from its own
	// DeriveSeed-derived RNG stream, so rendered results are byte-identical
	// at every level for a fixed seed.
	TrialParallelism int
	// Graph, when non-nil, replaces the builtin service topology of the
	// workload drivers (WorkloadOverload, WorkloadSpikes, WorkloadFrontier)
	// — the -topology flag of cmd/repro ends up here. Nil runs each
	// driver's builtin scenario graph.
	Graph *workload.ServiceGraph
	// Tracer, when non-nil, receives one obs.Sweep event per completed
	// (points × trials) grid with the driver tag, cell count, wall-clock,
	// and worker count. It is deliberately NOT forwarded to the auctions
	// inside the cells: per-pick tracing across thousands of cells would
	// swamp any sink, and cells run concurrently. Wire core.Options.Tracer
	// yourself for single-auction deep traces.
	Tracer obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 5
	}
	// An explicitly set OptTimeLimit is respected even in Quick mode (the
	// determinism tests set it non-binding so solver timeouts cannot make
	// renders load-dependent); only the default is trimmed for Quick runs.
	if c.OptTimeLimit == 0 {
		c.OptTimeLimit = 2 * time.Second
		if c.Quick {
			c.OptTimeLimit = 500 * time.Millisecond
		}
	}
	if c.Quick {
		c.Trials = 2
	}
	return c
}

func (c Config) optOptions() optimal.Options {
	return optimal.Options{TimeLimit: c.OptTimeLimit, MaxNodes: c.OptMaxNodes}
}

// auctionOptions builds the single-stage auction options every driver runs
// with, threading the configured payment parallelism through. When the
// outer trial pool already uses more than one worker and the inner payment
// parallelism is left on auto, the inner pool defaults to serial: the
// trial fan-out saturates GOMAXPROCS by itself, and nested auto-sized
// payment pools would only oversubscribe the scheduler. An explicit
// Parallelism setting always wins.
func (c Config) auctionOptions(skipCertificate bool) core.Options {
	par := c.Parallelism
	if par == 0 && c.trialWorkers() > 1 {
		par = 1
	}
	return core.Options{SkipCertificate: skipCertificate, Parallelism: par}
}

// msoaConfig assembles a scenario's MSOAConfig with the configured
// mechanism applied — the single place online drivers pick up
// Config.Mechanism.
func (c Config) msoaConfig(scn *workload.Scenario, skipCertificate bool) core.MSOAConfig {
	mcfg := scn.Config(c.auctionOptions(skipCertificate))
	mcfg.Mechanism = c.Mechanism
	return mcfg
}

// sizes returns the microservice-count sweep (paper: 25-75).
func (c Config) sizes() []int {
	if c.Quick {
		return []int{10, 20}
	}
	return []int{25, 35, 45, 55, 65, 75}
}

// demandScale maps the paper's "number of requests" knob (100 vs 200) onto
// the per-needy demand range: twice the requests, twice the residual
// demand to procure.
func demandScale(requests int) (lo, hi int) {
	factor := float64(requests) / 100
	lo = int(10 * factor)
	hi = int(40 * factor)
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// stageConfig builds the §V-A instance generator configuration for a sweep
// point. Per-bid supply (units) scales with sqrt of the request factor:
// heavier request load both raises the residual demand AND makes yielding
// microservices offer somewhat more per bid, so the market tightens
// gradually instead of slamming into the supply frontier — where costs
// would be dominated by the platform's reserve pool rather than by the
// mechanism under study.
func stageConfig(bidders, requests, bidsPerBidder int) workload.InstanceConfig {
	lo, hi := demandScale(requests)
	supply := math.Sqrt(float64(requests) / 100)
	unitsHi := int(10*supply + 0.5)
	if unitsHi < 1 {
		unitsHi = 1
	}
	needy := bidders / 5
	if needy < 1 {
		needy = 1
	}
	coverHi := 4
	if coverHi > needy {
		coverHi = needy
	}
	return workload.InstanceConfig{
		Bidders:       bidders,
		Needy:         needy,
		BidsPerBidder: bidsPerBidder,
		DemandLo:      lo,
		DemandHi:      hi,
		UnitsLo:       1,
		UnitsHi:       unitsHi,
		CoverLo:       1,
		CoverHi:       coverHi,
	}
}

// onlineConfig assembles the multi-round scenario configuration for the
// online sweeps. Lifetime capacities Θ scale with the request factor: the
// paper's constraint (11) limits participation COUNT independent of load,
// so keeping the supply/demand balance comparable across request levels
// requires Θ to grow with the residual demand — otherwise the R=200
// sweeps measure capacity starvation (reserve-pool purchases) rather than
// the online mechanism.
func onlineConfig(bidders, requests, bidsPerBidder, rounds int, windowed bool) workload.OnlineConfig {
	stage := stageConfig(bidders, requests, bidsPerBidder)
	factor := float64(requests) / 100
	base := stage.CoverHi + 1
	return workload.OnlineConfig{
		Rounds:          rounds,
		Stage:           stage,
		CapacityLo:      int(float64(base) * factor),
		CapacityHi:      int(float64(4*base) * factor),
		WindowedArrival: windowed,
	}
}

// denominator computes the offline-optimal denominator for an instance:
// the exact optimum when the solver closes, else its proven lower bound.
func denominator(ins *core.Instance, opts optimal.Options) (float64, bool, error) {
	res, err := optimal.Solve(ins, opts)
	if err != nil {
		return 0, false, fmt.Errorf("experiments: offline optimum: %w", err)
	}
	if res.Exact {
		return res.Cost, true, nil
	}
	return res.LowerBound, false, nil
}

// meanRatio averages numerator/denominator guarding zero denominators.
func meanRatio(num, den *metrics.Running) float64 {
	if den.Sum() <= 0 {
		return 0
	}
	return num.Sum() / den.Sum()
}
