package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"edgeauction/internal/core"
	"edgeauction/internal/workload"
)

// This file implements the mechanism arena: a head-to-head comparison of
// every registered competitor over the SAME seeded online workload. For
// each mechanism it measures
//
//   - social cost and platform outlay (payments − penalty income),
//   - the competitive ratio against the per-round offline optimum sum
//     (exact branch-and-bound when it closes, LP lower bound otherwise),
//   - truthfulness regret: the largest utility gain any single-bid
//     bidder extracts from a unilateral price misreport across seeded
//     single-stage probe instances (TruthfulnessSweep's probe pattern,
//     run through the Mechanism API for every competitor).
//
// Mechanisms race on identical TrueRounds per trial; per-round offline
// denominators are accumulated per mechanism over the rounds it actually
// cleared, so a mechanism that drops rounds as infeasible is not charged
// an optimum it never attempted (the infeasible-round count is reported
// alongside).

// ArenaMechanism aggregates one competitor's arena metrics.
type ArenaMechanism struct {
	// Spec is the mechanism spec in flag syntax ("name:key=val,…").
	Spec string `json:"spec"`
	// Name is the registry name.
	Name string `json:"name"`
	// Rounds and InfeasibleRounds count attempted and dropped rounds
	// across all trials.
	Rounds           int `json:"rounds"`
	InfeasibleRounds int `json:"infeasible_rounds"`
	// SocialCost is Σ winning raw prices over all cleared rounds.
	SocialCost float64 `json:"social_cost"`
	// TotalPayment is the platform's remuneration outlay; Penalties is
	// its penalty income (double auction no-shows); PlatformOutlay is
	// their difference — the platform utility column, lower is better.
	TotalPayment   float64 `json:"total_payment"`
	Penalties      float64 `json:"penalties"`
	PlatformOutlay float64 `json:"platform_outlay"`
	// OptimalSum is the per-round offline denominator over cleared
	// rounds; CompetitiveRatio is SocialCost/OptimalSum (0 when
	// undefined); ExactOptShare is the fraction of denominators the
	// exact solver closed.
	OptimalSum       float64 `json:"optimal_sum"`
	CompetitiveRatio float64 `json:"competitive_ratio"`
	ExactOptShare    float64 `json:"exact_opt_share"`
	// RegretProbes counts (instance, bidder, factor) misreport probes;
	// ProfitableDeviations counts probes where the deviation beat
	// truthful reporting by more than 1e-6; MaxRegret is the largest
	// observed gain (0 for a mechanism truthful on the probe set).
	RegretProbes         int     `json:"regret_probes"`
	ProfitableDeviations int     `json:"profitable_deviations"`
	MaxRegret            float64 `json:"max_regret"`
}

// ArenaResult is the head-to-head table over all competitors.
type ArenaResult struct {
	Seed       int64            `json:"seed"`
	Trials     int              `json:"trials"`
	Rounds     int              `json:"rounds_per_trial"`
	Bidders    int              `json:"bidders"`
	Mechanisms []ArenaMechanism `json:"mechanisms"`
}

// DefaultArenaSpecs returns the standard three-way race: SSAM, the
// posted-price mechanism and the futures+spot double auction, all at
// their default parameters.
func DefaultArenaSpecs() []core.MechanismSpec {
	return []core.MechanismSpec{
		{Name: core.NameSSAM},
		{Name: core.NamePostedPrice},
		{Name: core.NameDoubleAuction},
	}
}

// arenaCell is one trial's per-mechanism measurements.
type arenaCell struct {
	runs    []arenaRun
	regrets []arenaRegret
}

type arenaRun struct {
	rounds, infeasible int
	cost, payment      float64
	penalties          float64
	optSum             float64
	exactOpt, totalOpt int
}

type arenaRegret struct {
	probes, profitable int
	maxGain            float64
}

// Arena races the given mechanism specs head-to-head. Nil or empty specs
// select DefaultArenaSpecs.
func Arena(cfg Config, specs []core.MechanismSpec) (*ArenaResult, error) {
	c := cfg.withDefaults()
	if len(specs) == 0 {
		specs = DefaultArenaSpecs()
	}
	for _, spec := range specs {
		if _, err := core.NewMechanism(spec); err != nil {
			return nil, fmt.Errorf("experiments: arena: %w", err)
		}
	}
	n, rounds, probeInstances := 25, 10, 4
	if c.Quick {
		n, rounds, probeInstances = 10, 4, 2
	}

	cells, err := runTrials(c, "arena", c.Trials, func(rng *workload.Rand, _ int) (arenaCell, error) {
		cell := arenaCell{
			runs:    make([]arenaRun, len(specs)),
			regrets: make([]arenaRegret, len(specs)),
		}
		// Online race: every mechanism clears the same scenario.
		scn := workload.Online(rng, onlineConfig(n, 100, 2, rounds, false))
		for si, spec := range specs {
			mcfg := scn.Config(c.auctionOptions(false))
			mcfg.Mechanism = spec
			run, err := runOnline(scn.TrueRounds, mcfg, c.optOptions())
			if err != nil {
				return arenaCell{}, fmt.Errorf("experiments: arena %s: %w", spec.String(), err)
			}
			cell.runs[si] = arenaRun{
				rounds: run.Rounds, infeasible: run.Infeasible,
				cost: run.SocialCost, payment: run.Payment,
				penalties: run.Penalties, optSum: run.OptimalSum,
				exactOpt: run.ExactOpt, totalOpt: run.TotalOpt,
			}
		}
		// Truthfulness regret probes: single-stage, single-bid (J=1)
		// instances; every mechanism faces the same misreports.
		probeRng := rng.Fork()
		for pi := 0; pi < probeInstances; pi++ {
			nb := 8 + probeRng.Intn(8)
			ins := workload.Instance(probeRng, workload.InstanceConfig{
				Bidders: nb, BidsPerBidder: 1,
				DemandLo: 2, DemandHi: 8, UnitsLo: 1, UnitsHi: 3,
			})
			for si, spec := range specs {
				reg, err := probeRegret(spec, ins, nb, c.auctionOptions(true))
				if err != nil {
					return arenaCell{}, fmt.Errorf("experiments: arena regret %s: %w", spec.String(), err)
				}
				cell.regrets[si].probes += reg.probes
				cell.regrets[si].profitable += reg.profitable
				if reg.maxGain > cell.regrets[si].maxGain {
					cell.regrets[si].maxGain = reg.maxGain
				}
			}
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &ArenaResult{Seed: c.Seed, Trials: c.Trials, Rounds: rounds, Bidders: n}
	for si, spec := range specs {
		m := ArenaMechanism{Spec: spec.String()}
		if m.Name = spec.Name; m.Name == "" {
			m.Name = core.NameSSAM
		}
		var tally exactTally
		for _, cell := range cells {
			run := cell.runs[si]
			m.Rounds += run.rounds
			m.InfeasibleRounds += run.infeasible
			m.SocialCost += run.cost
			m.TotalPayment += run.payment
			m.Penalties += run.penalties
			m.OptimalSum += run.optSum
			tally.addCounts(run.exactOpt, run.totalOpt)
			reg := cell.regrets[si]
			m.RegretProbes += reg.probes
			m.ProfitableDeviations += reg.profitable
			if reg.maxGain > m.MaxRegret {
				m.MaxRegret = reg.maxGain
			}
		}
		m.PlatformOutlay = m.TotalPayment - m.Penalties
		if m.OptimalSum > 0 {
			m.CompetitiveRatio = m.SocialCost / m.OptimalSum
		}
		m.ExactOptShare = tally.fraction()
		res.Mechanisms = append(res.Mechanisms, m)
	}
	return res, nil
}

// probeRegret runs the misreport probe grid for one mechanism on one
// instance: truthful clear, then every non-reserve bidder tries every
// misreport factor. Infeasible clears count as zero-utility outcomes —
// a mechanism that refuses to clear pays nobody.
func probeRegret(spec core.MechanismSpec, ins *core.Instance, bidders int, opts core.Options) (arenaRegret, error) {
	var reg arenaRegret
	factors := []float64{0.5, 0.8, 1.2, 1.6, 2.5}
	truthful, err := core.RunMechanism(spec, ins, opts)
	if err != nil && !errors.Is(err, core.ErrInfeasible) {
		return reg, err
	}
	for target := range ins.Bids {
		if workload.IsReserveBid(ins.Bids[target], bidders) {
			continue // platform reserve ladder: not strategic
		}
		base := probeUtility(truthful, ins, target)
		for _, f := range factors {
			dev := ins.Clone()
			dev.Bids[target].Price = ins.Bids[target].TrueCost * f
			out, err := core.RunMechanism(spec, dev, opts)
			if err != nil && !errors.Is(err, core.ErrInfeasible) {
				return reg, err
			}
			reg.probes++
			if gain := probeUtility(out, ins, target) - base; gain > 1e-6 {
				reg.profitable++
				if gain > reg.maxGain {
					reg.maxGain = gain
				}
			}
		}
	}
	return reg, nil
}

// probeUtility is the target bidder's utility under an outcome, with
// true cost taken from the ORIGINAL instance (the deviation changes only
// the report).
func probeUtility(out *core.Outcome, ins *core.Instance, idx int) float64 {
	if out == nil || !out.Won(idx) {
		return 0
	}
	return out.Payments[idx] - ins.Bids[idx].TrueCost
}

// JSON renders the result for results/ARENA.json.
func (r *ArenaResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render formats the head-to-head table.
func (r *ArenaResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mechanism arena: %d trials × %d rounds, %d bidders (seed %d)\n",
		r.Trials, r.Rounds, r.Bidders, r.Seed)
	fmt.Fprintf(&b, "%-28s %12s %14s %12s %10s %12s %10s\n",
		"mechanism", "social cost", "platform outlay", "penalties", "infeas", "ratio", "regret")
	for _, m := range r.Mechanisms {
		ratio := "n/a"
		if m.CompetitiveRatio > 0 {
			ratio = fmt.Sprintf("%.4f", m.CompetitiveRatio)
		}
		fmt.Fprintf(&b, "%-28s %12.2f %14.2f %12.2f %6d/%3d %12s %10.4f\n",
			m.Spec, m.SocialCost, m.PlatformOutlay, m.Penalties,
			m.InfeasibleRounds, m.Rounds, ratio, m.MaxRegret)
	}
	for _, m := range r.Mechanisms {
		fmt.Fprintf(&b, "  %-26s %d/%d profitable misreports, exact optima %.0f%%\n",
			m.Spec, m.ProfitableDeviations, m.RegretProbes, m.ExactOptShare*100)
	}
	return b.String()
}
