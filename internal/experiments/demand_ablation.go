package experiments

import (
	"fmt"
	"strings"

	"edgeauction/internal/demand"
	"edgeauction/internal/metrics"
	"edgeauction/internal/sim"
	"edgeauction/internal/workload"
)

// DemandAblationResult compares demand-estimation schemes (§III) on
// simulated edge-cloud rounds: the AHP-weighted estimator, uniform
// weights, and the oracle that reads the realized backlog directly. The
// realized next-step need (queue backlog at round end) is the ground
// truth; estimation error is priced asymmetrically — over-estimates buy
// resources the service does not need (market price), under-estimates
// leave requests unserved until the next round (reserve price, the
// platform's expensive fallback).
type DemandAblationResult struct {
	// Rows maps scheme name to its aggregate measures.
	Rows []DemandAblationRow
	// Rounds is the number of simulated rounds scored.
	Rounds int
}

// DemandAblationRow is one scheme's aggregate measures.
type DemandAblationRow struct {
	Scheme string
	// Spearman is the rank correlation between estimates and realized
	// backlog over all (round, service) pairs with any activity.
	Spearman float64
	// MisprocureCost is the total asymmetric estimation-error cost.
	MisprocureCost float64
	// Over and Under are total over- and under-estimated units.
	Over, Under int
}

// estimator-error prices (per unit): buying unneeded coverage at the
// market median vs serving unmet demand from the reserve pool.
const (
	overPricePerUnit  = 15.0
	underPricePerUnit = 35.0
)

// DemandAblation runs the estimator comparison.
func DemandAblation(cfg Config) (*DemandAblationResult, error) {
	c := cfg.withDefaults()
	rounds := 12
	services := 30
	if c.Quick {
		rounds = 4
		services = 12
	}

	type scheme struct {
		name string
		est  *demand.Estimator
	}
	ahp, err := demand.NewEstimator(demand.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: demand ablation: %w", err)
	}
	uniform, err := demand.NewEstimator(demand.Config{Weights: demand.Uniform()})
	if err != nil {
		return nil, fmt.Errorf("experiments: demand ablation: %w", err)
	}
	// Estimator.Estimate is a pure function of the indicators, so sharing
	// the estimators across concurrent trials is safe.
	schemes := []scheme{{"AHP weights", ahp}, {"uniform weights", uniform}, {"oracle (backlog)", nil}}

	type acc struct {
		est, truth []float64
	}
	type cell struct {
		accs  []acc
		total int
	}
	cells, err := runTrials(c, "demand-ablation", c.Trials, func(rng *workload.Rand, _ int) (cell, error) {
		v := cell{accs: make([]acc, len(schemes))}
		s, err := sim.New(sim.Config{
			Services: services,
			Rounds:   rounds,
			WorkMean: 600, // contended regime: some services overload
			Seed:     rng.Int63(),
		})
		if err != nil {
			return cell{}, fmt.Errorf("experiments: demand ablation sim: %w", err)
		}
		for _, rep := range s.Run() {
			v.total++
			for id, in := range rep.Indicators {
				truth := float64(rep.QueueLengths[id])
				if truth == 0 && in.ReceivedResponses == 0 {
					continue // idle service: nothing to estimate
				}
				for si, sch := range schemes {
					var estimate float64
					if sch.est == nil {
						estimate = truth // oracle
					} else {
						estimate = sch.est.Estimate(in)
					}
					v.accs[si].est = append(v.accs[si].est, estimate)
					v.accs[si].truth = append(v.accs[si].truth, truth)
				}
			}
		}
		return v, nil
	})
	if err != nil {
		return nil, err
	}

	// Merge per-trial samples in trial order so the pooled slices — and
	// therefore the rank correlations — are independent of scheduling.
	accs := make([]acc, len(schemes))
	total := 0
	for _, v := range cells {
		total += v.total
		for si := range schemes {
			accs[si].est = append(accs[si].est, v.accs[si].est...)
			accs[si].truth = append(accs[si].truth, v.accs[si].truth...)
		}
	}

	res := &DemandAblationResult{Rounds: total}
	for si, sch := range schemes {
		row := DemandAblationRow{Scheme: sch.name}
		// The estimator output is not denominated in backlog units; a
		// platform would calibrate it against history. Apply the single
		// global scale that matches mean estimate to mean truth, THEN
		// price the residual errors — this compares estimator SHAPE, not
		// an arbitrary unit choice.
		var sumEst, sumTruth float64
		for i := range accs[si].est {
			sumEst += accs[si].est[i]
			sumTruth += accs[si].truth[i]
		}
		factor := 1.0
		if sumEst > 0 {
			factor = sumTruth / sumEst
		}
		for i := range accs[si].est {
			diff := int(accs[si].est[i]*factor+0.5) - int(accs[si].truth[i])
			if diff > 0 {
				row.Over += diff
			} else {
				row.Under -= diff
			}
		}
		row.MisprocureCost = overPricePerUnit*float64(row.Over) +
			underPricePerUnit*float64(row.Under)
		if len(accs[si].est) >= 2 {
			rho, err := metrics.Spearman(accs[si].est, accs[si].truth)
			if err != nil {
				return nil, fmt.Errorf("experiments: demand ablation correlation: %w", err)
			}
			row.Spearman = rho
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the comparison.
func (r *DemandAblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: demand estimation scheme (§III) vs realized backlog\n")
	fmt.Fprintf(&b, "%-18s %10s %14s %8s %8s\n", "scheme", "spearman", "misprocure", "over", "under")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 62))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %10.4f %14.2f %8d %8d\n",
			row.Scheme, row.Spearman, row.MisprocureCost, row.Over, row.Under)
	}
	fmt.Fprintf(&b, "(over priced at %.0f/unit market median; under at %.0f/unit reserve)\n",
		overPricePerUnit, underPricePerUnit)
	return b.String()
}
