package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Series is an ordered sequence of (x, y) points, e.g. social cost per
// number of microservices. Points keep insertion order until Sort is called.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Sort orders points by ascending x.
func (s *Series) Sort() {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	x := make([]float64, len(s.X))
	y := make([]float64, len(s.Y))
	for i, j := range idx {
		x[i], y[i] = s.X[j], s.Y[j]
	}
	s.X, s.Y = x, y
}

// At returns the y value for the first point with the given x, and whether
// such a point exists.
func (s *Series) At(x float64) (float64, bool) {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Table renders one or more series sharing an x axis as an aligned text
// table. Series are matched by x value; missing cells render as "-".
func Table(xLabel string, series ...*Series) string {
	xsSet := map[float64]struct{}{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	header := make([]string, 0, len(series)+1)
	header = append(header, xLabel)
	for _, s := range series {
		header = append(header, s.Name)
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, trimFloat(x))
		for _, s := range series {
			if y, ok := s.At(x); ok {
				row = append(row, fmt.Sprintf("%.4f", y))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return renderAligned(header, rows)
}

// WriteCSV emits the series sharing an x axis as CSV with a header row.
func WriteCSV(w io.Writer, xLabel string, series ...*Series) error {
	cw := csv.NewWriter(w)
	header := append([]string{xLabel}, names(series)...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	xsSet := map[float64]struct{}{}
	for _, s := range series {
		for _, x := range s.X {
			xsSet[x] = struct{}{}
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, s := range series {
			if y, ok := s.At(x); ok {
				row = append(row, strconv.FormatFloat(y, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: flush csv: %w", err)
	}
	return nil
}

func names(series []*Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

func trimFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', 6, 64)
}

func renderAligned(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
