package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Count() != 0 || r.Mean() != 0 || r.Stddev() != 0 {
		t.Fatal("zero value must be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Fatalf("count = %d, want 8", r.Count())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", r.Mean())
	}
	// Population sd is 2; sample sd is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(r.Stddev()-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", r.Stddev(), want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if math.Abs(r.Sum()-40) > 1e-12 {
		t.Fatalf("sum = %v, want 40", r.Sum())
	}
	if !strings.Contains(r.String(), "n=8") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	a.AddN(3.5, 4)
	for i := 0; i < 4; i++ {
		b.Add(3.5)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Fatalf("AddN mismatch: %v vs %v", a, b)
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		cut := int(split) % len(xs)
		var left, right, all Running
		for _, x := range xs[:cut] {
			left.Add(x)
		}
		for _, x := range xs[cut:] {
			right.Add(x)
		}
		for _, x := range xs {
			all.Add(x)
		}
		left.Merge(right)
		return left.Count() == all.Count() &&
			math.Abs(left.Mean()-all.Mean()) < 1e-9*(1+math.Abs(all.Mean())) &&
			math.Abs(left.Variance()-all.Variance()) < 1e-6*(1+all.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmptySides(t *testing.T) {
	var a, b Running
	b.Add(7)
	a.Merge(b) // empty <- nonempty
	if a.Count() != 1 || a.Mean() != 7 {
		t.Fatalf("merge into empty failed: %+v", a)
	}
	var c Running
	a.Merge(c) // nonempty <- empty
	if a.Count() != 1 {
		t.Fatalf("merge of empty changed state: %+v", a)
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(5)
	for _, x := range []float64{9, 1, 7, 3, 5} {
		s.Add(x)
	}
	if s.Len() != 5 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Median() != 5 {
		t.Fatalf("median = %v, want 5", s.Median())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Quantile(0.25); got != 3 {
		t.Fatalf("q25 = %v, want 3", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Fatalf("q1 = %v, want 9", got)
	}
	if got := s.Quantile(0.5 + 0.125); got != 6 { // interpolated between 5 and 7
		t.Fatalf("q0.625 = %v, want 6", got)
	}
	if math.Abs(s.Mean()-5) > 1e-12 || math.Abs(s.Sum()-25) > 1e-12 {
		t.Fatalf("mean/sum = %v/%v", s.Mean(), s.Sum())
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(0)
	if s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Underflow(), h.Overflow())
	}
	// Bucket 0 ([0,2)): -1 (clamped), 0, 1.9 => 3.
	if got := h.Bucket(0); got != 3 {
		t.Fatalf("bucket 0 = %d, want 3", got)
	}
	if lo, hi := h.BucketBounds(1); lo != 2 || hi != 4 {
		t.Fatalf("bounds(1) = [%v,%v)", lo, hi)
	}
	if cdf := h.CDF(h.Buckets() - 1); math.Abs(cdf-1) > 1e-12 {
		t.Fatalf("full CDF = %v, want 1", cdf)
	}
	if out := h.Render(20); !strings.Contains(out, "#") {
		t.Fatalf("render produced no bars:\n%s", out)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero buckets":   func() { NewHistogram(0, 1, 0) },
		"inverted range": func() { NewHistogram(5, 1, 4) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			fn()
		})
	}
}

func TestSeriesSortAndAt(t *testing.T) {
	s := NewSeries("x")
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	s.Sort()
	if s.X[0] != 1 || s.X[2] != 3 || s.Y[0] != 10 {
		t.Fatalf("sort failed: %+v", s)
	}
	if y, ok := s.At(2); !ok || y != 20 {
		t.Fatalf("At(2) = %v,%v", y, ok)
	}
	if _, ok := s.At(99); ok {
		t.Fatal("At(99) should miss")
	}
}

func TestTableAlignsAndFillsMissing(t *testing.T) {
	a := NewSeries("alpha")
	a.Add(1, 1.5)
	a.Add(2, 2.5)
	b := NewSeries("beta")
	b.Add(2, 4.5)
	out := Table("k", a, b)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell placeholder:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestWriteCSV(t *testing.T) {
	a := NewSeries("alpha")
	a.Add(1, 1.5)
	a.Add(2, 2.5)
	b := NewSeries("beta")
	b.Add(1, 9)
	var sb strings.Builder
	if err := WriteCSV(&sb, "k", a, b); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "k,alpha,beta\n") {
		t.Fatalf("bad header: %q", got)
	}
	if !strings.Contains(got, "1,1.5,9\n") {
		t.Fatalf("bad row: %q", got)
	}
	if !strings.Contains(got, "2,2.5,\n") {
		t.Fatalf("missing value should be empty: %q", got)
	}
}
