// Package metrics provides lightweight statistics collection used across the
// simulator, the auction mechanisms, and the experiment harness: running
// moments, histograms, percentiles, time series, and tabular/CSV rendering.
//
// All collectors are deterministic and allocation-light so they can be used
// inside benchmark loops without perturbing the quantity under measurement.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming mean/variance/min/max using Welford's
// algorithm. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records a single observation.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN records the same observation n times.
func (r *Running) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		r.Add(x)
	}
}

// Merge folds other into r, as if all of other's observations had been added
// to r directly (Chan et al. parallel variance combination).
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	n := r.n + other.n
	delta := other.mean - r.mean
	r.mean += delta * float64(other.n) / float64(n)
	r.m2 += other.m2 + delta*delta*float64(r.n)*float64(other.n)/float64(n)
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	r.n = n
}

// Count returns the number of observations.
func (r *Running) Count() int64 { return r.n }

// Mean returns the sample mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Sum returns the sum of all observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Variance returns the unbiased sample variance, or 0 for fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 with no observations.
func (r *Running) Max() float64 { return r.max }

// String renders a compact one-line summary.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		r.n, r.Mean(), r.Stddev(), r.min, r.max)
}

// Sample retains every observation so exact quantiles can be computed.
// Use Running when only moments are needed.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a sample pre-sized for n observations.
func NewSample(n int) *Sample { return &Sample{xs: make([]float64, 0, n)} }

// Add records an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Values returns a copy of the observations in insertion order is not
// guaranteed once quantiles have been computed; callers must not rely on
// ordering.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean returns the sample mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Sum returns the sum of the observations.
func (s *Sample) Sum() float64 {
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between order statistics. It returns 0 with no observations.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or 0 with no observations.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}
