package metrics

import (
	"math"
	"testing"
)

func TestPearsonPerfectAndInverse(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, err := Pearson(x, yPos); err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect positive: r=%v err=%v", r, err)
	}
	if r, err := Pearson(x, yNeg); err != nil || math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect negative: r=%v err=%v", r, err)
	}
}

func TestPearsonNoVariance(t *testing.T) {
	if r, err := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); err != nil || r != 0 {
		t.Fatalf("constant input should give 0: r=%v err=%v", r, err)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point must error")
	}
}

func TestSpearmanMonotoneTransformInvariance(t *testing.T) {
	// Spearman depends only on ranks: y and exp(y) give identical rho.
	x := []float64{3, 1, 4, 1.5, 9, 2.6}
	y := []float64{0.2, -1, 5, 0.4, 12, 1}
	yExp := make([]float64, len(y))
	for i, v := range y {
		yExp[i] = math.Exp(v)
	}
	r1, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Spearman(x, yExp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1-r2) > 1e-12 {
		t.Fatalf("monotone transform changed Spearman: %v vs %v", r1, r2)
	}
}

func TestRanksMidRankTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
	// All equal: everyone gets the middle rank.
	got = ranks([]float64{7, 7, 7})
	for _, r := range got {
		if r != 2 {
			t.Fatalf("all-ties ranks = %v, want all 2", got)
		}
	}
}

func TestSampleValuesCopy(t *testing.T) {
	s := NewSample(2)
	s.Add(1)
	s.Add(2)
	vals := s.Values()
	vals[0] = 99
	if s.Values()[0] == 99 {
		t.Fatal("Values must return a copy")
	}
}
