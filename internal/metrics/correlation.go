package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or 0 when either sample has no variance. It returns an error on
// length mismatch or fewer than two points.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: correlation inputs have lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("metrics: correlation needs at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Spearman returns the Spearman rank correlation of two equal-length
// samples (Pearson over mid-ranks, which handles ties correctly).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("metrics: correlation inputs have lengths %d and %d", len(xs), len(ys))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns mid-ranks (average rank for ties) to a sample.
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	i := 0
	for i < len(idx) {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Mid-rank of the tie group spanning positions [i, j].
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = mid
		}
		i = j + 1
	}
	return out
}
