package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into fixed-width buckets over [Lo, Hi).
// Observations outside the range are clamped into the first or last bucket
// and tracked separately as underflow/overflow.
type Histogram struct {
	lo, hi    float64
	width     float64
	counts    []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram builds a histogram with n equal-width buckets spanning
// [lo, hi). It panics if n <= 0 or hi <= lo, which indicates a programming
// error rather than a data condition.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("metrics: histogram bucket count must be positive, got %d", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("metrics: histogram range must be increasing, got [%g, %g)", lo, hi))
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(n),
		counts: make([]int64, n),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
		h.counts[0]++
	case x >= h.hi:
		h.overflow++
		h.counts[len(h.counts)-1]++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.counts) { // guard against float rounding at hi
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Underflow returns the count of observations below the range.
func (h *Histogram) Underflow() int64 { return h.underflow }

// Overflow returns the count of observations at or above the range.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// BucketBounds returns [lo, hi) of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	return h.lo + float64(i)*h.width, h.lo + float64(i+1)*h.width
}

// CDF returns the empirical cumulative fraction of observations falling at
// or below the upper bound of bucket i.
func (h *Histogram) CDF(i int) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int64
	for j := 0; j <= i && j < len(h.counts); j++ {
		cum += h.counts[j]
	}
	return float64(cum) / float64(h.total)
}

// Render draws an ASCII bar chart, one row per bucket, scaled so the fullest
// bucket uses width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	var peak int64 = 1
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	for i, c := range h.counts {
		lo, hi := h.BucketBounds(i)
		bar := int(math.Round(float64(c) / float64(peak) * float64(width)))
		fmt.Fprintf(&b, "[%8.3g, %8.3g) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}
