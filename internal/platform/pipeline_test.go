package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// seededPolicy bids a price that is a pure function of (id, round), so
// two servers driven by identical agent sets gather identical bids.
func seededPolicy(id int) BidPolicy {
	return func(msg *AnnounceMsg) []WireBid {
		if (msg.T+id)%5 == 0 {
			return nil // deterministic abstention exercises the deadline path
		}
		covers := make([]int, len(msg.Demand))
		for i := range covers {
			covers[i] = i
		}
		price := float64(3 + (id*7+msg.T*13)%40)
		return []WireBid{
			{Alt: 0, Price: price, Covers: covers, Units: 2},
			{Alt: 1, Price: price + 2, Covers: covers[:1], Units: 1},
		}
	}
}

func demandFor(t int) ([]int, []int) {
	return []int{1 + t%3, 2, 1 + (t/2)%2}, []int{101, 102, 103}
}

// runSeededRounds drives `rounds` rounds against a fresh server with
// nAgents seeded agents, serially or pipelined, and returns the WAL
// bytes, the final state hash, and the summary.
func runSeededRounds(t *testing.T, rounds, nAgents int, pipelined bool) ([]byte, string, *json.RawMessage) {
	t.Helper()
	walPath := filepath.Join(t.TempDir(), "round.wal")
	wal, err := CreateWAL(walPath, false)
	if err != nil {
		t.Fatalf("create wal: %v", err)
	}
	srv := startServer(t, ServerConfig{BidDeadline: 200 * time.Millisecond, WAL: wal})
	for id := 1; id <= nAgents; id++ {
		dialAgent(t, srv.Addr(), AgentConfig{ID: id, Capacity: 50, Policy: seededPolicy(id)})
	}

	if pipelined {
		err = srv.RunPipelined(context.Background(), rounds, demandFor, nil)
	} else {
		for i := 1; i <= rounds && err == nil; i++ {
			demand, needy := demandFor(i)
			_, err = srv.RunRound(demand, needy)
		}
	}
	if err != nil {
		t.Fatalf("run rounds (pipelined=%v): %v", pipelined, err)
	}

	_, st := srv.SnapshotState()
	if st == nil {
		t.Fatal("no mechanism state after rounds")
	}
	sumJSON, err := json.Marshal(srv.Summary())
	if err != nil {
		t.Fatalf("marshal summary: %v", err)
	}
	if err := wal.Close(); err != nil {
		t.Fatalf("close wal: %v", err)
	}
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	raw := json.RawMessage(sumJSON)
	return walBytes, st.Hash(), &raw
}

// TestPipelinedByteIdenticalToSerial is the tentpole determinism proof:
// overlapping round t+1's gather with round t's settle must not change a
// single byte of the WAL, the mechanism state hash, or the summary.
func TestPipelinedByteIdenticalToSerial(t *testing.T) {
	const rounds, agents = 12, 6
	serialWAL, serialHash, serialSum := runSeededRounds(t, rounds, agents, false)
	pipeWAL, pipeHash, pipeSum := runSeededRounds(t, rounds, agents, true)

	if !bytes.Equal(serialWAL, pipeWAL) {
		t.Errorf("WAL bytes differ between serial (%d bytes) and pipelined (%d bytes) runs", len(serialWAL), len(pipeWAL))
	}
	if serialHash != pipeHash {
		t.Errorf("state hash differs: serial %s, pipelined %s", serialHash, pipeHash)
	}
	if !reflect.DeepEqual(serialSum, pipeSum) {
		t.Errorf("summaries differ:\nserial    %s\npipelined %s", *serialSum, *pipeSum)
	}
	if len(serialWAL) == 0 {
		t.Error("serial WAL is empty; the comparison proved nothing")
	}
}

// TestPipelinedOutcomesInOrder checks the settle consumer observes every
// round exactly once, in order, and that an onOutcome error stops the
// pipeline and cancels the in-flight gather.
func TestPipelinedOutcomesInOrder(t *testing.T) {
	srv := startServer(t, ServerConfig{BidDeadline: 200 * time.Millisecond})
	for id := 1; id <= 3; id++ {
		dialAgent(t, srv.Addr(), AgentConfig{ID: id, Capacity: 50, Policy: coveringPolicy(float64(5*id), 3)})
	}
	var seen []int
	err := srv.RunPipelined(context.Background(), 5, func(t int) ([]int, []int) {
		return []int{2, 1}, nil
	}, func(out *RoundOutcome) error {
		seen = append(seen, out.T)
		return nil
	})
	if err != nil {
		t.Fatalf("pipelined run: %v", err)
	}
	if !reflect.DeepEqual(seen, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("settled rounds out of order: %v", seen)
	}

	stop := errors.New("stop here")
	seen = seen[:0]
	err = srv.RunPipelined(context.Background(), 5, func(t int) ([]int, []int) {
		return []int{2, 1}, nil
	}, func(out *RoundOutcome) error {
		seen = append(seen, out.T)
		if len(seen) == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("want onOutcome error surfaced, got %v", err)
	}
	if len(seen) != 2 {
		t.Fatalf("pipeline ran past the stopping outcome: settled %v", seen)
	}
	// The server must remain usable after an aborted pipeline.
	if _, err := srv.RunRound([]int{1}, nil); err != nil {
		t.Fatalf("round after aborted pipeline: %v", err)
	}
}

// TestPipelinedHonorsContext proves cancellation mid-run stops the
// pipeline with a wrapped context error, like RunRoundContext.
func TestPipelinedHonorsContext(t *testing.T) {
	srv := startServer(t, ServerConfig{BidDeadline: 2 * time.Second})
	// One registered agent that never bids pins every gather at the
	// deadline, guaranteeing the cancel lands mid-gather.
	dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: nil})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	err := srv.RunPipelined(ctx, 10, func(t int) ([]int, []int) { return []int{1}, nil }, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
