package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// BidPolicy decides an agent's bids for an announced round. Returning an
// empty slice abstains. Implementations must be deterministic per call;
// they run on the agent's receive goroutine.
type BidPolicy func(announce *AnnounceMsg) []WireBid

// AgentConfig parameterizes a microservice agent.
type AgentConfig struct {
	// ID is the agent's bidder identifier (positive, unique).
	ID int
	// Capacity is Θ_i; 0 means unlimited.
	Capacity int
	// Arrive/Depart bound the participation window; both 0 means always.
	Arrive, Depart int
	// Policy produces bids per round; nil abstains from every round.
	Policy BidPolicy
	// DialTimeout bounds the connection attempt; zero means 3s.
	DialTimeout time.Duration
	// WriteTimeout bounds sends; zero means 2s.
	WriteTimeout time.Duration
}

func (c AgentConfig) dialTimeout() time.Duration {
	if c.DialTimeout == 0 {
		return 3 * time.Second
	}
	return c.DialTimeout
}

func (c AgentConfig) writeTimeout() time.Duration {
	if c.WriteTimeout == 0 {
		return 2 * time.Second
	}
	return c.WriteTimeout
}

// Award records a payment received by the agent.
type Award struct {
	T       int
	Alt     int
	Payment float64
}

// Agent is a microservice-side client of the auction platform.
type Agent struct {
	cfg  AgentConfig
	c    *conn
	done chan struct{}
	wg   sync.WaitGroup
	wmu  sync.Mutex // serializes protocol writes (policy sends vs Submit)

	mu        sync.Mutex
	awards    []Award
	rounds    int
	lastErr   error
	shutdown  bool
	rejection []RejectMsg
}

// Dial connects and registers an agent with the platform at addr, then
// starts its receive loop.
func Dial(addr string, cfg AgentConfig) (*Agent, error) {
	return DialContext(context.Background(), addr, cfg)
}

// DialContext is Dial honoring ctx during the connection attempt and the
// registration handshake. The effective connect deadline is the earlier
// of ctx's deadline and cfg.DialTimeout; a cancellation that arrives
// mid-handshake closes the connection and returns the context error.
func DialContext(ctx context.Context, addr string, cfg AgentConfig) (*Agent, error) {
	if cfg.ID <= 0 {
		return nil, fmt.Errorf("platform: agent id must be positive, got %d", cfg.ID)
	}
	dialer := net.Dialer{Timeout: cfg.dialTimeout()}
	raw, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("platform: dial %s: %w", addr, err)
	}
	// Propagate a cancellation that lands between connect and welcome by
	// closing the socket out from under the handshake reads/writes; the
	// surfaced "use of closed connection" is rewritten to ctx.Err().
	stop := context.AfterFunc(ctx, func() { _ = raw.Close() })
	defer stop()
	a := &Agent{cfg: cfg, c: newConn(raw), done: make(chan struct{})}
	hello := &Envelope{Type: TypeHello, Hello: &HelloMsg{
		AgentID: cfg.ID, Capacity: cfg.Capacity, Arrive: cfg.Arrive, Depart: cfg.Depart,
	}}
	if err := a.c.send(hello, cfg.writeTimeout()); err != nil {
		_ = a.c.close()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("platform: dial %s: %w", addr, ctx.Err())
		}
		return nil, err
	}
	env, err := a.c.recv(cfg.dialTimeout())
	if err != nil {
		_ = a.c.close()
		if ctx.Err() != nil {
			return nil, fmt.Errorf("platform: dial %s: %w", addr, ctx.Err())
		}
		return nil, fmt.Errorf("platform: agent %d registration: %w", cfg.ID, err)
	}
	switch env.Type {
	case TypeWelcome:
	case TypeReject:
		// Admission control refused the registration (circuit open).
		_ = a.c.close()
		code := RejectCircuitOpen
		if env.Reject != nil {
			code = env.Reject.Code
		}
		return nil, fmt.Errorf("platform: agent %d registration rejected: %s", cfg.ID, code)
	case TypeError:
		_ = a.c.close()
		return nil, fmt.Errorf("%w: registration rejected: %s", ErrProtocol, env.Error)
	default:
		_ = a.c.close()
		return nil, fmt.Errorf("%w: expected welcome, got %q", ErrProtocol, env.Type)
	}
	if !stop() {
		// The cancel fired after the welcome and the socket is closing;
		// the agent would be dead on arrival.
		_ = a.c.close()
		return nil, fmt.Errorf("platform: dial %s: %w", addr, ctx.Err())
	}

	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.recvLoop()
	}()
	return a, nil
}

func (a *Agent) recvLoop() {
	defer close(a.done)
	for {
		env, err := a.c.recv(0)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				a.setErr(err)
			}
			return
		}
		switch env.Type {
		case TypeAnnounce:
			a.onAnnounce(env.Announce)
		case TypeResult:
			a.onResult(env.Result)
		case TypeReject:
			if env.Reject != nil {
				a.mu.Lock()
				a.rejection = append(a.rejection, *env.Reject)
				a.mu.Unlock()
			}
		case TypeShutdown:
			a.mu.Lock()
			a.shutdown = true
			a.mu.Unlock()
			return
		case TypeError:
			a.setErr(fmt.Errorf("%w: server error: %s", ErrProtocol, env.Error))
			return
		}
	}
}

func (a *Agent) onAnnounce(msg *AnnounceMsg) {
	if msg == nil {
		return
	}
	a.mu.Lock()
	a.rounds++
	a.mu.Unlock()
	if a.cfg.Policy == nil {
		return
	}
	bids := a.cfg.Policy(msg)
	if len(bids) == 0 {
		return
	}
	env := &Envelope{Type: TypeBid, Bid: &BidSubmitMsg{T: msg.T, Bids: bids}}
	a.wmu.Lock()
	err := a.c.send(env, a.cfg.writeTimeout())
	a.wmu.Unlock()
	if err != nil {
		a.setErr(err)
	}
}

// Submit sends a raw round-tagged bid message outside the policy path.
// The chaos harness uses it to emit deliberately stale or duplicate
// submissions: the server must discard a wrong round tag (and any bid
// beyond the first for the current round) without unseating the agent's
// live bid. Safe to call concurrently with the receive loop.
func (a *Agent) Submit(t int, bids []WireBid) error {
	env := &Envelope{Type: TypeBid, Bid: &BidSubmitMsg{T: t, Bids: bids}}
	a.wmu.Lock()
	defer a.wmu.Unlock()
	return a.c.send(env, a.cfg.writeTimeout())
}

// Abort kills the connection without the graceful close handshake: it
// arms SO_LINGER(0) so the kernel sends a TCP RST instead of a FIN, then
// closes the socket. Unlike Close it does not wait for the receive loop
// to exit, so a BidPolicy — which runs ON the receive goroutine — may
// call it to simulate the agent crashing mid-bid.
func (a *Agent) Abort() {
	if tc, ok := a.c.raw.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = a.c.close()
}

func (a *Agent) onResult(msg *ResultMsg) {
	if msg == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, aw := range msg.Awards {
		if aw.Bidder == a.cfg.ID {
			a.awards = append(a.awards, Award{T: msg.T, Alt: aw.Alt, Payment: aw.Payment})
		}
	}
}

func (a *Agent) setErr(err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastErr == nil {
		a.lastErr = err
	}
}

// Awards returns the payments received so far.
func (a *Agent) Awards() []Award {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Award(nil), a.awards...)
}

// Earnings sums all payments received.
func (a *Agent) Earnings() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total float64
	for _, aw := range a.awards {
		total += aw.Payment
	}
	return total
}

// RoundsSeen returns how many announcements the agent has received.
func (a *Agent) RoundsSeen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rounds
}

// Err returns the first asynchronous error observed, if any.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}

// Rejections returns the typed backpressure replies received so far
// (admission-control sheds: rate_limited, queue_full). A rejection does
// not end the conversation; the agent stays registered.
func (a *Agent) Rejections() []RejectMsg {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]RejectMsg(nil), a.rejection...)
}

// ShutdownSeen reports whether the server announced shutdown.
func (a *Agent) ShutdownSeen() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shutdown
}

// Done is closed when the receive loop exits (server gone or Close called).
func (a *Agent) Done() <-chan struct{} { return a.done }

// Close disconnects the agent and waits for its receive loop to stop.
func (a *Agent) Close() error {
	err := a.c.close()
	a.wg.Wait()
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("platform: close agent %d: %w", a.cfg.ID, err)
	}
	return nil
}
