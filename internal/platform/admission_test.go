package platform

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTokenBucketRejectsFlood: with a 1-token bucket, the first
// submission of a burst is admitted and the rest bounce back as typed
// rate_limited rejections — and the rejected agent stays registered with
// its live bid still counted.
func TestTokenBucketRejectsFlood(t *testing.T) {
	srv := startServer(t, ServerConfig{
		BidDeadline: 600 * time.Millisecond,
		Admission:   AdmissionConfig{BidRate: 0.5, BidBurst: 1},
	})
	agent := dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: coveringPolicy(10, 3)})

	type res struct {
		out *RoundOutcome
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, err := srv.RunRound([]int{2}, nil)
		done <- res{out, err}
	}()
	// The policy's own bid consumes the only token; these resubmissions
	// must each earn a rate_limited reply.
	waitFor(t, "round announce", func() bool { return agent.RoundsSeen() > 0 })
	for i := 0; i < 4; i++ {
		if err := agent.Submit(1, []WireBid{{Alt: 9, Price: 1, Covers: []int{0}, Units: 1}}); err != nil {
			t.Fatalf("submit flood %d: %v", i, err)
		}
	}
	waitFor(t, "rate-limited rejections", func() bool { return len(agent.Rejections()) >= 3 })

	r := <-done
	if r.err != nil {
		t.Fatalf("round: %v", r.err)
	}
	if r.out.Bids != 1 || len(r.out.Awards) != 1 {
		t.Fatalf("live bid unseated by flood: %+v", r.out)
	}
	for _, rej := range agent.Rejections() {
		if rej.Code != RejectRateLimited {
			t.Fatalf("want code %q, got %q", RejectRateLimited, rej.Code)
		}
		if rej.Agent != 1 {
			t.Fatalf("rejection for wrong agent: %+v", rej)
		}
	}
	if srv.AgentCount() != 1 {
		t.Fatal("rejected agent was dropped; backpressure must not unseat the connection")
	}
	if got := srv.Metrics().Counter("platform_bids_rejected_total").Value(); got < 3 {
		t.Fatalf("rejection counter %d, want >= 3", got)
	}
}

// TestCircuitBreakerOpensAndReadmits: two consecutive read-error drops
// open agent 7's circuit; re-registration bounces with circuit_open
// until the cool-down, then a half-open probe is admitted and a
// delivered bid closes the breaker for good.
func TestCircuitBreakerOpensAndReadmits(t *testing.T) {
	srv := startServer(t, ServerConfig{
		BidDeadline: 300 * time.Millisecond,
		Admission:   AdmissionConfig{BreakerThreshold: 2, BreakerCooldown: 400 * time.Millisecond},
	})

	flap := func() {
		a, err := Dial(srv.Addr(), AgentConfig{ID: 7})
		if err != nil {
			t.Fatalf("flap dial: %v", err)
		}
		waitFor(t, "registration", func() bool { return srv.AgentCount() == 1 })
		a.Abort() // RST: the server sees a read error, a qualifying drop cause
		waitFor(t, "drop", func() bool { return srv.AgentCount() == 0 })
	}
	flap()
	flap()

	if _, err := Dial(srv.Addr(), AgentConfig{ID: 7}); err == nil || !strings.Contains(err.Error(), RejectCircuitOpen) {
		t.Fatalf("want circuit_open registration rejection, got %v", err)
	}
	// A different agent is unaffected: the breaker is per-agent.
	other := dialAgent(t, srv.Addr(), AgentConfig{ID: 8, Policy: coveringPolicy(5, 2)})
	_ = other

	time.Sleep(450 * time.Millisecond) // past the cool-down: half-open

	probe, err := Dial(srv.Addr(), AgentConfig{ID: 7, Policy: coveringPolicy(3, 2)})
	if err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	defer func() { _ = probe.Close() }()
	// A delivered bid closes the breaker; after that, a single further
	// drop (below the threshold) must not lock the agent out again.
	if _, err := srv.RunRound([]int{1}, nil); err != nil {
		t.Fatalf("round: %v", err)
	}
	probe.Abort()
	waitFor(t, "probe drop", func() bool { return srv.AgentCount() == 1 })
	back, err := Dial(srv.Addr(), AgentConfig{ID: 7})
	if err != nil {
		t.Fatalf("agent locked out after breaker reset: %v", err)
	}
	_ = back.Close()
}

// TestQueueBoundShedsStaleFlood: the bounded per-round ingest absorbs
// QueueBound submissions from one agent and sheds the rest of a
// stale-round flood with queue_full replies, while the honest agent's
// live bid clears the round untouched.
func TestQueueBoundShedsStaleFlood(t *testing.T) {
	srv := startServer(t, ServerConfig{
		BidDeadline: 600 * time.Millisecond,
		Admission:   AdmissionConfig{QueueBound: 2},
	})
	honest := dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: coveringPolicy(10, 3)})
	flooder := dialAgent(t, srv.Addr(), AgentConfig{ID: 2, Policy: nil})

	type res struct {
		out *RoundOutcome
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, err := srv.RunRound([]int{2}, nil)
		done <- res{out, err}
	}()
	waitFor(t, "round announce", func() bool { return flooder.RoundsSeen() > 0 })
	const flood = 10
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Round tag 99 is stale on purpose: the shed must happen at the
			// bounded queue, before the tag check ever sees the message.
			_ = flooder.Submit(99, []WireBid{{Alt: 0, Price: 1, Covers: []int{0}, Units: 1}})
		}()
	}
	wg.Wait()
	waitFor(t, "queue_full rejections", func() bool { return len(flooder.Rejections()) >= flood-2 })

	r := <-done
	if r.err != nil {
		t.Fatalf("round: %v", r.err)
	}
	if r.out.Bids != 1 || len(r.out.Awards) != 1 || r.out.Awards[0].Bidder != 1 {
		t.Fatalf("honest bid did not clear the round: %+v", r.out)
	}
	for _, rej := range flooder.Rejections() {
		if rej.Code != RejectQueueFull {
			t.Fatalf("want code %q, got %q", RejectQueueFull, rej.Code)
		}
	}
	if srv.AgentCount() != 2 {
		t.Fatal("flooder was dropped; queue shed must keep the connection registered")
	}
	if honest.Err() != nil {
		t.Fatalf("honest agent saw error: %v", honest.Err())
	}
}

// TestAdmissionZeroValueDisabled: a zero AdmissionConfig server behaves
// exactly like the pre-admission engine — no rejects, no breaker state.
func TestAdmissionZeroValueDisabled(t *testing.T) {
	srv := startServer(t, ServerConfig{BidDeadline: 400 * time.Millisecond})
	agent := dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: coveringPolicy(10, 3)})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = srv.RunRound([]int{1}, nil)
	}()
	waitFor(t, "round announce", func() bool { return agent.RoundsSeen() > 0 })
	for i := 0; i < 20; i++ {
		_ = agent.Submit(1, []WireBid{{Alt: 0, Price: 1, Covers: []int{0}, Units: 1}})
	}
	<-done
	if n := len(agent.Rejections()); n != 0 {
		t.Fatalf("zero-value admission produced %d rejections", n)
	}
	if got := srv.Metrics().Counter("platform_bids_rejected_total").Value(); got != 0 {
		t.Fatalf("rejection counter %d with admission disabled", got)
	}
}
