package platform

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// coveringPolicy bids to cover every announced needy microservice at the
// given price.
func coveringPolicy(price float64, units int) BidPolicy {
	return func(msg *AnnounceMsg) []WireBid {
		covers := make([]int, len(msg.Demand))
		for i := range covers {
			covers[i] = i
		}
		return []WireBid{{Alt: 0, Price: price, Covers: covers, Units: units}}
	}
}

func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	if cfg.BidDeadline == 0 {
		cfg.BidDeadline = 300 * time.Millisecond
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close server: %v", err)
		}
	})
	return srv
}

func dialAgent(t *testing.T, addr string, cfg AgentConfig) *Agent {
	t.Helper()
	a, err := Dial(addr, cfg)
	if err != nil {
		t.Fatalf("dial agent %d: %v", cfg.ID, err)
	}
	t.Cleanup(func() {
		if err := a.Close(); err != nil {
			t.Errorf("close agent %d: %v", cfg.ID, err)
		}
	})
	return a
}

func TestPlatformSingleRound(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	cheap := dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: coveringPolicy(10, 5)})
	dear := dialAgent(t, srv.Addr(), AgentConfig{ID: 2, Policy: coveringPolicy(30, 5)})

	out, err := srv.RunRound([]int{3, 2}, []int{101, 102})
	if err != nil {
		t.Fatalf("run round: %v", err)
	}
	if out.Infeasible {
		t.Fatal("round unexpectedly infeasible")
	}
	if out.Bids != 2 {
		t.Fatalf("want 2 collected bids, got %d", out.Bids)
	}
	if len(out.Awards) != 1 || out.Awards[0].Bidder != 1 {
		t.Fatalf("want single award to agent 1, got %+v", out.Awards)
	}
	if out.Awards[0].Payment < 10 {
		t.Fatalf("payment %v below bid price 10 (individual rationality)", out.Awards[0].Payment)
	}

	// The result broadcast must reach both agents; the winner records the
	// award.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && cheap.Earnings() == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := cheap.Earnings(); got != out.Awards[0].Payment {
		t.Fatalf("winner earnings %v != payment %v", got, out.Awards[0].Payment)
	}
	if dear.Earnings() != 0 {
		t.Fatalf("loser earned %v, want 0", dear.Earnings())
	}
}

func TestPlatformInfeasibleRound(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: coveringPolicy(10, 1)})

	out, err := srv.RunRound([]int{5}, nil) // one unit per round < demand 5
	if err != nil {
		t.Fatalf("run round: %v", err)
	}
	if !out.Infeasible {
		t.Fatal("round should be infeasible with a single 1-unit bid")
	}
}

func TestPlatformCapacityExhaustion(t *testing.T) {
	// Agent 1 has lifetime capacity for one coverage slot; after winning
	// round 1 its bids are excluded and agent 2 must win round 2.
	srv := startServer(t, ServerConfig{})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Capacity: 1, Policy: coveringPolicy(10, 5)})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 2, Policy: coveringPolicy(20, 5)})

	first, err := srv.RunRound([]int{2}, nil)
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if len(first.Awards) != 1 || first.Awards[0].Bidder != 1 {
		t.Fatalf("round 1: want agent 1 to win, got %+v", first.Awards)
	}
	second, err := srv.RunRound([]int{2}, nil)
	if err != nil {
		t.Fatalf("round 2: %v", err)
	}
	if len(second.Awards) != 1 || second.Awards[0].Bidder != 2 {
		t.Fatalf("round 2: want agent 2 to win (agent 1 exhausted), got %+v", second.Awards)
	}
}

func TestPlatformParticipationWindow(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Arrive: 2, Depart: 3, Policy: coveringPolicy(5, 5)})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 2, Policy: coveringPolicy(25, 5)})

	// Round 1: agent 1 not yet arrived; agent 2 wins despite higher price.
	out, err := srv.RunRound([]int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Awards) != 1 || out.Awards[0].Bidder != 2 {
		t.Fatalf("round 1: want agent 2, got %+v", out.Awards)
	}
	// Round 2: agent 1 active and cheaper.
	out, err = srv.RunRound([]int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Awards) != 1 || out.Awards[0].Bidder != 1 {
		t.Fatalf("round 2: want agent 1, got %+v", out.Awards)
	}
}

func TestPlatformDuplicateRegistrationRejected(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 7})
	if _, err := Dial(srv.Addr(), AgentConfig{ID: 7}); err == nil {
		t.Fatal("want duplicate registration to fail")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPlatformRejectsNonPositiveAgentID(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", AgentConfig{ID: 0}); err == nil {
		t.Fatal("want error for agent id 0")
	}
}

func TestPlatformManyAgentsConcurrently(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	const n = 20
	var wg sync.WaitGroup
	agents := make([]*Agent, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := Dial(srv.Addr(), AgentConfig{
				ID:     i + 1,
				Policy: coveringPolicy(float64(10+i), 2),
			})
			agents[i], errs[i] = a, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i+1, err)
		}
	}
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	if got := srv.AgentCount(); got != n {
		t.Fatalf("registered %d agents, want %d", got, n)
	}

	out, err := srv.RunRound([]int{4, 4, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Infeasible {
		t.Fatal("round infeasible with 20 agents")
	}
	if out.Bids != n {
		t.Fatalf("collected %d bids, want %d", out.Bids, n)
	}
	var paid float64
	for _, aw := range out.Awards {
		paid += aw.Payment
	}
	if paid < out.SocialCost {
		t.Fatalf("total payment %v below social cost %v", paid, out.SocialCost)
	}
}

func TestPlatformAgentDisconnectMidStream(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	quitter := dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: coveringPolicy(5, 5)})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 2, Policy: coveringPolicy(20, 5)})

	if _, err := srv.RunRound([]int{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := quitter.Close(); err != nil {
		t.Fatal(err)
	}
	// The server must notice the drop and clear the next round with the
	// remaining agent.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && srv.AgentCount() != 1 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.AgentCount(); got != 1 {
		t.Fatalf("agent count after disconnect = %d, want 1", got)
	}
	out, err := srv.RunRound([]int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Awards) != 1 || out.Awards[0].Bidder != 2 {
		t.Fatalf("want surviving agent 2 to win, got %+v", out.Awards)
	}
}

func TestPlatformShutdownNotifiesAgents(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{BidDeadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	agent, err := Dial(srv.Addr(), AgentConfig{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-agent.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("agent did not observe server shutdown")
	}
	if !agent.ShutdownSeen() {
		t.Fatal("agent missed the shutdown notice")
	}
}

func TestPlatformSummaryAccumulates(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	for i := 1; i <= 3; i++ {
		dialAgent(t, srv.Addr(), AgentConfig{ID: i, Policy: coveringPolicy(float64(10*i), 3)})
	}
	if srv.Summary() != nil {
		t.Fatal("summary should be nil before the first round")
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		if _, err := srv.RunRound([]int{2}, nil); err != nil {
			t.Fatalf("round %d: %v", r+1, err)
		}
	}
	sum := srv.Summary()
	if sum.Rounds != rounds {
		t.Fatalf("summary rounds = %d, want %d", sum.Rounds, rounds)
	}
	if sum.SocialCost <= 0 || sum.TotalPayment < sum.SocialCost {
		t.Fatalf("implausible summary: %+v", sum)
	}
}

func TestPlatformAbstainingAgent(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 1}) // nil policy: abstains
	dialAgent(t, srv.Addr(), AgentConfig{ID: 2, Policy: coveringPolicy(15, 5)})
	out, err := srv.RunRound([]int{2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bids != 1 {
		t.Fatalf("collected %d bids, want 1 (agent 1 abstains)", out.Bids)
	}
	if len(out.Awards) != 1 || out.Awards[0].Bidder != 2 {
		t.Fatalf("want agent 2 award, got %+v", out.Awards)
	}
}

func TestPlatformServerAddrFormat(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	if !strings.HasPrefix(srv.Addr(), "127.0.0.1:") {
		t.Fatalf("unexpected addr %q", srv.Addr())
	}
}

func TestPlatformRunRoundAfterClose(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RunRound([]int{1}, nil); err == nil {
		t.Fatal("want error for RunRound after Close")
	}
}

func TestPlatformStaleRoundBidsIgnored(t *testing.T) {
	// A raw wire-level client that bids for the wrong round number: the
	// server must discard it and clear with the honest agent.
	srv := startServer(t, ServerConfig{})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 2, Policy: coveringPolicy(20, 5)})

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	enc := json.NewEncoder(raw)
	dec := json.NewDecoder(raw)
	if err := enc.Encode(Envelope{Type: TypeHello, Hello: &HelloMsg{AgentID: 1}}); err != nil {
		t.Fatal(err)
	}
	var welcome Envelope
	if err := dec.Decode(&welcome); err != nil || welcome.Type != TypeWelcome {
		t.Fatalf("welcome = %+v, err %v", welcome, err)
	}
	// Cheap bid tagged with a stale round number, sent before the round
	// even opens.
	if err := enc.Encode(Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: 99, Bids: []WireBid{{Alt: 0, Price: 1, Covers: []int{0}, Units: 5}},
	}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server buffer the stale bid

	out, err := srv.RunRound([]int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Awards) != 1 || out.Awards[0].Bidder != 2 {
		t.Fatalf("stale round-99 bid must be ignored; awards = %+v", out.Awards)
	}
}

func TestPlatformMalformedClientRejected(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	if _, err := raw.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The server must not register the client, and must stay healthy.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if srv.AgentCount() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.AgentCount() != 0 {
		t.Fatal("malformed client was registered")
	}
	dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: coveringPolicy(10, 5)})
	if _, err := srv.RunRound([]int{1}, nil); err != nil {
		t.Fatalf("server unhealthy after malformed client: %v", err)
	}
}

func TestPlatformHelloWithBadIDRejected(t *testing.T) {
	srv := startServer(t, ServerConfig{})
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	enc := json.NewEncoder(raw)
	dec := json.NewDecoder(raw)
	if err := enc.Encode(Envelope{Type: TypeHello, Hello: &HelloMsg{AgentID: -3}}); err != nil {
		t.Fatal(err)
	}
	var resp Envelope
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type != TypeError {
		t.Fatalf("want error envelope, got %+v", resp)
	}
}

func TestPlatformAuditLog(t *testing.T) {
	var buf syncBuffer
	srv := startServer(t, ServerConfig{Audit: NewAudit(&buf)})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 1, Policy: coveringPolicy(10, 5)})

	if _, err := srv.RunRound([]int{2}, []int{42}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RunRound([]int{9000}, nil); err != nil { // infeasible
		t.Fatal(err)
	}

	records, err := ReadAudit(buf.reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("audit records = %d, want 2", len(records))
	}
	first := records[0]
	if first.T != 1 || first.Infeasible || len(first.Awards) != 1 {
		t.Fatalf("first record malformed: %+v", first)
	}
	if len(first.NeedyIDs) != 1 || first.NeedyIDs[0] != 42 {
		t.Fatalf("needy ids not audited: %+v", first.NeedyIDs)
	}
	if len(first.Bids) != 1 || first.Bids[0].Bidder != 1 {
		t.Fatalf("bids not audited: %+v", first.Bids)
	}
	if first.UnixMillis == 0 {
		t.Fatal("timestamp missing")
	}
	if !records[1].Infeasible {
		t.Fatal("second record should be infeasible")
	}
}

func TestReadAuditRejectsGarbage(t *testing.T) {
	if _, err := ReadAudit(strings.NewReader("nope\n")); err == nil {
		t.Fatal("want parse error")
	}
	if _, err := ReadAudit(strings.NewReader(`{"kind":"other","t":1}` + "\n")); err == nil {
		t.Fatal("want kind error")
	}
	records, err := ReadAudit(strings.NewReader(""))
	if err != nil || len(records) != 0 {
		t.Fatalf("empty stream should parse to zero records: %v, %d", err, len(records))
	}
}

// syncBuffer is a mutex-guarded bytes buffer for concurrent audit writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *syncBuffer) reader() *strings.Reader {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.NewReader(string(b.buf))
}

func TestPlatformStaleThenLiveBidGathered(t *testing.T) {
	// Regression for the gather loop: a stale-tagged bid that races past
	// the announce-time drain must NOT knock its agent out of the pending
	// set — the agent's forthcoming current-round bid still counts.
	srv := startServer(t, ServerConfig{BidDeadline: 2 * time.Second})
	dialAgent(t, srv.Addr(), AgentConfig{ID: 2, Policy: coveringPolicy(20, 5)})

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	enc := json.NewEncoder(raw)
	dec := json.NewDecoder(raw)
	if err := enc.Encode(Envelope{Type: TypeHello, Hello: &HelloMsg{AgentID: 1}}); err != nil {
		t.Fatal(err)
	}
	var welcome Envelope
	if err := dec.Decode(&welcome); err != nil || welcome.Type != TypeWelcome {
		t.Fatalf("welcome = %+v, err %v", welcome, err)
	}

	type roundResult struct {
		out *RoundOutcome
		err error
	}
	done := make(chan roundResult, 1)
	go func() {
		out, err := srv.RunRound([]int{1}, nil)
		done <- roundResult{out, err}
	}()

	// Wait for the announce so the stale bid lands AFTER the server's
	// announce-time channel drain, i.e. inside the gather loop proper.
	var announce Envelope
	for {
		if err := dec.Decode(&announce); err != nil {
			t.Fatalf("waiting for announce: %v", err)
		}
		if announce.Type == TypeAnnounce {
			break
		}
	}
	tag := announce.Announce.T
	if err := enc.Encode(Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: tag + 7, Bids: []WireBid{{Alt: 0, Price: 1, Covers: []int{0}, Units: 5}},
	}}); err != nil {
		t.Fatal(err)
	}
	// Give the gather loop time to consume and discard the stale message
	// before the live bid arrives.
	time.Sleep(100 * time.Millisecond)
	if err := enc.Encode(Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: tag, Bids: []WireBid{{Alt: 0, Price: 1, Covers: []int{0}, Units: 5}},
	}}); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.out.Bids != 2 {
		t.Fatalf("want both live bids gathered, got %d", res.out.Bids)
	}
	if len(res.out.Awards) != 1 || res.out.Awards[0].Bidder != 1 {
		t.Fatalf("live bid after a stale one must still win; awards = %+v", res.out.Awards)
	}
}

func TestPlatformDuplicateBidNotDoubleCounted(t *testing.T) {
	// Regression for the fan-in gather loop: the reader keeps only the
	// first queued bid per agent, but once the forwarder has drained the
	// queue a resubmission slips through to fan-in. It must neither append
	// the agent's bids a second time nor decrement the pending count again
	// — the latter would clear the round while an honest slower agent is
	// still pending, silently dropping its bid.
	srv := startServer(t, ServerConfig{BidDeadline: 2 * time.Second})

	// Two raw wire-level clients so the test controls bid timing exactly.
	dialRaw := func(id int) (*json.Encoder, *json.Decoder) {
		t.Helper()
		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = raw.Close() })
		enc := json.NewEncoder(raw)
		dec := json.NewDecoder(raw)
		if err := enc.Encode(Envelope{Type: TypeHello, Hello: &HelloMsg{AgentID: id}}); err != nil {
			t.Fatal(err)
		}
		var welcome Envelope
		if err := dec.Decode(&welcome); err != nil || welcome.Type != TypeWelcome {
			t.Fatalf("welcome = %+v, err %v", welcome, err)
		}
		return enc, dec
	}
	enc1, dec1 := dialRaw(1)
	enc2, dec2 := dialRaw(2)

	type roundResult struct {
		out *RoundOutcome
		err error
	}
	done := make(chan roundResult, 1)
	go func() {
		out, err := srv.RunRound([]int{1}, nil)
		done <- roundResult{out, err}
	}()

	waitAnnounce := func(dec *json.Decoder) int {
		t.Helper()
		for {
			var env Envelope
			if err := dec.Decode(&env); err != nil {
				t.Fatalf("waiting for announce: %v", err)
			}
			if env.Type == TypeAnnounce {
				return env.Announce.T
			}
		}
	}
	tag := waitAnnounce(dec1)
	_ = waitAnnounce(dec2)

	// Agent 1 answers, then resubmits a cheaper current-round bid. The
	// gaps let the forwarder drain the first message so the duplicate
	// reaches fan-in rather than being dropped at the reader.
	if err := enc1.Encode(Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: tag, Bids: []WireBid{{Alt: 0, Price: 10, Covers: []int{0}, Units: 5}},
	}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := enc1.Encode(Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: tag, Bids: []WireBid{{Alt: 1, Price: 0.5, Covers: []int{0}, Units: 5}},
	}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	// Agent 2 (the honest slow bidder) undercuts agent 1's first bid. If
	// the duplicate had decremented pending again, the round would already
	// have cleared without this bid.
	if err := enc2.Encode(Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: tag, Bids: []WireBid{{Alt: 0, Price: 1, Covers: []int{0}, Units: 5}},
	}}); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.out.Bids != 2 {
		t.Fatalf("gathered %d bids, want 2 (first from agent 1 + agent 2; duplicate discarded)", res.out.Bids)
	}
	if len(res.out.Awards) != 1 || res.out.Awards[0].Bidder != 2 {
		t.Fatalf("slow honest agent 2 must win; awards = %+v", res.out.Awards)
	}
}

func TestPlatformCloseRacesRunRound(t *testing.T) {
	// Close racing a round in flight must neither panic nor deadlock, and
	// a second Close must be an error-free no-op. Run several iterations
	// with staggered close times to vary the interleaving under -race.
	for iter := 0; iter < 4; iter++ {
		srv, err := NewServer("127.0.0.1:0", ServerConfig{BidDeadline: 50 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		agents := make([]*Agent, 0, 4)
		for id := 1; id <= 4; id++ {
			a, err := Dial(srv.Addr(), AgentConfig{ID: id, Policy: coveringPolicy(float64(10*id), 5)})
			if err != nil {
				t.Fatal(err)
			}
			agents = append(agents, a)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, _ = srv.RunRound([]int{2, 1}, nil) // may legitimately error if Close wins
		}()
		go func(iter int) {
			defer wg.Done()
			time.Sleep(time.Duration(iter*20) * time.Millisecond)
			_ = srv.Close()
		}(iter)
		wg.Wait()
		if err := srv.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
		for _, a := range agents {
			_ = a.Close()
		}
	}
}
