package platform

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"edgeauction/internal/core"
	"edgeauction/internal/obs"
)

// SnapshotKind is the kind tag on snapshot files.
const SnapshotKind = "edgeauction-snapshot"

// Scripted crash points inside Server.RunRound, in execution order. The
// names describe what the outside world has seen when the process dies
// there, which is what decides how much a recovery can (and must) get
// back:
//
//   - CrashMidGather: the round was announced but no record was written.
//     The WAL ends at round t-1; recovery re-runs round t from scratch.
//   - CrashPreAnnounce: the winner set was selected and the record
//     durably appended, but no bidder heard the result. The WAL ends at
//     round t; recovery resumes at t+1 with the logged state.
//   - CrashPostAnnounce: bidders saw their awards. Because the WAL is
//     flushed BEFORE the announce, the round they saw is already durable
//     — this is the ordering that makes announced awards survivable.
const (
	CrashMidGather    = "mid-gather"
	CrashPreAnnounce  = "pre-announce"
	CrashPostAnnounce = "post-announce"
)

// ErrCrashed marks a simulated process kill injected through
// FaultInjection.Crash. RunRound errors wrap it so harnesses can tell a
// scripted crash from a real operational fault.
var ErrCrashed = errors.New("simulated crash")

// LogicalClock timestamps audit/WAL records with the round number itself
// instead of wall-clock time, making identically-seeded runs produce
// byte-identical logs (which the soak gates compare with cmp(1)).
func LogicalClock(t int) int64 { return int64(t) }

// WAL is the platform's write-ahead log: one AuditRecord JSON line per
// cleared round, appended and flushed to the OS BEFORE the round's awards
// are announced to bidders, so no externalized round can be lost to a
// crash. Records carry the capacity/window maps in force and the
// post-round state hash, which makes Recover's suffix replay exact.
// Append is serialized and safe for concurrent use.
type WAL struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	enc   *json.Encoder
	fsync bool
	path  string
}

// CreateWAL opens (creating or appending to) a write-ahead log at path.
// With fsync set, every append also forces the file to stable storage —
// durable against power loss, not just process death — at a per-round
// fsync cost.
func CreateWAL(path string, fsync bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("platform: open WAL %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	return &WAL{f: f, w: w, enc: json.NewEncoder(w), fsync: fsync, path: path}, nil
}

// Path returns the log's file path.
func (l *WAL) Path() string { return l.path }

// Append durably logs one round record: stamp, encode, flush to the OS,
// and (when enabled) fsync. The record's UnixMillis is stamped with the
// logical clock when unset — WAL bytes must be a pure function of the
// round sequence or the recovery hash check and the soak byte-compare
// would both be meaningless.
func (l *WAL) Append(rec *AuditRecord) error {
	rec.Kind = AuditKind
	if rec.UnixMillis == 0 {
		rec.UnixMillis = LogicalClock(rec.T)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(rec); err != nil {
		return fmt.Errorf("platform: encode WAL record %d: %w", rec.T, err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("platform: flush WAL: %w", err)
	}
	if l.fsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("platform: fsync WAL: %w", err)
		}
	}
	return nil
}

// Close flushes, syncs, and closes the log.
func (l *WAL) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("platform: flush WAL: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("platform: fsync WAL: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("platform: close WAL: %w", err)
	}
	return nil
}

// SnapshotFile is one durable checkpoint of the platform's mechanism
// state, written atomically (tmp + rename) by WriteSnapshot.
type SnapshotFile struct {
	// Kind is always SnapshotKind.
	Kind string `json:"kind"`
	// Round is the last platform round consumed when the snapshot was
	// taken (aborted rounds consume round numbers without producing WAL
	// records, so this can exceed the mechanism's processed-round count).
	Round int `json:"round"`
	// State is the mechanism's cross-round state (ψ, χ, summary).
	State *core.MSOAState `json:"state"`
	// Hash is State.Hash(), stored so a torn or bit-rotted snapshot is
	// detected and skipped at load time.
	Hash string `json:"hash"`
}

// WriteSnapshot atomically writes a checkpoint into dir (created if
// needed) as snapshot-<round>.json and returns the path. A crash during
// the write leaves at worst an orphaned .tmp file, never a half-written
// snapshot under the final name.
func WriteSnapshot(dir string, round int, st *core.MSOAState) (string, error) {
	if st == nil {
		st = &core.MSOAState{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("platform: snapshot dir: %w", err)
	}
	snap := SnapshotFile{Kind: SnapshotKind, Round: round, State: st, Hash: st.Hash()}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", fmt.Errorf("platform: marshal snapshot: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("snapshot-%08d.json", round))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("platform: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("platform: commit snapshot: %w", err)
	}
	return path, nil
}

// LoadLatestSnapshot returns the newest hash-valid snapshot in dir, or
// (nil, nil) when the directory is empty, absent, or holds only invalid
// snapshots — snapshots are an optimization over full-WAL replay, so a
// corrupt one is skipped (older valid ones are tried next), never fatal.
func LoadLatestSnapshot(dir string) (*SnapshotFile, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	if err != nil {
		return nil, fmt.Errorf("platform: list snapshots: %w", err)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(entries)))
	for _, path := range entries {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var snap SnapshotFile
		if err := json.Unmarshal(data, &snap); err != nil {
			continue
		}
		if snap.Kind != SnapshotKind || snap.State == nil || snap.Hash != snap.State.Hash() {
			continue
		}
		return &snap, nil
	}
	return nil, nil
}

// RecoveredState is the outcome of Recover: everything a restarted
// platform needs to continue the auction exactly where the dead process
// left it.
type RecoveredState struct {
	// State is the mechanism state after replaying the WAL suffix.
	State *core.MSOAState `json:"state"`
	// NextRound is the first round the restarted platform should run.
	NextRound int `json:"next_round"`
	// SnapshotRound is the checkpoint the replay started from (0 when
	// recovery replayed the whole WAL).
	SnapshotRound int `json:"snapshot_round"`
	// Replayed counts WAL records re-run through the mechanism.
	Replayed int `json:"replayed"`
	// Truncated reports that the WAL ended in a torn record (the usual
	// crash signature); the complete prefix was recovered.
	Truncated bool `json:"truncated,omitempty"`
	// Hash is State.Hash(), matching the last replayed record's
	// state_hash field.
	Hash string `json:"hash"`
}

// Recover rebuilds platform state from the latest valid snapshot plus the
// WAL suffix, replaying each logged round through a shadow mechanism (the
// same replay the chaos auditor runs online) and asserting after every
// record that the replayed state reaches the hash the live process logged.
// A hash mismatch is a hard error: it means the WAL does not describe the
// state it claims, and resuming from it would silently corrupt ψ and every
// future payment.
//
// cfg plays the role of ServerConfig.Auction; its Capacity/Windows maps
// are not mutated (replay works on copies). A missing WAL file and a
// missing/empty snapshot dir are both fine — recovery from nothing is a
// fresh start at round 1.
func Recover(walPath, snapshotDir string, cfg core.MSOAConfig) (*RecoveredState, error) {
	var snap *SnapshotFile
	if snapshotDir != "" {
		var err error
		if snap, err = LoadLatestSnapshot(snapshotDir); err != nil {
			return nil, err
		}
	}

	var records []*AuditRecord
	truncated := false
	if walPath != "" {
		f, err := os.Open(walPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// No WAL yet: first boot, or a crash before the first append.
		case err != nil:
			return nil, fmt.Errorf("platform: open WAL %s: %w", walPath, err)
		default:
			records, err = ReadAudit(f)
			closeErr := f.Close()
			if err != nil {
				if !errors.Is(err, obs.ErrTruncated) {
					return nil, fmt.Errorf("platform: recover WAL: %w", err)
				}
				// Torn tail: the crash cut a record mid-write. The complete
				// prefix is exactly the set of rounds that were externalized.
				truncated = true
			}
			if closeErr != nil {
				return nil, fmt.Errorf("platform: close WAL: %w", closeErr)
			}
		}
	}

	// Replay on copies: the caller's maps keep learning live
	// registrations and must not see replay-time mutations.
	rcfg := cfg
	rcfg.Capacity = copyIntMap(cfg.Capacity)
	rcfg.Windows = copyWindowMap(cfg.Windows)
	rcfg.Options.Tracer = nil

	var snapState *core.MSOAState
	snapRound := 0
	if snap != nil {
		snapState = snap.State
		snapRound = snap.Round
	}
	m := core.RestoreMSOA(rcfg, snapState)

	rs := &RecoveredState{SnapshotRound: snapRound, NextRound: snapRound + 1, Truncated: truncated}
	for _, rec := range records {
		if rec.T <= snapRound {
			// Already folded into the snapshot.
			if rec.T+1 > rs.NextRound {
				rs.NextRound = rec.T + 1
			}
			continue
		}
		ReplayRecord(m, rec, rcfg.Capacity, rcfg.Windows)
		rs.Replayed++
		if rec.T+1 > rs.NextRound {
			rs.NextRound = rec.T + 1
		}
		if rec.StateHash != "" {
			if got := m.Snapshot().Hash(); got != rec.StateHash {
				return nil, fmt.Errorf("platform: recovery diverged at round %d: replayed state hash %s, WAL logged %s", rec.T, got, rec.StateHash)
			}
		}
	}
	rs.State = m.Snapshot()
	rs.Hash = rs.State.Hash()
	return rs, nil
}

// ReplayRecord re-runs one audit/WAL record through the shadow mechanism
// m. capacity/windows, when non-nil, must be the live maps backing m's
// config: a record carrying its own maps (WAL records do) replaces their
// contents first, so the replayed round filters candidates under exactly
// the registrations the live round saw. Records without maps (plain audit
// sink records) leave the caller's maps alone — the chaos auditor learns
// them from AgentJoin trace events instead.
func ReplayRecord(m *core.MSOA, rec *AuditRecord, capacity map[int]int, windows map[int]core.BidderWindow) *core.RoundResult {
	if rec.Capacity != nil && capacity != nil {
		for k := range capacity {
			delete(capacity, k)
		}
		for k, v := range rec.Capacity {
			capacity[k] = v
		}
	}
	if rec.Windows != nil && windows != nil {
		for k := range windows {
			delete(windows, k)
		}
		for k, v := range rec.Windows {
			windows[k] = v
		}
	}
	return m.RunRound(core.Round{T: rec.T, Instance: rec.Instance()})
}

func copyIntMap(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyWindowMap(m map[int]core.BidderWindow) map[int]core.BidderWindow {
	out := make(map[int]core.BidderWindow, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
