package platform

import (
	"context"
	"time"
)

// RunPipelined clears `rounds` consecutive auction rounds with the
// settle stage of round t overlapping the ingest of round t+1: each
// iteration announces the next round first, then runs SSAM selection,
// critical-value payments, the WAL append and the award fan-out for the
// round before it, and only then blocks on the new round's bid wait.
// Bids stream into the open gather window from the per-connection read
// loops the whole time, so by the time the settle finishes most (often
// all) of the next round's bids have already landed — the mechanism's
// CPU time hides inside the agents' think time and network latency
// instead of adding to it. The announce-before-settle order matters on
// a single core: settling first would run the solver to completion
// before any agent had even heard the round, serializing the stages.
//
// At most one round is ever gathered ahead, rounds settle strictly in
// sequence, and the WAL-before-announce invariant holds per round
// exactly as in RunRound.
//
// next supplies each round's residual demand and needy ids, keyed by the
// absolute round number (continuing after a Resume). onOutcome, when
// non-nil, observes each settled round in order; returning an error
// stops the pipeline (the in-flight gather is aborted; its round number
// stays consumed, matching a context-aborted RunRoundContext).
//
// Determinism: because the ingest buffer re-emits bids in canonical
// (Bidder, Alt) order and rounds settle strictly in sequence, a
// pipelined run produces byte-identical WAL records, audit lines, state
// hashes and summaries to the same rounds run serially — the chaos
// harness's pipelined scenario proves this on every soak. One caveat:
// with a round-batching tracer sink (obs.RoundSink), round t+1's
// bid-received events may land in round t's batch, so trace-batch
// grouping — not content — can differ from a serial run.
//
// RunPipelined must not be interleaved with concurrent RunRound calls.
func (s *Server) RunPipelined(ctx context.Context, rounds int, next func(t int) (demand []int, needyIDs []int), onOutcome func(*RoundOutcome) error) error {
	s.mu.Lock()
	base := s.round
	s.mu.Unlock()

	var prev *roundState
	settlePrev := func() error {
		if prev == nil {
			return nil
		}
		rs := prev
		prev = nil
		out, err := s.settleRound(rs)
		if err != nil {
			return err
		}
		if onOutcome != nil {
			return onOutcome(out)
		}
		return nil
	}

	for i := 0; i < rounds; i++ {
		demand, needyIDs := next(base + i + 1)
		rs, aerr := s.announceRound(ctx, demand, needyIDs)
		// Give the just-announced round's ingest path a scheduling window
		// before occupying the processor with the solve (see
		// ServerConfig.PipelineYield). A plain runtime.Gosched is not
		// enough: right after the broadcast the connection read loops are
		// typically not runnable yet — their readiness sits in the
		// netpoller — so a yield with an empty run queue returns
		// immediately and the solve still wins the processor. A timer
		// park forces the netpoll drain.
		if y := s.cfg.PipelineYield; y > 0 {
			time.Sleep(y)
		}
		// Settle the previous round while the just-announced round's bids
		// stream in. It was fully gathered before this round was
		// announced, so it settles even if the announce failed.
		if serr := settlePrev(); serr != nil {
			if rs != nil {
				s.abortGather(rs)
			}
			return serr
		}
		if aerr != nil {
			return aerr
		}
		if werr := s.awaitGather(ctx, rs); werr != nil {
			return werr
		}
		prev = rs
	}
	return settlePrev()
}
