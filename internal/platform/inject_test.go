package platform

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"edgeauction/internal/obs"
)

func bidPolicy(price float64) BidPolicy {
	return func(msg *AnnounceMsg) []WireBid {
		return []WireBid{{Alt: 1, Price: price, Covers: []int{0}, Units: 2}}
	}
}

// TestSendFaultDropsAgentOnAnnounce injects an announce failure for one
// of two agents: the victim must be dropped with the write-timeout cause
// without any socket-level fault, and the round must clear on the
// survivor's bid alone.
func TestSendFaultDropsAgentOnAnnounce(t *testing.T) {
	rec := &obs.Recorder{}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		BidDeadline: 2 * time.Second,
		Tracer:      rec,
		Fault: FaultInjection{
			SendFault: func(round, agentID int, msgType string) error {
				if agentID == 2 && msgType == TypeAnnounce {
					return errors.New("injected partition")
				}
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	a1, err := Dial(srv.Addr(), AgentConfig{ID: 1, Policy: bidPolicy(10)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a1.Close() }()
	a2, err := Dial(srv.Addr(), AgentConfig{ID: 2, Policy: bidPolicy(5)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a2.Close() }()
	waitCond(t, "both agents registered", func() bool { return srv.AgentCount() == 2 })

	out, err := srv.RunRound([]int{2}, nil)
	if err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if out.Infeasible || len(out.Awards) != 1 || out.Awards[0].Bidder != 1 {
		t.Fatalf("outcome = %+v, want award to agent 1 only", out)
	}
	if srv.AgentCount() != 1 {
		t.Fatalf("agent count = %d, want 1 after injected drop", srv.AgentCount())
	}
	drops := rec.ByKind(obs.KindAgentDrop)
	if len(drops) != 1 {
		t.Fatalf("agent_drop events = %d, want 1 (%v)", len(drops), rec.Kinds())
	}
	if drop := drops[0].(obs.AgentDrop); drop.ID != 2 || drop.Cause != obs.DropWriteTimeout {
		t.Fatalf("drop = %+v, want agent 2 with cause %q", drop, obs.DropWriteTimeout)
	}
}

// TestCorruptPaymentReachesAwards proves the test-only payment
// corruption hook changes what the platform broadcasts and audits while
// leaving the mechanism's own state on the true payments — the defect
// shape the chaos auditor must catch.
func TestCorruptPaymentReachesAwards(t *testing.T) {
	var mu sync.Mutex
	truth := map[int]float64{}
	var audited []*AuditRecord
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		BidDeadline: 2 * time.Second,
		Audit: NewAuditSink(func(rec *AuditRecord) error {
			audited = append(audited, rec)
			return nil
		}),
		Fault: FaultInjection{
			CorruptPayment: func(round int, award WireAward) float64 {
				mu.Lock()
				truth[award.Bidder] = award.Payment
				mu.Unlock()
				return award.Payment / 2
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	a1, err := Dial(srv.Addr(), AgentConfig{ID: 1, Policy: bidPolicy(10)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a1.Close() }()
	waitCond(t, "agent registered", func() bool { return srv.AgentCount() == 1 })

	out, err := srv.RunRound([]int{2}, nil)
	if err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if len(out.Awards) != 1 {
		t.Fatalf("awards = %+v, want 1", out.Awards)
	}
	mu.Lock()
	want := truth[1] / 2
	mu.Unlock()
	if out.Awards[0].Payment != want {
		t.Fatalf("broadcast payment = %v, want corrupted %v", out.Awards[0].Payment, want)
	}
	if len(audited) != 1 || len(audited[0].Awards) != 1 || audited[0].Awards[0].Payment != want {
		t.Fatalf("audited awards = %+v, want corrupted payment %v", audited, want)
	}
	// The mechanism's cumulative budget advanced on the TRUE payment.
	if sum := srv.Summary(); sum == nil || sum.TotalPayment != truth[1] {
		t.Fatalf("summary = %+v, want mechanism total on true payment %v", srv.Summary(), truth[1])
	}
}

// TestStaleBidsDrainedBeforeAnnounce parks two stale round-1 bid
// messages in the agent's buffer between rounds, then runs round 2: the
// announce-time drain must clear both so the live round-2 bid lands and
// counts.
func TestStaleBidsDrainedBeforeAnnounce(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{BidDeadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	peer := dialRaw(t, srv.Addr(), 1, 0)
	defer func() { _ = peer.conn.Close() }()
	waitCond(t, "peer registered", func() bool { return srv.AgentCount() == 1 })

	done := make(chan *RoundOutcome, 1)
	go func() {
		out, err := srv.RunRound([]int{1}, nil)
		if err != nil {
			t.Error(err)
		}
		done <- out
	}()
	ann := peer.recv()
	peer.send(&Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: ann.Announce.T, Bids: []WireBid{{Alt: 1, Price: 3, Covers: []int{0}, Units: 1}},
	}})
	if res := peer.recv(); res.Type != TypeResult || len(res.Result.Awards) != 1 {
		t.Fatalf("round 1 result = %+v", res)
	}
	<-done

	// Two stale submissions arrive between rounds; with nobody gathering
	// they sit in the agent's bid buffer.
	for i := 0; i < 2; i++ {
		peer.send(&Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
			T: ann.Announce.T, Bids: []WireBid{{Alt: 1, Price: 999, Covers: []int{0}, Units: 1}},
		}})
	}
	// Give the server's read loop time to park both in the buffer.
	time.Sleep(50 * time.Millisecond)

	go func() {
		out, err := srv.RunRound([]int{1}, nil)
		if err != nil {
			t.Error(err)
		}
		done <- out
	}()
	ann2 := peer.recv()
	if ann2.Type != TypeAnnounce {
		t.Fatalf("expected announce, got %q", ann2.Type)
	}
	peer.send(&Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: ann2.Announce.T, Bids: []WireBid{{Alt: 1, Price: 7, Covers: []int{0}, Units: 1}},
	}})
	out := <-done
	if out.Infeasible || len(out.Awards) != 1 {
		t.Fatalf("round 2 outcome = %+v, want the live bid to win", out)
	}
	if out.Bids != 1 {
		t.Fatalf("round 2 collected %d bids, want only the live one", out.Bids)
	}
}

// TestDelayedThenLiveBidBuffered sends a stale-tagged bid immediately
// followed by the live one mid-gather: both must buffer (capacity 2), the
// stale tag must be discarded by the gather loop, and the live bid must
// clear the round — regardless of forwarder scheduling.
func TestDelayedThenLiveBidBuffered(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{BidDeadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	peer := dialRaw(t, srv.Addr(), 1, 0)
	defer func() { _ = peer.conn.Close() }()
	waitCond(t, "peer registered", func() bool { return srv.AgentCount() == 1 })

	done := make(chan *RoundOutcome, 1)
	go func() {
		out, err := srv.RunRound([]int{1}, nil)
		if err != nil {
			t.Error(err)
		}
		done <- out
	}()
	ann := peer.recv()
	// A bid delayed past its own round's deadline arrives now, tagged with
	// the previous round, back-to-back with the live bid.
	peer.send(&Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: ann.Announce.T - 1, Bids: []WireBid{{Alt: 1, Price: 999, Covers: []int{0}, Units: 1}},
	}})
	peer.send(&Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: ann.Announce.T, Bids: []WireBid{{Alt: 1, Price: 4, Covers: []int{0}, Units: 1}},
	}})
	out := <-done
	if out.Infeasible || len(out.Awards) != 1 || out.Awards[0].Payment < 4 {
		t.Fatalf("outcome = %+v, want live bid (price 4) to win", out)
	}
}

// TestAbortFromPolicy crashes an agent from inside its own bid policy
// (which runs on the receive goroutine — Close would deadlock there):
// the server must drop it and clear the round on the survivor.
func TestAbortFromPolicy(t *testing.T) {
	// A crashed agent never answers, so the gather phase runs to the full
	// deadline; keep it short.
	srv, err := NewServer("127.0.0.1:0", ServerConfig{BidDeadline: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	good, err := Dial(srv.Addr(), AgentConfig{ID: 1, Policy: bidPolicy(10)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = good.Close() }()

	hold := make(chan *Agent, 1)
	crasher, err := Dial(srv.Addr(), AgentConfig{ID: 2, Policy: func(msg *AnnounceMsg) []WireBid {
		a := <-hold
		a.Abort()
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	hold <- crasher
	waitCond(t, "both agents registered", func() bool { return srv.AgentCount() == 2 })

	out, err := srv.RunRound([]int{2}, nil)
	if err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if out.Infeasible || len(out.Awards) != 1 || out.Awards[0].Bidder != 1 {
		t.Fatalf("outcome = %+v, want survivor's award", out)
	}
	waitCond(t, "crashed agent deregistered", func() bool { return srv.AgentCount() == 1 })
	select {
	case <-crasher.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("aborted agent's receive loop did not exit")
	}
}

// TestAuditSinkAfterTraceFlush asserts the ordering contract the chaos
// auditor depends on: the per-round trace batch (flushed by the
// platform-scope RoundClose) is delivered before the same round's audit
// record.
func TestAuditSinkAfterTraceFlush(t *testing.T) {
	var order []string // RunRound goroutine only; no mutex needed
	sink := obs.NewRoundSink(func(round int, events []obs.Event) {
		order = append(order, fmt.Sprintf("trace%d", round))
	})
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		BidDeadline: 2 * time.Second,
		Tracer:      sink,
		Audit: NewAuditSink(func(rec *AuditRecord) error {
			order = append(order, fmt.Sprintf("audit%d", rec.T))
			return nil
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	a1, err := Dial(srv.Addr(), AgentConfig{ID: 1, Policy: bidPolicy(10)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a1.Close() }()
	waitCond(t, "agent registered", func() bool { return srv.AgentCount() == 1 })

	for i := 0; i < 2; i++ {
		if _, err := srv.RunRound([]int{1}, nil); err != nil {
			t.Fatalf("round %d: %v", i+1, err)
		}
	}
	want := []string{"trace1", "audit1", "trace2", "audit2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
