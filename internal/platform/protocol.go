// Package platform turns the mechanism into a deployable distributed
// system: an auctioneer daemon (the edge platform) speaking a JSON-line TCP
// protocol with microservice agents. Each round the auctioneer announces
// the residual demand, collects bids until a deadline, runs the online
// auction (core.MSOA), pays winners, and broadcasts the result — the §II
// message flow made concrete.
package platform

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Message types on the wire. Every line is one JSON-encoded Envelope.
const (
	// TypeHello registers an agent (agent -> server).
	TypeHello = "hello"
	// TypeWelcome acknowledges registration (server -> agent).
	TypeWelcome = "welcome"
	// TypeAnnounce opens a bidding round (server -> agents).
	TypeAnnounce = "announce"
	// TypeBid submits an agent's alternative bids (agent -> server).
	TypeBid = "bid"
	// TypeResult closes a round with winners and payments
	// (server -> agents).
	TypeResult = "result"
	// TypeError reports a protocol violation before disconnect.
	TypeError = "error"
	// TypeShutdown tells agents the platform is going away.
	TypeShutdown = "shutdown"
)

// Envelope frames every protocol message.
type Envelope struct {
	Type     string        `json:"type"`
	Hello    *HelloMsg     `json:"hello,omitempty"`
	Welcome  *WelcomeMsg   `json:"welcome,omitempty"`
	Announce *AnnounceMsg  `json:"announce,omitempty"`
	Bid      *BidSubmitMsg `json:"bid,omitempty"`
	Result   *ResultMsg    `json:"result,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// HelloMsg registers an agent with the platform.
type HelloMsg struct {
	// AgentID is the microservice's bidder identifier; must be positive
	// and unique across live connections.
	AgentID int `json:"agent_id"`
	// Capacity is Θ_i, the lifetime coverage the agent is willing to
	// share; 0 means unlimited.
	Capacity int `json:"capacity"`
	// Arrive and Depart bound the agent's participation window; both 0
	// means always present.
	Arrive int `json:"arrive,omitempty"`
	Depart int `json:"depart,omitempty"`
}

// WelcomeMsg acknowledges a registration.
type WelcomeMsg struct {
	AgentID int `json:"agent_id"`
	// Round is the next round number the agent will see.
	Round int `json:"round"`
}

// AnnounceMsg opens round T for bidding.
type AnnounceMsg struct {
	T int `json:"t"`
	// Demand is the residual coverage requirement per needy microservice.
	Demand []int `json:"demand"`
	// NeedyIDs names the needy microservices (aligned with Demand).
	NeedyIDs []int `json:"needy_ids,omitempty"`
	// DeadlineMillis is how long agents have to submit bids.
	DeadlineMillis int64 `json:"deadline_ms"`
}

// WireBid is one alternative bid on the wire.
type WireBid struct {
	Alt    int     `json:"alt"`
	Price  float64 `json:"price"`
	Covers []int   `json:"covers"`
	Units  int     `json:"units"`
}

// BidSubmitMsg carries an agent's bids for a round.
type BidSubmitMsg struct {
	T    int       `json:"t"`
	Bids []WireBid `json:"bids"`
}

// WireAward is one winning bid in a result.
type WireAward struct {
	Bidder  int     `json:"bidder"`
	Alt     int     `json:"alt"`
	Payment float64 `json:"payment"`
}

// ResultMsg closes a round.
type ResultMsg struct {
	T          int         `json:"t"`
	Awards     []WireAward `json:"awards"`
	SocialCost float64     `json:"social_cost"`
	// Infeasible reports a round whose demand could not be covered.
	Infeasible bool `json:"infeasible,omitempty"`
}

// ErrProtocol reports a message that violates the protocol state machine.
var ErrProtocol = errors.New("platform: protocol violation")

// conn wraps a net.Conn with line-oriented JSON encode/decode and write
// deadlines. It is not safe for concurrent writers; callers serialize.
type conn struct {
	raw net.Conn
	r   *bufio.Reader
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, r: bufio.NewReader(raw)}
}

// send writes one envelope as a JSON line, bounded by timeout.
func (c *conn) send(env *Envelope, timeout time.Duration) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("platform: marshal %s: %w", env.Type, err)
	}
	data = append(data, '\n')
	if timeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("platform: set write deadline: %w", err)
		}
	}
	if _, err := c.raw.Write(data); err != nil {
		return fmt.Errorf("platform: write %s: %w", env.Type, err)
	}
	return nil
}

// recv reads one envelope, bounded by timeout (0 means no deadline).
func (c *conn) recv(timeout time.Duration) (*Envelope, error) {
	if timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("platform: set read deadline: %w", err)
		}
	} else {
		if err := c.raw.SetReadDeadline(time.Time{}); err != nil {
			return nil, fmt.Errorf("platform: clear read deadline: %w", err)
		}
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		if errors.Is(err, io.EOF) && len(line) == 0 {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("platform: read line: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("%w: bad JSON: %v", ErrProtocol, err)
	}
	if env.Type == "" {
		return nil, fmt.Errorf("%w: missing message type", ErrProtocol)
	}
	return &env, nil
}

func (c *conn) close() error { return c.raw.Close() }
