// Package platform turns the mechanism into a deployable distributed
// system: an auctioneer daemon (the edge platform) speaking a JSON-line TCP
// protocol with microservice agents. Each round the auctioneer announces
// the residual demand, collects bids until a deadline, runs the online
// auction (core.MSOA), pays winners, and broadcasts the result — the §II
// message flow made concrete.
package platform

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// Message types on the wire. Every line is one JSON-encoded Envelope.
const (
	// TypeHello registers an agent (agent -> server).
	TypeHello = "hello"
	// TypeWelcome acknowledges registration (server -> agent).
	TypeWelcome = "welcome"
	// TypeAnnounce opens a bidding round (server -> agents).
	TypeAnnounce = "announce"
	// TypeBid submits an agent's alternative bids (agent -> server).
	TypeBid = "bid"
	// TypeResult closes a round with winners and payments
	// (server -> agents).
	TypeResult = "result"
	// TypeError reports a protocol violation before disconnect.
	TypeError = "error"
	// TypeShutdown tells agents the platform is going away.
	TypeShutdown = "shutdown"
	// TypeReject is the typed backpressure reply (server -> agent): the
	// submission (or registration) was shed by admission control, with a
	// machine-readable cause. Unlike TypeError it does not end the
	// conversation — a rejected bid leaves the connection registered.
	TypeReject = "reject"
)

// Reject causes carried by RejectMsg.Code.
const (
	// RejectRateLimited: the per-agent token bucket is empty.
	RejectRateLimited = "rate_limited"
	// RejectQueueFull: the agent's bounded ingest queue shed the message.
	RejectQueueFull = "queue_full"
	// RejectCircuitOpen: the agent's circuit breaker is open after
	// repeated drops; registration is refused until the cool-down.
	RejectCircuitOpen = "circuit_open"
)

// Envelope frames every protocol message.
type Envelope struct {
	Type     string        `json:"type"`
	Hello    *HelloMsg     `json:"hello,omitempty"`
	Welcome  *WelcomeMsg   `json:"welcome,omitempty"`
	Announce *AnnounceMsg  `json:"announce,omitempty"`
	Bid      *BidSubmitMsg `json:"bid,omitempty"`
	Result   *ResultMsg    `json:"result,omitempty"`
	Reject   *RejectMsg    `json:"reject,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// RejectMsg explains an admission-control shed to the agent.
type RejectMsg struct {
	// T is the round the rejected submission was tagged with (0 for
	// registration rejections).
	T int `json:"t,omitempty"`
	// Agent identifies the rejected agent within a multiplexed session.
	Agent int `json:"agent,omitempty"`
	// Code is one of the Reject* constants.
	Code string `json:"code"`
	// RetryAfterMillis hints when the agent may try again (0: unknown).
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
}

// HelloMsg registers an agent with the platform.
type HelloMsg struct {
	// AgentID is the microservice's bidder identifier; must be positive
	// and unique across live connections.
	AgentID int `json:"agent_id"`
	// Capacity is Θ_i, the lifetime coverage the agent is willing to
	// share; 0 means unlimited.
	Capacity int `json:"capacity"`
	// Arrive and Depart bound the agent's participation window; both 0
	// means always present.
	Arrive int `json:"arrive,omitempty"`
	Depart int `json:"depart,omitempty"`
	// Count, when > 1, registers a multiplexed session: agents
	// AgentID..AgentID+Count-1 share this one connection (all with the
	// same capacity and window). Load generators use this to hold 100k
	// agents in a few hundred sockets; bids are then submitted per agent
	// through BidSubmitMsg.Multi.
	Count int `json:"count,omitempty"`
}

// WelcomeMsg acknowledges a registration.
type WelcomeMsg struct {
	AgentID int `json:"agent_id"`
	// Round is the next round number the agent will see.
	Round int `json:"round"`
}

// AnnounceMsg opens round T for bidding.
type AnnounceMsg struct {
	T int `json:"t"`
	// Demand is the residual coverage requirement per needy microservice.
	Demand []int `json:"demand"`
	// NeedyIDs names the needy microservices (aligned with Demand).
	NeedyIDs []int `json:"needy_ids,omitempty"`
	// DeadlineMillis is how long agents have to submit bids.
	DeadlineMillis int64 `json:"deadline_ms"`
}

// WireBid is one alternative bid on the wire.
type WireBid struct {
	Alt    int     `json:"alt"`
	Price  float64 `json:"price"`
	Covers []int   `json:"covers"`
	Units  int     `json:"units"`
}

// BidSubmitMsg carries an agent's bids for a round. A single-agent
// connection fills Bids; a multiplexed session batches one entry per
// agent into Multi so a whole fleet's round answers ride one write.
type BidSubmitMsg struct {
	T    int       `json:"t"`
	Bids []WireBid `json:"bids,omitempty"`
	// Multi carries per-agent bid sets for a multiplexed session. Agents
	// absent from Multi abstain.
	Multi []AgentBids `json:"multi,omitempty"`
}

// AgentBids is one agent's bid set inside a multiplexed submission.
type AgentBids struct {
	Agent int       `json:"agent"`
	Bids  []WireBid `json:"bids"`
}

// WireAward is one winning bid in a result.
type WireAward struct {
	Bidder  int     `json:"bidder"`
	Alt     int     `json:"alt"`
	Payment float64 `json:"payment"`
}

// ResultMsg closes a round.
type ResultMsg struct {
	T          int         `json:"t"`
	Awards     []WireAward `json:"awards"`
	SocialCost float64     `json:"social_cost"`
	// Infeasible reports a round whose demand could not be covered.
	Infeasible bool `json:"infeasible,omitempty"`
}

// ErrProtocol reports a message that violates the protocol state machine.
var ErrProtocol = errors.New("platform: protocol violation")

// conn wraps a net.Conn with line-oriented JSON encode/decode and write
// deadlines. It is not safe for concurrent writers; callers serialize.
type conn struct {
	raw net.Conn
	r   *bufio.Reader
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, r: bufio.NewReader(raw)}
}

// encodeEnvelope marshals env into one newline-terminated JSON line,
// ready for sendRaw. Broadcast paths encode once and fan the bytes out.
func encodeEnvelope(env *Envelope) ([]byte, error) {
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("platform: marshal %s: %w", env.Type, err)
	}
	return append(data, '\n'), nil
}

// send writes one envelope as a JSON line, bounded by timeout.
func (c *conn) send(env *Envelope, timeout time.Duration) error {
	data, err := encodeEnvelope(env)
	if err != nil {
		return err
	}
	return c.sendRaw(env.Type, data, timeout)
}

// sendRaw writes pre-encoded line bytes, bounded by timeout. msgType
// only labels errors.
func (c *conn) sendRaw(msgType string, data []byte, timeout time.Duration) error {
	if timeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("platform: set write deadline: %w", err)
		}
	}
	if _, err := c.raw.Write(data); err != nil {
		return fmt.Errorf("platform: write %s: %w", msgType, err)
	}
	return nil
}

// readLine reads one newline-terminated line into buf (reused across
// calls), growing it only past the high-water mark. Unlike ReadBytes it
// does not allocate a fresh slice per line, which matters on the bid
// ingest path where a multiplexed session's batch is tens of kilobytes
// every round.
func (c *conn) readLine(buf *[]byte) ([]byte, error) {
	*buf = (*buf)[:0]
	for {
		frag, err := c.r.ReadSlice('\n')
		*buf = append(*buf, frag...)
		if err == nil {
			return *buf, nil
		}
		if !errors.Is(err, bufio.ErrBufferFull) {
			if errors.Is(err, io.EOF) && len(*buf) == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("platform: read line: %w", err)
		}
	}
}

// recvInto decodes the next message into env, reusing env's existing
// message structs and slice capacities (encoding/json unmarshals into
// non-nil pointers and appends into spare slice capacity). The caller
// owns the reset discipline: clear env between messages so a field the
// peer omitted cannot inherit a stale value from the previous message.
// Used by the server's bid ingest loop, where everything decoded is
// copied out (into the CSR arena) before the next receive.
func (c *conn) recvInto(env *Envelope, buf *[]byte, timeout time.Duration) error {
	if timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return fmt.Errorf("platform: set read deadline: %w", err)
		}
	} else {
		if err := c.raw.SetReadDeadline(time.Time{}); err != nil {
			return fmt.Errorf("platform: clear read deadline: %w", err)
		}
	}
	line, err := c.readLine(buf)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(line, env); err != nil {
		return fmt.Errorf("%w: bad JSON: %v", ErrProtocol, err)
	}
	if env.Type == "" {
		return fmt.Errorf("%w: missing message type", ErrProtocol)
	}
	return nil
}

// resetForReuse clears the envelope for the next recvInto while keeping
// the bid submission's allocated storage — the one message type that is
// both hot and large. All other message pointers are dropped so a stale
// struct can never leak across message types.
func (env *Envelope) resetForReuse() {
	bid := env.Bid
	*env = Envelope{}
	if bid != nil {
		bid.T = 0
		bid.Bids = bid.Bids[:0]
		bid.Multi = bid.Multi[:0]
		env.Bid = bid
	}
}

// recv reads one envelope, bounded by timeout (0 means no deadline).
func (c *conn) recv(timeout time.Duration) (*Envelope, error) {
	if timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("platform: set read deadline: %w", err)
		}
	} else {
		if err := c.raw.SetReadDeadline(time.Time{}); err != nil {
			return nil, fmt.Errorf("platform: clear read deadline: %w", err)
		}
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		if errors.Is(err, io.EOF) && len(line) == 0 {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("platform: read line: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("%w: bad JSON: %v", ErrProtocol, err)
	}
	if env.Type == "" {
		return nil, fmt.Errorf("%w: missing message type", ErrProtocol)
	}
	return &env, nil
}

func (c *conn) close() error { return c.raw.Close() }
