package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"edgeauction/internal/core"
	"edgeauction/internal/obs"
)

// AuditKind is the kind tag stamped on every audit/WAL record.
const AuditKind = "edgeauction-audit"

// Audit records every round the platform clears as one JSON line, so
// operators can replay disputes offline (the records embed the full
// assembled instance in the cmd/wspsolve format). Writers are serialized;
// any io.Writer works (file, pipe, network).
type Audit struct {
	mu    sync.Mutex
	w     io.Writer
	enc   *json.Encoder
	flush func() error
	sink  func(*AuditRecord) error
	clock func(t int) int64
}

// NewAudit wraps a writer as an audit sink. A writer exposing
// Flush() error (e.g. *bufio.Writer) is flushed after every record, so a
// crash right after a round closes cannot strand the round's line in a
// userspace buffer.
func NewAudit(w io.Writer) *Audit {
	a := &Audit{w: w, enc: json.NewEncoder(w)}
	if f, ok := w.(interface{ Flush() error }); ok {
		a.flush = f.Flush
	}
	return a
}

// NewAuditSink delivers each completed round record to fn instead of a
// writer. fn runs synchronously on the RunRound goroutine after the
// round's trace events (including the platform-scope RoundClose) have
// been emitted, so an online auditor pairing an obs.RoundSink with this
// sink sees round t's full trace batch before record t. An fn error
// surfaces from RunRound exactly like an unwritable audit log.
func NewAuditSink(fn func(*AuditRecord) error) *Audit {
	return &Audit{sink: fn}
}

// WithClock injects the timestamp source used for records whose
// UnixMillis is still zero: clock(t) is called with the round number.
// Without an injected clock, records are stamped with wall-clock
// time.Now(), which makes identically-seeded runs byte-different —
// seeded/deterministic harnesses should install LogicalClock. Returns the
// audit for chaining.
func (a *Audit) WithClock(clock func(t int) int64) *Audit {
	a.clock = clock
	return a
}

// AuditRecord is one cleared (or failed) round. When written by a WAL
// (see WAL.Append), the record additionally carries the capacity/window
// maps the round was filtered under and the post-round state hash, which
// is what makes replaying a WAL suffix exact.
type AuditRecord struct {
	// Kind is always AuditKind.
	Kind string `json:"kind"`
	// T is the round number.
	T int `json:"t"`
	// UnixMillis is the time the round cleared: wall-clock by default, the
	// round number itself under LogicalClock.
	UnixMillis int64 `json:"unix_ms"`
	// Demand is the announced residual demand.
	Demand []int `json:"demand"`
	// NeedyIDs names the needy microservices, if provided.
	NeedyIDs []int `json:"needy_ids,omitempty"`
	// Bids holds every collected bid, by bidder.
	Bids []AuditBid `json:"bids"`
	// Awards holds winners and payments.
	Awards []WireAward `json:"awards,omitempty"`
	// SocialCost is the round's cleared cost.
	SocialCost float64 `json:"social_cost"`
	// Infeasible marks rounds whose demand could not be covered.
	Infeasible bool `json:"infeasible,omitempty"`
	// Capacity is the per-bidder Θ map in force when the round ran. Only
	// WAL records carry it; replay swaps it in before re-running the round
	// so registration-learned capacities filter identically.
	Capacity map[int]int `json:"capacity,omitempty"`
	// Windows is the per-bidder participation-window map in force when the
	// round ran. Only WAL records carry it.
	Windows map[int]core.BidderWindow `json:"windows,omitempty"`
	// StateHash is core.MSOAState.Hash() AFTER this round was applied.
	// Only WAL records carry it; recovery asserts the replayed state
	// reaches the same hash.
	StateHash string `json:"state_hash,omitempty"`
}

// Instance rebuilds the core instance the record claims the round ran on
// (demand plus (bidder, alt)-sorted bids, prices doubling as true costs).
// Both the chaos auditor's shadow replay and WAL recovery feed this to an
// MSOA.
func (rec *AuditRecord) Instance() *core.Instance {
	ins := &core.Instance{Demand: rec.Demand}
	for _, b := range rec.Bids {
		ins.Bids = append(ins.Bids, core.Bid{
			Bidder: b.Bidder, Alt: b.Alt, Price: b.Price,
			TrueCost: b.Price, Covers: b.Covers, Units: b.Units,
		})
	}
	return ins
}

// AuditBid is one collected bid in an audit record.
type AuditBid struct {
	Bidder int     `json:"bidder"`
	Alt    int     `json:"alt"`
	Price  float64 `json:"price"`
	Covers []int   `json:"covers"`
	Units  int     `json:"units"`
}

// record appends one line; errors are returned so the server can surface
// them (an unwritable audit log is an operational fault, not a silent
// degradation).
func (a *Audit) record(rec *AuditRecord) error {
	rec.Kind = AuditKind
	if rec.UnixMillis == 0 {
		if a.clock != nil {
			rec.UnixMillis = a.clock(rec.T)
		} else {
			rec.UnixMillis = time.Now().UnixMilli()
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.enc != nil {
		if err := a.enc.Encode(rec); err != nil {
			return fmt.Errorf("platform: write audit record: %w", err)
		}
		if a.flush != nil {
			if err := a.flush(); err != nil {
				return fmt.Errorf("platform: flush audit log: %w", err)
			}
		}
	}
	if a.sink != nil {
		if err := a.sink(rec); err != nil {
			return fmt.Errorf("platform: audit sink: %w", err)
		}
	}
	return nil
}

// ReadAudit parses an audit (or WAL) stream back into records.
//
// A malformed FINAL record — the torn tail a crash leaves behind — does
// not discard the log: every complete preceding record is returned
// together with an error wrapping obs.ErrTruncated, so recovery and
// operators can use crash-cut logs. A malformed record with complete
// records after it is corruption, not a crash cut, and returns the
// readable prefix with a non-truncation error; a complete record with the
// wrong kind is ErrProtocol wherever it appears.
func ReadAudit(r io.Reader) ([]*AuditRecord, error) {
	lines, lastLine, err := obs.ReadJSONLLines(r)
	if err != nil {
		return nil, fmt.Errorf("platform: read audit stream: %w", err)
	}
	var out []*AuditRecord
	for i, line := range lines {
		var rec AuditRecord
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			if i == lastLine {
				return out, fmt.Errorf("platform: audit record %d: %w", len(out), obs.ErrTruncated)
			}
			return out, fmt.Errorf("platform: parse audit record %d: %w", len(out), uerr)
		}
		if rec.Kind != AuditKind {
			return out, fmt.Errorf("%w: record %d has kind %q", ErrProtocol, len(out), rec.Kind)
		}
		out = append(out, &rec)
	}
	return out, nil
}
