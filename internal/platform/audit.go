package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Audit records every round the platform clears as one JSON line, so
// operators can replay disputes offline (the records embed the full
// assembled instance in the cmd/wspsolve format). Writers are serialized;
// any io.Writer works (file, pipe, network).
type Audit struct {
	mu   sync.Mutex
	w    io.Writer
	enc  *json.Encoder
	sink func(*AuditRecord) error
}

// NewAudit wraps a writer as an audit sink.
func NewAudit(w io.Writer) *Audit {
	return &Audit{w: w, enc: json.NewEncoder(w)}
}

// NewAuditSink delivers each completed round record to fn instead of a
// writer. fn runs synchronously on the RunRound goroutine after the
// round's trace events (including the platform-scope RoundClose) have
// been emitted, so an online auditor pairing an obs.RoundSink with this
// sink sees round t's full trace batch before record t. An fn error
// surfaces from RunRound exactly like an unwritable audit log.
func NewAuditSink(fn func(*AuditRecord) error) *Audit {
	return &Audit{sink: fn}
}

// AuditRecord is one cleared (or failed) round.
type AuditRecord struct {
	// Kind is always "edgeauction-audit".
	Kind string `json:"kind"`
	// T is the round number.
	T int `json:"t"`
	// UnixMillis is the wall-clock time the round cleared.
	UnixMillis int64 `json:"unix_ms"`
	// Demand is the announced residual demand.
	Demand []int `json:"demand"`
	// NeedyIDs names the needy microservices, if provided.
	NeedyIDs []int `json:"needy_ids,omitempty"`
	// Bids holds every collected bid, by bidder.
	Bids []AuditBid `json:"bids"`
	// Awards holds winners and payments.
	Awards []WireAward `json:"awards,omitempty"`
	// SocialCost is the round's cleared cost.
	SocialCost float64 `json:"social_cost"`
	// Infeasible marks rounds whose demand could not be covered.
	Infeasible bool `json:"infeasible,omitempty"`
}

// AuditBid is one collected bid in an audit record.
type AuditBid struct {
	Bidder int     `json:"bidder"`
	Alt    int     `json:"alt"`
	Price  float64 `json:"price"`
	Covers []int   `json:"covers"`
	Units  int     `json:"units"`
}

// record appends one line; errors are returned so the server can surface
// them (an unwritable audit log is an operational fault, not a silent
// degradation).
func (a *Audit) record(rec *AuditRecord) error {
	rec.Kind = "edgeauction-audit"
	if rec.UnixMillis == 0 {
		rec.UnixMillis = time.Now().UnixMilli()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.enc != nil {
		if err := a.enc.Encode(rec); err != nil {
			return fmt.Errorf("platform: write audit record: %w", err)
		}
	}
	if a.sink != nil {
		if err := a.sink(rec); err != nil {
			return fmt.Errorf("platform: audit sink: %w", err)
		}
	}
	return nil
}

// ReadAudit parses an audit stream back into records.
func ReadAudit(r io.Reader) ([]*AuditRecord, error) {
	dec := json.NewDecoder(r)
	var out []*AuditRecord
	for {
		var rec AuditRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("platform: parse audit record %d: %w", len(out), err)
		}
		if rec.Kind != "edgeauction-audit" {
			return nil, fmt.Errorf("%w: record %d has kind %q", ErrProtocol, len(out), rec.Kind)
		}
		out = append(out, &rec)
	}
}
