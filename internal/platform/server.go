package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"edgeauction/internal/core"
	"edgeauction/internal/obs"
)

// Default timeouts applied when the corresponding ServerConfig field is
// left at its zero value. Applying a default emits an obs.ConfigDefault
// event when a Tracer is configured.
const (
	// DefaultBidDeadline is how long a round stays open for bids when
	// ServerConfig.BidDeadline is zero.
	DefaultBidDeadline = 500 * time.Millisecond
	// DefaultWriteTimeout bounds individual sends when
	// ServerConfig.WriteTimeout is zero.
	DefaultWriteTimeout = 2 * time.Second
)

// ServerConfig parameterizes the auctioneer daemon.
type ServerConfig struct {
	// BidDeadline is how long a round stays open for bids; zero means
	// DefaultBidDeadline (500ms).
	BidDeadline time.Duration
	// WriteTimeout bounds individual sends; zero means DefaultWriteTimeout
	// (2s).
	WriteTimeout time.Duration
	// Auction configures the embedded online mechanism. Capacity and
	// Windows are learned from agent registrations and merged in.
	Auction core.MSOAConfig
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
	// Audit, when non-nil, receives one JSON line per cleared round with
	// the full collected instance and awards (see Audit/ReadAudit).
	Audit *Audit
	// WAL, when non-nil, makes the platform durable: each round's record —
	// extended with the capacity/window maps in force and the post-round
	// state hash — is appended and flushed BEFORE awards are announced to
	// bidders, so a crash can never lose a round the outside world saw.
	// Recover replays this log back into a RecoveredState.
	WAL *WAL
	// Resume, when non-nil, seeds the server from a recovered state: the
	// round counter continues at Resume.NextRound and the mechanism is
	// restored (core.RestoreMSOA) with Resume.State instead of starting
	// fresh.
	Resume *RecoveredState
	// Tracer receives platform lifecycle events: round open/close/abort,
	// agent join/drop/timeout with cause strings, per-agent bid receipt
	// with round-trip latency, and config-default notices. Nil disables
	// tracing. If Auction.Options.Tracer is nil it inherits this tracer,
	// so the mechanism's greedy-pick/payment/ψ events land in the same
	// stream. Tracers must be safe for concurrent use.
	Tracer obs.Tracer
	// Fault injects deterministic failures into the send and award paths
	// for tests and the chaos harness; the zero value disables injection.
	Fault FaultInjection
}

func (c ServerConfig) bidDeadline() time.Duration {
	if c.BidDeadline == 0 {
		return DefaultBidDeadline
	}
	return c.BidDeadline
}

func (c ServerConfig) writeTimeout() time.Duration {
	if c.WriteTimeout == 0 {
		return DefaultWriteTimeout
	}
	return c.WriteTimeout
}

// Server is the edge platform: it accepts agent connections and clears one
// auction round per RunRound call.
type Server struct {
	cfg      ServerConfig
	listener net.Listener
	logger   *log.Logger
	tracer   obs.Tracer
	metrics  *obs.Registry

	mu       sync.Mutex
	agents   map[int]*agentConn
	round    int
	closed   bool
	msoa     *core.MSOA
	auction  core.MSOAConfig // effective config after lazy-init merges
	capacity map[int]int
	windows  map[int]core.BidderWindow

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// agentConn is one registered agent connection.
type agentConn struct {
	id   int
	c    *conn
	mu   sync.Mutex // serializes writes
	bids chan *BidSubmitMsg
}

func (a *agentConn) send(env *Envelope, timeout time.Duration) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.c.send(env, timeout)
}

// sendAgent is the per-round send path: it consults the fault-injection
// hook first, so an injected fault is indistinguishable from a real
// write failure to the caller.
func (s *Server) sendAgent(a *agentConn, t int, env *Envelope) error {
	if f := s.cfg.Fault.SendFault; f != nil {
		if err := f(t, a.id, env.Type); err != nil {
			return err
		}
	}
	return a.send(env, s.cfg.writeTimeout())
}

// NewServer starts listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("platform: listen %s: %w", addr, err)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		listener: ln,
		logger:   logger,
		tracer:   cfg.Tracer,
		metrics:  obs.NewRegistry(),
		agents:   make(map[int]*agentConn),
		capacity: make(map[int]int),
		windows:  make(map[int]core.BidderWindow),
		cancel:   cancel,
	}
	if cfg.Resume != nil && cfg.Resume.NextRound > 1 {
		// Continue the round sequence where the recovered log ends; agents
		// re-registering after the restart are welcomed into NextRound.
		s.round = cfg.Resume.NextRound - 1
	}
	if s.tracer != nil {
		if cfg.BidDeadline == 0 {
			s.tracer.Emit(obs.ConfigDefault{Component: "platform", Field: "BidDeadline", Value: DefaultBidDeadline.String()})
		}
		if cfg.WriteTimeout == 0 {
			s.tracer.Emit(obs.ConfigDefault{Component: "platform", Field: "WriteTimeout", Value: DefaultWriteTimeout.String()})
		}
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ctx)
	}()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Metrics returns the server's always-on counter/histogram registry:
// rounds cleared, bids collected, agents dropped, per-bid round-trip
// latency, and round wall-clock. Snapshot() is JSON-marshalable and is
// what platformd publishes on its debug endpoint.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// AgentCount returns the number of registered agents.
func (s *Server) AgentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.agents)
}

func (s *Server) acceptLoop(ctx context.Context) {
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
				return
			default:
			}
			s.logger.Printf("accept: %v", err)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(ctx, newConn(raw))
		}()
	}
}

// handle runs one agent connection: registration, then a read loop feeding
// bid submissions into the per-agent channel.
func (s *Server) handle(ctx context.Context, c *conn) {
	defer func() {
		if err := c.close(); err != nil && !errors.Is(err, net.ErrClosed) {
			s.logger.Printf("close agent conn: %v", err)
		}
	}()

	env, err := c.recv(5 * time.Second)
	if err != nil {
		s.logger.Printf("registration read: %v", err)
		return
	}
	if env.Type != TypeHello || env.Hello == nil || env.Hello.AgentID <= 0 {
		_ = c.send(&Envelope{Type: TypeError, Error: "expected hello with positive agent_id"}, s.cfg.writeTimeout())
		return
	}
	hello := env.Hello

	// Capacity 2: a delayed bid for the previous round may still be in
	// flight when the current round's live bid arrives; both must buffer
	// so the gather loop's stale-tag check — not socket timing — decides
	// which one counts.
	agent := &agentConn{id: hello.AgentID, c: c, bids: make(chan *BidSubmitMsg, 2)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = c.send(&Envelope{Type: TypeShutdown}, s.cfg.writeTimeout())
		return
	}
	if _, dup := s.agents[hello.AgentID]; dup {
		s.mu.Unlock()
		_ = c.send(&Envelope{Type: TypeError, Error: fmt.Sprintf("agent %d already registered", hello.AgentID)}, s.cfg.writeTimeout())
		return
	}
	s.agents[hello.AgentID] = agent
	s.capacity[hello.AgentID] = hello.Capacity
	if hello.Arrive != 0 || hello.Depart != 0 {
		s.windows[hello.AgentID] = core.BidderWindow{Arrive: hello.Arrive, Depart: hello.Depart}
	}
	nextRound := s.round + 1
	s.mu.Unlock()

	if err := agent.send(&Envelope{Type: TypeWelcome, Welcome: &WelcomeMsg{AgentID: hello.AgentID, Round: nextRound}}, s.cfg.writeTimeout()); err != nil {
		s.logger.Printf("welcome agent %d: %v", hello.AgentID, err)
		s.dropAgent(hello.AgentID, obs.DropWelcomeFailed, err.Error())
		return
	}
	s.logger.Printf("agent %d registered (capacity %d)", hello.AgentID, hello.Capacity)
	if s.tracer != nil {
		s.tracer.Emit(obs.AgentJoin{ID: hello.AgentID, Capacity: hello.Capacity, Arrive: hello.Arrive, Depart: hello.Depart})
	}

	for {
		env, err := c.recv(0)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && ctx.Err() == nil {
				s.logger.Printf("agent %d read: %v", hello.AgentID, err)
			}
			s.dropAgent(hello.AgentID, obs.DropReadError, err.Error())
			return
		}
		switch env.Type {
		case TypeBid:
			if env.Bid == nil {
				continue
			}
			select {
			case agent.bids <- env.Bid:
			default:
				// Agent sent multiple bid messages for one round; keep the
				// first, as resubmission could game the critical payment.
			}
		default:
			s.logger.Printf("agent %d sent unexpected %q", hello.AgentID, env.Type)
		}
	}
}

// dropAgent deregisters an agent and closes its connection. It is
// idempotent: only the call that actually removes the agent emits the
// AgentDrop event and bumps the drop counter, so the read loop's
// follow-up (the closed connection makes its recv fail) stays silent.
func (s *Server) dropAgent(id int, cause, detail string) {
	s.mu.Lock()
	a, present := s.agents[id]
	delete(s.agents, id)
	s.mu.Unlock()
	if !present {
		return
	}
	_ = a.c.close()
	s.metrics.Counter("platform_agent_drops_total").Inc()
	if s.tracer != nil {
		s.tracer.Emit(obs.AgentDrop{ID: id, Cause: cause, Detail: detail})
	}
}

// RoundOutcome is the platform-visible result of one cleared round.
type RoundOutcome struct {
	T          int
	Awards     []WireAward
	SocialCost float64
	Infeasible bool
	// Bids is the assembled instance the auction ran on (for audit).
	Bids int
}

// RunRound clears one auction round for the given residual demand: it
// announces the round, gathers bids until the deadline, runs the online
// mechanism, and broadcasts the result. needyIDs (optional) names the
// needy microservices for the agents' benefit.
func (s *Server) RunRound(demand []int, needyIDs []int) (*RoundOutcome, error) {
	return s.RunRoundContext(context.Background(), demand, needyIDs)
}

// RunRoundContext is RunRound honoring ctx: if the context is cancelled
// while bids are being gathered the round aborts — no mechanism runs, no
// result is broadcast, pending agents stay connected — and the wrapped
// context error is returned. The round number is still consumed.
func (s *Server) RunRoundContext(ctx context.Context, demand []int, needyIDs []int) (*RoundOutcome, error) {
	started := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("platform: server closed")
	}
	s.round++
	t := s.round
	if s.msoa == nil {
		cfg := s.cfg.Auction
		if cfg.Capacity == nil {
			cfg.Capacity = s.capacity
		}
		if cfg.Windows == nil {
			cfg.Windows = s.windows
		}
		if cfg.Options.Tracer == nil {
			cfg.Options.Tracer = s.tracer
		}
		s.auction = cfg
		if s.cfg.Resume != nil {
			s.msoa = core.RestoreMSOA(cfg, s.cfg.Resume.State)
		} else {
			s.msoa = core.NewMSOA(cfg)
		}
	}
	agents := make([]*agentConn, 0, len(s.agents))
	for _, a := range s.agents {
		agents = append(agents, a)
	}
	s.mu.Unlock()
	sort.Slice(agents, func(i, j int) bool { return agents[i].id < agents[j].id })

	deadline := s.cfg.bidDeadline()
	if s.tracer != nil {
		total := 0
		for _, d := range demand {
			total += d
		}
		s.tracer.Emit(obs.RoundOpen{
			Scope: obs.ScopePlatform, T: t, Needy: len(needyIDs),
			TotalDemand: total, Agents: len(agents),
		})
	}
	announce := &Envelope{Type: TypeAnnounce, Announce: &AnnounceMsg{
		T: t, Demand: demand, NeedyIDs: needyIDs, DeadlineMillis: deadline.Milliseconds(),
	}}
	announced := agents[:0]
	for _, a := range agents {
		// Drain stale bids from previous rounds (the buffer holds up to
		// two, e.g. a delayed resubmission behind an original).
		for drained := false; !drained; {
			select {
			case <-a.bids:
			default:
				drained = true
			}
		}
		if err := s.sendAgent(a, t, announce); err != nil {
			s.logger.Printf("announce to agent %d: %v", a.id, err)
			// A write failure here means the agent cannot hear the round;
			// it would only pin the gather phase at the full deadline, so
			// deregister it now rather than wait for its read loop to fail.
			s.dropAgent(a.id, obs.DropWriteTimeout, err.Error())
			continue
		}
		announced = append(announced, a)
	}
	agents = announced
	announcedAt := time.Now()

	// Scripted crash: the process dies while bids are in flight. Nothing
	// reached the WAL for this round, so recovery re-runs round t whole.
	if err := s.crashPoint(t, CrashMidGather); err != nil {
		return nil, err
	}

	// Gather bids until the deadline, event-driven: per-agent forwarder
	// goroutines feed one fan-in channel, so the collection select wakes
	// only when a bid actually arrives (or the deadline fires) — zero
	// timed polling — and the round clears the moment the last pending
	// agent answers.
	ins := &core.Instance{Demand: demand}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	type inBid struct {
		id  int
		msg *BidSubmitMsg
	}
	fanIn := make(chan inBid)
	done := make(chan struct{})
	var forwarders sync.WaitGroup
	defer func() {
		// Signal AND join the forwarders before returning: a stale
		// forwarder left running into the next RunRound call could win the
		// race for that round's live bid on a.bids and then drop it once it
		// sees done closed.
		close(done)
		forwarders.Wait()
	}()
	for _, a := range agents {
		forwarders.Add(1)
		go func(a *agentConn) {
			defer forwarders.Done()
			for {
				select {
				case msg := <-a.bids:
					select {
					case fanIn <- inBid{id: a.id, msg: msg}:
					case <-done:
						// A message consumed here but not delivered is either
						// stale-tagged, a resubmission after the agent already
						// answered, or a bid that missed the deadline — in
						// every case it must not count, so dropping it matches
						// the announce-time drain.
						return
					}
				case <-done:
					return
				}
			}
		}(a)
	}
	pending := len(agents)
	answered := make(map[int]bool, len(agents))
gather:
	for pending > 0 {
		select {
		case in := <-fanIn:
			if in.msg.T != t {
				// Stale round tag: the bid raced past the announce-time
				// drain. Discard the message but KEEP the agent pending —
				// its forthcoming current-round bid must still count.
				continue
			}
			if answered[in.id] {
				// Resubmission for the current round: the forwarder keeps
				// draining a.bids after the agent answered, so a second
				// message can reach fan-in. Keep the first — resubmission
				// could game the critical payment — and do not decrement
				// pending again, or the round could clear while an honest
				// agent is still pending.
				continue
			}
			answered[in.id] = true
			for _, wb := range in.msg.Bids {
				ins.Bids = append(ins.Bids, core.Bid{
					Bidder: in.id, Alt: wb.Alt, Price: wb.Price,
					TrueCost: wb.Price, Covers: wb.Covers, Units: wb.Units,
				})
			}
			rtt := time.Since(announcedAt)
			s.metrics.Counter("platform_bids_total").Add(int64(len(in.msg.Bids)))
			s.metrics.Histogram("platform_bid_rtt_us", 0, 1e6, 20).Observe(float64(rtt.Microseconds()))
			if s.tracer != nil {
				s.tracer.Emit(obs.BidReceived{T: t, ID: in.id, Bids: len(in.msg.Bids), RTTMicros: rtt.Microseconds()})
			}
			pending--
		case <-timer.C:
			if s.tracer != nil {
				for _, a := range agents {
					if !answered[a.id] {
						s.tracer.Emit(obs.AgentTimeout{T: t, ID: a.id, Cause: obs.TimeoutDeadline})
					}
				}
			}
			break gather
		case <-ctx.Done():
			if s.tracer != nil {
				for _, a := range agents {
					if !answered[a.id] {
						s.tracer.Emit(obs.AgentTimeout{T: t, ID: a.id, Cause: obs.TimeoutCancelled})
					}
				}
				s.tracer.Emit(obs.RoundAbort{T: t, Err: ctx.Err().Error(), Pending: pending})
			}
			s.metrics.Counter("platform_rounds_aborted_total").Inc()
			return nil, fmt.Errorf("platform: round %d aborted: %w", t, ctx.Err())
		}
	}
	// Stable bid order: fan-in delivery order follows bid arrival, not
	// agent id.
	sort.Slice(ins.Bids, func(i, j int) bool {
		if ins.Bids[i].Bidder != ins.Bids[j].Bidder {
			return ins.Bids[i].Bidder < ins.Bids[j].Bidder
		}
		return ins.Bids[i].Alt < ins.Bids[j].Alt
	})
	if err := ins.Validate(); err != nil {
		return nil, fmt.Errorf("platform: assembled invalid round instance: %w", err)
	}

	res := s.msoa.RunRound(core.Round{T: t, Instance: ins})
	outcome := &RoundOutcome{T: t, Bids: len(ins.Bids)}
	result := &ResultMsg{T: t}
	if res.Err != nil {
		outcome.Infeasible = true
		result.Infeasible = true
		s.logger.Printf("round %d infeasible: %v", t, res.Err)
	} else {
		outcome.SocialCost = res.Outcome.SocialCost
		result.SocialCost = res.Outcome.SocialCost
		for _, w := range res.Outcome.Winners {
			b := ins.Bids[w]
			award := WireAward{Bidder: b.Bidder, Alt: b.Alt, Payment: res.Outcome.Payments[w]}
			if f := s.cfg.Fault.CorruptPayment; f != nil {
				award.Payment = f(t, award)
			}
			outcome.Awards = append(outcome.Awards, award)
			result.Awards = append(result.Awards, award)
		}
	}

	// Build the round record once; the WAL and the audit sink share it
	// (when the WAL stamps the logical timestamp and state hash first, the
	// audit line inherits them, keeping the two logs consistent).
	rec := &AuditRecord{
		T:          t,
		Demand:     demand,
		NeedyIDs:   needyIDs,
		Awards:     outcome.Awards,
		SocialCost: outcome.SocialCost,
		Infeasible: outcome.Infeasible,
	}
	for _, b := range ins.Bids {
		rec.Bids = append(rec.Bids, AuditBid{
			Bidder: b.Bidder, Alt: b.Alt, Price: b.Price, Covers: b.Covers, Units: b.Units,
		})
	}

	// Write-ahead: the record must be durable BEFORE any bidder hears its
	// award, or a crash between announce and append would lose a round the
	// outside world already acted on.
	if s.cfg.WAL != nil {
		s.mu.Lock()
		rec.Capacity = copyIntMap(s.auction.Capacity)
		rec.Windows = copyWindowMap(s.auction.Windows)
		s.mu.Unlock()
		rec.StateHash = s.msoa.Snapshot().Hash()
		if err := s.cfg.WAL.Append(rec); err != nil {
			return nil, err
		}
	}

	// Scripted crash: the record is durable but no bidder heard the
	// result. Recovery resumes at t+1 with the logged state.
	if err := s.crashPoint(t, CrashPreAnnounce); err != nil {
		return nil, err
	}

	env := &Envelope{Type: TypeResult, Result: result}
	for _, a := range agents {
		if err := s.sendAgent(a, t, env); err != nil {
			s.logger.Printf("result to agent %d: %v", a.id, err)
			// A peer that cannot take the result within the write timeout
			// (stalled reader, dead connection) would stall every future
			// broadcast too; deregister it.
			s.dropAgent(a.id, obs.DropWriteTimeout, err.Error())
		}
	}

	// Scripted crash: bidders saw their awards; only in-memory state dies.
	// The write-ahead append above already made this round durable.
	if err := s.crashPoint(t, CrashPostAnnounce); err != nil {
		return nil, err
	}

	s.metrics.Counter("platform_rounds_total").Inc()
	s.metrics.Histogram("platform_round_us", 0, 5e6, 20).Observe(float64(time.Since(started).Microseconds()))
	if s.tracer != nil {
		totalPay := 0.0
		for _, aw := range outcome.Awards {
			totalPay += aw.Payment
		}
		s.tracer.Emit(obs.RoundClose{
			Scope: obs.ScopePlatform, T: t, Bids: len(ins.Bids),
			Winners: len(outcome.Awards), SocialCost: outcome.SocialCost,
			TotalPayment: totalPay, Infeasible: outcome.Infeasible,
			DurationMicros: time.Since(started).Microseconds(),
		})
	}

	if s.cfg.Audit != nil {
		if err := s.cfg.Audit.record(rec); err != nil {
			return nil, err
		}
	}
	return outcome, nil
}

// crashPoint consults the crash-injection hook at one scripted site. A
// non-nil hook error aborts the round exactly where a process kill would
// have — the caller returns immediately, leaving whatever the WAL and the
// network have already seen as the only survivors.
func (s *Server) crashPoint(t int, point string) error {
	f := s.cfg.Fault.Crash
	if f == nil {
		return nil
	}
	err := f(t, point)
	if err == nil {
		return nil
	}
	s.metrics.Counter("platform_crashes_total").Inc()
	if s.tracer != nil {
		s.tracer.Emit(obs.RoundAbort{T: t, Err: err.Error()})
	}
	return fmt.Errorf("platform: round %d crashed at %s: %w", t, point, err)
}

// SnapshotState returns the durable checkpoint ingredients: the last
// consumed round number and the mechanism's cross-round state (nil before
// the first round). Pair with WriteSnapshot between rounds; not safe to
// call concurrently with an in-flight RunRound.
func (s *Server) SnapshotState() (round int, st *core.MSOAState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.msoa == nil {
		return s.round, nil
	}
	return s.round, s.msoa.Snapshot()
}

// Summary returns the aggregate mechanism summary so far (nil before the
// first round).
func (s *Server) Summary() *core.OnlineSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.msoa == nil {
		return nil
	}
	return s.msoa.Summary()
}

// Close shuts the platform down: notifies agents, stops accepting, and
// waits for connection handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	agents := make([]*agentConn, 0, len(s.agents))
	for _, a := range s.agents {
		agents = append(agents, a)
	}
	s.mu.Unlock()

	s.cancel()
	for _, a := range agents {
		_ = a.send(&Envelope{Type: TypeShutdown}, s.cfg.writeTimeout())
		_ = a.c.close()
	}
	err := s.listener.Close()
	s.wg.Wait()
	if err != nil {
		return fmt.Errorf("platform: close listener: %w", err)
	}
	return nil
}
