package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgeauction/internal/core"
	"edgeauction/internal/obs"
)

// Default timeouts applied when the corresponding ServerConfig field is
// left at its zero value. Applying a default emits an obs.ConfigDefault
// event when a Tracer is configured.
const (
	// DefaultBidDeadline is how long a round stays open for bids when
	// ServerConfig.BidDeadline is zero.
	DefaultBidDeadline = 500 * time.Millisecond
	// DefaultWriteTimeout bounds individual sends when
	// ServerConfig.WriteTimeout is zero.
	DefaultWriteTimeout = 2 * time.Second
)

// ingestShards is the needy-partition shard count of each round's
// IngestBuffer (see core.NewIngestBuffer): bids append into the shard of
// the first needy microservice they cover, keeping each shard's cover
// arena contiguous for its partition.
const ingestShards = 8

// broadcastWorkers bounds the announce/result fan-out concurrency: up to
// this many sessions are written in parallel, each still under the
// per-session write timeout.
const broadcastWorkers = 8

// ServerConfig parameterizes the auctioneer daemon.
type ServerConfig struct {
	// BidDeadline is how long a round stays open for bids; zero means
	// DefaultBidDeadline (500ms).
	BidDeadline time.Duration
	// WriteTimeout bounds individual sends; zero means DefaultWriteTimeout
	// (2s).
	WriteTimeout time.Duration
	// Auction configures the embedded online mechanism. Capacity and
	// Windows are learned from agent registrations and merged in.
	Auction core.MSOAConfig
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
	// Audit, when non-nil, receives one JSON line per cleared round with
	// the full collected instance and awards (see Audit/ReadAudit).
	Audit *Audit
	// WAL, when non-nil, makes the platform durable: each round's record —
	// extended with the capacity/window maps in force and the post-round
	// state hash — is appended and flushed BEFORE awards are announced to
	// bidders, so a crash can never lose a round the outside world saw.
	// Recover replays this log back into a RecoveredState.
	WAL *WAL
	// Resume, when non-nil, seeds the server from a recovered state: the
	// round counter continues at Resume.NextRound and the mechanism is
	// restored (core.RestoreMSOA) with Resume.State instead of starting
	// fresh.
	Resume *RecoveredState
	// Tracer receives platform lifecycle events: round open/close/abort,
	// agent join/drop/timeout with cause strings, per-agent bid receipt
	// with round-trip latency, and config-default notices. Nil disables
	// tracing. If Auction.Options.Tracer is nil it inherits this tracer,
	// so the mechanism's greedy-pick/payment/ψ events land in the same
	// stream. Tracers must be safe for concurrent use.
	Tracer obs.Tracer
	// Fault injects deterministic failures into the send and award paths
	// for tests and the chaos harness; the zero value disables injection.
	Fault FaultInjection
	// Admission configures listener-edge admission control (token-bucket
	// bid rate limits, flapping-agent circuit breaker, bounded per-round
	// ingest). The zero value disables every check.
	Admission AdmissionConfig
	// PipelineYield, when positive, parks RunPipelined between announcing
	// round t+1 and settling round t. On a single-P runtime (or a
	// single-core box) with co-located agents — tests, benchmarks, the
	// one-host demo topology — the solver otherwise occupies the
	// processor before the agents' read loops ever observe the announce,
	// so their think time starts after the settle instead of covering it
	// and the overlap the pipeline exists for never happens. Remote-agent
	// deployments do not need it; zero disables. Serial RunRound ignores
	// it.
	PipelineYield time.Duration
}

func (c ServerConfig) bidDeadline() time.Duration {
	if c.BidDeadline == 0 {
		return DefaultBidDeadline
	}
	return c.BidDeadline
}

func (c ServerConfig) writeTimeout() time.Duration {
	if c.WriteTimeout == 0 {
		return DefaultWriteTimeout
	}
	return c.WriteTimeout
}

// Server is the edge platform: it accepts agent connections and clears one
// auction round per RunRound call (or many overlapped rounds per
// RunPipelined call).
type Server struct {
	cfg      ServerConfig
	listener net.Listener
	logger   *log.Logger
	tracer   obs.Tracer
	metrics  *obs.Registry
	adm      *admissionState

	// hot-path instruments, resolved once instead of per bid.
	mBids    *obs.Counter
	mDrops   *obs.Counter
	mRejects *obs.Counter
	mBidRTT  *obs.LatencyHistogram

	mu       sync.Mutex
	agents   map[int]*agentConn
	round    int
	closed   bool
	msoa     *core.MSOA
	auction  core.MSOAConfig // effective config after lazy-init merges
	capacity map[int]int
	windows  map[int]core.BidderWindow

	// gmu guards the gather window: the open round's state plus the
	// round-state free list. Connection read loops take it per accepted
	// submission; the round driver takes it to open/close windows.
	gmu        sync.Mutex
	gather     *roundState
	freeRounds []*roundState

	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// session is one TCP connection carrying one or more registered agents
// (a multiplexed load-generator session registers the contiguous range
// first..first+count-1 via HelloMsg.Count).
type session struct {
	c     *conn
	first int
	count int
	wmu   sync.Mutex // serializes writes
	// dead flips once the session has been deregistered; the gather path
	// checks it so a dropped session's in-flight bid cannot double-count
	// against the pending adjustment.
	dead atomic.Bool
}

func (ss *session) send(env *Envelope, timeout time.Duration) error {
	ss.wmu.Lock()
	defer ss.wmu.Unlock()
	return ss.c.send(env, timeout)
}

func (ss *session) sendRaw(msgType string, data []byte, timeout time.Duration) error {
	ss.wmu.Lock()
	defer ss.wmu.Unlock()
	return ss.c.sendRaw(msgType, data, timeout)
}

func (ss *session) owns(id int) bool { return id >= ss.first && id < ss.first+ss.count }

// agentConn is one registered agent (one bidder id) on a session.
type agentConn struct {
	id   int
	sess *session
}

// roundState is the per-round bookkeeping: the announced agent set, the
// gather window (pending count, answered set, shard ingest buffers) and
// the fan-out scratch. States are pooled on the server's free list so
// back-to-back rounds reuse the same allocations; in pipelined mode two
// states are live at once (round t settling, round t+1 gathering).
type roundState struct {
	t        int
	demand   []int
	needyIDs []int
	started  time.Time

	agents     []*agentConn
	sorter     agentsByID
	sessions   []*session
	sendErrs   []error
	droppedIDs []int
	scratch    []int

	// gather window, guarded by Server.gmu while open.
	buf         *core.IngestBuffer
	answered    map[int]bool
	submits     map[int]int
	pending     int
	open        bool
	doneClosed  bool
	done        chan struct{}
	announcedAt time.Time

	ins *core.Instance
}

// agentsByID sorts a round's agent snapshot by bidder id. It lives as a
// roundState field so sort.Sort sees an already-boxed pointer.
type agentsByID struct{ agents []*agentConn }

func (a *agentsByID) Len() int           { return len(a.agents) }
func (a *agentsByID) Swap(i, j int)      { a.agents[i], a.agents[j] = a.agents[j], a.agents[i] }
func (a *agentsByID) Less(i, j int) bool { return a.agents[i].id < a.agents[j].id }

func (s *Server) getRoundState() *roundState {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if n := len(s.freeRounds); n > 0 {
		rs := s.freeRounds[n-1]
		s.freeRounds[n-1] = nil
		s.freeRounds = s.freeRounds[:n-1]
		return rs
	}
	return &roundState{
		buf:      core.NewIngestBuffer(ingestShards),
		answered: make(map[int]bool),
		submits:  make(map[int]int),
	}
}

// putRoundState returns a state to the free list. Callers must be done
// with every aliasing view (rs.ins bids alias rs.buf arenas).
func (s *Server) putRoundState(rs *roundState) {
	rs.t = 0
	rs.demand = nil
	rs.needyIDs = nil
	rs.done = nil
	rs.ins = nil
	s.gmu.Lock()
	s.freeRounds = append(s.freeRounds, rs)
	s.gmu.Unlock()
}

// NewServer starts listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("platform: listen %s: %w", addr, err)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		listener: ln,
		logger:   logger,
		tracer:   cfg.Tracer,
		metrics:  obs.NewRegistry(),
		agents:   make(map[int]*agentConn),
		capacity: make(map[int]int),
		windows:  make(map[int]core.BidderWindow),
		cancel:   cancel,
	}
	if cfg.Admission.enabled() {
		s.adm = newAdmissionState(cfg.Admission)
	}
	s.mBids = s.metrics.Counter("platform_bids_total")
	s.mDrops = s.metrics.Counter("platform_agent_drops_total")
	s.mRejects = s.metrics.Counter("platform_bids_rejected_total")
	// 2ms buckets across the 1s range: fine enough to resolve the
	// announce-to-bid tail at load-benchmark scale (tens of ms), with
	// slower responses clamped visibly into the overflow edge.
	s.mBidRTT = s.metrics.Histogram("platform_bid_rtt_us", 0, 1e6, 500)
	if cfg.Resume != nil && cfg.Resume.NextRound > 1 {
		// Continue the round sequence where the recovered log ends; agents
		// re-registering after the restart are welcomed into NextRound.
		s.round = cfg.Resume.NextRound - 1
	}
	if s.tracer != nil {
		if cfg.BidDeadline == 0 {
			s.tracer.Emit(obs.ConfigDefault{Component: "platform", Field: "BidDeadline", Value: DefaultBidDeadline.String()})
		}
		if cfg.WriteTimeout == 0 {
			s.tracer.Emit(obs.ConfigDefault{Component: "platform", Field: "WriteTimeout", Value: DefaultWriteTimeout.String()})
		}
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ctx)
	}()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Metrics returns the server's always-on counter/histogram registry:
// rounds cleared, bids collected, agents dropped, per-bid round-trip
// latency, and round wall-clock. Snapshot() is JSON-marshalable and is
// what platformd publishes on its debug endpoint.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// AgentCount returns the number of registered agents.
func (s *Server) AgentCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.agents)
}

func (s *Server) acceptLoop(ctx context.Context) {
	for {
		raw, err := s.listener.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
				return
			default:
			}
			s.logger.Printf("accept: %v", err)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(ctx, newConn(raw))
		}()
	}
}

// handle runs one session: registration (of one agent, or of a
// multiplexed contiguous range when HelloMsg.Count > 1), then a read
// loop ingesting bid submissions directly into the open gather window.
func (s *Server) handle(ctx context.Context, c *conn) {
	defer func() {
		if err := c.close(); err != nil && !errors.Is(err, net.ErrClosed) {
			s.logger.Printf("close agent conn: %v", err)
		}
	}()

	env, err := c.recv(5 * time.Second)
	if err != nil {
		s.logger.Printf("registration read: %v", err)
		return
	}
	if env.Type != TypeHello || env.Hello == nil || env.Hello.AgentID <= 0 {
		_ = c.send(&Envelope{Type: TypeError, Error: "expected hello with positive agent_id"}, s.cfg.writeTimeout())
		return
	}
	hello := env.Hello
	count := hello.Count
	if count < 1 {
		count = 1
	}

	// Circuit breaker: a flapping agent (repeated timeout/RST drops) is
	// refused at the door until its cool-down elapses. The check keys on
	// the session's first id — the breaker targets single-agent churners.
	if s.adm != nil {
		if ok, wait := s.adm.admit(hello.AgentID, time.Now()); !ok {
			s.mRejects.Inc()
			if s.tracer != nil {
				s.tracer.Emit(obs.BidRejected{ID: hello.AgentID, Code: RejectCircuitOpen})
			}
			_ = c.send(&Envelope{Type: TypeReject, Reject: &RejectMsg{
				Agent: hello.AgentID, Code: RejectCircuitOpen, RetryAfterMillis: wait.Milliseconds(),
			}}, s.cfg.writeTimeout())
			return
		}
	}

	sess := &session{c: c, first: hello.AgentID, count: count}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = c.send(&Envelope{Type: TypeShutdown}, s.cfg.writeTimeout())
		return
	}
	for i := 0; i < count; i++ {
		if _, dup := s.agents[hello.AgentID+i]; dup {
			s.mu.Unlock()
			_ = c.send(&Envelope{Type: TypeError, Error: fmt.Sprintf("agent %d already registered", hello.AgentID+i)}, s.cfg.writeTimeout())
			return
		}
	}
	for i := 0; i < count; i++ {
		id := hello.AgentID + i
		s.agents[id] = &agentConn{id: id, sess: sess}
		s.capacity[id] = hello.Capacity
		if hello.Arrive != 0 || hello.Depart != 0 {
			s.windows[id] = core.BidderWindow{Arrive: hello.Arrive, Depart: hello.Depart}
		}
	}
	nextRound := s.round + 1
	s.mu.Unlock()

	if err := sess.send(&Envelope{Type: TypeWelcome, Welcome: &WelcomeMsg{AgentID: hello.AgentID, Round: nextRound}}, s.cfg.writeTimeout()); err != nil {
		s.logger.Printf("welcome agent %d: %v", hello.AgentID, err)
		s.dropSession(sess, obs.DropWelcomeFailed, err.Error())
		return
	}
	if count == 1 {
		s.logger.Printf("agent %d registered (capacity %d)", hello.AgentID, hello.Capacity)
	} else {
		s.logger.Printf("agents %d..%d registered on one session (capacity %d)", hello.AgentID, hello.AgentID+count-1, hello.Capacity)
	}
	if s.tracer != nil {
		for i := 0; i < count; i++ {
			s.tracer.Emit(obs.AgentJoin{ID: hello.AgentID + i, Capacity: hello.Capacity, Arrive: hello.Arrive, Depart: hello.Depart})
		}
	}

	// The ingest loop reuses one envelope and one line buffer per
	// connection: a multiplexed session's bid batch is tens of kilobytes
	// every round, and everything decoded here is copied out (into the
	// CSR ingest arena) before the next receive, so per-message
	// allocation would be pure GC pressure.
	var renv Envelope
	var lineBuf []byte
	for {
		renv.resetForReuse()
		if err := c.recvInto(&renv, &lineBuf, 0); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && ctx.Err() == nil {
				s.logger.Printf("agent %d read: %v", hello.AgentID, err)
			}
			s.dropSession(sess, obs.DropReadError, err.Error())
			return
		}
		switch renv.Type {
		case TypeBid:
			if renv.Bid == nil {
				continue
			}
			s.ingestSubmit(sess, renv.Bid)
		default:
			s.logger.Printf("agent %d sent unexpected %q", hello.AgentID, renv.Type)
		}
	}
}

// ingestSubmit routes one decoded bid message to the per-agent ingest
// path: each Multi entry separately for a multiplexed session, or the
// session's sole agent for the plain form.
func (s *Server) ingestSubmit(sess *session, msg *BidSubmitMsg) {
	now := time.Now()
	if len(msg.Multi) > 0 {
		for i := range msg.Multi {
			ab := &msg.Multi[i]
			if !sess.owns(ab.Agent) {
				s.logger.Printf("session %d submitted for foreign agent %d", sess.first, ab.Agent)
				continue
			}
			s.ingestBid(sess, ab.Agent, msg.T, ab.Bids, now)
		}
		return
	}
	s.ingestBid(sess, sess.first, msg.T, msg.Bids, now)
}

// ingestBid applies one agent's submission directly into the open gather
// window. Admission checks run first (token bucket, then the per-round
// queue bound), then the mechanism-safety rules the serial engine
// enforced in its gather loop: a stale round tag is discarded with the
// agent kept pending, and only the first current-round submission counts
// — a resubmission could game the critical payment.
func (s *Server) ingestBid(sess *session, id, tag int, bids []WireBid, now time.Time) {
	if s.adm != nil {
		if ok, wait := s.adm.allowBid(id, now); !ok {
			s.reject(sess, &RejectMsg{T: tag, Agent: id, Code: RejectRateLimited, RetryAfterMillis: wait.Milliseconds()})
			return
		}
	}
	s.gmu.Lock()
	g := s.gather
	if g == nil || !g.open || sess.dead.Load() {
		// No open round (or the session is already deregistered): the
		// submission is necessarily stale. The serial engine drained these
		// at announce time; direct ingest drops them on arrival.
		s.gmu.Unlock()
		return
	}
	t := g.t
	if s.adm != nil && s.adm.cfg.QueueBound > 0 {
		g.submits[id]++
		if g.submits[id] > s.adm.cfg.QueueBound {
			s.gmu.Unlock()
			s.reject(sess, &RejectMsg{T: tag, Agent: id, Code: RejectQueueFull})
			return
		}
	}
	if tag != t {
		// Stale round tag: discard the message but KEEP the agent pending —
		// its forthcoming current-round bid must still count.
		s.gmu.Unlock()
		return
	}
	if g.answered[id] {
		// Resubmission for the current round: keep the first, and do not
		// decrement pending again, or the round could clear while an honest
		// agent is still pending.
		s.gmu.Unlock()
		return
	}
	g.answered[id] = true
	for i := range bids {
		wb := &bids[i]
		g.buf.Add(id, wb.Alt, wb.Price, wb.Covers, wb.Units)
	}
	g.pending--
	if g.pending <= 0 && !g.doneClosed {
		close(g.done)
		g.doneClosed = true
	}
	rtt := now.Sub(g.announcedAt)
	s.gmu.Unlock()

	s.mBids.Add(int64(len(bids)))
	s.mBidRTT.Observe(float64(rtt.Microseconds()))
	if s.adm != nil {
		s.adm.recordSuccess(id)
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.BidReceived{T: t, ID: id, Bids: len(bids), RTTMicros: rtt.Microseconds()})
	}
}

// reject sends a typed backpressure reply. A peer that cannot take the
// reply within the write timeout is dropped like any other stalled
// reader.
func (s *Server) reject(sess *session, msg *RejectMsg) {
	s.mRejects.Inc()
	if s.tracer != nil {
		s.tracer.Emit(obs.BidRejected{T: msg.T, ID: msg.Agent, Code: msg.Code})
	}
	if err := sess.send(&Envelope{Type: TypeReject, Reject: msg}, s.cfg.writeTimeout()); err != nil {
		s.logger.Printf("reject to agent %d: %v", msg.Agent, err)
		s.dropSession(sess, obs.DropWriteTimeout, err.Error())
	}
}

// dropAgent deregisters the session carrying agent id (dropping its
// session-mates with it: connection-level failure is session-level).
func (s *Server) dropAgent(id int, cause, detail string) {
	s.mu.Lock()
	a := s.agents[id]
	s.mu.Unlock()
	if a == nil {
		return
	}
	s.dropSession(a.sess, cause, detail)
}

// dropSession deregisters every agent of a session and closes its
// connection. It is idempotent: only the call that actually removes
// agents emits AgentDrop events and bumps the drop counter, so the read
// loop's follow-up (the closed connection makes its recv fail) stays
// silent.
func (s *Server) dropSession(sess *session, cause, detail string) {
	sess.dead.Store(true)
	var removed []int
	s.mu.Lock()
	for i := 0; i < sess.count; i++ {
		id := sess.first + i
		if a, ok := s.agents[id]; ok && a.sess == sess {
			delete(s.agents, id)
			removed = append(removed, id)
		}
	}
	s.mu.Unlock()
	if len(removed) == 0 {
		return
	}
	_ = sess.c.close()
	now := time.Now()
	for _, id := range removed {
		s.mDrops.Inc()
		if s.adm != nil {
			s.adm.recordDrop(id, cause, now)
		}
		if s.tracer != nil {
			s.tracer.Emit(obs.AgentDrop{ID: id, Cause: cause, Detail: detail})
		}
	}
}

// RoundOutcome is the platform-visible result of one cleared round.
type RoundOutcome struct {
	T          int
	Awards     []WireAward
	SocialCost float64
	Infeasible bool
	// Bids is the assembled instance the auction ran on (for audit).
	Bids int
}

// RunRound clears one auction round for the given residual demand: it
// announces the round, gathers bids until the deadline, runs the online
// mechanism, and broadcasts the result. needyIDs (optional) names the
// needy microservices for the agents' benefit.
func (s *Server) RunRound(demand []int, needyIDs []int) (*RoundOutcome, error) {
	return s.RunRoundContext(context.Background(), demand, needyIDs)
}

// RunRoundContext is RunRound honoring ctx: if the context is cancelled
// while bids are being gathered the round aborts — no mechanism runs, no
// result is broadcast, pending agents stay connected — and the wrapped
// context error is returned. The round number is still consumed.
//
// Internally the round is the two pipeline stages run back to back:
// gatherRound (announce + ingest until deadline) then settleRound
// (match + payments + WAL + award fan-out). RunPipelined overlaps the
// stages across consecutive rounds instead.
func (s *Server) RunRoundContext(ctx context.Context, demand []int, needyIDs []int) (*RoundOutcome, error) {
	rs, err := s.gatherRound(ctx, demand, needyIDs)
	if err != nil {
		return nil, err
	}
	return s.settleRound(rs)
}

// gatherRound runs the ingest stage of one round: it consumes the next
// round number, announces the round to every registered agent, and keeps
// the gather window open until all announced agents answered, the bid
// deadline fired, or ctx was cancelled. On success the returned state
// holds the assembled canonical instance and must be passed to
// settleRound (which recycles it).
//
// It is the two ingest halves run back to back; RunPipelined calls them
// separately so the previous round's settle can run between a round's
// announce and its bid wait.
func (s *Server) gatherRound(ctx context.Context, demand []int, needyIDs []int) (*roundState, error) {
	rs, err := s.announceRound(ctx, demand, needyIDs)
	if err != nil {
		return nil, err
	}
	if err := s.awaitGather(ctx, rs); err != nil {
		return nil, err
	}
	return rs, nil
}

// announceRound opens the gather window for the next round and fans the
// announce out to every registered agent. Bids land in the window from
// the per-connection read loops the moment the announce hits the wire —
// the caller need not be waiting yet, which is what lets a pipelined
// server settle the previous round in that gap. On error the window is
// torn down and the state recycled; the round number stays consumed.
func (s *Server) announceRound(ctx context.Context, demand []int, needyIDs []int) (*roundState, error) {
	started := time.Now()
	rs := s.getRoundState()
	rs.started = started
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.putRoundState(rs)
		return nil, errors.New("platform: server closed")
	}
	s.round++
	t := s.round
	if s.msoa == nil {
		cfg := s.cfg.Auction
		if cfg.Capacity == nil {
			cfg.Capacity = s.capacity
		}
		if cfg.Windows == nil {
			cfg.Windows = s.windows
		}
		if cfg.Options.Tracer == nil {
			cfg.Options.Tracer = s.tracer
		}
		s.auction = cfg
		if s.cfg.Resume != nil {
			s.msoa = core.RestoreMSOA(cfg, s.cfg.Resume.State)
		} else {
			s.msoa = core.NewMSOA(cfg)
		}
	}
	rs.agents = rs.agents[:0]
	for _, a := range s.agents {
		rs.agents = append(rs.agents, a)
	}
	s.mu.Unlock()
	rs.sorter.agents = rs.agents
	sort.Sort(&rs.sorter)

	rs.t = t
	rs.demand = demand
	rs.needyIDs = needyIDs
	rs.droppedIDs = rs.droppedIDs[:0]

	deadline := s.cfg.bidDeadline()
	if s.tracer != nil {
		total := 0
		for _, d := range demand {
			total += d
		}
		s.tracer.Emit(obs.RoundOpen{
			Scope: obs.ScopePlatform, T: t, Needy: len(needyIDs),
			TotalDemand: total, Agents: len(rs.agents),
		})
	}

	// Open the gather window BEFORE announcing: with direct ingest there
	// is no per-agent buffer, so a fast agent's bid must find the window
	// open the moment it lands.
	s.gmu.Lock()
	rs.buf.Reset(demand)
	clear(rs.answered)
	clear(rs.submits)
	rs.pending = len(rs.agents)
	rs.open = true
	rs.doneClosed = false
	rs.done = make(chan struct{})
	rs.announcedAt = time.Now()
	if rs.pending == 0 {
		close(rs.done)
		rs.doneClosed = true
	}
	s.gather = rs
	s.gmu.Unlock()

	announce, err := encodeEnvelope(&Envelope{Type: TypeAnnounce, Announce: &AnnounceMsg{
		T: t, Demand: demand, NeedyIDs: needyIDs, DeadlineMillis: deadline.Milliseconds(),
	}})
	if err != nil {
		s.abortGather(rs)
		return nil, err
	}

	// Fault phase: consult the injection hook per agent, serially, before
	// any real send, so the injected drop set and its event order are
	// deterministic regardless of fan-out scheduling.
	if f := s.cfg.Fault.SendFault; f != nil {
		for _, a := range rs.agents {
			if err := f(t, a.id, TypeAnnounce); err != nil {
				s.logger.Printf("announce to agent %d: %v", a.id, err)
				// A write failure here means the agent cannot hear the round;
				// it would only pin the gather phase at the full deadline, so
				// deregister it now rather than wait for its read loop to fail.
				s.dropAgent(a.id, obs.DropWriteTimeout, err.Error())
			}
		}
		s.filterLive(rs)
	}

	rs.sessions = rs.sessions[:0]
	for _, a := range rs.agents {
		if a.id == a.sess.first {
			rs.sessions = append(rs.sessions, a.sess)
		}
	}
	for i, err := range s.broadcastRaw(rs, TypeAnnounce, announce) {
		if err != nil {
			ss := rs.sessions[i]
			s.logger.Printf("announce to agent %d: %v", ss.first, err)
			s.dropSession(ss, obs.DropWriteTimeout, err.Error())
		}
	}
	s.filterLive(rs)

	// Agents dropped at announce never heard the round; take them out of
	// the pending count (unless a racing in-flight bid already did).
	s.gmu.Lock()
	for _, id := range rs.droppedIDs {
		if !rs.answered[id] {
			rs.pending--
		}
	}
	if rs.pending <= 0 && !rs.doneClosed {
		close(rs.done)
		rs.doneClosed = true
	}
	s.gmu.Unlock()

	// Scripted crash: the process dies while bids are in flight. Nothing
	// reached the WAL for this round, so recovery re-runs round t whole.
	if err := s.crashPoint(t, CrashMidGather); err != nil {
		s.abortGather(rs)
		return nil, err
	}
	return rs, nil
}

// awaitGather blocks until the announced round's gather window resolves
// — every live announced agent answered, the bid deadline (measured
// from the announce, not from this call) fired, or ctx was cancelled —
// then closes the window and assembles the canonical instance. On error
// the state is recycled.
func (s *Server) awaitGather(ctx context.Context, rs *roundState) error {
	t := rs.t
	// Anchor the deadline at the announce time so a caller that settles
	// another round before waiting does not extend the agents' window.
	timer := time.NewTimer(time.Until(rs.announcedAt.Add(s.cfg.bidDeadline())))
	defer timer.Stop()
	select {
	case <-rs.done:
	case <-timer.C:
		if s.tracer != nil {
			for _, id := range s.unanswered(rs) {
				s.tracer.Emit(obs.AgentTimeout{T: t, ID: id, Cause: obs.TimeoutDeadline})
			}
		}
	case <-ctx.Done():
		var pending int
		s.gmu.Lock()
		pending = rs.pending
		s.gmu.Unlock()
		if s.tracer != nil {
			for _, id := range s.unanswered(rs) {
				s.tracer.Emit(obs.AgentTimeout{T: t, ID: id, Cause: obs.TimeoutCancelled})
			}
			s.tracer.Emit(obs.RoundAbort{T: t, Err: ctx.Err().Error(), Pending: pending})
		}
		s.metrics.Counter("platform_rounds_aborted_total").Inc()
		s.abortGather(rs)
		return fmt.Errorf("platform: round %d aborted: %w", t, ctx.Err())
	}

	// Close the window; late bids now drop at arrival like any other
	// out-of-round submission.
	s.gmu.Lock()
	rs.open = false
	s.gather = nil
	s.gmu.Unlock()

	// The ingest buffer re-emits every bid in canonical (Bidder, Alt)
	// order, so the instance — and everything downstream — is independent
	// of arrival order and shard routing.
	rs.ins = rs.buf.Build()
	if s.tracer != nil {
		s.tracer.Emit(obs.StageLatency{T: t, Stage: "gather", DurationMicros: time.Since(rs.started).Microseconds()})
	}
	if err := rs.ins.Validate(); err != nil {
		s.putRoundState(rs)
		return fmt.Errorf("platform: assembled invalid round instance: %w", err)
	}
	return nil
}

// filterLive compacts rs.agents down to agents whose session is still
// registered, recording the removed ids for the pending adjustment.
func (s *Server) filterLive(rs *roundState) {
	live := rs.agents[:0]
	for _, a := range rs.agents {
		if a.sess.dead.Load() {
			rs.droppedIDs = append(rs.droppedIDs, a.id)
			continue
		}
		live = append(live, a)
	}
	rs.agents = live
}

// unanswered snapshots the announced agents that have not answered, in
// id order, into the round's scratch slice.
func (s *Server) unanswered(rs *roundState) []int {
	rs.scratch = rs.scratch[:0]
	s.gmu.Lock()
	for _, a := range rs.agents {
		if !rs.answered[a.id] {
			rs.scratch = append(rs.scratch, a.id)
		}
	}
	s.gmu.Unlock()
	return rs.scratch
}

// abortGather tears down an open gather window after a crash or
// cancellation: the round number stays consumed, agents stay connected,
// and the state returns to the pool.
func (s *Server) abortGather(rs *roundState) {
	s.gmu.Lock()
	rs.open = false
	if s.gather == rs {
		s.gather = nil
	}
	s.gmu.Unlock()
	s.putRoundState(rs)
}

// broadcastRaw fans one pre-encoded envelope out to rs.sessions, each
// send bounded by the per-session write timeout. Up to broadcastWorkers
// sessions are written concurrently; errors come back slot-aligned with
// rs.sessions so the caller can process failures in deterministic
// (agent-id) order.
func (s *Server) broadcastRaw(rs *roundState, msgType string, data []byte) []error {
	n := len(rs.sessions)
	if cap(rs.sendErrs) < n {
		rs.sendErrs = make([]error, n)
	}
	errs := rs.sendErrs[:n]
	for i := range errs {
		errs[i] = nil
	}
	timeout := s.cfg.writeTimeout()
	if n <= 1 {
		for i, ss := range rs.sessions {
			errs[i] = ss.sendRaw(msgType, data, timeout)
		}
		return errs
	}
	workers := broadcastWorkers
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = rs.sessions[i].sendRaw(msgType, data, timeout)
			}
		}()
	}
	wg.Wait()
	return errs
}

// settleRound runs the match and settle/announce stages for a gathered
// round: SSAM selection with critical-value payments, the WAL append
// (durable BEFORE any bidder hears its award), and the result fan-out.
// The round state returns to the pool on every path.
func (s *Server) settleRound(rs *roundState) (*RoundOutcome, error) {
	defer s.putRoundState(rs)
	t := rs.t
	settleStart := time.Now()

	res := s.msoa.RunRound(core.Round{T: t, Instance: rs.ins})
	outcome := &RoundOutcome{T: t, Bids: len(rs.ins.Bids)}
	result := &ResultMsg{T: t}
	if res.Err != nil {
		outcome.Infeasible = true
		result.Infeasible = true
		s.logger.Printf("round %d infeasible: %v", t, res.Err)
	} else {
		outcome.SocialCost = res.Outcome.SocialCost
		result.SocialCost = res.Outcome.SocialCost
		for _, w := range res.Outcome.Winners {
			b := rs.ins.Bids[w]
			award := WireAward{Bidder: b.Bidder, Alt: b.Alt, Payment: res.Outcome.Payments[w]}
			if f := s.cfg.Fault.CorruptPayment; f != nil {
				award.Payment = f(t, award)
			}
			outcome.Awards = append(outcome.Awards, award)
			result.Awards = append(result.Awards, award)
		}
	}

	// Build the round record once; the WAL and the audit sink share it
	// (when the WAL stamps the logical timestamp and state hash first, the
	// audit line inherits them, keeping the two logs consistent). Cover
	// slices are deep-copied out of the pooled ingest arena because audit
	// consumers may retain the record past this round.
	var rec *AuditRecord
	if s.cfg.WAL != nil || s.cfg.Audit != nil {
		rec = &AuditRecord{
			T:          t,
			Demand:     rs.demand,
			NeedyIDs:   rs.needyIDs,
			Awards:     outcome.Awards,
			SocialCost: outcome.SocialCost,
			Infeasible: outcome.Infeasible,
		}
		for _, b := range rs.ins.Bids {
			rec.Bids = append(rec.Bids, AuditBid{
				Bidder: b.Bidder, Alt: b.Alt, Price: b.Price,
				Covers: append([]int(nil), b.Covers...), Units: b.Units,
			})
		}
	}

	// Write-ahead: the record must be durable BEFORE any bidder hears its
	// award, or a crash between announce and append would lose a round the
	// outside world already acted on.
	if s.cfg.WAL != nil {
		s.mu.Lock()
		rec.Capacity = copyIntMap(s.auction.Capacity)
		rec.Windows = copyWindowMap(s.auction.Windows)
		s.mu.Unlock()
		rec.StateHash = s.msoa.Snapshot().Hash()
		if err := s.cfg.WAL.Append(rec); err != nil {
			return nil, err
		}
	}

	// Scripted crash: the record is durable but no bidder heard the
	// result. Recovery resumes at t+1 with the logged state.
	if err := s.crashPoint(t, CrashPreAnnounce); err != nil {
		return nil, err
	}

	data, err := encodeEnvelope(&Envelope{Type: TypeResult, Result: result})
	if err != nil {
		return nil, err
	}
	if f := s.cfg.Fault.SendFault; f != nil {
		for _, a := range rs.agents {
			if err := f(t, a.id, TypeResult); err != nil {
				s.logger.Printf("result to agent %d: %v", a.id, err)
				s.dropAgent(a.id, obs.DropWriteTimeout, err.Error())
			}
		}
	}
	s.filterLive(rs)
	rs.sessions = rs.sessions[:0]
	for _, a := range rs.agents {
		if a.id == a.sess.first {
			rs.sessions = append(rs.sessions, a.sess)
		}
	}
	for i, err := range s.broadcastRaw(rs, TypeResult, data) {
		if err != nil {
			ss := rs.sessions[i]
			s.logger.Printf("result to agent %d: %v", ss.first, err)
			// A peer that cannot take the result within the write timeout
			// (stalled reader, dead connection) would stall every future
			// broadcast too; deregister it.
			s.dropSession(ss, obs.DropWriteTimeout, err.Error())
		}
	}

	// Scripted crash: bidders saw their awards; only in-memory state dies.
	// The write-ahead append above already made this round durable.
	if err := s.crashPoint(t, CrashPostAnnounce); err != nil {
		return nil, err
	}

	s.metrics.Counter("platform_rounds_total").Inc()
	s.metrics.Histogram("platform_round_us", 0, 5e6, 20).Observe(float64(time.Since(rs.started).Microseconds()))
	if s.tracer != nil {
		totalPay := 0.0
		for _, aw := range outcome.Awards {
			totalPay += aw.Payment
		}
		s.tracer.Emit(obs.StageLatency{T: t, Stage: "settle", DurationMicros: time.Since(settleStart).Microseconds()})
		s.tracer.Emit(obs.RoundClose{
			Scope: obs.ScopePlatform, T: t, Bids: len(rs.ins.Bids),
			Winners: len(outcome.Awards), SocialCost: outcome.SocialCost,
			TotalPayment: totalPay, Infeasible: outcome.Infeasible,
			DurationMicros: time.Since(rs.started).Microseconds(),
		})
	}

	if s.cfg.Audit != nil {
		if err := s.cfg.Audit.record(rec); err != nil {
			return nil, err
		}
	}
	return outcome, nil
}

// crashPoint consults the crash-injection hook at one scripted site. A
// non-nil hook error aborts the round exactly where a process kill would
// have — the caller returns immediately, leaving whatever the WAL and the
// network have already seen as the only survivors.
func (s *Server) crashPoint(t int, point string) error {
	f := s.cfg.Fault.Crash
	if f == nil {
		return nil
	}
	err := f(t, point)
	if err == nil {
		return nil
	}
	s.metrics.Counter("platform_crashes_total").Inc()
	if s.tracer != nil {
		s.tracer.Emit(obs.RoundAbort{T: t, Err: err.Error()})
	}
	return fmt.Errorf("platform: round %d crashed at %s: %w", t, point, err)
}

// SnapshotState returns the durable checkpoint ingredients: the last
// consumed round number and the mechanism's cross-round state (nil before
// the first round). Pair with WriteSnapshot between rounds; not safe to
// call concurrently with an in-flight RunRound.
func (s *Server) SnapshotState() (round int, st *core.MSOAState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.msoa == nil {
		return s.round, nil
	}
	return s.round, s.msoa.Snapshot()
}

// Summary returns the aggregate mechanism summary so far (nil before the
// first round).
func (s *Server) Summary() *core.OnlineSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.msoa == nil {
		return nil
	}
	return s.msoa.Summary()
}

// Close shuts the platform down: notifies agents, stops accepting, and
// waits for connection handlers to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*session, 0, len(s.agents))
	seen := make(map[*session]bool, len(s.agents))
	for _, a := range s.agents {
		if !seen[a.sess] {
			seen[a.sess] = true
			sessions = append(sessions, a.sess)
		}
	}
	s.mu.Unlock()

	s.cancel()
	for _, ss := range sessions {
		_ = ss.send(&Envelope{Type: TypeShutdown}, s.cfg.writeTimeout())
		_ = ss.c.close()
	}
	err := s.listener.Close()
	s.wg.Wait()
	if err != nil {
		return fmt.Errorf("platform: close listener: %w", err)
	}
	return nil
}
