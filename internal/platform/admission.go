package platform

import (
	"sync"
	"time"

	"edgeauction/internal/obs"
)

// DefaultBreakerCooldown is how long an opened circuit refuses a
// flapping agent when AdmissionConfig.BreakerCooldown is zero.
const DefaultBreakerCooldown = 5 * time.Second

// AdmissionConfig is the listener-edge admission control: per-agent
// token-bucket rate limits on bid submissions, circuit-breaking of
// flapping agents, and bounded per-round ingest that sheds floods with
// a typed TypeReject reply instead of buffering without bound.
//
// The zero value disables every check, which keeps the default server
// byte-identical to the pre-admission engine — the deterministic chaos
// soaks depend on that.
type AdmissionConfig struct {
	// BidRate is the sustained bid-submission rate (messages/second)
	// each agent is allowed; 0 disables rate limiting.
	BidRate float64
	// BidBurst is the token-bucket depth; 0 means a burst of 1 when
	// BidRate is set.
	BidBurst int
	// BreakerThreshold opens an agent's circuit after this many
	// consecutive connection drops with a timeout/RST cause
	// (read-error, write-timeout, welcome-failed). While open, the
	// agent's re-registration is refused with RejectCircuitOpen. 0
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses the agent
	// before half-opening (one probe registration is admitted; another
	// qualifying drop re-opens it, a delivered bid closes it). Zero
	// means DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// QueueBound caps how many bid submissions the platform absorbs
	// from one agent per round (live, stale, and duplicate alike).
	// Submissions beyond the bound are shed with a RejectQueueFull
	// reply — the bounded-queue answer to a stale-bid flood. 0 disables
	// shedding (legacy: silent discard, no bound needed because the
	// discard is O(1) per message).
	QueueBound int
}

// enabled reports whether any admission check is configured.
func (c AdmissionConfig) enabled() bool {
	return c.BidRate > 0 || c.BreakerThreshold > 0 || c.QueueBound > 0
}

func (c AdmissionConfig) breakerCooldown() time.Duration {
	if c.BreakerCooldown == 0 {
		return DefaultBreakerCooldown
	}
	return c.BreakerCooldown
}

func (c AdmissionConfig) bidBurst() int {
	if c.BidBurst < 1 {
		return 1
	}
	return c.BidBurst
}

// admissionState is the server-side admission bookkeeping. All methods
// are safe for concurrent use from the connection read loops.
type admissionState struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	buckets  map[int]*tokenBucket
	breakers map[int]*breakerState
}

func newAdmissionState(cfg AdmissionConfig) *admissionState {
	return &admissionState{
		cfg:      cfg,
		buckets:  make(map[int]*tokenBucket),
		breakers: make(map[int]*breakerState),
	}
}

// tokenBucket is a standard refill-on-demand token bucket.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// breakerState tracks one agent's consecutive qualifying drops.
type breakerState struct {
	consecutive int
	open        bool
	openedAt    time.Time
}

// allowBid takes one token from the agent's bucket, reporting whether
// the submission may proceed and, if not, how long until the next token.
func (ad *admissionState) allowBid(id int, now time.Time) (bool, time.Duration) {
	if ad.cfg.BidRate <= 0 {
		return true, 0
	}
	ad.mu.Lock()
	defer ad.mu.Unlock()
	b := ad.buckets[id]
	if b == nil {
		b = &tokenBucket{tokens: float64(ad.cfg.bidBurst()), last: now}
		ad.buckets[id] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * ad.cfg.BidRate
		if max := float64(ad.cfg.bidBurst()); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / ad.cfg.BidRate * float64(time.Second))
	return false, wait
}

// admit reports whether a registration for the agent may proceed. An
// open circuit refuses until the cool-down has elapsed, then
// half-opens: the probe registration is admitted, and the next
// qualifying drop re-opens the circuit while a delivered bid closes it.
func (ad *admissionState) admit(id int, now time.Time) (bool, time.Duration) {
	if ad.cfg.BreakerThreshold <= 0 {
		return true, 0
	}
	ad.mu.Lock()
	defer ad.mu.Unlock()
	br := ad.breakers[id]
	if br == nil || !br.open {
		return true, 0
	}
	if elapsed := now.Sub(br.openedAt); elapsed < ad.cfg.breakerCooldown() {
		return false, ad.cfg.breakerCooldown() - elapsed
	}
	// Half-open: admit the probe; leave the consecutive count at the
	// threshold so one more drop re-opens immediately.
	br.open = false
	return true, 0
}

// recordDrop notes a connection drop. Only timeout/RST causes count
// toward the breaker; deliberate protocol rejections do not.
func (ad *admissionState) recordDrop(id int, cause string, now time.Time) {
	if ad.cfg.BreakerThreshold <= 0 {
		return
	}
	switch cause {
	case obs.DropReadError, obs.DropWriteTimeout, obs.DropWelcomeFailed:
	default:
		return
	}
	ad.mu.Lock()
	defer ad.mu.Unlock()
	br := ad.breakers[id]
	if br == nil {
		br = &breakerState{}
		ad.breakers[id] = br
	}
	br.consecutive++
	if br.consecutive >= ad.cfg.BreakerThreshold {
		br.open = true
		br.openedAt = now
	}
}

// recordSuccess resets the agent's breaker after a delivered bid — the
// agent is demonstrably holding a healthy connection again.
func (ad *admissionState) recordSuccess(id int) {
	if ad.cfg.BreakerThreshold <= 0 {
		return
	}
	ad.mu.Lock()
	defer ad.mu.Unlock()
	if br := ad.breakers[id]; br != nil {
		br.consecutive = 0
		br.open = false
	}
}
