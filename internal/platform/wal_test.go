package platform

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgeauction/internal/core"
	"edgeauction/internal/obs"
)

func walRecord(t int, hash string) *AuditRecord {
	return &AuditRecord{
		T:      t,
		Demand: []int{2, 1},
		Bids: []AuditBid{
			{Bidder: 1, Alt: 1, Price: 20, Covers: []int{0, 1}, Units: 1},
			{Bidder: 2, Alt: 1, Price: 15, Covers: []int{0}, Units: 2},
		},
		Awards:     []WireAward{{Bidder: 1, Alt: 1, Payment: 25}},
		SocialCost: 20,
		Capacity:   map[int]int{1: 10, 2: 10},
		StateHash:  hash,
	}
}

// TestReadAuditTruncatedTail is the regression test for the crash-cut
// bug: a torn final record must yield every complete record plus
// ErrTruncated, not nil-and-error.
func TestReadAuditTruncatedTail(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, err := CreateWAL(filepath.Join(t.TempDir(), "w.wal"), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(walRecord(i, "")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(data[:len(data)-25]) // cut record 3 mid-write

	recs, err := ReadAudit(&buf)
	if !errors.Is(err, obs.ErrTruncated) {
		t.Fatalf("ReadAudit on torn log: err %v, want ErrTruncated", err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records before the torn tail, want 2", len(recs))
	}
	for i, rec := range recs {
		if rec.T != i+1 {
			t.Errorf("record %d has round %d, want %d", i, rec.T, i+1)
		}
	}

	// A malformed record with complete records AFTER it is corruption, not
	// a crash cut: the prefix comes back with a hard (non-truncation) error.
	mid := string(data[:bytes.IndexByte(data, '\n')+1]) + "{garbage}\n" + string(data[:bytes.IndexByte(data, '\n')+1])
	recs, err = ReadAudit(strings.NewReader(mid))
	if err == nil || errors.Is(err, obs.ErrTruncated) {
		t.Fatalf("mid-stream corruption: err %v, want hard parse error", err)
	}
	if len(recs) != 1 {
		t.Errorf("mid-stream corruption recovered %d records, want the 1-record prefix", len(recs))
	}
}

// TestWALRoundTrip appends records through the WAL and reads them back
// bit-exactly, logical timestamps included.
func TestWALRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "round.wal")
	w, err := CreateWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord(1, "abc")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord(2, "def")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadAudit(f)
	if err != nil {
		t.Fatalf("ReadAudit: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	for i, rec := range recs {
		if rec.Kind != AuditKind {
			t.Errorf("record %d kind %q", i, rec.Kind)
		}
		if rec.UnixMillis != int64(rec.T) {
			t.Errorf("record %d: UnixMillis %d, want logical clock %d", i, rec.UnixMillis, rec.T)
		}
		if rec.Capacity[1] != 10 {
			t.Errorf("record %d lost its capacity map: %v", i, rec.Capacity)
		}
	}
	if recs[1].StateHash != "def" {
		t.Errorf("record 2 state hash %q", recs[1].StateHash)
	}
}

// TestAuditClockInjection: with an injected logical clock, two audits of
// the same rounds are byte-identical; with the default wall clock they
// carry real timestamps.
func TestAuditClockInjection(t *testing.T) {
	t.Parallel()
	run := func() []byte {
		var buf bytes.Buffer
		a := NewAudit(&buf).WithClock(LogicalClock)
		for i := 1; i <= 3; i++ {
			if err := a.record(walRecord(i, "")); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Errorf("logical-clock audit logs differ between identical runs")
	}

	var wall bytes.Buffer
	if err := NewAudit(&wall).record(walRecord(1, "")); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAudit(bytes.NewReader(wall.Bytes()))
	if err != nil || len(recs) != 1 {
		t.Fatalf("ReadAudit: %v (%d records)", err, len(recs))
	}
	if recs[0].UnixMillis <= 1e12 {
		t.Errorf("default clock stamped %d, want wall-clock millis", recs[0].UnixMillis)
	}
}

// TestSnapshotWriteLoad round-trips a checkpoint and proves corrupt
// snapshots are skipped in favor of older valid ones.
func TestSnapshotWriteLoad(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	snap, err := LoadLatestSnapshot(dir)
	if err != nil || snap != nil {
		t.Fatalf("empty dir: snap %v err %v, want nil/nil", snap, err)
	}

	m := core.NewMSOA(core.MSOAConfig{Capacity: map[int]int{1: 4}, Options: core.Options{Parallelism: 1}})
	ins := &core.Instance{Demand: []int{1}, Bids: []core.Bid{
		{Bidder: 1, Alt: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
		{Bidder: 2, Alt: 1, Price: 12, TrueCost: 12, Covers: []int{0}, Units: 1},
	}}
	if res := m.RunRound(core.Round{T: 1, Instance: ins}); res.Err != nil {
		t.Fatalf("seed round: %v", res.Err)
	}
	st := m.Snapshot()
	if _, err := WriteSnapshot(dir, 1, st); err != nil {
		t.Fatal(err)
	}
	if res := m.RunRound(core.Round{T: 2, Instance: ins}); res.Err != nil {
		t.Fatalf("seed round 2: %v", res.Err)
	}
	st2 := m.Snapshot()
	path2, err := WriteSnapshot(dir, 2, st2)
	if err != nil {
		t.Fatal(err)
	}

	snap, err = LoadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Round != 2 || !snap.State.Equal(st2) {
		t.Fatalf("loaded snapshot %+v, want round 2 state", snap)
	}

	// Corrupt the newest snapshot: loading falls back to round 1.
	if err := os.WriteFile(path2, []byte(`{"kind":"edgeauction-snapshot","round":2,"state":{"summary":{}},"hash":"bogus"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err = LoadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Round != 1 || !snap.State.Equal(st) {
		t.Fatalf("corrupt-fallback loaded %+v, want round 1 state", snap)
	}
}

// TestRecoverHashMismatch: a WAL whose state_hash does not describe its
// own records must be rejected, not silently resumed from.
func TestRecoverHashMismatch(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "bad.wal")
	w, err := CreateWAL(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord(1, "0000000000000000000000000000000000000000000000000000000000000000")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path, "", core.MSOAConfig{Options: core.Options{Parallelism: 1}}); err == nil {
		t.Fatalf("Recover accepted a WAL with a lying state hash")
	}
}
