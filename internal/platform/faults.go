package platform

// FaultInjection lets tests and the chaos harness inject deterministic
// faults into the server's send and award paths. The zero value disables
// all injection; hooks run on the RunRound goroutine and must be
// deterministic functions of their arguments if byte-identical replays
// are wanted.
type FaultInjection struct {
	// SendFault, when non-nil, is consulted before every per-agent send
	// (round announce and result broadcast; msgType is the wire type,
	// TypeAnnounce or TypeResult). Returning a non-nil error makes the
	// server treat the send as failed without touching the socket: the
	// agent is deregistered with the write-timeout drop cause, exactly as
	// if the peer had stopped reading. This simulates slow or partitioned
	// writers without real clock-dependent timeouts.
	SendFault func(t, agentID int, msgType string) error

	// Crash, when non-nil, is consulted at each scripted crash point in
	// RunRound (point is CrashMidGather, CrashPreAnnounce, or
	// CrashPostAnnounce). Returning a non-nil error — conventionally one
	// wrapping ErrCrashed — aborts the round exactly where a process kill
	// would have: mid-gather crashes lose the round entirely, pre-announce
	// crashes have the round in the WAL but bidders never hear results,
	// post-announce crashes lose only in-memory state. The chaos crash
	// harness uses this to exercise snapshot + WAL-suffix recovery.
	Crash func(t int, point string) error

	// CorruptPayment, when non-nil, maps each winning award's payment to
	// a possibly different value before it is broadcast and audited. The
	// mechanism's internal state (ψ, capacity, summary) still advances on
	// the true critical-value payments, so a corrupted award is exactly
	// the kind of platform-side defect an external auditor must catch —
	// this hook exists to prove that it does.
	CorruptPayment func(t int, award WireAward) float64
}
