package platform

import (
	"bytes"
	"testing"
)

// FuzzReadAudit hardens the audit-log parser against corrupted or
// adversarial files: arbitrary bytes must parse cleanly or fail cleanly.
func FuzzReadAudit(f *testing.F) {
	var buf bytes.Buffer
	a := NewAudit(&buf)
	if err := a.record(&AuditRecord{
		T: 1, Demand: []int{2},
		Bids:   []AuditBid{{Bidder: 1, Price: 5, Covers: []int{0}, Units: 1}},
		Awards: []WireAward{{Bidder: 1, Payment: 7}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("{\n"))
	f.Add([]byte(`{"kind":"edgeauction-audit","t":-1}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := ReadAudit(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i, rec := range records {
			if rec == nil {
				t.Fatalf("record %d is nil without error", i)
			}
			if rec.Kind != "edgeauction-audit" {
				t.Fatalf("record %d has wrong kind %q", i, rec.Kind)
			}
		}
	})
}
