package platform

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"testing"
	"time"

	"edgeauction/internal/obs"
)

// rawPeer speaks the JSON-line protocol by hand so tests can misbehave in
// ways the Agent client never would: resetting mid-round, refusing to
// read, submitting nothing.
type rawPeer struct {
	t    *testing.T
	conn *net.TCPConn
	r    *bufio.Reader
}

func dialRaw(t *testing.T, addr string, id, capacity int) *rawPeer {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := &rawPeer{t: t, conn: c.(*net.TCPConn), r: bufio.NewReader(c)}
	p.send(&Envelope{Type: TypeHello, Hello: &HelloMsg{AgentID: id, Capacity: capacity}})
	if env := p.recv(); env.Type != TypeWelcome {
		t.Fatalf("peer %d: expected welcome, got %q", id, env.Type)
	}
	return p
}

func (p *rawPeer) send(env *Envelope) {
	p.t.Helper()
	data, err := json.Marshal(env)
	if err != nil {
		p.t.Fatal(err)
	}
	if _, err := p.conn.Write(append(data, '\n')); err != nil {
		p.t.Fatalf("raw send: %v", err)
	}
}

func (p *rawPeer) recv() *Envelope {
	p.t.Helper()
	if err := p.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		p.t.Fatal(err)
	}
	line, err := p.r.ReadBytes('\n')
	if err != nil {
		p.t.Fatalf("raw recv: %v", err)
	}
	var env Envelope
	if err := json.Unmarshal(line, &env); err != nil {
		p.t.Fatalf("raw recv: %v", err)
	}
	return &env
}

// reset aborts the connection with an RST (SO_LINGER 0) instead of a
// graceful FIN, as a crashing microservice would.
func (p *rawPeer) reset() {
	p.t.Helper()
	if err := p.conn.SetLinger(0); err != nil {
		p.t.Fatal(err)
	}
	if err := p.conn.Close(); err != nil {
		p.t.Fatal(err)
	}
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for start := time.Now(); !cond(); time.Sleep(5 * time.Millisecond) {
		if time.Since(start) > 5*time.Second {
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// TestRoundSurvivesAgentReset kills one of two agents with a TCP reset
// while the round is gathering bids: the round must still clear on the
// surviving agent's bid, and the drop must surface as an agent_drop
// trace event with the read-error cause.
func TestRoundSurvivesAgentReset(t *testing.T) {
	rec := &obs.Recorder{}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		BidDeadline: 250 * time.Millisecond,
		Tracer:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	good := dialRaw(t, srv.Addr(), 1, 0)
	defer func() { _ = good.conn.Close() }()
	bad := dialRaw(t, srv.Addr(), 2, 0)
	waitCond(t, "both agents registered", func() bool { return srv.AgentCount() == 2 })

	type roundRes struct {
		out *RoundOutcome
		err error
	}
	done := make(chan roundRes, 1)
	go func() {
		out, err := srv.RunRound([]int{2}, nil)
		done <- roundRes{out, err}
	}()

	// Both agents receive the announce (so the reset cannot race the
	// server's own announce write); then the bad one resets instead of
	// bidding.
	ann := good.recv()
	if ann.Type != TypeAnnounce {
		t.Fatalf("expected announce, got %q", ann.Type)
	}
	if env := bad.recv(); env.Type != TypeAnnounce {
		t.Fatalf("expected announce, got %q", env.Type)
	}
	bad.reset()
	good.send(&Envelope{Type: TypeBid, Bid: &BidSubmitMsg{
		T: ann.Announce.T, Bids: []WireBid{{Alt: 1, Price: 10, Covers: []int{0}, Units: 2}},
	}})

	res := <-done
	if res.err != nil {
		t.Fatalf("round failed: %v", res.err)
	}
	if res.out.Infeasible || len(res.out.Awards) != 1 || res.out.Awards[0].Bidder != 1 {
		t.Fatalf("unexpected outcome: %+v", res.out)
	}
	waitCond(t, "reset agent deregistered", func() bool { return srv.AgentCount() == 1 })

	drops := rec.ByKind(obs.KindAgentDrop)
	if len(drops) != 1 {
		t.Fatalf("agent_drop events = %d, want 1 (%v)", len(drops), rec.Kinds())
	}
	drop := drops[0].(obs.AgentDrop)
	if drop.ID != 2 || drop.Cause != obs.DropReadError {
		t.Fatalf("drop = %+v, want agent 2 with cause %q", drop, obs.DropReadError)
	}
	sum := srv.Summary()
	if sum == nil || sum.Rounds != 1 || sum.InfeasibleRounds != 0 {
		t.Fatalf("summary = %+v, want 1 feasible round", sum)
	}
}

// TestSlowWriterDropped registers a peer that never reads and announces a
// round whose demand payload far exceeds the socket buffers with a tiny
// write timeout: the blocked announce must hit the deadline, the peer
// must be dropped with the write-timeout cause, and the round must
// complete (infeasibly, as nobody is left to bid) without hanging.
func TestSlowWriterDropped(t *testing.T) {
	rec := &obs.Recorder{}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		BidDeadline:  50 * time.Millisecond,
		WriteTimeout: 20 * time.Millisecond,
		Tracer:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	peer := dialRaw(t, srv.Addr(), 1, 0)
	defer func() { _ = peer.conn.Close() }()
	waitCond(t, "peer registered", func() bool { return srv.AgentCount() == 1 })

	// ~4M demand entries marshal to ~8MB of JSON — beyond anything the
	// kernel will buffer for a peer that never reads, even with socket
	// buffer auto-tuning.
	demand := make([]int, 1<<22)
	for i := range demand {
		demand[i] = 1
	}
	out, err := srv.RunRound(demand, nil)
	if err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if !out.Infeasible || out.Bids != 0 {
		t.Fatalf("outcome = %+v, want infeasible round with no bids", out)
	}
	if srv.AgentCount() != 0 {
		t.Fatalf("agent count = %d, want 0 after write-timeout drop", srv.AgentCount())
	}

	drops := rec.ByKind(obs.KindAgentDrop)
	if len(drops) != 1 {
		t.Fatalf("agent_drop events = %d, want 1 (%v)", len(drops), rec.Kinds())
	}
	drop := drops[0].(obs.AgentDrop)
	if drop.ID != 1 || drop.Cause != obs.DropWriteTimeout {
		t.Fatalf("drop = %+v, want agent 1 with cause %q", drop, obs.DropWriteTimeout)
	}
	sum := srv.Summary()
	if sum == nil || sum.Rounds != 1 || sum.InfeasibleRounds != 1 {
		t.Fatalf("summary = %+v, want 1 infeasible round", sum)
	}
}

// TestRoundCancelledByContext cancels a round mid-gather: the round must
// abort with the context error, emit round_abort and cancelled
// agent-timeout events, leave the silent agent connected, and leave the
// mechanism summary untouched (the aborted round never ran).
func TestRoundCancelledByContext(t *testing.T) {
	rec := &obs.Recorder{}
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		BidDeadline: 30 * time.Second, // round would hang without the cancel
		Tracer:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	agent, err := Dial(srv.Addr(), AgentConfig{ID: 1}) // no policy: never bids
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	waitCond(t, "agent registered", func() bool { return srv.AgentCount() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.RunRoundContext(ctx, []int{1}, nil)
		done <- err
	}()
	waitCond(t, "announce delivered", func() bool { return agent.RoundsSeen() == 1 })
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled round did not return")
	}

	aborts := rec.ByKind(obs.KindRoundAbort)
	if len(aborts) != 1 {
		t.Fatalf("round_abort events = %d, want 1 (%v)", len(aborts), rec.Kinds())
	}
	if ab := aborts[0].(obs.RoundAbort); ab.Pending != 1 {
		t.Fatalf("abort = %+v, want 1 pending agent", ab)
	}
	timeouts := rec.ByKind(obs.KindAgentTimeout)
	if len(timeouts) != 1 {
		t.Fatalf("agent_timeout events = %d, want 1", len(timeouts))
	}
	if to := timeouts[0].(obs.AgentTimeout); to.ID != 1 || to.Cause != obs.TimeoutCancelled {
		t.Fatalf("timeout = %+v, want agent 1 cancelled", to)
	}
	if rec.Count(obs.KindRoundClose) != 0 {
		t.Fatal("aborted round must not emit round_close")
	}
	if srv.AgentCount() != 1 {
		t.Fatalf("agent count = %d, want 1 (cancel must not drop agents)", srv.AgentCount())
	}
	if sum := srv.Summary(); sum != nil && sum.Rounds != 0 {
		t.Fatalf("summary = %+v, want no completed rounds", sum)
	}

	// The server must remain usable: a follow-up round with a live context
	// completes normally (infeasibly, since the agent never bids).
	srv.cfg.BidDeadline = 50 * time.Millisecond
	out, err := srv.RunRound([]int{1}, nil)
	if err != nil {
		t.Fatalf("follow-up round: %v", err)
	}
	if !out.Infeasible {
		t.Fatalf("follow-up outcome = %+v", out)
	}
	if sum := srv.Summary(); sum == nil || sum.Rounds != 1 {
		t.Fatalf("summary after follow-up = %+v, want 1 round", sum)
	}
}
