package federation

import (
	"strings"
	"testing"

	"edgeauction/internal/core"
)

// TestEmptyMarketList: a round with no markets is a valid no-op.
func TestEmptyMarketList(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.RunRound(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clouds) != 0 || res.SocialCost != 0 || res.TotalPayment != 0 || res.BorrowedSlots != 0 {
		t.Fatalf("empty round not empty: %+v", res)
	}
}

// TestNoEligibleBids: a cloud with demand but no bids anywhere cannot even
// assemble a federated market; the per-cloud error names the path and the
// cleared-market fields stay nil.
func TestNoEligibleBids(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.RunRound(1, []CloudMarket{market(1, []int{2})})
	if err != nil {
		t.Fatal(err)
	}
	cr := res.Clouds[0]
	if cr.Err == nil || !strings.Contains(cr.Err.Error(), "no eligible bids") {
		t.Fatalf("err = %v, want no-eligible-bids", cr.Err)
	}
	if cr.Outcome != nil || cr.Instance != nil || cr.Federated {
		t.Fatalf("failed cloud carries outcome state: %+v", cr)
	}
}

// TestUncoverableEvenFederated: remote bids exist but the combined market
// still cannot meet the demand; the error wraps the mechanism's
// infeasibility and the round continues for other clouds.
func TestUncoverableEvenFederated(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.RunRound(1, []CloudMarket{
		market(1, []int{5},
			core.Bid{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1}),
		market(2, []int{1},
			core.Bid{Bidder: 2, Price: 8, TrueCost: 8, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 3, Price: 9, TrueCost: 9, Covers: []int{0}, Units: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var failed, cleared *CloudResult
	for _, cr := range res.Clouds {
		switch cr.Cloud {
		case 1:
			failed = cr
		case 2:
			cleared = cr
		}
	}
	if failed.Err == nil || !strings.Contains(failed.Err.Error(), "uncoverable even federated") {
		t.Fatalf("cloud 1 err = %v, want uncoverable-even-federated", failed.Err)
	}
	if failed.Outcome != nil || failed.Instance != nil {
		t.Fatalf("failed cloud carries outcome state: %+v", failed)
	}
	if cleared.Err != nil {
		t.Fatalf("cloud 2 should clear locally despite cloud 1 failing: %v", cleared.Err)
	}
}

// TestPureBidPoolSuppliesBorrowers: a zero-demand cloud contributes its
// bids to borrowing clouds without clearing anything itself, and the
// transfer records the pool as origin.
func TestPureBidPoolSuppliesBorrowers(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t), LatencyPremium: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.RunRound(1, []CloudMarket{
		market(1, []int{2},
			core.Bid{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1}),
		market(2, nil,
			core.Bid{Bidder: 2, Price: 12, TrueCost: 12, Covers: []int{0}, Units: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var borrower, pool *CloudResult
	for _, cr := range res.Clouds {
		switch cr.Cloud {
		case 1:
			borrower = cr
		case 2:
			pool = cr
		}
	}
	if pool.Err != nil || pool.Federated || len(pool.Transfers) != 0 {
		t.Fatalf("pool cloud should be inert: %+v", pool)
	}
	if pool.Outcome == nil || len(pool.Outcome.Winners) != 0 || pool.Outcome.Payments == nil {
		t.Fatalf("pool cloud outcome = %+v, want empty cleared market", pool.Outcome)
	}
	if pool.Instance == nil || pool.Instance.TotalDemand() != 0 {
		t.Fatalf("pool cloud instance = %+v, want zero-demand instance", pool.Instance)
	}
	if borrower.Err != nil {
		t.Fatal(borrower.Err)
	}
	if !borrower.Federated || len(borrower.Transfers) == 0 {
		t.Fatalf("borrower did not federate: %+v", borrower)
	}
	for _, tr := range borrower.Transfers {
		if tr.From != 2 || tr.To != 1 || tr.Bidder != 2 {
			t.Fatalf("transfer = %+v, want pool bidder 2 from cloud 2 to 1", tr)
		}
		if tr.Premium <= 0 {
			t.Fatalf("transfer premium = %v, want positive", tr.Premium)
		}
	}
	if res.BorrowedSlots == 0 {
		t.Fatal("borrowed slots not accounted")
	}
}

// TestCloudResultInstanceMatchesOutcome: the published Instance must be
// the exact market the winner indices refer to, for both local and
// federated clears — auditors verify coverage and payments against it.
func TestCloudResultInstanceMatchesOutcome(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t), LatencyPremium: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.RunRound(1, []CloudMarket{
		market(1, []int{1}), // must borrow everything
		market(2, []int{1},
			core.Bid{Bidder: 2, Price: 8, TrueCost: 8, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 3, Price: 9, TrueCost: 9, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 4, Price: 20, TrueCost: 20, Covers: []int{0}, Units: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range res.Clouds {
		if cr.Err != nil {
			t.Fatalf("cloud %d: %v", cr.Cloud, cr.Err)
		}
		if cr.Instance == nil {
			t.Fatalf("cloud %d has no instance", cr.Cloud)
		}
		if err := core.VerifyFeasible(cr.Instance, cr.Outcome); err != nil {
			t.Fatalf("cloud %d outcome infeasible against its own instance: %v", cr.Cloud, err)
		}
		for _, w := range cr.Outcome.Winners {
			if cr.Outcome.Payments[w] < cr.Instance.Bids[w].Price {
				t.Fatalf("cloud %d winner %d paid %v below its (premium) price %v",
					cr.Cloud, w, cr.Outcome.Payments[w], cr.Instance.Bids[w].Price)
			}
		}
	}
	var borrower *CloudResult
	for _, cr := range res.Clouds {
		if cr.Cloud == 1 {
			borrower = cr
		}
	}
	if !borrower.Federated {
		t.Fatal("cloud 1 should have federated")
	}
	// The federated instance prices include the latency premium, so the
	// winning price must exceed the bidder's raw local price.
	w := borrower.Outcome.Winners[0]
	if borrower.Instance.Bids[w].Price <= 8 {
		t.Fatalf("federated instance price %v does not include a premium", borrower.Instance.Bids[w].Price)
	}
}
