// Package federation coordinates resource-sharing auctions across multiple
// edge clouds. The paper's system model (§II) has a set L of edge clouds
// connected by a backhaul network; resource sharing normally happens among
// microservices colocated in the same cloud, but when a cloud's local
// market cannot cover its residual demand the platform can borrow from
// peer clouds — at a premium that grows with backhaul latency, reflecting
// the degraded service of remotely-hosted resources.
//
// The federation keeps a single online auction state (one ψ/χ per bidder,
// one lifetime capacity), so a microservice's sharing budget is honoured
// globally no matter which cloud consumes it.
package federation

import (
	"errors"
	"fmt"
	"sort"

	"edgeauction/internal/core"
	"edgeauction/internal/topology"
)

// Config parameterizes the federation.
type Config struct {
	// Topology provides the backhaul latency matrix.
	Topology *topology.Topology
	// LatencyPremium is the extra price per coverage slot per millisecond
	// of backhaul latency charged on borrowed (remote) bids; zero means 1.
	LatencyPremium float64
	// Auction configures the shared online mechanism.
	Auction core.MSOAConfig
}

// Federation runs the multi-cloud online auction.
type Federation struct {
	cfg     Config
	topo    *topology.Topology
	msoa    *core.MSOA
	premium float64
}

// New builds a federation. The topology is required.
func New(cfg Config) (*Federation, error) {
	if cfg.Topology == nil {
		return nil, errors.New("federation: topology is required")
	}
	premium := cfg.LatencyPremium
	if premium == 0 {
		premium = 1
	}
	return &Federation{
		cfg:     cfg,
		topo:    cfg.Topology,
		msoa:    core.NewMSOA(cfg.Auction),
		premium: premium,
	}, nil
}

// CloudMarket is one cloud's demand and local bids for a round.
type CloudMarket struct {
	// Cloud is the edge cloud id hosting this market.
	Cloud int
	// Instance holds the cloud's residual demands and local bids.
	Instance *core.Instance
}

// Transfer records a cross-cloud borrow.
type Transfer struct {
	// From is the cloud whose bidder supplied the resources.
	From int
	// To is the cloud whose demand was covered.
	To int
	// Bidder is the supplying microservice.
	Bidder int
	// Premium is the latency surcharge included in the winning price.
	Premium float64
}

// CloudResult is the outcome of one cloud's market in a federated round.
type CloudResult struct {
	Cloud int
	// Outcome is the cleared market (nil when even federation failed).
	Outcome *core.Outcome
	// Instance is the market the Outcome's winner indices refer to: the
	// bidder-filtered local instance, or the premium-priced federated one
	// when Federated is set. Nil when the market never cleared. Auditors
	// use it to verify coverage and payments without rebuilding the
	// federation's internal bid rewrites.
	Instance *core.Instance
	// Federated reports whether remote bids were needed.
	Federated bool
	// Transfers lists cross-cloud borrows (non-empty only when Federated).
	Transfers []Transfer
	// Err is non-nil when the demand could not be covered even with the
	// federated market.
	Err error
}

// RoundResult aggregates a federated round.
type RoundResult struct {
	T      int
	Clouds []*CloudResult
	// SocialCost is the total raw-price cost across clouds, including
	// latency premiums on borrowed coverage.
	SocialCost float64
	// TotalPayment is the platform's total outlay.
	TotalPayment float64
	// BorrowedSlots counts coverage slots supplied across cloud borders.
	BorrowedSlots int
}

// RunRound clears one federated round. markets maps cloud id to its local
// market; clouds without demand may be omitted. Local markets are cleared
// first (cheapest option); clouds whose local market is infeasible retry
// with the federated market of all still-unused remote bids, premium
// priced by backhaul latency.
func (f *Federation) RunRound(t int, markets []CloudMarket) (*RoundResult, error) {
	res := &RoundResult{T: t}
	ordered := append([]CloudMarket(nil), markets...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Cloud < ordered[j].Cloud })

	// Bidders that already won somewhere this round cannot win twice (the
	// per-round one-bid constraint applied federation-wide).
	wonThisRound := map[int]bool{}

	for _, m := range ordered {
		if m.Instance == nil {
			return nil, fmt.Errorf("federation: cloud %d market has no instance", m.Cloud)
		}
		if _, err := f.topo.Cloud(m.Cloud); err != nil {
			return nil, fmt.Errorf("federation: %w", err)
		}
		cr := &CloudResult{Cloud: m.Cloud}
		res.Clouds = append(res.Clouds, cr)

		if m.Instance.TotalDemand() == 0 {
			// Pure bid pool: nothing to clear locally; its bids remain
			// available to clouds that need to borrow.
			cr.Outcome = &core.Outcome{Payments: map[int]float64{}}
			cr.Instance = &core.Instance{Demand: m.Instance.Demand}
			continue
		}

		local := filterBidders(m.Instance, wonThisRound)
		out := f.msoa.RunRound(core.Round{T: t, Instance: local})
		if out.Err == nil {
			cr.Outcome = out.Outcome
			cr.Instance = local
			f.account(res, cr, local, nil)
			markWinners(local, out.Outcome, wonThisRound)
			continue
		}

		// Local market failed: retry with remote bids at a latency premium.
		fed, origins, premiums, err := f.federatedInstance(m, ordered, wonThisRound)
		if err != nil {
			cr.Err = err
			continue
		}
		out = f.msoa.RunRound(core.Round{T: t, Instance: fed})
		if out.Err != nil {
			cr.Err = fmt.Errorf("federation: cloud %d uncoverable even federated: %w", m.Cloud, out.Err)
			continue
		}
		cr.Outcome = out.Outcome
		cr.Instance = fed
		cr.Federated = true
		for _, w := range out.Outcome.Winners {
			b := &fed.Bids[w]
			if origin := origins[w]; origin != m.Cloud {
				cr.Transfers = append(cr.Transfers, Transfer{
					From: origin, To: m.Cloud, Bidder: b.Bidder, Premium: premiums[w],
				})
				res.BorrowedSlots += len(b.Covers)
			}
		}
		f.account(res, cr, fed, out.Outcome)
		markWinners(fed, out.Outcome, wonThisRound)
	}
	return res, nil
}

// account folds a cleared market into the round totals.
func (f *Federation) account(res *RoundResult, cr *CloudResult, ins *core.Instance, out *core.Outcome) {
	o := cr.Outcome
	if out != nil {
		o = out
	}
	if o == nil {
		return
	}
	res.SocialCost += o.SocialCost
	res.TotalPayment += o.TotalPayment()
	_ = ins
}

// federatedInstance widens a cloud's market with every other cloud's bids,
// premium priced by latency. origins maps each bid index of the widened
// instance to the cloud the bidder lives in; premiums holds the surcharge.
func (f *Federation) federatedInstance(local CloudMarket, all []CloudMarket, wonThisRound map[int]bool) (*core.Instance, map[int]int, map[int]float64, error) {
	fed := &core.Instance{Demand: local.Instance.Demand}
	origins := map[int]int{}
	premiums := map[int]float64{}
	appendBids := func(src CloudMarket) error {
		lat, err := f.topo.Latency(src.Cloud, local.Cloud)
		if err != nil {
			return err
		}
		for _, b := range src.Instance.Bids {
			if wonThisRound[b.Bidder] {
				continue
			}
			nb := b.Clone()
			if src.Cloud != local.Cloud {
				// Remote covers index the REMOTE cloud's needy set; a
				// borrowed bid instead offers generic capacity to the
				// borrowing cloud, covering a cyclic window of the local
				// needy set as wide as its original cover. The window is
				// rotated per bid so the borrowed pool collectively spans
				// every local needy microservice instead of piling onto a
				// prefix.
				width := len(nb.Covers)
				if width > len(fed.Demand) {
					width = len(fed.Demand)
				}
				offset := len(fed.Bids) % len(fed.Demand)
				covers := make([]int, width)
				for i := range covers {
					covers[i] = (offset + i) % len(fed.Demand)
				}
				sort.Ints(covers)
				nb.Covers = covers
				premium := f.premium * lat * float64(len(covers))
				nb.Price += premium
				nb.TrueCost += premium
				premiums[len(fed.Bids)] = premium
			}
			origins[len(fed.Bids)] = src.Cloud
			fed.Bids = append(fed.Bids, nb)
		}
		return nil
	}
	if err := appendBids(local); err != nil {
		return nil, nil, nil, err
	}
	for _, m := range all {
		if m.Cloud == local.Cloud {
			continue
		}
		if err := appendBids(m); err != nil {
			return nil, nil, nil, err
		}
	}
	if len(fed.Bids) == 0 {
		return nil, nil, nil, fmt.Errorf("federation: no eligible bids for cloud %d", local.Cloud)
	}
	return fed, origins, premiums, nil
}

// filterBidders drops bids from bidders that already won this round.
func filterBidders(ins *core.Instance, won map[int]bool) *core.Instance {
	if len(won) == 0 {
		return ins
	}
	out := &core.Instance{Demand: ins.Demand}
	for _, b := range ins.Bids {
		if !won[b.Bidder] {
			out.Bids = append(out.Bids, b)
		}
	}
	return out
}

func markWinners(ins *core.Instance, out *core.Outcome, won map[int]bool) {
	for _, w := range out.Winners {
		won[ins.Bids[w].Bidder] = true
	}
}

// Summary exposes the underlying online mechanism's aggregate state.
func (f *Federation) Summary() *core.OnlineSummary { return f.msoa.Summary() }

// UsedCapacity returns a bidder's federation-wide consumed capacity.
func (f *Federation) UsedCapacity(bidder int) int { return f.msoa.UsedCapacity(bidder) }
