package federation

import (
	"strings"
	"testing"

	"edgeauction/internal/core"
	"edgeauction/internal/topology"
	"edgeauction/internal/workload"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	return topology.Generate(workload.NewRand(1), topology.Config{Clouds: 3, Users: 10})
}

func market(cloud int, demand []int, bids ...core.Bid) CloudMarket {
	return CloudMarket{Cloud: cloud, Instance: &core.Instance{Demand: demand, Bids: bids}}
}

func TestNewRequiresTopology(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error without topology")
	}
}

func TestLocalMarketsClearLocally(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.RunRound(1, []CloudMarket{
		market(1, []int{1},
			core.Bid{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 2, Price: 20, TrueCost: 20, Covers: []int{0}, Units: 1}),
		market(2, []int{1},
			core.Bid{Bidder: 3, Price: 15, TrueCost: 15, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 4, Price: 25, TrueCost: 25, Covers: []int{0}, Units: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clouds) != 2 {
		t.Fatalf("cloud results = %d", len(res.Clouds))
	}
	for _, cr := range res.Clouds {
		if cr.Err != nil {
			t.Fatalf("cloud %d failed: %v", cr.Cloud, cr.Err)
		}
		if cr.Federated {
			t.Fatalf("cloud %d should have cleared locally", cr.Cloud)
		}
		if len(cr.Transfers) != 0 {
			t.Fatalf("unexpected transfers: %+v", cr.Transfers)
		}
	}
	if res.SocialCost != 25 { // 10 + 15: cheapest local bid each
		t.Fatalf("social cost = %v, want 25", res.SocialCost)
	}
	if res.BorrowedSlots != 0 {
		t.Fatalf("borrowed slots = %d, want 0", res.BorrowedSlots)
	}
}

func TestBorrowingWhenLocalMarketFails(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t), LatencyPremium: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fed.RunRound(1, []CloudMarket{
		// Cloud 1 needs 2 units but has only one local 1-unit bidder.
		market(1, []int{2},
			core.Bid{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1}),
		// Cloud 2 has surplus bidders and no demand.
		market(2, nil,
			core.Bid{Bidder: 3, Price: 12, TrueCost: 12, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 4, Price: 14, TrueCost: 14, Covers: []int{0}, Units: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var borrow *CloudResult
	for _, cr := range res.Clouds {
		if cr.Cloud == 1 {
			borrow = cr
		}
	}
	if borrow == nil || borrow.Err != nil {
		t.Fatalf("cloud 1 should clear via federation: %+v", borrow)
	}
	if !borrow.Federated || len(borrow.Transfers) == 0 {
		t.Fatalf("cloud 1 must record a federated borrow: %+v", borrow)
	}
	tr := borrow.Transfers[0]
	if tr.From != 2 || tr.To != 1 {
		t.Fatalf("transfer direction %d->%d, want 2->1", tr.From, tr.To)
	}
	if tr.Premium <= 0 {
		t.Fatalf("borrow premium %v must be positive", tr.Premium)
	}
	if res.BorrowedSlots == 0 {
		t.Fatal("borrowed slots not counted")
	}
	// The winning remote price includes the premium; social cost reflects
	// it (remote supply is dearer than local).
	if res.SocialCost <= 22 { // 10 + 12 without premium
		t.Fatalf("social cost %v should include the latency premium", res.SocialCost)
	}
}

func TestBidderCannotWinTwiceInOneRound(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Bidder 1 is the only bidder anywhere; it wins cloud 1's market, so
	// cloud 2 (also depending on it) must fail even federated.
	res, err := fed.RunRound(1, []CloudMarket{
		market(1, []int{1}, core.Bid{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1}),
		market(2, []int{1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var second *CloudResult
	for _, cr := range res.Clouds {
		if cr.Cloud == 2 {
			second = cr
		}
	}
	if second.Err == nil {
		t.Fatal("cloud 2 should fail: its only potential supplier already won in cloud 1")
	}
}

func TestFederationHonoursGlobalCapacity(t *testing.T) {
	fed, err := New(Config{
		Topology: testTopo(t),
		Auction:  core.MSOAConfig{Capacity: map[int]int{1: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: bidder 1 wins in cloud 1 (capacity now exhausted).
	res, err := fed.RunRound(1, []CloudMarket{
		market(1, []int{1},
			core.Bid{Bidder: 1, Price: 5, TrueCost: 5, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 2, Price: 50, TrueCost: 50, Covers: []int{0}, Units: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clouds[0].Err != nil {
		t.Fatal(res.Clouds[0].Err)
	}
	if got := fed.UsedCapacity(1); got != 1 {
		t.Fatalf("bidder 1 used capacity = %d, want 1", got)
	}
	// Round 2 in ANOTHER cloud: bidder 1's capacity is spent globally, so
	// bidder 2 must win.
	res, err = fed.RunRound(2, []CloudMarket{
		market(2, []int{1},
			core.Bid{Bidder: 1, Price: 5, TrueCost: 5, Covers: []int{0}, Units: 1},
			core.Bid{Bidder: 2, Price: 50, TrueCost: 50, Covers: []int{0}, Units: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Clouds[0].Outcome
	if out == nil || len(out.Winners) != 1 {
		t.Fatalf("round 2 malformed: %+v", res.Clouds[0])
	}
	if res.Clouds[0].Err != nil {
		t.Fatal(res.Clouds[0].Err)
	}
	if got := fed.Summary(); got.Rounds != 2 {
		t.Fatalf("summary rounds = %d, want 2", got.Rounds)
	}
}

func TestFederationRejectsUnknownCloud(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fed.RunRound(1, []CloudMarket{market(99, []int{1})})
	if err == nil || !strings.Contains(err.Error(), "unknown cloud") {
		t.Fatalf("want unknown-cloud error, got %v", err)
	}
}

func TestFederationRejectsNilInstance(t *testing.T) {
	fed, err := New(Config{Topology: testTopo(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.RunRound(1, []CloudMarket{{Cloud: 1}}); err == nil {
		t.Fatal("want error for nil instance")
	}
}

func TestFederationPremiumScalesWithLatency(t *testing.T) {
	topo := testTopo(t)
	cheap, err := New(Config{Topology: topo, LatencyPremium: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	dear, err := New(Config{Topology: topo, LatencyPremium: 10})
	if err != nil {
		t.Fatal(err)
	}
	mkts := func() []CloudMarket {
		return []CloudMarket{
			market(1, []int{1}), // no local bids at all
			market(2, nil, core.Bid{Bidder: 3, Price: 12, TrueCost: 12, Covers: []int{0}, Units: 1}),
		}
	}
	resCheap, err := cheap.RunRound(1, mkts())
	if err != nil {
		t.Fatal(err)
	}
	resDear, err := dear.RunRound(1, mkts())
	if err != nil {
		t.Fatal(err)
	}
	if resCheap.Clouds[0].Err != nil || resDear.Clouds[0].Err != nil {
		t.Fatalf("borrows failed: %v / %v", resCheap.Clouds[0].Err, resDear.Clouds[0].Err)
	}
	if resDear.SocialCost <= resCheap.SocialCost {
		t.Fatalf("higher premium must cost more: %v vs %v", resDear.SocialCost, resCheap.SocialCost)
	}
}
