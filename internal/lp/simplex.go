// Package lp implements a small dense linear-programming solver: two-phase
// primal simplex with Bland's anti-cycling rule. It is the substrate behind
// the offline-optimal ILP solver used to compute the paper's performance
// ratios — the LP relaxation of the winner selection problem gives the
// lower bounds driving branch-and-bound.
//
// The solver targets the modest, dense instances of this reproduction
// (hundreds of variables/constraints), favouring clarity and numerical
// robustness over sparse-matrix performance.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

const (
	// LE is a_i · x ≤ b_i.
	LE Relation = iota + 1
	// GE is a_i · x ≥ b_i.
	GE
	// EQ is a_i · x = b_i.
	EQ
)

// Constraint is one linear constraint over the problem variables.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a minimization LP: min c·x subject to the constraints and
// x ≥ 0 (bounds beyond non-negativity are expressed as constraints).
type Problem struct {
	// Objective holds c, one coefficient per variable.
	Objective   []float64
	Constraints []Constraint
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return len(p.Objective) }

// AddConstraint appends a constraint; coeffs must have NumVars entries.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) error {
	if len(coeffs) != p.NumVars() {
		return fmt.Errorf("lp: constraint has %d coefficients for %d variables", len(coeffs), p.NumVars())
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs})
	return nil
}

// Solution is an optimal LP solution.
type Solution struct {
	// X is the optimal point over the structural variables.
	X []float64
	// Objective is c·X.
	Objective float64
}

// Solver errors.
var (
	// ErrInfeasibleLP reports an empty feasible region.
	ErrInfeasibleLP = errors.New("lp: infeasible")
	// ErrUnbounded reports an objective unbounded below.
	ErrUnbounded = errors.New("lp: unbounded")
)

const eps = 1e-9

// Solve minimizes the problem with two-phase simplex. It returns
// ErrInfeasibleLP or ErrUnbounded as appropriate.
func Solve(p *Problem) (*Solution, error) {
	t, err := newTableau(p)
	if err != nil {
		return nil, err
	}
	if t.needPhase1 {
		if err := t.phase1(); err != nil {
			return nil, err
		}
	}
	if err := t.phase2(); err != nil {
		return nil, err
	}
	return t.solution(), nil
}

// tableau is a dense simplex tableau in canonical form. Column layout:
// [structural | slack/surplus | artificial], one row per constraint plus an
// objective row maintained in reduced-cost form.
type tableau struct {
	m, n       int // constraints, structural vars
	cols       int // total columns (without RHS)
	a          [][]float64
	rhs        []float64
	basis      []int // basis[i] = column basic in row i
	cost       []float64
	artStart   int // first artificial column
	needPhase1 bool
	p          *Problem
}

func newTableau(p *Problem) (*tableau, error) {
	m := len(p.Constraints)
	n := p.NumVars()
	// Count slack/surplus and artificial columns.
	slacks := 0
	arts := 0
	for _, c := range p.Constraints {
		switch c.Rel {
		case LE, GE:
			slacks++
		case EQ:
		default:
			return nil, fmt.Errorf("lp: unknown relation %d", c.Rel)
		}
	}
	// Artificial variables are decided after RHS normalization below.
	t := &tableau{m: m, n: n, p: p}
	t.a = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)

	// First pass: normalize rows to RHS >= 0, note which need artificials.
	type rowinfo struct {
		rel     Relation
		flipped bool
	}
	infos := make([]rowinfo, m)
	for i, c := range p.Constraints {
		rel := c.Rel
		flip := c.RHS < 0
		if flip {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		infos[i] = rowinfo{rel: rel, flipped: flip}
		switch rel {
		case GE, EQ:
			arts++
		}
	}
	t.cols = n + slacks + arts
	t.artStart = n + slacks
	t.needPhase1 = arts > 0

	slackCol := n
	artCol := t.artStart
	for i, c := range p.Constraints {
		row := make([]float64, t.cols)
		sign := 1.0
		rhs := c.RHS
		if infos[i].flipped {
			sign = -1
			rhs = -rhs
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		switch infos[i].rel {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1 // surplus
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
		t.rhs[i] = rhs
	}

	t.cost = make([]float64, t.cols)
	copy(t.cost, p.Objective)
	return t, nil
}

// reducedCosts computes z_j - c_j style reduced costs for objective vector
// obj (length cols) given the current basis, returning (reduced, objValue).
func (t *tableau) reducedCosts(obj []float64) ([]float64, float64) {
	// y = c_B applied through the basis rows: since the tableau is kept in
	// canonical form (basic columns are unit vectors), the reduced cost of
	// column j is c_j - Σ_i c_{basis[i]} · a[i][j], and the objective value
	// is Σ_i c_{basis[i]} · rhs[i].
	red := make([]float64, t.cols)
	copy(red, obj)
	var val float64
	for i := 0; i < t.m; i++ {
		cb := obj[t.basis[i]]
		if cb == 0 {
			continue
		}
		val += cb * t.rhs[i]
		for j := 0; j < t.cols; j++ {
			red[j] -= cb * t.a[i][j]
		}
	}
	return red, val
}

// pivot performs a standard pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pv := t.a[row][col]
	inv := 1 / pv
	for j := 0; j < t.cols; j++ {
		t.a[row][j] *= inv
	}
	t.rhs[row] *= inv
	t.a[row][col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.a[i][col] = 0 // exact
		t.rhs[i] -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// iterate runs simplex iterations minimizing obj over columns [0, limit)
// until optimality. The reduced-cost row is maintained incrementally across
// pivots. Pricing uses Dantzig's most-negative rule for speed, switching to
// Bland's smallest-index rule (which provably terminates) once the
// iteration count suggests cycling. It returns ErrUnbounded if a negative
// reduced-cost column has no positive entries.
func (t *tableau) iterate(obj []float64, limit int) error {
	red, _ := t.reducedCosts(obj)
	maxIters := 200 * (t.m + t.cols + 10) // hard stop for pathological cases
	blandAfter := 20 * (t.m + t.cols + 10)
	for iter := 0; iter < maxIters; iter++ {
		col := -1
		if iter < blandAfter {
			most := -eps
			for j := 0; j < limit; j++ {
				if red[j] < most {
					most, col = red[j], j
				}
			}
		} else {
			for j := 0; j < limit; j++ {
				if red[j] < -eps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return nil // optimal
		}
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][col] > eps {
				ratio := t.rhs[i] / t.a[i][col]
				if ratio < bestRatio-eps ||
					(math.Abs(ratio-bestRatio) <= eps && (row < 0 || t.basis[i] < t.basis[row])) {
					bestRatio = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return ErrUnbounded
		}
		t.pivot(row, col)
		// Update the reduced-cost row against the (now normalized) pivot row.
		f := red[col]
		prow := t.a[row]
		for j := 0; j < t.cols; j++ {
			red[j] -= f * prow[j]
		}
		red[col] = 0
	}
	return errors.New("lp: simplex iteration limit exceeded (possible cycling)")
}

// phase1 drives artificial variables to zero; infeasible if it cannot.
func (t *tableau) phase1() error {
	obj := make([]float64, t.cols)
	for j := t.artStart; j < t.cols; j++ {
		obj[j] = 1
	}
	if err := t.iterate(obj, t.cols); err != nil {
		return err
	}
	_, val := t.reducedCosts(obj)
	if val > 1e-7 {
		return ErrInfeasibleLP
	}
	// Pivot any artificial still basic (at zero level) out of the basis
	// when possible, so phase 2 never re-enters them.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant; leave the zero-level artificial basic. Its
			// column is excluded from phase-2 pricing, so it stays at zero.
			continue
		}
	}
	return nil
}

// phase2 minimizes the true objective over non-artificial columns.
func (t *tableau) phase2() error {
	return t.iterate(t.cost, t.artStart)
}

func (t *tableau) solution() *Solution {
	x := make([]float64, t.n)
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n {
			x[t.basis[i]] = t.rhs[i]
		}
	}
	var obj float64
	for j, c := range t.p.Objective {
		obj += c * x[j]
	}
	return &Solution{X: x, Objective: obj}
}
