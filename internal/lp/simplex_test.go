package lp

import (
	"errors"
	"math"
	"testing"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve failed: %v", err)
	}
	return sol
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveSimpleLE(t *testing.T) {
	// min -x - y  s.t. x + y <= 4, x <= 2  => x=2, y=2, obj=-4.
	p := &Problem{Objective: []float64{-1, -1}}
	if err := p.AddConstraint([]float64{1, 1}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, LE, 2); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if !approx(sol.Objective, -4) {
		t.Fatalf("objective = %v, want -4", sol.Objective)
	}
}

func TestSolveGERequiresPhase1(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 4, x >= 1 => x=1, y=3, obj=9.
	p := &Problem{Objective: []float64{3, 2}}
	if err := p.AddConstraint([]float64{1, 1}, GE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 9) {
		t.Fatalf("objective = %v, want 9", sol.Objective)
	}
	if !approx(sol.X[0], 1) || !approx(sol.X[1], 3) {
		t.Fatalf("x = %v, want [1 3]", sol.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 3, y >= 1 => x=2, y=1, obj=4.
	p := &Problem{Objective: []float64{1, 2}}
	if err := p.AddConstraint([]float64{1, 1}, EQ, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{0, 1}, GE, 1); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 4) {
		t.Fatalf("objective = %v, want 4", sol.Objective)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3) => obj=3.
	p := &Problem{Objective: []float64{1}}
	if err := p.AddConstraint([]float64{-1}, LE, -3); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 3) {
		t.Fatalf("objective = %v, want 3", sol.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	p := &Problem{Objective: []float64{1}}
	if err := p.AddConstraint([]float64{1}, LE, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1}, GE, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasibleLP) {
		t.Fatalf("want ErrInfeasibleLP, got %v", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x s.t. x >= 0 (no upper bound).
	p := &Problem{Objective: []float64{-1}}
	if err := p.AddConstraint([]float64{1}, GE, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Classic degenerate vertex: redundant constraints at the optimum.
	// min -x - y s.t. x <= 1, y <= 1, x + y <= 2 => obj=-2.
	p := &Problem{Objective: []float64{-1, -1}}
	for _, c := range []struct {
		row []float64
		rhs float64
	}{
		{[]float64{1, 0}, 1},
		{[]float64{0, 1}, 1},
		{[]float64{1, 1}, 2},
	} {
		if err := p.AddConstraint(c.row, LE, c.rhs); err != nil {
			t.Fatal(err)
		}
	}
	sol := mustSolve(t, p)
	if !approx(sol.Objective, -2) {
		t.Fatalf("objective = %v, want -2", sol.Objective)
	}
}

func TestSolveRedundantEquality(t *testing.T) {
	// Duplicated equality rows leave an artificial basic at zero; the
	// solver must still reach the optimum.
	p := &Problem{Objective: []float64{1, 1}}
	if err := p.AddConstraint([]float64{1, 1}, EQ, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{2, 2}, EQ, 4); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 2) {
		t.Fatalf("objective = %v, want 2", sol.Objective)
	}
}

func TestAddConstraintLengthMismatch(t *testing.T) {
	p := &Problem{Objective: []float64{1, 2}}
	if err := p.AddConstraint([]float64{1}, LE, 1); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestSolveCoveringLP(t *testing.T) {
	// Fractional set-cover relaxation: three elements each needing
	// coverage 1; sets {0,1}, {1,2}, {0,2} at cost 1 each. LP optimum is
	// x=(0.5,0.5,0.5), obj=1.5 (ILP would need 2).
	p := &Problem{Objective: []float64{1, 1, 1}}
	rows := [][]float64{
		{1, 0, 1},
		{1, 1, 0},
		{0, 1, 1},
	}
	for _, row := range rows {
		if err := p.AddConstraint(row, GE, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		row := make([]float64, 3)
		row[i] = 1
		if err := p.AddConstraint(row, LE, 1); err != nil {
			t.Fatal(err)
		}
	}
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 1.5) {
		t.Fatalf("objective = %v, want 1.5", sol.Objective)
	}
}
