package lp

import (
	"math/rand"
	"testing"
)

// randomCoveringLP builds a random feasible covering LP:
// min c·x s.t. A x ≥ b, x ≤ 1 (as rows), x ≥ 0 with A ≥ 0 and b chosen so
// that x = 1 is feasible — guaranteeing a bounded optimum exists.
func randomCoveringLP(rng *rand.Rand, vars, rows int) *Problem {
	p := &Problem{Objective: make([]float64, vars)}
	for j := range p.Objective {
		p.Objective[j] = 1 + 9*rng.Float64()
	}
	for i := 0; i < rows; i++ {
		row := make([]float64, vars)
		var rowSum float64
		for j := range row {
			if rng.Float64() < 0.6 {
				row[j] = 1 + 2*rng.Float64()
				rowSum += row[j]
			}
		}
		// b within what x=1 can supply keeps the LP feasible.
		b := rowSum * rng.Float64()
		if err := p.AddConstraint(row, GE, b); err != nil {
			panic(err)
		}
	}
	for j := 0; j < vars; j++ {
		row := make([]float64, vars)
		row[j] = 1
		if err := p.AddConstraint(row, LE, 1); err != nil {
			panic(err)
		}
	}
	return p
}

func TestPropertyOptimumDominatesRandomFeasiblePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		vars := 2 + rng.Intn(6)
		rows := 1 + rng.Intn(4)
		p := randomCoveringLP(rng, vars, rows)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The optimal point itself must be feasible.
		assertFeasible(t, trial, p, sol.X)
		// Sample random feasible points (rounding up toward x=1 preserves
		// covering feasibility); none may beat the optimum.
		for probe := 0; probe < 30; probe++ {
			x := make([]float64, vars)
			var obj float64
			for j := range x {
				x[j] = sol.X[j] + (1-sol.X[j])*rng.Float64() // between opt and 1
				obj += p.Objective[j] * x[j]
			}
			if !isFeasible(p, x) {
				continue
			}
			if obj < sol.Objective-1e-7 {
				t.Fatalf("trial %d: feasible point %v beats optimum %v", trial, obj, sol.Objective)
			}
		}
	}
}

func assertFeasible(t *testing.T, trial int, p *Problem, x []float64) {
	t.Helper()
	if !isFeasible(p, x) {
		t.Fatalf("trial %d: reported optimum is infeasible: %v", trial, x)
	}
}

func isFeasible(p *Problem, x []float64) bool {
	const tol = 1e-7
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for _, c := range p.Constraints {
		var lhs float64
		for j, a := range c.Coeffs {
			lhs += a * x[j]
		}
		switch c.Rel {
		case LE:
			if lhs > c.RHS+tol {
				return false
			}
		case GE:
			if lhs < c.RHS-tol {
				return false
			}
		case EQ:
			if lhs > c.RHS+tol || lhs < c.RHS-tol {
				return false
			}
		}
	}
	return true
}

func TestPropertyScalingInvariance(t *testing.T) {
	// Scaling the objective by k > 0 scales the optimum by k and keeps the
	// argmin (for a unique optimum; we check the value only).
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 40; trial++ {
		p := randomCoveringLP(rng, 2+rng.Intn(5), 1+rng.Intn(3))
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		k := 0.5 + 4*rng.Float64()
		scaled := &Problem{Objective: make([]float64, len(p.Objective)), Constraints: p.Constraints}
		for j := range p.Objective {
			scaled.Objective[j] = k * p.Objective[j]
		}
		sol2, err := Solve(scaled)
		if err != nil {
			t.Fatalf("trial %d scaled: %v", trial, err)
		}
		want := k * sol.Objective
		if diff := sol2.Objective - want; diff > 1e-6*(1+want) || diff < -1e-6*(1+want) {
			t.Fatalf("trial %d: scaled optimum %v, want %v", trial, sol2.Objective, want)
		}
	}
}

func TestPropertyAddingRedundantConstraintKeepsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		p := randomCoveringLP(rng, 2+rng.Intn(5), 1+rng.Intn(3))
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Σ x_j ≤ vars is implied by the per-variable bounds.
		row := make([]float64, len(p.Objective))
		for j := range row {
			row[j] = 1
		}
		if err := p.AddConstraint(row, LE, float64(len(row))); err != nil {
			t.Fatal(err)
		}
		sol2, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if diff := sol2.Objective - sol.Objective; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: redundant constraint moved optimum %v -> %v", trial, sol.Objective, sol2.Objective)
		}
	}
}
