package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace hardens the trace parser: arbitrary input must either
// parse into a structurally valid scenario or fail cleanly — never panic,
// and never yield instances that the mechanisms would choke on.
func FuzzReadTrace(f *testing.F) {
	// Seed with a real trace and a few mutations.
	scn := Online(NewRand(1), OnlineConfig{Rounds: 2, Stage: InstanceConfig{Bidders: 3}})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, scn); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"kind":"edgeauction-trace","version":1,"rounds":0}` + "\n")
	f.Add(`{"kind":"edgeauction-trace","version":1,"rounds":1}` + "\n" +
		`{"t":1,"demand":[2],"bids":[{"bidder":1,"alt":0,"price":5,"covers":[0],"units":1}]}` + "\n")

	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return // clean rejection
		}
		for _, r := range got.TrueRounds {
			if err := r.Instance.Validate(); err != nil {
				t.Fatalf("parser accepted invalid instance: %v", err)
			}
		}
		if len(got.EstimatedRounds) != len(got.TrueRounds) {
			t.Fatal("estimated/true round count mismatch from parser")
		}
	})
}

// FuzzReadInstance hardens the single-instance parser the same way.
func FuzzReadInstance(f *testing.F) {
	ins := Instance(NewRand(2), InstanceConfig{Bidders: 4})
	var buf bytes.Buffer
	if err := WriteInstance(&buf, ins); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add(`{"kind":"edgeauction-instance","version":1,"demand":[1],"bids":[]}`)
	f.Add(`{"kind":"edgeauction-instance","version":1,"demand":[-1]}`)

	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadInstance(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("parser accepted invalid instance: %v", err)
		}
	})
}
