package workload

import (
	"fmt"
	"math"
)

// Arrival-process names accepted by ArrivalSpec.Process.
const (
	// ArrivalPoisson is a constant-intensity Poisson process.
	ArrivalPoisson = "poisson"
	// ArrivalOnOff is a mean-preserving bursty on/off process: the
	// nominal rate is concentrated into the "on" fraction of each period.
	ArrivalOnOff = "onoff"
	// ArrivalDiurnal modulates the rate sinusoidally over a period.
	ArrivalDiurnal = "diurnal"
	// ArrivalFlash adds a flash-crowd pulse on top of a base rate.
	ArrivalFlash = "flash"
)

// ArrivalSpec describes an arrival process as a pure intensity function
// of the 0-based round index: Intensity(t) is the expected number of
// entry requests in round t, and the simulator draws the realized count
// as Poisson(Intensity(t)) from its own stream. Keeping the spec
// stateless is what makes workload runs deterministic under trial
// parallelism and crash recovery — any (seed, round) pair yields the
// same schedule with no generator state to carry across rounds.
type ArrivalSpec struct {
	// Process is one of the Arrival* names; empty means poisson.
	Process string `json:"process,omitempty"`
	// Rate is the nominal mean arrivals per round (required, > 0).
	Rate float64 `json:"rate"`

	// Duty is the on fraction of an on/off period (default 0.5).
	Duty float64 `json:"duty,omitempty"`
	// Period is the cycle length in rounds for onoff (default 8) and
	// diurnal (default 24).
	Period int `json:"period,omitempty"`
	// Phase shifts the cycle start by a number of rounds.
	Phase int `json:"phase,omitempty"`
	// Amplitude is the diurnal modulation depth in [0, 1] (default 0.8).
	Amplitude float64 `json:"amplitude,omitempty"`

	// At is the center round of a flash-crowd pulse.
	At int `json:"at,omitempty"`
	// Width is the pulse half-width in rounds (default 1).
	Width int `json:"width,omitempty"`
	// Height is the pulse magnification: inside the pulse the intensity
	// is Rate·(1+Height) (default 4).
	Height float64 `json:"height,omitempty"`
}

// onLength returns the period and on-round count of an on/off cycle.
func (a ArrivalSpec) onLength() (period, on int) {
	period = a.Period
	if period <= 0 {
		period = 8
	}
	duty := a.Duty
	if duty <= 0 {
		duty = 0.5
	}
	on = int(math.Round(duty * float64(period)))
	if on < 1 {
		on = 1
	}
	if on > period {
		on = period
	}
	return period, on
}

// Intensity returns the expected arrivals in 0-based round t. It is a
// pure function of the spec and t.
func (a ArrivalSpec) Intensity(t int) float64 {
	switch a.Process {
	case ArrivalOnOff:
		period, on := a.onLength()
		pos := (t + a.Phase) % period
		if pos < 0 {
			pos += period
		}
		if pos < on {
			// All of the period's mass arrives during the on rounds, so
			// the long-run mean over any whole period is exactly Rate.
			return a.Rate * float64(period) / float64(on)
		}
		return 0
	case ArrivalDiurnal:
		period := a.Period
		if period <= 0 {
			period = 24
		}
		amp := a.Amplitude
		if amp == 0 {
			amp = 0.8
		}
		v := a.Rate * (1 + amp*math.Sin(2*math.Pi*float64(t+a.Phase)/float64(period)))
		if v < 0 {
			return 0
		}
		return v
	case ArrivalFlash:
		width := a.Width
		if width <= 0 {
			width = 1
		}
		height := a.Height
		if height == 0 {
			height = 4
		}
		if t >= a.At-width && t <= a.At+width {
			return a.Rate * (1 + height)
		}
		return a.Rate
	default: // poisson
		return a.Rate
	}
}

// MeanIntensity returns the exact average of Intensity over rounds
// [0, rounds) — the analytic nominal the property tests compare the
// empirical rate against.
func (a ArrivalSpec) MeanIntensity(rounds int) float64 {
	if rounds <= 0 {
		return 0
	}
	sum := 0.0
	for t := 0; t < rounds; t++ {
		sum += a.Intensity(t)
	}
	return sum / float64(rounds)
}

// validate checks the spec; path names the owning entry for errors.
func (a ArrivalSpec) validate(path string) error {
	switch a.Process {
	case "", ArrivalPoisson, ArrivalOnOff, ArrivalDiurnal, ArrivalFlash:
	default:
		return fmt.Errorf("%w: %s: unknown arrival process %q", ErrBadTopology, path, a.Process)
	}
	if a.Rate <= 0 || math.IsNaN(a.Rate) || math.IsInf(a.Rate, 0) {
		return fmt.Errorf("%w: %s: arrival rate must be positive, got %v", ErrBadTopology, path, a.Rate)
	}
	if a.Duty < 0 || a.Duty > 1 {
		return fmt.Errorf("%w: %s: duty must be in [0, 1], got %v", ErrBadTopology, path, a.Duty)
	}
	if a.Amplitude < 0 || a.Amplitude > 1 {
		return fmt.Errorf("%w: %s: amplitude must be in [0, 1], got %v", ErrBadTopology, path, a.Amplitude)
	}
	if a.Period < 0 {
		return fmt.Errorf("%w: %s: period must be non-negative, got %d", ErrBadTopology, path, a.Period)
	}
	if a.Height < 0 {
		return fmt.Errorf("%w: %s: height must be non-negative, got %v", ErrBadTopology, path, a.Height)
	}
	if a.Width < 0 {
		return fmt.Errorf("%w: %s: width must be non-negative, got %d", ErrBadTopology, path, a.Width)
	}
	return nil
}

// parseArrivalSpec reads an arrival mapping from parsed YAML.
func parseArrivalSpec(v any, path string) (ArrivalSpec, error) {
	var spec ArrivalSpec
	m, err := yamlMap(v, path)
	if err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadTopology, err)
	}
	for key, val := range m {
		p := path + "." + key
		var err error
		switch key {
		case "process":
			spec.Process, err = yamlStr(val, p)
		case "rate":
			spec.Rate, err = yamlFloat(val, p)
		case "duty":
			spec.Duty, err = yamlFloat(val, p)
		case "period":
			spec.Period, err = yamlInt(val, p)
		case "phase":
			spec.Phase, err = yamlInt(val, p)
		case "amplitude":
			spec.Amplitude, err = yamlFloat(val, p)
		case "at":
			spec.At, err = yamlInt(val, p)
		case "width":
			spec.Width, err = yamlInt(val, p)
		case "height":
			spec.Height, err = yamlFloat(val, p)
		default:
			err = fmt.Errorf("%s: unknown arrival field %q", path, key)
		}
		if err != nil {
			return spec, fmt.Errorf("%w: %v", ErrBadTopology, err)
		}
	}
	return spec, nil
}
