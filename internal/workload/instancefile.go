package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"edgeauction/internal/core"
)

// Single-instance files carry one winner selection problem as a JSON
// document — the interchange format of cmd/wspsolve and a convenient way
// to snapshot a disputed round for offline analysis.

// instanceDoc is the on-disk schema.
type instanceDoc struct {
	Kind    string      `json:"kind"` // always "edgeauction-instance"
	Version int         `json:"version"`
	Demand  []int       `json:"demand"`
	Bids    []bidRecord `json:"bids"`
}

// ErrBadInstance reports a malformed instance document.
var ErrBadInstance = errors.New("workload: malformed instance file")

// WriteInstance serializes one instance as indented JSON.
func WriteInstance(w io.Writer, ins *core.Instance) error {
	doc := instanceDoc{
		Kind:    "edgeauction-instance",
		Version: traceVersion,
		Demand:  ins.Demand,
	}
	for _, b := range ins.Bids {
		doc.Bids = append(doc.Bids, bidRecord{
			Bidder: b.Bidder, Alt: b.Alt, Price: b.Price,
			TrueCost: b.TrueCost, Covers: b.Covers, Units: b.Units,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("workload: encode instance: %w", err)
	}
	return nil
}

// ReadInstance parses an instance document and validates it.
func ReadInstance(r io.Reader) (*core.Instance, error) {
	var doc instanceDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	if doc.Kind != "edgeauction-instance" {
		return nil, fmt.Errorf("%w: unexpected kind %q", ErrBadInstance, doc.Kind)
	}
	if doc.Version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadInstance, doc.Version)
	}
	ins := &core.Instance{Demand: doc.Demand}
	for _, b := range doc.Bids {
		ins.Bids = append(ins.Bids, core.Bid{
			Bidder: b.Bidder, Alt: b.Alt, Price: b.Price,
			TrueCost: b.TrueCost, Covers: b.Covers, Units: b.Units,
		})
	}
	if err := ins.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	return ins, nil
}
