// Package workload generates the synthetic workloads used throughout the
// reproduction: request arrival processes, bid prices, resource demands, and
// full auction traces matching the parameter settings of §V-A of the paper
// (uniform bid prices in [10,35], demands in [10,40], Poisson request
// arrivals with mean 5 for delay-sensitive and 10 for delay-tolerant
// microservices).
//
// Everything is driven by an explicit seeded source so experiments are
// reproducible bit-for-bit; there are no global generators.
package workload

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the distribution samplers the simulator and
// workload generators need. It is deterministic for a fixed seed and NOT
// safe for concurrent use; give each goroutine its own via Fork.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a generator seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// DeriveSeed maps a root seed and a (tag, point, trial) coordinate to an
// independent sub-stream seed via splitmix64 finalization. Experiment
// drivers use it to give every (sweep point, trial) cell its own stream:
// unlike drawing sequentially from one shared generator, the derived seed
// is a pure function of the coordinate, so cells can run in any order —
// or concurrently — and still sample identical instances. The tag keeps
// distinct drivers (and distinct sweeps inside one driver) decorrelated
// even when they share point/trial indices.
func DeriveSeed(seed int64, tag string, point, trial int) int64 {
	h := splitmix64(uint64(seed))
	for _, b := range []byte(tag) {
		h = splitmix64(h ^ uint64(b))
	}
	h = splitmix64(h ^ uint64(uint32(point)))
	h = splitmix64(h ^ uint64(uint32(trial)))
	return int64(h)
}

// NewDerived is shorthand for NewRand(DeriveSeed(...)).
func NewDerived(seed int64, tag string, point, trial int) *Rand {
	return NewRand(DeriveSeed(seed, tag, point, trial))
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014): a
// bijective avalanche mix whose outputs pass BigCrush even on sequential
// inputs, which is exactly the property seed derivation needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent's current state. Use it to give subcomponents their
// own streams without correlating draws.
func (r *Rand) Fork() *Rand {
	return NewRand(r.src.Int63())
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Rand) Int63() int64 { return r.src.Int63() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform float in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// UniformInt returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *Rand) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("workload: UniformInt requires hi >= lo")
	}
	return lo + r.src.Intn(hi-lo+1)
}

// Exponential samples an exponential with the given rate (mean 1/rate).
func (r *Rand) Exponential(rate float64) float64 {
	return r.src.ExpFloat64() / rate
}

// Poisson samples a Poisson random variate with the given mean, using
// Knuth's multiplication method for small means and a normal approximation
// with continuity correction for large means (mean > 30), which keeps the
// sampler O(1) for heavy workloads.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		x := r.src.NormFloat64()*math.Sqrt(mean) + mean + 0.5
		if x < 0 {
			return 0
		}
		return int(x)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Normal samples a normal with the given mean and standard deviation.
func (r *Rand) Normal(mean, sd float64) float64 {
	return r.src.NormFloat64()*sd + mean
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements via swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Subset returns a uniformly random k-subset of [0, n) in sorted order.
// It panics if k > n or k < 0.
func (r *Rand) Subset(n, k int) []int {
	if k < 0 || k > n {
		panic("workload: Subset requires 0 <= k <= n")
	}
	perm := r.src.Perm(n)[:k]
	// Insertion sort: k is small in all our uses.
	for i := 1; i < len(perm); i++ {
		for j := i; j > 0 && perm[j] < perm[j-1]; j-- {
			perm[j], perm[j-1] = perm[j-1], perm[j]
		}
	}
	return perm
}
