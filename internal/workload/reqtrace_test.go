package workload

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"edgeauction/internal/obs"
)

func sampleTrace() *RequestTrace {
	return &RequestTrace{
		Name:     "sample",
		Services: []string{"frontend", "logic", "storage"},
		Rounds: []RoundArrivals{
			{T: 1, Counts: []int{4, 0, 1}},
			{T: 2, Counts: []int{7, 2, 0}},
			{T: 3, Counts: []int{0, 0, 0}},
		},
	}
}

func TestRequestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteRequestTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequestTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

// TestRequestTraceTornTail checks the WAL convention: a torn final
// record returns the complete prefix plus obs.ErrTruncated.
func TestRequestTraceTornTail(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequestTrace(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	lines := bytes.Split(bytes.TrimSuffix(full, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]

	for cut := 1; cut < len(last); cut += 7 {
		torn := bytes.Join(lines[:len(lines)-1], []byte("\n"))
		torn = append(torn, '\n')
		torn = append(torn, last[:cut]...)
		got, err := ReadRequestTrace(bytes.NewReader(torn))
		if !errors.Is(err, obs.ErrTruncated) {
			t.Fatalf("cut %d: got err %v, want obs.ErrTruncated", cut, err)
		}
		if errors.Is(err, ErrBadRequestTrace) {
			t.Fatalf("cut %d: torn tail misreported as corruption: %v", cut, err)
		}
		if got == nil || len(got.Rounds) != 2 {
			t.Fatalf("cut %d: prefix not returned: %+v", cut, got)
		}
		want := sampleTrace().Rounds[:2]
		if !reflect.DeepEqual(got.Rounds, want) {
			t.Fatalf("cut %d: prefix rounds %+v, want %+v", cut, got.Rounds, want)
		}
	}
}

// TestRequestTraceMissingTail checks that cleanly losing whole trailing
// records (header declares more rounds than present) is also a
// truncation, with the prefix intact.
func TestRequestTraceMissingTail(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequestTrace(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	short := append(bytes.Join(lines[:len(lines)-1], []byte("\n")), '\n')
	got, err := ReadRequestTrace(bytes.NewReader(short))
	if !errors.Is(err, obs.ErrTruncated) {
		t.Fatalf("got err %v, want obs.ErrTruncated", err)
	}
	if got == nil || len(got.Rounds) != 2 {
		t.Fatalf("prefix not returned: %+v", got)
	}
}

// TestRequestTraceMidStreamCorruption checks that malformed records
// with complete records after them hard-error — that's corruption, not
// a torn append.
func TestRequestTraceMidStreamCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequestTrace(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	lines[2] = []byte(`{"t":2,"counts":[7,`) // torn in the middle
	corrupt := append(bytes.Join(lines, []byte("\n")), '\n')
	got, err := ReadRequestTrace(bytes.NewReader(corrupt))
	if !errors.Is(err, ErrBadRequestTrace) {
		t.Fatalf("got err %v, want ErrBadRequestTrace", err)
	}
	if errors.Is(err, obs.ErrTruncated) {
		t.Fatalf("mid-stream corruption misreported as truncation: %v", err)
	}
	if got != nil {
		t.Fatalf("corrupt stream returned data: %+v", got)
	}
}

func TestRequestTraceRejects(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"wrong kind", `{"kind":"other","version":1,"services":["a"],"rounds":0}` + "\n", "kind"},
		{"wrong version", `{"kind":"edgeauction-request-trace","version":9,"services":["a"],"rounds":0}` + "\n", "version"},
		{"non-sequential t", `{"kind":"edgeauction-request-trace","version":1,"services":["a"],"rounds":2}` + "\n" +
			`{"t":1,"counts":[1]}` + "\n" + `{"t":3,"counts":[1]}` + "\n" + `{"t":3,"counts":[1]}` + "\n", "t=3"},
		{"count length", `{"kind":"edgeauction-request-trace","version":1,"services":["a","b"],"rounds":2}` + "\n" +
			`{"t":1,"counts":[1]}` + "\n" + `{"t":2,"counts":[1,2]}` + "\n", "counts"},
		{"negative count", `{"kind":"edgeauction-request-trace","version":1,"services":["a"],"rounds":2}` + "\n" +
			`{"t":1,"counts":[-1]}` + "\n" + `{"t":2,"counts":[1]}` + "\n", "negative"},
		{"extra rounds", `{"kind":"edgeauction-request-trace","version":1,"services":["a"],"rounds":1}` + "\n" +
			`{"t":1,"counts":[1]}` + "\n" + `{"t":2,"counts":[1]}` + "\n", "declares"},
		{"empty", "", "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadRequestTrace(strings.NewReader(tc.input))
			if !errors.Is(err, ErrBadRequestTrace) {
				t.Fatalf("got err %v, want ErrBadRequestTrace", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
