package workload

import (
	"errors"
	"math"
	"strings"
	"testing"
)

const sampleTopologyYAML = `
# A three-service chain with one flow.
name: sample
services:
  - name: frontend
    class: sensitive
    cloud: 1
    work: 20
    calls:
      - to: logic
        prob: 0.9
  - name: logic
    class: tolerant
    work: 30
    error_rate: 0.1
    calls: [storage]          # bare string = prob 1
  - name: storage
    class: tolerant
    cloud: 2
    work: 40
entries:
  - service: frontend
    arrivals: {process: onoff, rate: 6, period: 4, duty: 0.5}
flows:
  - name: browse
    steps: [frontend, storage]
    arrivals:
      process: poisson
      rate: 2
`

func TestParseServiceGraph(t *testing.T) {
	g, err := ParseServiceGraph([]byte(sampleTopologyYAML))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "sample" || len(g.Services) != 3 {
		t.Fatalf("got name %q, %d services", g.Name, len(g.Services))
	}
	fe := g.Services[0]
	if fe.Name != "frontend" || fe.Class != DelaySensitive || fe.Cloud != 1 || fe.Work != 20 {
		t.Errorf("frontend parsed wrong: %+v", fe)
	}
	if len(fe.Calls) != 1 || fe.Calls[0].To != "logic" || fe.Calls[0].Prob != 0.9 {
		t.Errorf("frontend calls parsed wrong: %+v", fe.Calls)
	}
	lg := g.Services[1]
	if lg.Class != DelayTolerant || lg.ErrorRate != 0.1 {
		t.Errorf("logic parsed wrong: %+v", lg)
	}
	if len(lg.Calls) != 1 || lg.Calls[0].To != "storage" || lg.Calls[0].Prob != 1 {
		t.Errorf("bare-string call shorthand parsed wrong: %+v", lg.Calls)
	}
	if len(g.Entries) != 1 || g.Entries[0].Arrivals.Process != ArrivalOnOff || g.Entries[0].Arrivals.Rate != 6 {
		t.Errorf("entries parsed wrong: %+v", g.Entries)
	}
	if len(g.Flows) != 1 || g.Flows[0].Name != "browse" || len(g.Flows[0].Steps) != 2 {
		t.Errorf("flows parsed wrong: %+v", g.Flows)
	}
}

func TestParseServiceGraphErrors(t *testing.T) {
	cases := []struct {
		name string
		yaml string
		want string
	}{
		{"tabs", "name: x\n\tservices:", "tabs"},
		{"unknown field", "bogus: 1\nname: x", "unknown top-level field"},
		{"unknown service field", "services:\n  - name: a\n    wat: 1\nentries:\n  - service: a\n    arrivals: {rate: 1}", "unknown service field"},
		{"dangling call", "services:\n  - name: a\n    calls: [b]\nentries:\n  - service: a\n    arrivals: {rate: 1}", "unknown service"},
		{"cycle", "services:\n  - name: a\n    calls: [b]\n  - name: b\n    calls: [a]\nentries:\n  - service: a\n    arrivals: {rate: 1}", "cycle"},
		{"no load", "services:\n  - name: a", "nothing generates load"},
		{"bad rate", "services:\n  - name: a\nentries:\n  - service: a\n    arrivals: {rate: 0}", "rate must be positive"},
		{"bad process", "services:\n  - name: a\nentries:\n  - service: a\n    arrivals: {process: weibull, rate: 1}", "unknown arrival process"},
		{"bad prob", "services:\n  - name: a\n    calls:\n      - to: b\n        prob: 1.5\n  - name: b\nentries:\n  - service: a\n    arrivals: {rate: 1}", "prob must be in"},
		{"duplicate service", "services:\n  - name: a\n  - name: a\nentries:\n  - service: a\n    arrivals: {rate: 1}", "duplicate service"},
		{"bad error rate", "services:\n  - name: a\n    error_rate: 1.0\nentries:\n  - service: a\n    arrivals: {rate: 1}", "error_rate"},
		{"dangling flow step", "services:\n  - name: a\nflows:\n  - name: f\n    steps: [a, z]\n    arrivals: {rate: 1}", "unknown step"},
		{"dangling entry", "services:\n  - name: a\nentries:\n  - service: z\n    arrivals: {rate: 1}", "unknown service"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseServiceGraph([]byte(tc.yaml))
			if err == nil {
				t.Fatalf("expected an error containing %q, got nil", tc.want)
			}
			if !errors.Is(err, ErrBadTopology) {
				t.Errorf("error does not wrap ErrBadTopology: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBuiltinGraphsValid(t *testing.T) {
	names := BuiltinGraphNames()
	if len(names) == 0 {
		t.Fatal("no builtin graphs")
	}
	for _, name := range names {
		g, err := BuiltinGraph(name)
		if err != nil {
			t.Fatalf("BuiltinGraph(%q): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", name, err)
		}
		// Builders must hand out fresh copies.
		g.Services[0].Work = -999
		g2, _ := BuiltinGraph(name)
		if g2.Services[0].Work == -999 {
			t.Errorf("builtin %q shares state across BuiltinGraph calls", name)
		}
	}
	if _, err := BuiltinGraph("no-such-graph"); !errors.Is(err, ErrBadTopology) {
		t.Errorf("unknown builtin: got %v, want ErrBadTopology", err)
	}
}

func TestServiceGraphClone(t *testing.T) {
	g, err := BuiltinGraph("overload")
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	c.Services[0].Work *= 10
	c.Services[0].Calls[0].Prob = 0.123
	c.Entries[0].Arrivals.Rate = 99
	if g.Services[0].Work == c.Services[0].Work ||
		g.Services[0].Calls[0].Prob == 0.123 ||
		g.Entries[0].Arrivals.Rate == 99 {
		t.Error("Clone shares state with the original")
	}
}

func TestVisitRatesPropagation(t *testing.T) {
	g, err := ParseServiceGraph([]byte(sampleTopologyYAML))
	if err != nil {
		t.Fatal(err)
	}
	rates := g.VisitRates(1000)
	// frontend: entry (onoff mean = 6 exactly over whole periods; 1000 is
	// a multiple of period 4) + flow step 2 = 8.
	// logic: frontend · 0.9 = 7.2.
	// storage: logic · (1−0.1) · 1 + flow step 2 = 6.48 + 2 = 8.48.
	want := []float64{8, 7.2, 8.48}
	for i, w := range want {
		if math.Abs(rates[i]-w) > 1e-9 {
			t.Errorf("VisitRates[%d] (%s) = %v, want %v", i, g.Services[i].Name, rates[i], w)
		}
	}
}

// TestArrivalEmpiricalRate is the satellite property test: for each
// arrival process, the empirical mean of Poisson(Intensity(t)) draws
// over many rounds must match the analytic nominal within tolerance.
func TestArrivalEmpiricalRate(t *testing.T) {
	const rounds = 20000
	specs := []struct {
		name string
		spec ArrivalSpec
	}{
		{"poisson", ArrivalSpec{Process: ArrivalPoisson, Rate: 5}},
		{"onoff", ArrivalSpec{Process: ArrivalOnOff, Rate: 5, Period: 8, Duty: 0.25}},
		{"onoff-default", ArrivalSpec{Process: ArrivalOnOff, Rate: 3}},
		{"diurnal", ArrivalSpec{Process: ArrivalDiurnal, Rate: 5, Period: 24, Amplitude: 0.8}},
		{"flash", ArrivalSpec{Process: ArrivalFlash, Rate: 4, At: 100, Width: 10, Height: 6}},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			nominal := tc.spec.MeanIntensity(rounds)
			if nominal <= 0 {
				t.Fatalf("nominal mean %v", nominal)
			}
			rng := NewDerived(42, "arrival-prop", 0, 0)
			total := 0
			for r := 0; r < rounds; r++ {
				total += rng.Poisson(tc.spec.Intensity(r))
			}
			empirical := float64(total) / rounds
			// ±4σ of the mean of `rounds` Poisson draws, plus slack for
			// the normal-approximation tail at high intensity.
			tol := 4*math.Sqrt(nominal/rounds) + 0.02*nominal
			if math.Abs(empirical-nominal) > tol {
				t.Errorf("empirical rate %v vs nominal %v (tol %v)", empirical, nominal, tol)
			}
		})
	}
}

// TestOnOffMeanPreserving checks the on/off process concentrates, not
// inflates, the load: the exact mean over whole periods equals Rate.
func TestOnOffMeanPreserving(t *testing.T) {
	for _, duty := range []float64{0.1, 0.25, 0.5, 0.75, 1} {
		spec := ArrivalSpec{Process: ArrivalOnOff, Rate: 7, Period: 12, Duty: duty}
		if m := spec.MeanIntensity(12 * 50); math.Abs(m-7) > 1e-9 {
			t.Errorf("duty %v: mean %v, want exactly 7", duty, m)
		}
	}
}

// TestArrivalIntensityPure pins the determinism contract: Intensity is
// a pure function, identical across calls and call orders.
func TestArrivalIntensityPure(t *testing.T) {
	spec := ArrivalSpec{Process: ArrivalOnOff, Rate: 5, Period: 7, Duty: 0.4, Phase: 3}
	forward := make([]float64, 100)
	for tr := 0; tr < 100; tr++ {
		forward[tr] = spec.Intensity(tr)
	}
	for tr := 99; tr >= 0; tr-- {
		if got := spec.Intensity(tr); got != forward[tr] {
			t.Fatalf("Intensity(%d) changed between calls: %v vs %v", tr, got, forward[tr])
		}
	}
	// Negative phases must not index a negative period slot.
	neg := ArrivalSpec{Process: ArrivalOnOff, Rate: 5, Period: 7, Phase: -30}
	for tr := 0; tr < 20; tr++ {
		if v := neg.Intensity(tr); v < 0 {
			t.Fatalf("negative intensity %v at t=%d", v, tr)
		}
	}
}

func TestFlashIntensityShape(t *testing.T) {
	spec := ArrivalSpec{Process: ArrivalFlash, Rate: 2, At: 10, Width: 2, Height: 3}
	for tr := 0; tr < 20; tr++ {
		want := 2.0
		if tr >= 8 && tr <= 12 {
			want = 8
		}
		if got := spec.Intensity(tr); got != want {
			t.Errorf("flash Intensity(%d) = %v, want %v", tr, got, want)
		}
	}
}
