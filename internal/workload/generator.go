package workload

import (
	"fmt"

	"edgeauction/internal/core"
)

// Class distinguishes the two microservice types of §V-A.
type Class int

const (
	// DelaySensitive microservices generate Poisson requests with mean 5
	// and receive scheduling priority.
	DelaySensitive Class = iota + 1
	// DelayTolerant microservices generate Poisson requests with mean 10.
	DelayTolerant
)

// String names the class.
func (c Class) String() string {
	switch c {
	case DelaySensitive:
		return "delay-sensitive"
	case DelayTolerant:
		return "delay-tolerant"
	default:
		return "unknown"
	}
}

// ArrivalMean returns the Poisson mean of the class per §V-A.
func (c Class) ArrivalMean() float64 {
	switch c {
	case DelaySensitive:
		return 5
	case DelayTolerant:
		return 10
	default:
		return 0
	}
}

// InstanceConfig parameterizes single-stage auction instance generation,
// defaulting to the paper's settings (§V-A): bid prices uniform in [10,35],
// demands in [10,40], J=2 alternative bids per bidder.
type InstanceConfig struct {
	// Bidders is the number of microservices offering resources (the
	// paper's |S|, swept over 25-75).
	Bidders int
	// Needy is the number of microservices requiring extra resources
	// (|Ŝ|). Zero means max(1, Bidders/5).
	Needy int
	// BidsPerBidder is J, the number of alternative bids each bidder
	// submits. Zero means 2.
	BidsPerBidder int
	// PriceLo, PriceHi bound the uniform bid price. Zeros mean [10, 35].
	PriceLo, PriceHi float64
	// DemandLo, DemandHi bound the uniform per-needy demand G^t.
	// Zeros mean [10, 40].
	DemandLo, DemandHi int
	// CoverLo, CoverHi bound the uniform size of each bid's covered set.
	// Zeros mean [1, min(4, Needy)].
	CoverLo, CoverHi int
	// UnitsLo, UnitsHi bound the uniform per-bid coverage units a_ij.
	// Zeros mean [1, 10].
	UnitsLo, UnitsHi int
	// PriceJitter, when positive, multiplies each bid's TRUE cost by a
	// uniform factor in [1, 1+PriceJitter] to form the submitted price,
	// modelling untruthful markup. Zero keeps Price == TrueCost.
	PriceJitter float64
	// NoReserve disables the reserve supply. By default every instance
	// includes the platform's fallback pool: for each needy microservice
	// a binary ladder of reserve bids (1, 2, 4, ... units, each from a
	// distinct reserve bidder id ≥ ReserveBidder(Bidders)) priced at
	// PriceHi per unit — the "more expensive alternative" of §IV-E the
	// platform falls back to when the market cannot cover the demand.
	// The ladder guarantees feasibility, acts as the auction's reserve
	// price, and keeps fallback purchases granular (the platform never
	// buys more than 2x the residual it actually needs).
	NoReserve bool
}

// ReserveBidder returns the smallest reserve-pool bidder id for a
// configuration with the given number of market bidders. Every bid with
// Bidder >= this id belongs to the platform's fallback supply.
func ReserveBidder(bidders int) int { return bidders + 1 }

// IsReserveBid reports whether a bid belongs to the platform's fallback
// pool in an instance generated with the given number of market bidders.
func IsReserveBid(b core.Bid, bidders int) bool { return b.Bidder >= ReserveBidder(bidders) }

func (c InstanceConfig) withDefaults() InstanceConfig {
	if c.Needy == 0 {
		c.Needy = c.Bidders / 5
		if c.Needy < 1 {
			c.Needy = 1
		}
	}
	if c.BidsPerBidder == 0 {
		c.BidsPerBidder = 2
	}
	if c.PriceLo == 0 && c.PriceHi == 0 {
		c.PriceLo, c.PriceHi = 10, 35
	}
	if c.DemandLo == 0 && c.DemandHi == 0 {
		c.DemandLo, c.DemandHi = 10, 40
	}
	if c.CoverLo == 0 && c.CoverHi == 0 {
		c.CoverLo = 1
		c.CoverHi = 4
		if c.CoverHi > c.Needy {
			c.CoverHi = c.Needy
		}
	}
	if c.UnitsLo == 0 && c.UnitsHi == 0 {
		c.UnitsLo, c.UnitsHi = 1, 10
	}
	return c
}

// Validate rejects configurations that cannot generate a well-formed
// instance.
func (c InstanceConfig) Validate() error {
	d := c.withDefaults()
	switch {
	case d.Bidders < 1:
		return fmt.Errorf("workload: need at least one bidder, got %d", d.Bidders)
	case d.Needy < 1:
		return fmt.Errorf("workload: need at least one needy microservice, got %d", d.Needy)
	case d.PriceHi < d.PriceLo || d.PriceLo < 0:
		return fmt.Errorf("workload: invalid price range [%v, %v]", d.PriceLo, d.PriceHi)
	case d.DemandHi < d.DemandLo || d.DemandLo < 0:
		return fmt.Errorf("workload: invalid demand range [%d, %d]", d.DemandLo, d.DemandHi)
	case d.CoverHi < d.CoverLo || d.CoverLo < 1 || d.CoverHi > d.Needy:
		return fmt.Errorf("workload: invalid cover range [%d, %d] for %d needy", d.CoverLo, d.CoverHi, d.Needy)
	case d.UnitsHi < d.UnitsLo || d.UnitsLo < 1:
		return fmt.Errorf("workload: invalid units range [%d, %d]", d.UnitsLo, d.UnitsHi)
	}
	return nil
}

// Instance draws one single-stage instance. Bidder ids are 1..Bidders.
// The generated instance is always coverable: after drawing, residual
// uncoverable demand is clamped down to what the bid pool can supply, as a
// real platform would cap its ask at the announced offers.
func Instance(rng *Rand, cfg InstanceConfig) *core.Instance {
	c := cfg.withDefaults()
	ins := &core.Instance{Demand: make([]int, c.Needy)}
	for k := range ins.Demand {
		ins.Demand[k] = rng.UniformInt(c.DemandLo, c.DemandHi)
	}
	for bidder := 1; bidder <= c.Bidders; bidder++ {
		for alt := 0; alt < c.BidsPerBidder; alt++ {
			cover := rng.Subset(c.Needy, rng.UniformInt(c.CoverLo, c.CoverHi))
			trueCost := rng.Uniform(c.PriceLo, c.PriceHi)
			price := trueCost
			if c.PriceJitter > 0 {
				price = trueCost * rng.Uniform(1, 1+c.PriceJitter)
			}
			ins.Bids = append(ins.Bids, core.Bid{
				Bidder:   bidder,
				Alt:      alt,
				Price:    price,
				TrueCost: trueCost,
				Covers:   cover,
				Units:    rng.UniformInt(c.UnitsLo, c.UnitsHi),
			})
		}
	}
	clampDemand(ins)
	if !c.NoReserve {
		addReserveBid(ins, c)
	}
	return ins
}

// addReserveBid appends the platform's fallback pool: for each needy
// microservice, a binary ladder of single-needy bids (1, 2, 4, ... units)
// priced at PriceHi per coverage unit, each from a distinct reserve bidder
// so several rungs can win together. At PriceHi per unit the greedy (which
// ranks by price per marginal coverage) never prefers a rung to a market
// bid, and the ladder lets it procure any residual with at most 2x
// overshoot instead of buying one whole-market block.
func addReserveBid(ins *core.Instance, c InstanceConfig) {
	if ins.TotalDemand() == 0 {
		return
	}
	bidder := ReserveBidder(c.Bidders)
	for k, d := range ins.Demand {
		if d == 0 {
			continue
		}
		for units := 1; units/2 < d; units *= 2 {
			ins.Bids = append(ins.Bids, core.Bid{
				Bidder:   bidder,
				Alt:      0,
				Price:    c.PriceHi * float64(units),
				TrueCost: c.PriceHi * float64(units),
				Covers:   []int{k},
				Units:    units,
			})
			bidder++
		}
	}
}

// clampDemand lowers per-needy demand to the optimistic supply bound so the
// instance is always coverable (one bid per bidder, best bid per needy).
func clampDemand(ins *core.Instance) {
	supply := make([]int, len(ins.Demand))
	perBidder := make(map[int][]int)
	for _, b := range ins.Bids {
		cov := perBidder[b.Bidder]
		if cov == nil {
			cov = make([]int, len(ins.Demand))
			perBidder[b.Bidder] = cov
		}
		for _, k := range b.Covers {
			if b.Units > cov[k] {
				cov[k] = b.Units
			}
		}
	}
	for _, cov := range perBidder {
		for k, u := range cov {
			supply[k] += u
		}
	}
	for k := range ins.Demand {
		if ins.Demand[k] > supply[k] {
			ins.Demand[k] = supply[k]
		}
	}
}

// OnlineConfig parameterizes a multi-round online scenario (§V-A).
type OnlineConfig struct {
	// Rounds is T; the paper sweeps 1..15 with default 10.
	Rounds int
	// Stage configures each round's instance.
	Stage InstanceConfig
	// CapacityLo, CapacityHi bound each bidder's lifetime capacity Θ_i in
	// coverage slots. Zeros mean [Stage.CoverHi+1, 4·(Stage.CoverHi+1)]
	// so that β = min Θ_i/|S_ij| > 1 (Theorem 7 requires β > 1).
	CapacityLo, CapacityHi int
	// WindowedArrival, when true, draws each bidder's [t⁻, t⁺] uniformly
	// within [1, Rounds] as in §V-A; otherwise bidders are always present.
	WindowedArrival bool
	// DemandNoise is the relative error of the §III estimator used to
	// produce the estimated-demand rounds: estimated = true·(1+U[-σ,σ]).
	// Zero means 0.25.
	DemandNoise float64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	stage := c.Stage.withDefaults()
	c.Stage = stage
	if c.CapacityLo == 0 && c.CapacityHi == 0 {
		c.CapacityLo = stage.CoverHi + 1
		c.CapacityHi = 4 * (stage.CoverHi + 1)
	}
	if c.DemandNoise == 0 {
		c.DemandNoise = 0.25
	}
	return c
}

// Scenario is a fully drawn online workload: the true rounds, the
// estimated-demand rounds (same bids, noisy demands), and the MSOA
// configuration (capacities and windows).
type Scenario struct {
	TrueRounds      []core.Round
	EstimatedRounds []core.Round
	Capacity        map[int]int
	Windows         map[int]core.BidderWindow
}

// Config assembles the MSOAConfig for the scenario with the given options.
func (s *Scenario) Config(opts core.Options) core.MSOAConfig {
	return core.MSOAConfig{
		Capacity: s.Capacity,
		Windows:  s.Windows,
		Options:  opts,
	}
}

// Online draws a full multi-round scenario.
func Online(rng *Rand, cfg OnlineConfig) *Scenario {
	c := cfg.withDefaults()
	s := &Scenario{
		Capacity: make(map[int]int),
		Windows:  make(map[int]core.BidderWindow),
	}
	for bidder := 1; bidder <= c.Stage.Bidders; bidder++ {
		s.Capacity[bidder] = rng.UniformInt(c.CapacityLo, c.CapacityHi)
		if c.WindowedArrival {
			a := rng.UniformInt(1, c.Rounds)
			d := rng.UniformInt(a, c.Rounds)
			s.Windows[bidder] = core.BidderWindow{Arrive: a, Depart: d}
		}
	}
	for t := 1; t <= c.Rounds; t++ {
		ins := Instance(rng, c.Stage)
		s.TrueRounds = append(s.TrueRounds, core.Round{T: t, Instance: ins})

		est := ins.Clone()
		for k := range est.Demand {
			noisy := float64(est.Demand[k]) * rng.Uniform(1-c.DemandNoise, 1+c.DemandNoise)
			est.Demand[k] = int(noisy + 0.5)
			if est.Demand[k] < 0 {
				est.Demand[k] = 0
			}
		}
		clampDemand(est)
		s.EstimatedRounds = append(s.EstimatedRounds, core.Round{T: t, Instance: est})
	}
	return s
}
