package workload

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"edgeauction/internal/core"
)

// Trace files are JSON-lines: a header record followed by one record per
// round. The format is the bridge for replacing our synthetic workloads
// with real platform traces — any producer that emits these records can
// drive the mechanisms and the experiment harness unchanged.

// traceVersion identifies the on-disk format.
const traceVersion = 1

// traceHeader is the first JSONL record.
type traceHeader struct {
	Kind     string               `json:"kind"` // always "edgeauction-trace"
	Version  int                  `json:"version"`
	Rounds   int                  `json:"rounds"`
	Capacity map[int]int          `json:"capacity,omitempty"`
	Windows  map[int]windowRecord `json:"windows,omitempty"`
}

type windowRecord struct {
	Arrive int `json:"arrive"`
	Depart int `json:"depart"`
}

// roundRecord is one JSONL record per round.
type roundRecord struct {
	T               int         `json:"t"`
	Demand          []int       `json:"demand"`
	EstimatedDemand []int       `json:"estimated_demand,omitempty"`
	Bids            []bidRecord `json:"bids"`
}

type bidRecord struct {
	Bidder   int     `json:"bidder"`
	Alt      int     `json:"alt"`
	Price    float64 `json:"price"`
	TrueCost float64 `json:"true_cost,omitempty"`
	Covers   []int   `json:"covers"`
	Units    int     `json:"units"`
}

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// WriteTrace serializes a scenario as JSON lines.
func WriteTrace(w io.Writer, s *Scenario) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := traceHeader{
		Kind:     "edgeauction-trace",
		Version:  traceVersion,
		Rounds:   len(s.TrueRounds),
		Capacity: s.Capacity,
	}
	if len(s.Windows) > 0 {
		hdr.Windows = make(map[int]windowRecord, len(s.Windows))
		for b, win := range s.Windows {
			hdr.Windows[b] = windowRecord{Arrive: win.Arrive, Depart: win.Depart}
		}
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("workload: encode trace header: %w", err)
	}
	for i, r := range s.TrueRounds {
		rec := roundRecord{T: r.T, Demand: r.Instance.Demand}
		if i < len(s.EstimatedRounds) {
			rec.EstimatedDemand = s.EstimatedRounds[i].Instance.Demand
		}
		for _, b := range r.Instance.Bids {
			rec.Bids = append(rec.Bids, bidRecord{
				Bidder: b.Bidder, Alt: b.Alt, Price: b.Price,
				TrueCost: b.TrueCost, Covers: b.Covers, Units: b.Units,
			})
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("workload: encode trace round %d: %w", r.T, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("workload: flush trace: %w", err)
	}
	return nil
}

// ReadTrace parses a JSON-lines trace back into a scenario.
func ReadTrace(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	var hdr traceHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTrace, err)
	}
	if hdr.Kind != "edgeauction-trace" {
		return nil, fmt.Errorf("%w: unexpected kind %q", ErrBadTrace, hdr.Kind)
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, hdr.Version)
	}
	s := &Scenario{Capacity: hdr.Capacity}
	if s.Capacity == nil {
		s.Capacity = make(map[int]int)
	}
	s.Windows = make(map[int]core.BidderWindow, len(hdr.Windows))
	for b, win := range hdr.Windows {
		s.Windows[b] = core.BidderWindow{Arrive: win.Arrive, Depart: win.Depart}
	}
	for {
		var rec roundRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("%w: round record: %v", ErrBadTrace, err)
		}
		ins := &core.Instance{Demand: rec.Demand}
		for _, b := range rec.Bids {
			ins.Bids = append(ins.Bids, core.Bid{
				Bidder: b.Bidder, Alt: b.Alt, Price: b.Price,
				TrueCost: b.TrueCost, Covers: b.Covers, Units: b.Units,
			})
		}
		if err := ins.Validate(); err != nil {
			return nil, fmt.Errorf("%w: round %d: %v", ErrBadTrace, rec.T, err)
		}
		s.TrueRounds = append(s.TrueRounds, core.Round{T: rec.T, Instance: ins})

		est := ins
		if rec.EstimatedDemand != nil {
			if len(rec.EstimatedDemand) != len(rec.Demand) {
				return nil, fmt.Errorf("%w: round %d: estimated demand length %d != %d",
					ErrBadTrace, rec.T, len(rec.EstimatedDemand), len(rec.Demand))
			}
			est = ins.Clone()
			est.Demand = rec.EstimatedDemand
		}
		s.EstimatedRounds = append(s.EstimatedRounds, core.Round{T: rec.T, Instance: est})
	}
	if len(s.TrueRounds) != hdr.Rounds {
		return nil, fmt.Errorf("%w: header promises %d rounds, found %d", ErrBadTrace, hdr.Rounds, len(s.TrueRounds))
	}
	return s, nil
}
