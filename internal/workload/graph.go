package workload

import (
	"errors"
	"fmt"
	"os"
	"sort"
)

// ErrBadTopology reports an invalid service-topology document: YAML the
// subset parser rejects, unknown fields, dangling call edges, cycles, or
// out-of-range parameters.
var ErrBadTopology = errors.New("workload: invalid service topology")

// ServiceSpec is one microservice in a service topology: its QoS class,
// optional edge-cloud pinning, per-request work, downstream error rate,
// and fan-out call edges.
type ServiceSpec struct {
	// Name identifies the service; call edges and flows reference it.
	Name string `json:"name"`
	// Class is the QoS class (DelaySensitive by default).
	Class Class `json:"class"`
	// Cloud pins the service to an edge-cloud id (1-based); 0 means the
	// simulator assigns clouds round-robin.
	Cloud int `json:"cloud,omitempty"`
	// Work is the mean work units per request; 0 falls back to the
	// simulator's configured mean.
	Work float64 `json:"work,omitempty"`
	// ErrorRate is the probability a completed request fails and does
	// not fan out to downstream services.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// Calls are the downstream services invoked after a successful
	// completion.
	Calls []CallSpec `json:"calls,omitempty"`
}

// CallSpec is a fan-out edge from one service to another.
type CallSpec struct {
	// To names the callee service.
	To string `json:"to"`
	// Prob is the probability the call happens (default 1).
	Prob float64 `json:"prob,omitempty"`
}

// EntrySpec is an external arrival source feeding one service.
type EntrySpec struct {
	// Service names the entry-point service.
	Service string `json:"service"`
	// Arrivals describes the arrival process.
	Arrivals ArrivalSpec `json:"arrivals"`
}

// FlowSpec is a multi-step user flow: each arriving user traverses the
// listed services in order, each step queueing like a normal request
// (and still fanning out through that service's call edges).
type FlowSpec struct {
	// Name identifies the flow.
	Name string `json:"name"`
	// Steps are the service names traversed in order.
	Steps []string `json:"steps"`
	// Arrivals describes how flow users arrive.
	Arrivals ArrivalSpec `json:"arrivals"`
}

// ServiceGraph is a parsed and validated service topology: the call
// graph the workload engine simulates to derive per-microservice AHP
// indicators from load instead of sampling them i.i.d.
type ServiceGraph struct {
	// Name labels the topology in traces and reports.
	Name string `json:"name"`
	// Services are the microservices, in document order.
	Services []ServiceSpec `json:"services"`
	// Entries are the external arrival sources.
	Entries []EntrySpec `json:"entries,omitempty"`
	// Flows are the multi-step user flows.
	Flows []FlowSpec `json:"flows,omitempty"`
}

// Index returns the position of the named service, or -1.
func (g *ServiceGraph) Index(name string) int {
	for i, s := range g.Services {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Clone returns a deep copy, so sweeps can scale a builtin graph's
// parameters without mutating the shared definition.
func (g *ServiceGraph) Clone() *ServiceGraph {
	out := &ServiceGraph{Name: g.Name}
	out.Services = make([]ServiceSpec, len(g.Services))
	for i, s := range g.Services {
		cp := s
		cp.Calls = append([]CallSpec(nil), s.Calls...)
		out.Services[i] = cp
	}
	out.Entries = append([]EntrySpec(nil), g.Entries...)
	out.Flows = make([]FlowSpec, len(g.Flows))
	for i, f := range g.Flows {
		cp := f
		cp.Steps = append([]string(nil), f.Steps...)
		out.Flows[i] = cp
	}
	return out
}

// Validate checks structural invariants: at least one service, unique
// names, resolvable edges/entries/flow steps, an acyclic call graph
// (cascades must terminate), probabilities in range, and well-formed
// arrival specs. Parse and Load call it; callers constructing graphs in
// code should too.
func (g *ServiceGraph) Validate() error {
	if len(g.Services) == 0 {
		return fmt.Errorf("%w: no services", ErrBadTopology)
	}
	idx := make(map[string]int, len(g.Services))
	for i, s := range g.Services {
		if s.Name == "" {
			return fmt.Errorf("%w: services[%d]: missing name", ErrBadTopology, i)
		}
		if _, dup := idx[s.Name]; dup {
			return fmt.Errorf("%w: duplicate service name %q", ErrBadTopology, s.Name)
		}
		idx[s.Name] = i
		if s.Class != DelaySensitive && s.Class != DelayTolerant {
			return fmt.Errorf("%w: service %q: invalid class %d", ErrBadTopology, s.Name, s.Class)
		}
		if s.Cloud < 0 {
			return fmt.Errorf("%w: service %q: negative cloud id", ErrBadTopology, s.Name)
		}
		if s.Work < 0 {
			return fmt.Errorf("%w: service %q: negative work", ErrBadTopology, s.Name)
		}
		if s.ErrorRate < 0 || s.ErrorRate >= 1 {
			return fmt.Errorf("%w: service %q: error_rate must be in [0, 1), got %v", ErrBadTopology, s.Name, s.ErrorRate)
		}
		for _, c := range s.Calls {
			if _, ok := idx[c.To]; !ok && g.Index(c.To) < 0 {
				return fmt.Errorf("%w: service %q calls unknown service %q", ErrBadTopology, s.Name, c.To)
			}
			if c.Prob < 0 || c.Prob > 1 {
				return fmt.Errorf("%w: service %q call to %q: prob must be in [0, 1], got %v", ErrBadTopology, s.Name, c.To, c.Prob)
			}
		}
	}
	// The call graph must be a DAG: a cycle would let one request spawn
	// unboundedly many cascade events inside a round.
	state := make([]int, len(g.Services)) // 0 unvisited, 1 on stack, 2 done
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("%w: call cycle through service %q", ErrBadTopology, g.Services[i].Name)
		case 2:
			return nil
		}
		state[i] = 1
		for _, c := range g.Services[i].Calls {
			if err := visit(g.Index(c.To)); err != nil {
				return err
			}
		}
		state[i] = 2
		return nil
	}
	for i := range g.Services {
		if err := visit(i); err != nil {
			return err
		}
	}
	if len(g.Entries) == 0 && len(g.Flows) == 0 {
		return fmt.Errorf("%w: no entries or flows — nothing generates load", ErrBadTopology)
	}
	for i, e := range g.Entries {
		if g.Index(e.Service) < 0 {
			return fmt.Errorf("%w: entries[%d]: unknown service %q", ErrBadTopology, i, e.Service)
		}
		if err := e.Arrivals.validate(fmt.Sprintf("entries[%d]", i)); err != nil {
			return err
		}
	}
	for i, f := range g.Flows {
		if f.Name == "" {
			return fmt.Errorf("%w: flows[%d]: missing name", ErrBadTopology, i)
		}
		if len(f.Steps) == 0 {
			return fmt.Errorf("%w: flow %q: no steps", ErrBadTopology, f.Name)
		}
		for _, step := range f.Steps {
			if g.Index(step) < 0 {
				return fmt.Errorf("%w: flow %q: unknown step service %q", ErrBadTopology, f.Name, step)
			}
		}
		if err := f.Arrivals.validate(fmt.Sprintf("flow %q", f.Name)); err != nil {
			return err
		}
	}
	return nil
}

// VisitRates returns each service's expected arrivals per round at the
// nominal (long-run mean) entry rates, propagated through the call
// graph: entry and flow-step arrivals plus upstream completions scaled
// by (1 − error_rate) · prob. This is the load-derived analogue of the
// i.i.d. request-rate indicator, and what the simulator sizes target
// rates from.
func (g *ServiceGraph) VisitRates(rounds int) []float64 {
	rates := make([]float64, len(g.Services))
	for _, e := range g.Entries {
		rates[g.Index(e.Service)] += e.Arrivals.MeanIntensity(rounds)
	}
	for _, f := range g.Flows {
		r := f.Arrivals.MeanIntensity(rounds)
		for _, step := range f.Steps {
			rates[g.Index(step)] += r
		}
	}
	// Propagate in topological order (Kahn on the validated DAG).
	indeg := make([]int, len(g.Services))
	for _, s := range g.Services {
		for _, c := range s.Calls {
			indeg[g.Index(c.To)]++
		}
	}
	queue := make([]int, 0, len(g.Services))
	for i := range g.Services {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		s := g.Services[i]
		for _, c := range s.Calls {
			j := g.Index(c.To)
			prob := c.Prob
			if prob == 0 {
				prob = 1
			}
			rates[j] += rates[i] * (1 - s.ErrorRate) * prob
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	return rates
}

// ParseServiceGraph parses and validates a YAML service topology.
func ParseServiceGraph(data []byte) (*ServiceGraph, error) {
	doc, err := parseYAML(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTopology, err)
	}
	root, err := yamlMap(doc, "topology")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTopology, err)
	}
	g := &ServiceGraph{}
	for key, val := range root {
		var err error
		switch key {
		case "name":
			g.Name, err = yamlStr(val, "name")
		case "services":
			g.Services, err = parseServices(val)
		case "entries":
			g.Entries, err = parseEntries(val)
		case "flows":
			g.Flows, err = parseFlows(val)
		default:
			err = fmt.Errorf("unknown top-level field %q", key)
		}
		if err != nil {
			if errors.Is(err, ErrBadTopology) {
				return nil, err
			}
			return nil, fmt.Errorf("%w: %v", ErrBadTopology, err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// LoadServiceGraph reads and parses a topology file.
func LoadServiceGraph(path string) (*ServiceGraph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTopology, err)
	}
	g, err := ParseServiceGraph(data)
	if err != nil {
		return nil, fmt.Errorf("%v (file %s)", err, path)
	}
	return g, nil
}

func parseServices(v any) ([]ServiceSpec, error) {
	seq, err := yamlSeq(v, "services")
	if err != nil {
		return nil, err
	}
	out := make([]ServiceSpec, 0, len(seq))
	for i, item := range seq {
		path := fmt.Sprintf("services[%d]", i)
		m, err := yamlMap(item, path)
		if err != nil {
			return nil, err
		}
		spec := ServiceSpec{Class: DelaySensitive}
		for key, val := range m {
			p := path + "." + key
			var err error
			switch key {
			case "name":
				spec.Name, err = yamlStr(val, p)
			case "class":
				var s string
				if s, err = yamlStr(val, p); err == nil {
					switch s {
					case "sensitive", "delay-sensitive":
						spec.Class = DelaySensitive
					case "tolerant", "delay-tolerant":
						spec.Class = DelayTolerant
					default:
						err = fmt.Errorf("%s: unknown class %q (want sensitive or tolerant)", p, s)
					}
				}
			case "cloud":
				spec.Cloud, err = yamlInt(val, p)
			case "work":
				spec.Work, err = yamlFloat(val, p)
			case "error_rate":
				spec.ErrorRate, err = yamlFloat(val, p)
			case "calls":
				spec.Calls, err = parseCalls(val, p)
			default:
				err = fmt.Errorf("%s: unknown service field %q", path, key)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseCalls(v any, path string) ([]CallSpec, error) {
	seq, err := yamlSeq(v, path)
	if err != nil {
		return nil, err
	}
	out := make([]CallSpec, 0, len(seq))
	for i, item := range seq {
		p := fmt.Sprintf("%s[%d]", path, i)
		// A bare string is shorthand for an always-taken edge.
		if s, ok := item.(string); ok {
			out = append(out, CallSpec{To: s, Prob: 1})
			continue
		}
		m, err := yamlMap(item, p)
		if err != nil {
			return nil, err
		}
		call := CallSpec{Prob: 1}
		for key, val := range m {
			var err error
			switch key {
			case "to":
				call.To, err = yamlStr(val, p+".to")
			case "prob":
				call.Prob, err = yamlFloat(val, p+".prob")
			default:
				err = fmt.Errorf("%s: unknown call field %q", p, key)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, call)
	}
	return out, nil
}

func parseEntries(v any) ([]EntrySpec, error) {
	seq, err := yamlSeq(v, "entries")
	if err != nil {
		return nil, err
	}
	out := make([]EntrySpec, 0, len(seq))
	for i, item := range seq {
		path := fmt.Sprintf("entries[%d]", i)
		m, err := yamlMap(item, path)
		if err != nil {
			return nil, err
		}
		var spec EntrySpec
		for key, val := range m {
			var err error
			switch key {
			case "service":
				spec.Service, err = yamlStr(val, path+".service")
			case "arrivals":
				spec.Arrivals, err = parseArrivalSpec(val, path+".arrivals")
			default:
				err = fmt.Errorf("%s: unknown entry field %q", path, key)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseFlows(v any) ([]FlowSpec, error) {
	seq, err := yamlSeq(v, "flows")
	if err != nil {
		return nil, err
	}
	out := make([]FlowSpec, 0, len(seq))
	for i, item := range seq {
		path := fmt.Sprintf("flows[%d]", i)
		m, err := yamlMap(item, path)
		if err != nil {
			return nil, err
		}
		var spec FlowSpec
		for key, val := range m {
			var err error
			switch key {
			case "name":
				spec.Name, err = yamlStr(val, path+".name")
			case "steps":
				var steps []any
				if steps, err = yamlSeq(val, path+".steps"); err == nil {
					for j, sv := range steps {
						var s string
						if s, err = yamlStr(sv, fmt.Sprintf("%s.steps[%d]", path, j)); err != nil {
							break
						}
						spec.Steps = append(spec.Steps, s)
					}
				}
			case "arrivals":
				spec.Arrivals, err = parseArrivalSpec(val, path+".arrivals")
			default:
				err = fmt.Errorf("%s: unknown flow field %q", path, key)
			}
			if err != nil {
				return nil, err
			}
		}
		out = append(out, spec)
	}
	return out, nil
}
