package workload

import (
	"fmt"
	"strconv"
	"strings"
)

// A hand-written parser for the YAML subset the service-topology files
// use: block mappings and sequences nested by indentation, "- key: val"
// compact sequence items, single-line flow collections ({k: v} and
// [a, b]), quoted and plain scalars, and # comments. The module has no
// dependencies by policy, so this stays deliberately small instead of
// pulling in a full YAML implementation; anchors, multi-document
// streams, block scalars, and tabs are rejected with line-numbered
// errors. Scalars are returned as strings; the schema layer converts.

// yamlLine is one significant (non-blank, non-comment) input line.
type yamlLine struct {
	indent int
	text   string
	num    int // 1-based source line
}

// parseYAML parses data into nested map[string]any / []any / string.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	node, next, err := parseYAMLNode(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected decrease of indentation below the document root", lines[next].num)
	}
	return node, nil
}

// splitYAMLLines strips comments and blank lines and measures indents.
func splitYAMLLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for num, raw := range strings.Split(string(data), "\n") {
		if strings.ContainsRune(raw, '\t') {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed for indentation", num+1)
		}
		text := stripYAMLComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		out = append(out, yamlLine{
			indent: len(text) - len(strings.TrimLeft(text, " ")),
			text:   trimmed,
			num:    num + 1,
		})
	}
	return out, nil
}

// stripYAMLComment removes a trailing comment, respecting quotes.
func stripYAMLComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseYAMLNode parses the block starting at lines[i], which must sit at
// exactly the given indent, and returns the node plus the index of the
// first line after the block.
func parseYAMLNode(lines []yamlLine, i, indent int) (any, int, error) {
	if lines[i].indent != indent {
		return nil, i, fmt.Errorf("yaml line %d: unexpected indentation", lines[i].num)
	}
	if lines[i].text == "-" || strings.HasPrefix(lines[i].text, "- ") {
		return parseYAMLSeq(lines, i, indent)
	}
	return parseYAMLMap(lines, i, indent)
}

func parseYAMLSeq(lines []yamlLine, i, indent int) (any, int, error) {
	var out []any
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			return nil, i, fmt.Errorf("yaml line %d: expected a '- ' sequence item", ln.num)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		switch {
		case rest == "":
			// "-" alone: the item is the nested block below.
			if i+1 >= len(lines) || lines[i+1].indent <= indent {
				return nil, i, fmt.Errorf("yaml line %d: empty sequence item", ln.num)
			}
			item, next, err := parseYAMLNode(lines, i+1, lines[i+1].indent)
			if err != nil {
				return nil, i, err
			}
			out = append(out, item)
			i = next
		case yamlKeySplit(rest) >= 0:
			// "- key: ..." compact mapping item: re-root the line two
			// columns deeper (where the content visually sits) and let the
			// mapping parser absorb the following deeper lines.
			lines[i] = yamlLine{indent: indent + 2, text: rest, num: ln.num}
			item, next, err := parseYAMLMap(lines, i, indent+2)
			if err != nil {
				return nil, i, err
			}
			out = append(out, item)
			i = next
		default:
			v, err := parseYAMLValue(rest, ln.num)
			if err != nil {
				return nil, i, err
			}
			out = append(out, v)
			i++
		}
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("yaml line %d: unexpected indentation", lines[i].num)
	}
	return out, i, nil
}

func parseYAMLMap(lines []yamlLine, i, indent int) (any, int, error) {
	out := map[string]any{}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
			break // a sibling sequence ends the mapping
		}
		cut := yamlKeySplit(ln.text)
		if cut < 0 {
			return nil, i, fmt.Errorf("yaml line %d: expected 'key: value'", ln.num)
		}
		key := unquoteYAML(strings.TrimSpace(ln.text[:cut]))
		if key == "" {
			return nil, i, fmt.Errorf("yaml line %d: empty mapping key", ln.num)
		}
		if _, dup := out[key]; dup {
			return nil, i, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, key)
		}
		rest := strings.TrimSpace(ln.text[cut+1:])
		if rest != "" {
			v, err := parseYAMLValue(rest, ln.num)
			if err != nil {
				return nil, i, err
			}
			out[key] = v
			i++
			continue
		}
		// "key:" with the value as the nested block below (or null).
		if i+1 < len(lines) && lines[i+1].indent > indent {
			v, next, err := parseYAMLNode(lines, i+1, lines[i+1].indent)
			if err != nil {
				return nil, i, err
			}
			out[key] = v
			i = next
			continue
		}
		out[key] = nil
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("yaml line %d: unexpected indentation", lines[i].num)
	}
	return out, i, nil
}

// yamlKeySplit returns the index of the colon separating a mapping key
// from its value, or -1 when the text is not a mapping entry. The colon
// must be followed by a space or end the text, and must sit outside
// quotes and flow collections.
func yamlKeySplit(s string) int {
	var quote byte
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0 && (i+1 == len(s) || s[i+1] == ' '):
			return i
		}
	}
	return -1
}

// parseYAMLValue parses an inline value: a flow sequence, a flow
// mapping, or a scalar.
func parseYAMLValue(s string, num int) (any, error) {
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow sequence", num)
		}
		var out []any
		for _, part := range splitYAMLFlow(s[1 : len(s)-1]) {
			if part == "" {
				continue
			}
			v, err := parseYAMLValue(part, num)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, fmt.Errorf("yaml line %d: unterminated flow mapping", num)
		}
		out := map[string]any{}
		for _, part := range splitYAMLFlow(s[1 : len(s)-1]) {
			if part == "" {
				continue
			}
			cut := yamlKeySplit(part)
			if cut < 0 {
				if cut = strings.IndexByte(part, ':'); cut < 0 {
					return nil, fmt.Errorf("yaml line %d: flow mapping entry %q has no key", num, part)
				}
			}
			key := unquoteYAML(strings.TrimSpace(part[:cut]))
			v, err := parseYAMLValue(strings.TrimSpace(part[cut+1:]), num)
			if err != nil {
				return nil, err
			}
			out[key] = v
		}
		return out, nil
	case strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*") || strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">"):
		return nil, fmt.Errorf("yaml line %d: anchors and block scalars are not supported", num)
	default:
		return unquoteYAML(s), nil
	}
}

// splitYAMLFlow splits flow-collection content on top-level commas.
func splitYAMLFlow(s string) []string {
	var out []string
	var quote byte
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func unquoteYAML(s string) string {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// Typed accessors for the schema layer. Paths name the field for errors.

func yamlMap(v any, path string) (map[string]any, error) {
	if v == nil {
		return map[string]any{}, nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%s: expected a mapping", path)
	}
	return m, nil
}

func yamlSeq(v any, path string) ([]any, error) {
	if v == nil {
		return nil, nil
	}
	s, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("%s: expected a sequence", path)
	}
	return s, nil
}

func yamlStr(v any, path string) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%s: expected a string", path)
	}
	return s, nil
}

func yamlFloat(v any, path string) (float64, error) {
	s, ok := v.(string)
	if !ok {
		return 0, fmt.Errorf("%s: expected a number", path)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not a number", path, s)
	}
	return f, nil
}

func yamlInt(v any, path string) (int, error) {
	s, ok := v.(string)
	if !ok {
		return 0, fmt.Errorf("%s: expected an integer", path)
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%s: %q is not an integer", path, s)
	}
	return n, nil
}
