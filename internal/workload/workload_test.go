package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"edgeauction/internal/core"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	if NewRand(7).Int63() == NewRand(8).Int63() {
		t.Fatal("different seeds should diverge immediately (with overwhelming probability)")
	}
}

func TestRandForkIndependence(t *testing.T) {
	parent := NewRand(1)
	child := parent.Fork()
	// The child stream must be reproducible from the same parent state.
	parent2 := NewRand(1)
	child2 := parent2.Fork()
	for i := 0; i < 50; i++ {
		if child.Float64() != child2.Float64() {
			t.Fatal("forked streams must be deterministic")
		}
	}
}

func TestDeriveSeedDeterministicAndDistinct(t *testing.T) {
	if DeriveSeed(1, "fig3a", 2, 3) != DeriveSeed(1, "fig3a", 2, 3) {
		t.Fatal("DeriveSeed must be a pure function of its coordinate")
	}
	// Every coordinate perturbation must change the seed: distinct cells
	// sample distinct instances.
	base := DeriveSeed(1, "fig3a", 2, 3)
	perturbed := []int64{
		DeriveSeed(2, "fig3a", 2, 3),
		DeriveSeed(1, "fig3b", 2, 3),
		DeriveSeed(1, "fig3a", 3, 3),
		DeriveSeed(1, "fig3a", 2, 4),
		// Swapped point/trial must not collide (sequential mixing).
		DeriveSeed(1, "fig3a", 3, 2),
	}
	seen := map[int64]bool{base: true}
	for i, s := range perturbed {
		if seen[s] {
			t.Fatalf("perturbation %d collided with a previous seed %d", i, s)
		}
		seen[s] = true
	}
	// Sub-seeded streams must themselves diverge.
	a := NewDerived(1, "tag", 0, 0)
	b := NewDerived(1, "tag", 0, 1)
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("adjacent trial streams should diverge immediately")
	}
}

func TestDeriveSeedAvalanche(t *testing.T) {
	// Neighbouring trial indices must produce well-mixed seeds: over 64
	// trials, the derived seeds' low 32 bits should all be distinct (a
	// linear congruential-style derivation would collide or correlate).
	seen := map[int64]bool{}
	for trial := 0; trial < 64; trial++ {
		s := DeriveSeed(42, "avalanche", 0, trial)
		if seen[s&0xffffffff] {
			t.Fatalf("low-bit collision at trial %d", trial)
		}
		seen[s&0xffffffff] = true
	}
}

func TestUniformIntBounds(t *testing.T) {
	rng := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := rng.UniformInt(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("UniformInt out of range: %d", v)
		}
	}
	if got := rng.UniformInt(4, 4); got != 4 {
		t.Fatalf("degenerate range: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for hi < lo")
		}
	}()
	rng.UniformInt(5, 4)
}

func TestPoissonMeanMatches(t *testing.T) {
	rng := NewRand(5)
	for _, mean := range []float64{0.5, 5, 10, 50} { // 50 exercises the normal path
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(rng.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.1*mean+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if rng.Poisson(0) != 0 || rng.Poisson(-1) != 0 {
		t.Fatal("non-positive mean must give 0")
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRand(6)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += rng.Exponential(0.5) // mean 2
	}
	if got := sum / n; math.Abs(got-2) > 0.1 {
		t.Fatalf("Exponential(0.5) sample mean = %v, want ~2", got)
	}
}

func TestSubsetProperties(t *testing.T) {
	rng := NewRand(8)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%20) + 1
		k := int(kRaw) % (n + 1)
		s := rng.Subset(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		prev := -1
		for _, v := range s {
			if v < 0 || v >= n || seen[v] || v <= prev {
				return false // out of range, duplicate, or unsorted
			}
			seen[v] = true
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClassProperties(t *testing.T) {
	if DelaySensitive.ArrivalMean() != 5 || DelayTolerant.ArrivalMean() != 10 {
		t.Fatal("paper's Poisson means are 5 and 10")
	}
	if DelaySensitive.String() == DelayTolerant.String() {
		t.Fatal("class names must differ")
	}
	if Class(0).ArrivalMean() != 0 || !strings.Contains(Class(0).String(), "unknown") {
		t.Fatal("unknown class must be inert")
	}
}

func TestInstanceGeneratorDefaults(t *testing.T) {
	rng := NewRand(1)
	ins := Instance(rng, InstanceConfig{Bidders: 25})
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	// 25 bidders x J=2 + the reserve ladder.
	if len(ins.Bids) <= 25*2 {
		t.Fatalf("bid count = %d, want more than 50 (market + reserve ladder)", len(ins.Bids))
	}
	if ins.NumNeedy() != 5 {
		t.Fatalf("needy = %d, want Bidders/5 = 5", ins.NumNeedy())
	}
	reserveLadder := make(map[int][]core.Bid) // needy -> rungs
	for i, b := range ins.Bids {
		if IsReserveBid(b, 25) {
			if len(b.Covers) != 1 {
				t.Fatalf("reserve rung %d must cover exactly one needy microservice", i)
			}
			if b.Price != 35*float64(b.Units) {
				t.Fatalf("reserve rung %d priced %v, want PriceHi x units = %v", i, b.Price, 35*float64(b.Units))
			}
			reserveLadder[b.Covers[0]] = append(reserveLadder[b.Covers[0]], b)
			continue
		}
		if b.Price < 10 || b.Price >= 35 {
			t.Fatalf("bid %d price %v outside [10,35)", i, b.Price)
		}
		if b.Price != b.TrueCost {
			t.Fatalf("bid %d not truthful by default", i)
		}
	}
	for k, d := range ins.Demand {
		if d == 0 {
			continue
		}
		rungs := reserveLadder[k]
		if len(rungs) == 0 {
			t.Fatalf("needy %d has no reserve ladder", k)
		}
		largest := 0
		for _, r := range rungs {
			if r.Units > largest {
				largest = r.Units
			}
		}
		if largest < d {
			t.Fatalf("needy %d: largest rung %d below demand %d", k, largest, d)
		}
	}
	if !ins.Coverable() {
		t.Fatal("generated instance must be coverable")
	}
}

func TestInstanceGeneratorFeasibleForSSAM(t *testing.T) {
	rng := NewRand(2)
	for trial := 0; trial < 50; trial++ {
		ins := Instance(rng, InstanceConfig{
			Bidders: 1 + rng.Intn(20),
			Needy:   1 + rng.Intn(5),
		})
		if _, err := core.SSAM(ins, core.Options{SkipCertificate: true}); err != nil {
			t.Fatalf("trial %d: generated instance infeasible for SSAM: %v", trial, err)
		}
	}
}

func TestInstanceGeneratorNoReserve(t *testing.T) {
	rng := NewRand(3)
	ins := Instance(rng, InstanceConfig{Bidders: 10, NoReserve: true})
	for _, b := range ins.Bids {
		if IsReserveBid(b, 10) {
			t.Fatal("NoReserve must suppress the reserve pool")
		}
	}
}

func TestInstanceGeneratorPriceJitter(t *testing.T) {
	rng := NewRand(4)
	ins := Instance(rng, InstanceConfig{Bidders: 20, PriceJitter: 0.5})
	marked := 0
	for _, b := range ins.Bids[:len(ins.Bids)-1] {
		if b.Price < b.TrueCost-1e-9 {
			t.Fatalf("jittered price %v below true cost %v", b.Price, b.TrueCost)
		}
		if b.Price > b.TrueCost+1e-9 {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("jitter produced no markups")
	}
}

func TestInstanceConfigValidate(t *testing.T) {
	cases := map[string]InstanceConfig{
		"no bidders":     {},
		"bad prices":     {Bidders: 5, PriceLo: 10, PriceHi: 5},
		"bad demand":     {Bidders: 5, DemandLo: 10, DemandHi: 5},
		"cover too wide": {Bidders: 5, Needy: 2, CoverLo: 1, CoverHi: 9},
		"bad units":      {Bidders: 5, UnitsLo: 3, UnitsHi: 1},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			if err := cfg.Validate(); err == nil {
				t.Fatal("want validation error")
			}
		})
	}
	if err := (InstanceConfig{Bidders: 5}).Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

func TestOnlineScenarioShape(t *testing.T) {
	rng := NewRand(5)
	scn := Online(rng, OnlineConfig{
		Rounds:          7,
		Stage:           InstanceConfig{Bidders: 10},
		WindowedArrival: true,
	})
	if len(scn.TrueRounds) != 7 || len(scn.EstimatedRounds) != 7 {
		t.Fatalf("rounds = %d/%d, want 7/7", len(scn.TrueRounds), len(scn.EstimatedRounds))
	}
	if len(scn.Capacity) != 10 {
		t.Fatalf("capacities = %d, want 10", len(scn.Capacity))
	}
	if len(scn.Windows) != 10 {
		t.Fatalf("windows = %d, want 10", len(scn.Windows))
	}
	for b, w := range scn.Windows {
		if w.Arrive < 1 || w.Depart > 7 || w.Arrive > w.Depart {
			t.Fatalf("bidder %d has invalid window %+v", b, w)
		}
	}
	for i, r := range scn.TrueRounds {
		if r.T != i+1 {
			t.Fatalf("round %d has T=%d", i, r.T)
		}
		est := scn.EstimatedRounds[i]
		if len(est.Instance.Demand) != len(r.Instance.Demand) {
			t.Fatal("estimated demand vector length mismatch")
		}
		if len(est.Instance.Bids) != len(r.Instance.Bids) {
			t.Fatal("estimated rounds must share the bid structure")
		}
	}
	// β > 1 by default (Theorem 7 needs it): Θ_i > max |S_ij|.
	for b, theta := range scn.Capacity {
		for _, r := range scn.TrueRounds {
			for _, bid := range r.Instance.Bids {
				if bid.Bidder == b && len(bid.Covers) >= theta {
					t.Fatalf("bidder %d capacity %d not above cover size %d", b, theta, len(bid.Covers))
				}
			}
		}
	}
}

func TestOnlineScenarioDeterminism(t *testing.T) {
	a := Online(NewRand(9), OnlineConfig{Rounds: 3, Stage: InstanceConfig{Bidders: 8}})
	b := Online(NewRand(9), OnlineConfig{Rounds: 3, Stage: InstanceConfig{Bidders: 8}})
	for i := range a.TrueRounds {
		ia, ib := a.TrueRounds[i].Instance, b.TrueRounds[i].Instance
		if len(ia.Bids) != len(ib.Bids) {
			t.Fatal("same seed produced different bid counts")
		}
		for j := range ia.Bids {
			if ia.Bids[j].Price != ib.Bids[j].Price {
				t.Fatal("same seed produced different prices")
			}
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	scn := Online(NewRand(11), OnlineConfig{
		Rounds:          4,
		Stage:           InstanceConfig{Bidders: 6},
		WindowedArrival: true,
	})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, scn); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.TrueRounds) != 4 {
		t.Fatalf("rounds = %d", len(back.TrueRounds))
	}
	for i := range scn.TrueRounds {
		orig, got := scn.TrueRounds[i].Instance, back.TrueRounds[i].Instance
		if len(orig.Bids) != len(got.Bids) {
			t.Fatalf("round %d: bid count %d != %d", i, len(got.Bids), len(orig.Bids))
		}
		for j := range orig.Bids {
			if orig.Bids[j].Price != got.Bids[j].Price ||
				orig.Bids[j].Bidder != got.Bids[j].Bidder ||
				orig.Bids[j].Units != got.Bids[j].Units {
				t.Fatalf("round %d bid %d mismatch: %+v vs %+v", i, j, orig.Bids[j], got.Bids[j])
			}
		}
		estOrig := scn.EstimatedRounds[i].Instance.Demand
		estGot := back.EstimatedRounds[i].Instance.Demand
		for k := range estOrig {
			if estOrig[k] != estGot[k] {
				t.Fatalf("round %d estimated demand mismatch", i)
			}
		}
	}
	if len(back.Capacity) != len(scn.Capacity) || len(back.Windows) != len(scn.Windows) {
		t.Fatal("header round-trip lost capacity/windows")
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":    "hello\n",
		"wrong kind":  `{"kind":"other","version":1,"rounds":0}` + "\n",
		"bad version": `{"kind":"edgeauction-trace","version":99,"rounds":0}` + "\n",
		"round count": `{"kind":"edgeauction-trace","version":1,"rounds":3}` + "\n",
		"invalid bid": `{"kind":"edgeauction-trace","version":1,"rounds":1}` + "\n" +
			`{"t":1,"demand":[1],"bids":[{"bidder":1,"alt":0,"price":5,"covers":[7],"units":1}]}` + "\n",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(data)); err == nil {
				t.Fatal("want parse error")
			}
		})
	}
}

func TestTraceEstimatedDemandLengthMismatch(t *testing.T) {
	data := `{"kind":"edgeauction-trace","version":1,"rounds":1}` + "\n" +
		`{"t":1,"demand":[1],"estimated_demand":[1,2],"bids":[{"bidder":1,"alt":0,"price":5,"covers":[0],"units":1}]}` + "\n"
	if _, err := ReadTrace(strings.NewReader(data)); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestInstanceFileRoundTrip(t *testing.T) {
	ins := Instance(NewRand(13), InstanceConfig{Bidders: 8})
	var buf bytes.Buffer
	if err := WriteInstance(&buf, ins); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Bids) != len(ins.Bids) || back.NumNeedy() != ins.NumNeedy() {
		t.Fatal("instance round-trip lost structure")
	}
	for i := range ins.Bids {
		if ins.Bids[i].Price != back.Bids[i].Price || ins.Bids[i].Bidder != back.Bids[i].Bidder {
			t.Fatalf("bid %d mismatch", i)
		}
	}
}

func TestInstanceFileRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":   "nope",
		"wrong kind": `{"kind":"other","version":1,"demand":[1]}`,
		"version":    `{"kind":"edgeauction-instance","version":9,"demand":[1]}`,
		"invalid bid": `{"kind":"edgeauction-instance","version":1,"demand":[1],` +
			`"bids":[{"bidder":1,"alt":0,"price":5,"covers":[9],"units":1}]}`,
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadInstance(strings.NewReader(data)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}
