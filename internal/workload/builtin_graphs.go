package workload

import (
	"fmt"
	"sort"
)

// builtinGraphs are the named topologies the binaries and experiment
// sweeps accept without a YAML file. Each builder returns a fresh graph
// so callers may mutate the result.
var builtinGraphs = map[string]func() *ServiceGraph{
	// three-tier is the classic frontend → logic → storage chain, small
	// enough to pin as a golden trajectory.
	"three-tier": func() *ServiceGraph {
		return &ServiceGraph{
			Name: "three-tier",
			Services: []ServiceSpec{
				{Name: "frontend", Class: DelaySensitive, Cloud: 1, Work: 1500,
					Calls: []CallSpec{{To: "logic", Prob: 1}}},
				{Name: "logic", Class: DelaySensitive, Cloud: 1, Work: 2200, ErrorRate: 0.05,
					Calls: []CallSpec{{To: "storage", Prob: 0.8}}},
				{Name: "storage", Class: DelayTolerant, Cloud: 2, Work: 3000},
			},
			Entries: []EntrySpec{
				{Service: "frontend", Arrivals: ArrivalSpec{Process: ArrivalPoisson, Rate: 6}},
			},
		}
	},
	// overload concentrates a hot fan-in service with its callers on one
	// cloud: scaling the hot service's work starves it, and — through the
	// auction feedback — drains its colocated callers' fair shares. This
	// is the cascading-overload acceptance scenario.
	"overload": func() *ServiceGraph {
		return &ServiceGraph{
			Name: "overload",
			Services: []ServiceSpec{
				{Name: "api", Class: DelaySensitive, Cloud: 1, Work: 700,
					Calls: []CallSpec{{To: "hot", Prob: 1}}},
				{Name: "search", Class: DelaySensitive, Cloud: 1, Work: 700,
					Calls: []CallSpec{{To: "hot", Prob: 0.9}}},
				{Name: "feed", Class: DelayTolerant, Cloud: 1, Work: 600,
					Calls: []CallSpec{{To: "hot", Prob: 0.7}}},
				{Name: "hot", Class: DelaySensitive, Cloud: 1, Work: 800,
					Calls: []CallSpec{{To: "store", Prob: 0.5}}},
				{Name: "store", Class: DelayTolerant, Cloud: 2, Work: 1000},
				{Name: "batch", Class: DelayTolerant, Cloud: 2, Work: 1000},
			},
			Entries: []EntrySpec{
				{Service: "api", Arrivals: ArrivalSpec{Process: ArrivalOnOff, Rate: 5, Period: 6, Duty: 0.5}},
				{Service: "search", Arrivals: ArrivalSpec{Process: ArrivalPoisson, Rate: 4}},
				{Service: "feed", Arrivals: ArrivalSpec{Process: ArrivalDiurnal, Rate: 3, Period: 12}},
				{Service: "batch", Arrivals: ArrivalSpec{Process: ArrivalPoisson, Rate: 2}},
			},
		}
	},
	// spikes drives correlated flash crowds through a shared checkout
	// flow, so several needy microservices spike in the same rounds.
	"spikes": func() *ServiceGraph {
		return &ServiceGraph{
			Name: "spikes",
			Services: []ServiceSpec{
				{Name: "gateway", Class: DelaySensitive, Cloud: 1, Work: 800,
					Calls: []CallSpec{{To: "catalog", Prob: 1}}},
				{Name: "catalog", Class: DelaySensitive, Cloud: 1, Work: 900,
					Calls: []CallSpec{{To: "inventory", Prob: 0.6}}},
				{Name: "inventory", Class: DelayTolerant, Cloud: 2, Work: 1200},
				{Name: "cart", Class: DelaySensitive, Cloud: 1, Work: 1000},
				{Name: "payment", Class: DelaySensitive, Cloud: 2, Work: 1500, ErrorRate: 0.02},
			},
			Entries: []EntrySpec{
				{Service: "gateway", Arrivals: ArrivalSpec{Process: ArrivalFlash, Rate: 4, At: 5, Width: 2, Height: 4}},
			},
			Flows: []FlowSpec{
				{Name: "checkout", Steps: []string{"gateway", "cart", "payment"},
					Arrivals: ArrivalSpec{Process: ArrivalFlash, Rate: 2, At: 5, Width: 2, Height: 4}},
			},
		}
	},
	// frontier is a balanced mesh for capacity-frontier stress: load is
	// spread across clouds so shrinking capacity squeezes every service
	// at once instead of one hotspot.
	"frontier": func() *ServiceGraph {
		return &ServiceGraph{
			Name: "frontier",
			Services: []ServiceSpec{
				{Name: "ingress", Class: DelaySensitive, Cloud: 1, Work: 1200,
					Calls: []CallSpec{{To: "auth", Prob: 1}, {To: "media", Prob: 0.4}}},
				{Name: "auth", Class: DelaySensitive, Cloud: 1, Work: 1500,
					Calls: []CallSpec{{To: "profile", Prob: 0.7}}},
				{Name: "profile", Class: DelayTolerant, Cloud: 2, Work: 1800},
				{Name: "media", Class: DelayTolerant, Cloud: 3, Work: 2500},
				{Name: "analytics", Class: DelayTolerant, Cloud: 2, Work: 2000},
			},
			Entries: []EntrySpec{
				{Service: "ingress", Arrivals: ArrivalSpec{Process: ArrivalOnOff, Rate: 6, Period: 8, Duty: 0.5}},
				{Service: "analytics", Arrivals: ArrivalSpec{Process: ArrivalDiurnal, Rate: 3, Period: 16}},
			},
		}
	},
}

// BuiltinGraph returns a fresh copy of a named builtin topology.
func BuiltinGraph(name string) (*ServiceGraph, error) {
	build, ok := builtinGraphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown builtin topology %q (have %v)", ErrBadTopology, name, BuiltinGraphNames())
	}
	return build(), nil
}

// BuiltinGraphNames lists the builtin topology names, sorted.
func BuiltinGraphNames() []string {
	names := make([]string, 0, len(builtinGraphs))
	for name := range builtinGraphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
