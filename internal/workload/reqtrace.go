package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"edgeauction/internal/obs"
)

// Request-trace JSONL: the per-round entry-arrival counts of a workload
// run, exported by the simulator and re-importable in place of live
// arrival draws so recorded (or real) traces drive the same demand
// path. Format: a header line
//
//	{"kind":"edgeauction-request-trace","version":1,"name":...,
//	 "services":[...],"rounds":N}
//
// followed by one line per round:
//
//	{"t":1,"counts":[...]}
//
// with counts[i] the external arrivals injected at services[i] in round
// t (1-based, sequential). Torn final lines — a crash mid-append —
// return the complete prefix plus obs.ErrTruncated, matching the
// WAL/audit convention; malformed records before the end are corruption
// and hard-error with ErrBadRequestTrace.

// ErrBadRequestTrace reports a malformed request-trace stream.
var ErrBadRequestTrace = errors.New("workload: malformed request trace")

const (
	reqTraceKind    = "edgeauction-request-trace"
	reqTraceVersion = 1
)

// RequestTrace is a recorded per-round arrival schedule.
type RequestTrace struct {
	// Name labels the originating topology.
	Name string `json:"name"`
	// Services are the service names, fixing the order of counts.
	Services []string `json:"services"`
	// Rounds are the per-round arrival counts, in round order.
	Rounds []RoundArrivals `json:"rounds"`
}

// RoundArrivals is one round's external arrivals per service.
type RoundArrivals struct {
	// T is the 1-based round index.
	T int `json:"t"`
	// Counts has one entry per trace service.
	Counts []int `json:"counts"`
}

type reqTraceHeader struct {
	Kind     string   `json:"kind"`
	Version  int      `json:"version"`
	Name     string   `json:"name"`
	Services []string `json:"services"`
	Rounds   int      `json:"rounds"`
}

// WriteRequestTrace writes the trace as JSONL.
func WriteRequestTrace(w io.Writer, tr *RequestTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := reqTraceHeader{
		Kind:     reqTraceKind,
		Version:  reqTraceVersion,
		Name:     tr.Name,
		Services: tr.Services,
		Rounds:   len(tr.Rounds),
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, r := range tr.Rounds {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRequestTraceFile writes the trace to a file.
func WriteRequestTraceFile(path string, tr *RequestTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteRequestTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadRequestTrace reads a JSONL request trace. A torn final line
// returns the complete prefix plus an error wrapping obs.ErrTruncated;
// any earlier malformed record, a bad header, non-sequential rounds, or
// a count vector of the wrong length is corruption and returns
// ErrBadRequestTrace.
func ReadRequestTrace(r io.Reader) (*RequestTrace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := bytes.Split(data, []byte("\n"))
	// A trailing newline leaves one empty final element; drop it so the
	// last non-empty line is the candidate torn record.
	if len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrBadRequestTrace)
	}

	var hdr reqTraceHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		if len(lines) == 1 {
			return nil, fmt.Errorf("request trace header: %w", obs.ErrTruncated)
		}
		return nil, fmt.Errorf("%w: bad header: %v", ErrBadRequestTrace, err)
	}
	if hdr.Kind != reqTraceKind {
		return nil, fmt.Errorf("%w: kind %q, want %q", ErrBadRequestTrace, hdr.Kind, reqTraceKind)
	}
	if hdr.Version != reqTraceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadRequestTrace, hdr.Version)
	}
	tr := &RequestTrace{Name: hdr.Name, Services: hdr.Services}

	for i, line := range lines[1:] {
		var rec RoundArrivals
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-2 { // final line: torn append, not corruption
				return tr, fmt.Errorf("request trace round %d: %w", i+1, obs.ErrTruncated)
			}
			return nil, fmt.Errorf("%w: round record %d: %v", ErrBadRequestTrace, i+1, err)
		}
		if rec.T != i+1 {
			return nil, fmt.Errorf("%w: round record %d has t=%d, want %d", ErrBadRequestTrace, i+1, rec.T, i+1)
		}
		if len(rec.Counts) != len(hdr.Services) {
			return nil, fmt.Errorf("%w: round %d has %d counts for %d services", ErrBadRequestTrace, rec.T, len(rec.Counts), len(hdr.Services))
		}
		for _, c := range rec.Counts {
			if c < 0 {
				return nil, fmt.Errorf("%w: round %d has a negative count", ErrBadRequestTrace, rec.T)
			}
		}
		tr.Rounds = append(tr.Rounds, rec)
	}
	if len(tr.Rounds) < hdr.Rounds {
		// Whole trailing records missing: still a torn tail — the prefix
		// is intact and usable.
		return tr, fmt.Errorf("request trace: %d of %d rounds present: %w", len(tr.Rounds), hdr.Rounds, obs.ErrTruncated)
	}
	if len(tr.Rounds) > hdr.Rounds {
		return nil, fmt.Errorf("%w: %d round records but header declares %d", ErrBadRequestTrace, len(tr.Rounds), hdr.Rounds)
	}
	return tr, nil
}

// ReadRequestTraceFile reads a JSONL request trace from a file.
func ReadRequestTraceFile(path string) (*RequestTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRequestTrace(f)
}
