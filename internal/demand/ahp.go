package demand

import (
	"fmt"
	"math"
)

// This file implements the Analytic Hierarchy Process (AHP, Saaty 1987,
// reference [18] of the paper) used to derive the scaling factors of the
// demand indicator function from pairwise importance judgements: build the
// reciprocal comparison matrix, extract its principal eigenvector by power
// iteration, and validate the judgements via the consistency ratio.

// Criterion indexes the three demand indicators in comparison matrices.
type Criterion int

const (
	// CriterionWaiting is the request waiting time indicator γ.
	CriterionWaiting Criterion = iota
	// CriterionProcessing is the request processing time indicator ℝ.
	CriterionProcessing
	// CriterionRate is the request rate indicator 𝕋.
	CriterionRate
	numCriteria
)

// Comparisons is a pairwise importance matrix on Saaty's 1-9 scale:
// entry [i][j] states how much more important criterion i is than j
// (1 = equal, 3 = moderate, 5 = strong, 7 = very strong, 9 = extreme;
// reciprocals for the inverse judgement). The matrix must be positive and
// reciprocal: m[j][i] = 1/m[i][j], m[i][i] = 1.
type Comparisons [numCriteria][numCriteria]float64

// DefaultComparisons returns the judgement matrix used throughout the
// reproduction: request rate moderately dominates waiting time (3) and
// waiting time moderately dominates processing time (2), reflecting the
// paper's intuition that the request rate is the primary load signal.
func DefaultComparisons() Comparisons {
	return Comparisons{
		//               waiting  processing  rate
		{1, 2, 1.0 / 3},       // waiting
		{1.0 / 2, 1, 1.0 / 5}, // processing
		{3, 5, 1},             // rate
	}
}

// Validate checks positivity and reciprocity.
func (c Comparisons) Validate() error {
	const tol = 1e-9
	for i := 0; i < int(numCriteria); i++ {
		if math.Abs(c[i][i]-1) > tol {
			return fmt.Errorf("demand: comparison diagonal [%d][%d] must be 1, got %v", i, i, c[i][i])
		}
		for j := 0; j < int(numCriteria); j++ {
			if !(c[i][j] > 0) {
				return fmt.Errorf("demand: comparison [%d][%d] must be positive, got %v", i, j, c[i][j])
			}
			if math.Abs(c[i][j]*c[j][i]-1) > 1e-6 {
				return fmt.Errorf("demand: comparisons not reciprocal at [%d][%d]: %v * %v != 1",
					i, j, c[i][j], c[j][i])
			}
		}
	}
	return nil
}

// randomIndex is Saaty's average random consistency index RI for matrices
// of order 1..10 (order-indexed; RI[n] for an n×n matrix).
var randomIndex = [...]float64{0, 0, 0, 0.58, 0.90, 1.12, 1.24, 1.32, 1.41, 1.45, 1.49}

// ConsistencyThreshold is the maximum acceptable consistency ratio; Saaty
// recommends 0.1.
const ConsistencyThreshold = 0.1

// AHPResult carries the derived priorities and consistency diagnostics.
type AHPResult struct {
	// Priorities is the normalized principal eigenvector (sums to 1).
	Priorities [numCriteria]float64
	// LambdaMax is the principal eigenvalue.
	LambdaMax float64
	// ConsistencyIndex is (λmax − n)/(n − 1).
	ConsistencyIndex float64
	// ConsistencyRatio is CI/RI; judgements with CR > 0.1 are considered
	// too inconsistent to use.
	ConsistencyRatio float64
}

// Analyze extracts the principal eigenvector of the comparison matrix by
// power iteration and computes the consistency diagnostics.
func Analyze(c Comparisons) (*AHPResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := int(numCriteria)
	v := [numCriteria]float64{}
	for i := range v {
		v[i] = 1 / float64(n)
	}
	var lambda float64
	for iter := 0; iter < 1000; iter++ {
		var next [numCriteria]float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[i] += c[i][j] * v[j]
			}
		}
		var sum float64
		for _, x := range next {
			sum += x
		}
		for i := range next {
			next[i] /= sum
		}
		// λmax estimate: mean of component-wise Rayleigh quotients.
		var l float64
		for i := 0; i < n; i++ {
			var av float64
			for j := 0; j < n; j++ {
				av += c[i][j] * next[j]
			}
			l += av / next[i]
		}
		l /= float64(n)
		converged := math.Abs(l-lambda) < 1e-12
		lambda = l
		v = next
		if converged {
			break
		}
	}
	res := &AHPResult{Priorities: v, LambdaMax: lambda}
	res.ConsistencyIndex = (lambda - float64(n)) / float64(n-1)
	if ri := randomIndex[n]; ri > 0 {
		res.ConsistencyRatio = res.ConsistencyIndex / ri
	}
	return res, nil
}

// Derive runs AHP on the comparison matrix and returns the indicator
// weights, rejecting judgement matrices whose consistency ratio exceeds
// Saaty's 0.1 threshold.
func Derive(c Comparisons) (Weights, error) {
	res, err := Analyze(c)
	if err != nil {
		return Weights{}, err
	}
	if res.ConsistencyRatio > ConsistencyThreshold {
		return Weights{}, fmt.Errorf("demand: comparison matrix too inconsistent: CR %.3f > %.1f",
			res.ConsistencyRatio, ConsistencyThreshold)
	}
	return Weights{
		Waiting:    res.Priorities[CriterionWaiting],
		Processing: res.Priorities[CriterionProcessing],
		Rate:       res.Priorities[CriterionRate],
	}, nil
}
