// Package demand implements the microservice demand estimation scheme of
// §III: the residual resource demand X_i^t of a microservice is a weighted
// combination of three observable indicators — request waiting time,
// request processing (execution) time, and request rate — with the weights
// derived by the Analytic Hierarchy Process (AHP, Saaty 1987) as the paper
// prescribes.
package demand

import (
	"fmt"
	"math"
)

// Indicators is one round's observation of a microservice, as collected by
// the simulator (internal/sim) or a real platform.
type Indicators struct {
	// ServedResponses is θ_i, the number of served responses this round.
	ServedResponses int
	// ReceivedResponses is π_i, the number of responses received (requests
	// admitted) this round.
	ReceivedResponses int
	// NeededRate is ς_i, the processing rate the microservice needs to
	// finish requests within their expected time (requests per unit time).
	NeededRate float64
	// AchievedRate is ϖ_i, the processing rate actually achieved.
	AchievedRate float64
	// Allocated is a_i^t, the resources the fair-share policy granted this
	// round.
	Allocated float64
	// MaxAllocated is a_max, the largest allocation among colocated
	// microservices this round.
	MaxAllocated float64
	// ExecutionRate is 𝕃_i^t ∈ [0, 1), the fraction of the round the
	// microservice spent executing (its utilization).
	ExecutionRate float64
	// NeighborDensity is 𝒱(n̄), the density of neighbouring microservices
	// served by the same edge cloud.
	NeighborDensity float64
	// Round is t, the 1-based round index.
	Round int
}

// Weights holds the scaling factors 1/w_γ, 1/w_ℝ, 1/w_𝕋 of Eq. (1),
// expressed directly as the multiplicative weights applied to each
// indicator. Derive them with AHP (see Derive) or supply them manually.
type Weights struct {
	Waiting    float64 // applied to γ_i^t
	Processing float64 // applied to ℝ_i^t
	Rate       float64 // applied to 𝕋_i^t
}

// Uniform returns equal weights (the no-AHP baseline used in the
// estimator-ablation benchmark).
func Uniform() Weights { return Weights{Waiting: 1.0 / 3, Processing: 1.0 / 3, Rate: 1.0 / 3} }

// Validate rejects non-positive or non-finite weights.
func (w Weights) Validate() error {
	for _, v := range []float64{w.Waiting, w.Processing, w.Rate} {
		if !(v > 0) || math.IsInf(v, 0) {
			return fmt.Errorf("demand: weights must be positive and finite, got %+v", w)
		}
	}
	return nil
}

// Estimator computes Eq. (1)-(2) demand estimates. The zero value is not
// usable; construct with NewEstimator.
type Estimator struct {
	weights Weights
	// zeta is ζ, the waiting-time coefficient.
	zeta float64
	// delta is Δ, the request-rate coefficient.
	delta float64
}

// Config parameterizes an Estimator.
type Config struct {
	// Weights are the indicator weights; zero value means AHP-derived
	// defaults (see DefaultComparisons).
	Weights Weights
	// Zeta is ζ; zero means 1.
	Zeta float64
	// Delta is Δ; zero means 1.
	Delta float64
}

// NewEstimator builds an estimator, deriving AHP default weights when none
// are supplied.
func NewEstimator(cfg Config) (*Estimator, error) {
	w := cfg.Weights
	if w == (Weights{}) {
		derived, err := Derive(DefaultComparisons())
		if err != nil {
			return nil, fmt.Errorf("demand: derive default weights: %w", err)
		}
		w = derived
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	e := &Estimator{weights: w, zeta: cfg.Zeta, delta: cfg.Delta}
	if e.zeta == 0 {
		e.zeta = 1
	}
	if e.delta == 0 {
		e.delta = 1
	}
	return e, nil
}

// Weights returns the estimator's indicator weights.
func (e *Estimator) Weights() Weights { return e.weights }

// WaitingFactor computes γ_i^t = ζ·θ_i/π_i: the completion-progress proxy
// for waiting time. With no received responses it returns 0 (nothing
// observed, no pressure).
func (e *Estimator) WaitingFactor(in Indicators) float64 {
	if in.ReceivedResponses <= 0 {
		return 0
	}
	return e.zeta * float64(in.ServedResponses) / float64(in.ReceivedResponses)
}

// ProcessingFactor computes ℝ_i^t = (ς_i − ϖ_i)/t: the long-term
// time-averaged processing-rate deficit. Negative deficits (the service is
// faster than needed) clamp to 0 — an over-provisioned microservice adds no
// demand.
func (e *Estimator) ProcessingFactor(in Indicators) float64 {
	t := in.Round
	if t < 1 {
		t = 1
	}
	deficit := in.NeededRate - in.AchievedRate
	if deficit < 0 {
		deficit = 0
	}
	return deficit / float64(t)
}

// RateFactor computes Eq. (2):
//
//	𝕋_i^t = Δ · (a_i^t/a_max) · (𝕃_i^t · t / 𝒱(n̄)) · 1/(1 − 𝕃_i^t)
//
// ExecutionRate is clamped into [0, 1−1e-6] so the utilization pole stays
// finite, and missing normalizers default to 1.
func (e *Estimator) RateFactor(in Indicators) float64 {
	amax := in.MaxAllocated
	if amax <= 0 {
		amax = 1
	}
	dens := in.NeighborDensity
	if dens <= 0 {
		dens = 1
	}
	t := in.Round
	if t < 1 {
		t = 1
	}
	l := in.ExecutionRate
	if l < 0 {
		l = 0
	}
	if l > 1-1e-6 {
		l = 1 - 1e-6
	}
	return e.delta * (in.Allocated / amax) * (l * float64(t) / dens) / (1 - l)
}

// Estimate computes X_i^t per Eq. (1): the weighted combination of the
// three factors. The result is non-negative.
func (e *Estimator) Estimate(in Indicators) float64 {
	x := e.weights.Waiting*e.WaitingFactor(in) +
		e.weights.Processing*e.ProcessingFactor(in) +
		e.weights.Rate*e.RateFactor(in)
	if x < 0 {
		return 0
	}
	return x
}

// EstimateUnits converts the continuous estimate into the integer coverage
// demand used by the winner selection ILP, scaling by unitsPerDemand and
// rounding half-up.
func (e *Estimator) EstimateUnits(in Indicators, unitsPerDemand float64) int {
	u := int(e.Estimate(in)*unitsPerDemand + 0.5)
	if u < 0 {
		return 0
	}
	return u
}
