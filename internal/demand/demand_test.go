package demand

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestEstimator(t *testing.T) *Estimator {
	t.Helper()
	e, err := NewEstimator(Config{})
	if err != nil {
		t.Fatalf("NewEstimator: %v", err)
	}
	return e
}

func baseIndicators() Indicators {
	return Indicators{
		ServedResponses:   40,
		ReceivedResponses: 50,
		NeededRate:        0.02,
		AchievedRate:      0.01,
		Allocated:         30,
		MaxAllocated:      50,
		ExecutionRate:     0.6,
		NeighborDensity:   3,
		Round:             5,
	}
}

func TestEstimateNonNegative(t *testing.T) {
	e := newTestEstimator(t)
	f := func(served, received uint8, needed, achieved, alloc, util float64) bool {
		in := Indicators{
			ServedResponses:   int(served),
			ReceivedResponses: int(received),
			NeededRate:        math.Mod(math.Abs(needed), 100),
			AchievedRate:      math.Mod(math.Abs(achieved), 100),
			Allocated:         math.Mod(math.Abs(alloc), 1000),
			MaxAllocated:      50,
			ExecutionRate:     math.Mod(math.Abs(util), 1.5), // may exceed 1: clamped
			NeighborDensity:   2,
			Round:             3,
		}
		x := e.Estimate(in)
		return x >= 0 && !math.IsNaN(x) && !math.IsInf(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRateFactorMonotoneInUtilization(t *testing.T) {
	e := newTestEstimator(t)
	in := baseIndicators()
	prev := -1.0
	for _, util := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		in.ExecutionRate = util
		x := e.RateFactor(in)
		if x <= prev {
			t.Fatalf("rate factor not increasing at util %v: %v <= %v", util, x, prev)
		}
		prev = x
	}
}

func TestRateFactorPoleIsClamped(t *testing.T) {
	e := newTestEstimator(t)
	in := baseIndicators()
	in.ExecutionRate = 1.0 // would divide by zero without clamping
	if x := e.RateFactor(in); math.IsInf(x, 0) || math.IsNaN(x) {
		t.Fatalf("utilization pole not clamped: %v", x)
	}
	in.ExecutionRate = -0.5
	if x := e.RateFactor(in); x != 0 {
		t.Fatalf("negative utilization should clamp to 0 factor, got %v", x)
	}
}

func TestProcessingFactorClampsNegativeDeficit(t *testing.T) {
	e := newTestEstimator(t)
	in := baseIndicators()
	in.NeededRate, in.AchievedRate = 0.01, 0.05 // over-provisioned
	if x := e.ProcessingFactor(in); x != 0 {
		t.Fatalf("over-provisioned service must add no demand, got %v", x)
	}
	in.NeededRate, in.AchievedRate = 0.05, 0.01
	want := (0.05 - 0.01) / 5
	if x := e.ProcessingFactor(in); math.Abs(x-want) > 1e-12 {
		t.Fatalf("processing factor = %v, want %v", x, want)
	}
}

func TestWaitingFactorHandlesZeroReceived(t *testing.T) {
	e := newTestEstimator(t)
	in := baseIndicators()
	in.ReceivedResponses = 0
	if x := e.WaitingFactor(in); x != 0 {
		t.Fatalf("no responses should yield 0 waiting factor, got %v", x)
	}
}

func TestEstimateUnitsRounding(t *testing.T) {
	e := newTestEstimator(t)
	in := baseIndicators()
	x := e.Estimate(in)
	if x <= 0 {
		t.Fatalf("expected positive estimate, got %v", x)
	}
	units := e.EstimateUnits(in, 1)
	if units != int(x+0.5) {
		t.Fatalf("units = %d, want round(%v)", units, x)
	}
	if e.EstimateUnits(in, 0) != 0 {
		t.Fatal("zero scale must give zero units")
	}
}

func TestNewEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(Config{Weights: Weights{Waiting: -1, Processing: 1, Rate: 1}}); err == nil {
		t.Fatal("negative weight must be rejected")
	}
	if _, err := NewEstimator(Config{Weights: Weights{Waiting: math.Inf(1), Processing: 1, Rate: 1}}); err == nil {
		t.Fatal("infinite weight must be rejected")
	}
	e, err := NewEstimator(Config{Weights: Uniform()})
	if err != nil {
		t.Fatal(err)
	}
	if w := e.Weights(); math.Abs(w.Waiting+w.Processing+w.Rate-1) > 1e-12 {
		t.Fatalf("uniform weights must sum to 1: %+v", w)
	}
}

func TestDefaultWeightsComeFromAHP(t *testing.T) {
	e := newTestEstimator(t)
	w := e.Weights()
	if math.Abs(w.Waiting+w.Processing+w.Rate-1) > 1e-9 {
		t.Fatalf("AHP priorities must sum to 1: %+v", w)
	}
	// The default judgements rank rate > waiting > processing.
	if !(w.Rate > w.Waiting && w.Waiting > w.Processing) {
		t.Fatalf("priority ordering violated: %+v", w)
	}
}

func TestAHPConsistencyOfDefaults(t *testing.T) {
	res, err := Analyze(DefaultComparisons())
	if err != nil {
		t.Fatal(err)
	}
	if res.ConsistencyRatio > ConsistencyThreshold {
		t.Fatalf("default judgements inconsistent: CR = %v", res.ConsistencyRatio)
	}
	if res.LambdaMax < 3 {
		t.Fatalf("λmax = %v below matrix order", res.LambdaMax)
	}
}

func TestAHPPerfectlyConsistentMatrix(t *testing.T) {
	// Weights (6, 3, 1) normalized -> a perfectly consistent matrix with
	// CR = 0 and λmax = n.
	c := Comparisons{
		{1, 2, 6},
		{0.5, 1, 3},
		{1.0 / 6, 1.0 / 3, 1},
	}
	res, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LambdaMax-3) > 1e-9 {
		t.Fatalf("λmax = %v, want 3", res.LambdaMax)
	}
	if math.Abs(res.ConsistencyRatio) > 1e-9 {
		t.Fatalf("CR = %v, want 0", res.ConsistencyRatio)
	}
	want := [3]float64{0.6, 0.3, 0.1}
	for i, p := range res.Priorities {
		if math.Abs(p-want[i]) > 1e-9 {
			t.Fatalf("priorities = %v, want %v", res.Priorities, want)
		}
	}
}

func TestAHPRejectsMalformedMatrices(t *testing.T) {
	bad := DefaultComparisons()
	bad[0][1] = 5 // breaks reciprocity with bad[1][0] = 1/2
	if _, err := Analyze(bad); err == nil {
		t.Fatal("non-reciprocal matrix must be rejected")
	}
	bad = DefaultComparisons()
	bad[1][1] = 2
	if _, err := Analyze(bad); err == nil {
		t.Fatal("non-unit diagonal must be rejected")
	}
	bad = DefaultComparisons()
	bad[0][2] = -1
	bad[2][0] = -1
	if _, err := Analyze(bad); err == nil {
		t.Fatal("non-positive entries must be rejected")
	}
}

func TestDeriveRejectsInconsistentJudgements(t *testing.T) {
	// A strongly cyclic preference: a>b (9), b>c (9), c>a (9).
	c := Comparisons{
		{1, 9, 1.0 / 9},
		{1.0 / 9, 1, 9},
		{9, 1.0 / 9, 1},
	}
	if _, err := Derive(c); err == nil {
		t.Fatal("cyclic judgements must fail the consistency check")
	}
}

func TestEstimatorCoefficients(t *testing.T) {
	base, err := NewEstimator(Config{Weights: Uniform(), Zeta: 1, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := NewEstimator(Config{Weights: Uniform(), Zeta: 2, Delta: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := baseIndicators()
	if got, want := scaled.WaitingFactor(in), 2*base.WaitingFactor(in); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ζ scaling broken: %v vs %v", got, want)
	}
	if got, want := scaled.RateFactor(in), 3*base.RateFactor(in); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Δ scaling broken: %v vs %v", got, want)
	}
}
