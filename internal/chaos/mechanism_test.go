package chaos

import (
	"bytes"
	"sync"
	"testing"

	"edgeauction/internal/core"
)

// This file proves the per-mechanism auditor generalization both ways:
// honest non-SSAM mechanisms run violation-free through the full platform
// (positive), and deliberately broken mechanisms trip exactly the
// universal invariants that are supposed to catch them (negative). The
// broken mechanisms are registered under test-only names so the real
// registry entries stay clean.

var registerTestMechanisms sync.Once

func testMechanisms() {
	registerTestMechanisms.Do(func() {
		// toy-undercut pays winners 90% of their reported price: a direct
		// individual-rationality violation on every feasible round.
		core.RegisterMechanism("toy-undercut", func(core.MechanismSpec) (core.Mechanism, error) {
			return undercutMechanism{}, nil
		})
		// rigged-da is the real double auction with a settlement reporter
		// that over-reports penalty income past the configured rate bound.
		core.RegisterMechanism("rigged-da", func(spec core.MechanismSpec) (core.Mechanism, error) {
			var cfg core.DoubleAuctionConfig
			if spec.DoubleAuction != nil {
				cfg = *spec.DoubleAuction
			}
			return riggedDA{core.NewDoubleAuction(cfg)}, nil
		})
	})
}

type undercutMechanism struct{}

func (undercutMechanism) Name() string { return "toy-undercut" }

func (undercutMechanism) Clear(ins *core.Instance, opts core.Options) (*core.Outcome, error) {
	out, err := core.SSAM(ins, opts)
	if err != nil {
		return nil, err
	}
	out.Dual = nil // no certificate promise
	for _, w := range out.Winners {
		out.Payments[w] = 0.9 * ins.Bids[w].Price
	}
	return out, nil
}

type riggedDA struct {
	*core.DoubleAuction
}

func (r riggedDA) Name() string { return "rigged-da" }

// LastSettlement over-reports penalties by a flat 1.0 — above the
// PenaltyRate × defaulted-value bound even on rounds with no defaults.
func (r riggedDA) LastSettlement() *core.Settlement {
	st := r.DoubleAuction.LastSettlement()
	if st == nil {
		return nil
	}
	rig := *st
	rig.Penalties += 1
	return &rig
}

// mechScenario is a small all-feasible scenario cleared through spec.
func mechScenario(name string, spec core.MechanismSpec) *Scenario {
	return New(name).
		WithSeed(11).
		WithRounds(8).
		WithDeadline(25).
		WithAgents(6, 0).
		WithDemand(DemandSpec{NeedyLo: 2, NeedyHi: 2, DemandLo: 1, DemandHi: 1}).
		WithMechanism(spec)
}

// TestDoubleAuctionScenarioClean: the honest double auction must survive
// the full platform + auditor without a single violation, with the
// penalty-bound invariant actually exercised and the SSAM-only
// certificate/critical-value checks switched off.
func TestDoubleAuctionScenarioClean(t *testing.T) {
	var log bytes.Buffer
	res, err := Run(Config{
		Scenario: mechScenario("da-clean", core.MechanismSpec{Name: core.NameDoubleAuction}),
		AuditLog: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("honest double auction flagged: %v", res.Violations)
	}
	if res.Rounds != 8 {
		t.Fatalf("audited %d rounds, want 8", res.Rounds)
	}
	if res.Checks == 0 {
		t.Fatal("no checks ran")
	}
}

// TestPostedPriceScenarioClean: same for the posted-price mechanism. Its
// strict no-escalation rule may drop rounds as infeasible; dropped rounds
// must still audit clean.
func TestPostedPriceScenarioClean(t *testing.T) {
	res, err := Run(Config{
		Scenario: mechScenario("pp-clean", core.MechanismSpec{Name: core.NamePostedPrice}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("honest posted price flagged: %v", res.Violations)
	}
}

// TestUndercutMechanismTripsIR: a mechanism paying below the report must
// be flagged by the universal individual-rationality invariant — the
// negative control proving the generalized auditor still bites.
func TestUndercutMechanismTripsIR(t *testing.T) {
	testMechanisms()
	res, err := Run(Config{
		Scenario: mechScenario("toy-ir", core.MechanismSpec{Name: "toy-undercut"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("undercutting mechanism went unnoticed")
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == "individual-rationality" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no individual-rationality violation among %v", res.Violations)
	}
}

// TestRiggedSettlementTripsPenaltyBound: a settlement reporter whose
// penalty income exceeds the rate bound must trip the per-mechanism
// penalty-bound invariant.
func TestRiggedSettlementTripsPenaltyBound(t *testing.T) {
	testMechanisms()
	res, err := Run(Config{
		Scenario: mechScenario("rigged-da", core.MechanismSpec{Name: "rigged-da"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("rigged settlement went unnoticed")
	}
	for _, v := range res.Violations {
		if v.Invariant != "penalty-bound" {
			t.Fatalf("unexpected invariant %q (want only penalty-bound): %v", v.Invariant, v)
		}
	}
}

// TestMechanismScenarioDeterministic: two runs of a non-SSAM scenario
// must still produce byte-identical audit logs — mechanism dispatch must
// not leak nondeterminism into the soak gate.
func TestMechanismScenarioDeterministic(t *testing.T) {
	var logs [2]bytes.Buffer
	for i := range logs {
		res, err := Run(Config{
			Scenario: mechScenario("da-det", core.MechanismSpec{Name: core.NameDoubleAuction}),
			AuditLog: &logs[i],
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("run %d: %v", i, res.Violations)
		}
	}
	if logs[0].Len() == 0 || !bytes.Equal(logs[0].Bytes(), logs[1].Bytes()) {
		t.Fatalf("audit logs differ between identical double-auction runs:\n%s",
			firstDiff(logs[0].String(), logs[1].String()))
	}
}

// TestScenarioMechanismValidation: a scenario naming an unknown or
// unresolvable mechanism must fail validation before anything starts.
func TestScenarioMechanismValidation(t *testing.T) {
	sc := mechScenario("bad-mech", core.MechanismSpec{Name: "no-such-mechanism"})
	if err := sc.Validate(); err == nil {
		t.Fatal("unknown mechanism passed scenario validation")
	}
	sc2 := mechScenario("bad-budget", core.MechanismSpec{Name: core.NameBudgetedSSAM})
	if err := sc2.Validate(); err == nil {
		t.Fatal("unresolvable budgeted-ssam spec passed scenario validation")
	}
}
