package chaos

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"edgeauction/internal/core"
	"edgeauction/internal/obs"
	"edgeauction/internal/platform"
)

// crashTestScenario is a small, tight-capacity scenario whose ψ state is
// non-trivial by mid-run, so recovery has real dual state to reproduce.
func crashTestScenario(name string) *Scenario {
	return New(name).
		WithSeed(19).
		WithRounds(14).
		WithDeadline(40).
		WithAgents(4, 30).
		WithDemand(DemandSpec{NeedyLo: 2, NeedyHi: 3, DemandLo: 1, DemandHi: 2, SpikeEvery: 5, SpikeFactor: 2})
}

// TestCrashPointMatrix kills the platform at each scripted crash site in
// turn and asserts the recovered run is byte-identical to an
// uninterrupted one: same final ψ/χ state hash, same OnlineSummary, same
// WAL bytes.
func TestCrashPointMatrix(t *testing.T) {
	t.Parallel()
	points := []string{platform.CrashMidGather, platform.CrashPreAnnounce, platform.CrashPostAnnounce}
	for _, point := range points {
		point := point
		t.Run(point, func(t *testing.T) {
			t.Parallel()
			sc := crashTestScenario("matrix-"+point).CrashPlatformAt(7, point)
			res, err := RunCrash(CrashConfig{Scenario: sc, Dir: t.TempDir()})
			if err != nil {
				t.Fatalf("RunCrash: %v", err)
			}
			if res.Crashes != 1 || res.Recoveries != 1 {
				t.Errorf("crashes=%d recoveries=%d, want 1/1", res.Crashes, res.Recoveries)
			}
			assertCrashMatch(t, res)
		})
	}
}

// TestCrashFinalRound kills the platform in the very last round after the
// WAL append: the recovered state alone (no further rounds) must match
// the baseline.
func TestCrashFinalRound(t *testing.T) {
	t.Parallel()
	sc := crashTestScenario("final").CrashPlatformAt(14, platform.CrashPostAnnounce)
	res, err := RunCrash(CrashConfig{Scenario: sc, Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	assertCrashMatch(t, res)
}

// TestCrashWithSnapshots checkpoints every 4 rounds, so the second
// crash's recovery replays only a WAL suffix — and still lands on the
// exact state.
func TestCrashWithSnapshots(t *testing.T) {
	t.Parallel()
	sc := crashTestScenario("snap").
		CrashPlatformAt(6, platform.CrashPreAnnounce).
		CrashPlatformAt(11, platform.CrashMidGather)
	res, err := RunCrash(CrashConfig{Scenario: sc, Dir: t.TempDir(), SnapshotEvery: 4})
	if err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	if res.Snapshots == 0 {
		t.Fatalf("pass wrote no snapshots")
	}
	// The round-11 crash recovers from a snapshot at round 8 or later, so
	// it must NOT have replayed the whole 10-record prefix.
	if res.Replayed >= 10+5 {
		t.Errorf("replayed %d records; snapshots should have cut the suffix", res.Replayed)
	}
	assertCrashMatch(t, res)
}

func assertCrashMatch(t *testing.T, res *CrashResult) {
	t.Helper()
	if !res.WALMatch {
		t.Errorf("WALs differ between baseline and crashed pass")
	}
	if res.BaselineHash != res.RecoveredHash {
		t.Errorf("state hash diverged: baseline %s, recovered %s", res.BaselineHash, res.RecoveredHash)
	}
	if res.BaselineSummary == nil || res.RecoveredSummary == nil {
		t.Fatalf("missing summary: baseline %v, recovered %v", res.BaselineSummary, res.RecoveredSummary)
	}
	if *res.BaselineSummary != *res.RecoveredSummary {
		t.Errorf("summary diverged: baseline %+v, recovered %+v", *res.BaselineSummary, *res.RecoveredSummary)
	}
	if !res.Match {
		t.Errorf("overall Match=false: %+v", res)
	}
}

// TestRecoverTornTail crash-cuts a WAL mid-record and asserts recovery
// uses the complete prefix, reports Truncated, and resumes at the right
// round.
func TestRecoverTornTail(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	sc := crashTestScenario("torn")
	walPath := filepath.Join(dir, "run.wal")
	if _, err := RunCrash(CrashConfig{Scenario: sc, Dir: dir}); err != nil {
		t.Fatalf("RunCrash: %v", err)
	}
	// Use the baseline WAL as the donor log.
	data, err := os.ReadFile(filepath.Join(dir, "baseline.wal"))
	if err != nil {
		t.Fatalf("read WAL: %v", err)
	}
	recs, err := platform.ReadAudit(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadAudit on intact WAL: %v", err)
	}
	if len(recs) != sc.Rounds {
		t.Fatalf("intact WAL has %d records, want %d", len(recs), sc.Rounds)
	}
	// Cut the final record in half, as a crash mid-write would.
	cut := data[:len(data)-40]
	if err := os.WriteFile(walPath, cut, 0o644); err != nil {
		t.Fatalf("write torn WAL: %v", err)
	}
	rec, err := platform.Recover(walPath, "", core.MSOAConfig{Options: core.Options{Parallelism: 1}})
	if err != nil {
		t.Fatalf("Recover on torn WAL: %v", err)
	}
	if !rec.Truncated {
		t.Errorf("recovery did not flag the torn tail")
	}
	if rec.Replayed != sc.Rounds-1 {
		t.Errorf("replayed %d records, want %d (complete prefix)", rec.Replayed, sc.Rounds-1)
	}
	if rec.NextRound != sc.Rounds {
		t.Errorf("NextRound %d, want %d (the torn round reruns)", rec.NextRound, sc.Rounds)
	}
	// The torn record must have been recovered as ErrTruncated, not a
	// hard failure, by the underlying reader too.
	if _, rerr := platform.ReadAudit(bytes.NewReader(cut)); !errors.Is(rerr, obs.ErrTruncated) {
		t.Errorf("ReadAudit on torn WAL: %v, want ErrTruncated", rerr)
	}
}

// TestRecoverEmptyAndMissingWAL: recovery from nothing is a fresh start.
func TestRecoverEmptyAndMissingWAL(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := core.MSOAConfig{Options: core.Options{Parallelism: 1}}

	rec, err := platform.Recover(filepath.Join(dir, "missing.wal"), "", cfg)
	if err != nil {
		t.Fatalf("Recover with missing WAL: %v", err)
	}
	if rec.NextRound != 1 || rec.Replayed != 0 || rec.Truncated {
		t.Errorf("missing WAL: %+v, want fresh start at round 1", rec)
	}

	empty := filepath.Join(dir, "empty.wal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err = platform.Recover(empty, filepath.Join(dir, "nosnaps"), cfg)
	if err != nil {
		t.Fatalf("Recover with empty WAL: %v", err)
	}
	if rec.NextRound != 1 || rec.Replayed != 0 || rec.Truncated {
		t.Errorf("empty WAL: %+v, want fresh start at round 1", rec)
	}
}

// TestCrashScenarioValidation rejects out-of-range rounds and unknown
// crash points.
func TestCrashScenarioValidation(t *testing.T) {
	t.Parallel()
	if err := crashTestScenario("bad-round").CrashPlatformAt(99, platform.CrashMidGather).Validate(); err == nil {
		t.Errorf("crash round beyond scenario length validated")
	}
	if err := crashTestScenario("bad-point").CrashPlatformAt(3, "pre-flush").Validate(); err == nil {
		t.Errorf("unknown crash point validated")
	}
	if err := crashTestScenario("ok").CrashPlatformAt(3, platform.CrashPostAnnounce).Validate(); err != nil {
		t.Errorf("valid crash scenario rejected: %v", err)
	}
}
