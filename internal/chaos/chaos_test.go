package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickScenario is a compressed churn scenario sized for unit tests:
// high enough fault probabilities that 30 rounds exercise every action,
// short enough deadlines that the test stays fast.
func quickScenario() *Scenario {
	return New("quick").
		WithSeed(5).
		WithRounds(30).
		WithDeadline(25).
		WithAgents(6, 300).
		WithChurn(ChurnSpec{CrashProb: 0.03, DelayProb: 0.06, SlowProb: 0.03, AbstainProb: 0.05, RejoinAfter: 1}).
		WithDemand(DemandSpec{SpikeEvery: 10, SpikeFactor: 2}).
		On(8, 2, ActReset).
		On(15, 3, ActDelay).
		On(20, 4, ActCrash)
}

// TestRunDeterministic runs the same scenario twice and requires
// byte-identical audit logs, zero violations, and evidence that the fault
// paths actually fired.
func TestRunDeterministic(t *testing.T) {
	var logs [2]bytes.Buffer
	var results [2]*Result
	for i := range logs {
		res, err := Run(Config{Scenario: quickScenario(), AuditLog: &logs[i]})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		results[i] = res
	}
	for i, res := range results {
		if len(res.Violations) != 0 {
			t.Fatalf("run %d: unexpected violations: %v", i, res.Violations)
		}
		if res.Rounds != 30 {
			t.Fatalf("run %d audited %d rounds, want 30", i, res.Rounds)
		}
		if res.Checks == 0 {
			t.Fatalf("run %d performed no checks", i)
		}
		for _, act := range []string{ActBid, ActCrash, ActDelay, ActSlow, ActAbstain} {
			if res.Actions[act] == 0 {
				t.Errorf("run %d never exercised %q (actions %v)", i, act, res.Actions)
			}
		}
	}
	if logs[0].Len() == 0 {
		t.Fatal("empty audit log")
	}
	if !bytes.Equal(logs[0].Bytes(), logs[1].Bytes()) {
		t.Fatalf("audit logs differ between identical runs:\n--- run 0 ---\n%s\n--- run 1 ---\n%s",
			firstDiff(logs[0].String(), logs[1].String()), "")
	}
}

// firstDiff returns the first differing line pair for the failure message.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + al[i] + "\n  vs " + bl[i]
		}
	}
	return "length mismatch"
}

// TestBrokenPaymentsCaught enables the deliberately corrupt payment rule
// and requires the auditor to flag it in the very first round that grants
// an award, dumping the evidence file for repro.
func TestBrokenPaymentsCaught(t *testing.T) {
	dir := t.TempDir()
	// Demand is kept trivially coverable so round 1 is guaranteed to grant
	// awards — the corruption must then be flagged in round 1 itself.
	sc := New("broken").
		WithSeed(9).
		WithRounds(10).
		WithDeadline(25).
		WithAgents(5, 0).
		WithDemand(DemandSpec{NeedyLo: 2, NeedyHi: 2, DemandLo: 1, DemandHi: 1})
	res, err := Run(Config{Scenario: sc, BreakPayments: true, DumpDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("corrupt payments went unnoticed")
	}
	v := res.Violations[0]
	if v.Invariant != "payment" {
		t.Fatalf("first violation is %q, want payment: %v", v.Invariant, v)
	}
	if v.Round != 1 {
		t.Fatalf("corruption caught in round %d, want round 1 (within one round of the fault)", v.Round)
	}
	if res.Rounds >= 10 {
		t.Fatalf("run did not stop at the violation budget: audited %d rounds", res.Rounds)
	}
	if len(res.Dumps) != 1 {
		t.Fatalf("expected one evidence dump, got %v", res.Dumps)
	}
	data, err := os.ReadFile(res.Dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"scenario": "broken"`, `"round": 1`, `"invariant": "payment"`, `"kind": "round_close"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("dump %s missing %s", res.Dumps[0], want)
		}
	}
}

// TestCapacityScenario exhausts tiny lifetime capacities: the auditor
// must track ψ/χ through exclusions and (eventually) infeasible rounds
// without a single violation.
func TestCapacityScenario(t *testing.T) {
	sc, err := Builtin("capacity")
	if err != nil {
		t.Fatal(err)
	}
	sc.Rounds = 40
	sc.BidDeadlineMS = 25
	var log bytes.Buffer
	res, err := Run(Config{Scenario: sc, AuditLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !strings.Contains(log.String(), `"psi"`) {
		t.Error("capacity scenario never produced a ψ update")
	}
	if res.Summary == nil || res.Summary.Rounds != 40 {
		t.Fatalf("summary = %+v, want 40 rounds", res.Summary)
	}
}

// TestFederationScenario interleaves federated rounds and audits them.
func TestFederationScenario(t *testing.T) {
	sc, err := Builtin("federation")
	if err != nil {
		t.Fatal(err)
	}
	sc.Rounds = 20
	sc.Federation.Every = 5
	sc.BidDeadlineMS = 25
	var logA, logB bytes.Buffer
	resA, err := Run(Config{Scenario: cloneScenario(t, sc), AuditLog: &logA})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Run(Config{Scenario: cloneScenario(t, sc), AuditLog: &logB})
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Violations) != 0 {
		t.Fatalf("violations: %v", resA.Violations)
	}
	if resA.FedRounds != 4 {
		t.Fatalf("fed rounds = %d, want 4", resA.FedRounds)
	}
	if !strings.Contains(logA.String(), `"kind":"federation"`) {
		t.Error("audit log has no federation lines")
	}
	if !bytes.Equal(logA.Bytes(), logB.Bytes()) {
		t.Error("federated audit logs differ between identical runs")
	}
	_ = resB
}

// cloneScenario round-trips through JSON so repeated runs cannot share
// mutable state through the scenario value.
func cloneScenario(t *testing.T, sc *Scenario) *Scenario {
	t.Helper()
	data, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestScenarioValidation exercises the scenario schema guards.
func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "no name"},
		{"no rounds", func(s *Scenario) { s.Rounds = 0 }, "rounds"},
		{"no agents", func(s *Scenario) { s.Agents = nil }, "no agents"},
		{"dup agent", func(s *Scenario) { s.Agents = append(s.Agents, AgentSpec{ID: 1}) }, "duplicate"},
		{"bad id", func(s *Scenario) { s.Agents[0].ID = -1 }, "positive"},
		{"probs", func(s *Scenario) { s.Churn.CrashProb = 0.9; s.Churn.DelayProb = 0.9 }, "sum"},
		{"event round", func(s *Scenario) { s.Events = []EventSpec{{Round: 99, Agent: 1, Action: ActCrash}} }, "outside"},
		{"event agent", func(s *Scenario) { s.Events = []EventSpec{{Round: 1, Agent: 42, Action: ActCrash}} }, "unknown agent"},
		{"event action", func(s *Scenario) { s.Events = []EventSpec{{Round: 1, Agent: 1, Action: "explode"}} }, "unknown action"},
		{"federation", func(s *Scenario) { s.Federation = &FederationSpec{Every: 0} }, "interval"},
	}
	for _, tc := range cases {
		sc := New("v").WithRounds(10).WithAgents(3, 0)
		tc.mut(sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := New("ok").WithRounds(5).WithAgents(2, 10).Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

// TestBuiltinScenariosMatchTestdata keeps the committed JSON scenario
// files in lockstep with the builder definitions: cmd/chaos -scenario
// path/to/file.json must behave exactly like the named builtin.
func TestBuiltinScenariosMatchTestdata(t *testing.T) {
	for _, name := range BuiltinNames() {
		sc, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("builtin %s invalid: %v", name, err)
		}
		want, err := sc.JSON()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", "scenarios", name+".json")
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("builtin %s has no committed JSON twin: %v", name, err)
		}
		if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
			t.Errorf("%s drifted from builtin definition; regenerate with: go run ./cmd/chaos -scenario %s -print > %s", path, name, path)
		}
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Name != name {
			t.Errorf("%s loads as %q", path, loaded.Name)
		}
	}
}
