package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"edgeauction/internal/core"
	"edgeauction/internal/platform"
)

// CrashConfig parameterizes one platform kill/restart run (RunCrash).
type CrashConfig struct {
	// Scenario declares the run; PlatformCrashes scripts the kills. The
	// crash harness drives a simplified agent population — every declared
	// agent is connected for the whole run and always bids — because the
	// churn engine's in-flight state (parked stale bids, pending rejoins,
	// auditor batches) cannot span a process restart; what matters here is
	// that the baseline and crashed passes see identical workloads, which
	// scenarioDemand/scenarioBids guarantee by construction.
	Scenario *Scenario
	// Dir is the working directory for the two WALs and the snapshot
	// directory (required; the caller owns cleanup).
	Dir string
	// SnapshotEvery checkpoints the crashed pass every N rounds so
	// recovery exercises snapshot + WAL-SUFFIX replay, not just full-log
	// replay; 0 disables snapshots.
	SnapshotEvery int
	// Fsync forces the WALs to stable storage on every append.
	Fsync bool
	// Logger receives operational progress; nil discards it.
	Logger *log.Logger
}

// CrashResult is the outcome of one kill/restart run: an uninterrupted
// baseline pass and a crashed-and-recovered pass over the same scenario,
// compared byte-for-byte.
type CrashResult struct {
	Scenario string
	Seed     int64
	// Rounds is the scenario length; Crashes counts scripted kills that
	// fired; Recoveries counts snapshot+replay restarts (equal unless the
	// run ended on a crash in the final round); Replayed totals WAL
	// records re-run through the shadow mechanism across recoveries;
	// Snapshots counts checkpoints written.
	Rounds     int
	Crashes    int
	Recoveries int
	Replayed   int
	Snapshots  int
	// BaselineHash/RecoveredHash fingerprint the final mechanism state
	// (core.MSOAState.Hash) of each pass.
	BaselineHash  string
	RecoveredHash string
	// BaselineSummary/RecoveredSummary are each pass's aggregate outcome.
	BaselineSummary  *core.OnlineSummary
	RecoveredSummary *core.OnlineSummary
	// WALMatch reports the two write-ahead logs are byte-identical — the
	// strongest statement: recovery not only reached the same state, it
	// logged the exact bytes an uninterrupted platform would have.
	WALMatch bool
	// Match is the overall verdict: state hashes, summaries, and WAL
	// bytes all agree.
	Match bool
}

// crashKey identifies one scripted kill so it fires exactly once — the
// re-run of a mid-gather-crashed round must not crash again, mirroring a
// real one-off process death.
type crashKey struct {
	round int
	point string
}

// RunCrash executes the platform kill/restart scenario: a baseline pass
// (WAL on, no kills) and a crashed pass in which the platform dies at
// every scripted point and is restarted from platform.Recover (latest
// snapshot + WAL-suffix replay through the shadow mechanism). The final
// ψ/χ state hash, the OnlineSummary, and the raw WAL bytes of the two
// passes must agree; Match reports whether they do.
func RunCrash(cfg CrashConfig) (*CrashResult, error) {
	sc := cfg.Scenario
	if sc == nil {
		return nil, fmt.Errorf("chaos: no scenario")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: crash run needs a working dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("chaos: crash dir: %w", err)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}

	res := &CrashResult{Scenario: sc.Name, Seed: sc.Seed, Rounds: sc.Rounds}

	basePath := filepath.Join(cfg.Dir, "baseline.wal")
	base, err := crashPass(sc, cfg, basePath, "", nil, logger)
	if err != nil {
		return nil, fmt.Errorf("chaos: baseline pass: %w", err)
	}
	res.BaselineHash = base.hash
	res.BaselineSummary = base.summary

	script := map[crashKey]bool{}
	for _, c := range sc.PlatformCrashes {
		script[crashKey{round: c.Round, point: c.Point}] = false
	}
	crashedPath := filepath.Join(cfg.Dir, "crashed.wal")
	crashed, err := crashPass(sc, cfg, crashedPath, filepath.Join(cfg.Dir, "snapshots"), script, logger)
	if err != nil {
		return nil, fmt.Errorf("chaos: crashed pass: %w", err)
	}
	res.RecoveredHash = crashed.hash
	res.RecoveredSummary = crashed.summary
	res.Crashes = crashed.crashes
	res.Recoveries = crashed.recoveries
	res.Replayed = crashed.replayed
	res.Snapshots = crashed.snapshots

	baseWAL, err := os.ReadFile(basePath)
	if err != nil {
		return nil, fmt.Errorf("chaos: read baseline WAL: %w", err)
	}
	crashedWAL, err := os.ReadFile(crashedPath)
	if err != nil {
		return nil, fmt.Errorf("chaos: read crashed WAL: %w", err)
	}
	res.WALMatch = bytes.Equal(baseWAL, crashedWAL)
	res.Match = res.WALMatch &&
		res.BaselineHash == res.RecoveredHash &&
		res.BaselineSummary != nil && res.RecoveredSummary != nil &&
		*res.BaselineSummary == *res.RecoveredSummary
	return res, nil
}

// passResult is one pass's outcome.
type passResult struct {
	hash       string
	summary    *core.OnlineSummary
	crashes    int
	recoveries int
	replayed   int
	snapshots  int
}

// crashPass runs the scenario once. With a nil script it is the
// uninterrupted baseline; with a script it kills the platform at each
// scripted (round, point) once and restarts it through platform.Recover.
func crashPass(sc *Scenario, cfg CrashConfig, walPath, snapDir string, script map[crashKey]bool, logger *log.Logger) (*passResult, error) {
	auction := core.MSOAConfig{Mechanism: sc.MechanismSpec(), Options: core.Options{Parallelism: 1}}
	pr := &passResult{}
	var resume *platform.RecoveredState
	next := 1

	for next <= sc.Rounds {
		wal, err := platform.CreateWAL(walPath, cfg.Fsync)
		if err != nil {
			return nil, err
		}
		srvCfg := platform.ServerConfig{
			BidDeadline:  time.Duration(sc.BidDeadlineMS) * time.Millisecond,
			WriteTimeout: 250 * time.Millisecond,
			Auction:      auction,
			WAL:          wal,
			Resume:       resume,
		}
		if script != nil {
			srvCfg.Fault.Crash = func(t int, point string) error {
				k := crashKey{round: t, point: point}
				if fired, scripted := script[k]; scripted && !fired {
					script[k] = true
					return platform.ErrCrashed
				}
				return nil
			}
		}
		srv, err := platform.NewServer("127.0.0.1:0", srvCfg)
		if err != nil {
			_ = wal.Close()
			return nil, err
		}
		agents, err := dialAll(srv, sc)
		if err != nil {
			_ = srv.Close()
			_ = wal.Close()
			return nil, err
		}

		crashed := false
		var roundErr error
		for t := next; t <= sc.Rounds; t++ {
			demand := scenarioDemand(sc, t)
			if _, err := srv.RunRound(demand, nil); err != nil {
				if errors.Is(err, platform.ErrCrashed) {
					logger.Printf("chaos: %v", err)
					pr.crashes++
					crashed = true
				} else {
					roundErr = fmt.Errorf("chaos: round %d: %w", t, err)
				}
				break
			}
			next = t + 1
			if snapDir != "" && cfg.SnapshotEvery > 0 && t%cfg.SnapshotEvery == 0 {
				round, st := srv.SnapshotState()
				if _, err := platform.WriteSnapshot(snapDir, round, st); err != nil {
					roundErr = err
					break
				}
				pr.snapshots++
			}
		}
		if !crashed && roundErr == nil {
			// Capture the final state before tearing the server down.
			_, st := srv.SnapshotState()
			if st == nil {
				st = &core.MSOAState{}
			}
			pr.hash = st.Hash()
			pr.summary = srv.Summary()
		}
		for _, ag := range agents {
			_ = ag.Close()
		}
		_ = srv.Close()
		_ = wal.Close()
		if roundErr != nil {
			return nil, roundErr
		}
		if !crashed {
			return pr, nil
		}

		// The process is "dead": everything in memory is gone. Rebuild from
		// the durable artifacts alone.
		rec, err := platform.Recover(walPath, snapDir, auction)
		if err != nil {
			return nil, err
		}
		pr.recoveries++
		pr.replayed += rec.Replayed
		logger.Printf("chaos: recovered: snapshot round %d, %d records replayed, resuming at round %d (state %s)",
			rec.SnapshotRound, rec.Replayed, rec.NextRound, rec.Hash[:12])
		resume = rec
		next = rec.NextRound
		if next > sc.Rounds {
			// The crash hit the final round after its WAL append; the
			// recovered state IS the pass result.
			pr.hash = rec.Hash
			sum := rec.State.Summary
			pr.summary = &sum
			return pr, nil
		}
	}
	return pr, nil
}

// dialAll connects one always-bidding agent per scenario spec and waits
// until the platform's registration table sees them all.
func dialAll(srv *platform.Server, sc *Scenario) ([]*platform.Agent, error) {
	agents := make([]*platform.Agent, 0, len(sc.Agents))
	for _, spec := range sc.Agents {
		spec := spec
		ag, err := platform.Dial(srv.Addr(), platform.AgentConfig{
			ID: spec.ID, Capacity: spec.Capacity,
			Policy: func(msg *platform.AnnounceMsg) []platform.WireBid {
				return scenarioBids(sc, spec, msg.T, len(msg.Demand))
			},
			DialTimeout: 2 * time.Second, WriteTimeout: 250 * time.Millisecond,
		})
		if err != nil {
			for _, a := range agents {
				_ = a.Close()
			}
			return nil, fmt.Errorf("chaos: agent %d join: %w", spec.ID, err)
		}
		agents = append(agents, ag)
	}
	if !waitFor(2*time.Second, func() bool { return srv.AgentCount() == len(agents) }) {
		for _, a := range agents {
			_ = a.Close()
		}
		return nil, fmt.Errorf("chaos: server sees %d agents, want %d", srv.AgentCount(), len(agents))
	}
	return agents, nil
}
