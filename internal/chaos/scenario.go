// Package chaos is a deterministic scenario engine and online invariant
// auditor for the auction platform. It drives the real platform.Server
// and core.MSOA over hundreds of rounds of scripted and seed-randomized
// churn — agents joining, leaving, crashing mid-bid with TCP resets,
// writing too slowly to hear a round, submitting bids after the deadline,
// demand spikes, capacity exhaustion, interleaved federation rounds — and
// after every round machine-checks the paper's mechanism properties
// against an independent shadow replay of the trace stream.
//
// Scenarios are declared in a small builder DSL or as JSON files (see
// testdata/scenarios) and replay byte-identically from a seed: every
// random draw comes from a workload.DeriveSeed sub-stream keyed by
// (round, agent), so the audit log two runs produce is comparable with
// cmp(1). The cmd/chaos binary and the soak Makefile targets build on
// exactly that property.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"edgeauction/internal/core"
	"edgeauction/internal/platform"
	"edgeauction/internal/sim"
	"edgeauction/internal/workload"
)

// Scenario actions, used both in scripted events and as the outcome of
// per-round churn draws.
const (
	// ActBid is the default: the agent submits its generated bids.
	ActBid = "bid"
	// ActCrash makes the agent reset its TCP connection (RST) instead of
	// bidding — a crash mid-round. The agent rejoins after
	// Churn.RejoinAfter rounds if that is positive.
	ActCrash = "crash"
	// ActDelay withholds the agent's bids past the round deadline; they
	// arrive at the start of the NEXT round carrying the old round tag,
	// which the platform must discard without losing the live bid.
	ActDelay = "delay"
	// ActSlow marks the agent's connection as unwritable for the round's
	// announce: the platform drops it as a slow writer (write-timeout)
	// and it rejoins like a crashed agent.
	ActSlow = "slow"
	// ActAbstain answers the round with an empty bid list.
	ActAbstain = "abstain"
	// ActReset is a scripted between-rounds connection reset.
	ActReset = "reset"
	// ActLeave is a scripted graceful departure (no rejoin).
	ActLeave = "leave"
	// ActJoin is a scripted (re)join of a departed or not-yet-joined
	// agent.
	ActJoin = "join"
	// ActSpike multiplies the round's demand by the event's Factor
	// (default Demand.SpikeFactor).
	ActSpike = "spike"
)

// AgentSpec declares one agent of a scenario.
type AgentSpec struct {
	// ID is the agent's positive bidder id.
	ID int `json:"id"`
	// Capacity is the lifetime coverage capacity Θ_i; 0 means unlimited
	// (and the agent then never generates ψ updates).
	Capacity int `json:"capacity"`
	// Join is the round before which the agent dials in; 0 or 1 means
	// present from the start.
	Join int `json:"join,omitempty"`
	// Leave, when positive, departs the agent gracefully before this
	// round.
	Leave int `json:"leave,omitempty"`
	// BidsPer is the number of alternative bids per round (default 1).
	BidsPer int `json:"bids_per,omitempty"`
	// PriceLo/PriceHi bound the uniform per-slot price draw (defaults
	// 10/35, the paper's §V-A range).
	PriceLo float64 `json:"price_lo,omitempty"`
	PriceHi float64 `json:"price_hi,omitempty"`
}

// DemandSpec declares the per-round demand process.
type DemandSpec struct {
	// NeedyLo/NeedyHi bound the number of needy microservices per round
	// (defaults 2/4).
	NeedyLo int `json:"needy_lo,omitempty"`
	NeedyHi int `json:"needy_hi,omitempty"`
	// DemandLo/DemandHi bound each needy microservice's residual demand
	// (defaults 1/3).
	DemandLo int `json:"demand_lo,omitempty"`
	DemandHi int `json:"demand_hi,omitempty"`
	// SpikeEvery, when positive, multiplies demand by SpikeFactor every
	// SpikeEvery-th round (capacity-exhaustion pressure).
	SpikeEvery int `json:"spike_every,omitempty"`
	// SpikeFactor is the spike multiplier (default 3).
	SpikeFactor float64 `json:"spike_factor,omitempty"`
}

// ChurnSpec declares seed-randomized per-round agent faults. Each live
// agent draws once per round; the probabilities partition [0,1) with the
// remainder meaning a normal bid.
type ChurnSpec struct {
	CrashProb   float64 `json:"crash_prob,omitempty"`
	DelayProb   float64 `json:"delay_prob,omitempty"`
	SlowProb    float64 `json:"slow_prob,omitempty"`
	AbstainProb float64 `json:"abstain_prob,omitempty"`
	// RejoinAfter is how many rounds a crashed/slow-dropped agent stays
	// away before re-dialing; 0 means it never returns.
	RejoinAfter int `json:"rejoin_after,omitempty"`
}

// EventSpec scripts one deterministic event.
type EventSpec struct {
	// Round the event applies to (1-based).
	Round int `json:"round"`
	// Agent the event targets (ignored for spike).
	Agent int `json:"agent,omitempty"`
	// Action is one of the Act* constants.
	Action string `json:"action"`
	// Factor parameterizes spike events.
	Factor float64 `json:"factor,omitempty"`
}

// FederationSpec interleaves multi-cloud federated rounds with the
// platform rounds.
type FederationSpec struct {
	// Every runs one federated round after every Every-th platform round.
	Every int `json:"every"`
	// Clouds is the federation size (default 3).
	Clouds int `json:"clouds,omitempty"`
}

// Scenario is a complete declarative chaos run.
type Scenario struct {
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
	Rounds int    `json:"rounds"`
	// BidDeadlineMS is the platform's per-round bid deadline in
	// milliseconds (default 40; fault rounds pay it in full, so it bounds
	// the soak's wall clock).
	BidDeadlineMS int             `json:"bid_deadline_ms,omitempty"`
	Agents        []AgentSpec     `json:"agents"`
	Demand        DemandSpec      `json:"demand"`
	Churn         ChurnSpec       `json:"churn"`
	Events        []EventSpec     `json:"events,omitempty"`
	Federation    *FederationSpec `json:"federation,omitempty"`
	// PlatformCrashes scripts kill/restart points for the PLATFORM
	// process itself (not an agent). A scenario carrying any entry runs
	// under the crash harness (RunCrash) instead of the churn engine: the
	// platform is killed at each scripted point, recovered from snapshot +
	// WAL-suffix replay, and the run's final state is compared
	// byte-for-byte against an uninterrupted pass.
	PlatformCrashes []CrashSpec `json:"platform_crashes,omitempty"`
	// Pipelined routes the scenario to the pipeline harness
	// (RunPipelineCompare) instead of the churn engine: the same fixed
	// workload runs once through the serial round loop and once through
	// the overlapped round engine (platform.RunPipelined), and the two
	// passes' WAL bytes, final state hash and summary must agree — the
	// overlap is an implementation detail the durable record cannot see.
	Pipelined bool `json:"pipelined,omitempty"`
	// Mechanism selects the single-stage mechanism the platform (and the
	// auditor's shadow replay) clears rounds through. Nil means SSAM and
	// keeps the audit log byte-identical to scenarios predating the
	// field. Non-SSAM mechanisms drop the SSAM-only invariants
	// (critical-value spot checks, certificates, ψ trajectories) and, for
	// the double auction, add the per-round penalty-bound invariant.
	Mechanism *core.MechanismSpec `json:"mechanism,omitempty"`
	// Workload, when set, derives the per-round demand from the
	// topology-driven workload engine instead of DemandSpec's i.i.d.
	// draw: Validate simulates the service graph for the scenario's
	// rounds and converts each round's indicators through the §III
	// estimator bridge into residual demand. The schedule is a pure
	// function of (Seed, Workload), precomputed before the platform
	// starts, so crash-restarted rounds replay bit-identical demand.
	Workload *WorkloadSpec `json:"workload,omitempty"`

	// wlDemand is the precomputed per-round demand schedule (built by
	// Validate when Workload is set). Index t-1 holds round t.
	wlDemand [][]int
}

// WorkloadSpec drives a scenario's demand from a simulated service
// topology.
type WorkloadSpec struct {
	// Topology names a builtin service graph ("three-tier", "overload",
	// "spikes", "frontier") or a YAML topology file path.
	Topology string `json:"topology"`
	// WorkScale multiplies every service's per-request work; 0 means 1.
	// Values above 1 overload the graph, producing sustained demand.
	WorkScale float64 `json:"work_scale,omitempty"`
	// MaxDemand caps each needy microservice's per-round residual
	// demand; 0 means 6, matching DemandSpec's scale so the platform
	// agents' bid sizing still covers rounds.
	MaxDemand int `json:"max_demand,omitempty"`
}

// MechanismSpec resolves the scenario's mechanism selection, mapping a
// nil field to the zero (SSAM) spec.
func (s *Scenario) MechanismSpec() core.MechanismSpec {
	if s.Mechanism == nil {
		return core.MechanismSpec{}
	}
	return *s.Mechanism
}

// CrashSpec scripts one platform kill.
type CrashSpec struct {
	// Round the platform dies in (1-based).
	Round int `json:"round"`
	// Point is where inside the round the process dies:
	// platform.CrashMidGather, CrashPreAnnounce, or CrashPostAnnounce.
	Point string `json:"point"`
}

// New starts a scenario with the given name and defaults (seed 1,
// 100 rounds).
func New(name string) *Scenario {
	return &Scenario{Name: name, Seed: 1, Rounds: 100}
}

// WithSeed sets the root seed.
func (s *Scenario) WithSeed(seed int64) *Scenario { s.Seed = seed; return s }

// WithRounds sets the number of platform rounds.
func (s *Scenario) WithRounds(n int) *Scenario { s.Rounds = n; return s }

// WithDeadline sets the bid deadline in milliseconds.
func (s *Scenario) WithDeadline(ms int) *Scenario { s.BidDeadlineMS = ms; return s }

// WithAgents appends n agents with ids starting after the current
// highest, all sharing the given capacity.
func (s *Scenario) WithAgents(n, capacity int) *Scenario {
	next := 1
	for _, a := range s.Agents {
		if a.ID >= next {
			next = a.ID + 1
		}
	}
	for i := 0; i < n; i++ {
		s.Agents = append(s.Agents, AgentSpec{ID: next + i, Capacity: capacity})
	}
	return s
}

// WithAgent appends one fully specified agent.
func (s *Scenario) WithAgent(a AgentSpec) *Scenario { s.Agents = append(s.Agents, a); return s }

// WithPipelined routes the scenario to the serial-vs-pipelined
// comparison harness.
func (s *Scenario) WithPipelined() *Scenario { s.Pipelined = true; return s }

// WithDemand sets the demand process.
func (s *Scenario) WithDemand(d DemandSpec) *Scenario { s.Demand = d; return s }

// WithChurn sets the randomized churn probabilities.
func (s *Scenario) WithChurn(c ChurnSpec) *Scenario { s.Churn = c; return s }

// On scripts an event.
func (s *Scenario) On(round, agent int, action string) *Scenario {
	s.Events = append(s.Events, EventSpec{Round: round, Agent: agent, Action: action})
	return s
}

// SpikeAt scripts a demand spike.
func (s *Scenario) SpikeAt(round int, factor float64) *Scenario {
	s.Events = append(s.Events, EventSpec{Round: round, Action: ActSpike, Factor: factor})
	return s
}

// CrashPlatformAt scripts a platform kill at a round and crash point
// (platform.CrashMidGather/CrashPreAnnounce/CrashPostAnnounce).
func (s *Scenario) CrashPlatformAt(round int, point string) *Scenario {
	s.PlatformCrashes = append(s.PlatformCrashes, CrashSpec{Round: round, Point: point})
	return s
}

// WithMechanism selects the single-stage mechanism the platform clears
// rounds through.
func (s *Scenario) WithMechanism(spec core.MechanismSpec) *Scenario {
	s.Mechanism = &spec
	return s
}

// WithWorkload derives the scenario's demand from a simulated service
// topology (see WorkloadSpec).
func (s *Scenario) WithWorkload(w WorkloadSpec) *Scenario {
	s.Workload = &w
	return s
}

// WithFederation interleaves a federated round every `every` rounds.
func (s *Scenario) WithFederation(every, clouds int) *Scenario {
	s.Federation = &FederationSpec{Every: every, Clouds: clouds}
	return s
}

// deadline/demand/agent defaults, applied at Validate time.
func (s *Scenario) applyDefaults() {
	if s.BidDeadlineMS == 0 {
		s.BidDeadlineMS = 40
	}
	if s.Demand.NeedyLo == 0 {
		s.Demand.NeedyLo = 2
	}
	if s.Demand.NeedyHi == 0 {
		s.Demand.NeedyHi = 4
	}
	if s.Demand.DemandLo == 0 {
		s.Demand.DemandLo = 1
	}
	if s.Demand.DemandHi == 0 {
		s.Demand.DemandHi = 3
	}
	if s.Demand.SpikeFactor == 0 {
		s.Demand.SpikeFactor = 3
	}
	for i := range s.Agents {
		a := &s.Agents[i]
		if a.BidsPer == 0 {
			a.BidsPer = 1
		}
		if a.PriceLo == 0 {
			a.PriceLo = 10
		}
		if a.PriceHi == 0 {
			a.PriceHi = 35
		}
	}
	if s.Federation != nil && s.Federation.Clouds == 0 {
		s.Federation.Clouds = 3
	}
}

// Validate applies defaults and rejects inconsistent scenarios.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("chaos: scenario has no name")
	}
	if s.Rounds <= 0 {
		return fmt.Errorf("chaos: scenario %q has %d rounds", s.Name, s.Rounds)
	}
	if len(s.Agents) == 0 {
		return fmt.Errorf("chaos: scenario %q has no agents", s.Name)
	}
	s.applyDefaults()
	seen := map[int]bool{}
	for _, a := range s.Agents {
		if a.ID <= 0 {
			return fmt.Errorf("chaos: scenario %q: agent id %d must be positive", s.Name, a.ID)
		}
		if seen[a.ID] {
			return fmt.Errorf("chaos: scenario %q: duplicate agent id %d", s.Name, a.ID)
		}
		seen[a.ID] = true
		if a.Capacity < 0 {
			return fmt.Errorf("chaos: scenario %q: agent %d has negative capacity", s.Name, a.ID)
		}
		if a.PriceHi < a.PriceLo {
			return fmt.Errorf("chaos: scenario %q: agent %d price range [%v,%v] inverted", s.Name, a.ID, a.PriceLo, a.PriceHi)
		}
		if a.Leave > 0 && a.Leave <= a.Join {
			return fmt.Errorf("chaos: scenario %q: agent %d leaves (%d) before joining (%d)", s.Name, a.ID, a.Leave, a.Join)
		}
	}
	c := s.Churn
	if c.CrashProb < 0 || c.DelayProb < 0 || c.SlowProb < 0 || c.AbstainProb < 0 {
		return fmt.Errorf("chaos: scenario %q: negative churn probability", s.Name)
	}
	if total := c.CrashProb + c.DelayProb + c.SlowProb + c.AbstainProb; total > 1 {
		return fmt.Errorf("chaos: scenario %q: churn probabilities sum to %v > 1", s.Name, total)
	}
	if s.Demand.NeedyHi < s.Demand.NeedyLo || s.Demand.DemandHi < s.Demand.DemandLo {
		return fmt.Errorf("chaos: scenario %q: inverted demand range", s.Name)
	}
	for _, e := range s.Events {
		if e.Round <= 0 || e.Round > s.Rounds {
			return fmt.Errorf("chaos: scenario %q: event round %d outside [1,%d]", s.Name, e.Round, s.Rounds)
		}
		switch e.Action {
		case ActCrash, ActDelay, ActSlow, ActAbstain, ActReset, ActLeave, ActJoin, ActBid:
			if !seen[e.Agent] {
				return fmt.Errorf("chaos: scenario %q: event targets unknown agent %d", s.Name, e.Agent)
			}
		case ActSpike:
		default:
			return fmt.Errorf("chaos: scenario %q: unknown action %q", s.Name, e.Action)
		}
	}
	if s.Federation != nil && s.Federation.Every <= 0 {
		return fmt.Errorf("chaos: scenario %q: federation interval %d must be positive", s.Name, s.Federation.Every)
	}
	if s.Mechanism != nil {
		if _, err := core.NewMechanism(*s.Mechanism); err != nil {
			return fmt.Errorf("chaos: scenario %q: %w", s.Name, err)
		}
	}
	for _, c := range s.PlatformCrashes {
		if c.Round <= 0 || c.Round > s.Rounds {
			return fmt.Errorf("chaos: scenario %q: platform crash round %d outside [1,%d]", s.Name, c.Round, s.Rounds)
		}
		switch c.Point {
		case platform.CrashMidGather, platform.CrashPreAnnounce, platform.CrashPostAnnounce:
		default:
			return fmt.Errorf("chaos: scenario %q: unknown platform crash point %q", s.Name, c.Point)
		}
	}
	if s.Workload != nil {
		if err := s.buildWorkloadDemand(); err != nil {
			return err
		}
	}
	return nil
}

// buildWorkloadDemand precomputes the Workload demand schedule: it runs
// the discrete-event simulator over the service graph for the scenario's
// rounds and bridges each report's indicators into residual demand. All
// randomness comes from one DeriveSeed sub-stream, so the schedule — and
// thus every platform round — is a pure function of the scenario.
func (s *Scenario) buildWorkloadDemand() error {
	w := s.Workload
	if w.WorkScale < 0 {
		return fmt.Errorf("chaos: scenario %q: negative workload work scale %v", s.Name, w.WorkScale)
	}
	if w.MaxDemand < 0 {
		return fmt.Errorf("chaos: scenario %q: negative workload demand cap %d", s.Name, w.MaxDemand)
	}
	g, err := workload.BuiltinGraph(w.Topology)
	if err != nil {
		loaded, ferr := workload.LoadServiceGraph(w.Topology)
		if ferr != nil {
			return fmt.Errorf("chaos: scenario %q: workload topology %q is neither builtin (%v) nor loadable (%v)",
				s.Name, w.Topology, err, ferr)
		}
		g = loaded
	}
	if w.WorkScale != 0 {
		for i := range g.Services {
			g.Services[i].Work *= w.WorkScale
		}
	}
	maxDemand := w.MaxDemand
	if maxDemand == 0 {
		maxDemand = 6
	}
	rng := workload.NewDerived(s.Seed, "workload", 0, 0)
	simulator, err := sim.New(sim.Config{Graph: g, Rounds: s.Rounds, Seed: rng.Int63()})
	if err != nil {
		return fmt.Errorf("chaos: scenario %q: workload simulator: %w", s.Name, err)
	}
	bridge, err := sim.NewBridge(simulator, sim.BridgeConfig{
		Seed: rng.Int63(), MaxUnits: maxDemand, NeedyQueue: 2,
	})
	if err != nil {
		return fmt.Errorf("chaos: scenario %q: workload bridge: %w", s.Name, err)
	}
	s.wlDemand = make([][]int, s.Rounds)
	for t := 1; t <= s.Rounds; t++ {
		ar := bridge.Convert(simulator.RunRound())
		d := append([]int(nil), ar.Round.Instance.Demand...)
		if len(d) == 0 {
			// The platform round machinery expects at least one needy
			// microservice; an idle simulator round becomes minimal demand.
			d = []int{1}
		}
		s.wlDemand[t-1] = d
	}
	return nil
}

// Load parses a JSON scenario and validates it.
func Load(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("chaos: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile reads and parses a JSON scenario file.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: read scenario: %w", err)
	}
	s, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return s, nil
}

// JSON renders the scenario (with defaults applied) as indented JSON,
// suitable for committing under testdata/scenarios.
func (s *Scenario) JSON() ([]byte, error) {
	s.applyDefaults()
	return json.MarshalIndent(s, "", "  ")
}
