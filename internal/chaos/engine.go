package chaos

import (
	"fmt"
	"io"
	"log"
	"math"
	"sync"
	"time"

	"edgeauction/internal/core"
	"edgeauction/internal/federation"
	"edgeauction/internal/obs"
	"edgeauction/internal/platform"
	"edgeauction/internal/topology"
	"edgeauction/internal/workload"
)

// Config parameterizes one chaos run.
type Config struct {
	// Scenario declares the run; it is validated before anything starts.
	Scenario *Scenario
	// AuditLog receives the auditor's deterministic per-round JSONL; nil
	// discards it. Two runs of the same scenario produce byte-identical
	// streams here.
	AuditLog io.Writer
	// TraceLog receives the raw timestamped obs event stream; nil
	// disables it. Unlike the audit log it is NOT deterministic.
	TraceLog io.Writer
	// DumpDir, when set, receives one JSON evidence file per violated
	// round for one-command repro.
	DumpDir string
	// BreakPayments enables the deliberately broken payment rule (a 10%
	// platform skim on every award) that the auditor must catch within
	// one round. It exists to prove the auditor is live.
	BreakPayments bool
	// MaxViolations stops the run after this many violations; 0 means 1.
	// Use a negative value to keep running through all violations.
	MaxViolations int
	// Logger receives operational progress; nil discards it.
	Logger *log.Logger
}

// Result summarizes a chaos run.
type Result struct {
	// Scenario and Seed identify the run for repro.
	Scenario string
	Seed     int64
	// Rounds is the number of platform rounds audited; Infeasible counts
	// those whose demand could not be covered.
	Rounds     int
	Infeasible int
	// FedRounds counts the interleaved federated rounds.
	FedRounds int
	// Checks is the total number of invariant checks performed.
	Checks int
	// Violations holds every invariant violation found (empty on a clean
	// run).
	Violations []Violation
	// Dumps lists evidence files written for violated rounds.
	Dumps []string
	// Actions counts executed agent actions by kind (bid, crash, delay,
	// slow, abstain), so tests can assert a scenario exercised the fault
	// paths it was written for.
	Actions map[string]int
	// Summary is the platform mechanism's aggregate outcome.
	Summary *core.OnlineSummary
}

// instruction tells an agent's bid policy what to do for one round.
type instruction struct {
	t      int
	mode   string
	bids   []platform.WireBid
	staleT int
	stale  []platform.WireBid
}

// engine drives one scenario against a real platform.Server.
type engine struct {
	cfg Config
	sc  *Scenario
	srv *platform.Server
	aud *auditor
	log *log.Logger

	specs map[int]AgentSpec

	mu           sync.Mutex
	agents       map[int]*platform.Agent
	inst         map[int]instruction
	slow         map[int]bool
	pendingStale map[int]instruction
	awayUntil    map[int]int
	left         map[int]bool

	actions map[string]int

	fed    *federation.Federation
	fedRes int
}

// Run executes one scenario to completion (or to the violation budget)
// and returns the audited result. The run is deterministic: every random
// draw derives from Scenario.Seed via workload.DeriveSeed sub-streams, so
// the audit log is byte-identical across runs of the same scenario.
func Run(cfg Config) (*Result, error) {
	sc := cfg.Scenario
	if sc == nil {
		return nil, fmt.Errorf("chaos: no scenario")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	maxViol := cfg.MaxViolations
	if maxViol == 0 {
		maxViol = 1
	}
	aud := newAuditor(sc, cfg.AuditLog, cfg.DumpDir, maxViol, logger)

	e := &engine{
		cfg:          cfg,
		sc:           sc,
		aud:          aud,
		log:          logger,
		specs:        map[int]AgentSpec{},
		agents:       map[int]*platform.Agent{},
		inst:         map[int]instruction{},
		slow:         map[int]bool{},
		pendingStale: map[int]instruction{},
		awayUntil:    map[int]int{},
		left:         map[int]bool{},
		actions:      map[string]int{},
	}
	for _, a := range sc.Agents {
		e.specs[a.ID] = a
	}

	var tracer obs.Tracer = obs.NewRoundSink(aud.storeBatch)
	if cfg.TraceLog != nil {
		tracer = obs.NewMulti(tracer, obs.NewJSONL(cfg.TraceLog))
	}
	srvCfg := platform.ServerConfig{
		BidDeadline:  time.Duration(sc.BidDeadlineMS) * time.Millisecond,
		WriteTimeout: 250 * time.Millisecond,
		Auction:      core.MSOAConfig{Mechanism: sc.MechanismSpec(), Options: core.Options{Parallelism: 1}},
		Tracer:       tracer,
		Audit:        platform.NewAuditSink(aud.auditRound),
		Fault: platform.FaultInjection{
			SendFault: e.sendFault,
		},
	}
	if cfg.BreakPayments {
		srvCfg.Fault.CorruptPayment = func(t int, award platform.WireAward) float64 {
			return award.Payment * 0.9 // the platform skims 10% off every award
		}
	}
	srv, err := platform.NewServer("127.0.0.1:0", srvCfg)
	if err != nil {
		return nil, err
	}
	e.srv = srv
	defer func() {
		_ = srv.Close()
		e.closeAgents()
	}()

	for t := 1; t <= sc.Rounds; t++ {
		if err := e.preRound(t); err != nil {
			return nil, err
		}
		demand := e.prepare(t)
		if _, err := srv.RunRound(demand, nil); err != nil {
			return nil, fmt.Errorf("chaos: round %d: %w", t, err)
		}
		e.postRound(t)
		if sc.Federation != nil && t%sc.Federation.Every == 0 {
			if err := e.fedRound(t); err != nil {
				return nil, err
			}
		}
		if e.aud.stop() {
			logger.Printf("chaos: stopping after round %d: violation budget (%d) exhausted", t, maxViol)
			break
		}
	}

	res := &Result{
		Scenario:   sc.Name,
		Seed:       sc.Seed,
		Rounds:     e.aud.rounds,
		Infeasible: e.aud.infeasible,
		FedRounds:  e.fedRes,
		Checks:     e.aud.checks,
		Violations: append([]Violation(nil), e.aud.violations...),
		Dumps:      append([]string(nil), e.aud.dumps...),
		Actions:    e.actions,
		Summary:    srv.Summary(),
	}
	return res, nil
}

// sendFault is the platform fault hook: announces to agents marked slow
// this round fail as write timeouts, so the server deterministically
// drops them before gathering.
func (e *engine) sendFault(t, agentID int, msgType string) error {
	if msgType != platform.TypeAnnounce {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.slow[agentID] {
		return fmt.Errorf("chaos: injected slow writer on agent %d", agentID)
	}
	return nil
}

// policyFor builds agent id's bid policy. It runs on the agent's receive
// goroutine and only consults the engine's instruction table, so agent
// behavior is a pure function of (scenario, seed, round).
func (e *engine) policyFor(id int) platform.BidPolicy {
	return func(msg *platform.AnnounceMsg) []platform.WireBid {
		e.mu.Lock()
		in, ok := e.inst[id]
		ag := e.agents[id]
		e.mu.Unlock()
		if !ok || ag == nil || in.t != msg.T {
			return nil
		}
		if in.mode == ActCrash {
			// Crash mid-bid: RST the connection from inside the policy,
			// exactly as a dying process would.
			ag.Abort()
			return nil
		}
		if len(in.stale) > 0 {
			// Deliver last round's withheld bids FIRST, still tagged with
			// the old round: the server must discard them by tag while
			// keeping this agent's live submission countable.
			_ = ag.Submit(in.staleT, in.stale)
		}
		switch in.mode {
		case ActAbstain:
			// Answer promptly with zero bids rather than timing out.
			_ = ag.Submit(msg.T, nil)
			return nil
		case ActDelay:
			// Withhold everything past the deadline; prepare() parked the
			// bids for next round's stale replay.
			return nil
		}
		return in.bids
	}
}

// preRound applies scripted joins/leaves/resets and due rejoins, then
// waits until the server's registration table agrees with the engine's
// view so round t opens against a deterministic agent set.
func (e *engine) preRound(t int) error {
	// Initial and scripted joins from the agent specs.
	for _, spec := range e.sc.Agents {
		join := spec.Join
		if join < 1 {
			join = 1
		}
		if t == join {
			if err := e.dial(spec.ID); err != nil {
				return err
			}
		}
		if spec.Leave > 0 && t == spec.Leave {
			e.depart(spec.ID, true)
		}
	}
	// Due rejoins after crash/slow drops.
	e.mu.Lock()
	var due []int
	for id, at := range e.awayUntil {
		if t >= at && !e.left[id] {
			due = append(due, id)
		}
	}
	e.mu.Unlock()
	for _, id := range due {
		if err := e.dial(id); err != nil {
			return err
		}
		e.mu.Lock()
		delete(e.awayUntil, id)
		e.mu.Unlock()
	}
	// Scripted between-round events.
	for _, ev := range e.sc.Events {
		if ev.Round != t {
			continue
		}
		switch ev.Action {
		case ActJoin:
			if err := e.dial(ev.Agent); err != nil {
				return err
			}
			e.mu.Lock()
			delete(e.left, ev.Agent)
			delete(e.awayUntil, ev.Agent)
			e.mu.Unlock()
		case ActLeave:
			e.depart(ev.Agent, true)
		case ActReset:
			e.reset(ev.Agent, t)
		}
	}
	// Let the server's registration table catch up before announcing.
	e.mu.Lock()
	want := len(e.agents)
	e.mu.Unlock()
	if !waitFor(2*time.Second, func() bool { return e.srv.AgentCount() == want }) {
		return fmt.Errorf("chaos: round %d: server sees %d agents, engine expects %d", t, e.srv.AgentCount(), want)
	}
	return nil
}

// dial connects one agent, retrying while the server still holds the
// previous (crashed) registration.
func (e *engine) dial(id int) error {
	e.mu.Lock()
	if e.agents[id] != nil {
		e.mu.Unlock()
		return nil
	}
	e.mu.Unlock()
	spec := e.specs[id]
	cfg := platform.AgentConfig{
		ID: id, Capacity: spec.Capacity, Policy: e.policyFor(id),
		DialTimeout: 2 * time.Second, WriteTimeout: 250 * time.Millisecond,
	}
	var ag *platform.Agent
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for {
		ag, err = platform.Dial(e.srv.Addr(), cfg)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: agent %d join: %w", id, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	e.mu.Lock()
	e.agents[id] = ag
	e.mu.Unlock()
	return nil
}

// depart removes an agent gracefully. permanent blocks future rejoins.
func (e *engine) depart(id int, permanent bool) {
	e.mu.Lock()
	ag := e.agents[id]
	delete(e.agents, id)
	delete(e.pendingStale, id)
	if permanent {
		e.left[id] = true
	}
	e.mu.Unlock()
	if ag != nil {
		_ = ag.Close()
	}
}

// reset hard-kills an agent between rounds (scripted TCP reset) and
// schedules its rejoin like a crash.
func (e *engine) reset(id, t int) {
	e.mu.Lock()
	ag := e.agents[id]
	delete(e.agents, id)
	delete(e.pendingStale, id)
	e.mu.Unlock()
	if ag == nil {
		return
	}
	ag.Abort()
	<-ag.Done()
	e.markAway(id, t)
}

// markAway schedules a killed agent's rejoin (or retires it when the
// scenario has no rejoin interval).
func (e *engine) markAway(id, t int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sc.Churn.RejoinAfter > 0 {
		e.awayUntil[id] = t + e.sc.Churn.RejoinAfter
	} else {
		e.left[id] = true
	}
}

// prepare draws round t's demand and every live agent's action from the
// scenario's seed sub-streams, then publishes the instruction table the
// bid policies read.
func (e *engine) prepare(t int) []int {
	demand := e.demandFor(t)

	scripted := map[int]string{}
	for _, ev := range e.sc.Events {
		if ev.Round != t {
			continue
		}
		switch ev.Action {
		case ActCrash, ActDelay, ActSlow, ActAbstain, ActBid:
			scripted[ev.Agent] = ev.Action
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.slow = map[int]bool{}
	e.inst = map[int]instruction{}
	c := e.sc.Churn
	for id := range e.agents {
		// One draw per (round, agent) from a private sub-stream, so agent
		// actions are independent of map iteration order.
		mode := ActBid
		p := workload.NewDerived(e.sc.Seed, "churn", t, id).Float64()
		switch {
		case p < c.CrashProb:
			mode = ActCrash
		case p < c.CrashProb+c.DelayProb:
			mode = ActDelay
		case p < c.CrashProb+c.DelayProb+c.SlowProb:
			mode = ActSlow
		case p < c.CrashProb+c.DelayProb+c.SlowProb+c.AbstainProb:
			mode = ActAbstain
		}
		if m, ok := scripted[id]; ok {
			mode = m
		}
		in := instruction{t: t, mode: mode}
		if park, ok := e.pendingStale[id]; ok && mode != ActCrash && mode != ActSlow {
			in.staleT, in.stale = park.t, park.bids
			delete(e.pendingStale, id)
		}
		bids := e.bidsFor(id, t, len(demand))
		switch mode {
		case ActBid:
			in.bids = bids
		case ActDelay:
			// Park this round's bids; they surface next round as a stale
			// submission.
			e.pendingStale[id] = instruction{t: t, bids: bids}
		case ActSlow:
			e.slow[id] = true
			delete(e.pendingStale, id)
		case ActCrash:
			delete(e.pendingStale, id)
		}
		e.inst[id] = in
		e.actions[mode]++
	}
	return demand
}

// demandFor draws round t's residual demand, applying periodic and
// scripted spikes.
func (e *engine) demandFor(t int) []int { return scenarioDemand(e.sc, t) }

// bidsFor draws agent id's alternative bids for round t.
func (e *engine) bidsFor(id, t, needy int) []platform.WireBid {
	return scenarioBids(e.sc, e.specs[id], t, needy)
}

// scenarioDemand is round t's residual demand as a pure function of the
// scenario — shared by the churn engine and the crash harness, whose
// restarted platform must see exactly the demand the dead one announced.
func scenarioDemand(sc *Scenario, t int) []int {
	if len(sc.wlDemand) >= t && t >= 1 {
		// Workload-driven scenario: Validate precomputed the schedule from
		// the simulated service graph; spikes and DemandSpec do not apply.
		return append([]int(nil), sc.wlDemand[t-1]...)
	}
	d := sc.Demand
	rng := workload.NewDerived(sc.Seed, "demand", t, 0)
	needy := rng.UniformInt(d.NeedyLo, d.NeedyHi)
	factor := 1.0
	if d.SpikeEvery > 0 && t%d.SpikeEvery == 0 {
		factor = d.SpikeFactor
	}
	for _, ev := range sc.Events {
		if ev.Round == t && ev.Action == ActSpike {
			factor = ev.Factor
			if factor == 0 {
				factor = d.SpikeFactor
			}
		}
	}
	demand := make([]int, needy)
	for k := range demand {
		demand[k] = int(math.Round(float64(rng.UniformInt(d.DemandLo, d.DemandHi)) * factor))
		if demand[k] < 1 {
			demand[k] = 1
		}
	}
	return demand
}

// scenarioBids draws one agent's alternative bids for round t as a pure
// function of (scenario seed, agent, round) — a crashed and re-announced
// round regenerates bit-identical bids.
func scenarioBids(sc *Scenario, spec AgentSpec, t, needy int) []platform.WireBid {
	rng := workload.NewDerived(sc.Seed, "bid", spec.ID, t)
	bids := make([]platform.WireBid, 0, spec.BidsPer)
	maxWidth := 2
	if needy < maxWidth {
		maxWidth = needy
	}
	for alt := 1; alt <= spec.BidsPer; alt++ {
		width := rng.UniformInt(1, maxWidth)
		bids = append(bids, platform.WireBid{
			Alt:    alt,
			Covers: rng.Subset(needy, width),
			Price:  rng.Uniform(spec.PriceLo, spec.PriceHi) * float64(width),
			Units:  rng.UniformInt(1, 2),
		})
	}
	return bids
}

// postRound reaps agents the round killed (crashes and injected slow
// writers) and schedules their rejoin.
func (e *engine) postRound(t int) {
	e.mu.Lock()
	var dead []int
	for id := range e.agents {
		if in, ok := e.inst[id]; ok && in.t == t && (in.mode == ActCrash || in.mode == ActSlow) {
			dead = append(dead, id)
		}
	}
	e.mu.Unlock()
	for _, id := range dead {
		e.mu.Lock()
		ag := e.agents[id]
		delete(e.agents, id)
		e.mu.Unlock()
		if ag == nil {
			continue
		}
		if in, _ := e.instFor(id, t); in.mode == ActSlow {
			// The server already dropped the connection; make sure the
			// client side is dead too before re-dialing later.
			ag.Abort()
		}
		select {
		case <-ag.Done():
		case <-time.After(2 * time.Second):
			e.log.Printf("chaos: round %d: agent %d did not die cleanly", t, id)
			_ = ag.Close()
		}
		e.markAway(id, t)
	}
}

func (e *engine) instFor(id, t int) (instruction, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	in, ok := e.inst[id]
	return in, ok && in.t == t
}

// fedRound interleaves one multi-cloud federated round with the platform
// rounds and hands the result to the auditor. The federation keeps its
// own online mechanism state across the run, entirely in-process.
func (e *engine) fedRound(t int) error {
	spec := e.sc.Federation
	if e.fed == nil {
		topo := topology.Generate(workload.NewDerived(e.sc.Seed, "topology", 0, 0), topology.Config{
			Clouds: spec.Clouds, Users: 10 * spec.Clouds,
		})
		fed, err := federation.New(federation.Config{
			Topology: topo,
			Auction:  core.MSOAConfig{Options: core.Options{Parallelism: 1}},
		})
		if err != nil {
			return fmt.Errorf("chaos: federation: %w", err)
		}
		e.fed = fed
	}
	markets := make([]federation.CloudMarket, 0, spec.Clouds)
	for c := 1; c <= spec.Clouds; c++ {
		rng := workload.NewDerived(e.sc.Seed, "fed", t, c)
		ins := &core.Instance{}
		if c == spec.Clouds && e.fedRes%2 == 1 {
			// Every other federated round the last cloud is a pure bid
			// pool: zero demand, bids only available for borrowing.
			ins.Demand = nil
		} else {
			ins.Demand = []int{rng.UniformInt(1, 3), rng.UniformInt(1, 3)}
		}
		bidders := 4
		if c == 1 {
			// Cloud 1 is deliberately under-supplied so it regularly has to
			// borrow at a latency premium.
			bidders = 2
			if ins.Demand != nil {
				ins.Demand = []int{rng.UniformInt(2, 4), rng.UniformInt(2, 4)}
			}
		}
		for i := 1; i <= bidders; i++ {
			width := rng.UniformInt(1, 2)
			ins.Bids = append(ins.Bids, core.Bid{
				Bidder: 1000*c + i,
				Alt:    1,
				Price:  rng.Uniform(10, 35) * float64(width),
				Covers: rng.Subset(2, width),
				Units:  rng.UniformInt(1, 2),
			})
			ins.Bids[len(ins.Bids)-1].TrueCost = ins.Bids[len(ins.Bids)-1].Price
		}
		markets = append(markets, federation.CloudMarket{Cloud: c, Instance: ins})
	}
	res, err := e.fed.RunRound(t, markets)
	if err != nil {
		return fmt.Errorf("chaos: federated round %d: %w", t, err)
	}
	e.fedRes++
	e.aud.auditFed(t, res)
	return nil
}

// closeAgents disconnects every still-live agent.
func (e *engine) closeAgents() {
	e.mu.Lock()
	agents := make([]*platform.Agent, 0, len(e.agents))
	for _, a := range e.agents {
		agents = append(agents, a)
	}
	e.agents = map[int]*platform.Agent{}
	e.mu.Unlock()
	for _, a := range agents {
		_ = a.Close()
	}
}

// waitFor polls cond until it holds or the budget elapses.
func waitFor(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(time.Millisecond)
	}
}
