package chaos

import (
	"testing"
)

// TestPipelineCompareMatches runs a shortened pipeline scenario through
// the serial-vs-pipelined comparison harness and requires a full match:
// identical WAL bytes, state hash, and summary. This is the in-tree
// version of `chaos -scenario pipeline` (the soak gate runs the full
// 120 rounds).
func TestPipelineCompareMatches(t *testing.T) {
	t.Parallel()
	sc := pipelineScenario()
	sc.Rounds = 40
	res, err := RunPipelineCompare(PipelineConfig{Scenario: sc, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WALMatch {
		t.Errorf("WALs differ between serial and pipelined pass")
	}
	if res.SerialHash != res.PipelinedHash {
		t.Errorf("state hash: serial %s, pipelined %s", res.SerialHash, res.PipelinedHash)
	}
	if !res.Match {
		t.Errorf("pipeline comparison diverged: %+v", res)
	}
	if res.SerialSummary == nil || res.SerialSummary.Rounds != sc.Rounds {
		t.Errorf("serial summary %+v, want %d rounds", res.SerialSummary, sc.Rounds)
	}
}

// TestPipelineCompareRepeatable re-runs the comparison and requires the
// final state hash to be stable across independent harness runs. This
// is the regression test for the map-iteration-order bug in
// Outcome.TotalPayment: summing payments in randomized map order
// perturbed the summary's last ULP, so byte-compared runs of the very
// same scenario disagreed with each other.
func TestPipelineCompareRepeatable(t *testing.T) {
	t.Parallel()
	sc := pipelineScenario()
	sc.Rounds = 30
	var hash string
	for i := 0; i < 3; i++ {
		res, err := RunPipelineCompare(PipelineConfig{Scenario: sc, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Match {
			t.Fatalf("run %d diverged: %+v", i, res)
		}
		if hash == "" {
			hash = res.SerialHash
		} else if res.SerialHash != hash {
			t.Fatalf("run %d state hash %s, want %s (nondeterministic harness)", i, res.SerialHash, hash)
		}
	}
}
