package chaos

import (
	"fmt"
	"sort"

	"edgeauction/internal/platform"
)

// Builtin returns the named built-in scenario (a fresh copy, safe to
// mutate) or an error naming the alternatives.
func Builtin(name string) (*Scenario, error) {
	if build, ok := builtins[name]; ok {
		return build(), nil
	}
	return nil, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, BuiltinNames())
}

// BuiltinNames lists the built-in scenarios in sorted order.
func BuiltinNames() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

var builtins = map[string]func() *Scenario{
	"churn":      churnScenario,
	"faults":     faultsScenario,
	"capacity":   capacityScenario,
	"federation": federationScenario,
	"crash":      crashScenario,
	"pipeline":   pipelineScenario,
	"overload":   overloadScenario,
}

// churnScenario is the soak gate: 250 rounds of light randomized churn
// over eight capacity-limited agents, periodic demand spikes, and a few
// scripted kills — enough traffic to exercise every fault path while the
// overwhelming majority of rounds still clear.
func churnScenario() *Scenario {
	return New("churn").
		WithSeed(42).
		WithRounds(250).
		WithDeadline(40).
		WithAgents(8, 900).
		WithChurn(ChurnSpec{
			CrashProb: 0.01, DelayProb: 0.02, SlowProb: 0.01, AbstainProb: 0.02,
			RejoinAfter: 2,
		}).
		WithDemand(DemandSpec{SpikeEvery: 50, SpikeFactor: 3}).
		On(30, 3, ActReset).
		On(90, 5, ActLeave).
		On(120, 5, ActJoin).
		On(150, 1, ActCrash).
		SpikeAt(200, 4)
}

// faultsScenario leans hard on the fault paths: every round has an
// expected casualty, and scripted events pile several faults into the
// same rounds.
func faultsScenario() *Scenario {
	return New("faults").
		WithSeed(7).
		WithRounds(120).
		WithDeadline(40).
		WithAgents(10, 0).
		WithChurn(ChurnSpec{
			CrashProb: 0.03, DelayProb: 0.05, SlowProb: 0.03, AbstainProb: 0.04,
			RejoinAfter: 1,
		}).
		WithDemand(DemandSpec{NeedyLo: 2, NeedyHi: 5, DemandLo: 1, DemandHi: 4}).
		On(10, 1, ActCrash).
		On(10, 2, ActDelay).
		On(10, 3, ActSlow).
		On(40, 4, ActReset).
		On(40, 5, ActAbstain).
		On(80, 6, ActLeave).
		On(100, 6, ActJoin)
}

// capacityScenario starves the market: tiny lifetime capacities Θ and
// recurring demand spikes drive ψ updates, capacity-based exclusions,
// and eventually infeasible rounds — the auditor must track the dual
// state through all of it.
func capacityScenario() *Scenario {
	return New("capacity").
		WithSeed(3).
		WithRounds(80).
		WithDeadline(40).
		WithAgents(6, 24).
		WithAgent(AgentSpec{ID: 7, Capacity: 0, Join: 40}).
		WithChurn(ChurnSpec{AbstainProb: 0.05}).
		WithDemand(DemandSpec{NeedyLo: 2, NeedyHi: 3, DemandLo: 1, DemandHi: 2, SpikeEvery: 20, SpikeFactor: 2})
}

// crashScenario is the soak-crash gate: 60 rounds over six
// capacity-limited agents with the PLATFORM process killed at every
// scripted crash point — mid-gather (round lost before logging),
// pre-announce (logged but unannounced), post-announce (announced and
// logged) — several times each, recovering through snapshot + WAL-suffix
// replay. Capacities are tight enough that ψ is non-trivial when the
// crashes hit, so recovery must reproduce real dual state, not zeros.
func crashScenario() *Scenario {
	return New("crash").
		WithSeed(19).
		WithRounds(60).
		WithDeadline(40).
		WithAgents(6, 60).
		WithDemand(DemandSpec{NeedyLo: 2, NeedyHi: 3, DemandLo: 1, DemandHi: 2, SpikeEvery: 15, SpikeFactor: 2}).
		CrashPlatformAt(5, platform.CrashMidGather).
		CrashPlatformAt(12, platform.CrashPreAnnounce).
		CrashPlatformAt(23, platform.CrashPostAnnounce).
		CrashPlatformAt(24, platform.CrashMidGather).
		CrashPlatformAt(41, platform.CrashPreAnnounce).
		CrashPlatformAt(60, platform.CrashPostAnnounce)
}

// pipelineScenario is the overlap-determinism gate: 120 rounds over
// eight capacity-limited agents cleared once serially and once through
// the pipelined round engine with a real overlap window. Capacities and
// recurring spikes keep ψ non-trivial, so the byte-compared WALs carry
// real dual state, not zeros. Any reordering the overlap leaked into the
// durable record — a bid attributed across rounds, a WAL append racing
// an announce — shows up as a byte diff.
func pipelineScenario() *Scenario {
	return New("pipeline").
		WithSeed(29).
		WithRounds(120).
		WithDeadline(40).
		WithAgents(8, 200).
		WithDemand(DemandSpec{NeedyLo: 2, NeedyHi: 4, DemandLo: 1, DemandHi: 3, SpikeEvery: 25, SpikeFactor: 2}).
		WithPipelined()
}

// overloadScenario is the workload-driven soak gate (soak-workload):
// demand is NOT drawn i.i.d. — it is the precomputed schedule of the
// cascading-overload service graph simulated at 3× work, bridged through
// the §III demand estimator. The hot fan-in service saturates, so the
// platform clears sustained topology-shaped demand under light churn
// while the auditor shadow-replays every round. Byte-identical across
// runs like every scenario: the schedule is a pure function of the seed.
func overloadScenario() *Scenario {
	return New("overload").
		WithSeed(23).
		WithRounds(120).
		WithDeadline(40).
		WithAgents(8, 600).
		WithChurn(ChurnSpec{CrashProb: 0.01, DelayProb: 0.01, AbstainProb: 0.02, RejoinAfter: 2}).
		// Demand capped at 4 units like the i.i.d. scenarios: eight lightly
		// churned agents can cover it, so most rounds clear and the soak
		// exercises the mechanism, not just the infeasible path.
		WithWorkload(WorkloadSpec{Topology: "overload", WorkScale: 3, MaxDemand: 4})
}

// federationScenario interleaves a three-cloud federated round after
// every tenth platform round, with the first cloud chronically
// under-supplied so cross-cloud borrowing actually happens.
func federationScenario() *Scenario {
	return New("federation").
		WithSeed(11).
		WithRounds(150).
		WithDeadline(40).
		WithAgents(8, 600).
		WithChurn(ChurnSpec{CrashProb: 0.01, DelayProb: 0.01, AbstainProb: 0.02, RejoinAfter: 2}).
		WithDemand(DemandSpec{}).
		WithFederation(10, 3)
}
