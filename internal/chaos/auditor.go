package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"edgeauction/internal/core"
	"edgeauction/internal/federation"
	"edgeauction/internal/obs"
	"edgeauction/internal/platform"
)

// Violation is one broken mechanism invariant caught by the auditor.
type Violation struct {
	// Round is the platform round the violation was observed in.
	Round int `json:"round"`
	// Invariant names the broken property (feasibility,
	// individual-rationality, critical-value, psi, capacity, budget,
	// certificate, consistency, bid-order, bid-count, federation).
	Invariant string `json:"invariant"`
	// Detail is a human-readable account of the mismatch.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("round %d: %s: %s", v.Round, v.Invariant, v.Detail)
}

const auditEps = 1e-6

// auditor is the online invariant checker. It consumes the platform's
// trace stream (batched per round by an obs.RoundSink) and audit records
// (via platform.NewAuditSink, delivered after the round's trace batch on
// the same goroutine), maintains an independent shadow replay of the
// online mechanism, and machine-checks after every round:
//
//   - consistency: the shadow replay reproduces the platform's feasibility
//     verdict, winner set, social cost, and every payment bit-for-bit;
//   - feasibility: winners cover the announced demand (core.VerifyFeasible);
//   - individual rationality: every payment covers the winner's scaled
//     report (core.VerifyIndividualRationality, plus the raw award check);
//   - critical-value consistency: one rotating winner per round is
//     replayed from scratch through core.SpotCheckCriticalValue;
//   - ψ updates: every PsiUpdate event matches the shadow state bit-exactly
//     and ψ never decreases;
//   - capacity conservation: no limited bidder exceeds its lifetime Θ;
//   - budget sanity: payments ≥ scaled cost ≥ social cost per round, and
//     cumulative totals track the shadow summary;
//   - dual certificates: the round's certificate verifies against the
//     FILTERED instance (core.VerifyCertificate) and the traced ratio
//     matches the shadow's;
//   - trace integrity: bids are (bidder, alt)-sorted and the BidReceived
//     events account for every collected bid.
//
// Every audit line the auditor writes is free of wall-clock fields and
// arrival-order artifacts, so two runs of the same scenario seed produce
// byte-identical logs.
type auditor struct {
	sc     *Scenario
	enc    *json.Encoder
	logger *log.Logger

	shadow   *core.MSOA
	capacity map[int]int
	psiSeen  map[int]float64
	// ssam gates the SSAM-only invariants (critical-value spot checks,
	// certificates): they encode Algorithm 1's payment rule and dual
	// fitting, which other registered mechanisms do not promise.
	// Universal invariants (feasibility, IR, budget, consistency,
	// capacity, trace integrity) run for every mechanism, and
	// SettlementReporter mechanisms additionally get the per-round
	// penalty-bound check.
	ssam bool

	dumpDir string
	maxViol int

	mu         sync.Mutex
	batches    map[int][]obs.Event
	violations []Violation
	dumps      []string
	checks     int
	rounds     int
	infeasible int
	cumPay     float64
	rot        int
}

func newAuditor(sc *Scenario, auditLog io.Writer, dumpDir string, maxViol int, logger *log.Logger) *auditor {
	capacity := map[int]int{}
	spec := sc.MechanismSpec()
	a := &auditor{
		sc:       sc,
		logger:   logger,
		capacity: capacity,
		psiSeen:  map[int]float64{},
		ssam:     spec.IsSSAM(),
		dumpDir:  dumpDir,
		maxViol:  maxViol,
		batches:  map[int][]obs.Event{},
		shadow: core.NewMSOA(core.MSOAConfig{
			Capacity:  capacity,
			Mechanism: spec,
			Options:   core.Options{Parallelism: 1},
		}),
	}
	if auditLog != nil {
		a.enc = json.NewEncoder(auditLog)
	}
	return a
}

// storeBatch is the obs.RoundSink flush callback.
func (a *auditor) storeBatch(t int, events []obs.Event) {
	a.mu.Lock()
	a.batches[t] = events
	a.mu.Unlock()
}

func (a *auditor) takeBatch(t int) []obs.Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.batches[t]
	delete(a.batches, t)
	return b
}

// stop reports whether the violation budget is exhausted.
func (a *auditor) stop() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxViol > 0 && len(a.violations) >= a.maxViol
}

// lineAward is one award in a deterministic audit line.
type lineAward struct {
	Bidder  int     `json:"bidder"`
	Alt     int     `json:"alt"`
	Payment float64 `json:"payment"`
}

// linePsi is one bidder's dual state after a round.
type linePsi struct {
	Bidder int     `json:"bidder"`
	Psi    float64 `json:"psi"`
	Chi    int     `json:"chi"`
}

// auditLine is one deterministic per-round log line. It deliberately
// carries no timestamps, latencies, or drop-event counts: those depend on
// scheduler and network timing, and the soak gate compares two runs of
// the same seed with cmp(1).
type auditLine struct {
	Kind       string      `json:"kind"`
	T          int         `json:"t"`
	Demand     []int       `json:"demand,omitempty"`
	Bids       int         `json:"bids"`
	Infeasible bool        `json:"infeasible,omitempty"`
	Awards     []lineAward `json:"awards,omitempty"`
	SocialCost float64     `json:"social_cost"`
	TotalPay   float64     `json:"total_payment"`
	CertRatio  float64     `json:"cert_ratio,omitempty"`
	Psi        []linePsi   `json:"psi,omitempty"`
	Checks     int         `json:"checks"`
	Violations []Violation `json:"violations,omitempty"`
}

// auditRound runs every invariant check against one platform round. It is
// installed via platform.NewAuditSink, so it executes synchronously on the
// RunRound goroutine after the round's trace batch has been flushed. The
// returned error is always nil — a violation is a finding, not an
// operational fault — so the soak keeps running to its violation budget.
func (a *auditor) auditRound(rec *platform.AuditRecord) error {
	batch := a.takeBatch(rec.T)
	var viol []Violation
	checks := 0
	check := func(invariant string, err error) {
		checks++
		if err != nil {
			viol = append(viol, Violation{Round: rec.T, Invariant: invariant, Detail: err.Error()})
		}
	}
	checkf := func(invariant string, ok bool, format string, args ...any) {
		checks++
		if !ok {
			viol = append(viol, Violation{Round: rec.T, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
		}
	}

	// Learn joins (including rejoins) from the trace before replaying: the
	// shadow MSOA shares a.capacity, mirroring how the real server merges
	// registration capacities into its own mechanism.
	bidsReceived := 0
	var psiEvents []obs.PsiUpdate
	var certs []obs.Certificate
	for _, ev := range batch {
		switch e := ev.(type) {
		case obs.AgentJoin:
			a.capacity[e.ID] = e.Capacity
		case obs.BidReceived:
			if e.T == rec.T {
				bidsReceived += e.Bids
			}
		case obs.PsiUpdate:
			if e.T == rec.T {
				psiEvents = append(psiEvents, e)
			}
		case obs.Certificate:
			certs = append(certs, e)
		}
	}
	checkf("bid-count", bidsReceived == len(rec.Bids),
		"BidReceived events account for %d bids, audit record holds %d", bidsReceived, len(rec.Bids))

	// Rebuild the instance the platform says it ran on — the same
	// AuditRecord.Instance reconstruction WAL recovery replays from — and
	// check the record's bid ordering on the way.
	for i := 1; i < len(rec.Bids); i++ {
		b, prev := rec.Bids[i], rec.Bids[i-1]
		if b.Bidder < prev.Bidder || (b.Bidder == prev.Bidder && b.Alt <= prev.Alt) {
			checkf("bid-order", false, "bid %d (%d/%d) out of (bidder, alt) order after (%d/%d)",
				i, b.Bidder, b.Alt, prev.Bidder, prev.Alt)
		}
	}
	ins := rec.Instance()

	// Independent shadow replay through the same platform.ReplayRecord the
	// WAL recovery path uses. Serial payments are bit-identical to the
	// server's parallel ones, so every comparison below is exact. (The
	// engine's records carry no capacity/window maps — the shadow learns
	// those from AgentJoin events above — so ReplayRecord leaves
	// a.capacity alone.)
	res := platform.ReplayRecord(a.shadow, rec, a.capacity, nil)

	line := auditLine{Kind: "round", T: rec.T, Demand: rec.Demand, Bids: len(rec.Bids)}
	checkf("consistency", rec.Infeasible == (res.Err != nil),
		"platform infeasible=%v, shadow replay err=%v", rec.Infeasible, res.Err)

	if res.Err == nil && !rec.Infeasible {
		out := res.Outcome
		checkf("consistency", rec.SocialCost == out.SocialCost,
			"platform social cost %v, shadow %v", rec.SocialCost, out.SocialCost)
		checkf("consistency", len(rec.Awards) == len(out.Winners),
			"platform granted %d awards, shadow selected %d winners", len(rec.Awards), len(out.Winners))
		totalPay := 0.0
		for i, w := range out.Winners {
			if i >= len(rec.Awards) {
				break
			}
			aw := rec.Awards[i]
			b := ins.Bids[w]
			checkf("consistency", aw.Bidder == b.Bidder && aw.Alt == b.Alt,
				"award %d is %d/%d, shadow winner is %d/%d", i, aw.Bidder, aw.Alt, b.Bidder, b.Alt)
			checkf("payment", aw.Payment == out.Payments[w],
				"award %d (bidder %d): platform pays %v, critical value is %v", i, aw.Bidder, aw.Payment, out.Payments[w])
			checkf("individual-rationality", aw.Payment >= res.Scaled[w]-auditEps,
				"award %d (bidder %d): payment %v below scaled report %v", i, aw.Bidder, aw.Payment, res.Scaled[w])
			totalPay += aw.Payment
			line.Awards = append(line.Awards, lineAward{Bidder: b.Bidder, Alt: b.Alt, Payment: out.Payments[w]})
		}
		check("feasibility", core.VerifyFeasible(ins, out))
		check("individual-rationality", core.VerifyIndividualRationality(ins, out, res.Scaled))

		// The certificate was fitted on the candidate set that survived the
		// capacity/window filter, so verification needs that instance
		// back. Certificates are an SSAM-only promise; other mechanisms
		// must not emit any.
		fIns, fScaled, toFiltered := filterExcluded(ins, res.Scaled, res.Excluded)
		if a.ssam {
			check("certificate", core.VerifyCertificate(fIns, out, fScaled))
			checkf("certificate", len(certs) == 1,
				"feasible round emitted %d certificate events, want 1", len(certs))
			if len(certs) == 1 && out.Dual != nil {
				checkf("certificate", certs[0].Ratio == out.Dual.Ratio(),
					"traced certificate ratio %v, shadow ratio %v", certs[0].Ratio, out.Dual.Ratio())
			}
		} else {
			checkf("certificate", len(certs) == 0,
				"non-SSAM round emitted %d certificate events", len(certs))
		}

		// Budget: payments dominate scaled reports, which dominate raw
		// prices — universal across mechanisms (IR per winner plus the
		// scaled-price construction).
		checkf("budget", totalPay >= out.ScaledCost-auditEps && out.ScaledCost >= out.SocialCost-auditEps,
			"payment %v / scaled cost %v / social cost %v out of order", totalPay, out.ScaledCost, out.SocialCost)

		// Rotating critical-value spot-check: a from-scratch replay of one
		// winner per round in the filtered bid space. SSAM-only: the
		// Myerson critical-value payment rule is Algorithm 1's, not a
		// universal promise.
		if a.ssam && len(out.Winners) > 0 {
			w := out.Winners[a.rot%len(out.Winners)]
			a.rot++
			if fw, ok := toFiltered[w]; ok {
				check("critical-value", core.SpotCheckCriticalValue(fIns, fScaled, core.Options{Parallelism: 1}, fw, out.Payments[w]))
			} else {
				checkf("consistency", false, "winner %d is also in the excluded list", w)
			}
		}
		a.cumPay += totalPay
		line.SocialCost = out.SocialCost
		line.TotalPay = totalPay
		if out.Dual != nil {
			line.CertRatio = out.Dual.Ratio()
		}
	} else {
		a.infeasible++
		line.Infeasible = true
		checkf("consistency", len(rec.Awards) == 0 && rec.SocialCost == 0,
			"infeasible round carries %d awards, social cost %v", len(rec.Awards), rec.SocialCost)
		checkf("certificate", len(certs) == 0,
			"infeasible round emitted %d certificate events", len(certs))
	}

	// Per-mechanism invariant: a mechanism that settles futures
	// reservations (the double auction) must satisfy the overbooking
	// penalty bound every round — penalties never exceed the configured
	// rate times the defaulted booked value, futures payments never
	// exceed the booked value — and its settlement must account for the
	// round's full outlay.
	if sr, ok := a.shadow.Mechanism().(core.SettlementReporter); ok {
		if st := sr.LastSettlement(); st != nil {
			check("penalty-bound", core.VerifyPenaltyBound(st, sr.SettlementConfig()))
			if res.Err == nil && !rec.Infeasible {
				settled := st.FuturesPaid + st.SpotPaid
				checkf("penalty-bound", math.Abs(settled-res.Outcome.TotalPayment()) <= auditEps,
					"settlement accounts %v (futures %v + spot %v), round paid %v",
					settled, st.FuturesPaid, st.SpotPaid, res.Outcome.TotalPayment())
			}
		}
	}

	// ψ trajectory: traced updates must match the shadow bit-exactly and
	// never decrease (the update rule only multiplies up and adds).
	sort.Slice(psiEvents, func(i, j int) bool { return psiEvents[i].Bidder < psiEvents[j].Bidder })
	for _, ev := range psiEvents {
		checkf("psi", ev.Psi == a.shadow.Psi(ev.Bidder),
			"bidder %d traced ψ %v, shadow ψ %v", ev.Bidder, ev.Psi, a.shadow.Psi(ev.Bidder))
		checkf("psi", ev.Psi >= a.psiSeen[ev.Bidder],
			"bidder %d ψ decreased %v -> %v", ev.Bidder, a.psiSeen[ev.Bidder], ev.Psi)
		checkf("capacity", ev.Chi == a.shadow.UsedCapacity(ev.Bidder),
			"bidder %d traced χ %d, shadow χ %d", ev.Bidder, ev.Chi, a.shadow.UsedCapacity(ev.Bidder))
		a.psiSeen[ev.Bidder] = ev.Psi
		line.Psi = append(line.Psi, linePsi{Bidder: ev.Bidder, Psi: ev.Psi, Chi: ev.Chi})
	}

	// Capacity conservation for every limited bidder seen so far.
	for _, id := range sortedKeys(a.capacity) {
		th := a.capacity[id]
		if th <= 0 {
			continue
		}
		checkf("capacity", a.shadow.UsedCapacity(id) <= th,
			"bidder %d consumed %d of Θ=%d slots", id, a.shadow.UsedCapacity(id), th)
	}

	// Cumulative budget vs the shadow's own accounting.
	sum := a.shadow.Summary()
	checkf("budget", math.Abs(sum.TotalPayment-a.cumPay) <= auditEps,
		"cumulative platform payments %v drifted from shadow total %v", a.cumPay, sum.TotalPayment)

	a.rounds++
	a.checks += checks
	line.Checks = checks
	line.Violations = viol
	a.finishLine(rec.T, line, viol, rec, batch)
	return nil
}

// auditFed checks one federated round: per-cloud coverage on the exact
// instance the market cleared (local or premium-priced federated),
// payments dominating reports, the one-win-per-round rule applied
// federation-wide, and total accounting.
func (a *auditor) auditFed(t int, res *federation.RoundResult) {
	var viol []Violation
	checks := 0
	checkf := func(invariant string, ok bool, format string, args ...any) {
		checks++
		if !ok {
			viol = append(viol, Violation{Round: t, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
		}
	}
	line := auditLine{Kind: "federation", T: t}
	wonBy := map[int]int{}
	var social, pay float64
	for _, cr := range res.Clouds {
		if cr.Err != nil || cr.Outcome == nil || cr.Instance == nil || cr.Instance.TotalDemand() == 0 {
			continue
		}
		checks++
		if err := core.VerifyFeasible(cr.Instance, cr.Outcome); err != nil {
			viol = append(viol, Violation{Round: t, Invariant: "federation",
				Detail: fmt.Sprintf("cloud %d: %v", cr.Cloud, err)})
		}
		for _, w := range cr.Outcome.Winners {
			b := cr.Instance.Bids[w]
			checkf("federation", cr.Outcome.Payments[w] >= b.Price-auditEps,
				"cloud %d bidder %d paid %v below its (premium) price %v", cr.Cloud, b.Bidder, cr.Outcome.Payments[w], b.Price)
			if prev, dup := wonBy[b.Bidder]; dup {
				checkf("federation", false, "bidder %d won in clouds %d and %d the same round", b.Bidder, prev, cr.Cloud)
			}
			wonBy[b.Bidder] = cr.Cloud
		}
		checkf("federation", len(cr.Transfers) == 0 || cr.Federated,
			"cloud %d has %d transfers without federating", cr.Cloud, len(cr.Transfers))
		social += cr.Outcome.SocialCost
		pay += cr.Outcome.TotalPayment()
	}
	checkf("federation", math.Abs(social-res.SocialCost) <= auditEps,
		"cloud social costs sum to %v, round reports %v", social, res.SocialCost)
	checkf("federation", math.Abs(pay-res.TotalPayment) <= auditEps,
		"cloud payments sum to %v, round reports %v", pay, res.TotalPayment)

	line.SocialCost = res.SocialCost
	line.TotalPay = res.TotalPayment
	line.Bids = res.BorrowedSlots
	a.checks += checks
	line.Checks = checks
	line.Violations = viol
	a.finishLine(t, line, viol, nil, nil)
}

// finishLine records violations, writes the audit line, and dumps the
// offending round's evidence when asked to.
func (a *auditor) finishLine(t int, line auditLine, viol []Violation, rec *platform.AuditRecord, batch []obs.Event) {
	a.mu.Lock()
	a.violations = append(a.violations, viol...)
	a.mu.Unlock()
	if a.enc != nil {
		if err := a.enc.Encode(line); err != nil && a.logger != nil {
			a.logger.Printf("chaos: write audit line: %v", err)
		}
	}
	if len(viol) == 0 {
		return
	}
	if a.logger != nil {
		for _, v := range viol {
			a.logger.Printf("chaos: VIOLATION %s", v)
		}
	}
	if a.dumpDir == "" {
		return
	}
	path, err := a.dump(t, viol, rec, batch)
	if err != nil {
		if a.logger != nil {
			a.logger.Printf("chaos: dump round %d: %v", t, err)
		}
		return
	}
	a.mu.Lock()
	a.dumps = append(a.dumps, path)
	a.mu.Unlock()
	if a.logger != nil {
		a.logger.Printf("chaos: round %d evidence dumped to %s", t, path)
		a.logger.Printf("chaos: repro: go run ./cmd/chaos -scenario %s -seed %d -rounds %d", a.sc.Name, a.sc.Seed, t)
	}
}

// dumpEvent pairs a trace event with its kind so the dump is
// self-describing.
type dumpEvent struct {
	Kind  string    `json:"kind"`
	Event obs.Event `json:"event"`
}

// roundDump is the one-command-repro evidence file for a violated round.
type roundDump struct {
	Scenario   string                `json:"scenario"`
	Seed       int64                 `json:"seed"`
	Round      int                   `json:"round"`
	Violations []Violation           `json:"violations"`
	Record     *platform.AuditRecord `json:"record,omitempty"`
	Trace      []dumpEvent           `json:"trace,omitempty"`
}

func (a *auditor) dump(t int, viol []Violation, rec *platform.AuditRecord, batch []obs.Event) (string, error) {
	if err := os.MkdirAll(a.dumpDir, 0o755); err != nil {
		return "", err
	}
	d := roundDump{Scenario: a.sc.Name, Seed: a.sc.Seed, Round: t, Violations: viol, Record: rec}
	for _, ev := range batch {
		d.Trace = append(d.Trace, dumpEvent{Kind: ev.EventKind(), Event: ev})
	}
	path := filepath.Join(a.dumpDir, fmt.Sprintf("%s-round%04d.json", a.sc.Name, t))
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, data, 0o644)
}

// filterExcluded rebuilds the candidate instance the kernel actually ran
// on: the original minus the capacity/window-excluded bid indices. The
// returned map translates original bid indices to filtered ones.
func filterExcluded(ins *core.Instance, scaled []float64, excluded []int) (*core.Instance, []float64, map[int]int) {
	drop := map[int]bool{}
	for _, i := range excluded {
		drop[i] = true
	}
	f := &core.Instance{Demand: ins.Demand}
	var fScaled []float64
	toFiltered := map[int]int{}
	for i, b := range ins.Bids {
		if drop[i] {
			continue
		}
		toFiltered[i] = len(f.Bids)
		f.Bids = append(f.Bids, b)
		fScaled = append(fScaled, scaled[i])
	}
	return f, fScaled, toFiltered
}

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
