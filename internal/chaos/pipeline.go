package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"edgeauction/internal/core"
	"edgeauction/internal/platform"
)

// PipelineConfig parameterizes one serial-vs-pipelined comparison run
// (RunPipelineCompare).
type PipelineConfig struct {
	// Scenario declares the workload. Like the crash harness it drives a
	// fixed always-bidding population: what matters is that both passes
	// see identical bids, which scenarioDemand/scenarioBids guarantee by
	// construction.
	Scenario *Scenario
	// Dir is the working directory for the two WALs (required; the
	// caller owns cleanup).
	Dir string
	// Fsync forces the WALs to stable storage on every append.
	Fsync bool
	// Logger receives operational progress; nil discards it.
	Logger *log.Logger
}

// PipelineResult is the outcome of one comparison run: the same scenario
// cleared once through the serial RunRound loop and once through the
// overlapped round engine, compared byte-for-byte.
type PipelineResult struct {
	Scenario string
	Seed     int64
	Rounds   int
	// SerialHash/PipelinedHash fingerprint the final mechanism state
	// (core.MSOAState.Hash) of each pass.
	SerialHash    string
	PipelinedHash string
	// SerialSummary/PipelinedSummary are each pass's aggregate outcome.
	SerialSummary    *core.OnlineSummary
	PipelinedSummary *core.OnlineSummary
	// WALMatch reports the two write-ahead logs are byte-identical — the
	// strongest statement: with settle t overlapping gather t+1, the
	// platform still logged the exact bytes the serial engine would have.
	WALMatch bool
	// Match is the overall verdict: state hashes, summaries, and WAL
	// bytes all agree.
	Match bool
}

// RunPipelineCompare executes the pipeline determinism scenario: a
// serial pass (RunRound per round) and a pipelined pass
// (platform.RunPipelined with a real overlap window) over the same
// workload. Because the ingest buffer re-emits bids in canonical
// (Bidder, Alt) order and rounds settle strictly in sequence, the final
// ψ/χ state hash, the OnlineSummary, and the raw WAL bytes of the two
// passes must agree; Match reports whether they do.
func RunPipelineCompare(cfg PipelineConfig) (*PipelineResult, error) {
	sc := cfg.Scenario
	if sc == nil {
		return nil, fmt.Errorf("chaos: no scenario")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: pipeline run needs a working dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("chaos: pipeline dir: %w", err)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}

	res := &PipelineResult{Scenario: sc.Name, Seed: sc.Seed, Rounds: sc.Rounds}

	serialPath := filepath.Join(cfg.Dir, "serial.wal")
	serial, err := pipelinePass(sc, cfg, serialPath, false, logger)
	if err != nil {
		return nil, fmt.Errorf("chaos: serial pass: %w", err)
	}
	res.SerialHash = serial.hash
	res.SerialSummary = serial.summary

	pipedPath := filepath.Join(cfg.Dir, "pipelined.wal")
	piped, err := pipelinePass(sc, cfg, pipedPath, true, logger)
	if err != nil {
		return nil, fmt.Errorf("chaos: pipelined pass: %w", err)
	}
	res.PipelinedHash = piped.hash
	res.PipelinedSummary = piped.summary

	serialWAL, err := os.ReadFile(serialPath)
	if err != nil {
		return nil, fmt.Errorf("chaos: read serial WAL: %w", err)
	}
	pipedWAL, err := os.ReadFile(pipedPath)
	if err != nil {
		return nil, fmt.Errorf("chaos: read pipelined WAL: %w", err)
	}
	res.WALMatch = bytes.Equal(serialWAL, pipedWAL)
	res.Match = res.WALMatch &&
		res.SerialHash == res.PipelinedHash &&
		res.SerialSummary != nil && res.PipelinedSummary != nil &&
		*res.SerialSummary == *res.PipelinedSummary
	return res, nil
}

// pipelinePass runs the scenario once, serially or through the
// overlapped engine, and captures the final state.
func pipelinePass(sc *Scenario, cfg PipelineConfig, walPath string, pipelined bool, logger *log.Logger) (*passResult, error) {
	wal, err := platform.CreateWAL(walPath, cfg.Fsync)
	if err != nil {
		return nil, err
	}
	srv, err := platform.NewServer("127.0.0.1:0", platform.ServerConfig{
		BidDeadline:  time.Duration(sc.BidDeadlineMS) * time.Millisecond,
		WriteTimeout: 250 * time.Millisecond,
		Auction:      core.MSOAConfig{Mechanism: sc.MechanismSpec(), Options: core.Options{Parallelism: 1}},
		WAL:          wal,
		// A real overlap window, so the pipelined pass genuinely settles
		// round t while round t+1's bids stream in — determinism must
		// hold regardless of how the stages interleave.
		PipelineYield: 500 * time.Microsecond,
	})
	if err != nil {
		_ = wal.Close()
		return nil, err
	}
	agents, err := dialAll(srv, sc)
	if err != nil {
		_ = srv.Close()
		_ = wal.Close()
		return nil, err
	}
	defer func() {
		for _, ag := range agents {
			_ = ag.Close()
		}
		_ = srv.Close()
		_ = wal.Close()
	}()

	mode := "serial"
	if pipelined {
		mode = "pipelined"
	}
	logger.Printf("chaos: %s pass: %d rounds over %d agents", mode, sc.Rounds, len(agents))
	if pipelined {
		err = srv.RunPipelined(context.Background(), sc.Rounds,
			func(t int) ([]int, []int) { return scenarioDemand(sc, t), nil }, nil)
	} else {
		for t := 1; t <= sc.Rounds; t++ {
			if _, rerr := srv.RunRound(scenarioDemand(sc, t), nil); rerr != nil {
				err = fmt.Errorf("round %d: %w", t, rerr)
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}

	pr := &passResult{}
	_, st := srv.SnapshotState()
	if st == nil {
		st = &core.MSOAState{}
	}
	pr.hash = st.Hash()
	pr.summary = srv.Summary()
	return pr, nil
}
