package chaos

import (
	"bytes"
	"reflect"
	"testing"
)

// TestWorkloadScheduleDeterministic checks Validate precomputes the
// workload demand schedule as a pure function of the scenario: two
// validations (fresh copies) produce identical schedules, every round
// has demand, and the cap holds.
func TestWorkloadScheduleDeterministic(t *testing.T) {
	build := func() *Scenario {
		sc, err := Builtin("overload")
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatal(err)
		}
		return sc
	}
	a, b := build(), build()
	if len(a.wlDemand) != a.Rounds {
		t.Fatalf("schedule rounds = %d, want %d", len(a.wlDemand), a.Rounds)
	}
	if !reflect.DeepEqual(a.wlDemand, b.wlDemand) {
		t.Fatal("workload demand schedule differs across validations of the same scenario")
	}
	needySum := 0
	for tr, d := range a.wlDemand {
		if len(d) == 0 {
			t.Fatalf("round %d has empty demand", tr+1)
		}
		for _, u := range d {
			if u < 1 || u > 6 {
				t.Fatalf("round %d demand %v outside [1, cap 6]", tr+1, d)
			}
		}
		needySum += len(d)
	}
	// The overloaded graph must actually generate topology-driven demand,
	// not just the idle-round fallback.
	if needySum <= a.Rounds {
		t.Fatalf("schedule carries %d needy entries over %d rounds — the graph never overloads", needySum, a.Rounds)
	}
	// scenarioDemand serves the schedule, copied.
	d1 := scenarioDemand(a, 5)
	if !reflect.DeepEqual(d1, a.wlDemand[4]) {
		t.Fatalf("scenarioDemand(5) = %v, want schedule entry %v", d1, a.wlDemand[4])
	}
	d1[0] = -99
	if a.wlDemand[4][0] == -99 {
		t.Fatal("scenarioDemand returned the schedule's backing array, not a copy")
	}
}

// TestWorkloadScenarioValidation rejects bad workload specs.
func TestWorkloadScenarioValidation(t *testing.T) {
	base := func() *Scenario { return New("wl").WithRounds(5).WithAgents(2, 10) }
	if err := base().WithWorkload(WorkloadSpec{Topology: "no-such-graph"}).Validate(); err == nil {
		t.Fatal("unknown workload topology accepted")
	}
	if err := base().WithWorkload(WorkloadSpec{Topology: "overload", WorkScale: -1}).Validate(); err == nil {
		t.Fatal("negative work scale accepted")
	}
	if err := base().WithWorkload(WorkloadSpec{Topology: "overload", MaxDemand: -2}).Validate(); err == nil {
		t.Fatal("negative demand cap accepted")
	}
	if err := base().WithWorkload(WorkloadSpec{Topology: "three-tier"}).Validate(); err != nil {
		t.Fatalf("valid workload spec rejected: %v", err)
	}
}

// TestWorkloadScenarioJSONRoundTrip checks the workload field survives
// the JSON scenario format and the schedule is rebuilt on load.
func TestWorkloadScenarioJSONRoundTrip(t *testing.T) {
	sc, err := Builtin("overload")
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := sc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload == nil || back.Workload.Topology != "overload" || back.Workload.WorkScale != 3 {
		t.Fatalf("workload spec lost in round trip: %+v", back.Workload)
	}
	if !reflect.DeepEqual(back.wlDemand, sc.wlDemand) {
		t.Fatal("loaded scenario rebuilt a different demand schedule")
	}
}

// TestWorkloadScenarioRunsClean drives a short workload-driven scenario
// through the real platform twice: both runs must be audit-clean and
// byte-identical — the in-process version of the soak-workload gate.
func TestWorkloadScenarioRunsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a real platform")
	}
	scenario := func() *Scenario {
		return New("overload-short").
			WithSeed(23).
			WithRounds(12).
			WithDeadline(40).
			WithAgents(4, 200).
			WithWorkload(WorkloadSpec{Topology: "overload", WorkScale: 3})
	}
	var logs [2]bytes.Buffer
	for i := range logs {
		res, err := Run(Config{Scenario: scenario(), AuditLog: &logs[i]})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("run %d: %d violations, first: %+v", i, len(res.Violations), res.Violations[0])
		}
		if res.Rounds != 12 {
			t.Fatalf("run %d: audited %d rounds, want 12", i, res.Rounds)
		}
	}
	if !bytes.Equal(logs[0].Bytes(), logs[1].Bytes()) {
		t.Fatal("audit logs differ between two runs of the same workload scenario")
	}
}
