package obs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"edgeauction/internal/metrics"
)

// Counter is a monotonically increasing, concurrency-safe counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// LatencyHistogram is a concurrency-safe fixed-range histogram for latency
// observations, backed by metrics.Histogram. Out-of-range observations are
// clamped into the edge buckets and tracked as underflow/overflow, so a
// mis-sized range degrades visibly instead of silently.
type LatencyHistogram struct {
	mu sync.Mutex
	h  *metrics.Histogram
}

// Observe records one observation.
func (l *LatencyHistogram) Observe(x float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h.Add(x)
}

// Total returns the number of recorded observations.
func (l *LatencyHistogram) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Total()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0, 1]): the upper edge of the first bucket at which the cumulative
// count reaches q·total. Out-of-range observations are clamped into the
// edge buckets, so an overflow-heavy histogram reports its range
// maximum rather than underestimating the tail.
func (l *LatencyHistogram) Quantile(q float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.h.Total()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < l.h.Buckets(); i++ {
		cum += l.h.Bucket(i)
		if cum >= target {
			_, hi := l.h.BucketBounds(i)
			return hi
		}
	}
	_, hi := l.h.BucketBounds(l.h.Buckets() - 1)
	return hi
}

// Snapshot returns a JSON-marshalable view of the histogram: total,
// under/overflow, and the non-empty buckets as "[lo,hi)" -> count.
func (l *LatencyHistogram) Snapshot() map[string]any {
	l.mu.Lock()
	defer l.mu.Unlock()
	buckets := make(map[string]int64)
	for i := 0; i < l.h.Buckets(); i++ {
		if c := l.h.Bucket(i); c > 0 {
			lo, hi := l.h.BucketBounds(i)
			buckets[bucketLabel(lo, hi)] = c
		}
	}
	out := map[string]any{
		"total":   l.h.Total(),
		"buckets": buckets,
	}
	if u := l.h.Underflow(); u > 0 {
		out["underflow"] = u
	}
	if o := l.h.Overflow(); o > 0 {
		out["overflow"] = o
	}
	return out
}

func bucketLabel(lo, hi float64) string {
	return "[" + strconv.FormatFloat(lo, 'g', -1, 64) + "," +
		strconv.FormatFloat(hi, 'g', -1, 64) + ")"
}

// Registry is a named collection of counters and latency histograms.
// Lookups are get-or-create, so hook sites can resolve their instruments
// once and hold the pointer. A Registry snapshot is JSON-marshalable,
// which is how cmd/platformd publishes it through expvar.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*LatencyHistogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*LatencyHistogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named latency histogram, creating it with the
// given range and bucket count on first use. The range of an existing
// histogram is not re-checked: the first caller fixes it.
func (r *Registry) Histogram(name string, lo, hi float64, buckets int) *LatencyHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &LatencyHistogram{h: metrics.NewHistogram(lo, hi, buckets)}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns the full registry state as a JSON-marshalable map:
// counter name -> int64, histogram name -> histogram snapshot. Names are
// namespaced as-is; key order is irrelevant to JSON consumers, but the
// counters sub-map is rebuilt on every call so callers may mutate it.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	hists := make(map[string]*LatencyHistogram, len(r.hists))
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	sort.Strings(names)
	out := make(map[string]any, len(counters)+len(hists))
	for _, name := range names {
		out[name] = counters[name].Value()
	}
	for name, h := range hists {
		out[name] = h.Snapshot()
	}
	return out
}
