package obs

import "sync"

// RoundSink groups a merged trace stream into per-round event batches for
// online auditing. Events accumulate until a PLATFORM-scope RoundClose (or a
// RoundAbort) arrives; the completed batch — everything emitted since the
// previous flush, including inter-round agent join/drop events and the
// embedded mechanism's msoa-scope events — is then handed to the flush
// callback synchronously on the emitting goroutine.
//
// The platform server emits its RoundClose before it writes the round's
// audit record, and both happen on the RunRound goroutine, so an audit sink
// installed via platform.NewAuditSink can rely on the flush for round t
// having completed by the time it sees record t. That ordering is what the
// chaos auditor builds on.
type RoundSink struct {
	mu      sync.Mutex
	pending []Event
	flush   func(t int, events []Event)
}

// NewRoundSink builds a RoundSink delivering batches to flush. A nil flush
// discards batches (the sink still bounds memory by dropping them per
// round).
func NewRoundSink(flush func(t int, events []Event)) *RoundSink {
	return &RoundSink{flush: flush}
}

// Emit implements Tracer.
func (s *RoundSink) Emit(e Event) {
	var batch []Event
	t := 0
	s.mu.Lock()
	s.pending = append(s.pending, e)
	switch ev := e.(type) {
	case RoundClose:
		if ev.Scope == ScopePlatform {
			batch, t = s.pending, ev.T
			s.pending = nil
		}
	case RoundAbort:
		batch, t = s.pending, ev.T
		s.pending = nil
	}
	s.mu.Unlock()
	if batch != nil && s.flush != nil {
		s.flush(t, batch)
	}
}

// Tail returns (a copy of) the events emitted since the last flush — the
// partial batch of a round still in flight, or trailing shutdown events
// after the final round. Auditors use it for completeness checks.
func (s *RoundSink) Tail() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.pending...)
}
