package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJSONLRoundTrip writes a representative event of several kinds and
// parses the stream back, checking kind tags and one payload in detail.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.now = func() time.Time { return time.UnixMicro(42) }

	events := []Event{
		RoundOpen{Scope: ScopeMSOA, T: 1, Needy: 3, TotalDemand: 17, Bids: 12},
		GreedyPick{Iteration: 0, Bid: 4, Bidder: 2, Alt: 1, Score: 1.5, Marginal: 4, ScaledPrice: 6},
		PaymentReplay{Winner: 4, Bidder: 2, Payment: 9.5, Checkpoint: 0, CheckpointHit: true},
		PsiUpdate{T: 1, Bidder: 2, Psi: 0.25, Chi: 3},
		Certificate{Ratio: 1.2, TheoreticalRatio: 2.9, Primal: 30, DualObjective: 25},
		AgentDrop{ID: 7, Cause: DropWriteTimeout, Detail: "i/o timeout"},
		RoundClose{Scope: ScopeMSOA, T: 1, Bids: 12, Winners: 3, SocialCost: 30, TotalPayment: 41, DurationMicros: 120},
	}
	for _, e := range events {
		tr.Emit(e)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(events) {
		t.Fatalf("got %d records, want %d", len(recs), len(events))
	}
	for i, rec := range recs {
		if rec.Kind != events[i].EventKind() {
			t.Errorf("record %d kind %q, want %q", i, rec.Kind, events[i].EventKind())
		}
		if rec.UnixUS != 42 {
			t.Errorf("record %d unix_us %d, want 42", i, rec.UnixUS)
		}
	}
	var pay PaymentReplay
	if err := json.Unmarshal(recs[2].Ev, &pay); err != nil {
		t.Fatal(err)
	}
	if pay != (PaymentReplay{Winner: 4, Bidder: 2, Payment: 9.5, CheckpointHit: true}) {
		t.Fatalf("payment replay round-trip mismatch: %+v", pay)
	}
}

// TestJSONLConcurrentEmit hammers one sink from several goroutines (the
// parallel payment phase does exactly this) and checks every line parses.
func TestJSONLConcurrentEmit(t *testing.T) {
	var buf syncBuffer
	tr := NewJSONL(&buf)
	var wg sync.WaitGroup
	const goroutines, per = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(PaymentReplay{Winner: g*1000 + i, Payment: float64(i)})
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*per {
		t.Fatalf("got %d records, want %d", len(recs), goroutines*per)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Read(p)
}

// TestMulti checks fan-out and the nil-collapsing constructor.
func TestMulti(t *testing.T) {
	if got := NewMulti(nil, nil); got != nil {
		t.Fatalf("NewMulti(nil, nil) = %v, want nil", got)
	}
	one := &Recorder{}
	if got := NewMulti(nil, one); got != Tracer(one) {
		t.Fatalf("NewMulti with one live tracer should return it directly")
	}
	two := &Recorder{}
	multi := NewMulti(one, two)
	multi.Emit(RoundOpen{T: 5})
	for i, r := range []*Recorder{one, two} {
		if r.Count(KindRoundOpen) != 1 {
			t.Fatalf("recorder %d did not receive the event", i)
		}
	}
}

// TestRecorder checks kind filtering and ordering.
func TestRecorder(t *testing.T) {
	r := &Recorder{}
	r.Emit(RoundOpen{T: 1})
	r.Emit(GreedyPick{Bid: 3})
	r.Emit(RoundClose{T: 1})
	if kinds := r.Kinds(); len(kinds) != 3 || kinds[0] != KindRoundOpen || kinds[2] != KindRoundClose {
		t.Fatalf("kinds = %v", kinds)
	}
	picks := r.ByKind(KindGreedyPick)
	if len(picks) != 1 || picks[0].(GreedyPick).Bid != 3 {
		t.Fatalf("ByKind(greedy_pick) = %v", picks)
	}
}

// TestRegistry checks get-or-create identity, counters, histogram
// clamping, and the JSON-marshalable snapshot.
func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rounds_total")
	c.Inc()
	c.Add(2)
	if reg.Counter("rounds_total") != c {
		t.Fatal("Counter is not get-or-create")
	}
	h := reg.Histogram("round_ms", 0, 100, 10)
	if reg.Histogram("round_ms", 0, 1, 1) != h {
		t.Fatal("Histogram is not get-or-create")
	}
	h.Observe(5)
	h.Observe(95)
	h.Observe(1000) // overflow clamps into last bucket
	if h.Total() != 3 {
		t.Fatalf("total = %d, want 3", h.Total())
	}

	snap := reg.Snapshot()
	if snap["rounds_total"] != int64(3) {
		t.Fatalf("counter snapshot = %v", snap["rounds_total"])
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	hist, ok := back["round_ms"].(map[string]any)
	if !ok {
		t.Fatalf("histogram snapshot = %v", back["round_ms"])
	}
	if hist["total"].(float64) != 3 || hist["overflow"].(float64) != 1 {
		t.Fatalf("histogram snapshot = %v", hist)
	}
}

// TestRegistryConcurrent exercises the registry under the race detector.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				reg.Counter("c").Inc()
				reg.Histogram("h", 0, 10, 5).Observe(float64(i % 10))
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}

// TestReadJSONLTruncatedTail: a torn final line (crash-cut log) returns
// the complete prefix with ErrTruncated; a torn line mid-stream is
// corruption and returns the prefix with a hard error.
func TestReadJSONLTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSONL(&buf)
	tr.now = func() time.Time { return time.UnixMicro(1) }
	tr.Emit(RoundOpen{Scope: ScopePlatform, T: 1})
	tr.Emit(RoundClose{Scope: ScopePlatform, T: 1})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	complete := buf.String()

	torn := complete + `{"kind":"round_open","unix`
	recs, err := ReadJSONL(strings.NewReader(torn))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn tail: err %v, want ErrTruncated", err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn tail recovered %d records, want 2", len(recs))
	}

	mid := `{"bad json` + "\n" + complete
	recs, err = ReadJSONL(strings.NewReader(mid))
	if err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-stream corruption: err %v, want hard error", err)
	}
	if len(recs) != 0 {
		t.Fatalf("mid-stream corruption recovered %d records before the bad line, want 0", len(recs))
	}

	if recs, err := ReadJSONL(strings.NewReader("")); err != nil || len(recs) != 0 {
		t.Fatalf("empty stream: %d records, err %v", len(recs), err)
	}
}

// TestJSONLFlushOnRoundBoundary: a buffered writer must be flushed when a
// platform round closes (or any round aborts), so a crash immediately
// after a round cannot lose events the round already generated.
func TestJSONLFlushOnRoundBoundary(t *testing.T) {
	var buf bytes.Buffer
	bw := bufio.NewWriterSize(&buf, 1<<20)
	tr := NewJSONL(bw)
	tr.now = func() time.Time { return time.UnixMicro(1) }

	tr.Emit(RoundOpen{Scope: ScopePlatform, T: 1})
	tr.Emit(RoundClose{Scope: ScopeMSOA, T: 1})
	if buf.Len() != 0 {
		t.Fatalf("mechanism-scope close flushed %d bytes; only the platform boundary should", buf.Len())
	}
	tr.Emit(RoundClose{Scope: ScopePlatform, T: 1})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if recs, err := ReadJSONL(bytes.NewReader(buf.Bytes())); err != nil || len(recs) != 3 {
		t.Fatalf("after platform round_close flush: %d records, err %v, want all 3 durable", len(recs), err)
	}

	before := buf.Len()
	tr.Emit(RoundAbort{T: 2, Err: "cancelled"})
	if buf.Len() <= before {
		t.Fatalf("round abort did not flush the buffered writer")
	}
}
