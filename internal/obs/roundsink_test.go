package obs

import (
	"sync"
	"testing"
)

func TestRoundSinkBatchesPerPlatformRound(t *testing.T) {
	type batch struct {
		t      int
		events []Event
	}
	var got []batch
	s := NewRoundSink(func(t int, events []Event) {
		got = append(got, batch{t: t, events: events})
	})

	// Inter-round join, then a full round with nested msoa-scope lifecycle.
	s.Emit(AgentJoin{ID: 1, Capacity: 5})
	s.Emit(RoundOpen{Scope: ScopePlatform, T: 1})
	s.Emit(BidReceived{T: 1, ID: 1, Bids: 2})
	s.Emit(RoundOpen{Scope: ScopeMSOA, T: 1})
	s.Emit(RoundClose{Scope: ScopeMSOA, T: 1}) // must NOT flush
	s.Emit(RoundClose{Scope: ScopePlatform, T: 1})
	if len(got) != 1 {
		t.Fatalf("flushes after round 1 = %d, want 1", len(got))
	}
	if got[0].t != 1 || len(got[0].events) != 6 {
		t.Fatalf("batch 1 = (t=%d, %d events), want (1, 6)", got[0].t, len(got[0].events))
	}
	if got[0].events[0].EventKind() != KindAgentJoin {
		t.Fatalf("batch 1 does not start with the inter-round join: %v", got[0].events[0].EventKind())
	}

	// An aborted round flushes too.
	s.Emit(RoundOpen{Scope: ScopePlatform, T: 2})
	s.Emit(RoundAbort{T: 2, Err: "cancelled"})
	if len(got) != 2 || got[1].t != 2 || len(got[1].events) != 2 {
		t.Fatalf("abort batch = %+v", got)
	}

	// Tail exposes an in-flight partial batch without consuming it.
	s.Emit(AgentDrop{ID: 1, Cause: DropReadError})
	if tail := s.Tail(); len(tail) != 1 || tail[0].EventKind() != KindAgentDrop {
		t.Fatalf("tail = %v", tail)
	}
	if tail := s.Tail(); len(tail) != 1 {
		t.Fatalf("tail consumed the pending events: %v", tail)
	}
}

func TestRoundSinkConcurrentEmit(t *testing.T) {
	// Concurrent emitters (the parallel payment phase) must not race; the
	// flush count must equal the number of platform closes.
	var mu sync.Mutex
	flushes := 0
	s := NewRoundSink(func(int, []Event) {
		mu.Lock()
		flushes++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Emit(PaymentReplay{Winner: i})
			}
		}()
	}
	wg.Wait()
	s.Emit(RoundClose{Scope: ScopePlatform, T: 1})
	mu.Lock()
	defer mu.Unlock()
	if flushes != 1 {
		t.Fatalf("flushes = %d, want 1", flushes)
	}
}
