// Package obs is the auction observability layer: a zero-dependency,
// zero-cost-when-disabled instrumentation spine shared by the mechanism
// core, the TCP platform, and the experiment harness.
//
// The contract has three parts:
//
//   - Tracer is a sink for typed auction events (round lifecycle, greedy
//     picks, payment replays, ψ updates, certificate ratios, agent
//     join/drop/timeout, experiment sweeps). Every hook site in the
//     producing packages guards with a plain nil check — a nil Tracer is
//     the disabled state and costs one predictable branch, no interface
//     call, no allocation. The nil-tracer benchmark guard in the root
//     package holds this to the committed results/BENCH_core.json numbers.
//   - Registry aggregates counters and latency histograms (reusing
//     internal/metrics.Histogram) for pull-style exposure: cmd/platformd
//     publishes a Registry snapshot via expvar on its debug address.
//   - Sinks: JSONL (one JSON object per line, replayable offline with
//     ReadJSONL), Multi (fan-out), and Recorder (in-memory, for tests).
//
// Emit may be called from multiple goroutines concurrently (the parallel
// payment phase fans replays out across workers); every Tracer
// implementation in this package is safe for concurrent use, and custom
// implementations must be too.
package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrTruncated reports a JSONL stream whose final record is torn — the
// partial line a crash leaves behind. Readers that return it
// (ReadJSONL here, platform.ReadAudit) still return every complete
// record before the tear, so recovery and operators can use crash-cut
// logs; test with errors.Is.
var ErrTruncated = errors.New("truncated trailing record")

// Tracer receives auction events. Implementations must be safe for
// concurrent use and must not retain the event beyond the call unless they
// copy it. A nil Tracer disables tracing: producers guard every hook site
// with a nil check and emit nothing.
type Tracer interface {
	Emit(e Event)
}

// Event is one typed auction event. Concrete events are plain structs with
// JSON tags so any sink can serialize them without reflection games.
type Event interface {
	// EventKind returns the stable kind tag of the event (e.g.
	// "round_open"); it keys the JSONL stream and the test recorders.
	EventKind() string
}

// Event kind tags, one per concrete event type.
const (
	KindRoundOpen     = "round_open"
	KindRoundClose    = "round_close"
	KindRoundAbort    = "round_abort"
	KindGreedyPick    = "greedy_pick"
	KindPaymentReplay = "payment_replay"
	KindPsiUpdate     = "psi_update"
	KindCertificate   = "certificate"
	KindAgentJoin     = "agent_join"
	KindAgentDrop     = "agent_drop"
	KindAgentTimeout  = "agent_timeout"
	KindBidReceived   = "bid_received"
	KindBidRejected   = "bid_rejected"
	KindStageLatency  = "pipeline_stage"
	KindConfigDefault = "config_default"
	KindSweep         = "sweep"
	KindSnapshot      = "snapshot"
	KindRecovery      = "recovery"
)

// Round lifecycle scopes: the same open/close events are emitted by the
// online mechanism (one MSOA stage) and by the platform server (one
// networked bidding round); Scope tells them apart in a merged stream.
const (
	ScopeMSOA     = "msoa"
	ScopePlatform = "platform"
)

// Agent drop causes (AgentDrop.Cause). The taxonomy is part of the
// observability contract: the platform fault-path tests assert these exact
// strings.
const (
	// DropReadError: the agent's connection read failed (EOF, TCP reset,
	// malformed frame) and the agent was deregistered.
	DropReadError = "read-error"
	// DropWriteTimeout: a send to the agent exceeded the server's write
	// timeout (slow or stuck reader); the connection is closed and the
	// agent deregistered.
	DropWriteTimeout = "write-timeout"
	// DropWelcomeFailed: the registration acknowledgement could not be
	// delivered.
	DropWelcomeFailed = "welcome-failed"
)

// Bid-wait causes (AgentTimeout.Cause).
const (
	// TimeoutDeadline: the round's bid deadline fired with the agent
	// still pending.
	TimeoutDeadline = "deadline"
	// TimeoutCancelled: the round was aborted by context cancellation
	// while the agent was still pending.
	TimeoutCancelled = "cancelled"
)

// RoundOpen marks the start of one auction round.
type RoundOpen struct {
	Scope string `json:"scope"`
	T     int    `json:"t"`
	// Needy is the number of needy microservices; TotalDemand the sum of
	// their residual demands.
	Needy       int `json:"needy"`
	TotalDemand int `json:"total_demand"`
	// Bids is the number of candidate bids (MSOA scope; 0 at platform
	// open, where bids are not collected yet).
	Bids int `json:"bids,omitempty"`
	// Excluded counts bids dropped by capacity/window filtering (MSOA).
	Excluded int `json:"excluded,omitempty"`
	// Agents is the number of registered agents announced to (platform).
	Agents int `json:"agents,omitempty"`
}

func (RoundOpen) EventKind() string { return KindRoundOpen }

// RoundClose marks the end of one auction round.
type RoundClose struct {
	Scope string `json:"scope"`
	T     int    `json:"t"`
	// Bids is the number of bids the mechanism ran on.
	Bids       int     `json:"bids"`
	Winners    int     `json:"winners"`
	SocialCost float64 `json:"social_cost"`
	// TotalPayment is the platform's remuneration outlay this round; the
	// payment spread TotalPayment−SocialCost is the overpayment signal
	// operators watch.
	TotalPayment float64 `json:"total_payment"`
	Infeasible   bool    `json:"infeasible,omitempty"`
	// DurationMicros is the round's wall-clock latency in microseconds.
	DurationMicros int64 `json:"duration_us"`
}

func (RoundClose) EventKind() string { return KindRoundClose }

// RoundAbort marks a platform round aborted before clearing (context
// cancellation or deadline exceeded mid-gather).
type RoundAbort struct {
	T int `json:"t"`
	// Err is the abort reason (context.Canceled / DeadlineExceeded text).
	Err string `json:"err"`
	// Pending is how many announced agents had not answered yet.
	Pending int `json:"pending"`
}

func (RoundAbort) EventKind() string { return KindRoundAbort }

// GreedyPick is one winning iteration of the greedy selection loop
// (Algorithm 1, line 4): the arg-min bid, its score and marginal coverage.
type GreedyPick struct {
	// Iteration is the 0-based winning iteration within the round.
	Iteration int `json:"iter"`
	// Bid is the selected bid's index into the instance; Bidder/Alt its
	// identity.
	Bid    int `json:"bid"`
	Bidder int `json:"bidder"`
	Alt    int `json:"alt"`
	// Score is the greedy metric value (scaled price / marginal for
	// PricePerCoverage); Marginal the coverage the pick contributes.
	Score    float64 `json:"score"`
	Marginal int     `json:"marginal"`
	// ScaledPrice is the pick's ∇_ij.
	ScaledPrice float64 `json:"scaled_price"`
}

func (GreedyPick) EventKind() string { return KindGreedyPick }

// PaymentReplay is one critical-value counterfactual replay.
type PaymentReplay struct {
	// Winner is the paid bid's index; Bidder its owner.
	Winner int `json:"winner"`
	Bidder int `json:"bidder"`
	// Payment is the computed remuneration (scaled-price domain).
	Payment float64 `json:"payment"`
	// Checkpoint is the winner's position in the selection sequence — the
	// truthful-run checkpoint the replay resumed from (0 when the replay
	// ran from scratch).
	Checkpoint int `json:"checkpoint"`
	// CheckpointHit reports whether the replay reused a truthful-run
	// checkpoint (plain SSAM) or had to run from scratch (hit=false:
	// BudgetedSSAM's report-independent thresholds).
	CheckpointHit bool `json:"checkpoint_hit"`
	// Pivotal reports that no competing coverage existed and the reserve
	// payment applied.
	Pivotal bool `json:"pivotal,omitempty"`
}

func (PaymentReplay) EventKind() string { return KindPaymentReplay }

// PsiUpdate is one per-bidder dual update after a winning round
// (Algorithm 2, lines 10-12). Monotone ψ drift across rounds is the
// online-auction degradation signal.
type PsiUpdate struct {
	T      int     `json:"t"`
	Bidder int     `json:"bidder"`
	Psi    float64 `json:"psi"`
	// Chi is the bidder's cumulative coverage slots consumed (χ_i).
	Chi int `json:"chi"`
}

func (PsiUpdate) EventKind() string { return KindPsiUpdate }

// Certificate reports one round's primal–dual approximation certificate.
type Certificate struct {
	// Ratio is the certified instance ratio Primal/DualObjective;
	// TheoreticalRatio the closed-form W·Ξ bound.
	Ratio            float64 `json:"ratio"`
	TheoreticalRatio float64 `json:"theoretical_ratio"`
	Primal           float64 `json:"primal"`
	DualObjective    float64 `json:"dual_objective"`
}

func (Certificate) EventKind() string { return KindCertificate }

// AgentJoin marks a successful agent registration with the platform.
type AgentJoin struct {
	ID       int `json:"id"`
	Capacity int `json:"capacity"`
	Arrive   int `json:"arrive,omitempty"`
	Depart   int `json:"depart,omitempty"`
}

func (AgentJoin) EventKind() string { return KindAgentJoin }

// AgentDrop marks an agent deregistration with its cause (see the Drop*
// constants).
type AgentDrop struct {
	ID    int    `json:"id"`
	Cause string `json:"cause"`
	// Detail carries the underlying error text, when any.
	Detail string `json:"detail,omitempty"`
}

func (AgentDrop) EventKind() string { return KindAgentDrop }

// AgentTimeout marks an agent that was announced to but had not answered
// when the round ended (see the Timeout* constants for Cause). The agent
// stays registered; only its chance to bid this round lapsed.
type AgentTimeout struct {
	T     int    `json:"t"`
	ID    int    `json:"id"`
	Cause string `json:"cause"`
}

func (AgentTimeout) EventKind() string { return KindAgentTimeout }

// BidReceived marks one agent's bid submission reaching the platform, with
// the announce-to-bid round-trip time.
type BidReceived struct {
	T  int `json:"t"`
	ID int `json:"id"`
	// Bids is the number of alternative bids in the submission.
	Bids int `json:"bids"`
	// RTTMicros is the time from round announce to bid arrival.
	RTTMicros int64 `json:"rtt_us"`
}

func (BidReceived) EventKind() string { return KindBidReceived }

// BidRejected marks a submission (or registration) shed by the
// platform's admission control with a typed backpressure reply.
type BidRejected struct {
	T  int `json:"t"`
	ID int `json:"id"`
	// Code is the platform Reject* cause sent back to the agent
	// ("rate_limited", "queue_full", "circuit_open").
	Code string `json:"code"`
}

func (BidRejected) EventKind() string { return KindBidRejected }

// StageLatency reports one pipeline stage of a platform round: the
// gather (ingest) phase or the settle (match + payments + WAL + award
// fan-out) phase, so overlap between round t+1's gather and round t's
// settle is visible in a trace.
type StageLatency struct {
	T int `json:"t"`
	// Stage is "gather" or "settle".
	Stage          string `json:"stage"`
	DurationMicros int64  `json:"dur_us"`
}

func (StageLatency) EventKind() string { return KindStageLatency }

// ConfigDefault marks a zero-valued configuration field falling back to
// its documented default, so operators can tell an implicit default from
// an explicit choice when reading a trace.
type ConfigDefault struct {
	// Component names the configured subsystem (e.g. "platform.server");
	// Field the config field; Value the applied default, rendered.
	Component string `json:"component"`
	Field     string `json:"field"`
	Value     string `json:"value"`
}

func (ConfigDefault) EventKind() string { return KindConfigDefault }

// Sweep reports one completed experiment sweep grid: the per-figure
// wall-clock and cell counts of the harness.
type Sweep struct {
	// Tag is the driver's sweep tag (e.g. "fig3a").
	Tag string `json:"tag"`
	// Points × Trials is the grid; Cells the number of executed cells.
	Points int `json:"points"`
	Trials int `json:"trials"`
	Cells  int `json:"cells"`
	// DurationMicros is the grid's wall-clock, all workers inclusive.
	DurationMicros int64 `json:"duration_us"`
	// Workers is the trial-parallelism level the grid ran at.
	Workers int `json:"workers"`
}

func (Sweep) EventKind() string { return KindSweep }

// Snapshot reports one durable state snapshot written between platform
// rounds (the WAL's replay shortcut).
type Snapshot struct {
	// T is the platform round the snapshot was taken after.
	T int `json:"t"`
	// Hash is the snapshotted MSOA state's fingerprint.
	Hash string `json:"hash"`
	// Bidders is the number of bidders with non-zero dual state.
	Bidders int `json:"bidders"`
	// Path is where the snapshot file landed, when written to disk.
	Path string `json:"path,omitempty"`
}

func (Snapshot) EventKind() string { return KindSnapshot }

// Recovery reports one crash recovery: a snapshot load plus a WAL-suffix
// replay restoring the mechanism state a dead platform left behind.
type Recovery struct {
	// SnapshotRound is the round of the snapshot recovery started from
	// (0 when no snapshot existed and the whole WAL was replayed).
	SnapshotRound int `json:"snapshot_round"`
	// Replayed is the number of WAL records replayed after the snapshot.
	Replayed int `json:"replayed"`
	// NextRound is the round the platform resumes at.
	NextRound int `json:"next_round"`
	// Hash is the recovered state's fingerprint.
	Hash string `json:"hash"`
	// Truncated marks a WAL whose final record was torn by the crash.
	Truncated bool `json:"truncated,omitempty"`
}

func (Recovery) EventKind() string { return KindRecovery }

// --- Sinks ---------------------------------------------------------------

// JSONL is a Tracer writing one JSON object per event line:
// {"kind":..., "unix_us":..., "ev":{...}}. Writes are serialized; any
// io.Writer works. Errors are retained (first only) rather than returned
// per event — check Err after the run, mirroring how the audit log
// surfaces its faults.
//
// When w is buffered and exposes a `Flush() error` method (bufio.Writer
// does), JSONL flushes it after every platform-scope RoundClose and every
// RoundAbort: a crash between rounds then loses at most the round in
// flight, never a round agents already saw close. Flush errors are
// retained like write errors.
type JSONL struct {
	mu    sync.Mutex
	enc   *json.Encoder
	flush func() error
	err   error
	// now is stubbed by tests; nil means time.Now.
	now func() time.Time
}

// NewJSONL wraps w as a JSONL event sink. If w implements
// `Flush() error`, it is flushed on round boundaries (see JSONL).
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{enc: json.NewEncoder(w)}
	if f, ok := w.(interface{ Flush() error }); ok {
		j.flush = f.Flush
	}
	return j
}

// jsonlRecord is the on-disk framing of one event.
type jsonlRecord struct {
	Kind    string `json:"kind"`
	UnixUS  int64  `json:"unix_us"`
	Payload Event  `json:"ev"`
}

// Emit implements Tracer.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now
	if j.now != nil {
		now = j.now
	}
	rec := jsonlRecord{Kind: e.EventKind(), UnixUS: now().UnixMicro(), Payload: e}
	if err := j.enc.Encode(rec); err != nil && j.err == nil {
		j.err = fmt.Errorf("obs: write JSONL event: %w", err)
	}
	if j.flush == nil {
		return
	}
	boundary := false
	switch ev := e.(type) {
	case RoundClose:
		boundary = ev.Scope == ScopePlatform
	case RoundAbort:
		boundary = true
	}
	if boundary {
		if err := j.flush(); err != nil && j.err == nil {
			j.err = fmt.Errorf("obs: flush JSONL stream: %w", err)
		}
	}
}

// Err returns the first write error observed, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// JSONLRecord is one parsed line of a JSONL event stream. The payload is
// kept raw: callers that care about a specific kind unmarshal Ev into the
// matching event struct.
type JSONLRecord struct {
	Kind   string          `json:"kind"`
	UnixUS int64           `json:"unix_us"`
	Ev     json.RawMessage `json:"ev"`
}

// ReadJSONL parses a JSONL event stream back into records.
//
// A malformed (or kind-less) FINAL record — the torn tail a crash leaves
// in an append-only log — does not discard the log: every complete
// preceding record is returned together with an error wrapping
// ErrTruncated. Malformed records with complete records after them are
// corruption, not a crash cut, and return the readable prefix with a
// non-truncation error.
func ReadJSONL(r io.Reader) ([]JSONLRecord, error) {
	lines, lastLine, err := readLines(r)
	if err != nil {
		return nil, fmt.Errorf("obs: read JSONL stream: %w", err)
	}
	var out []JSONLRecord
	for i, line := range lines {
		var rec JSONLRecord
		uerr := json.Unmarshal(line, &rec)
		if uerr == nil && rec.Kind == "" {
			uerr = errors.New("record has no kind")
		}
		if uerr != nil {
			if i == lastLine {
				return out, fmt.Errorf("obs: JSONL record %d: %w", len(out), ErrTruncated)
			}
			return out, fmt.Errorf("obs: parse JSONL record %d: %w", len(out), uerr)
		}
		out = append(out, rec)
	}
	return out, nil
}

// readLines splits a JSONL stream into its non-empty lines and reports
// the index of the last one (-1 when none). Shared by ReadJSONL and
// platform.ReadAudit via ReadJSONLLines.
func readLines(r io.Reader) (lines [][]byte, lastLine int, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, -1, err
	}
	lastLine = -1
	for _, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		lines = append(lines, line)
	}
	return lines, len(lines) - 1, nil
}

// ReadJSONLLines exposes the line splitter to sibling packages whose
// JSONL readers (e.g. the platform audit/WAL reader) want the same
// torn-tail semantics without re-implementing the framing.
func ReadJSONLLines(r io.Reader) (lines [][]byte, lastLine int, err error) {
	return readLines(r)
}

// Multi fans every event out to several tracers, in order.
type Multi []Tracer

// NewMulti combines tracers, dropping nils; it returns nil (tracing
// disabled) when none remain, so callers can pass the result straight to a
// config field.
func NewMulti(tracers ...Tracer) Tracer {
	var live Multi
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// Emit implements Tracer.
func (m Multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Recorder is an in-memory Tracer for tests: it retains every event in
// emission order.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Kinds returns the recorded event kinds, in order.
func (r *Recorder) Kinds() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.events))
	for i, e := range r.events {
		out[i] = e.EventKind()
	}
	return out
}

// ByKind returns the recorded events of one kind, in order.
func (r *Recorder) ByKind(kind string) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.EventKind() == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of the kind were recorded.
func (r *Recorder) Count(kind string) int {
	return len(r.ByKind(kind))
}
