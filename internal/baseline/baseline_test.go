package baseline

import (
	"errors"
	"math"
	"testing"

	"edgeauction/internal/core"
	"edgeauction/internal/optimal"
	"edgeauction/internal/workload"
)

func smallInstance() *core.Instance {
	return &core.Instance{
		Demand: []int{2, 1},
		Bids: []core.Bid{
			{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
			{Bidder: 2, Price: 8, TrueCost: 8, Covers: []int{0, 1}, Units: 1},
			{Bidder: 3, Price: 30, TrueCost: 30, Covers: []int{0, 1}, Units: 2},
			{Bidder: 4, Price: 12, TrueCost: 12, Covers: []int{1}, Units: 1},
		},
	}
}

func TestFixedPriceHighPostedCovers(t *testing.T) {
	ins := smallInstance()
	res, err := FixedPrice(ins, 100)
	if err != nil {
		t.Fatalf("high posted price should cover: %v", err)
	}
	if res.CoveredFraction != 1 {
		t.Fatalf("coverage = %v, want 1", res.CoveredFraction)
	}
	if err := core.VerifyFeasible(ins, res.Outcome); err != nil {
		t.Fatal(err)
	}
	// Sellers are paid the posted price per unit: total = units * 100 >=
	// their cost (IR holds for accepting sellers).
	for _, w := range res.Outcome.Winners {
		if res.Outcome.Payments[w] < ins.Bids[w].TrueCost {
			t.Fatalf("accepting seller %d paid below cost", w)
		}
	}
}

func TestFixedPriceLowPostedUndercovers(t *testing.T) {
	ins := smallInstance()
	res, err := FixedPrice(ins, 1) // below everyone's unit cost
	if !errors.Is(err, ErrUncovered) {
		t.Fatalf("want ErrUncovered, got %v", err)
	}
	if res.CoveredFraction != 0 || res.Accepted != 0 {
		t.Fatalf("nobody should accept a price of 1: %+v", res)
	}
}

func TestFixedPriceCheapestFirst(t *testing.T) {
	// Posted 6/unit: bid 2 has unit cost 8/2=4, bid 3 unit cost 30/3=10,
	// bid 1 unit cost 10, bid 4 unit cost 12. Only bid 2 accepts, covering
	// 2 of 3 units => uncovered.
	ins := smallInstance()
	res, err := FixedPrice(ins, 6)
	if !errors.Is(err, ErrUncovered) {
		t.Fatalf("want ErrUncovered, got %v", err)
	}
	if res.Accepted != 1 || len(res.Outcome.Winners) != 1 || res.Outcome.Winners[0] != 1 {
		t.Fatalf("want only bid 1 (bidder 2) accepted, got %+v", res)
	}
	if math.Abs(res.CoveredFraction-2.0/3.0) > 1e-9 {
		t.Fatalf("coverage = %v, want 2/3", res.CoveredFraction)
	}
}

func TestFixedPriceInvalidPrice(t *testing.T) {
	if _, err := FixedPrice(smallInstance(), -1); err == nil {
		t.Fatal("negative posted price must be rejected")
	}
	if _, err := FixedPrice(smallInstance(), math.NaN()); err == nil {
		t.Fatal("NaN posted price must be rejected")
	}
}

func TestRandomCoversWhenPossible(t *testing.T) {
	rng := workload.NewRand(1)
	ins := workload.Instance(rng, workload.InstanceConfig{Bidders: 15})
	out, err := Random(ins, rng)
	if err != nil {
		t.Fatalf("random selection failed on reserve-backed instance: %v", err)
	}
	if err := core.VerifyFeasible(ins, out); err != nil {
		t.Fatal(err)
	}
	// First-price payments.
	for _, w := range out.Winners {
		if out.Payments[w] != ins.Bids[w].Price {
			t.Fatalf("random baseline must pay first price")
		}
	}
}

func TestRandomAtLeastGreedyCostOnAverage(t *testing.T) {
	rng := workload.NewRand(2)
	var greedyTotal, randomTotal float64
	for trial := 0; trial < 20; trial++ {
		ins := workload.Instance(rng, workload.InstanceConfig{Bidders: 15})
		g, err := core.SSAM(ins, core.Options{SkipCertificate: true})
		if err != nil {
			t.Fatal(err)
		}
		r, err := Random(ins, rng)
		if err != nil {
			t.Fatal(err)
		}
		greedyTotal += g.SocialCost
		randomTotal += r.SocialCost
	}
	if randomTotal < greedyTotal {
		t.Fatalf("random (%v) beat greedy (%v) on aggregate — implausible", randomTotal, greedyTotal)
	}
}

func TestVCGMatchesOptimalAllocation(t *testing.T) {
	ins := smallInstance()
	out, err := VCG(ins, optimal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := optimal.Solve(ins, optimal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.SocialCost-opt.Cost) > 1e-9 {
		t.Fatalf("VCG allocation cost %v != optimum %v", out.SocialCost, opt.Cost)
	}
	if err := core.VerifyFeasible(ins, out); err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyIndividualRationality(ins, out, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVCGPaymentsAreClarkePivots(t *testing.T) {
	// Two suppliers for one unit: winner is the cheaper, paid the
	// runner-up's price (second-price auction special case).
	ins := &core.Instance{
		Demand: []int{1},
		Bids: []core.Bid{
			{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
			{Bidder: 2, Price: 25, TrueCost: 25, Covers: []int{0}, Units: 1},
		},
	}
	out, err := VCG(ins, optimal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 1 || out.Winners[0] != 0 {
		t.Fatalf("winner = %v, want bid 0", out.Winners)
	}
	if math.Abs(out.Payments[0]-25) > 1e-9 {
		t.Fatalf("VCG payment = %v, want second price 25", out.Payments[0])
	}
}

func TestVCGPivotalBidder(t *testing.T) {
	// Single supplier: pivotal; payment must still be at least its price.
	ins := &core.Instance{
		Demand: []int{1},
		Bids: []core.Bid{
			{Bidder: 1, Price: 10, TrueCost: 10, Covers: []int{0}, Units: 1},
		},
	}
	out, err := VCG(ins, optimal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Payments[0] < 10 {
		t.Fatalf("pivotal VCG payment %v below price", out.Payments[0])
	}
}

func TestVCGTruthfulOnSmallInstances(t *testing.T) {
	rng := workload.NewRand(3)
	for trial := 0; trial < 10; trial++ {
		ins := workload.Instance(rng, workload.InstanceConfig{
			Bidders: 5, Needy: 2, DemandLo: 1, DemandHi: 3, BidsPerBidder: 1,
			UnitsLo: 1, UnitsHi: 2,
		})
		truthful, err := VCG(ins, optimal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for target := 0; target < len(ins.Bids)-1; target++ { // skip reserve
			base := truthful.Utility(ins, target)
			for _, factor := range []float64{0.5, 1.5} {
				dev := ins.Clone()
				dev.Bids[target].Price = ins.Bids[target].TrueCost * factor
				out, err := VCG(dev, optimal.Options{})
				if err != nil {
					t.Fatal(err)
				}
				utility := 0.0
				if out.Won(target) {
					utility = out.Payments[target] - ins.Bids[target].TrueCost
				}
				if utility > base+1e-6 {
					t.Fatalf("trial %d: VCG profitable deviation for bid %d x%v: %v > %v",
						trial, target, factor, utility, base)
				}
			}
		}
	}
}
