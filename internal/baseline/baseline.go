// Package baseline implements the comparison mechanisms the paper argues
// against or that bound the design space: fixed-price repurchase (the
// "pricing" alternative of §I), random winner selection, and VCG (exact
// optimal allocation with Clarke payments). The benchmark harness uses them
// to quantify the value of the auction design.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"edgeauction/internal/core"
	"edgeauction/internal/optimal"
	"edgeauction/internal/workload"
)

// ErrUncovered reports that a baseline failed to procure the full demand
// (e.g. the fixed price was set too low).
var ErrUncovered = errors.New("baseline: demand not fully covered")

// FixedPriceResult reports a fixed-price run.
type FixedPriceResult struct {
	Outcome *core.Outcome
	// Accepted counts bidders that accepted the posted price.
	Accepted int
	// CoveredFraction is the share of total demand procured (1 when the
	// run succeeded).
	CoveredFraction float64
}

// FixedPrice simulates the flat-pricing alternative: the platform posts a
// per-coverage-unit price; every bidder whose TRUE unit cost is at or below
// the posted price accepts (rational sellers), and the platform buys
// acceptances cheapest-first until the demand is covered, paying the POSTED
// price per unit supplied. It returns ErrUncovered (with the partial
// outcome) when the posted price attracts too little supply — the
// under-pricing failure mode of §I; over-pricing instead shows up as
// inflated payments.
func FixedPrice(ins *core.Instance, unitPrice float64) (*FixedPriceResult, error) {
	if unitPrice < 0 || math.IsNaN(unitPrice) {
		return nil, fmt.Errorf("baseline: invalid posted price %v", unitPrice)
	}
	type acceptance struct {
		idx      int
		unitCost float64
	}
	var accepts []acceptance
	seen := map[int]bool{}
	for i := range ins.Bids {
		b := &ins.Bids[i]
		supply := capacity(ins, b)
		if supply == 0 {
			continue
		}
		unitCost := b.TrueCost / float64(supply)
		if unitCost <= unitPrice {
			accepts = append(accepts, acceptance{idx: i, unitCost: unitCost})
		}
	}
	sort.Slice(accepts, func(a, b int) bool {
		if accepts[a].unitCost != accepts[b].unitCost {
			return accepts[a].unitCost < accepts[b].unitCost
		}
		return accepts[a].idx < accepts[b].idx
	})

	res := &FixedPriceResult{Outcome: &core.Outcome{Payments: map[int]float64{}}}
	theta := make([]int, len(ins.Demand))
	covered, total := 0, ins.TotalDemand()
	for _, a := range accepts {
		b := &ins.Bids[a.idx]
		if seen[b.Bidder] {
			continue // one winning bid per bidder, as in the auction
		}
		gain := 0
		for _, k := range b.Covers {
			add := b.Units
			if theta[k]+add > ins.Demand[k] {
				add = ins.Demand[k] - theta[k]
			}
			if add > 0 {
				gain += add
			}
		}
		if gain == 0 {
			continue
		}
		seen[b.Bidder] = true
		res.Accepted++
		for _, k := range b.Covers {
			theta[k] += b.Units
		}
		covered += gain
		res.Outcome.Winners = append(res.Outcome.Winners, a.idx)
		res.Outcome.Payments[a.idx] = unitPrice * float64(gain)
		res.Outcome.SocialCost += b.TrueCost
		res.Outcome.ScaledCost += b.TrueCost
		if covered >= total {
			break
		}
	}
	if total > 0 {
		res.CoveredFraction = float64(covered) / float64(total)
	} else {
		res.CoveredFraction = 1
	}
	if covered < total {
		return res, fmt.Errorf("%w: posted price %v covered %d/%d units", ErrUncovered, unitPrice, covered, total)
	}
	return res, nil
}

// capacity returns the total effective coverage a bid can supply.
func capacity(ins *core.Instance, b *core.Bid) int {
	c := 0
	for _, k := range b.Covers {
		u := b.Units
		if u > ins.Demand[k] {
			u = ins.Demand[k]
		}
		c += u
	}
	return c
}

// Random selects uniformly random useful bids (one per bidder) until the
// demand is covered, paying first-price. It is the no-intelligence floor
// for the ablation benches.
func Random(ins *core.Instance, rng *workload.Rand) (*core.Outcome, error) {
	out := &core.Outcome{Payments: map[int]float64{}}
	theta := make([]int, len(ins.Demand))
	covered, total := 0, ins.TotalDemand()
	order := rng.Perm(len(ins.Bids))
	seen := map[int]bool{}
	for _, i := range order {
		if covered >= total {
			break
		}
		b := &ins.Bids[i]
		if seen[b.Bidder] {
			continue
		}
		gain := 0
		for _, k := range b.Covers {
			add := b.Units
			if theta[k]+add > ins.Demand[k] {
				add = ins.Demand[k] - theta[k]
			}
			if add > 0 {
				gain += add
			}
		}
		if gain == 0 {
			continue
		}
		seen[b.Bidder] = true
		for _, k := range b.Covers {
			theta[k] += b.Units
		}
		covered += gain
		out.Winners = append(out.Winners, i)
		out.Payments[i] = b.Price
		out.SocialCost += b.Price
		out.ScaledCost += b.Price
	}
	if covered < total {
		return out, fmt.Errorf("%w: random selection covered %d/%d units", ErrUncovered, covered, total)
	}
	return out, nil
}

// VCG computes the Vickrey-Clarke-Groves mechanism: the exact optimal
// winner set with Clarke pivot payments
//
//	p_i = OPT(without i) − (OPT − price_i),
//
// which is truthful AND allocatively optimal but needs |winners|+1 exact
// NP-hard solves — the computational price SSAM's polynomial-time design
// avoids. opts bounds each underlying solve.
func VCG(ins *core.Instance, opts optimal.Options) (*core.Outcome, error) {
	base, err := optimal.Solve(ins, opts)
	if err != nil {
		return nil, fmt.Errorf("baseline: VCG base solve: %w", err)
	}
	out := &core.Outcome{
		Winners:  base.Winners,
		Payments: make(map[int]float64, len(base.Winners)),
	}
	for _, w := range base.Winners {
		out.SocialCost += ins.Bids[w].Price
		out.ScaledCost += ins.Bids[w].Price
	}
	for _, w := range base.Winners {
		reduced := removeBidder(ins, ins.Bids[w].Bidder)
		alt, err := optimal.Solve(reduced, opts)
		if err != nil {
			if errors.Is(err, optimal.ErrInfeasible) {
				// The bidder is pivotal for feasibility: pay its price
				// plus the posted reserve of the rest of the market.
				out.Payments[w] = ins.Bids[w].Price + ins.MaxPrice()
				continue
			}
			return nil, fmt.Errorf("baseline: VCG marginal solve for bid %d: %w", w, err)
		}
		pay := alt.Cost - (base.Cost - ins.Bids[w].Price)
		if pay < ins.Bids[w].Price {
			pay = ins.Bids[w].Price // numeric guard; theory guarantees >=
		}
		out.Payments[w] = pay
	}
	return out, nil
}

// removeBidder clones the instance without any bid from the given bidder.
func removeBidder(ins *core.Instance, bidder int) *core.Instance {
	out := &core.Instance{Demand: append([]int(nil), ins.Demand...)}
	for _, b := range ins.Bids {
		if b.Bidder != bidder {
			out.Bids = append(out.Bids, b.Clone())
		}
	}
	return out
}
