package sim

import (
	"fmt"
	"math"

	"edgeauction/internal/demand"
	"edgeauction/internal/topology"
	"edgeauction/internal/workload"
)

// Microservice is one deployed microservice instance.
type Microservice struct {
	// ID is the 1-based microservice identifier.
	ID int
	// Name is the service-graph name in graph mode, empty otherwise.
	Name string
	// Class selects the arrival process and priority (§V-A).
	Class workload.Class
	// Cloud is the hosting edge cloud id.
	Cloud int
	// WorkMean is the mean work units per request (exponential).
	WorkMean float64
	// TargetRate is ς_i: the processing rate needed to meet the class's
	// latency expectation, in requests per time unit.
	TargetRate float64
}

// request is an in-flight user request.
type request struct {
	arrived  float64
	started  float64
	work     float64 // remaining work units
	deadline float64 // SLA completion deadline (absolute time)
	flow     int     // 1-based flow index (graph mode), 0 otherwise
	step     int     // current step within the flow
}

// msState is the runtime state of one microservice.
type msState struct {
	def   Microservice
	queue []request
	// inService is whether queue[0] is being processed.
	inService bool
	// rate is the current service rate in work units per time unit
	// (allocated resources).
	rate float64
	// seq invalidates stale completion events after rate changes.
	seq int
	// lastUpdate is the last time remaining work was accounted.
	lastUpdate float64
	// round statistics
	stats roundStats
	// arrivalMean is Poisson arrivals per round.
	arrivalMean float64
}

// roundStats accumulates one round of observations for a microservice.
type roundStats struct {
	arrivals      int
	completions   int
	busyTime      float64
	waitingSum    float64 // sum over completions of (start - arrival)
	serviceSum    float64 // sum over completions of (completion - start)
	slaViolations int     // completions past their SLA deadline
}

// Config parameterizes a simulation run.
type Config struct {
	// Topology is the physical layer; nil generates the default §V-A
	// topology from the simulation's RNG.
	Topology *topology.Topology
	// Services is the number of microservices; zero means 25. They are
	// assigned round-robin to edge clouds with alternating classes.
	Services int
	// RoundLength is the simulated duration of one round; zero means 600
	// (the paper's 10-minute rounds, in seconds).
	RoundLength float64
	// Rounds is the number of rounds to simulate; zero means 10.
	Rounds int
	// WorkMean is mean work units per request; zero means 30.
	WorkMean float64
	// Work selects the per-request work distribution; zero means
	// WorkExponential. See WorkDist for the paper's future-work variants.
	Work WorkDist
	// DeadlineFactor sets the SLA deadline of a request as a multiple of
	// the round length: delay-sensitive requests must complete within
	// DeadlineFactor x RoundLength of arrival, delay-tolerant ones within
	// 5x that. Zero means 0.05 (30 simulated seconds of a 10-minute
	// round).
	DeadlineFactor float64
	// SensitiveShare is the fair-share priority weight of delay-sensitive
	// microservices relative to delay-tolerant ones; zero means 2.
	SensitiveShare float64
	// Seed seeds the simulation RNG.
	Seed int64
	// Graph switches the simulator to graph mode: microservices, arrival
	// processes, and request routing come from this validated service
	// topology, and Services is ignored. See graph.go.
	Graph *workload.ServiceGraph
	// Trace replays recorded external arrival counts instead of drawing
	// them (graph mode only). Its columns must match the graph's entry
	// sources and it must cover at least Rounds rounds.
	Trace *workload.RequestTrace
}

func (c Config) withDefaults() Config {
	if c.Services == 0 {
		c.Services = 25
	}
	if c.RoundLength == 0 {
		c.RoundLength = 600
	}
	if c.Rounds == 0 {
		c.Rounds = 10
	}
	if c.WorkMean == 0 {
		c.WorkMean = 30
	}
	if c.SensitiveShare == 0 {
		c.SensitiveShare = 2
	}
	if c.Work == 0 {
		c.Work = WorkExponential
	}
	if c.DeadlineFactor == 0 {
		c.DeadlineFactor = 0.05
	}
	return c
}

// RoundReport is the simulator's per-round output: the indicator snapshot
// per microservice, ready for the demand estimator.
type RoundReport struct {
	Round      int
	Indicators map[int]demand.Indicators // by microservice id
	// QueueLengths is the backlog per microservice at round end.
	QueueLengths map[int]int
	// Allocated is the fair-share allocation per microservice this round.
	Allocated map[int]float64
	// SLAViolations counts completions past their class deadline this
	// round, per microservice.
	SLAViolations map[int]int
	// MeanWaiting is the mean request waiting time per microservice this
	// round (0 when nothing completed).
	MeanWaiting map[int]float64
}

// Simulator drives the discrete-event simulation.
type Simulator struct {
	cfg      Config
	topo     *topology.Topology
	rng      *workload.Rand
	services map[int]*msState
	order    []int // deterministic iteration order of services
	queue    *eventQueue
	now      float64
	round    int
	// wl is the graph-mode runtime, nil on the flat §V-A path.
	wl *graphRuntime
	// transfers are pending one-round allocation deltas (ApplyTransfers).
	transfers map[int]float64
}

// New builds a simulator. It returns an error for invalid configurations.
func New(cfg Config) (*Simulator, error) {
	c := cfg.withDefaults()
	if c.Services < 1 {
		return nil, fmt.Errorf("sim: need at least one microservice, got %d", c.Services)
	}
	if c.RoundLength <= 0 || c.Rounds < 1 {
		return nil, fmt.Errorf("sim: invalid schedule: round length %v, rounds %d", c.RoundLength, c.Rounds)
	}
	if err := validateWorkDist(c.Work); err != nil {
		return nil, err
	}
	rng := workload.NewRand(c.Seed)
	topo := c.Topology
	if topo == nil {
		topo = topology.Generate(rng.Fork(), topology.Config{})
	}
	s := &Simulator{
		cfg:      c,
		topo:     topo,
		rng:      rng,
		services: make(map[int]*msState, c.Services),
		queue:    &eventQueue{},
	}
	if c.Graph != nil {
		rt, err := s.buildGraphServices(c.Graph)
		if err != nil {
			return nil, err
		}
		s.wl = rt
		if c.Trace != nil {
			if err := s.validateTrace(rt, c.Trace); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	if c.Trace != nil {
		return nil, fmt.Errorf("sim: Trace requires a service Graph")
	}
	for i := 1; i <= c.Services; i++ {
		class := workload.DelaySensitive
		if i%2 == 0 {
			class = workload.DelayTolerant
		}
		cloud := ((i - 1) % len(topo.Clouds)) + 1
		def := Microservice{
			ID:       i,
			Class:    class,
			Cloud:    cloud,
			WorkMean: c.WorkMean,
			// Delay-sensitive services need to keep up with their
			// arrival rate with 50% headroom; tolerant ones with 10%.
			TargetRate: class.ArrivalMean() / c.RoundLength * headroom(class),
		}
		s.services[i] = &msState{def: def, arrivalMean: class.ArrivalMean()}
		s.order = append(s.order, i)
	}
	return s, nil
}

func headroom(class workload.Class) float64 {
	if class == workload.DelaySensitive {
		return 1.5
	}
	return 1.1
}

// Topology returns the simulated physical layer.
func (s *Simulator) Topology() *topology.Topology { return s.topo }

// Services returns the microservice definitions in id order.
func (s *Simulator) Services() []Microservice {
	out := make([]Microservice, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.services[id].def)
	}
	return out
}

// Run simulates all configured rounds and returns one report per round.
func (s *Simulator) Run() []*RoundReport {
	reports := make([]*RoundReport, 0, s.cfg.Rounds)
	for r := 1; r <= s.cfg.Rounds; r++ {
		reports = append(reports, s.RunRound())
	}
	return reports
}

// RunRound simulates a single round and returns its report.
func (s *Simulator) RunRound() *RoundReport {
	s.round++
	roundEnd := float64(s.round) * s.cfg.RoundLength

	// Fair-share allocation for this round, then reschedule in-flight work
	// under the new rates.
	alloc := s.fairShare()
	for _, id := range s.order {
		st := s.services[id]
		s.accrue(st)
		st.stats = roundStats{}
		st.rate = alloc[id]
		s.reschedule(st)
	}

	// Seed this round's external arrivals, uniformly spread in the round:
	// per-class Poisson on the flat path, the graph's entry sources (or a
	// recorded trace) in graph mode.
	if s.wl != nil {
		s.seedGraphArrivals(roundEnd)
	} else {
		for _, id := range s.order {
			st := s.services[id]
			n := s.rng.Poisson(st.arrivalMean)
			for i := 0; i < n; i++ {
				at := roundEnd - s.rng.Float64()*s.cfg.RoundLength
				s.queue.schedule(&event{at: at, kind: evArrival, ms: id})
			}
		}
	}
	s.queue.schedule(&event{at: roundEnd, kind: evRoundEnd})

	for {
		e := s.queue.next()
		if e == nil {
			s.now = roundEnd
			break
		}
		s.now = e.at
		if e.kind == evRoundEnd {
			break
		}
		switch e.kind {
		case evArrival:
			s.onArrival(e)
		case evCompletion:
			s.onCompletion(e.ms, e.seq)
		}
	}
	return s.report(alloc)
}

// fairShare splits each cloud's capacity among its hosted microservices,
// weighting delay-sensitive services by SensitiveShare (the paper gives
// them higher priority).
func (s *Simulator) fairShare() map[int]float64 {
	weight := func(st *msState) float64 {
		if st.def.Class == workload.DelaySensitive {
			return s.cfg.SensitiveShare
		}
		return 1
	}
	cloudWeight := make(map[int]float64)
	for _, id := range s.order {
		st := s.services[id]
		cloudWeight[st.def.Cloud] += weight(st)
	}
	alloc := make(map[int]float64, len(s.order))
	for _, id := range s.order {
		st := s.services[id]
		cloud, err := s.topo.Cloud(st.def.Cloud)
		if err != nil {
			continue // unreachable: cloud ids are validated in New
		}
		alloc[id] = cloud.Capacity * weight(st) / cloudWeight[st.def.Cloud]
	}
	// Auctioned resource transfers adjust this round's shares, then are
	// consumed (they re-win each round if demand persists).
	if len(s.transfers) > 0 {
		for _, id := range s.order {
			if d, ok := s.transfers[id]; ok {
				alloc[id] += d
				if alloc[id] < 0 {
					alloc[id] = 0
				}
			}
		}
		s.transfers = nil
	}
	return alloc
}

// accrue charges elapsed service work and busy time up to s.now. A
// starved service (rate 0, possible once auction transfers can drain an
// allocation to nothing) processes no work and must not be counted
// busy — it would otherwise report utilization 1 while doing nothing.
func (s *Simulator) accrue(st *msState) {
	if st.inService && len(st.queue) > 0 && st.rate > 0 {
		elapsed := s.now - st.lastUpdate
		st.queue[0].work -= elapsed * st.rate
		st.stats.busyTime += elapsed
	}
	st.lastUpdate = s.now
}

// reschedule re-issues the completion event of the in-service request under
// the current rate (invalidating any stale event via seq).
func (s *Simulator) reschedule(st *msState) {
	st.seq++
	if !st.inService || len(st.queue) == 0 {
		return
	}
	if st.rate <= 0 {
		return // starved: no completion until rate returns
	}
	remaining := st.queue[0].work
	if remaining < 0 {
		remaining = 0
	}
	s.queue.schedule(&event{
		at: s.now + remaining/st.rate, kind: evCompletion, ms: st.def.ID, seq: st.seq,
	})
}

func (s *Simulator) onArrival(e *event) {
	st := s.services[e.ms]
	s.accrue(st)
	st.stats.arrivals++
	deadline := s.cfg.DeadlineFactor * s.cfg.RoundLength
	if st.def.Class == workload.DelayTolerant {
		deadline *= 5
	}
	st.queue = append(st.queue, request{
		arrived:  s.now,
		work:     drawWork(s.rng, s.cfg.Work, st.def.WorkMean),
		deadline: s.now + deadline,
		flow:     e.flow,
		step:     e.step,
	})
	if !st.inService {
		st.inService = true
		st.queue[0].started = s.now
		s.reschedule(st)
	}
}

func (s *Simulator) onCompletion(id, seq int) {
	st := s.services[id]
	if seq != st.seq || !st.inService || len(st.queue) == 0 {
		return // stale event from before a reschedule
	}
	s.accrue(st)
	done := st.queue[0]
	st.queue = st.queue[1:]
	st.stats.completions++
	st.stats.waitingSum += done.started - done.arrived
	st.stats.serviceSum += s.now - done.started
	if s.now > done.deadline {
		st.stats.slaViolations++
	}
	if s.wl != nil {
		s.cascade(st, done)
	}
	if len(st.queue) > 0 {
		st.queue[0].started = s.now
		s.reschedule(st)
	} else {
		st.inService = false
		st.seq++
	}
}

// report assembles the round's indicator snapshot.
func (s *Simulator) report(alloc map[int]float64) *RoundReport {
	rep := &RoundReport{
		Round:         s.round,
		Indicators:    make(map[int]demand.Indicators, len(s.order)),
		QueueLengths:  make(map[int]int, len(s.order)),
		Allocated:     alloc,
		SLAViolations: make(map[int]int, len(s.order)),
		MeanWaiting:   make(map[int]float64, len(s.order)),
	}
	maxAlloc := 0.0
	for _, a := range alloc {
		if a > maxAlloc {
			maxAlloc = a
		}
	}
	// Neighbor density per cloud: hosted services per cloud.
	perCloud := make(map[int]int)
	for _, id := range s.order {
		perCloud[s.services[id].def.Cloud]++
	}
	for _, id := range s.order {
		st := s.services[id]
		s.accrue(st)
		achieved := 0.0
		if st.stats.serviceSum > 0 {
			achieved = float64(st.stats.completions) / s.cfg.RoundLength
		}
		util := st.stats.busyTime / s.cfg.RoundLength
		if util > 1 {
			util = 1
		}
		rep.Indicators[id] = demand.Indicators{
			ServedResponses:   st.stats.completions,
			ReceivedResponses: st.stats.arrivals,
			NeededRate:        st.def.TargetRate,
			AchievedRate:      achieved,
			Allocated:         alloc[id],
			MaxAllocated:      maxAlloc,
			ExecutionRate:     util,
			NeighborDensity:   math.Max(1, float64(perCloud[st.def.Cloud])),
			Round:             s.round,
		}
		rep.QueueLengths[id] = len(st.queue)
		rep.SLAViolations[id] = st.stats.slaViolations
		if st.stats.completions > 0 {
			rep.MeanWaiting[id] = st.stats.waitingSum / float64(st.stats.completions)
		}
	}
	return rep
}

// MeanWaiting returns the mean request waiting time observed for a
// microservice in the current round's statistics (0 when nothing
// completed). Exposed for tests and the simulator CLI.
func (s *Simulator) MeanWaiting(id int) float64 {
	st, ok := s.services[id]
	if !ok || st.stats.completions == 0 {
		return 0
	}
	return st.stats.waitingSum / float64(st.stats.completions)
}
