package sim

import (
	"math"
	"testing"

	"edgeauction/internal/workload"
)

func newSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Services: -1}); err == nil {
		t.Fatal("negative services must be rejected")
	}
	if _, err := New(Config{RoundLength: -5}); err == nil {
		t.Fatal("negative round length must be rejected")
	}
	if _, err := New(Config{Rounds: -2}); err == nil {
		t.Fatal("negative rounds must be rejected")
	}
}

func TestServicesAlternateClasses(t *testing.T) {
	s := newSim(t, Config{Services: 6, Seed: 1})
	services := s.Services()
	if len(services) != 6 {
		t.Fatalf("services = %d", len(services))
	}
	for _, ms := range services {
		want := workload.DelaySensitive
		if ms.ID%2 == 0 {
			want = workload.DelayTolerant
		}
		if ms.Class != want {
			t.Fatalf("ms %d class = %v, want %v", ms.ID, ms.Class, want)
		}
		if ms.Cloud < 1 || ms.Cloud > len(s.Topology().Clouds) {
			t.Fatalf("ms %d on unknown cloud %d", ms.ID, ms.Cloud)
		}
	}
}

func TestRunProducesReportsPerRound(t *testing.T) {
	s := newSim(t, Config{Services: 10, Rounds: 4, Seed: 2})
	reports := s.Run()
	if len(reports) != 4 {
		t.Fatalf("reports = %d, want 4", len(reports))
	}
	for i, rep := range reports {
		if rep.Round != i+1 {
			t.Fatalf("report %d has round %d", i, rep.Round)
		}
		if len(rep.Indicators) != 10 {
			t.Fatalf("round %d has %d indicator sets, want 10", rep.Round, len(rep.Indicators))
		}
		for id, in := range rep.Indicators {
			if in.Round != rep.Round {
				t.Fatalf("ms %d indicator round %d != %d", id, in.Round, rep.Round)
			}
			if in.ExecutionRate < 0 || in.ExecutionRate > 1 {
				t.Fatalf("ms %d utilization %v outside [0,1]", id, in.ExecutionRate)
			}
			if in.ServedResponses > in.ReceivedResponses+rep.QueueLengths[id]+100 {
				t.Fatalf("ms %d served more than plausible", id)
			}
			if in.Allocated <= 0 {
				t.Fatalf("ms %d allocated %v, want positive fair share", id, in.Allocated)
			}
			if in.MaxAllocated < in.Allocated {
				t.Fatalf("ms %d max allocation below own allocation", id)
			}
			if in.NeighborDensity < 1 {
				t.Fatalf("ms %d neighbor density %v < 1", id, in.NeighborDensity)
			}
		}
	}
}

func TestFairShareFavorsDelaySensitive(t *testing.T) {
	s := newSim(t, Config{Services: 20, Seed: 3, SensitiveShare: 2})
	rep := s.RunRound()
	services := map[int]Microservice{}
	for _, ms := range s.Services() {
		services[ms.ID] = ms
	}
	// Compare same-cloud pairs of different classes.
	checked := false
	for a, inA := range rep.Indicators {
		for b, inB := range rep.Indicators {
			msA, msB := services[a], services[b]
			if msA.Cloud != msB.Cloud || msA.Class == msB.Class {
				continue
			}
			checked = true
			sensitive, tolerant := inA, inB
			if msA.Class == workload.DelayTolerant {
				sensitive, tolerant = inB, inA
			}
			if sensitive.Allocated <= tolerant.Allocated {
				t.Fatalf("delay-sensitive allocation %v not above tolerant %v on cloud %d",
					sensitive.Allocated, tolerant.Allocated, msA.Cloud)
			}
			if ratio := sensitive.Allocated / tolerant.Allocated; math.Abs(ratio-2) > 1e-9 {
				t.Fatalf("priority ratio = %v, want 2", ratio)
			}
		}
	}
	if !checked {
		t.Skip("no mixed-class cloud in this draw")
	}
}

func TestWorkConservation(t *testing.T) {
	// Over a long run with light load everything that arrives completes.
	s := newSim(t, Config{Services: 4, Rounds: 20, WorkMean: 1, Seed: 4})
	var arrived, completed, backlog int
	for _, rep := range s.Run() {
		for _, in := range rep.Indicators {
			arrived += in.ReceivedResponses
			completed += in.ServedResponses
		}
		backlog = 0
		for _, q := range rep.QueueLengths {
			backlog += q
		}
	}
	if arrived == 0 {
		t.Fatal("no arrivals in 20 rounds")
	}
	if completed+backlog < arrived {
		t.Fatalf("lost requests: arrived %d, completed %d, backlog %d", arrived, completed, backlog)
	}
	if completed > arrived {
		t.Fatalf("completed %d more than arrived %d", completed, arrived)
	}
	if backlog != 0 {
		t.Fatalf("light load should fully drain, %d left", backlog)
	}
}

func TestHeavyLoadBuildsBacklogAndUtilization(t *testing.T) {
	s := newSim(t, Config{Services: 10, Rounds: 6, WorkMean: 50000, Seed: 5})
	reports := s.Run()
	last := reports[len(reports)-1]
	backlog := 0
	var maxUtil float64
	for id, q := range last.QueueLengths {
		backlog += q
		if u := last.Indicators[id].ExecutionRate; u > maxUtil {
			maxUtil = u
		}
	}
	if backlog == 0 {
		t.Fatal("overloaded system should have a backlog")
	}
	if maxUtil < 0.9 {
		t.Fatalf("overloaded system max utilization %v, want near 1", maxUtil)
	}
}

func TestSimDeterminism(t *testing.T) {
	run := func() []*RoundReport {
		return newSim(t, Config{Services: 8, Rounds: 3, Seed: 42}).Run()
	}
	a, b := run(), run()
	for i := range a {
		for id, inA := range a[i].Indicators {
			inB := b[i].Indicators[id]
			if inA != inB {
				t.Fatalf("round %d ms %d: %+v vs %+v", i+1, id, inA, inB)
			}
		}
	}
}

func TestBridgeConvert(t *testing.T) {
	s := newSim(t, Config{Services: 20, Rounds: 3, WorkMean: 600, Seed: 7})
	bridge, err := NewBridge(s, BridgeConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sawNeedy := false
	for _, rep := range s.Run() {
		ar := bridge.Convert(rep)
		ins := ar.Round.Instance
		if err := ins.Validate(); err != nil {
			t.Fatalf("round %d: bridge produced invalid instance: %v", rep.Round, err)
		}
		if len(ar.Estimates) != 20 {
			t.Fatalf("round %d: estimates for %d services, want 20", rep.Round, len(ar.Estimates))
		}
		if ins.NumNeedy() == 0 {
			continue
		}
		sawNeedy = true
		if len(ar.NeedyIDs) != ins.NumNeedy() {
			t.Fatalf("needy ids %d != demands %d", len(ar.NeedyIDs), ins.NumNeedy())
		}
		// Needy services never bid.
		needySet := map[int]bool{}
		for _, id := range ar.NeedyIDs {
			needySet[id] = true
		}
		hasReserve := false
		for _, b := range ins.Bids {
			if b.Bidder >= ReserveBidderID {
				hasReserve = true
				if len(b.Covers) != 1 {
					t.Fatal("reserve rungs must cover exactly one needy microservice")
				}
				continue
			}
			if needySet[b.Bidder] {
				t.Fatalf("needy ms %d submitted a bid", b.Bidder)
			}
		}
		if !hasReserve {
			t.Fatal("platform reserve missing")
		}
		if !ins.Coverable() {
			t.Fatal("bridge round not coverable despite reserve")
		}
	}
	if !sawNeedy {
		t.Fatal("contended configuration produced no needy rounds")
	}
}

func TestBridgeNoReserveOption(t *testing.T) {
	s := newSim(t, Config{Services: 20, Rounds: 2, WorkMean: 600, Seed: 7})
	bridge, err := NewBridge(s, BridgeConfig{Seed: 7, NoPlatformReserve: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range s.Run() {
		ar := bridge.Convert(rep)
		for _, b := range ar.Round.Instance.Bids {
			if b.Bidder >= ReserveBidderID {
				t.Fatal("reserve bid present despite NoPlatformReserve")
			}
		}
	}
}

func TestMeanWaitingAccessor(t *testing.T) {
	s := newSim(t, Config{Services: 4, Rounds: 1, WorkMean: 1, Seed: 9})
	s.RunRound()
	if w := s.MeanWaiting(1); w < 0 {
		t.Fatalf("mean waiting negative: %v", w)
	}
	if w := s.MeanWaiting(999); w != 0 {
		t.Fatalf("unknown service should report 0, got %v", w)
	}
}
