package sim

import (
	"fmt"

	"edgeauction/internal/workload"
)

// Graph mode: when Config.Graph is set, the simulator's microservices,
// arrival processes, and request routing come from a validated
// workload.ServiceGraph instead of the flat §V-A i.i.d. defaults.
// External requests enter at the graph's entries and flows, and each
// successful completion fans out through the service's call edges at
// the completion instant — so waiting time, processing rate, and
// utilization (the AHP indicators) emerge from simulated load
// propagating through the call graph.

// graphRuntime is the per-simulator state of graph mode.
type graphRuntime struct {
	graph *workload.ServiceGraph
	// entryCols are the external arrival sources in document order:
	// entries first, then flows. Their order fixes the trace columns.
	entryCols []entryCol
	// trace, when set, replays recorded counts instead of drawing them.
	trace *workload.RequestTrace
	// entryLog records the realized counts per round for export.
	entryLog [][]int
}

// entryCol is one external arrival source.
type entryCol struct {
	service int // target microservice id (flow: first step)
	flow    int // 1-based flow index, 0 for plain entries
	spec    workload.ArrivalSpec
}

// traceColumns names the entry columns of a graph, in order: the entry
// services, then "flow:<name>" per flow. A request trace is only valid
// against the graph whose column list matches exactly.
func traceColumns(g *workload.ServiceGraph) []string {
	cols := make([]string, 0, len(g.Entries)+len(g.Flows))
	for _, e := range g.Entries {
		cols = append(cols, e.Service)
	}
	for _, f := range g.Flows {
		cols = append(cols, "flow:"+f.Name)
	}
	return cols
}

// buildGraphServices populates the simulator's services from the graph
// and returns the runtime. Pinned cloud ids are validated against the
// topology up front (fairShare would otherwise silently allocate zero).
func (s *Simulator) buildGraphServices(g *workload.ServiceGraph) (*graphRuntime, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	visits := g.VisitRates(s.cfg.Rounds)
	for i, spec := range g.Services {
		id := i + 1
		cloud := spec.Cloud
		if cloud == 0 {
			cloud = (i % len(s.topo.Clouds)) + 1
		}
		if _, err := s.topo.Cloud(cloud); err != nil {
			return nil, fmt.Errorf("sim: service %q pinned to cloud %d: %w", spec.Name, spec.Cloud, err)
		}
		workMean := spec.Work
		if workMean == 0 {
			workMean = s.cfg.WorkMean
		}
		def := Microservice{
			ID:       id,
			Name:     spec.Name,
			Class:    spec.Class,
			Cloud:    cloud,
			WorkMean: workMean,
			// In graph mode the needed rate is sized from the propagated
			// visit rate — derived from simulated load, not sampled.
			TargetRate: visits[i] / s.cfg.RoundLength * headroom(spec.Class),
		}
		s.services[id] = &msState{def: def}
		s.order = append(s.order, id)
	}
	rt := &graphRuntime{graph: g}
	for _, e := range g.Entries {
		rt.entryCols = append(rt.entryCols, entryCol{
			service: g.Index(e.Service) + 1, spec: e.Arrivals,
		})
	}
	for fi, f := range g.Flows {
		rt.entryCols = append(rt.entryCols, entryCol{
			service: g.Index(f.Steps[0]) + 1, flow: fi + 1, spec: f.Arrivals,
		})
	}
	return rt, nil
}

// validateTrace checks a recorded trace against the graph and schedule.
func (s *Simulator) validateTrace(rt *graphRuntime, tr *workload.RequestTrace) error {
	want := traceColumns(rt.graph)
	if len(tr.Services) != len(want) {
		return fmt.Errorf("%w: trace has %d columns, topology %q has %d entry sources",
			workload.ErrBadRequestTrace, len(tr.Services), rt.graph.Name, len(want))
	}
	for i, name := range want {
		if tr.Services[i] != name {
			return fmt.Errorf("%w: trace column %d is %q, topology %q expects %q",
				workload.ErrBadRequestTrace, i, tr.Services[i], rt.graph.Name, name)
		}
	}
	if len(tr.Rounds) < s.cfg.Rounds {
		return fmt.Errorf("%w: trace has %d rounds, schedule needs %d",
			workload.ErrBadRequestTrace, len(tr.Rounds), s.cfg.Rounds)
	}
	rt.trace = tr
	return nil
}

// seedGraphArrivals injects this round's external arrivals: per entry
// column, a Poisson draw on the spec's intensity (or the recorded trace
// count), spread uniformly over the round. Counts are logged for
// export. All draws come from the simulator's single stream in column
// order, which is what makes same-seed runs byte-identical.
func (s *Simulator) seedGraphArrivals(roundEnd float64) {
	rt := s.wl
	counts := make([]int, len(rt.entryCols))
	for c, col := range rt.entryCols {
		var n int
		if rt.trace != nil {
			n = rt.trace.Rounds[s.round-1].Counts[c]
		} else {
			n = s.rng.Poisson(col.spec.Intensity(s.round - 1))
		}
		counts[c] = n
		for i := 0; i < n; i++ {
			at := roundEnd - s.rng.Float64()*s.cfg.RoundLength
			s.queue.schedule(&event{at: at, kind: evArrival, ms: col.service, flow: col.flow})
		}
	}
	rt.entryLog = append(rt.entryLog, counts)
}

// cascade fans a successful completion out through the service's call
// edges and advances the request's flow, scheduling the downstream
// arrivals at the completion instant. A failed request (error_rate
// draw) produces no downstream work.
func (s *Simulator) cascade(st *msState, done request) {
	g := s.wl.graph
	spec := g.Services[st.def.ID-1]
	if spec.ErrorRate > 0 && s.rng.Float64() < spec.ErrorRate {
		return
	}
	for _, c := range spec.Calls {
		prob := c.Prob
		if prob == 0 {
			prob = 1
		}
		if prob < 1 && s.rng.Float64() >= prob {
			continue
		}
		s.queue.schedule(&event{
			at: s.now, kind: evArrival, ms: g.Index(c.To) + 1,
		})
	}
	if done.flow > 0 {
		steps := g.Flows[done.flow-1].Steps
		if done.step+1 < len(steps) {
			s.queue.schedule(&event{
				at: s.now, kind: evArrival, ms: g.Index(steps[done.step+1]) + 1,
				flow: done.flow, step: done.step + 1,
			})
		}
	}
}

// RequestTrace returns the external arrivals realized so far as an
// importable trace (graph mode only; nil otherwise). Re-running the
// same topology with the returned trace as Config.Trace reproduces the
// same external load.
func (s *Simulator) RequestTrace() *workload.RequestTrace {
	if s.wl == nil {
		return nil
	}
	tr := &workload.RequestTrace{
		Name:     s.wl.graph.Name,
		Services: traceColumns(s.wl.graph),
	}
	for i, counts := range s.wl.entryLog {
		tr.Rounds = append(tr.Rounds, workload.RoundArrivals{
			T: i + 1, Counts: append([]int(nil), counts...),
		})
	}
	return tr
}

// ApplyTransfers adjusts the next round's fair-share allocations by the
// given per-microservice deltas (work-rate units, positive for winners
// of auctioned resources, negative for sellers). The deltas apply to
// exactly one round — the auction runs every round, so persistent
// transfers re-win each time — and allocations are clamped at zero.
// This is the feedback edge that lets a starved hot service drain its
// sellers' shares in the cascading-overload scenarios.
func (s *Simulator) ApplyTransfers(delta map[int]float64) {
	if len(delta) == 0 {
		return
	}
	if s.transfers == nil {
		s.transfers = make(map[int]float64, len(delta))
	}
	for id, d := range delta {
		s.transfers[id] += d
	}
}
