package sim

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"edgeauction/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from current output")

// oracleArrivalSpecs covers every arrival process; the queueing tests
// below run once per spec.
var oracleArrivalSpecs = []struct {
	name string
	spec workload.ArrivalSpec
}{
	{"poisson", workload.ArrivalSpec{Process: workload.ArrivalPoisson, Rate: 8}},
	{"onoff", workload.ArrivalSpec{Process: workload.ArrivalOnOff, Rate: 8, Period: 6, Duty: 0.5}},
	{"diurnal", workload.ArrivalSpec{Process: workload.ArrivalDiurnal, Rate: 8, Period: 10, Amplitude: 0.8}},
	{"flash", workload.ArrivalSpec{Process: workload.ArrivalFlash, Rate: 6, At: 10, Width: 3, Height: 5}},
}

func soloGraph(spec workload.ArrivalSpec) *workload.ServiceGraph {
	return &workload.ServiceGraph{
		Name: "solo",
		Services: []workload.ServiceSpec{
			{Name: "solo", Class: workload.DelaySensitive, Cloud: 1, Work: 60},
		},
		Entries: []workload.EntrySpec{{Service: "solo", Arrivals: spec}},
	}
}

// TestGraphLindleyOracle is the queueing audit the flat-path M/M/1 test
// can't cover under bursty arrivals: an independent Lindley-recursion
// replay of a single-queue topology must reproduce the simulator's
// per-round arrivals, completions, and waiting sums exactly, for every
// arrival process. The oracle replays the simulator's RNG draw order
// (one Int63 for the topology fork, then per round the Poisson count,
// the arrival times, and the work draws in arrival order) and computes
// completion times as C_k = max(A_k, C_{k-1}) + W_k/rate.
func TestGraphLindleyOracle(t *testing.T) {
	const (
		rounds = 30
		seed   = 11
		length = 600.0
	)
	for _, tc := range oracleArrivalSpecs {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Config{Graph: soloGraph(tc.spec), Rounds: rounds, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			cloud, err := s.Topology().Cloud(1)
			if err != nil {
				t.Fatal(err)
			}
			rate := cloud.Capacity // only service on its cloud: full share
			reports := s.Run()

			// Oracle replay on an identical stream.
			rng := workload.NewRand(seed)
			rng.Int63() // the topology Fork in New
			type obs struct {
				arrivals    int
				completions int
				waitingSum  float64
			}
			perRound := make([]obs, rounds+1) // 1-based; overflow dropped
			prevDone := 0.0
			for r := 0; r < rounds; r++ {
				roundEnd := float64(r+1) * length
				n := rng.Poisson(tc.spec.Intensity(r))
				times := make([]float64, n)
				for i := range times {
					times[i] = roundEnd - rng.Float64()*length
				}
				sort.Float64s(times)
				perRound[r+1].arrivals = n
				// Work draws happen at arrival-event time, i.e. in sorted
				// arrival order.
				for _, at := range times {
					work := drawWork(rng, WorkExponential, 60)
					start := at
					if prevDone > start {
						start = prevDone
					}
					done := start + work/rate
					prevDone = done
					// Ceil attributes a boundary completion to the ending
					// round, matching the event order (completions fire
					// before the round-end event at the same instant).
					cr := int(math.Ceil(done / length))
					if cr >= 1 && cr <= rounds {
						perRound[cr].completions++
						perRound[cr].waitingSum += start - at
					}
				}
			}
			for r := 1; r <= rounds; r++ {
				rep := reports[r-1]
				ind := rep.Indicators[1]
				if ind.ReceivedResponses != perRound[r].arrivals {
					t.Errorf("round %d: arrivals %d, oracle %d", r, ind.ReceivedResponses, perRound[r].arrivals)
				}
				if ind.ServedResponses != perRound[r].completions {
					t.Errorf("round %d: completions %d, oracle %d", r, ind.ServedResponses, perRound[r].completions)
				}
				var meanWait float64
				if perRound[r].completions > 0 {
					meanWait = perRound[r].waitingSum / float64(perRound[r].completions)
				}
				if diff := math.Abs(rep.MeanWaiting[1] - meanWait); diff > 1e-6*(1+meanWait) {
					t.Errorf("round %d: mean waiting %v, oracle %v", r, rep.MeanWaiting[1], meanWait)
				}
			}
		})
	}
}

func meshGraph(workScale float64, spec workload.ArrivalSpec) *workload.ServiceGraph {
	return &workload.ServiceGraph{
		Name: "mesh",
		Services: []workload.ServiceSpec{
			{Name: "a", Class: workload.DelaySensitive, Cloud: 1, Work: 16 * workScale,
				Calls: []workload.CallSpec{{To: "b", Prob: 0.7}}},
			{Name: "b", Class: workload.DelayTolerant, Cloud: 1, Work: 24 * workScale, ErrorRate: 0.1,
				Calls: []workload.CallSpec{{To: "c", Prob: 1}}},
			{Name: "c", Class: workload.DelayTolerant, Cloud: 2, Work: 32 * workScale},
		},
		Entries: []workload.EntrySpec{{Service: "a", Arrivals: spec}},
		Flows: []workload.FlowSpec{
			{Name: "tour", Steps: []string{"a", "c"},
				Arrivals: workload.ArrivalSpec{Process: workload.ArrivalPoisson, Rate: 2}},
		},
	}
}

// TestGraphMetamorphicWorkScaling is the metamorphic property from the
// issue: scaling every work mean and the round length by the same
// power of two preserves the event order and every RNG draw, so waiting
// times scale by exactly that factor while counts (arrivals,
// completions, SLA violations) and utilization are invariant. It must
// hold for every arrival process, including through call-graph fan-out
// and flows.
func TestGraphMetamorphicWorkScaling(t *testing.T) {
	const (
		rounds = 12
		seed   = 5
		alpha  = 2.0 // power of two: FP-exact scaling
	)
	for _, tc := range oracleArrivalSpecs {
		t.Run(tc.name, func(t *testing.T) {
			base, err := New(Config{Graph: meshGraph(1, tc.spec), Rounds: rounds, Seed: seed,
				RoundLength: 600, WorkMean: 30})
			if err != nil {
				t.Fatal(err)
			}
			scaled, err := New(Config{Graph: meshGraph(alpha, tc.spec), Rounds: rounds, Seed: seed,
				RoundLength: 600 * alpha, WorkMean: 30 * alpha})
			if err != nil {
				t.Fatal(err)
			}
			baseReps, scaledReps := base.Run(), scaled.Run()
			for r := 0; r < rounds; r++ {
				for id := 1; id <= 3; id++ {
					b, sc := baseReps[r].Indicators[id], scaledReps[r].Indicators[id]
					if b.ReceivedResponses != sc.ReceivedResponses {
						t.Errorf("round %d ms %d: arrivals changed %d -> %d", r+1, id, b.ReceivedResponses, sc.ReceivedResponses)
					}
					if b.ServedResponses != sc.ServedResponses {
						t.Errorf("round %d ms %d: completions changed %d -> %d", r+1, id, b.ServedResponses, sc.ServedResponses)
					}
					if baseReps[r].SLAViolations[id] != scaledReps[r].SLAViolations[id] {
						t.Errorf("round %d ms %d: SLA violations changed", r+1, id)
					}
					if relDiff(b.ExecutionRate, sc.ExecutionRate) > 1e-12 {
						t.Errorf("round %d ms %d: utilization changed %v -> %v", r+1, id, b.ExecutionRate, sc.ExecutionRate)
					}
					bw, sw := baseReps[r].MeanWaiting[id], scaledReps[r].MeanWaiting[id]
					if relDiff(alpha*bw, sw) > 1e-9 {
						t.Errorf("round %d ms %d: waiting %v did not scale x%v (got %v)", r+1, id, bw, alpha, sw)
					}
					if relDiff(b.AchievedRate, alpha*sc.AchievedRate) > 1e-12 {
						t.Errorf("round %d ms %d: achieved rate %v did not scale x1/%v (got %v)", r+1, id, b.AchievedRate, alpha, sc.AchievedRate)
					}
				}
			}
		})
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(1e-300, math.Max(math.Abs(a), math.Abs(b)))
}

// TestStarvedServiceUtilization is the regression for the accrue bug:
// a service whose allocation is drained to zero processes nothing and
// must report utilization 0 — before the fix it accrued busy time at
// rate 0 and reported a fully-busy idle server.
func TestStarvedServiceUtilization(t *testing.T) {
	g := soloGraph(workload.ArrivalSpec{Process: workload.ArrivalPoisson, Rate: 10})
	g.Services[0].Work = 50000 // far over capacity: backlog guaranteed
	s, err := New(Config{Graph: g, Rounds: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	first := s.RunRound()
	if first.QueueLengths[1] == 0 {
		t.Fatal("expected a backlog after an overloaded round")
	}
	s.ApplyTransfers(map[int]float64{1: -1e12})
	rep := s.RunRound()
	ind := rep.Indicators[1]
	if ind.ExecutionRate != 0 {
		t.Errorf("starved service reports utilization %v, want 0", ind.ExecutionRate)
	}
	if ind.ServedResponses != 0 {
		t.Errorf("starved service completed %d requests", ind.ServedResponses)
	}
	if rep.Allocated[1] != 0 {
		t.Errorf("allocation %v, want clamped to 0", rep.Allocated[1])
	}
	// The transfer is consumed: the next round restores the fair share.
	rep = s.RunRound()
	if rep.Allocated[1] == 0 {
		t.Error("transfer was not consumed after one round")
	}
}

// TestGraphCascadeFanout pins the call-graph semantics: with prob-1
// edges and no errors, every upstream completion injects exactly one
// downstream arrival at the completion instant (same round).
func TestGraphCascadeFanout(t *testing.T) {
	g := &workload.ServiceGraph{
		Name: "chain",
		Services: []workload.ServiceSpec{
			{Name: "up", Class: workload.DelaySensitive, Cloud: 1, Work: 5,
				Calls: []workload.CallSpec{{To: "down", Prob: 1}}},
			{Name: "down", Class: workload.DelaySensitive, Cloud: 2, Work: 5},
		},
		Entries: []workload.EntrySpec{
			{Service: "up", Arrivals: workload.ArrivalSpec{Process: workload.ArrivalOnOff, Rate: 6, Period: 4}},
		},
	}
	s, err := New(Config{Graph: g, Rounds: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range s.Run() {
		up, down := rep.Indicators[1], rep.Indicators[2]
		if down.ReceivedResponses != up.ServedResponses {
			t.Errorf("round %d: downstream arrivals %d != upstream completions %d",
				rep.Round, down.ReceivedResponses, up.ServedResponses)
		}
	}
}

// TestGraphFlowSteps pins multi-step flows: each flow user traverses
// the steps in order, so the second step receives exactly the first
// step's flow completions (the only load on it in this graph).
func TestGraphFlowSteps(t *testing.T) {
	g := &workload.ServiceGraph{
		Name: "flowchain",
		Services: []workload.ServiceSpec{
			{Name: "first", Class: workload.DelaySensitive, Cloud: 1, Work: 5},
			{Name: "second", Class: workload.DelaySensitive, Cloud: 2, Work: 5},
		},
		Flows: []workload.FlowSpec{
			{Name: "walk", Steps: []string{"first", "second"},
				Arrivals: workload.ArrivalSpec{Process: workload.ArrivalPoisson, Rate: 5}},
		},
	}
	s, err := New(Config{Graph: g, Rounds: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range s.Run() {
		first, second := rep.Indicators[1], rep.Indicators[2]
		if second.ReceivedResponses != first.ServedResponses {
			t.Errorf("round %d: step-2 arrivals %d != step-1 completions %d",
				rep.Round, second.ReceivedResponses, first.ServedResponses)
		}
	}
}

// TestGraphDeterministic: identical configs yield identical reports.
func TestGraphDeterministic(t *testing.T) {
	run := func() string {
		g, err := workload.BuiltinGraph("overload")
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Graph: g, Rounds: 15, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, rep := range s.Run() {
			fmt.Fprintf(&b, "%+v\n", *rep)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Error("same-seed graph runs diverge")
	}
}

// TestGraphTraceRoundTrip: exporting a run's request trace and feeding
// it back reproduces the same external arrival schedule.
func TestGraphTraceRoundTrip(t *testing.T) {
	g, err := workload.BuiltinGraph("spikes")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Graph: g, Rounds: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a.Run()
	exported := a.RequestTrace()
	if exported == nil || len(exported.Rounds) != 8 {
		t.Fatalf("bad exported trace: %+v", exported)
	}

	var buf bytes.Buffer
	if err := workload.WriteRequestTrace(&buf, exported); err != nil {
		t.Fatal(err)
	}
	imported, err := workload.ReadRequestTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	b, err := New(Config{Graph: g.Clone(), Rounds: 8, Seed: 999, Trace: imported})
	if err != nil {
		t.Fatal(err)
	}
	b.Run()
	if got := b.RequestTrace(); !reflect.DeepEqual(got, exported) {
		t.Errorf("replayed trace differs:\n got %+v\nwant %+v", got, exported)
	}
}

func TestGraphTraceValidation(t *testing.T) {
	g, err := workload.BuiltinGraph("spikes")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Trace: &workload.RequestTrace{}}); err == nil {
		t.Error("trace without graph accepted")
	}
	short := &workload.RequestTrace{Services: []string{"gateway", "flow:checkout"},
		Rounds: []workload.RoundArrivals{{T: 1, Counts: []int{1, 1}}}}
	if _, err := New(Config{Graph: g, Rounds: 5, Trace: short}); err == nil {
		t.Error("short trace accepted")
	}
	wrongCols := &workload.RequestTrace{Services: []string{"nope"}}
	if _, err := New(Config{Graph: g.Clone(), Rounds: 1, Trace: wrongCols}); err == nil {
		t.Error("mismatched trace columns accepted")
	}
}

func TestGraphRejectsBadCloudPin(t *testing.T) {
	g := soloGraph(workload.ArrivalSpec{Rate: 1})
	g.Services[0].Cloud = 99 // default topology has 10 clouds
	if _, err := New(Config{Graph: g}); err == nil {
		t.Error("out-of-range cloud pin accepted")
	}
}

// TestGraphGolden pins the indicator trajectory of a committed YAML
// topology so simulator refactors can't silently shift the demand that
// feeds the AHP estimator. Regenerate with -update-golden after an
// intentional change, and justify the diff in the commit.
func TestGraphGolden(t *testing.T) {
	g, err := workload.LoadServiceGraph(filepath.Join("testdata", "three_tier.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Graph: g, Rounds: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("round service arrivals completions waiting processing util rate queue alloc\n")
	for _, rep := range s.Run() {
		for _, ms := range s.Services() {
			ind := rep.Indicators[ms.ID]
			fmt.Fprintf(&b, "%d %s %d %d %.6f %.6f %.6f %.6f %d %.3f\n",
				rep.Round, ms.Name, ind.ReceivedResponses, ind.ServedResponses,
				rep.MeanWaiting[ms.ID], ind.AchievedRate, ind.ExecutionRate,
				ind.NeededRate, rep.QueueLengths[ms.ID], rep.Allocated[ms.ID])
		}
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", "three_tier.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("golden trajectory mismatch (run with -update-golden if intentional):\n got:\n%s\nwant:\n%s", got, want)
	}
}
