package sim

import (
	"math"
	"testing"

	"edgeauction/internal/topology"
	"edgeauction/internal/workload"
)

// TestSimulatorMatchesMM1Theory validates the discrete-event engine against
// closed-form queueing theory: a single microservice with Poisson arrivals
// and exponential work served at a fixed rate is an M/M/1 queue, whose mean
// waiting time in queue is Wq = ρ/(μ(1−ρ)). A correct event engine must
// land near the formula; errors in arrival generation, service accounting,
// or completion scheduling all shift it.
func TestSimulatorMatchesMM1Theory(t *testing.T) {
	const (
		roundLength = 600.0
		capacity    = 100.0 // the single service gets the whole cloud
		rounds      = 3000
	)
	// Delay-sensitive class: Poisson mean 5 per round => λ = 5/600 per s.
	lambda := 5.0 / roundLength

	for _, rho := range []float64{0.3, 0.6} {
		// ρ = λ·E[S], E[S] = WorkMean/capacity => WorkMean = ρ·capacity/λ.
		workMean := rho * capacity / lambda
		topo := topology.Generate(workload.NewRand(1), topology.Config{Clouds: 1, Users: 5})
		s, err := New(Config{
			Topology:    topo,
			Services:    1,
			Rounds:      rounds,
			RoundLength: roundLength,
			WorkMean:    workMean,
			Seed:        42,
		})
		if err != nil {
			t.Fatal(err)
		}
		var waitingSum float64
		var completions int
		for _, rep := range s.Run() {
			n := rep.Indicators[1].ServedResponses
			waitingSum += rep.MeanWaiting[1] * float64(n)
			completions += n
		}
		if completions < 10000 {
			t.Fatalf("ρ=%v: only %d completions, too few for the comparison", rho, completions)
		}
		measured := waitingSum / float64(completions)

		mu := capacity / workMean // service rate (1/E[S])
		want := rho / (mu * (1 - rho))
		if rel := math.Abs(measured-want) / want; rel > 0.15 {
			t.Fatalf("ρ=%v: mean waiting %v, M/M/1 predicts %v (%.1f%% off)",
				rho, measured, want, 100*rel)
		}
	}
}

// TestSimulatorUtilizationMatchesRho cross-checks the busy-fraction
// accounting: measured utilization must equal ρ within sampling noise.
func TestSimulatorUtilizationMatchesRho(t *testing.T) {
	const (
		roundLength = 600.0
		capacity    = 100.0
		rounds      = 1500
		rho         = 0.5
	)
	lambda := 5.0 / roundLength
	workMean := rho * capacity / lambda
	topo := topology.Generate(workload.NewRand(2), topology.Config{Clouds: 1, Users: 5})
	s, err := New(Config{
		Topology:    topo,
		Services:    1,
		Rounds:      rounds,
		RoundLength: roundLength,
		WorkMean:    workMean,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var utilSum float64
	for _, rep := range s.Run() {
		utilSum += rep.Indicators[1].ExecutionRate
	}
	measured := utilSum / rounds
	if math.Abs(measured-rho) > 0.05 {
		t.Fatalf("measured utilization %v, want ρ=%v", measured, rho)
	}
}
