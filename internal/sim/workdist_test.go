package sim

import (
	"math"
	"testing"

	"edgeauction/internal/workload"
)

func TestDrawWorkMeansMatch(t *testing.T) {
	rng := workload.NewRand(1)
	const mean = 40.0
	const n = 50000
	for _, dist := range []WorkDist{WorkExponential, WorkPareto, WorkUniform, WorkDeterministic} {
		var sum float64
		for i := 0; i < n; i++ {
			w := drawWork(rng, dist, mean)
			if w <= 0 {
				t.Fatalf("%v: non-positive work %v", dist, w)
			}
			sum += w
		}
		got := sum / n
		tol := 0.05 * mean
		if dist == WorkPareto {
			tol = 0.15 * mean // heavy tail converges slowly
		}
		if math.Abs(got-mean) > tol {
			t.Fatalf("%v: sample mean %v, want ~%v", dist, got, mean)
		}
	}
}

func TestDrawWorkDeterministicIsExact(t *testing.T) {
	rng := workload.NewRand(2)
	for i := 0; i < 10; i++ {
		if w := drawWork(rng, WorkDeterministic, 7.5); w != 7.5 {
			t.Fatalf("deterministic work = %v", w)
		}
	}
}

func TestDrawWorkParetoHasHeavyTail(t *testing.T) {
	rng := workload.NewRand(3)
	const mean = 10.0
	const n = 200000
	exceed := func(dist WorkDist, threshold float64) int {
		count := 0
		for i := 0; i < n; i++ {
			if drawWork(rng, dist, mean) > threshold {
				count++
			}
		}
		return count
	}
	pareto := exceed(WorkPareto, 10*mean)
	expo := exceed(WorkExponential, 10*mean)
	if pareto <= expo {
		t.Fatalf("Pareto tail (%d > 10x mean) should dominate exponential (%d)", pareto, expo)
	}
}

func TestWorkDistStrings(t *testing.T) {
	names := map[WorkDist]string{
		WorkExponential:   "exponential",
		WorkPareto:        "pareto",
		WorkUniform:       "uniform",
		WorkDeterministic: "deterministic",
		WorkDist(99):      "unknown",
	}
	for d, want := range names {
		if got := d.String(); got != want {
			t.Fatalf("WorkDist(%d).String() = %q, want %q", d, got, want)
		}
	}
}

func TestValidateWorkDist(t *testing.T) {
	if err := validateWorkDist(WorkPareto); err != nil {
		t.Fatal(err)
	}
	if err := validateWorkDist(0); err != nil {
		t.Fatal("zero value must be accepted (defaulted)")
	}
	if err := validateWorkDist(WorkDist(42)); err == nil {
		t.Fatal("unknown distribution must be rejected")
	}
	if _, err := New(Config{Work: WorkDist(42)}); err == nil {
		t.Fatal("New must reject unknown work distribution")
	}
}

func TestSimSLAViolationsTracked(t *testing.T) {
	// Saturated system: deadlines are missed.
	s := newSim(t, Config{Services: 6, Rounds: 4, WorkMean: 50000, Seed: 4, DeadlineFactor: 0.01})
	total := 0
	for _, rep := range s.Run() {
		if rep.SLAViolations == nil {
			t.Fatal("SLA violation map missing")
		}
		for _, v := range rep.SLAViolations {
			if v < 0 {
				t.Fatalf("negative violation count %d", v)
			}
			total += v
		}
	}
	// A lightly loaded system misses (almost) nothing.
	light := newSim(t, Config{Services: 6, Rounds: 4, WorkMean: 1, Seed: 4})
	lightTotal := 0
	for _, rep := range light.Run() {
		for _, v := range rep.SLAViolations {
			lightTotal += v
		}
	}
	if lightTotal > total {
		t.Fatalf("light load misses more deadlines (%d) than saturation (%d)", lightTotal, total)
	}
	if lightTotal != 0 {
		t.Fatalf("near-instant service should miss no deadlines, got %d", lightTotal)
	}
}

func TestSimMeanWaitingReported(t *testing.T) {
	s := newSim(t, Config{Services: 6, Rounds: 2, WorkMean: 600, Seed: 5})
	for _, rep := range s.Run() {
		for id, w := range rep.MeanWaiting {
			if w < 0 {
				t.Fatalf("ms %d negative mean waiting %v", id, w)
			}
		}
	}
}

func TestSimParetoWorkloadRuns(t *testing.T) {
	s := newSim(t, Config{Services: 10, Rounds: 3, WorkMean: 600, Work: WorkPareto, Seed: 6})
	reports := s.Run()
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	// Heavy-tailed work should produce at least some waiting or backlog
	// somewhere across the run (a giant request blocks the queue).
	saw := false
	for _, rep := range reports {
		for id := range rep.Indicators {
			if rep.MeanWaiting[id] > 0 || rep.QueueLengths[id] > 0 {
				saw = true
			}
		}
	}
	if !saw {
		t.Fatal("pareto workload produced no queueing at all — implausible")
	}
}
