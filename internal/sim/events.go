// Package sim is a discrete-event simulator of a microservice-based edge
// cloud: Poisson request arrivals per microservice class, FIFO service at a
// rate set by the fair-share resource allocation of the hosting edge cloud,
// and per-round indicator collection (waiting time, processing rate,
// request rate, utilization) feeding the demand estimator of §III. It is
// the substrate standing in for the paper's simulated testbed of 10 base
// stations and 300 users.
package sim

import "container/heap"

// eventKind discriminates simulator events.
type eventKind int

const (
	evArrival eventKind = iota + 1
	evCompletion
	evRoundEnd
)

// event is one scheduled occurrence.
type event struct {
	at   float64
	kind eventKind
	ms   int // microservice id (arrival/completion)
	seq  int // completion guard: matches microservice.seq or is stale
	flow int // arriving request's 1-based flow index (graph mode)
	step int // arriving request's flow step
	idx  int // heap index
}

// eventQueue is a min-heap on event time with FIFO tie-breaking by
// insertion order (via a monotonically increasing tiebreak counter encoded
// in insertion sequence — heap stability is not required for correctness
// because ties are broken deterministically by comparing kinds: round ends
// fire after completions and arrivals at the same instant, so a round's
// statistics include everything that happened within it).
type eventQueue struct {
	items []*event
}

var _ heap.Interface = (*eventQueue)(nil)

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	// Same instant: completions and arrivals before round end.
	return a.kind < b.kind
}

func (q *eventQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].idx = i
	q.items[j].idx = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(q.items)
	q.items = append(q.items, e)
}

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return e
}

// schedule pushes a new event.
func (q *eventQueue) schedule(e *event) { heap.Push(q, e) }

// next pops the earliest event, or nil when empty.
func (q *eventQueue) next() *event {
	if q.Len() == 0 {
		return nil
	}
	return heap.Pop(q).(*event)
}
