package sim

import (
	"testing"

	"edgeauction/internal/demand"
)

// gateReport builds a minimal one-service round report for the demand
// gate tests.
func gateReport(util float64, queue int) *RoundReport {
	return &RoundReport{
		Round: 3,
		Indicators: map[int]demand.Indicators{
			1: {Round: 3, ExecutionRate: util, Allocated: 20, MaxAllocated: 25,
				ReceivedResponses: 10, ServedResponses: 8, NeededRate: 5, AchievedRate: 4},
		},
		QueueLengths:  map[int]int{1: queue},
		Allocated:     map[int]float64{1: 20},
		SLAViolations: map[int]int{},
		MeanWaiting:   map[int]float64{1: 2},
	}
}

// TestBridgeNeedyQueueGate checks BridgeConfig.NeedyQueue: below the
// threshold a backlogged-but-underutilized service stays off the demand
// side; at the threshold it enters; and the default (zero) keeps the
// legacy any-backlog behavior.
func TestBridgeNeedyQueueGate(t *testing.T) {
	s, err := New(Config{Services: 2, Rounds: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	gated, err := NewBridge(s, BridgeConfig{Seed: 1, NeedyQueue: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ar := gated.Convert(gateReport(0.3, 1)); len(ar.NeedyIDs) != 0 {
		t.Fatalf("queue 1 under NeedyQueue 2: needy %v, want none", ar.NeedyIDs)
	}
	if ar := gated.Convert(gateReport(0.3, 2)); len(ar.NeedyIDs) != 1 {
		t.Fatalf("queue 2 under NeedyQueue 2: needy %v, want the service", ar.NeedyIDs)
	}
	// High utilization is needy regardless of the queue gate.
	if ar := gated.Convert(gateReport(0.8, 0)); len(ar.NeedyIDs) != 1 {
		t.Fatalf("utilization 0.8 under NeedyQueue 2: needy %v, want the service", ar.NeedyIDs)
	}
	legacy, err := NewBridge(s, BridgeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ar := legacy.Convert(gateReport(0.3, 1)); len(ar.NeedyIDs) != 1 {
		t.Fatalf("queue 1 under default gate: needy %v, want the service (legacy behavior)", ar.NeedyIDs)
	}
}

// TestBridgeMaxUnitsCap checks BridgeConfig.MaxUnits bounds the per-needy
// coverage demand. A saturated service's AHP estimate blows up through
// the 1/(1-utilization) pole; the cap keeps it at market scale while the
// default stays uncapped.
func TestBridgeMaxUnitsCap(t *testing.T) {
	s, err := New(Config{Services: 2, Rounds: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	saturated := gateReport(1.0, 50)
	legacy, err := NewBridge(s, BridgeConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw := legacy.Convert(saturated).Round.Instance.Demand[0]
	if raw <= 10 {
		t.Fatalf("saturated demand = %d, expected the utilization pole to exceed the cap", raw)
	}
	capped, err := NewBridge(s, BridgeConfig{Seed: 1, MaxUnits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := capped.Convert(saturated).Round.Instance.Demand[0]; got != 10 {
		t.Fatalf("capped demand = %d, want 10", got)
	}
	// Demand below the cap is untouched.
	mild := gateReport(0.75, 2)
	want := legacy.Convert(mild).Round.Instance.Demand[0]
	if want > 10 {
		t.Skipf("mild demand %d above cap; indicator scale changed", want)
	}
	if got := capped.Convert(mild).Round.Instance.Demand[0]; got != want {
		t.Fatalf("sub-cap demand = %d, want %d (unchanged)", got, want)
	}
}
