package sim

import (
	"fmt"
	"math"

	"edgeauction/internal/workload"
)

// WorkDist selects the per-request work distribution. The paper's
// conclusion lists "the diverse processing time of each task" as future
// work; this implements it: beyond the exponential baseline, requests can
// draw heavy-tailed (Pareto), uniform, or deterministic work, changing the
// waiting-time and utilization indicators that drive the demand estimator.
type WorkDist int

const (
	// WorkExponential draws exponential work with the configured mean
	// (the baseline M/M/1-like behaviour).
	WorkExponential WorkDist = iota + 1
	// WorkPareto draws Pareto(α=2.5) work scaled to the configured mean:
	// heavy-tailed processing with occasional huge requests.
	WorkPareto
	// WorkUniform draws uniform work in [0.5, 1.5] x mean.
	WorkUniform
	// WorkDeterministic makes every request cost exactly the mean.
	WorkDeterministic
)

// String names the distribution.
func (d WorkDist) String() string {
	switch d {
	case WorkExponential:
		return "exponential"
	case WorkPareto:
		return "pareto"
	case WorkUniform:
		return "uniform"
	case WorkDeterministic:
		return "deterministic"
	default:
		return "unknown"
	}
}

// paretoAlpha is the shape of the Pareto work distribution; 2.5 keeps a
// finite variance while producing occasional order-of-magnitude outliers.
const paretoAlpha = 2.5

// drawWork samples one request's work amount with the given mean.
func drawWork(rng *workload.Rand, dist WorkDist, mean float64) float64 {
	switch dist {
	case WorkPareto:
		// Pareto with shape a has mean xm·a/(a−1); scale xm to hit mean.
		xm := mean * (paretoAlpha - 1) / paretoAlpha
		u := rng.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		return xm / math.Pow(1-u, 1/paretoAlpha)
	case WorkUniform:
		return rng.Uniform(0.5*mean, 1.5*mean)
	case WorkDeterministic:
		return mean
	case WorkExponential:
		fallthrough
	default:
		return rng.Exponential(1 / mean)
	}
}

// validateWorkDist rejects unknown distributions at configuration time so
// simulations never silently fall back mid-run.
func validateWorkDist(d WorkDist) error {
	switch d {
	case 0, WorkExponential, WorkPareto, WorkUniform, WorkDeterministic:
		return nil
	default:
		return fmt.Errorf("sim: unknown work distribution %d", d)
	}
}
