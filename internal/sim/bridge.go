package sim

import (
	"fmt"
	"sort"

	"edgeauction/internal/core"
	"edgeauction/internal/demand"
	"edgeauction/internal/workload"
)

// Bridge converts simulator round reports into auction rounds: it runs the
// demand estimator over each microservice's indicators, declares the
// overloaded ones "needy", and has the underloaded ones submit bids
// offering to yield resources to colocated needy microservices — the full
// §II pipeline of (a) online demand estimation and (b) winner selection
// input preparation.
type Bridge struct {
	cfg       BridgeConfig
	estimator *demand.Estimator
	sim       *Simulator
	rng       *workload.Rand
}

// BridgeConfig parameterizes the conversion.
type BridgeConfig struct {
	// Estimator is the §III demand estimator; nil builds the AHP default.
	Estimator *demand.Estimator
	// NeedyUtilization is the utilization above which a microservice is
	// considered needy; zero means 0.7.
	NeedyUtilization float64
	// NeedyQueue is the end-of-round backlog at or above which a
	// microservice is considered needy regardless of utilization; zero
	// means 1. Raising it keeps services whose only backlog is the
	// in-flight tail request of the round from entering the demand side.
	NeedyQueue int
	// BidderUtilization is the utilization below which a microservice is
	// willing to yield resources; zero means 0.5.
	BidderUtilization float64
	// BidsPerBidder is J; zero means 2.
	BidsPerBidder int
	// UnitsPerDemand scales the continuous demand estimate into integer
	// coverage units; zero means 1.
	UnitsPerDemand float64
	// MaxUnits caps the per-needy coverage demand; zero means uncapped.
	// The AHP rate factor has a 1/(1−utilization) pole, so a saturated
	// microservice (graph mode pins utilization at exactly 1 while
	// backlogged) would otherwise demand millions of units and the market
	// would degenerate into reserve-pool purchases. Capping at the top of
	// the paper's §V-A demand range (40) keeps instances in the studied
	// regime while preserving the estimator's ordering of who is neediest.
	MaxUnits int
	// BasePrice anchors bid prices; zero means 10 (the paper's price
	// range starts at 10). The final price grows with the bidder's
	// utilization — busier bidders value their resources more.
	BasePrice float64
	// PriceSpread is the utilization-driven price range on top of
	// BasePrice; zero means 25 (prices span [10, 35] as in §V-A).
	PriceSpread float64
	// Seed seeds bid randomization.
	Seed int64
	// NoPlatformReserve disables the platform's fallback supply. By
	// default each auctioned round includes one reserve bid (bidder id
	// ReserveBidderID) covering every needy microservice at ReservePrice
	// per coverage unit — the "more expensive alternative" the platform
	// falls back to when colocated offers cannot cover the demand.
	NoPlatformReserve bool
	// ReservePrice is the platform fallback's per-unit price; zero means
	// BasePrice+PriceSpread (the top of the market range).
	ReservePrice float64
}

// ReserveBidderID identifies the platform's fallback supplier in auction
// rounds produced by the bridge. It is far above any microservice id.
const ReserveBidderID = 1 << 30

func (c BridgeConfig) withDefaults() BridgeConfig {
	if c.NeedyUtilization == 0 {
		c.NeedyUtilization = 0.7
	}
	if c.NeedyQueue == 0 {
		c.NeedyQueue = 1
	}
	if c.BidderUtilization == 0 {
		c.BidderUtilization = 0.5
	}
	if c.BidsPerBidder == 0 {
		c.BidsPerBidder = 2
	}
	if c.UnitsPerDemand == 0 {
		c.UnitsPerDemand = 1
	}
	if c.BasePrice == 0 {
		c.BasePrice = 10
	}
	if c.PriceSpread == 0 {
		c.PriceSpread = 25
	}
	if c.ReservePrice == 0 {
		c.ReservePrice = c.BasePrice + c.PriceSpread
	}
	return c
}

// NewBridge builds a bridge for a simulator.
func NewBridge(sim *Simulator, cfg BridgeConfig) (*Bridge, error) {
	c := cfg.withDefaults()
	est := c.Estimator
	if est == nil {
		var err error
		est, err = demand.NewEstimator(demand.Config{})
		if err != nil {
			return nil, fmt.Errorf("sim: build default estimator: %w", err)
		}
	}
	return &Bridge{cfg: c, estimator: est, sim: sim, rng: workload.NewRand(c.Seed)}, nil
}

// AuctionRound is the bridge's output for one simulator round.
type AuctionRound struct {
	Round core.Round
	// NeedyIDs maps needy index (Instance.Demand position) to
	// microservice id.
	NeedyIDs []int
	// Estimates is the continuous demand estimate per microservice id.
	Estimates map[int]float64
}

// Convert builds the auction round for a simulator report. Rounds with no
// needy or no willing bidders yield an AuctionRound with an empty instance
// (nothing to auction).
func (b *Bridge) Convert(rep *RoundReport) *AuctionRound {
	ar := &AuctionRound{
		Round:     core.Round{T: rep.Round, Instance: &core.Instance{}},
		Estimates: make(map[int]float64),
	}

	ids := make([]int, 0, len(rep.Indicators))
	for id := range rep.Indicators {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	services := make(map[int]Microservice, len(b.sim.Services()))
	for _, ms := range b.sim.Services() {
		services[ms.ID] = ms
	}

	needyIdx := make(map[int]int) // ms id -> needy index
	needyCloud := make(map[int][]int)
	for _, id := range ids {
		in := rep.Indicators[id]
		est := b.estimator.Estimate(in)
		ar.Estimates[id] = est
		if in.ExecutionRate >= b.cfg.NeedyUtilization || rep.QueueLengths[id] >= b.cfg.NeedyQueue {
			units := b.estimator.EstimateUnits(in, b.cfg.UnitsPerDemand)
			if units == 0 {
				units = 1 // a backlogged service needs at least one unit
			}
			if b.cfg.MaxUnits > 0 && units > b.cfg.MaxUnits {
				units = b.cfg.MaxUnits
			}
			needyIdx[id] = len(ar.NeedyIDs)
			ar.NeedyIDs = append(ar.NeedyIDs, id)
			ar.Round.Instance.Demand = append(ar.Round.Instance.Demand, units)
			needyCloud[services[id].Cloud] = append(needyCloud[services[id].Cloud], needyIdx[id])
		}
	}
	if len(ar.NeedyIDs) == 0 {
		return ar
	}

	for _, id := range ids {
		in := rep.Indicators[id]
		if _, isNeedy := needyIdx[id]; isNeedy || in.ExecutionRate > b.cfg.BidderUtilization {
			continue
		}
		// Resource sharing happens within the same edge cloud (§II).
		local := needyCloud[services[id].Cloud]
		if len(local) == 0 {
			continue
		}
		for alt := 0; alt < b.cfg.BidsPerBidder; alt++ {
			k := 1 + b.rng.Intn(len(local))
			cover := make([]int, 0, k)
			for _, pos := range b.rng.Subset(len(local), k) {
				cover = append(cover, local[pos])
			}
			// An idle bidder's spare capacity is what the fair share gave
			// it minus what it uses; price reflects scarcity of the rest.
			spare := (1 - in.ExecutionRate) * in.Allocated
			units := int(spare/10) + 1
			trueCost := b.cfg.BasePrice + b.cfg.PriceSpread*in.ExecutionRate +
				b.rng.Uniform(0, b.cfg.PriceSpread/5)
			ar.Round.Instance.Bids = append(ar.Round.Instance.Bids, core.Bid{
				Bidder:   id,
				Alt:      alt,
				Price:    trueCost,
				TrueCost: trueCost,
				Covers:   cover,
				Units:    units,
			})
		}
	}
	if !b.cfg.NoPlatformReserve {
		b.addReserve(ar)
	}
	return ar
}

// addReserve appends the platform's fallback pool: a binary ladder of
// single-needy reserve bids (1, 2, 4, ... units at ReservePrice per unit,
// distinct bidder ids from ReserveBidderID upward), guaranteeing the round
// is coverable while keeping fallback purchases granular.
func (b *Bridge) addReserve(ar *AuctionRound) {
	ins := ar.Round.Instance
	if ins.TotalDemand() == 0 {
		return
	}
	bidder := ReserveBidderID
	for k, d := range ins.Demand {
		if d == 0 {
			continue
		}
		for units := 1; units/2 < d; units *= 2 {
			price := b.cfg.ReservePrice * float64(units)
			ins.Bids = append(ins.Bids, core.Bid{
				Bidder:   bidder,
				Price:    price,
				TrueCost: price,
				Covers:   []int{k},
				Units:    units,
			})
			bidder++
		}
	}
}

// ConvertAll converts a full simulation's reports.
func (b *Bridge) ConvertAll(reports []*RoundReport) []*AuctionRound {
	out := make([]*AuctionRound, 0, len(reports))
	for _, rep := range reports {
		out = append(out, b.Convert(rep))
	}
	return out
}
