// Package topology models the physical layer of the evaluation setting
// (§V-A): macro base stations each co-located with a computing server (an
// edge cloud), end users attached to base stations, and a backhaul network
// connecting the edge clouds so that every cloud is reachable from every
// access point.
package topology

import (
	"fmt"
	"math"
	"sort"

	"edgeauction/internal/workload"
)

// EdgeCloud is one base station + co-located server.
type EdgeCloud struct {
	// ID is the 1-based edge cloud identifier.
	ID int
	// X, Y locate the base station on the unit deployment plane.
	X, Y float64
	// Capacity is the server's resource capacity in abstract units,
	// shared among hosted microservices by the fair-share policy.
	Capacity float64
}

// User is an end user generating application requests.
type User struct {
	// ID is the 1-based user identifier.
	ID int
	// X, Y locate the user on the unit deployment plane.
	X, Y float64
	// Home is the edge cloud id of the nearest base station.
	Home int
}

// Link is a backhaul connection between two edge clouds.
type Link struct {
	From, To int
	// Latency is the one-way propagation latency in milliseconds.
	Latency float64
}

// Topology is the assembled physical layer.
type Topology struct {
	Clouds []EdgeCloud
	Users  []User
	Links  []Link
	// dist[i][j] is the shortest backhaul latency between clouds i+1, j+1.
	dist [][]float64
}

// Config parameterizes topology generation, defaulting to the paper's
// setting of 10 base stations and 300 users.
type Config struct {
	// Clouds is the number of edge clouds; zero means 10.
	Clouds int
	// Users is the number of end users; zero means 300.
	Users int
	// CloudCapacity is each server's resource capacity; zero means 100.
	CloudCapacity float64
	// ExtraLinks adds this many random backhaul links on top of the
	// latency-weighted ring that guarantees connectivity; zero means
	// Clouds/2.
	ExtraLinks int
	// LatencyPerUnit converts plane distance to backhaul latency (ms per
	// unit distance); zero means 10.
	LatencyPerUnit float64
}

func (c Config) withDefaults() Config {
	if c.Clouds == 0 {
		c.Clouds = 10
	}
	if c.Users == 0 {
		c.Users = 300
	}
	if c.CloudCapacity == 0 {
		c.CloudCapacity = 100
	}
	if c.ExtraLinks == 0 {
		c.ExtraLinks = c.Clouds / 2
	}
	if c.LatencyPerUnit == 0 {
		c.LatencyPerUnit = 10
	}
	return c
}

// Generate draws a random topology: clouds and users placed uniformly on
// the unit square, users homed to the nearest base station, backhaul built
// as a ring plus random chords (connected by construction).
func Generate(rng *workload.Rand, cfg Config) *Topology {
	c := cfg.withDefaults()
	topo := &Topology{}
	for i := 1; i <= c.Clouds; i++ {
		topo.Clouds = append(topo.Clouds, EdgeCloud{
			ID: i, X: rng.Float64(), Y: rng.Float64(), Capacity: c.CloudCapacity,
		})
	}
	for i := 1; i <= c.Users; i++ {
		u := User{ID: i, X: rng.Float64(), Y: rng.Float64()}
		u.Home = topo.nearestCloud(u.X, u.Y)
		topo.Users = append(topo.Users, u)
	}
	// Ring for connectivity, ordered by angle around the centroid so the
	// ring is geographically sensible.
	order := cloudAngularOrder(topo.Clouds)
	for i := range order {
		a, b := order[i], order[(i+1)%len(order)]
		topo.Links = append(topo.Links, Link{
			From: a, To: b,
			Latency: c.LatencyPerUnit * topo.cloudDistance(a, b),
		})
	}
	for i := 0; i < c.ExtraLinks && c.Clouds > 2; i++ {
		a := 1 + rng.Intn(c.Clouds)
		b := 1 + rng.Intn(c.Clouds)
		if a == b {
			continue
		}
		topo.Links = append(topo.Links, Link{
			From: a, To: b,
			Latency: c.LatencyPerUnit * topo.cloudDistance(a, b),
		})
	}
	topo.computeShortestPaths()
	return topo
}

func cloudAngularOrder(clouds []EdgeCloud) []int {
	var cx, cy float64
	for _, c := range clouds {
		cx += c.X
		cy += c.Y
	}
	cx /= float64(len(clouds))
	cy /= float64(len(clouds))
	ids := make([]int, len(clouds))
	for i, c := range clouds {
		ids[i] = c.ID
	}
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := clouds[ids[a]-1], clouds[ids[b]-1]
		return math.Atan2(ca.Y-cy, ca.X-cx) < math.Atan2(cb.Y-cy, cb.X-cx)
	})
	return ids
}

func (t *Topology) nearestCloud(x, y float64) int {
	best, bestD := 0, math.Inf(1)
	for _, c := range t.Clouds {
		d := (c.X-x)*(c.X-x) + (c.Y-y)*(c.Y-y)
		if d < bestD {
			best, bestD = c.ID, d
		}
	}
	return best
}

func (t *Topology) cloudDistance(a, b int) float64 {
	ca, cb := t.Clouds[a-1], t.Clouds[b-1]
	return math.Hypot(ca.X-cb.X, ca.Y-cb.Y)
}

// computeShortestPaths fills the all-pairs latency matrix with
// Floyd-Warshall over the backhaul links.
func (t *Topology) computeShortestPaths() {
	n := len(t.Clouds)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, l := range t.Links {
		i, j := l.From-1, l.To-1
		if l.Latency < d[i][j] {
			d[i][j] = l.Latency
			d[j][i] = l.Latency
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if via := d[i][k] + d[k][j]; via < d[i][j] {
					d[i][j] = via
				}
			}
		}
	}
	t.dist = d
}

// Latency returns the shortest backhaul latency between two edge clouds.
// Same-cloud latency is 0. It returns an error for unknown ids.
func (t *Topology) Latency(from, to int) (float64, error) {
	if from < 1 || from > len(t.Clouds) || to < 1 || to > len(t.Clouds) {
		return 0, fmt.Errorf("topology: latency query for unknown clouds %d -> %d", from, to)
	}
	return t.dist[from-1][to-1], nil
}

// Connected reports whether every cloud can reach every other cloud over
// the backhaul.
func (t *Topology) Connected() bool {
	for i := range t.dist {
		for j := range t.dist[i] {
			if math.IsInf(t.dist[i][j], 1) {
				return false
			}
		}
	}
	return true
}

// UsersAt returns the users homed at the given edge cloud.
func (t *Topology) UsersAt(cloud int) []User {
	var out []User
	for _, u := range t.Users {
		if u.Home == cloud {
			out = append(out, u)
		}
	}
	return out
}

// Cloud returns the edge cloud with the given id.
func (t *Topology) Cloud(id int) (EdgeCloud, error) {
	if id < 1 || id > len(t.Clouds) {
		return EdgeCloud{}, fmt.Errorf("topology: unknown cloud id %d", id)
	}
	return t.Clouds[id-1], nil
}
