package topology

import (
	"math"
	"testing"

	"edgeauction/internal/workload"
)

func generate(t *testing.T, cfg Config) *Topology {
	t.Helper()
	return Generate(workload.NewRand(1), cfg)
}

func TestGenerateDefaultsMatchPaper(t *testing.T) {
	topo := generate(t, Config{})
	if len(topo.Clouds) != 10 {
		t.Fatalf("clouds = %d, want 10 (paper §V-A)", len(topo.Clouds))
	}
	if len(topo.Users) != 300 {
		t.Fatalf("users = %d, want 300 (paper §V-A)", len(topo.Users))
	}
	for i, c := range topo.Clouds {
		if c.ID != i+1 {
			t.Fatalf("cloud ids must be dense 1-based, got %d at %d", c.ID, i)
		}
		if c.Capacity != 100 {
			t.Fatalf("default capacity = %v, want 100", c.Capacity)
		}
		if c.X < 0 || c.X > 1 || c.Y < 0 || c.Y > 1 {
			t.Fatalf("cloud %d outside unit square: (%v,%v)", c.ID, c.X, c.Y)
		}
	}
}

func TestBackhaulConnected(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		topo := Generate(workload.NewRand(seed), Config{Clouds: 8, Users: 20})
		if !topo.Connected() {
			t.Fatalf("seed %d: backhaul disconnected", seed)
		}
	}
}

func TestLatencyMetricProperties(t *testing.T) {
	topo := generate(t, Config{Clouds: 6, Users: 10})
	n := len(topo.Clouds)
	for i := 1; i <= n; i++ {
		d, err := topo.Latency(i, i)
		if err != nil || d != 0 {
			t.Fatalf("self latency (%d) = %v, %v", i, d, err)
		}
		for j := 1; j <= n; j++ {
			dij, err := topo.Latency(i, j)
			if err != nil {
				t.Fatal(err)
			}
			dji, err := topo.Latency(j, i)
			if err != nil {
				t.Fatal(err)
			}
			if dij != dji {
				t.Fatalf("latency asymmetric: %d<->%d: %v vs %v", i, j, dij, dji)
			}
			if i != j && (dij <= 0 || math.IsInf(dij, 1)) {
				t.Fatalf("latency %d->%d = %v", i, j, dij)
			}
			// Triangle inequality through every intermediate.
			for k := 1; k <= n; k++ {
				dik, _ := topo.Latency(i, k)
				dkj, _ := topo.Latency(k, j)
				if dij > dik+dkj+1e-9 {
					t.Fatalf("triangle violated: d(%d,%d)=%v > %v+%v", i, j, dij, dik, dkj)
				}
			}
		}
	}
}

func TestLatencyUnknownCloud(t *testing.T) {
	topo := generate(t, Config{Clouds: 3, Users: 5})
	if _, err := topo.Latency(0, 1); err == nil {
		t.Fatal("want error for cloud 0")
	}
	if _, err := topo.Latency(1, 4); err == nil {
		t.Fatal("want error for out-of-range cloud")
	}
}

func TestUsersHomedToNearestCloud(t *testing.T) {
	topo := generate(t, Config{Clouds: 5, Users: 50})
	for _, u := range topo.Users {
		home, err := topo.Cloud(u.Home)
		if err != nil {
			t.Fatalf("user %d homed to unknown cloud: %v", u.ID, err)
		}
		dHome := math.Hypot(home.X-u.X, home.Y-u.Y)
		for _, c := range topo.Clouds {
			if d := math.Hypot(c.X-u.X, c.Y-u.Y); d < dHome-1e-12 {
				t.Fatalf("user %d homed to %d but cloud %d is closer", u.ID, u.Home, c.ID)
			}
		}
	}
}

func TestUsersAtPartitionsAllUsers(t *testing.T) {
	topo := generate(t, Config{Clouds: 4, Users: 40})
	total := 0
	for id := 1; id <= len(topo.Clouds); id++ {
		total += len(topo.UsersAt(id))
	}
	if total != len(topo.Users) {
		t.Fatalf("UsersAt partitions cover %d of %d users", total, len(topo.Users))
	}
}

func TestCloudLookup(t *testing.T) {
	topo := generate(t, Config{Clouds: 3, Users: 5})
	if _, err := topo.Cloud(2); err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Cloud(0); err == nil {
		t.Fatal("want error for id 0")
	}
	if _, err := topo.Cloud(4); err == nil {
		t.Fatal("want error for id beyond range")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(workload.NewRand(42), Config{Clouds: 5, Users: 30})
	b := Generate(workload.NewRand(42), Config{Clouds: 5, Users: 30})
	for i := range a.Clouds {
		if a.Clouds[i] != b.Clouds[i] {
			t.Fatal("same seed produced different clouds")
		}
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatal("same seed produced different users")
		}
	}
}
